# Repro build/test/bench entry points. Everything here is plain go
# tooling; the Makefile only records the invocations so results are
# reproducible across sessions.

GO ?= go

.PHONY: build test race bench-snapshot bench-check load-smoke reload-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-snapshot re-records the committed performance baselines:
#   BENCH_pipeline.json — the batch pipeline benchmark (gated by
#   bench-check; diff it across PRs to catch regressions).
#   BENCH_stream.json — the open-loop overload run (fixed 1000 req/s for
#   30s plus a streaming pass) against a freshly served daemon. The rate
#   is pinned rather than calibrated: since the integer-ID scoring core,
#   2x calibrated saturation exceeds what a single-host loopback HTTP
#   stack itself can carry, and the harness would report connection-level
#   losses the serving layer never saw. 1000 req/s sits above pipeline
#   saturation (sustained overload, the degradation ladder engages) but
#   within the wire's lossless envelope.
bench-snapshot:
	$(GO) build -o /tmp/xsdf-benchjson ./cmd/xsdf-benchjson
	$(GO) test -run '^$$' -bench BenchmarkPipelineBatch -benchmem -count 3 . | /tmp/xsdf-benchjson > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"
	$(GO) build -o /tmp/xsdfd ./cmd/xsdfd
	$(GO) build -o /tmp/xsdf-loadgen ./cmd/xsdf-loadgen
	/tmp/xsdfd -addr 127.0.0.1:18082 & echo $$! > /tmp/xsdfd.pid; \
	sleep 1; \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18082 -rate 1000 -duration 30s \
	    -stream -max-lost 0 -out BENCH_stream.json > /dev/null; \
	status=$$?; \
	kill $$(cat /tmp/xsdfd.pid) 2>/dev/null; \
	test $$status = 0 && echo "wrote BENCH_stream.json"; \
	exit $$status

# bench-check re-runs the gated pipeline benchmark and fails when
# BenchmarkPipelineBatch/shared-cache regresses more than 15% in ns/op
# (or allocs/op) against the committed BENCH_pipeline.json. CI runs this
# on every PR; refresh the baseline with bench-snapshot when a change
# legitimately moves the number.
bench-check:
	$(GO) build -o /tmp/xsdf-benchjson ./cmd/xsdf-benchjson
	$(GO) test -run '^$$' -bench BenchmarkPipelineBatch -benchmem -count 3 . | \
	    /tmp/xsdf-benchjson -check BENCH_pipeline.json -bench BenchmarkPipelineBatch/shared-cache -max-regress 0.15

# load-smoke is the CI-sized load check: build the daemon and the
# harness, serve on a local port, drive a short low-rate open-loop phase
# plus a streaming phase (whole-document, then subtree mode), and fail
# on any lost/untyped response.
load-smoke:
	$(GO) build -o /tmp/xsdfd ./cmd/xsdfd
	$(GO) build -o /tmp/xsdf-loadgen ./cmd/xsdf-loadgen
	/tmp/xsdfd -addr 127.0.0.1:18080 & echo $$! > /tmp/xsdfd.pid; \
	sleep 1; \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18080 -rate 20 -duration 10s -stream -max-lost 0 -check-metrics && \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18080 -rate 20 -duration 5s -subtree -max-lost 0; \
	status=$$?; \
	kill $$(cat /tmp/xsdfd.pid) 2>/dev/null; \
	exit $$status

# reload-smoke is the zero-downtime hot-swap check: serve a packed
# lexicon, drive the harness at 2x the load-smoke rate, land one good
# swap and one corrupt-candidate rollback mid-run, and assert zero lost
# documents, balanced swap/rollback counters, and no 5xx responses.
reload-smoke:
	$(GO) build -o /tmp/xsdfd ./cmd/xsdfd
	$(GO) build -o /tmp/xsdf-lexicon ./cmd/xsdf-lexicon
	$(GO) build -o /tmp/xsdf-loadgen ./cmd/xsdf-loadgen
	/tmp/xsdf-lexicon -export /tmp/reload-smoke.semnet -version local-1
	head -c $$(($$(stat -c %s /tmp/reload-smoke.semnet) / 2)) /tmp/reload-smoke.semnet > /tmp/reload-smoke-corrupt.semnet
	/tmp/xsdfd -addr 127.0.0.1:18081 -lexicon /tmp/reload-smoke.semnet & echo $$! > /tmp/xsdfd.pid; \
	sleep 1; \
	( sleep 3; curl -fsS -X POST http://127.0.0.1:18081/adminz/reload \
	    -H 'Content-Type: application/json' -d '{"path":"/tmp/reload-smoke.semnet"}'; \
	  sleep 3; curl -s -X POST http://127.0.0.1:18081/adminz/reload \
	    -H 'Content-Type: application/json' -d '{"path":"/tmp/reload-smoke-corrupt.semnet"}' ) & \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18081 -rate 40 -duration 12s -stream -max-lost 0; \
	status=$$?; \
	curl -fsS http://127.0.0.1:18081/metricsz | grep -E '^xsdf_lexicon_(swaps|rollbacks)_total' || status=1; \
	kill $$(cat /tmp/xsdfd.pid) 2>/dev/null; \
	exit $$status
