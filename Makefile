# Repro build/test/bench entry points. Everything here is plain go
# tooling; the Makefile only records the invocations so results are
# reproducible across sessions.

GO ?= go

.PHONY: build test race bench-snapshot load-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-snapshot re-records the committed performance baselines:
#   BENCH_pipeline.json — the batch pipeline benchmark (satellite of the
#   streaming PR; diff it across PRs to catch regressions).
bench-snapshot:
	$(GO) build -o /tmp/xsdf-benchjson ./cmd/xsdf-benchjson
	$(GO) test -run '^$$' -bench BenchmarkPipelineBatch -benchmem . | /tmp/xsdf-benchjson > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# load-smoke is the CI-sized load check: build the daemon and the
# harness, serve on a local port, drive a short low-rate open-loop phase
# plus a streaming phase (whole-document, then subtree mode), and fail
# on any lost/untyped response.
load-smoke:
	$(GO) build -o /tmp/xsdfd ./cmd/xsdfd
	$(GO) build -o /tmp/xsdf-loadgen ./cmd/xsdf-loadgen
	/tmp/xsdfd -addr 127.0.0.1:18080 & echo $$! > /tmp/xsdfd.pid; \
	sleep 1; \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18080 -rate 20 -duration 10s -stream -max-lost 0 -check-metrics && \
	/tmp/xsdf-loadgen -url http://127.0.0.1:18080 -rate 20 -duration 5s -subtree -max-lost 0; \
	status=$$?; \
	kill $$(cat /tmp/xsdfd.pid) 2>/dev/null; \
	exit $$status
