// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (§4), plus ablation benches for the design
// choices DESIGN.md calls out. Each experiment bench regenerates its
// table/figure once per iteration over the full synthetic corpus, so
// ns/op measures the cost of the whole experiment; the reported values
// themselves are printed by cmd/xsdf-experiments and recorded in
// EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package xsdf_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/disambig"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/xmltree"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.DefaultConfig())
	})
	return benchRunner
}

// BenchmarkTable1 regenerates the group-level ambiguity/structure averages.
func BenchmarkTable1(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Table1()
		if len(rows) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTable2 regenerates the human-system ambiguity correlations.
func BenchmarkTable2(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Table2()
		if len(rows) != 10 {
			b.Fatal("bad table 2")
		}
	}
}

// BenchmarkTable3 regenerates the dataset characteristics table.
func BenchmarkTable3(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Table3()
		if len(rows) != 10 {
			b.Fatal("bad table 3")
		}
	}
}

// BenchmarkFigure8 sweeps group x radius x process and scores each cell.
func BenchmarkFigure8(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := r.Figure8()
		if len(cells) == 0 {
			b.Fatal("bad figure 8")
		}
	}
}

// BenchmarkFigure9 runs the comparative study (XSDF vs RPD vs VSD).
func BenchmarkFigure9(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := r.Figure9()
		if len(rows) != 12 {
			b.Fatal("bad figure 9")
		}
	}
}

// evaluateConfig scores one XSDF configuration over the annotated corpus
// and returns the micro-averaged F across all groups.
func evaluateConfig(r *experiments.Runner, opts disambig.Options) eval.PRF {
	dis := disambig.New(r.Network(), opts)
	var correct, assigned, total int
	for i := range r.Docs() {
		for _, n := range r.Selected(i) {
			total++
			s, ok := dis.Node(n)
			if !ok {
				continue
			}
			assigned++
			if s.ID() == r.HumanSense(n) {
				correct++
			}
		}
	}
	return eval.Score(correct, assigned, total)
}

// BenchmarkAblationBagOfWords compares the sphere context vector against a
// flattened bag-of-words context (all structural weights equal), the
// representation Motivation 3 argues against. The bench reports both
// F-values as custom metrics.
func BenchmarkAblationBagOfWords(b *testing.B) {
	r := runner()
	sphereOpts := disambig.Options{Radius: 2, Method: disambig.ConceptBased, SimWeights: simmeasure.EqualWeights()}
	flatOpts := sphereOpts
	flatOpts.VectorSim = func(a, v sphere.Vector) float64 { return sphere.Cosine(a, v) }
	b.ResetTimer()
	var fSphere, fFlat float64
	for i := 0; i < b.N; i++ {
		fSphere = evaluateConfig(r, sphereOpts).F
		fFlat = evaluateBagOfWords(r).F
	}
	b.ReportMetric(fSphere, "f-sphere")
	b.ReportMetric(fFlat, "f-bagofwords")
}

// evaluateBagOfWords runs concept-based scoring with uniform context
// weights (ignoring structural proximity and label frequency).
func evaluateBagOfWords(r *experiments.Runner) eval.PRF {
	net := r.Network()
	sim := simmeasure.New(net, simmeasure.EqualWeights())
	var correct, assigned, total int
	for i := range r.Docs() {
		for _, n := range r.Selected(i) {
			total++
			tokens := n.Tokens
			if len(tokens) == 0 {
				tokens = []string{n.Label}
			}
			senses := net.Senses(tokens[0])
			if len(senses) == 0 {
				continue
			}
			assigned++
			members := sphere.Sphere(n, 2)
			best, bestScore := senses[0], -1.0
			for _, sp := range senses {
				var score float64
				for _, m := range members {
					if m.Node == n {
						continue
					}
					ctokens := m.Node.Tokens
					if len(ctokens) == 0 {
						ctokens = []string{m.Node.Label}
					}
					mx := 0.0
					for _, ct := range ctokens {
						for _, sj := range net.Senses(ct) {
							if v := sim.Sim(sp, sj); v > mx {
								mx = v
							}
						}
					}
					score += mx // uniform weight: the bag-of-words model
				}
				if score > bestScore {
					bestScore, best = score, sp
				}
			}
			if string(best) == r.HumanSense(n) {
				correct++
			}
		}
	}
	return eval.Score(correct, assigned, total)
}

// BenchmarkAblationSimMeasures compares the combined similarity measure
// against each single measure (edge-only, node-only, gloss-only),
// reporting per-config F.
func BenchmarkAblationSimMeasures(b *testing.B) {
	r := runner()
	configs := map[string]simmeasure.Weights{
		"combined": simmeasure.EqualWeights(),
		"edge":     simmeasure.EdgeOnly(),
		"node":     simmeasure.NodeOnly(),
		"gloss":    simmeasure.GlossOnly(),
	}
	b.ResetTimer()
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, w := range configs {
			opts := disambig.Options{Radius: 1, Method: disambig.ConceptBased, SimWeights: w}
			results[name] = evaluateConfig(r, opts).F
		}
	}
	for name, f := range results {
		b.ReportMetric(f, "f-"+name)
	}
}

// BenchmarkAblationSelection measures what ambiguity-based node selection
// buys (Motivation 1: disambiguating all nodes "is time consuming and
// sometimes needless"): the full pipeline over a ~200-node Shakespeare
// document with Thresh_Amb = 0 (all nodes) vs a threshold that skips the
// unambiguous majority. The metric of interest is ns/op; skipped nodes are
// monosemous or unknown, so quality on ambiguous targets is unchanged.
func BenchmarkAblationSelection(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		threshold float64
	}{{"all-nodes", 0}, {"selected", 0.12}} {
		b.Run(cfg.name, func(b *testing.B) {
			fw, err := xsdf.New(xsdf.Options{Threshold: cfg.threshold, Radius: 2})
			if err != nil {
				b.Fatal(err)
			}
			var targets int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tree := corpus.GenerateDataset(11, 1)[0].Tree
				b.StartTimer()
				res, err := fw.DisambiguateTree(tree)
				if err != nil {
					b.Fatal(err)
				}
				targets = res.Targets
			}
			b.ReportMetric(float64(targets), "targets")
		})
	}
}

// BenchmarkAblationCompound compares XSDF's compound handling with the
// baselines' behavior on a compound-heavy document: XSDF assigns senses to
// camel-case tags, RPD cannot.
func BenchmarkAblationCompound(b *testing.B) {
	r := runner()
	rpd := baseline.NewRPD(r.Network())
	dis := disambig.New(r.Network(), disambig.Options{Radius: 2, Method: disambig.ConceptBased, SimWeights: simmeasure.EqualWeights()})
	var compound []*xmltree.Node
	for i, d := range r.Docs() {
		if d.Dataset != 2 {
			continue
		}
		for _, n := range r.Selected(i) {
			if len(n.Tokens) == 2 {
				compound = append(compound, n)
			}
		}
	}
	if len(compound) == 0 {
		b.Fatal("no compound targets")
	}
	b.ResetTimer()
	var xsdfAssigned, rpdAssigned int
	for i := 0; i < b.N; i++ {
		xsdfAssigned, rpdAssigned = 0, 0
		for _, n := range compound {
			if _, ok := dis.Node(n); ok {
				xsdfAssigned++
			}
			if _, ok := rpd.Node(n); ok {
				rpdAssigned++
			}
		}
	}
	b.ReportMetric(float64(xsdfAssigned)/float64(len(compound)), "xsdf-coverage")
	b.ReportMetric(float64(rpdAssigned)/float64(len(compound)), "rpd-coverage")
}

// BenchmarkAblationContent compares structure-and-content against
// structure-only processing (§3.1: considering data values "is beneficiary
// in resolving ambiguities in both tag names and data values" — e.g. the
// values Kelly and Stewart help disambiguate the tag "cast"). Both
// configurations are evaluated on the same element/attribute gold targets;
// only the contexts differ.
func BenchmarkAblationContent(b *testing.B) {
	net := experiments.NewRunner(experiments.Config{Seed: 42, NodesPerDoc: 13}).Network()
	score := func(includeContent bool) eval.PRF {
		fw, err := xsdf.New(xsdf.Options{StructureOnly: !includeContent, Radius: 2})
		if err != nil {
			b.Fatal(err)
		}
		var correct, assigned, total int
		for _, d := range freshCorpusTrees() {
			if !includeContent {
				stripTokens(d)
			}
			res, err := fw.DisambiguateTree(d)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range res.Tree.Nodes() {
				if n.Kind == xsdf.TokenNode || n.Gold == "" {
					continue
				}
				total++
				if n.Sense == "" {
					continue
				}
				assigned++
				if n.Sense == n.Gold {
					correct++
				}
			}
		}
		return eval.Score(correct, assigned, total)
	}
	_ = net
	b.ResetTimer()
	var fFull, fStruct float64
	for i := 0; i < b.N; i++ {
		fFull = score(true).F
		fStruct = score(false).F
	}
	b.ReportMetric(fFull, "f-content")
	b.ReportMetric(fStruct, "f-structure-only")
}

// freshCorpusTrees regenerates the corpus so each scoring pass gets
// unannotated trees.
func freshCorpusTrees() []*xmltree.Tree {
	var out []*xmltree.Tree
	for _, d := range corpus.Generate(42) {
		out = append(out, d.Tree)
	}
	return out
}

// stripTokens removes all text-token leaves in place (structure-only mode).
func stripTokens(t *xmltree.Tree) {
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.Kind == xmltree.Token {
				continue
			}
			kept = append(kept, c)
			walk(c)
		}
		n.Children = kept
	}
	if t.Root != nil {
		walk(t.Root)
		t.Reindex()
	}
}

// BenchmarkAblationDiscourse measures the one-sense-per-discourse
// harmonization pass (extension beyond the paper): F with and without the
// post-processing over the annotated corpus.
func BenchmarkAblationDiscourse(b *testing.B) {
	r := runner()
	score := func(harmonize bool) eval.PRF {
		var correct, assigned, total int
		for i, doc := range r.Docs() {
			dis := disambig.New(r.Network(), disambig.Options{
				Radius: experiments.Figure9OptimalRadii[doc.Group],
				Method: disambig.ConceptBased, SimWeights: simmeasure.EqualWeights()})
			// Work on clones so runs stay independent.
			clone := doc.Tree.Clone()
			dis.Apply(clone.Nodes())
			if harmonize {
				disambig.Harmonize(clone.Nodes())
			}
			for _, n := range r.Selected(i) {
				total++
				cn := clone.Node(n.Index)
				if cn.Sense == "" {
					continue
				}
				assigned++
				if cn.Sense == r.HumanSense(n) {
					correct++
				}
			}
		}
		return eval.Score(correct, assigned, total)
	}
	b.ResetTimer()
	var fPlain, fHarmonized float64
	for i := 0; i < b.N; i++ {
		fPlain = score(false).F
		fHarmonized = score(true).F
	}
	b.ReportMetric(fPlain, "f-plain")
	b.ReportMetric(fHarmonized, "f-harmonized")
}

// BenchmarkApproaches compares per-node disambiguation cost of XSDF (at
// its Group 1 optimum) against the RPD and VSD baselines over the same
// annotated targets.
func BenchmarkApproaches(b *testing.B) {
	r := runner()
	var targets []*xmltree.Node
	for i := range r.Docs() {
		targets = append(targets, r.Selected(i)...)
	}
	b.Run("XSDF", func(b *testing.B) {
		dis := disambig.New(r.Network(), disambig.Options{Radius: 1,
			Method: disambig.ConceptBased, SimWeights: simmeasure.EqualWeights()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dis.Node(targets[i%len(targets)])
		}
	})
	b.Run("RPD", func(b *testing.B) {
		rpd := baseline.NewRPD(r.Network())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rpd.Node(targets[i%len(targets)])
		}
	})
	b.Run("VSD", func(b *testing.B) {
		vsd := baseline.NewVSD(r.Network())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vsd.Node(targets[i%len(targets)])
		}
	})
}

// BenchmarkPipelineSingleDocument measures end-to-end cost of the public
// API on the Figure 1 document.
func BenchmarkPipelineSingleDocument(b *testing.B) {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		b.Fatal(err)
	}
	doc := benchDoc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.DisambiguateString(doc)
		if err != nil || res.Assigned == 0 {
			b.Fatal("pipeline failed")
		}
	}
}

// BenchmarkPipelineBatch measures batch reprocessing of the full synthetic
// corpus (the repeated-vocabulary workload the shared cache targets).
//
//   - shared-cache: one Framework reused across iterations, so after the
//     first pass every pairwise similarity and sphere vector is warm;
//   - cold-cache: a fresh Framework per iteration, the per-document-cache
//     behavior the shared layer replaced;
//   - parallel-nodes: the shared Framework with intra-document node
//     workers on top of the warm cache.
//
// Tree regeneration is excluded via StopTimer.
func BenchmarkPipelineBatch(b *testing.B) {
	run := func(b *testing.B, fresh bool, nodeWorkers int) {
		fw, err := xsdf.New(xsdf.Options{Radius: 2, NodeWorkers: nodeWorkers})
		if err != nil {
			b.Fatal(err)
		}
		if !fresh {
			// Warm pass: the reprocessing workload starts from a
			// populated cache.
			if _, err := fw.DisambiguateBatch(freshCorpusTrees(), 4); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			trees := freshCorpusTrees()
			if fresh {
				fw, err = xsdf.New(xsdf.Options{Radius: 2, NodeWorkers: nodeWorkers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			results, err := fw.DisambiguateBatch(trees, 4)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res == nil || res.Assigned == 0 {
					b.Fatal("document not disambiguated")
				}
			}
		}
	}
	b.Run("shared-cache", func(b *testing.B) { run(b, false, 0) })
	b.Run("cold-cache", func(b *testing.B) { run(b, true, 0) })
	b.Run("parallel-nodes", func(b *testing.B) { run(b, false, -1) })
}

// BenchmarkPipelineDegraded quantifies the degradation ladder's
// quality/latency trade-off: the full corpus batch at each rung, forced via
// node-count watermarks so every document runs entirely at that level. Each
// sub-bench reports gold-label F over element/attribute targets ("f-gold")
// next to its ns/op, giving the README's trade-off table both axes from one
// run.
func BenchmarkPipelineDegraded(b *testing.B) {
	for _, rung := range []struct {
		name    string
		degrade xsdf.DegradeOptions
	}{
		{"full", xsdf.DegradeOptions{}},
		{"concept-only", xsdf.DegradeOptions{Enabled: true, ConceptOnlyAfter: 1}},
		{"first-sense", xsdf.DegradeOptions{Enabled: true, FirstSenseAfter: 1}},
	} {
		b.Run(rung.name, func(b *testing.B) {
			fw, err := xsdf.New(xsdf.Options{Radius: 2, Method: xsdf.Combined, Degrade: rung.degrade})
			if err != nil {
				b.Fatal(err)
			}
			// Warm pass, matching BenchmarkPipelineBatch's steady state.
			if _, err := fw.DisambiguateBatch(freshCorpusTrees(), 4); err != nil {
				b.Fatal(err)
			}
			var f eval.PRF
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				trees := freshCorpusTrees()
				b.StartTimer()
				results, err := fw.DisambiguateBatch(trees, 4)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				var correct, assigned, total int
				for _, res := range results {
					for _, n := range res.Tree.Nodes() {
						if n.Kind == xsdf.TokenNode || n.Gold == "" {
							continue
						}
						total++
						if n.Sense == "" {
							continue
						}
						assigned++
						if n.Sense == n.Gold {
							correct++
						}
					}
				}
				f = eval.Score(correct, assigned, total)
				b.StartTimer()
			}
			b.ReportMetric(f.F, "f-gold")
		})
	}
}

func benchDoc() string {
	return `<films>
  <picture title="Rear Window">
    <director> Hitchcock </director>
    <year> 1954 </year>
    <genre> mystery </genre>
    <cast><star> Stewart </star><star> Kelly </star></cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`
}
