package xsdf_test

// Reload chaos suite: fires lexicon hot-swaps — good candidates, corrupt
// files, checksum mismatches, and injected stage faults — against live
// unary, batch, and stream traffic, across seeded schedules (run with
// -race; a failure reproduces from the seed in the subtest name). The
// invariants are the hot-swap contract end to end:
//
//   - zero client-visible failures: every /v1/* document answers 200 no
//     matter how many swaps or rollbacks land mid-run;
//   - per-run epoch consistency: every result is stamped with one
//     (epoch, version) the swap schedule actually produced, and every
//     assigned sense belongs to exactly that snapshot's network;
//   - rollback is the default: every failed reload answers 422 with the
//     old lexicon still serving;
//   - the books balance: /statusz and /metricsz swap/rollback counters
//     equal the observed outcomes, and no retired snapshot is left
//     pinned once traffic drains.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/semnet"
	"repro/internal/server"
	"repro/internal/server/client"
)

// reloadChaosSchedules is the number of seeded reload schedules.
const reloadChaosSchedules = 50

// reloadChaosLemmas is the shared vocabulary of the versioned test
// lexicons: identical lemmas across versions, so any network can score
// any document, while concept IDs carry the version tag as a suffix —
// a cross-snapshot leak is visible in the assigned sense strings.
const reloadChaosLemmas = 16

func reloadChaosNet(t testing.TB, tag string) *xsdf.Network {
	t.Helper()
	b := semnet.NewBuilder()
	root := semnet.ConceptID("entity." + tag)
	b.AddConcept(root, "the shared root concept of every word here", 1000, "entity")
	for i := 0; i < reloadChaosLemmas; i++ {
		lemma := fmt.Sprintf("word%c", rune('a'+i))
		one := semnet.ConceptID(fmt.Sprintf("%s.one.%s", lemma, tag))
		two := semnet.ConceptID(fmt.Sprintf("%s.two.%s", lemma, tag))
		b.AddConcept(one, fmt.Sprintf("the dominant sense of %s in running text", lemma), float64(60+i), lemma)
		b.AddConcept(two, fmt.Sprintf("a rare alternative reading of %s", lemma), float64(5+i), lemma)
		b.AddEdge(one, semnet.Hypernym, root)
		b.AddEdge(two, semnet.Hypernym, root)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func reloadChaosDoc(seed int) string {
	var b strings.Builder
	b.WriteString("<doc>")
	for i := 0; i < 6; i++ {
		lemma := fmt.Sprintf("word%c", rune('a'+(seed+i*3)%reloadChaosLemmas))
		fmt.Fprintf(&b, "<%s>%s</%s>", lemma, lemma, lemma)
	}
	b.WriteString("</doc>")
	return b.String()
}

// reloadEpochIdentity is what the swap schedule recorded for one epoch.
type reloadEpochIdentity struct{ tag, version string }

// collectedResult is one served document's stamp and senses, validated
// after all traffic and swaps have drained (so recording races between
// a swap's response and a result stamped with its epoch cannot matter).
type collectedResult struct {
	origin  string
	epoch   uint64
	version string
	senses  []string
}

func collectWireResult(origin string, res *server.Result) collectedResult {
	c := collectedResult{origin: origin, epoch: res.LexiconEpoch, version: res.LexiconVersion}
	for _, a := range res.Assignments {
		c.senses = append(c.senses, a.Sense)
	}
	return c
}

func TestReloadChaosSchedules(t *testing.T) {
	n := int64(reloadChaosSchedules)
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= n; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReloadChaosSchedule(t, seed)
		})
	}
}

func runReloadChaosSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	netA, netB := reloadChaosNet(t, "v1"), reloadChaosNet(t, "v2")

	dir := t.TempDir()
	fileA := filepath.Join(dir, "v1.semnet")
	fileB := filepath.Join(dir, "v2.semnet")
	infoA, err := xsdf.WriteNetworkFile(fileA, netA, "v1")
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := xsdf.WriteNetworkFile(fileB, netB, "v2")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.semnet")
	data, err := os.ReadFile(fileA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	fw, err := xsdf.New(xsdf.Options{Network: netA})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Framework: fw,
		Breaker:   server.BreakerOptions{Disabled: true},
		Logger:    server.NopLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A slice of reloads also dies to injected stage faults, so rollback
	// paths past the load stage (validate, canary) get coverage too.
	restore := faultinject.Install(faultinject.New(faultinject.Config{
		Seed:                  seed,
		ReloadLoadErrRate:     0.10 * rng.Float64(),
		ReloadValidateErrRate: 0.10 * rng.Float64(),
		ReloadCanaryErrRate:   0.10 * rng.Float64(),
	}))
	defer restore()

	epochs := map[uint64]reloadEpochIdentity{1: {tag: "v1", version: fw.LexiconInfo().Version}}
	var wantSwaps, wantRollbacks uint64

	// The swap schedule: a seeded mix of good swaps (alternating
	// versions), corrupt candidates, and checksum mismatches, fired while
	// the traffic goroutines below are mid-stream and mid-batch. Reload
	// outcomes are recorded here and reconciled with the counters and the
	// collected results after everything drains.
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := "v2"
		for i := 0; i < 10; i++ {
			req := server.ReloadRequest{}
			expectOK := true
			switch draw := rng.Float64(); {
			case draw < 0.2:
				req.Path = corrupt
				expectOK = false
			case draw < 0.35:
				req.Path, req.ExpectedChecksum = fileA, strings.Repeat("00", 32)
				expectOK = false
			default:
				if next == "v2" {
					req.Path, req.ExpectedChecksum = fileB, infoB.Checksum
				} else {
					req.Path, req.ExpectedChecksum = fileA, infoA.Checksum
				}
			}
			status, body := postReload(t, ts.URL, req)
			switch status {
			case http.StatusOK:
				if !expectOK {
					t.Errorf("reload %d of %s succeeded, expected a rollback", i, req.Path)
				}
				var rr server.ReloadResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					t.Errorf("reload %d response: %v", i, err)
					return
				}
				tag := "v1"
				if rr.Lexicon.Version == "v2" {
					tag = "v2"
				}
				epochs[rr.Lexicon.Epoch] = reloadEpochIdentity{tag: tag, version: rr.Lexicon.Version}
				wantSwaps++
				if next == rr.Lexicon.Version {
					next = map[string]string{"v1": "v2", "v2": "v1"}[next]
				}
			case http.StatusUnprocessableEntity:
				// Rollback: fine for corrupt/mismatch schedules and for good
				// candidates killed by an injected stage fault.
				wantRollbacks++
			default:
				t.Errorf("reload %d: unexpected status %d: %s", i, status, body)
			}
		}
	}()

	var mu sync.Mutex
	var collected []collectedResult
	record := func(c collectedResult) {
		mu.Lock()
		collected = append(collected, c)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// Unary and batch traffic loop until the swap schedule finishes.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if i%2 == 0 {
					res, ok := postUnary(t, ts.URL, reloadChaosDoc(w+i))
					if !ok {
						return
					}
					record(collectWireResult("unary", res))
				} else {
					items, ok := postBatch(t, ts.URL, []string{
						reloadChaosDoc(i), reloadChaosDoc(i + 1), reloadChaosDoc(i + 2),
					})
					if !ok {
						return
					}
					for _, item := range items {
						if item.Status != http.StatusOK || item.Result == nil {
							t.Errorf("batch item failed: %+v", item)
							return
						}
						record(collectWireResult("batch", item.Result))
					}
				}
			}
		}(w)
	}
	// One NDJSON stream rides across the whole swap schedule.
	wg.Add(1)
	go func() {
		defer wg.Done()
		docs := make([]string, 24)
		for i := range docs {
			docs[i] = reloadChaosDoc(i)
		}
		c, err := client.New(client.Options{BaseURL: ts.URL, MaxRetries: 3, BaseBackoff: time.Millisecond})
		if err != nil {
			t.Error(err)
			return
		}
		_, err = c.Stream(t.Context(), docs, client.StreamOptions{}, func(line server.StreamLine) error {
			if line.Status != http.StatusOK || line.Result == nil {
				t.Errorf("stream line failed: %+v", line)
				return nil
			}
			record(collectWireResult("stream", line.Result))
			return nil
		})
		if err != nil {
			t.Errorf("stream: %v", err)
		}
	}()
	wg.Wait()
	<-done

	// Every collected result must carry a scheduled (epoch, version) and
	// only that snapshot's senses.
	if len(collected) == 0 {
		t.Fatal("no traffic was served")
	}
	for _, c := range collected {
		id, ok := epochs[c.epoch]
		if !ok {
			t.Errorf("%s result stamped unknown epoch %d", c.origin, c.epoch)
			continue
		}
		if c.version != id.version {
			t.Errorf("%s result at epoch %d stamped version %q, swap recorded %q", c.origin, c.epoch, c.version, id.version)
		}
		for _, sense := range c.senses {
			if !strings.HasSuffix(sense, "."+id.tag) {
				t.Errorf("%s result at epoch %d (%s) carries sense %q from another snapshot", c.origin, c.epoch, id.tag, sense)
			}
		}
	}

	// The books must balance: framework stats, /statusz, and /metricsz
	// all agree with the observed reload outcomes, and nothing retired is
	// still pinned now that traffic has drained.
	st := fw.LexiconStats()
	if st.Swaps != wantSwaps || st.Rollbacks != wantRollbacks {
		t.Errorf("stats swaps=%d rollbacks=%d, observed %d/%d", st.Swaps, st.Rollbacks, wantSwaps, wantRollbacks)
	}
	if st.RetiredAwaitingDrain != 0 {
		t.Errorf("%d retired snapshots still awaiting drain", st.RetiredAwaitingDrain)
	}
	metrics := getBody(t, ts.URL+"/metricsz")
	for _, want := range []string{
		fmt.Sprintf("xsdf_lexicon_swaps_total %d", wantSwaps),
		fmt.Sprintf("xsdf_lexicon_rollbacks_total %d", wantRollbacks),
		"xsdf_lexicon_retired_awaiting_drain 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	t.Logf("served %d results across %d swaps and %d rollbacks", len(collected), wantSwaps, wantRollbacks)
}

func postReload(t *testing.T, baseURL string, req server.ReloadRequest) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/adminz/reload", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func postUnary(t *testing.T, baseURL, doc string) (*server.Result, bool) {
	t.Helper()
	payload, err := json.Marshal(server.DisambiguateRequest{Document: doc})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/disambiguate", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Error(err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unary status %d", resp.StatusCode)
		return nil, false
	}
	var res server.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Error(err)
		return nil, false
	}
	return &res, true
}

func postBatch(t *testing.T, baseURL string, docs []string) ([]server.BatchItem, bool) {
	t.Helper()
	payload, err := json.Marshal(server.BatchRequest{Documents: docs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/batch", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Error(err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch status %d", resp.StatusCode)
		return nil, false
	}
	var br server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Error(err)
		return nil, false
	}
	return br.Results, true
}
