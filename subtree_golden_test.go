package xsdf_test

// Golden equivalence of the incremental mode: disambiguating a document
// subtree-by-subtree must reproduce whole-document mode bit-exactly for
// every node whose context sphere lies inside its subtree. With the
// default configuration (radius 1, fixed threshold, no cross-node
// harmonization) that is every node except the subtree roots themselves:
// a subtree root's radius-1 sphere holds the document root in whole-
// document mode and loses it in subtree mode — the one documented
// divergence of incremental parsing (the document root and its
// attributes are likewise simply unprocessed in subtree mode).

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/corpus"
	"repro/internal/xmltree"
)

// nodeLine renders one node's assignment bit-exactly (%.17g round-trips
// any float64), the same fingerprint shape as the core golden suite.
func nodeLine(n *xmltree.Node) string {
	return fmt.Sprintf("%s\x00%s\x00%.17g", n.Label, n.Sense, n.SenseScore)
}

// fingerprintUnder appends the DFS pre-order assignment lines of n's
// descendants (n itself excluded).
func fingerprintUnder(b *strings.Builder, n *xmltree.Node) {
	for _, c := range n.Children {
		b.WriteString(nodeLine(c))
		b.WriteByte('\n')
		fingerprintUnder(b, c)
	}
}

func TestSubtreeGoldenEquivalence(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.Generate(7)
	if testing.Short() && len(docs) > 8 {
		docs = docs[:8]
	}

	identicalDocs, divergentRoots, totalSubtrees := 0, 0, 0
	for _, d := range docs {
		var buf bytes.Buffer
		if err := d.Tree.WriteXML(&buf, false); err != nil {
			t.Fatalf("%s: serialize: %v", d.Name, err)
		}
		raw := buf.String()

		whole, err := fw.DisambiguateString(raw)
		if err != nil {
			t.Fatalf("%s: whole-document mode: %v", d.Name, err)
		}
		var subs []*xsdf.Result
		_, err = fw.DisambiguateSubtrees(context.Background(), strings.NewReader(raw),
			xsdf.SubtreeOptions{}, func(r xsdf.SubtreeResult) error {
				if r.Err != nil || r.Result == nil {
					return fmt.Errorf("subtree %d failed: %w", r.Index, r.Err)
				}
				subs = append(subs, r.Result)
				return nil
			})
		if err != nil {
			t.Fatalf("%s: subtree mode: %v", d.Name, err)
		}

		var wholeKids []*xmltree.Node
		for _, c := range whole.Tree.Node(0).Children {
			if c.Kind == xmltree.Element {
				wholeKids = append(wholeKids, c)
			}
		}
		if len(wholeKids) != len(subs) {
			t.Fatalf("%s: whole tree has %d depth-1 elements, subtree mode emitted %d",
				d.Name, len(wholeKids), len(subs))
		}

		docIdentical := true
		for i, sub := range subs {
			totalSubtrees++
			wk, sr := wholeKids[i], sub.Tree.Node(0)
			var wb, sb strings.Builder
			fingerprintUnder(&wb, wk)
			fingerprintUnder(&sb, sr)
			if wb.String() != sb.String() {
				t.Errorf("%s subtree %d: interior assignments diverge between modes\nwhole:\n%s\nsubtree:\n%s",
					d.Name, i, wb.String(), sb.String())
			}
			if nodeLine(wk) != nodeLine(sr) {
				// The documented subtree-root divergence: the radius-1
				// sphere lost the document root.
				divergentRoots++
				docIdentical = false
			}
		}
		if docIdentical {
			identicalDocs++
		}
	}

	t.Logf("%d/%d documents bit-identical end to end; %d/%d subtree roots diverged (documented radius-1 boundary effect)",
		identicalDocs, len(docs), divergentRoots, totalSubtrees)
	// Sanity floor over the full corpus: some documents must reproduce
	// whole-document mode bit-exactly end to end (in -short mode the
	// 8-document slice happens to hold none, so only the per-subtree
	// interior check applies there).
	if identicalDocs == 0 && !testing.Short() {
		t.Errorf("no document reproduced whole-document mode bit-exactly — divergence is broader than the subtree-root boundary")
	}
}
