// Semantic document classification: the paper's §1 application. The
// classifier is trained on concept profiles of disambiguated corpus
// documents grouped into three domains, then classifies held-out documents
// — including one whose tags never appear in training (the heterogeneous
// tagging problem of Figure 1).
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/wordnet"
)

func domainOf(dataset int) string {
	switch dataset {
	case 1, 4, 6:
		return "arts"
	case 3, 5:
		return "publications"
	default:
		return "records"
	}
}

func main() {
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training on the synthetic corpus (3 domains)...")
	cls := classify.New(net)
	docs := corpus.Generate(42)
	var held []corpus.Doc
	for i, d := range docs {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			log.Fatal(err)
		}
		if i%7 == 0 { // hold out every 7th document
			held = append(held, d)
			continue
		}
		cls.Train(domainOf(d.Dataset), d.Tree)
	}
	fmt.Printf("classes: %v\n\n", cls.Classes())

	correct := 0
	for _, d := range held {
		preds := cls.Classify(d.Tree)
		want := domainOf(d.Dataset)
		mark := " "
		if preds[0].Class == want {
			correct++
			mark = "*"
		}
		fmt.Printf("%s %-16s -> %-13s (%.3f)  want %s\n",
			mark, d.Name, preds[0].Class, preds[0].Score, want)
	}
	fmt.Printf("\nheld-out accuracy: %d/%d\n", correct, len(held))

	// A document with tag names absent from every training document still
	// lands in the right domain through its concepts.
	unseen := `<cinema><flick year="1960"><name>psycho</name>
	  <directed_by>hitchcock</directed_by>
	  <players><principal>perkins</principal></players></flick></cinema>`
	res, err := fw.ProcessReader(strings.NewReader(unseen))
	if err != nil {
		log.Fatal(err)
	}
	preds := cls.Classify(res.Tree)
	fmt.Printf("\nunseen tagging (<cinema>/<flick>/<principal>): -> %s (%.3f)\n",
		preds[0].Class, preds[0].Score)
}
