// Schema matching: one of the applications motivating the paper (§1). Two
// schemas use different tag vocabularies for movie catalogs; matching their
// elements by raw string equality finds almost nothing, while matching the
// disambiguated concepts (plus semantic similarity between them) recovers
// the correspondences.
//
//	go run ./examples/schemamatch
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/simmeasure"
)

// Two schema exemplars (instances standing in for their schemas).
const schemaA = `<films>
  <picture title="vertigo">
    <director>hitchcock</director>
    <cast><star>stewart</star></cast>
    <genre>mystery</genre>
  </picture>
</films>`

const schemaB = `<movies>
  <movie>
    <name>vertigo</name>
    <directed_by>alfred hitchcock</directed_by>
    <actors><actor>james stewart</actor></actors>
    <category>mystery</category>
  </movie>
</movies>`

func main() {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		log.Fatal(err)
	}
	net := fw.Network()
	sim := simmeasure.New(net, simmeasure.EqualWeights())

	type elem struct {
		label string
		sense xsdf.ConceptID
	}
	elems := func(doc string) []elem {
		res, err := fw.DisambiguateString(doc)
		if err != nil {
			log.Fatal(err)
		}
		var out []elem
		seen := map[string]bool{}
		for _, n := range res.Tree.Nodes() {
			if n.Kind != xsdf.ElementNode || n.Sense == "" || seen[n.Label] {
				continue // elements only, one entry per label
			}
			seen[n.Label] = true
			out = append(out, elem{n.Label, xsdf.ConceptID(n.Sense)})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
		return out
	}

	a := elems(schemaA)
	b := elems(schemaB)

	fmt.Println("syntactic matches (equal tag names):")
	count := 0
	for _, ea := range a {
		for _, eb := range b {
			if ea.label == eb.label {
				fmt.Printf("  %s = %s\n", ea.label, eb.label)
				count++
			}
		}
	}
	if count == 0 {
		fmt.Println("  (none)")
	}

	fmt.Println("\nsemantic matches (best concept similarity >= 0.60):")
	for _, ea := range a {
		best, bestSim := elem{}, 0.0
		for _, eb := range b {
			if s := sim.Sim(ea.sense, eb.sense); s > bestSim {
				best, bestSim = eb, s
			}
		}
		if bestSim >= 0.60 {
			fmt.Printf("  %-10s ~ %-12s (sim %.2f; %s ~ %s)\n",
				ea.label, best.label, bestSim, ea.sense, best.sense)
		}
	}
}
