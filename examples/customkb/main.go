// Custom knowledge base: §3.1 notes that "any other knowledge base can be
// used based on the application scenario, e.g., ... FOAF to identify
// relations between persons in social networks". This example builds a
// small FOAF-flavoured semantic network programmatically, round-trips it
// through the text interchange format, and disambiguates a social-network
// document against it — no embedded lexicon involved.
//
//	go run ./examples/customkb
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/semnet"
)

// buildFOAF assembles a miniature social-network ontology. "friend" is the
// ambiguous word: a FOAF social link vs. a benefactor.
func buildFOAF() *semnet.Network {
	b := semnet.NewBuilder()
	b.AddConcept("agent.f.01", "any entity that can act in a social network", 50, "agent")
	b.AddConcept("person.f.01", "a human agent with a profile in a social network", 40, "person", "user")
	b.AddConcept("organization.f.01", "a social institution acting as an agent", 20, "organization", "org")
	b.AddConcept("group.f.01", "a collection of agents sharing membership", 15, "group")
	b.AddConcept("friend.f.01", "a person connected to another person by a mutual social link", 20, "friend", "connection", "contact")
	b.AddConcept("friend.f.02", "a person who supports an institution with donations", 5, "friend", "patron", "benefactor")
	b.AddConcept("profile.f.01", "the page describing an agent with name and interests", 15, "profile", "account")
	b.AddConcept("post.f.01", "a message published by an agent to a network feed", 15, "post", "status update")
	b.AddConcept("interest.f.01", "a topic an agent declares on a profile", 10, "interest", "topic")
	b.AddConcept("nick.f.01", "the short informal name an agent uses online", 10, "nick", "nickname", "handle")

	b.IsA("person.f.01", "agent.f.01")
	b.IsA("organization.f.01", "agent.f.01")
	b.IsA("group.f.01", "agent.f.01")
	b.IsA("friend.f.01", "person.f.01")
	b.IsA("friend.f.02", "person.f.01")
	b.PartOf("profile.f.01", "person.f.01")
	b.PartOf("nick.f.01", "profile.f.01")
	b.PartOf("interest.f.01", "profile.f.01")
	b.AddEdge("post.f.01", semnet.Related, "profile.f.01")
	return b.MustBuild()
}

const socialDoc = `<network>
  <person>
    <profile><nick>gopher42</nick><interest>chess</interest></profile>
    <friend>
      <person><profile><nick>rsc</nick></profile></person>
    </friend>
    <post>hello network</post>
  </person>
</network>`

func main() {
	foaf := buildFOAF()

	// Round-trip through the interchange format, as a user loading a
	// hand-authored .semnet file would.
	var buf bytes.Buffer
	if err := foaf.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := semnet.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom network: %d concepts, %d lemmas\n\n", loaded.Len(), len(loaded.Lemmas()))

	fw, err := xsdf.New(xsdf.Options{Network: loaded, Radius: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.DisambiguateString(socialDoc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("label -> concept")
	for _, n := range res.Tree.Nodes() {
		if n.Sense == "" {
			continue
		}
		c := loaded.Concept(xsdf.ConceptID(n.Sense))
		fmt.Printf("  %-10s -> %-12s %s\n", n.Label, n.Sense, c.Gloss)
	}
}
