// Quickstart: disambiguate one XML document with the default XSDF
// configuration and print the semantic XML tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

const doc = `<films>
  <picture title="Rear Window">
    <director> Hitchcock </director>
    <year> 1954 </year>
    <genre> mystery </genre>
    <cast>
      <star> Stewart </star>
      <star> Kelly </star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`

func main() {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.DisambiguateString(doc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selected %d nodes, assigned %d senses\n\n", res.Targets, res.Assigned)
	fmt.Println("label -> concept (score)")
	for _, n := range res.Tree.Nodes() {
		if n.Sense == "" {
			continue
		}
		c := fw.Network().Concept(xsdf.ConceptID(n.Sense))
		gloss := ""
		if c != nil {
			gloss = c.Gloss
		}
		fmt.Printf("  %-12s -> %-16s %.3f  %s\n", n.Label, n.Sense, n.SenseScore, gloss)
	}

	fmt.Println("\nsemantic XML tree:")
	if err := res.Tree.WriteXML(os.Stdout, true); err != nil {
		log.Fatal(err)
	}
}
