// Semantic-aware keyword search: the paper's first motivating application
// (§1). The example indexes the synthetic corpus after disambiguation and
// contrasts classic TF-IDF keyword search with concept search plus query
// expansion: "movie" retrieves documents tagged <picture> and <film>;
// "flower" reaches the plant catalogs through hyponym expansion.
//
//	go run ./examples/semsearch             # demo queries
//	go run ./examples/semsearch actor film  # your own query
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/semquery"
	"repro/internal/wordnet"
)

func main() {
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("indexing the synthetic corpus (disambiguating 60 documents)...")
	ix := semquery.NewIndex(net)
	for _, d := range corpus.Generate(42) {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			log.Fatal(err)
		}
		ix.Add(d.Name, d.Tree)
	}
	fmt.Printf("indexed %d documents\n\n", ix.Len())

	queries := [][]string{{"movie"}, {"flower"}, {"author database"}}
	if len(os.Args) > 1 {
		queries = [][]string{os.Args[1:]}
	}
	for _, q := range queries {
		query := strings.Join(q, " ")
		fmt.Printf("query: %q\n", query)
		fmt.Println("  syntactic (raw TF-IDF):")
		printHits(ix.SearchSyntactic(query, 5))
		fmt.Println("  semantic (concepts + expansion):")
		printHits(ix.SearchSemantic(query, 5))
		fmt.Println()
	}
}

func printHits(hits []semquery.Hit) {
	if len(hits) == 0 {
		fmt.Println("    (no results)")
		return
	}
	for _, h := range hits {
		matched := h.Matched
		if len(matched) > 4 {
			matched = matched[:4]
		}
		fmt.Printf("    %-18s %.3f  via %v\n", h.ID, h.Score, matched)
	}
}
