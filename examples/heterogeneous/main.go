// Heterogeneous sources: the paper's Figure 1 scenario. Two XML documents
// describe the same Hitchcock movie with different structures and tagging
// ("picture" vs "movie", "star" vs "actor"/"firstname"/"lastname"). After
// disambiguation, terms that denote the same real-world entity map to the
// same concepts, which is the prerequisite for semantic-aware integration.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

const doc1 = `<films>
  <picture title="Rear Window">
    <director> Hitchcock </director>
    <year> 1954 </year>
    <genre> mystery </genre>
    <cast>
      <star> Stewart </star>
      <star> Kelly </star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`

const doc2 = `<movies>
  <movie year="1954">
    <name> Rear Window </name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
      <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
    </actors>
  </movie>
</movies>`

func main() {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		log.Fatal(err)
	}

	senses := func(doc string) map[string][]string {
		res, err := fw.DisambiguateString(doc)
		if err != nil {
			log.Fatal(err)
		}
		out := map[string][]string{}
		for _, n := range res.Tree.Nodes() {
			if n.Sense != "" {
				out[n.Sense] = append(out[n.Sense], n.Label)
			}
		}
		return out
	}

	s1 := senses(doc1)
	s2 := senses(doc2)

	var shared []string
	for c := range s1 {
		if _, ok := s2[c]; ok {
			shared = append(shared, c)
		}
	}
	sort.Strings(shared)

	fmt.Println("concepts shared by both documents despite different tagging:")
	for _, c := range shared {
		fmt.Printf("  %-18s doc1 as %v, doc2 as %v\n", c, s1[c], s2[c])
	}
	if len(shared) == 0 {
		fmt.Println("  (none — disambiguation failed to align the sources)")
	}

	fmt.Println("\nconcepts only in doc1:")
	printOnly(s1, s2)
	fmt.Println("concepts only in doc2:")
	printOnly(s2, s1)
}

func printOnly(a, b map[string][]string) {
	var only []string
	for c := range a {
		if _, ok := b[c]; !ok {
			only = append(only, c)
		}
	}
	sort.Strings(only)
	for _, c := range only {
		fmt.Printf("  %-18s as %v\n", c, a[c])
	}
}
