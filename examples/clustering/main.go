// Semantic document clustering: another application from the paper's
// introduction (§1). Six small documents from three domains (movies, food
// menus, plant catalogs) are disambiguated; each document is reduced to its
// bag of concepts and clustered by average pairwise concept similarity.
// Syntactically the documents share almost no tags, but semantically the
// domain pairs group together.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/simmeasure"
)

var docs = map[string]string{
	"movies-1": `<films><picture><director>hitchcock</director><cast><star>kelly</star></cast><genre>mystery</genre></picture></films>`,
	"movies-2": `<movies><movie><name>vertigo</name><actors><actor>stewart</actor></actors><plot>a spy story</plot></movie></movies>`,
	"menu-1":   `<breakfast_menu><food><name>waffle</name><price>6</price><description>berry cream</description></food></breakfast_menu>`,
	"menu-2":   `<menu><dish><name>toast</name><description>egg bacon</description><calories>400</calories></dish></menu>`,
	"plants-1": `<catalog><plant><common>rose</common><zone>5</zone><light>sun</light></plant></catalog>`,
	"plants-2": `<catalog><plant><common>fern</common><botanical>polypodium</botanical><light>shade</light></plant></catalog>`,
}

func main() {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		log.Fatal(err)
	}
	sim := simmeasure.New(fw.Network(), simmeasure.EqualWeights())

	// Disambiguate every document into its concept set.
	concepts := map[string][]xsdf.ConceptID{}
	var names []string
	for name, doc := range docs {
		names = append(names, name)
		res, err := fw.DisambiguateString(doc)
		if err != nil {
			log.Fatal(err)
		}
		seen := map[string]bool{}
		for _, n := range res.Tree.Nodes() {
			if n.Sense != "" && !seen[n.Sense] {
				seen[n.Sense] = true
				concepts[name] = append(concepts[name], xsdf.ConceptID(n.Sense))
			}
		}
	}
	sort.Strings(names)

	// Document similarity: average best-match concept similarity, both
	// directions (a simple semantic analogue of Jaccard).
	docSim := func(a, b string) float64 {
		return (bestMatchAvg(sim, concepts[a], concepts[b]) +
			bestMatchAvg(sim, concepts[b], concepts[a])) / 2
	}

	fmt.Println("pairwise semantic document similarity:")
	fmt.Printf("%-10s", "")
	for _, n := range names {
		fmt.Printf(" %-9s", n)
	}
	fmt.Println()
	for _, a := range names {
		fmt.Printf("%-10s", a)
		for _, b := range names {
			fmt.Printf(" %-9.2f", docSim(a, b))
		}
		fmt.Println()
	}

	// Greedy single-link clustering at a fixed threshold.
	const threshold = 0.45
	parent := map[string]string{}
	var findRoot func(string) string
	findRoot = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			return x
		}
		return findRoot(parent[x])
	}
	for _, a := range names {
		for _, b := range names {
			if a < b && docSim(a, b) >= threshold {
				ra, rb := findRoot(a), findRoot(b)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	clusters := map[string][]string{}
	for _, n := range names {
		r := findRoot(n)
		clusters[r] = append(clusters[r], n)
	}
	fmt.Printf("\nclusters (single-link, threshold %.2f):\n", threshold)
	var roots []string
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for i, r := range roots {
		fmt.Printf("  cluster %d: %v\n", i+1, clusters[r])
	}
}

func bestMatchAvg(sim *simmeasure.Measure, from, to []xsdf.ConceptID) float64 {
	if len(from) == 0 || len(to) == 0 {
		return 0
	}
	var sum float64
	for _, a := range from {
		best := 0.0
		for _, b := range to {
			if s := sim.Sim(a, b); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}
