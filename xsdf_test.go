package xsdf_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

const figure1a = `<films>
  <picture title="Rear Window">
    <director> Hitchcock </director>
    <year> 1954 </year>
    <genre> mystery </genre>
    <cast>
      <star> Stewart </star>
      <star> Kelly </star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`

const figure1b = `<movies>
  <movie year="1954">
    <name> Rear Window </name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor><firstname>Grace</firstname><lastname>Kelly</lastname></actor>
      <actor><firstname>James</firstname><lastname>Stewart</lastname></actor>
    </actors>
  </movie>
</movies>`

func TestDefaultFramework(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assigned == 0 {
		t.Fatal("nothing disambiguated")
	}
	senses := map[string]string{}
	for _, n := range res.Tree.Nodes() {
		if n.Sense != "" {
			senses[n.Label] = n.Sense
		}
	}
	if senses["cast"] != "cast.n.01" {
		t.Errorf("cast -> %q", senses["cast"])
	}
	if senses["genre"] == "" || senses["director"] == "" {
		t.Errorf("core labels unresolved: %v", senses)
	}
}

// TestBothFigure1DocsAgree: the paper's motivation — two documents with
// different structure and tagging describing the same movie should map
// their key content onto the same concepts.
func TestBothFigure1DocsAgree(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	senseOf := func(doc, raw string) string {
		res, err := fw.DisambiguateString(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Tree.Nodes() {
			if strings.EqualFold(n.Raw, raw) && n.Sense != "" {
				return n.Sense
			}
		}
		return ""
	}
	k1 := senseOf(figure1a, "Kelly")
	k2 := senseOf(figure1b, "Kelly")
	if k1 == "" || k1 != k2 {
		t.Errorf("Kelly resolved differently across structures: %q vs %q", k1, k2)
	}
	if k1 != "kelly.n.01" {
		t.Errorf("Kelly = %s, want Grace Kelly (kelly.n.01)", k1)
	}
}

func TestCompoundTagInPublicAPI(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(figure1b)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Tree.Nodes() {
		if n.Raw == "firstname" && n.Sense != "first_name.n.01" {
			t.Errorf("firstname -> %q", n.Sense)
		}
	}
}

func TestOptionVariants(t *testing.T) {
	variants := []xsdf.Options{
		{Method: xsdf.ContextBased, Radius: 2},
		{Method: xsdf.Combined, ConceptWeight: 0.7, ContextWeight: 0.3},
		{VectorSimilarity: "jaccard", Method: xsdf.ContextBased},
		{VectorSimilarity: "pearson", Method: xsdf.ContextBased},
		{Threshold: 0.1},
		{AutoThreshold: true, AutoThresholdK: 0},
		{StructureOnly: true},
	}
	for i, o := range variants {
		fw, err := xsdf.New(o)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if _, err := fw.DisambiguateString(figure1a); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
}

func TestAmbiguityWeightOverride(t *testing.T) {
	o := xsdf.Options{Threshold: 0.08}
	o.AmbiguityWeights.Polysemy = 1
	o.AmbiguityWeights.Depth = 0.5
	o.AmbiguityWeights.Density = 0.5
	fw, err := xsdf.New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets == 0 || res.Targets >= res.Tree.Len() {
		t.Errorf("targets = %d of %d", res.Targets, res.Tree.Len())
	}
}

func TestAnnotatedOutput(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{})
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Tree.WriteXML(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "xsdf:sense=") {
		t.Error("annotated XML lacks sense attributes")
	}
}

func TestDefaultNetwork(t *testing.T) {
	n := xsdf.DefaultNetwork()
	if n == nil || !n.HasLemma("cast") {
		t.Fatal("default network unusable")
	}
}

func TestDisambiguateTree(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{})
	res1, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	clone := res1.Tree.Clone()
	for _, n := range clone.Nodes() {
		n.Sense = ""
	}
	res2, err := fw.DisambiguateTree(clone)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Assigned != res1.Assigned {
		t.Errorf("tree path assigned %d, reader path %d", res2.Assigned, res1.Assigned)
	}
}

func TestCandidatesPublicAPI(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{Radius: 2})
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Tree.Nodes() {
		if n.Label != "cast" {
			continue
		}
		cands := fw.Candidates(n)
		if len(cands) < 2 {
			t.Fatalf("cast candidates = %v", cands)
		}
		if cands[0].Sense != n.Sense {
			t.Errorf("top candidate %s != assigned %s", cands[0].Sense, n.Sense)
		}
		if cands[0].Gloss == "" {
			t.Error("missing gloss")
		}
		for i := 1; i < len(cands); i++ {
			if cands[i].Score > cands[i-1].Score {
				t.Error("candidates not sorted")
			}
		}
	}
}

func TestExplainSimilarity(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{})
	path := fw.ExplainSimilarity("actor.n.01", "star.n.02")
	if len(path) < 3 {
		t.Fatalf("path = %v", path)
	}
	if path[0] != "actor.n.01" || path[len(path)-1] != "star.n.02" {
		t.Errorf("path endpoints wrong: %v", path)
	}
	if p := fw.ExplainSimilarity("actor.n.01", "nonexistent.n.99"); p != nil {
		t.Errorf("path to unknown concept = %v", p)
	}
}

func TestFollowLinksPublicAPI(t *testing.T) {
	doc := `<root>
	  <credits><cast id="c1"><star>stewart</star></cast></credits>
	  <notes><entry idref="c1"><subject>kelly</subject></entry></notes>
	</root>`
	fw, err := xsdf.New(xsdf.Options{Radius: 3, FollowLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Tree.Nodes() {
		if n.Label == "kelly" && n.Sense != "kelly.n.01" {
			t.Errorf("kelly with linked cast context = %q, want kelly.n.01", n.Sense)
		}
	}
}

func TestDisambiguateBatchPublicAPI(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{})
	var trees []*xsdf.Tree
	for i := 0; i < 4; i++ {
		res, err := fw.DisambiguateString(figure1a)
		if err != nil {
			t.Fatal(err)
		}
		clone := res.Tree.Clone()
		for _, n := range clone.Nodes() {
			n.Sense = ""
		}
		trees = append(trees, clone)
	}
	results, err := fw.DisambiguateBatch(trees, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.Assigned == 0 {
			t.Errorf("batch result %d empty", i)
		}
	}
}

func TestBadInput(t *testing.T) {
	fw, _ := xsdf.New(xsdf.Options{})
	if _, err := fw.DisambiguateString("not xml"); err == nil {
		t.Error("expected parse error")
	}
}

// TestPublicStageInstrumentation: a run reports every pipeline stage in
// declared order with non-zero durations, and the framework accumulates
// the matching lifetime counters.
func TestPublicStageInstrumentation(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		xsdf.StageGuard, xsdf.StageAdmission, xsdf.StagePreprocess,
		xsdf.StageSelect, xsdf.StageDisambiguate, xsdf.StageHarmonize,
	}
	if len(res.Stages) != len(names) {
		t.Fatalf("Stages = %+v, want %d entries", res.Stages, len(names))
	}
	for i, st := range res.Stages {
		if st.Stage != names[i] {
			t.Errorf("Stages[%d] = %q, want %q", i, st.Stage, names[i])
		}
		if st.Duration <= 0 {
			t.Errorf("stage %s duration = %v, want > 0", st.Stage, st.Duration)
		}
		if st.Failed {
			t.Errorf("stage %s marked failed on a clean run", st.Stage)
		}
	}
	stats := fw.StageStats()
	if len(stats) != len(names) {
		t.Fatalf("StageStats = %+v, want %d entries", stats, len(names))
	}
	for i, st := range stats {
		if st.Stage != names[i] || st.Calls != 1 || st.Errors != 0 || st.Total <= 0 {
			t.Errorf("StageStats[%d] = %+v, want stage %s with 1 clean timed call", i, st, names[i])
		}
	}
}
