# Build xsdfd, the XSDF disambiguation daemon, into a small runtime
# image. The build stage compiles a static binary (the mini-WordNet and
# every other asset is embedded, so the binary is self-contained); the
# runtime stage is a bare Alpine with a non-root user and a busybox-wget
# healthcheck against /healthz.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/xsdfd ./cmd/xsdfd

FROM alpine:3.20
RUN adduser -D -u 10001 xsdf
COPY --from=build /out/xsdfd /usr/local/bin/xsdfd
USER xsdf
EXPOSE 8080
HEALTHCHECK --interval=10s --timeout=2s --start-period=5s \
  CMD wget -qO- http://127.0.0.1:8080/healthz || exit 1
ENTRYPOINT ["xsdfd"]
CMD ["-addr", ":8080", "-log-format", "json"]
