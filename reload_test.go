package xsdf_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro"
)

// TestPublicReload exercises the lexicon hot-swap surface end to end
// through the public API: crash-safe pack, checksummed load, staged
// reload, result stamping, and typed rollback on a corrupt candidate.
func TestPublicReload(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.LexiconInfo().Epoch; got != 1 {
		t.Fatalf("construction epoch = %d", got)
	}

	path := filepath.Join(t.TempDir(), "lexicon.semnet")
	finfo, err := xsdf.WriteNetworkFile(path, xsdf.DefaultNetwork(), "release-2")
	if err != nil {
		t.Fatal(err)
	}
	if _, rinfo, err := xsdf.ReadNetworkFile(path); err != nil {
		t.Fatal(err)
	} else if rinfo != finfo {
		t.Errorf("read-back info %+v, wrote %+v", rinfo, finfo)
	}

	info, err := fw.Reload(context.Background(), path, xsdf.ReloadOptions{ExpectedChecksum: finfo.Checksum})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || info.Version != "release-2" || info.Checksum != finfo.Checksum {
		t.Errorf("swapped info %+v", info)
	}
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.LexiconEpoch != 2 || res.LexiconVersion != "release-2" {
		t.Errorf("result stamped %d/%q", res.LexiconEpoch, res.LexiconVersion)
	}

	// A failed reload is typed and leaves the serving snapshot untouched.
	_, err = fw.Reload(context.Background(), filepath.Join(t.TempDir(), "missing.semnet"), xsdf.ReloadOptions{})
	if !errors.Is(err, xsdf.ErrReloadFailed) {
		t.Fatalf("missing-file reload: %v", err)
	}
	var re *xsdf.ReloadError
	if !errors.As(err, &re) || re.Stage != "load" {
		t.Errorf("error %v is not a load-stage *ReloadError", err)
	}
	st := fw.LexiconStats()
	if st.Swaps != 1 || st.Rollbacks != 1 {
		t.Errorf("swaps=%d rollbacks=%d, want 1/1", st.Swaps, st.Rollbacks)
	}
	if got := fw.LexiconInfo(); got != info {
		t.Errorf("rollback changed the serving snapshot: %+v", got)
	}
}
