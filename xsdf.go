// Package xsdf is the public API of the XSDF reproduction: an XML Semantic
// Disambiguation Framework (Charbel, Tekli, Chbeir, Tekli — EDBT 2015) that
// turns syntactic XML documents into semantic XML trees whose ambiguous
// element/attribute labels and text tokens are annotated with unambiguous
// concepts from a reference semantic network.
//
// Quickstart:
//
//	fw, _ := xsdf.New(xsdf.Options{})
//	res, _ := fw.DisambiguateString(`<picture title="Rear Window">...`)
//	res.Tree.WriteXML(os.Stdout, true)
//
// The zero Options use the embedded mini-WordNet lexicon, select every node
// for disambiguation, and run the concept-based process with sphere radius
// 1. See Options for every tunable parameter the paper exposes.
package xsdf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/ambiguity"
	"repro/internal/core"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/metrics"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Error taxonomy of the fault-tolerant execution layer, re-exported from
// repro/xsdferrors so callers can dispatch on failure modes with
// errors.Is / errors.As without importing a second package.
var (
	// ErrCanceled matches failures caused by context cancellation or
	// deadline expiry (the underlying context error stays matchable too).
	ErrCanceled = xsdferrors.ErrCanceled
	// ErrLimitExceeded matches any tripped resource guard; the concrete
	// error is a *LimitError naming the guard and the bound.
	ErrLimitExceeded = xsdferrors.ErrLimitExceeded
	// ErrMalformedInput matches parse failures on non-well-formed XML.
	ErrMalformedInput = xsdferrors.ErrMalformedInput
	// ErrUnknownOption matches option values outside the documented set.
	ErrUnknownOption = xsdferrors.ErrUnknownOption
	// ErrOverloaded matches documents turned away by the admission gate
	// (Options.Admission); the concrete error is an *OverloadError.
	ErrOverloaded = xsdferrors.ErrOverloaded
	// ErrDegraded matches runs cut short mid-degradation-ladder: the
	// returned *DegradedError rides alongside a partial Result.
	ErrDegraded = xsdferrors.ErrDegraded
	// ErrReloadFailed matches lexicon hot-swap failures (Framework.Reload):
	// the concrete error is a *ReloadError naming the stage that refused the
	// candidate. The serving snapshot is untouched on any such failure.
	ErrReloadFailed = xsdferrors.ErrReloadFailed
)

type (
	// LimitError reports which resource guard rejected an input.
	LimitError = xsdferrors.LimitError
	// PanicError boxes a panic recovered from a pipeline worker.
	PanicError = xsdferrors.PanicError
	// BatchError is the per-document failure report of a batch run.
	BatchError = xsdferrors.BatchError
	// OverloadError reports the admission-gate state that rejected a
	// document.
	OverloadError = xsdferrors.OverloadError
	// DegradedError reports a run canceled mid-ladder: the achieved level
	// and the targets never scored. It matches both ErrDegraded and
	// ErrCanceled.
	DegradedError = xsdferrors.DegradedError
	// ReloadError reports which stage of a staged lexicon reload (load,
	// validate, canary, swap) rejected the candidate, and why.
	ReloadError = xsdferrors.ReloadError
)

// DegradationLevel identifies a rung of the graceful-degradation ladder.
type DegradationLevel = xsdferrors.DegradationLevel

// The ladder rungs, cheapest last.
const (
	// DegradeNone is full-quality scoring under the configured method.
	DegradeNone = xsdferrors.DegradeNone
	// DegradeConceptOnly drops context vectors: concept-based scoring
	// only (Definition 8).
	DegradeConceptOnly = xsdferrors.DegradeConceptOnly
	// DegradeFirstSense assigns each token its most frequent sense with
	// no scoring at all — the MFS baseline.
	DegradeFirstSense = xsdferrors.DegradeFirstSense
	// NumDegradationLevels sizes per-level accounting arrays.
	NumDegradationLevels = xsdferrors.NumDegradationLevels
)

// Re-exported building blocks so downstream users can work with results
// without importing internal packages.
type (
	// Tree is the rooted ordered labeled XML tree (Definition 1).
	Tree = xmltree.Tree
	// Node is one tree node; disambiguated nodes carry Sense/SenseScore.
	Node = xmltree.Node
	// Network is a semantic network (Definition 2).
	Network = semnet.Network
	// ConceptID identifies a concept (word sense) in a Network.
	ConceptID = semnet.ConceptID
)

// NodeKind distinguishes element, attribute, and text-token nodes.
type NodeKind = xmltree.Kind

// The three node kinds of the document model (§3.1).
const (
	ElementNode   = xmltree.Element
	AttributeNode = xmltree.Attribute
	TokenNode     = xmltree.Token
)

// Method selects the disambiguation process of §3.5.
type Method = disambig.Method

// The three disambiguation processes.
const (
	ConceptBased = disambig.ConceptBased
	ContextBased = disambig.ContextBased
	Combined     = disambig.Combined
)

// DegradeOptions configures the graceful-degradation ladder (see
// Options.Degrade): node-count watermarks and deadline-pacing parameters.
type DegradeOptions = disambig.Degradation

// AdmissionOptions configures the admission gate (see Options.Admission):
// in-flight document/node bounds and the bounded wait for capacity.
type AdmissionOptions = core.AdmissionOptions

// GateStats is a snapshot of the admission gate: occupancy plus cumulative
// admission/rejection/wait counters (see Framework.GateStats).
type GateStats = core.GateStats

// StageTiming is one pipeline stage's record within a single run: the
// stage name, the number of items it worked over (nodes guarded, targets
// disambiguated, labels harmonized, ...), its monotonic duration, and
// whether the run stopped at it (see Result.Stages).
type StageTiming = core.StageTiming

// StageStats is one pipeline stage's cumulative accounting across a
// framework's lifetime: calls, errors, items, and total duration (see
// Framework.StageStats).
type StageStats = core.StageStats

// The pipeline stage names, in execution order, as they appear in
// StageTiming.Stage and StageStats.Stage.
const (
	StageGuard        = core.StageGuard
	StageAdmission    = core.StageAdmission
	StagePreprocess   = core.StagePreprocess
	StageSelect       = core.StageSelect
	StageDisambiguate = core.StageDisambiguate
	StageHarmonize    = core.StageHarmonize
)

// Options exposes every user parameter of the framework (Motivation 4).
// Zero values select the documented defaults.
type Options struct {
	// Network is the reference semantic network; nil selects the embedded
	// mini-WordNet (wordnet.Default()).
	Network *Network

	// StructureOnly drops element/attribute text values from the tree
	// (§3.1); the default considers structure and content.
	StructureOnly bool

	// AmbiguityWeights are w_Polysemy/w_Depth/w_Density of the ambiguity
	// degree (Definition 3). All-zero selects equal weights (1,1,1).
	AmbiguityWeights struct{ Polysemy, Depth, Density float64 }

	// Threshold is Thresh_Amb: only nodes with Amb_Deg >= Threshold are
	// disambiguated. 0 disambiguates every node.
	Threshold float64

	// AutoThreshold estimates Thresh_Amb from the document itself
	// (mean + AutoThresholdK stddev of the degree distribution).
	AutoThreshold  bool
	AutoThresholdK float64

	// Radius is the sphere neighborhood context size d (default 1).
	Radius int

	// Method is the disambiguation process (default ConceptBased).
	Method Method

	// SimilarityWeights combine the edge-based (Wu-Palmer), node-based
	// (Lin), and gloss-based (extended overlap) measures (Definition 9).
	// All-zero selects equal thirds.
	SimilarityWeights struct{ Edge, Node, Gloss float64 }

	// ConceptWeight/ContextWeight mix the two processes under the Combined
	// method (Eq. 13). Both zero selects 0.5/0.5.
	ConceptWeight float64
	ContextWeight float64

	// VectorSimilarity names the context-vector similarity: "cosine"
	// (default), "jaccard", or "pearson" (footnote 10).
	VectorSimilarity string

	// FollowLinks resolves ID/IDREF hyperlinks after parsing and lets
	// sphere contexts traverse them, treating the document as a graph (§1).
	// Dangling references are tolerated (resolvable links still apply).
	FollowLinks bool

	// NodeWorkers enables intra-document parallelism: the number of
	// goroutines the target nodes of one document are fanned across
	// during disambiguation. 0 or 1 keeps the serial per-node loop (the
	// default — batch runs already parallelize across documents);
	// negative selects GOMAXPROCS. Sense assignments are identical to a
	// serial run: workers share the framework's concurrency-safe caches
	// and each node's result depends only on the immutable network and
	// the node's own context.
	NodeWorkers int

	// OneSensePerDiscourse harmonizes repeated labels to a single document
	// sense after disambiguation (the Gale-Church-Yarowsky heuristic;
	// extension beyond the paper).
	OneSensePerDiscourse bool

	// Degrade configures the graceful-degradation ladder: under deadline
	// pressure (or past the node-count watermarks) scoring steps down
	//
	//	configured method → concept-only → first-sense
	//
	// instead of failing, and the achieved level is reported per node
	// (Node.Degraded) and per document (Result.Degraded). The zero value
	// keeps the historical fail-on-deadline behavior.
	Degrade DegradeOptions

	// Admission bounds concurrent work: documents arriving beyond
	// MaxDocs/MaxNodes wait up to MaxWait and are then rejected with an
	// *OverloadError, so an overloaded process sheds load instead of
	// slowing every caller. The zero value admits everything.
	Admission AdmissionOptions

	// MaxDepth, MaxNodes, and MaxTokenBytes are resource guards against
	// hostile inputs: element nesting depth, total node count, and the
	// byte size of a single text value. Zero selects the safe defaults
	// (xmltree.DefaultMaxDepth etc.); negative disables a guard. They
	// apply both at parse time (Disambiguate) and to pre-parsed trees
	// (DisambiguateTree, DisambiguateBatch); violations surface as
	// *LimitError.
	MaxDepth      int
	MaxNodes      int
	MaxTokenBytes int
}

// Framework is a reusable disambiguation pipeline.
type Framework struct {
	inner       *core.Framework
	followLinks bool
	limits      struct{ depth, nodes, tokenBytes int } // as given (0 = default, <0 = off)
}

// Result reports a disambiguation run.
type Result struct {
	// Tree is the semantically augmented document tree.
	Tree *Tree
	// Targets is the number of nodes selected for disambiguation and
	// Assigned the number that received a sense.
	Targets  int
	Assigned int
	// Threshold is the effective Thresh_Amb used.
	Threshold float64
	// Degraded is the worst degradation-ladder level any target was scored
	// at (DegradeNone when the ladder is off or never stepped down), and
	// NodesAtLevel counts the targets attempted at each rung. Unscored is
	// the number of targets never attempted — non-zero only alongside an
	// ErrDegraded error. NodesAtLevel sum + Unscored == Targets always.
	Degraded     DegradationLevel
	NodesAtLevel [NumDegradationLevels]int
	Unscored     int
	// LinksResolved and LinksDangling report hyperlink resolution under
	// Options.FollowLinks: the number of ID/IDREF edges installed and the
	// number of references whose anchor did not exist. Dangling references
	// degrade gracefully (resolvable links still apply), so they are
	// reported here rather than failing the run. Both are zero when
	// FollowLinks is off or the document was parsed by the caller.
	LinksResolved int
	LinksDangling int
	// Stages is the per-stage instrumentation of this run: one entry per
	// attempted pipeline stage, in execution order, with each stage's item
	// count and monotonic duration — the per-document answer to "where did
	// the time go". On a degraded abort it covers the stages that ran.
	Stages []StageTiming
	// LexiconEpoch and LexiconVersion identify the lexicon snapshot this
	// run was scored against, pinned at admission: every sense of one
	// Result comes from exactly this snapshot even if a hot-swap
	// (Framework.Reload) landed mid-run. Epochs are monotone per framework;
	// the version is the label the swap carried (see LexiconInfo).
	LexiconEpoch   uint64
	LexiconVersion string
}

// New builds a Framework from the options.
func New(o Options) (*Framework, error) {
	net := o.Network
	if net == nil {
		net = wordnet.Default()
	}
	aw := ambiguity.Weights{Polysemy: o.AmbiguityWeights.Polysemy,
		Depth: o.AmbiguityWeights.Depth, Density: o.AmbiguityWeights.Density}
	if aw == (ambiguity.Weights{}) {
		aw = ambiguity.EqualWeights()
	}
	sw := simmeasure.Weights{Edge: o.SimilarityWeights.Edge,
		Node: o.SimilarityWeights.Node, Gloss: o.SimilarityWeights.Gloss}
	if sw == (simmeasure.Weights{}) {
		sw = simmeasure.EqualWeights()
	} else {
		sw = sw.Normalize()
	}
	radius := o.Radius
	if radius < 1 {
		radius = 1
	}
	cw, xw := o.ConceptWeight, o.ContextWeight
	if cw == 0 && xw == 0 {
		cw, xw = 0.5, 0.5
	}
	var vs sphere.VectorSim
	switch strings.ToLower(o.VectorSimilarity) {
	case "", "cosine":
		vs = sphere.Cosine
	case "jaccard":
		vs = sphere.Jaccard
	case "pearson":
		vs = sphere.Pearson
	default:
		return nil, fmt.Errorf("%w: VectorSimilarity %q (want cosine, jaccard, or pearson)",
			ErrUnknownOption, o.VectorSimilarity)
	}
	if o.Method > Combined {
		return nil, fmt.Errorf("%w: Method %d (want ConceptBased, ContextBased, or Combined)",
			ErrUnknownOption, o.Method)
	}
	inner, err := core.New(net, core.Options{
		IncludeContent: !o.StructureOnly,
		Ambiguity:      aw,
		Threshold:      o.Threshold,
		AutoThreshold:  o.AutoThreshold,
		AutoThresholdK: o.AutoThresholdK,
		Disambiguation: disambig.Options{
			Radius:        radius,
			Method:        o.Method,
			SimWeights:    sw,
			ConceptWeight: cw,
			ContextWeight: xw,
			VectorSim:     vs,
			FollowLinks:   o.FollowLinks,
			// Negative NodeWorkers means GOMAXPROCS; disambig.NewShared
			// owns that normalization.
			Workers: o.NodeWorkers,
			Degrade: o.Degrade,
		},
		OneSensePerDiscourse: o.OneSensePerDiscourse,
		MaxDepth:             enabledLimit(o.MaxDepth, xmltree.DefaultMaxDepth),
		MaxNodes:             enabledLimit(o.MaxNodes, xmltree.DefaultMaxNodes),
		// core forwards MaxTokenBytes to xmltree.ParseOptions, which shares
		// the public convention (0 = default, negative = disabled) directly.
		MaxTokenBytes: o.MaxTokenBytes,
		Admission:     o.Admission,
	})
	if err != nil {
		return nil, err
	}
	fw := &Framework{inner: inner, followLinks: o.FollowLinks}
	fw.limits.depth, fw.limits.nodes, fw.limits.tokenBytes = o.MaxDepth, o.MaxNodes, o.MaxTokenBytes
	return fw, nil
}

// enabledLimit maps the public limit convention (0 = default, negative =
// disabled) onto core's (positive = enabled, else disabled).
func enabledLimit(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// Network returns the reference semantic network of the currently
// serving lexicon snapshot. Re-read it per use rather than caching the
// pointer across requests: a Reload may swap it at any time, and a
// cached pointer would silently keep answering from the retired lexicon.
func (f *Framework) Network() *Network { return f.inner.Network() }

// ReloadOptions tunes a staged lexicon reload (see Framework.Reload).
type ReloadOptions = core.ReloadOptions

// LexiconInfo identifies one lexicon snapshot: its monotone epoch,
// version label, content checksum, source, concept count, and load
// timing (see Framework.LexiconInfo).
type LexiconInfo = core.LexiconInfo

// LexiconStats couples the serving snapshot's identity with the
// framework's cumulative swap/rollback/canary counters and the reload
// latency histogram (see Framework.LexiconStats).
type LexiconStats = core.LexiconStats

// Reload hot-swaps the reference lexicon from a checksummed codec file
// (see WriteNetworkFile), with zero downtime: the candidate is loaded,
// structurally validated, and canaried against probe documents off the
// request path while the old snapshot keeps serving; only a candidate
// that passes every stage is swapped in atomically. In-flight runs
// finish on the snapshot they pinned at admission — no run ever mixes
// two lexicon versions — and the retired snapshot is freed when its
// last pinned run drains. On any failure the old lexicon keeps serving
// untouched and the error matches ErrReloadFailed (concretely a
// *ReloadError naming the failed stage). Reloads serialize: concurrent
// calls queue behind one another.
func (f *Framework) Reload(ctx context.Context, path string, opts ReloadOptions) (LexiconInfo, error) {
	return f.inner.Reload(ctx, path, opts)
}

// ReloadNetwork is Reload for an in-memory candidate network: same
// staged validation, canary, atomic swap, and rollback-by-default
// semantics, without the codec load. version labels the snapshot (a
// checksum-derived label when empty); source is a human-readable origin
// for observability ("inline" when empty).
func (f *Framework) ReloadNetwork(ctx context.Context, net *Network, version, source string, opts ReloadOptions) (LexiconInfo, error) {
	return f.inner.ReloadNetwork(ctx, net, version, source, opts)
}

// LexiconInfo identifies the currently serving lexicon snapshot.
func (f *Framework) LexiconInfo() LexiconInfo { return f.inner.LexiconInfo() }

// LexiconStats reports the serving snapshot's identity plus the
// cumulative reload counters: swaps completed, rollbacks (failed
// reloads), canary failures, retired snapshots still awaiting drain,
// and the reload-duration histogram.
func (f *Framework) LexiconStats() LexiconStats { return f.inner.LexiconStats() }

// WriteNetworkFile writes a semantic network to path in the versioned,
// checksummed codec format Reload consumes, crash-safely (temp file +
// fsync + atomic rename): a crashed or interrupted write never leaves a
// half-written lexicon at path. version labels the snapshot; empty
// derives a checksum-based label. The returned FileInfo carries the
// content checksum to pass as ReloadOptions.ExpectedChecksum.
func WriteNetworkFile(path string, net *Network, version string) (NetworkFileInfo, error) {
	return semnet.WriteFile(path, net, version)
}

// ReadNetworkFile loads a semantic network from a checksummed codec
// file, verifying the footer checksum: truncated, corrupted, or
// trailing-garbage files are rejected with an error matching
// ErrMalformedInput.
func ReadNetworkFile(path string) (*Network, NetworkFileInfo, error) {
	return semnet.ReadFile(path)
}

// NetworkFileInfo is the identity a checksummed lexicon file declares:
// content checksum, version label, and concept count.
type NetworkFileInfo = semnet.FileInfo

// Disambiguate parses an XML document from r and runs the full pipeline:
// linguistic pre-processing, (optional) hyperlink resolution,
// ambiguity-based node selection, sphere context construction, and
// semantic disambiguation.
func (f *Framework) Disambiguate(r io.Reader) (*Result, error) {
	return f.DisambiguateContext(context.Background(), r)
}

// DisambiguateContext is Disambiguate under a context: cancellation or
// deadline expiry aborts the pipeline at its next per-node check and
// returns an error matching ErrCanceled. Resource-guard violations return
// a *LimitError, malformed documents an error matching ErrMalformedInput,
// and a pipeline panic is isolated and returned as a *PanicError instead
// of crashing the caller.
func (f *Framework) DisambiguateContext(ctx context.Context, r io.Reader) (res *Result, err error) {
	defer recoverToError(&res, &err)
	if cerr := ctx.Err(); cerr != nil {
		// Don't parse on behalf of a dead caller — unless the ladder is on
		// and the context merely ran out of time, in which case the
		// pipeline finishes the document at reduced quality.
		if !(f.inner.Options().Disambiguation.Degrade.Enabled && errors.Is(cerr, context.DeadlineExceeded)) {
			return nil, xsdferrors.Canceled(cerr)
		}
	}
	t, err := f.ParseTree(r)
	if err != nil {
		return nil, err
	}
	var resolved, dangling int
	if f.followLinks {
		// Dangling references are tolerated: resolvable links still apply.
		ok, bad := t.ResolveLinksReport()
		resolved, dangling = ok, len(bad)
	}
	inner, err := f.inner.ProcessTreeContext(ctx, t)
	if inner == nil {
		return nil, err
	}
	out := fromCore(inner)
	out.LinksResolved, out.LinksDangling = resolved, dangling
	// A degraded abort (errors.Is(err, ErrDegraded)) keeps the partial
	// result alongside the error; every other error leaves it nil above.
	return out, err
}

// ParseTree parses an XML document into a Tree under the framework's
// content mode and resource limits, without disambiguating it — the
// building block for batch callers that parse up front and call
// DisambiguateBatch later.
func (f *Framework) ParseTree(r io.Reader) (*Tree, error) {
	return xmltree.Parse(r, xmltree.ParseOptions{
		IncludeContent: f.inner.Options().IncludeContent,
		Tokenize:       lingproc.Tokenize,
		MaxDepth:       f.limits.depth,
		MaxNodes:       f.limits.nodes,
		MaxTokenBytes:  f.limits.tokenBytes,
	})
}

// DisambiguateString is Disambiguate over an in-memory document.
func (f *Framework) DisambiguateString(doc string) (*Result, error) {
	return f.Disambiguate(strings.NewReader(doc))
}

// DisambiguateTree runs the pipeline on an already-parsed tree in place.
func (f *Framework) DisambiguateTree(t *Tree) (*Result, error) {
	return f.DisambiguateTreeContext(context.Background(), t)
}

// DisambiguateTreeContext is DisambiguateTree with the fault-tolerance
// semantics of DisambiguateContext (cancellation, resource guards, panic
// isolation, admission control, graceful degradation). When the run is
// canceled mid-degradation-ladder the partial Result is returned alongside
// the *DegradedError.
func (f *Framework) DisambiguateTreeContext(ctx context.Context, t *Tree) (res *Result, err error) {
	defer recoverToError(&res, &err)
	inner, err := f.inner.ProcessTreeContext(ctx, t)
	if inner == nil {
		return nil, err
	}
	return fromCore(inner), err
}

// BatchOptions tunes a DisambiguateBatchContext run.
type BatchOptions struct {
	// Workers is the worker-goroutine count; <= 0 selects GOMAXPROCS
	// (normalized by core.EffectiveWorkers, the same rule every worker
	// pool in the stack uses).
	Workers int
	// DocTimeout, when positive, bounds each document's processing time.
	// A document exceeding it fails with ErrCanceled (wrapping
	// context.DeadlineExceeded) without affecting the others — unless
	// Options.Degrade is enabled, in which case the document steps down
	// the degradation ladder and succeeds with the achieved level in
	// Result.Degraded.
	DocTimeout time.Duration
}

// DisambiguateBatch runs the pipeline over a batch of already-parsed trees
// concurrently (workers <= 0 selects GOMAXPROCS). It is
// DisambiguateBatchContext with a background context and no per-document
// deadline.
func (f *Framework) DisambiguateBatch(trees []*Tree, workers int) ([]*Result, error) {
	return f.DisambiguateBatchContext(context.Background(), trees, BatchOptions{Workers: workers})
}

// DisambiguateBatchContext runs the pipeline over a batch of trees with
// per-document fault isolation. Results are in input order; a slot is nil
// exactly when that document failed — except for documents canceled
// mid-degradation-ladder, whose partial Result stays in its slot alongside
// the *DegradedError entry. When any document fails the returned error is
// a *BatchError indexed by document, so one poisoned document (a panic,
// boxed as *PanicError), one oversized document (*LimitError), one
// rejected arrival (*OverloadError), or one per-document timeout never
// discards the rest of the batch; BatchError.Failed lists hard failures
// and BatchError.Degraded the degraded-partial documents. Cancelling ctx
// aborts the whole run promptly with ErrCanceled entries for the
// unfinished documents.
func (f *Framework) DisambiguateBatchContext(ctx context.Context, trees []*Tree, opts BatchOptions) ([]*Result, error) {
	inner, err := f.inner.ProcessTreesContext(ctx, trees, opts.Workers, opts.DocTimeout)
	out := make([]*Result, len(inner))
	for i, r := range inner {
		if r != nil {
			out[i] = fromCore(r)
		}
	}
	return out, err
}

func fromCore(r *core.Result) *Result {
	return &Result{
		Tree:           r.Tree,
		Targets:        r.Targets,
		Assigned:       r.Assigned,
		Threshold:      r.Threshold,
		Degraded:       r.Degraded,
		NodesAtLevel:   r.NodesAtLevel,
		Unscored:       r.Unscored,
		Stages:         r.Stages,
		LexiconEpoch:   r.LexiconEpoch,
		LexiconVersion: r.LexiconVersion,
	}
}

// recoverToError converts a panic escaping the pipeline into a returned
// *PanicError so one poisoned document cannot take down a serving process.
func recoverToError(res **Result, err *error) {
	if v := recover(); v != nil {
		*res = nil
		*err = &PanicError{Doc: -1, Value: v, Stack: debug.Stack()}
	}
}

// Candidate is one scored sense alternative for a node.
type Candidate struct {
	// Sense is the concept identifier ("movie.n.01", or "a+b" for compound
	// labels).
	Sense string
	// Score is the disambiguation score in [0, 1].
	Score float64
	// Gloss is the concept definition (first concept for compounds).
	Gloss string
}

// Candidates returns the full scored ranking of sense alternatives for a
// node of a previously disambiguated tree, best first — the evidence behind
// Node.Sense, for explanation UIs and confidence thresholds. Nil when the
// node's label is unknown to the network. Scoring reuses the framework's
// shared similarity/vector cache, so explaining a node of a processed
// document hits warm memos instead of recomputing the semantic measures.
func (f *Framework) Candidates(n *Node) []Candidate {
	dis := f.inner.NewDisambiguator()
	senses := dis.Candidates(n)
	if senses == nil {
		return nil
	}
	// Read glosses through the disambiguator's own cache, not through a
	// second Framework.Network() load: a concurrent Reload between the two
	// reads would pair one snapshot's scores with another's glosses.
	net := dis.Cache().Network()
	out := make([]Candidate, len(senses))
	for i, s := range senses {
		c := Candidate{Sense: s.ID(), Score: s.Score}
		if concept := net.Concept(s.Concepts[0]); concept != nil {
			c.Gloss = concept.Gloss
		}
		out[i] = c
	}
	return out
}

// ExplainSimilarity returns the taxonomic path connecting two concepts
// (through their lowest common subsumer), or nil when they share no
// ancestor — a human-readable account of why the edge-based measure
// considers them related.
func (f *Framework) ExplainSimilarity(a, b ConceptID) []ConceptID {
	path, ok := f.inner.Network().PathBetween(a, b)
	if !ok {
		return nil
	}
	return path
}

// CacheStats is a snapshot of the framework's shared memoization
// counters (pairwise similarities and semantic-network sphere vectors).
type CacheStats = disambig.CacheStats

// GateStats reports the admission gate's occupancy and wait statistics —
// the serving layer derives Retry-After hints for shed requests from
// AvgWait. ok is false when Options.Admission is disabled.
func (f *Framework) GateStats() (stats GateStats, ok bool) { return f.inner.GateStats() }

// StageStats reports the cumulative per-stage pipeline counters — calls,
// errors, items, total duration — one entry per declared stage in
// execution order, accumulated across every document the framework has
// processed. The serving layer surfaces them in /statusz; cmd/xsdf prints
// them under -stages.
func (f *Framework) StageStats() []StageStats { return f.inner.StageStats() }

// StageLatency pairs a stage name with its latency distribution: the
// histogram behind StageStats' cumulative totals, in seconds (see
// Framework.StageLatencies).
type StageLatency = core.StageLatency

// HistogramSnapshot is a point-in-time histogram view with cumulative
// bucket counts, as exported on GET /metricsz.
type HistogramSnapshot = metrics.HistogramSnapshot

// StageLatencies reports the per-stage latency histograms, one entry per
// declared stage in execution order — the distributions the serving
// layer exports as xsdf_stage_duration_seconds on GET /metricsz.
func (f *Framework) StageLatencies() []StageLatency { return f.inner.StageLatencies() }

// GateWaitLatencies reports the admission gate's wait-time histogram
// (seconds): every wait a document spent blocked on the gate, admitted or
// shed. ok is false when Options.Admission is disabled.
func (f *Framework) GateWaitLatencies() (hist HistogramSnapshot, ok bool) {
	return f.inner.GateWaitLatencies()
}

// CacheStats reports the shared cache's hit/miss counters — an
// observability hook for serving deployments (cache effectiveness is the
// difference between cold and warm batch throughput) and for tests
// asserting that repeated vocabulary is actually shared.
func (f *Framework) CacheStats() CacheStats { return f.inner.CacheStats() }

// DefaultNetwork returns the embedded mini-WordNet semantic network.
func DefaultNetwork() *Network { return wordnet.Default() }
