// Package xsdf is the public API of the XSDF reproduction: an XML Semantic
// Disambiguation Framework (Charbel, Tekli, Chbeir, Tekli — EDBT 2015) that
// turns syntactic XML documents into semantic XML trees whose ambiguous
// element/attribute labels and text tokens are annotated with unambiguous
// concepts from a reference semantic network.
//
// Quickstart:
//
//	fw, _ := xsdf.New(xsdf.Options{})
//	res, _ := fw.DisambiguateString(`<picture title="Rear Window">...`)
//	res.Tree.WriteXML(os.Stdout, true)
//
// The zero Options use the embedded mini-WordNet lexicon, select every node
// for disambiguation, and run the concept-based process with sphere radius
// 1. See Options for every tunable parameter the paper exposes.
package xsdf

import (
	"io"
	"strings"

	"repro/internal/ambiguity"
	"repro/internal/core"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// Re-exported building blocks so downstream users can work with results
// without importing internal packages.
type (
	// Tree is the rooted ordered labeled XML tree (Definition 1).
	Tree = xmltree.Tree
	// Node is one tree node; disambiguated nodes carry Sense/SenseScore.
	Node = xmltree.Node
	// Network is a semantic network (Definition 2).
	Network = semnet.Network
	// ConceptID identifies a concept (word sense) in a Network.
	ConceptID = semnet.ConceptID
)

// NodeKind distinguishes element, attribute, and text-token nodes.
type NodeKind = xmltree.Kind

// The three node kinds of the document model (§3.1).
const (
	ElementNode   = xmltree.Element
	AttributeNode = xmltree.Attribute
	TokenNode     = xmltree.Token
)

// Method selects the disambiguation process of §3.5.
type Method = disambig.Method

// The three disambiguation processes.
const (
	ConceptBased = disambig.ConceptBased
	ContextBased = disambig.ContextBased
	Combined     = disambig.Combined
)

// Options exposes every user parameter of the framework (Motivation 4).
// Zero values select the documented defaults.
type Options struct {
	// Network is the reference semantic network; nil selects the embedded
	// mini-WordNet (wordnet.Default()).
	Network *Network

	// StructureOnly drops element/attribute text values from the tree
	// (§3.1); the default considers structure and content.
	StructureOnly bool

	// AmbiguityWeights are w_Polysemy/w_Depth/w_Density of the ambiguity
	// degree (Definition 3). All-zero selects equal weights (1,1,1).
	AmbiguityWeights struct{ Polysemy, Depth, Density float64 }

	// Threshold is Thresh_Amb: only nodes with Amb_Deg >= Threshold are
	// disambiguated. 0 disambiguates every node.
	Threshold float64

	// AutoThreshold estimates Thresh_Amb from the document itself
	// (mean + AutoThresholdK stddev of the degree distribution).
	AutoThreshold  bool
	AutoThresholdK float64

	// Radius is the sphere neighborhood context size d (default 1).
	Radius int

	// Method is the disambiguation process (default ConceptBased).
	Method Method

	// SimilarityWeights combine the edge-based (Wu-Palmer), node-based
	// (Lin), and gloss-based (extended overlap) measures (Definition 9).
	// All-zero selects equal thirds.
	SimilarityWeights struct{ Edge, Node, Gloss float64 }

	// ConceptWeight/ContextWeight mix the two processes under the Combined
	// method (Eq. 13). Both zero selects 0.5/0.5.
	ConceptWeight float64
	ContextWeight float64

	// VectorSimilarity names the context-vector similarity: "cosine"
	// (default), "jaccard", or "pearson" (footnote 10).
	VectorSimilarity string

	// FollowLinks resolves ID/IDREF hyperlinks after parsing and lets
	// sphere contexts traverse them, treating the document as a graph (§1).
	// Dangling references are tolerated (resolvable links still apply).
	FollowLinks bool

	// OneSensePerDiscourse harmonizes repeated labels to a single document
	// sense after disambiguation (the Gale-Church-Yarowsky heuristic;
	// extension beyond the paper).
	OneSensePerDiscourse bool
}

// Framework is a reusable disambiguation pipeline.
type Framework struct {
	inner       *core.Framework
	followLinks bool
}

// Result reports a disambiguation run.
type Result struct {
	// Tree is the semantically augmented document tree.
	Tree *Tree
	// Targets is the number of nodes selected for disambiguation and
	// Assigned the number that received a sense.
	Targets  int
	Assigned int
	// Threshold is the effective Thresh_Amb used.
	Threshold float64
}

// New builds a Framework from the options.
func New(o Options) (*Framework, error) {
	net := o.Network
	if net == nil {
		net = wordnet.Default()
	}
	aw := ambiguity.Weights{Polysemy: o.AmbiguityWeights.Polysemy,
		Depth: o.AmbiguityWeights.Depth, Density: o.AmbiguityWeights.Density}
	if aw == (ambiguity.Weights{}) {
		aw = ambiguity.EqualWeights()
	}
	sw := simmeasure.Weights{Edge: o.SimilarityWeights.Edge,
		Node: o.SimilarityWeights.Node, Gloss: o.SimilarityWeights.Gloss}
	if sw == (simmeasure.Weights{}) {
		sw = simmeasure.EqualWeights()
	} else {
		sw = sw.Normalize()
	}
	radius := o.Radius
	if radius < 1 {
		radius = 1
	}
	cw, xw := o.ConceptWeight, o.ContextWeight
	if cw == 0 && xw == 0 {
		cw, xw = 0.5, 0.5
	}
	var vs sphere.VectorSim
	switch strings.ToLower(o.VectorSimilarity) {
	case "", "cosine":
		vs = sphere.Cosine
	case "jaccard":
		vs = sphere.Jaccard
	case "pearson":
		vs = sphere.Pearson
	}
	inner, err := core.New(net, core.Options{
		IncludeContent: !o.StructureOnly,
		Ambiguity:      aw,
		Threshold:      o.Threshold,
		AutoThreshold:  o.AutoThreshold,
		AutoThresholdK: o.AutoThresholdK,
		Disambiguation: disambig.Options{
			Radius:        radius,
			Method:        o.Method,
			SimWeights:    sw,
			ConceptWeight: cw,
			ContextWeight: xw,
			VectorSim:     vs,
			FollowLinks:   o.FollowLinks,
		},
		OneSensePerDiscourse: o.OneSensePerDiscourse,
	})
	if err != nil {
		return nil, err
	}
	return &Framework{inner: inner, followLinks: o.FollowLinks}, nil
}

// Network returns the reference semantic network in use.
func (f *Framework) Network() *Network { return f.inner.Network() }

// Disambiguate parses an XML document from r and runs the full pipeline:
// linguistic pre-processing, (optional) hyperlink resolution,
// ambiguity-based node selection, sphere context construction, and
// semantic disambiguation.
func (f *Framework) Disambiguate(r io.Reader) (*Result, error) {
	t, err := xmltree.Parse(r, xmltree.ParseOptions{
		IncludeContent: f.inner.Options().IncludeContent,
		Tokenize:       lingproc.Tokenize,
	})
	if err != nil {
		return nil, err
	}
	if f.followLinks {
		// Dangling references are tolerated: resolvable links still apply.
		_, _ = t.ResolveLinks()
	}
	res, err := f.inner.ProcessTree(t)
	if err != nil {
		return nil, err
	}
	return &Result{Tree: res.Tree, Targets: res.Targets, Assigned: res.Assigned, Threshold: res.Threshold}, nil
}

// DisambiguateString is Disambiguate over an in-memory document.
func (f *Framework) DisambiguateString(doc string) (*Result, error) {
	return f.Disambiguate(strings.NewReader(doc))
}

// DisambiguateTree runs the pipeline on an already-parsed tree in place.
func (f *Framework) DisambiguateTree(t *Tree) (*Result, error) {
	res, err := f.inner.ProcessTree(t)
	if err != nil {
		return nil, err
	}
	return &Result{Tree: res.Tree, Targets: res.Targets, Assigned: res.Assigned, Threshold: res.Threshold}, nil
}

// DisambiguateBatch runs the pipeline over a batch of already-parsed trees
// concurrently (workers <= 0 selects GOMAXPROCS). Results are in input
// order; see core.Framework.ProcessTrees for error semantics.
func (f *Framework) DisambiguateBatch(trees []*Tree, workers int) ([]*Result, error) {
	inner, err := f.inner.ProcessTrees(trees, workers)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(inner))
	for i, r := range inner {
		if r != nil {
			out[i] = &Result{Tree: r.Tree, Targets: r.Targets, Assigned: r.Assigned, Threshold: r.Threshold}
		}
	}
	return out, nil
}

// Candidate is one scored sense alternative for a node.
type Candidate struct {
	// Sense is the concept identifier ("movie.n.01", or "a+b" for compound
	// labels).
	Sense string
	// Score is the disambiguation score in [0, 1].
	Score float64
	// Gloss is the concept definition (first concept for compounds).
	Gloss string
}

// Candidates returns the full scored ranking of sense alternatives for a
// node of a previously disambiguated tree, best first — the evidence behind
// Node.Sense, for explanation UIs and confidence thresholds. Nil when the
// node's label is unknown to the network.
func (f *Framework) Candidates(n *Node) []Candidate {
	dis := disambig.New(f.inner.Network(), f.inner.Options().Disambiguation)
	senses := dis.Candidates(n)
	if senses == nil {
		return nil
	}
	out := make([]Candidate, len(senses))
	for i, s := range senses {
		c := Candidate{Sense: s.ID(), Score: s.Score}
		if concept := f.inner.Network().Concept(s.Concepts[0]); concept != nil {
			c.Gloss = concept.Gloss
		}
		out[i] = c
	}
	return out
}

// ExplainSimilarity returns the taxonomic path connecting two concepts
// (through their lowest common subsumer), or nil when they share no
// ancestor — a human-readable account of why the edge-based measure
// considers them related.
func (f *Framework) ExplainSimilarity(a, b ConceptID) []ConceptID {
	path, ok := f.inner.Network().PathBetween(a, b)
	if !ok {
		return nil
	}
	return path
}

// DefaultNetwork returns the embedded mini-WordNet semantic network.
func DefaultNetwork() *Network { return wordnet.Default() }
