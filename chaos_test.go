package xsdf_test

// Chaos suite: drives the full synthetic corpus through randomized — but
// seed-reproducible — fault schedules (injected panics, slow and failed
// semantic-network lookups, poisoned cache reads, clock skew, per-document
// timeouts) and asserts the robustness invariants: every document either
// carries a typed error or an exactly-accounted Result, and per-node
// degradation marks always agree with the per-document counters. Run with
// -race; a failure reproduces from the seed printed in the subtest name.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
)

// chaosSchedules is the number of randomized fault schedules the suite
// drives the corpus through (the acceptance floor is 50).
const chaosSchedules = 50

// chaosConfig is one seed's derived scenario.
type chaosConfig struct {
	faults     faultinject.Config
	degrade    xsdf.DegradeOptions
	docTimeout time.Duration
	workers    int
	nodeWork   int
}

// deriveChaosConfig expands a seed into a full scenario. Everything is a
// pure function of the seed, so a failing schedule replays exactly.
func deriveChaosConfig(seed int64) chaosConfig {
	rng := rand.New(rand.NewSource(seed))
	cfg := chaosConfig{
		faults: faultinject.Config{
			Seed:            seed,
			TreePanicRate:   0.10 * rng.Float64(),
			NodePanicRate:   0.005 * rng.Float64(),
			NodeDelayRate:   0.02 * rng.Float64(),
			NodeDelay:       time.Millisecond,
			LookupErrRate:   0.05 * rng.Float64(),
			LookupDelayRate: 0.02 * rng.Float64(),
			LookupDelay:     100 * time.Microsecond,
			CachePoisonRate: 0.05 * rng.Float64(),
			ClockSkewRate:   0.20 * rng.Float64(),
			ClockSkewMax:    50 * time.Millisecond,
		},
		workers:  1 + rng.Intn(4),
		nodeWork: []int{0, 0, 2}[rng.Intn(3)],
	}
	if rng.Intn(2) == 0 {
		cfg.degrade.Enabled = true
		switch rng.Intn(3) {
		case 1:
			cfg.degrade.ConceptOnlyAfter = 40
		case 2:
			cfg.degrade.FirstSenseAfter = 40
		}
	}
	if rng.Intn(2) == 0 {
		cfg.docTimeout = time.Duration(5+rng.Intn(25)) * time.Millisecond
	}
	// Drawn last so earlier schedule shapes are unchanged across seeds.
	cfg.faults.StagePanicRate = 0.02 * rng.Float64()
	return cfg
}

// chaosFrameworks caches one Framework per distinct option set, so the
// shared similarity cache warms across schedules (poisoned reads never
// enter the cache, so reuse cannot leak one seed's faults into another).
var chaosFrameworks = map[string]*xsdf.Framework{}

func chaosFramework(t *testing.T, d xsdf.DegradeOptions, nodeWorkers int) *xsdf.Framework {
	t.Helper()
	key := fmt.Sprintf("%+v/%d", d, nodeWorkers)
	if fw, ok := chaosFrameworks[key]; ok {
		return fw
	}
	fw, err := xsdf.New(xsdf.Options{Radius: 2, Degrade: d, NodeWorkers: nodeWorkers})
	if err != nil {
		t.Fatal(err)
	}
	chaosFrameworks[key] = fw
	return fw
}

func TestChaosSchedules(t *testing.T) {
	n := chaosSchedules
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	cfg := deriveChaosConfig(seed)
	restore := faultinject.Install(faultinject.New(cfg.faults))
	defer restore()

	fw := chaosFramework(t, cfg.degrade, cfg.nodeWork)
	trees := freshCorpusTrees()
	results, err := fw.DisambiguateBatchContext(context.Background(), trees,
		xsdf.BatchOptions{Workers: cfg.workers, DocTimeout: cfg.docTimeout})

	var be *xsdf.BatchError
	if err != nil && !errors.As(err, &be) {
		t.Fatalf("batch error must be *BatchError, got %T: %v", err, err)
	}
	for i, res := range results {
		var docErr error
		if be != nil {
			docErr = be.Errs[i]
		}
		if res == nil {
			checkChaosFailure(t, i, docErr)
			continue
		}
		checkChaosResult(t, i, cfg, res, docErr, trees[i])
	}
}

// checkChaosFailure: a nil result slot must carry a typed error from the
// known fault families — an injected panic, a timeout, or an overload.
func checkChaosFailure(t *testing.T, doc int, err error) {
	t.Helper()
	if err == nil {
		t.Errorf("doc %d: nil result with nil error", doc)
		return
	}
	var pe *xsdf.PanicError
	switch {
	case errors.As(err, &pe):
		if _, ok := pe.Value.(faultinject.InjectedPanic); !ok {
			t.Errorf("doc %d: panic value %T is not an injected fault — a genuine bug?", doc, pe.Value)
		}
	case errors.Is(err, xsdf.ErrCanceled) && !errors.Is(err, xsdf.ErrDegraded):
		// Per-document timeout with the ladder off.
	case errors.Is(err, xsdf.ErrOverloaded):
		// Admission rejection (not configured here, but a legal family).
	default:
		t.Errorf("doc %d: untyped failure %v", doc, err)
	}
}

// checkChaosResult: a populated result must account for every target
// exactly, agree with the per-node degradation marks, and respect the
// configured ladder.
func checkChaosResult(t *testing.T, doc int, cfg chaosConfig, res *xsdf.Result, err error, tree *xsdf.Tree) {
	t.Helper()
	if err != nil && !errors.Is(err, xsdf.ErrDegraded) {
		t.Errorf("doc %d: non-nil result with non-degraded error %v", doc, err)
		return
	}
	if err == nil && res.Unscored != 0 {
		t.Errorf("doc %d: %d unscored targets without a degraded error", doc, res.Unscored)
	}
	sum := 0
	for _, n := range res.NodesAtLevel {
		sum += n
	}
	if sum+res.Unscored != res.Targets {
		t.Errorf("doc %d: NodesAtLevel sum %d + Unscored %d != Targets %d",
			doc, sum, res.Unscored, res.Targets)
	}
	var marks [xsdf.NumDegradationLevels]int
	for _, n := range tree.Nodes() {
		if n.Degraded != xsdf.DegradeNone {
			marks[n.Degraded]++
		}
	}
	for lvl := 1; lvl < xsdf.NumDegradationLevels; lvl++ {
		if marks[lvl] != res.NodesAtLevel[lvl] {
			t.Errorf("doc %d: %d nodes marked level %d, counter says %d",
				doc, marks[lvl], lvl, res.NodesAtLevel[lvl])
		}
	}
	if !cfg.degrade.Enabled {
		if res.Degraded != xsdf.DegradeNone || marks[1]+marks[2] != 0 {
			t.Errorf("doc %d: degradation reported with the ladder off", doc)
		}
		return
	}
	if w := cfg.degrade.FirstSenseAfter; w > 0 && res.Targets > w {
		if res.NodesAtLevel[xsdf.DegradeNone] != 0 || res.NodesAtLevel[xsdf.DegradeConceptOnly] != 0 {
			t.Errorf("doc %d: %d targets past the first-sense watermark scored above it",
				doc, res.NodesAtLevel[xsdf.DegradeNone]+res.NodesAtLevel[xsdf.DegradeConceptOnly])
		}
	}
	if w := cfg.degrade.ConceptOnlyAfter; w > 0 && res.Targets > w {
		if res.NodesAtLevel[xsdf.DegradeNone] != 0 {
			t.Errorf("doc %d: %d targets past the concept-only watermark ran at full quality",
				doc, res.NodesAtLevel[xsdf.DegradeNone])
		}
	}
}

// TestFaultsDisabledBitIdentical is the degradation tentpole's safety
// proof: with no injector installed and the ladder off, two batch runs per
// method produce byte-for-byte identical sense assignments across the full
// corpus — 10,317 assignments over the three methods — and no node carries
// a degradation mark.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	if faultinject.Enabled() {
		t.Fatal("an injector is installed; chaos cleanup leaked")
	}
	const wantAssignments = 10317
	total := 0
	for _, m := range []struct {
		name   string
		method xsdf.Method
	}{{"concept", xsdf.ConceptBased}, {"context", xsdf.ContextBased}, {"combined", xsdf.Combined}} {
		run := func() ([]string, int) {
			fw, err := xsdf.New(xsdf.Options{Radius: 2, Method: m.method})
			if err != nil {
				t.Fatal(err)
			}
			results, err := fw.DisambiguateBatch(freshCorpusTrees(), 4)
			if err != nil {
				t.Fatal(err)
			}
			var flat []string
			assigned := 0
			for _, res := range results {
				assigned += res.Assigned
				if res.Degraded != xsdf.DegradeNone {
					t.Fatalf("%s: degradation level %v with the ladder off", m.name, res.Degraded)
				}
				for _, n := range res.Tree.Nodes() {
					if n.Degraded != xsdf.DegradeNone {
						t.Fatalf("%s: node %q carries a degradation mark", m.name, n.Label)
					}
					flat = append(flat, fmt.Sprintf("%s\x00%.17g", n.Sense, n.SenseScore))
				}
			}
			return flat, assigned
		}
		a, countA := run()
		b, countB := run()
		if countA != countB || len(a) != len(b) {
			t.Fatalf("%s: run shapes differ: %d/%d assignments over %d/%d nodes",
				m.name, countA, countB, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: assignment %d differs between identical runs: %q vs %q", m.name, i, a[i], b[i])
			}
		}
		total += countA
	}
	if total != wantAssignments {
		t.Errorf("corpus assignments = %d, want %d", total, wantAssignments)
	}
}
