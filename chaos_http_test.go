package xsdf_test

// HTTP chaos suite: drives the serving layer (internal/server over
// httptest) through seeded fault schedules — slow/failing semantic-network
// lookups, poisoned cache reads, injected server faults — and asserts the
// wire-level robustness invariant per response: every answer is either a
// typed non-200 status with a machine-readable kind, or a 200 whose JSON
// result accounts for every target exactly (sum over NodesAtLevel +
// Unscored == Targets) and whose X-Xsdf-Quality header agrees with the
// degradation report. Run with -race; a failure reproduces from the seed
// in the subtest name.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/server"
)

// httpChaosSchedules is the number of seeded schedules the HTTP suite runs.
const httpChaosSchedules = 8

// httpChaosConfig is one seed's derived serving scenario.
type httpChaosConfig struct {
	faults   faultinject.Config
	degrade  xsdf.DegradeOptions
	budgetMS int64
}

// deriveHTTPChaosConfig expands a seed into a scenario; pure function of
// the seed, so a failing schedule replays exactly.
func deriveHTTPChaosConfig(seed int64) httpChaosConfig {
	rng := rand.New(rand.NewSource(seed))
	cfg := httpChaosConfig{
		faults: faultinject.Config{
			Seed:            seed,
			LookupErrRate:   0.10 * rng.Float64(),
			LookupDelayRate: 0.10 * rng.Float64(),
			LookupDelay:     200 * time.Microsecond,
			CachePoisonRate: 0.10 * rng.Float64(),
			ServerErrRate:   0.05 * rng.Float64(),
		},
	}
	if rng.Intn(2) == 0 {
		cfg.degrade = xsdf.DegradeOptions{Enabled: true, FirstSenseAfter: 20 + rng.Intn(40)}
	}
	if rng.Intn(2) == 0 {
		cfg.budgetMS = int64(10 + rng.Intn(40))
	}
	return cfg
}

func TestHTTPChaosSchedules(t *testing.T) {
	n := int64(httpChaosSchedules)
	if testing.Short() {
		n = 3
	}
	for seed := int64(1); seed <= n; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runHTTPChaosSchedule(t, seed)
		})
	}
}

func runHTTPChaosSchedule(t *testing.T, seed int64) {
	cfg := deriveHTTPChaosConfig(seed)
	restore := faultinject.Install(faultinject.New(cfg.faults))
	defer restore()

	fw, err := xsdf.New(xsdf.Options{Radius: 2, Degrade: cfg.degrade})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Framework: fw,
		// Disable the breaker: a chaos seed is allowed to fail often
		// enough to trip it, and this suite asserts per-response typing,
		// not fail-fast behavior (breaker_test covers that).
		Breaker: server.BreakerOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serialize a slice of the corpus back to raw XML documents.
	trees := freshCorpusTrees()
	if len(trees) > 12 {
		trees = trees[:12]
	}
	for i, tree := range trees {
		var buf bytes.Buffer
		if err := tree.WriteXML(&buf, false); err != nil {
			t.Fatalf("doc %d: serialize: %v", i, err)
		}
		checkHTTPChaosResponse(t, ts, i, cfg, buf.String())
	}
}

// checkHTTPChaosResponse posts one document and asserts the wire
// invariant: typed status or exact accounting.
func checkHTTPChaosResponse(t *testing.T, ts *httptest.Server, doc int, cfg httpChaosConfig, document string) {
	t.Helper()
	payload, err := json.Marshal(server.DisambiguateRequest{Document: document, BudgetMS: cfg.budgetMS})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/disambiguate", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("doc %d: transport: %v", doc, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("doc %d: read body: %v", doc, err)
	}

	if resp.StatusCode != http.StatusOK {
		// Non-200: must be a known fault family with a typed kind.
		var eb server.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("doc %d: status %d with undecodable error body %q", doc, resp.StatusCode, body)
			return
		}
		switch {
		case resp.StatusCode == http.StatusGatewayTimeout && eb.Kind == "canceled":
			// Budget expiry with the ladder off (or before rung one).
		case resp.StatusCode == http.StatusInternalServerError && (eb.Kind == "injected" || eb.Kind == "internal"):
			// Injected server fault or an injected lookup failure
			// surfacing as an isolated pipeline error.
		case resp.StatusCode == http.StatusTooManyRequests && eb.Kind == "overloaded":
			// Admission shedding (not configured here, but a legal family).
		default:
			t.Errorf("doc %d: untyped failure: status %d kind %q error %q",
				doc, resp.StatusCode, eb.Kind, eb.Error)
		}
		return
	}

	// 200: the result must account for every target exactly and the
	// quality header must agree with the body.
	var res server.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Errorf("doc %d: 200 with undecodable result: %v", doc, err)
		return
	}
	quality := resp.Header.Get(server.QualityHeader)
	if quality != res.Quality {
		t.Errorf("doc %d: %s header %q != body quality %q", doc, server.QualityHeader, quality, res.Quality)
	}
	if res.Degradation == nil {
		if quality != "full" {
			t.Errorf("doc %d: quality %q without a degradation report", doc, quality)
		}
		if res.Assigned > res.Targets {
			t.Errorf("doc %d: Assigned %d > Targets %d", doc, res.Assigned, res.Targets)
		}
		return
	}
	rep := res.Degradation
	sum := 0
	for _, n := range rep.NodesAtLevel {
		sum += n
	}
	// The wire report lists every rung with a non-zero count, including
	// "full", so the account closes exactly.
	if sum+rep.Unscored != res.Targets {
		t.Errorf("doc %d: NodesAtLevel sum %d + Unscored %d != Targets %d",
			doc, sum, rep.Unscored, res.Targets)
	}
	// A scored target may still end unassigned (no candidate senses, an
	// injected lookup failure), so Assigned is bounded, not pinned.
	if res.Assigned > res.Targets-rep.Unscored {
		t.Errorf("doc %d: Assigned %d > Targets %d - Unscored %d",
			doc, res.Assigned, res.Targets, rep.Unscored)
	}
	if rep.Level == "" || quality != rep.Level {
		t.Errorf("doc %d: report level %q disagrees with quality %q", doc, rep.Level, quality)
	}
	if cfg.degrade.Enabled && cfg.degrade.FirstSenseAfter > 0 && res.Targets > cfg.degrade.FirstSenseAfter {
		if n := rep.NodesAtLevel["first-sense"]; n == 0 {
			t.Errorf("doc %d: %d targets past the first-sense watermark but none marked", doc, res.Targets)
		}
	}
}
