package xsdferrors

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestHTTPStatus covers every typed error of the taxonomy, the nil
// success, wrapped occurrences, and the precedence corners (a
// *DegradedError unwraps to a canceled cause but must still read as a
// degraded success; a *PanicError boxing a typed error stays a 500).
func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
		kind string
	}{
		{"nil", nil, http.StatusOK, "ok"},
		{"overload", &OverloadError{Docs: 3, Nodes: 90, Waited: time.Millisecond},
			http.StatusTooManyRequests, "overloaded"},
		{"overload-sentinel", ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
		{"degraded", &DegradedError{Level: DegradeFirstSense, Unscored: 2,
			Cause: Canceled(context.Canceled)}, http.StatusOK, "degraded"},
		{"degraded-sentinel", ErrDegraded, http.StatusOK, "degraded"},
		{"limit", &LimitError{Limit: "nodes", Max: 10, Actual: 11},
			http.StatusRequestEntityTooLarge, "limit"},
		{"limit-sentinel", ErrLimitExceeded, http.StatusRequestEntityTooLarge, "limit"},
		{"panic", &PanicError{Doc: -1, Value: "boom"},
			http.StatusInternalServerError, "panic"},
		{"panic-wrapping-typed", &PanicError{Doc: 0, Value: &LimitError{Limit: "depth", Max: 1, Actual: 2}},
			http.StatusInternalServerError, "panic"},
		{"canceled", Canceled(context.Canceled), http.StatusGatewayTimeout, "canceled"},
		{"deadline", Canceled(context.DeadlineExceeded), http.StatusGatewayTimeout, "canceled"},
		{"canceled-sentinel", ErrCanceled, http.StatusGatewayTimeout, "canceled"},
		{"malformed", ErrMalformedInput, http.StatusBadRequest, "malformed-input"},
		{"malformed-wrapped", fmt.Errorf("line 3: %w", ErrMalformedInput),
			http.StatusBadRequest, "malformed-input"},
		{"unknown-option", fmt.Errorf("%w: VectorSimilarity %q", ErrUnknownOption, "x"),
			http.StatusBadRequest, "unknown-option"},
		{"untyped", errors.New("surprise"), http.StatusInternalServerError, "internal"},
		{"batch-with-overload", NewBatchError([]error{nil, &OverloadError{}}),
			http.StatusTooManyRequests, "overloaded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HTTPStatus(tc.err); got != tc.code {
				t.Errorf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.code)
			}
			if got := Kind(tc.err); got != tc.kind {
				t.Errorf("Kind(%v) = %q, want %q", tc.err, got, tc.kind)
			}
		})
	}
}

// TestHTTPStatusDegradedBeatsCanceled pins the precedence rule: the
// degraded error carries a usable partial result, so even though it
// matches ErrCanceled through its cause it must not surface as a 504.
func TestHTTPStatusDegradedBeatsCanceled(t *testing.T) {
	err := error(&DegradedError{Level: DegradeConceptOnly, Unscored: 1,
		Cause: Canceled(context.DeadlineExceeded)})
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("precondition: degraded error should match ErrCanceled via its cause")
	}
	if got := HTTPStatus(err); got != http.StatusOK {
		t.Errorf("degraded-with-canceled-cause = %d, want 200", got)
	}
}
