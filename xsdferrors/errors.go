// Package xsdferrors defines the typed error taxonomy of the XSDF
// framework's fault-tolerant execution layer. Every failure mode of the
// pipeline maps onto one of the sentinels or structured types below, so
// callers can dispatch with errors.Is / errors.As instead of string
// matching:
//
//	ErrCanceled       — a context was canceled or its deadline expired
//	ErrLimitExceeded  — a resource guard tripped (see LimitError)
//	ErrMalformedInput — the input document failed to parse
//	ErrUnknownOption  — an option value is not one of the documented choices
//	ErrOverloaded     — admission control shed the document (see OverloadError)
//	ErrDegraded       — a usable but incomplete result (see DegradedError)
//	PanicError        — a worker panicked; the panic was isolated and boxed
//	BatchError        — per-document failure report of a batch run
//
// The package also defines DegradationLevel, the quality vocabulary of
// the graceful-degradation ladder, because it is shared by the same
// layers that share the error taxonomy (the tree model records the level
// per node, the pipeline per document, and DegradedError carries it).
//
// The package sits below both the public xsdf API and the internal
// pipeline packages so that all layers share one vocabulary.
package xsdferrors

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Sentinel errors for errors.Is dispatch.
var (
	// ErrCanceled reports that processing stopped because the caller's
	// context was canceled or timed out. Errors carrying it also wrap the
	// underlying context error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCanceled = errors.New("xsdf: canceled")

	// ErrLimitExceeded reports that a resource guard (depth, node count,
	// token size) rejected an input. Concrete occurrences are *LimitError
	// values, which wrap this sentinel.
	ErrLimitExceeded = errors.New("xsdf: resource limit exceeded")

	// ErrMalformedInput reports that an input document is not well-formed
	// XML (syntax error, multiple roots, unbalanced tags, empty input).
	ErrMalformedInput = errors.New("xsdf: malformed input")

	// ErrUnknownOption reports an option value outside the documented set
	// (for example an unrecognized vector-similarity name).
	ErrUnknownOption = errors.New("xsdf: unknown option")

	// ErrOverloaded reports that admission control refused to start a
	// document because the framework was at capacity and the bounded wait
	// expired. Concrete occurrences are *OverloadError values.
	ErrOverloaded = errors.New("xsdf: overloaded")

	// ErrDegraded reports that a run produced a usable but incomplete
	// result: the degradation ladder was active and processing stopped
	// (cancellation) before every target was attempted. Errors matching
	// this sentinel accompany a non-nil, partially annotated result.
	// Concrete occurrences are *DegradedError values.
	ErrDegraded = errors.New("xsdf: degraded result")

	// ErrReloadFailed reports that a staged lexicon reload (load →
	// validate → canary → swap) failed at some stage and was rolled back:
	// the framework keeps serving its previous snapshot untouched.
	// Concrete occurrences are *ReloadError values naming the stage.
	ErrReloadFailed = errors.New("xsdf: lexicon reload failed")
)

// DegradationLevel is one rung of the graceful-degradation ladder. Levels
// are ordered: a larger value means cheaper scoring and lower expected
// quality, and within one run the level only ever steps down (the value
// is monotone non-decreasing).
type DegradationLevel uint8

const (
	// DegradeNone scores nodes with the configured method at full quality.
	DegradeNone DegradationLevel = iota
	// DegradeConceptOnly falls back to concept-only scoring (Definition 8):
	// no semantic-network sphere vectors are built or compared.
	DegradeConceptOnly
	// DegradeFirstSense assigns each token its most frequent sense (the
	// canonical WSD last resort) without any context scoring.
	DegradeFirstSense

	// NumDegradationLevels is the number of ladder rungs.
	NumDegradationLevels = int(DegradeFirstSense) + 1
)

// String names the level: "full", "concept-only", or "first-sense".
func (l DegradationLevel) String() string {
	switch l {
	case DegradeNone:
		return "full"
	case DegradeConceptOnly:
		return "concept-only"
	case DegradeFirstSense:
		return "first-sense"
	default:
		return fmt.Sprintf("DegradationLevel(%d)", uint8(l))
	}
}

// ParseDegradationLevel is the inverse of DegradationLevel.String.
func ParseDegradationLevel(s string) (DegradationLevel, bool) {
	switch s {
	case "full":
		return DegradeNone, true
	case "concept-only":
		return DegradeConceptOnly, true
	case "first-sense":
		return DegradeFirstSense, true
	}
	return DegradeNone, false
}

// OverloadError reports an admission-control rejection: the gate was at
// capacity for the whole bounded wait. It matches ErrOverloaded under
// errors.Is.
type OverloadError struct {
	// Docs and Nodes are the in-flight document count and summed node
	// weight observed when the wait gave up.
	Docs  int
	Nodes int
	// Waited is how long the document waited for admission.
	Waited time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("xsdf: overloaded: admission denied after %v (%d documents / %d nodes in flight)",
		e.Waited, e.Docs, e.Nodes)
}

// Is matches ErrOverloaded, making errors.Is(err, ErrOverloaded) true for
// any *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// DegradedError reports a run that ended with a usable partial result:
// the ladder was active, Unscored targets were never attempted, and the
// nodes that were attempted are annotated in the accompanying result. It
// matches ErrDegraded under errors.Is and unwraps to the cause (typically
// an error matching ErrCanceled), so both sentinels dispatch.
type DegradedError struct {
	// Level is the ladder level in effect when processing stopped.
	Level DegradationLevel
	// Unscored is the number of targets never attempted.
	Unscored int
	// Cause is why processing stopped early.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("xsdf: degraded result at level %s: %d targets unscored: %v",
		e.Level, e.Unscored, e.Cause)
}

// Is matches ErrDegraded.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Unwrap exposes the cause to errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Cause }

// ReloadError reports a failed lexicon reload: which stage of the staged
// swap pipeline rejected the candidate, where the candidate came from,
// and why. The swap never happened — the previous snapshot keeps serving
// — so a ReloadError is an operator signal, never a data-path failure.
// It matches ErrReloadFailed under errors.Is and unwraps to its cause, so
// stage-specific dispatch (errors.Is(err, ErrMalformedInput) for codec
// corruption, say) keeps working.
type ReloadError struct {
	// Stage names the reload stage that failed: "load", "validate",
	// "canary", or "swap".
	Stage string
	// Source identifies the candidate lexicon (a file path, or a label
	// like "inline" for in-memory candidates).
	Source string
	// Cause is the underlying failure.
	Cause error
}

func (e *ReloadError) Error() string {
	return fmt.Sprintf("xsdf: lexicon reload from %s failed at %s stage: %v", e.Source, e.Stage, e.Cause)
}

// Is matches ErrReloadFailed, making errors.Is(err, ErrReloadFailed) true
// for any *ReloadError.
func (e *ReloadError) Is(target error) bool { return target == ErrReloadFailed }

// Unwrap exposes the cause to errors.Is/As.
func (e *ReloadError) Unwrap() error { return e.Cause }

// Canceled wraps a context error (context.Canceled or
// context.DeadlineExceeded) so the result matches both ErrCanceled and the
// original cause under errors.Is. A nil cause yields a bare ErrCanceled.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// LimitError reports which resource guard tripped and by how much. It
// matches ErrLimitExceeded under errors.Is.
type LimitError struct {
	// Limit names the guard: "depth", "nodes", or "token-bytes".
	Limit string
	// Max is the configured bound and Actual the observed value that
	// exceeded it (Actual may be the value at the point of abort, not the
	// input's true total — parsing stops at the first violation).
	Max    int
	Actual int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("xsdf: %s limit exceeded: %d > %d", e.Limit, e.Actual, e.Max)
}

// Is matches ErrLimitExceeded, making errors.Is(err, ErrLimitExceeded)
// true for any *LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimitExceeded }

// PanicError boxes a panic recovered from a pipeline worker: the panic
// value, the goroutine stack at the panic site, and — in batch mode — the
// index of the document being processed. One poisoned document therefore
// surfaces as an inspectable error instead of taking down the process.
type PanicError struct {
	// Doc is the batch index of the failing document (-1 outside batches).
	Doc int
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured by the recover site.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Doc >= 0 {
		return fmt.Sprintf("xsdf: panic processing document %d: %v", e.Doc, e.Value)
	}
	return fmt.Sprintf("xsdf: panic: %v", e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// BatchError is the partial-failure report of a batch run: one slot per
// input document, nil for documents that succeeded cleanly. It unwraps to
// the non-nil per-document errors, so errors.Is / errors.As search all of
// them (like errors.Join, but retaining document positions). An entry
// matching ErrDegraded is not a failure: that document carries a usable
// partial result alongside its error (see Failed and Degraded).
type BatchError struct {
	// Errs is indexed by document; nil entries are successes.
	Errs []error
}

// NewBatchError returns a *BatchError over errs, or nil when every entry
// is nil — so callers can return it unconditionally.
func NewBatchError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return &BatchError{Errs: errs}
		}
	}
	return nil
}

func (e *BatchError) Error() string {
	var parts []string
	for i, err := range e.Errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("document %d: %v", i, err))
		}
	}
	return fmt.Sprintf("xsdf: %d of %d documents failed: %s",
		len(parts), len(e.Errs), strings.Join(parts, "; "))
}

// Unwrap returns the non-nil per-document errors for errors.Is/As
// traversal.
func (e *BatchError) Unwrap() []error {
	var out []error
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// Failed returns the indices of the documents that failed outright —
// produced no result — in order. Entries matching ErrDegraded are
// excluded: those documents have a partial result and are listed by
// Degraded instead.
func (e *BatchError) Failed() []int {
	var out []int
	for i, err := range e.Errs {
		if err != nil && !errors.Is(err, ErrDegraded) {
			out = append(out, i)
		}
	}
	return out
}

// Degraded returns the indices of the documents whose error matches
// ErrDegraded: they ended early but still carry a usable partial result.
func (e *BatchError) Degraded() []int {
	var out []int
	for i, err := range e.Errs {
		if err != nil && errors.Is(err, ErrDegraded) {
			out = append(out, i)
		}
	}
	return out
}
