package xsdferrors

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledMatchesBothSentinels(t *testing.T) {
	err := Canceled(context.Canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Error("Canceled must match ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Canceled must keep matching context.Canceled")
	}
	dl := Canceled(context.DeadlineExceeded)
	if !errors.Is(dl, ErrCanceled) || !errors.Is(dl, context.DeadlineExceeded) {
		t.Error("deadline form must match both sentinels")
	}
	if !errors.Is(Canceled(nil), ErrCanceled) {
		t.Error("nil cause must still be ErrCanceled")
	}
}

func TestLimitError(t *testing.T) {
	var err error = &LimitError{Limit: "depth", Max: 100, Actual: 101}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("LimitError must match ErrLimitExceeded")
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "depth" || le.Max != 100 {
		t.Errorf("errors.As round trip failed: %+v", le)
	}
	wrapped := fmt.Errorf("document 3: %w", err)
	if !errors.Is(wrapped, ErrLimitExceeded) || !errors.As(wrapped, &le) {
		t.Error("wrapping must preserve matchability")
	}
}

func TestPanicError(t *testing.T) {
	err := &PanicError{Doc: 2, Value: "boom", Stack: []byte("stack")}
	if got := err.Error(); got != `xsdf: panic processing document 2: boom` {
		t.Errorf("message: %s", got)
	}
	cause := errors.New("inner")
	perr := &PanicError{Doc: -1, Value: cause}
	if !errors.Is(perr, cause) {
		t.Error("panic(err) must unwrap to err")
	}
}

func TestOverloadError(t *testing.T) {
	var err error = &OverloadError{Docs: 4, Nodes: 900, Waited: 0}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("OverloadError must match ErrOverloaded")
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDegraded) {
		t.Error("OverloadError must not match unrelated sentinels")
	}
	var oe *OverloadError
	if !errors.As(fmt.Errorf("doc 1: %w", err), &oe) || oe.Docs != 4 || oe.Nodes != 900 {
		t.Errorf("errors.As round trip failed: %+v", oe)
	}
}

func TestDegradedError(t *testing.T) {
	cause := Canceled(context.Canceled)
	var err error = &DegradedError{Level: DegradeFirstSense, Unscored: 7, Cause: cause}
	if !errors.Is(err, ErrDegraded) {
		t.Error("DegradedError must match ErrDegraded")
	}
	// The cancellation cause stays matchable through the wrapper.
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Error("DegradedError must keep its cause matchable")
	}
	var de *DegradedError
	if !errors.As(fmt.Errorf("doc 0: %w", err), &de) || de.Level != DegradeFirstSense || de.Unscored != 7 {
		t.Errorf("errors.As round trip failed: %+v", de)
	}
}

func TestDegradationLevelRoundTrip(t *testing.T) {
	for l := DegradeNone; int(l) < NumDegradationLevels; l++ {
		got, ok := ParseDegradationLevel(l.String())
		if !ok || got != l {
			t.Errorf("ParseDegradationLevel(%q) = %v, %v", l.String(), got, ok)
		}
	}
	if _, ok := ParseDegradationLevel("bogus"); ok {
		t.Error("bogus level must not parse")
	}
}

func TestBatchError(t *testing.T) {
	if NewBatchError([]error{nil, nil}) != nil {
		t.Fatal("all-nil batch must produce a nil error")
	}
	limit := &LimitError{Limit: "nodes", Max: 10, Actual: 11}
	pan := &PanicError{Doc: 0, Value: "boom"}
	err := NewBatchError([]error{pan, nil, limit})
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatal("errors.As must find *BatchError")
	}
	if got := be.Failed(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Failed() = %v", got)
	}
	// Both typed failures must be reachable through the aggregate.
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "nodes" {
		t.Error("LimitError not reachable through BatchError")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Doc != 0 {
		t.Error("PanicError not reachable through BatchError")
	}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("sentinel not reachable through BatchError")
	}
}

// TestBatchErrorFailedVsDegraded: Failed lists hard failures only;
// Degraded lists the entries whose result slot is still populated.
func TestBatchErrorFailedVsDegraded(t *testing.T) {
	err := NewBatchError([]error{
		&PanicError{Doc: 0, Value: "boom"},
		nil,
		Canceled(context.DeadlineExceeded),
		&DegradedError{Level: DegradeConceptOnly, Unscored: 3, Cause: Canceled(context.Canceled)},
		&OverloadError{Docs: 2, Nodes: 100},
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatal("errors.As must find *BatchError")
	}
	if got := be.Failed(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("Failed() = %v, want [0 2 4]", got)
	}
	if got := be.Degraded(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Degraded() = %v, want [3]", got)
	}
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, ErrDegraded) {
		t.Error("new sentinels not reachable through BatchError")
	}
}
