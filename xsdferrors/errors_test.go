package xsdferrors

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledMatchesBothSentinels(t *testing.T) {
	err := Canceled(context.Canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Error("Canceled must match ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Canceled must keep matching context.Canceled")
	}
	dl := Canceled(context.DeadlineExceeded)
	if !errors.Is(dl, ErrCanceled) || !errors.Is(dl, context.DeadlineExceeded) {
		t.Error("deadline form must match both sentinels")
	}
	if !errors.Is(Canceled(nil), ErrCanceled) {
		t.Error("nil cause must still be ErrCanceled")
	}
}

func TestLimitError(t *testing.T) {
	var err error = &LimitError{Limit: "depth", Max: 100, Actual: 101}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("LimitError must match ErrLimitExceeded")
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "depth" || le.Max != 100 {
		t.Errorf("errors.As round trip failed: %+v", le)
	}
	wrapped := fmt.Errorf("document 3: %w", err)
	if !errors.Is(wrapped, ErrLimitExceeded) || !errors.As(wrapped, &le) {
		t.Error("wrapping must preserve matchability")
	}
}

func TestPanicError(t *testing.T) {
	err := &PanicError{Doc: 2, Value: "boom", Stack: []byte("stack")}
	if got := err.Error(); got != `xsdf: panic processing document 2: boom` {
		t.Errorf("message: %s", got)
	}
	cause := errors.New("inner")
	perr := &PanicError{Doc: -1, Value: cause}
	if !errors.Is(perr, cause) {
		t.Error("panic(err) must unwrap to err")
	}
}

func TestBatchError(t *testing.T) {
	if NewBatchError([]error{nil, nil}) != nil {
		t.Fatal("all-nil batch must produce a nil error")
	}
	limit := &LimitError{Limit: "nodes", Max: 10, Actual: 11}
	pan := &PanicError{Doc: 0, Value: "boom"}
	err := NewBatchError([]error{pan, nil, limit})
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatal("errors.As must find *BatchError")
	}
	if got := be.Failed(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Failed() = %v", got)
	}
	// Both typed failures must be reachable through the aggregate.
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "nodes" {
		t.Error("LimitError not reachable through BatchError")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Doc != 0 {
		t.Error("PanicError not reachable through BatchError")
	}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("sentinel not reachable through BatchError")
	}
}
