package xsdferrors

import (
	"errors"
	"net/http"
)

// HTTPStatus maps an error from the pipeline onto the HTTP status code a
// serving layer should answer with. The mapping follows the taxonomy's
// semantics rather than Go error mechanics:
//
//	nil                    → 200 (success at full quality)
//	ErrDegraded            → 200 (a usable result exists; quality is
//	                              reported out of band, e.g. a header)
//	ErrOverloaded          → 429 (shed load; retry later)
//	ErrReloadFailed        → 422 (candidate lexicon rejected; old one serves)
//	*PanicError            → 500 (isolated pipeline fault)
//	ErrLimitExceeded       → 413 (input larger than a resource guard)
//	ErrMalformedInput      → 400
//	ErrUnknownOption       → 400
//	ErrCanceled            → 504 (budget or connection expired)
//	anything else          → 500
//
// ErrDegraded is checked before ErrCanceled on purpose: a *DegradedError
// unwraps to its (typically canceled) cause, and the degraded result must
// win — the caller holds usable output, not a timeout. ErrReloadFailed is
// checked before ErrMalformedInput for the same reason: a *ReloadError
// unwraps to its cause (codec corruption is ErrMalformedInput), but the
// entity that failed is the operator-supplied lexicon, not the request
// body, so 400 would blame the wrong bytes.
func HTTPStatus(err error) int {
	var pe *PanicError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrDegraded):
		return http.StatusOK
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrReloadFailed):
		return http.StatusUnprocessableEntity
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.Is(err, ErrLimitExceeded):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrMalformedInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownOption):
		return http.StatusBadRequest
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Kind names an error's taxonomy family with a stable lowercase token for
// wire formats and logs ("overloaded", "degraded", "limit", ...). The
// precedence mirrors HTTPStatus. A nil error is "ok"; an error outside the
// taxonomy is "internal".
func Kind(err error) string {
	var pe *PanicError
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrDegraded):
		return "degraded"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrReloadFailed):
		return "reload-failed"
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, ErrLimitExceeded):
		return "limit"
	case errors.Is(err, ErrMalformedInput):
		return "malformed-input"
	case errors.Is(err, ErrUnknownOption):
		return "unknown-option"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	default:
		return "internal"
	}
}
