package semquery

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/wordnet"
)

// corpusIndex builds an index over the full disambiguated corpus once.
func corpusIndex(b *testing.B) *Index {
	b.Helper()
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndex(net)
	for _, d := range corpus.Generate(42) {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			b.Fatal(err)
		}
		ix.Add(d.Name, d.Tree)
	}
	return ix
}

func BenchmarkIndexBuild(b *testing.B) {
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	docs := corpus.Generate(42)
	for _, d := range docs {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex(net)
		for _, d := range docs {
			ix.Add(d.Name, d.Tree)
		}
	}
}

func BenchmarkSearchSyntactic(b *testing.B) {
	ix := corpusIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchSyntactic("movie flower author", 10)
	}
}

func BenchmarkSearchSemantic(b *testing.B) {
	ix := corpusIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchSemantic("movie flower author", 10)
	}
}

func BenchmarkExpandTerm(b *testing.B) {
	ix := corpusIndex(b)
	terms := []string{"movie", "flower", "star", "book", "state"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ExpandTerm(terms[i%len(terms)])
	}
}
