package semquery

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wordnet"
)

// buildIndex disambiguates and indexes a set of named documents.
func buildIndex(t *testing.T, docs map[string]string) *Index {
	t.Helper()
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	for id, doc := range docs {
		res, err := fw.ProcessReader(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		ix.Add(id, res.Tree)
	}
	return ix
}

var testDocs = map[string]string{
	"hitchcock": `<films><picture><director>hitchcock</director><cast><star>kelly</star></cast><genre>mystery</genre></picture></films>`,
	"verdi":     `<operas><opera><composer>verdi</composer></opera></operas>`,
	"roses":     `<catalog><plant><common>rose</common><zone>5</zone><light>sun</light></plant></catalog>`,
	"breakfast": `<breakfast_menu><food><name>waffle</name><description>berry cream</description></food></breakfast_menu>`,
}

func TestSyntacticSearchExactOnly(t *testing.T) {
	ix := buildIndex(t, testDocs)
	// "picture" matches the hitchcock doc literally.
	hits := ix.SearchSyntactic("picture", 10)
	if len(hits) != 1 || hits[0].ID != "hitchcock" {
		t.Fatalf("hits = %+v", hits)
	}
	// "movie" appears in no document: syntactic search finds nothing.
	if hits := ix.SearchSyntactic("movie", 10); len(hits) != 0 {
		t.Fatalf("syntactic 'movie' should miss, got %+v", hits)
	}
}

// TestSemanticSynonymy: the paper's motivation — "movie" must retrieve the
// document tagged "picture"/"films" because they share the concept
// picture.n.02.
func TestSemanticSynonymy(t *testing.T) {
	ix := buildIndex(t, testDocs)
	hits := ix.SearchSemantic("movie", 10)
	if len(hits) == 0 || hits[0].ID != "hitchcock" {
		t.Fatalf("semantic 'movie' hits = %+v", hits)
	}
}

// TestSemanticExpansionHyponym: "flower" retrieves the rose catalog via
// the one-hop hypernym/hyponym expansion.
func TestSemanticExpansionHyponym(t *testing.T) {
	ix := buildIndex(t, testDocs)
	hits := ix.SearchSemantic("flower", 10)
	found := false
	for _, h := range hits {
		if h.ID == "roses" {
			found = true
		}
	}
	if !found {
		t.Fatalf("semantic 'flower' should reach the rose doc: %+v", hits)
	}
}

func TestSemanticRankingPrefersDirectMatch(t *testing.T) {
	ix := buildIndex(t, testDocs)
	hits := ix.SearchSemantic("rose", 10)
	if len(hits) == 0 || hits[0].ID != "roses" {
		t.Fatalf("direct match should rank first: %+v", hits)
	}
}

func TestUnknownQueryTerm(t *testing.T) {
	ix := buildIndex(t, testDocs)
	if hits := ix.SearchSemantic("zzqx", 10); len(hits) != 0 {
		t.Fatalf("unknown term hits = %+v", hits)
	}
	if exp := ix.ExpandTerm("zzqx"); exp != nil {
		t.Fatal("unknown term should expand to nil")
	}
}

func TestStopWordsDropped(t *testing.T) {
	ix := buildIndex(t, testDocs)
	a := ix.SearchSemantic("the movie", 10)
	b := ix.SearchSemantic("movie", 10)
	if len(a) != len(b) || (len(a) > 0 && a[0].ID != b[0].ID) {
		t.Fatal("stop words should not affect results")
	}
}

func TestExpandTermCorpusDominantSense(t *testing.T) {
	ix := buildIndex(t, testDocs)
	// "star" in this corpus is indexed as the performer (star.n.02 in the
	// hitchcock doc context); the corpus-dominant sense must win over the
	// celestial default.
	exp := ix.ExpandTerm("star")
	if exp["star.n.02"] != 1 {
		t.Fatalf("expected star.n.02 dominant, got %v", exp)
	}
	// Expansion carries neighbors at the decayed weight.
	var hasExpansion bool
	for c, w := range exp {
		if c != "star.n.02" && w == ExpansionWeight {
			hasExpansion = true
		}
	}
	if !hasExpansion {
		t.Error("no expanded concepts")
	}
}

func TestTopKTruncation(t *testing.T) {
	ix := buildIndex(t, testDocs)
	if hits := ix.SearchSemantic("plant food movie opera", 1); len(hits) > 1 {
		t.Fatalf("k=1 returned %d hits", len(hits))
	}
}

func TestSplitSense(t *testing.T) {
	got := splitSense("a.n.01+b.n.02")
	if len(got) != 2 || got[0] != "a.n.01" || got[1] != "b.n.02" {
		t.Fatalf("splitSense = %v", got)
	}
	if got := splitSense("only.n.01"); len(got) != 1 {
		t.Fatalf("splitSense single = %v", got)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(wordnet.Default())
	if hits := ix.SearchSemantic("movie", 5); len(hits) != 0 {
		t.Fatal("empty index returned hits")
	}
	if ix.Len() != 0 {
		t.Fatal("empty index Len != 0")
	}
}
