// Package semquery implements semantic-aware keyword search over
// disambiguated XML documents — the first application motivating the paper
// (§1: "semantic-aware query rewriting and expansion: expanding keyword
// queries by including semantically related terms from XML documents to
// obtain relevant results").
//
// The package provides a small TF-IDF retrieval substrate with two search
// modes over the same index:
//
//   - Syntactic: classic TF-IDF over raw document terms; "movie" only
//     matches documents that literally contain "movie".
//   - Semantic: query terms are sense-disambiguated against the corpus
//     (corpus-frequency dominant sense), matched against the concept
//     postings produced by XSDF disambiguation, and expanded to
//     one-hop-related concepts with a decay weight — so "movie" also
//     retrieves documents tagged "picture" or "film", and "flower"
//     retrieves documents about roses.
package semquery

import (
	"math"
	"sort"

	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// posting is one document's term/concept occurrence count.
type posting struct {
	doc int
	tf  int
}

// Index is an inverted index over disambiguated XML documents. Build it
// with NewIndex and Add; it is immutable during searches and safe for
// concurrent readers after the last Add.
type Index struct {
	net      *semnet.Network
	ids      []string
	byTerm   map[string][]posting
	byCon    map[semnet.ConceptID][]posting
	termLens []int // per-document term counts (for normalization)
	// conFreq counts concept occurrences corpus-wide, used to pick the
	// corpus-dominant sense of a query term.
	conFreq map[semnet.ConceptID]int
}

// NewIndex returns an empty index bound to the semantic network used for
// query expansion.
func NewIndex(net *semnet.Network) *Index {
	return &Index{
		net:     net,
		byTerm:  make(map[string][]posting),
		byCon:   make(map[semnet.ConceptID][]posting),
		conFreq: make(map[semnet.ConceptID]int),
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.ids) }

// Add indexes one document tree. The tree should already be pre-processed
// and disambiguated (Node.Label set, Node.Sense filled where resolved);
// undisambiguated nodes still contribute their terms to the syntactic
// postings.
func (ix *Index) Add(id string, t *xmltree.Tree) {
	doc := len(ix.ids)
	ix.ids = append(ix.ids, id)
	termTF := map[string]int{}
	conTF := map[semnet.ConceptID]int{}
	terms := 0
	for _, n := range t.Nodes() {
		tokens := n.Tokens
		if len(tokens) == 0 {
			tokens = []string{n.Label}
		}
		for _, tok := range tokens {
			if tok == "" {
				continue
			}
			termTF[tok]++
			terms++
		}
		if n.Sense != "" {
			for _, c := range splitSense(n.Sense) {
				conTF[c]++
				ix.conFreq[c]++
			}
		}
	}
	for term, tf := range termTF {
		ix.byTerm[term] = append(ix.byTerm[term], posting{doc, tf})
	}
	for c, tf := range conTF {
		ix.byCon[c] = append(ix.byCon[c], posting{doc, tf})
	}
	ix.termLens = append(ix.termLens, terms)
}

// splitSense expands a possibly compound sense id ("a+b") into concepts.
func splitSense(s string) []semnet.ConceptID {
	var out []semnet.ConceptID
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' {
			if i > start {
				out = append(out, semnet.ConceptID(s[start:i]))
			}
			start = i + 1
		}
	}
	return out
}

// Hit is one ranked search result.
type Hit struct {
	ID    string
	Score float64
	// Matched lists the query/expansion keys that contributed (terms for
	// syntactic search, concept ids for semantic search).
	Matched []string
}

// SearchSyntactic ranks documents by classic TF-IDF over raw terms.
func (ix *Index) SearchSyntactic(query string, k int) []Hit {
	scores := make([]float64, len(ix.ids))
	matched := make([][]string, len(ix.ids))
	for _, term := range queryTerms(query, ix.net) {
		postings := ix.byTerm[term]
		if len(postings) == 0 {
			continue
		}
		idf := ix.idf(len(postings))
		for _, p := range postings {
			scores[p.doc] += tfWeight(p.tf, ix.termLens[p.doc]) * idf
			matched[p.doc] = append(matched[p.doc], term)
		}
	}
	return ix.rank(scores, matched, k)
}

// Expansion weights: the dominant sense scores 1; its one-hop neighbors,
// the term's secondary senses, and their neighbors decay progressively.
// The tiers keep precision (direct concept matches dominate) while the
// recall tail still reaches e.g. hyponyms of a secondary sense.
const (
	ExpansionWeight          = 0.5
	SecondarySenseWeight     = 0.6
	SecondaryExpansionWeight = 0.3
)

// SearchSemantic ranks documents by TF-IDF over concept postings, after
// disambiguating each query term to its corpus-dominant sense and
// expanding to the one-hop semantic neighborhood.
func (ix *Index) SearchSemantic(query string, k int) []Hit {
	scores := make([]float64, len(ix.ids))
	matched := make([][]string, len(ix.ids))
	for _, term := range queryTerms(query, ix.net) {
		for c, w := range ix.ExpandTerm(term) {
			postings := ix.byCon[c]
			if len(postings) == 0 {
				continue
			}
			idf := ix.idf(len(postings))
			for _, p := range postings {
				scores[p.doc] += w * tfWeight(p.tf, ix.termLens[p.doc]) * idf
				matched[p.doc] = append(matched[p.doc], string(c))
			}
		}
	}
	return ix.rank(scores, matched, k)
}

// ExpandTerm maps a query term to weighted concepts: the corpus-dominant
// sense at weight 1 and its one-hop neighbors at ExpansionWeight. Unknown
// terms return nil.
func (ix *Index) ExpandTerm(term string) map[semnet.ConceptID]float64 {
	senses := ix.net.Senses(term)
	if len(senses) == 0 {
		return nil
	}
	// Query-sense disambiguation: prefer the sense most frequent in the
	// indexed corpus; fall back to the network's dominant sense.
	best := senses[0]
	bestCount := ix.conFreq[best]
	for _, s := range senses[1:] {
		if c := ix.conFreq[s]; c > bestCount {
			best, bestCount = s, c
		}
	}
	out := map[semnet.ConceptID]float64{best: 1}
	add := func(c semnet.ConceptID, w float64) {
		if cur, dup := out[c]; !dup || w > cur {
			out[c] = w
		}
	}
	for c, dist := range ix.net.Neighborhood(best, 1) {
		if dist > 0 {
			add(c, ExpansionWeight)
		}
	}
	for _, s := range senses {
		if s == best {
			continue
		}
		add(s, SecondarySenseWeight)
		for c, dist := range ix.net.Neighborhood(s, 1) {
			if dist > 0 {
				add(c, SecondaryExpansionWeight)
			}
		}
	}
	return out
}

func (ix *Index) idf(df int) float64 {
	return math.Log(1 + float64(len(ix.ids))/float64(df))
}

func tfWeight(tf, docLen int) float64 {
	if docLen == 0 {
		return 0
	}
	return (1 + math.Log(float64(tf))) / math.Sqrt(float64(docLen))
}

func (ix *Index) rank(scores []float64, matched [][]string, k int) []Hit {
	var hits []Hit
	for doc, s := range scores {
		if s <= 0 {
			continue
		}
		m := dedupe(matched[doc])
		hits = append(hits, Hit{ID: ix.ids[doc], Score: s, Matched: m})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// queryTerms pre-processes a keyword query with the same pipeline as
// document values: tokenization, stop-word removal, lexicon normalization.
func queryTerms(q string, net *semnet.Network) []string {
	var out []string
	for _, tok := range lingproc.Tokenize(q) {
		if w, ok := lingproc.ProcessValueToken(tok, net); ok {
			out = append(out, w)
		}
	}
	return out
}
