package semnet

// This file implements the dense integer concept index that backs the
// scoring hot path. Every Network built by Builder (and therefore every
// snapshot the hot-swap layer publishes) carries one ConceptIndex assigned
// at build time: dense ids are positions in the immutable insertion order,
// so they are stable for the lifetime of the Network and never reused
// across snapshot epochs (a reloaded Network gets a fresh index).
//
// The scoring core (sphere vectors, simmeasure, disambig caches) runs
// entirely on these int32 ids; ConceptID strings appear only at the API
// boundary (building the network, reporting assigned senses).

// DenseID is the position of a concept in its Network's insertion order.
// It is only meaningful relative to the Network (epoch) that assigned it.
type DenseID = int32

// DenseEdge is one adjacency entry of the integer-indexed edge lists.
type DenseEdge struct {
	To  DenseID
	Rel Relation
}

// ConceptIndex is the bidirectional ConceptID <-> dense int32 mapping,
// built once per Network. It is immutable after Build and safe for
// concurrent use.
type ConceptIndex struct {
	ids   []ConceptID // dense -> ConceptID, insertion order
	dense map[ConceptID]DenseID
}

func newConceptIndex(order []ConceptID) *ConceptIndex {
	ix := &ConceptIndex{
		ids:   order,
		dense: make(map[ConceptID]DenseID, len(order)),
	}
	for i, id := range order {
		ix.dense[id] = DenseID(i)
	}
	return ix
}

// Len returns the number of indexed concepts.
func (ix *ConceptIndex) Len() int { return len(ix.ids) }

// Dense returns the dense id of the concept, or false when the ConceptID is
// not part of the Network this index was built for.
func (ix *ConceptIndex) Dense(id ConceptID) (DenseID, bool) {
	d, ok := ix.dense[id]
	return d, ok
}

// ID returns the ConceptID at the dense position, or false when d is out of
// range for this Network.
func (ix *ConceptIndex) ID(d DenseID) (ConceptID, bool) {
	if d < 0 || int(d) >= len(ix.ids) {
		return "", false
	}
	return ix.ids[d], true
}

// mix64 is the 64-bit finalizer of MurmurHash3: two multiplies and three
// xor-shifts. It is the shard/key mix for every integer-keyed cache in the
// scoring core, replacing the per-lookup fnv/maphash-over-strings the
// string-keyed shards needed.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PairKey packs two dense ids into one map key. Callers canonicalize the
// order when the relation is symmetric.
func PairKey(a, b DenseID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// MixPair returns a well-distributed hash of the packed pair, for shard
// selection in int-keyed caches.
func MixPair(a, b DenseID) uint64 { return mix64(PairKey(a, b)) }

// Index returns the Network's concept index. The returned value is shared
// and read-only.
func (n *Network) Index() *ConceptIndex { return n.index }

// Dense returns the dense id of a ConceptID, or false when unknown.
func (n *Network) Dense(id ConceptID) (DenseID, bool) { return n.index.Dense(id) }

// ConceptAt returns the ConceptID at a dense position, or false when out of
// range.
func (n *Network) ConceptAt(d DenseID) (ConceptID, bool) { return n.index.ID(d) }

// DepthDense is Depth for an in-range dense id.
func (n *Network) DepthDense(d DenseID) int { return int(n.depthD[d]) }

// ICDense is IC for an in-range dense id (precomputed at build time).
func (n *Network) ICDense(d DenseID) float64 { return n.icD[d] }

// EdgesDense returns the integer-indexed adjacency of d. Read-only.
func (n *Network) EdgesDense(d DenseID) []DenseEdge { return n.edgesD[d] }

// LabelDense returns the label-dimension id of the concept's primary label
// (always a known label: primary labels are lemmas).
func (n *Network) LabelDense(d DenseID) int32 { return n.labelOfD[d] }

// ExpandedGlossTokensDense is ExpandedGlossTokens for an in-range dense id.
func (n *Network) ExpandedGlossTokensDense(d DenseID) []string { return n.expGlossD[d] }

// SensesDense returns the dense ids of the lemma's senses in the same
// frequency order as Senses. The slice is shared and read-only; nil when
// the lemma is unknown.
func (n *Network) SensesDense(lemma string) []DenseID {
	return n.sensesD[lower(lemma)]
}

// LCSDense is LCS over dense ids: the deepest shared ancestor in the
// hypernym hierarchy, memoized per ordered pair under sharded locks with a
// two-multiply integer mix (no hasher allocation, no string conversion).
func (n *Network) LCSDense(a, b DenseID) (DenseID, bool) {
	key := PairKey(a, b)
	sh := &n.lcsMemo.shards[mix64(key)&(lcsShardCount-1)]
	sh.mu.RLock()
	e, hit := sh.m[key]
	sh.mu.RUnlock()
	if hit {
		return e.d, e.ok
	}
	d, ok := n.lcsComputeDense(a, b)
	sh.mu.Lock()
	sh.m[key] = lcsEntry{d: d, ok: ok}
	sh.mu.Unlock()
	return d, ok
}

// lcsComputeDense scans b's ancestors in BFS visit order — the same walk
// (tie-breaks included) the string-keyed implementation did — keeping the
// deepest one that is also an ancestor of a. Membership in a's ancestor set
// is a binary search over the sorted dense ancestor array.
func (n *Network) lcsComputeDense(a, b DenseID) (DenseID, bool) {
	anc := n.ancSortedD[a]
	best := DenseID(-1)
	bestDepth := int32(-1)
	for _, cur := range n.ancListD[b] {
		if !containsSorted(anc, cur) {
			continue
		}
		if d := n.depthD[cur]; d > bestDepth {
			best, bestDepth = cur, d
		}
	}
	if bestDepth < 0 {
		return -1, false
	}
	return best, true
}

// containsSorted reports whether x occurs in the ascending slice s.
// Ancestor lists are taxonomy-depth sized, so a branch-light binary search
// beats both map lookups and linear scans.
func containsSorted(s []int32, x int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Vocab implementation (sphere.Vocab): the network's label universe is its
// lemma set, sorted lexicographically, so dense label order coincides with
// string order and merge-join similarity visits dimensions in the same
// order the string-keyed maps were folded in.

// LabelID returns the dense dimension of a label, or false when the label
// is not a lemma of this network. Matching is exact (the scoring core sees
// labels already normalized by lingproc).
func (n *Network) LabelID(label string) (int32, bool) {
	d, ok := n.labelID[label]
	return d, ok
}

// LabelName returns the label at a dense dimension, or "" when out of
// range (vector dimensions above NumLabels are per-vector unknowns with no
// global name).
func (n *Network) LabelName(dim int32) string {
	if dim < 0 || int(dim) >= len(n.labels) {
		return ""
	}
	return n.labels[dim]
}

// NumLabels returns the size of the label universe; vector dimensions >=
// NumLabels denote labels unknown to the network.
func (n *Network) NumLabels() int { return len(n.labels) }
