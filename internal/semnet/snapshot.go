package semnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/xsdferrors"
)

// This file makes codec files a trustworthy unit of deployment. A plain
// Save/Load round-trip is fine for interactive use, but a daemon that
// hot-swaps its lexicon must never trust "whatever parses": a file
// truncated by a crashed writer or a partial copy still parses as a
// smaller, silently wrong network. WriteFile therefore appends a
// checksum footer and publishes via temp-file + fsync + atomic rename,
// and ReadFile refuses anything whose bytes do not hash to the footer —
// truncation, trailing garbage, and bit rot all surface as typed
// ErrMalformedInput-family errors instead of quietly degraded scores.

// footerPrefix starts the footer line. The footer is a '#' comment, so
// files written by WriteFile stay loadable by the lenient Load.
const footerPrefix = "# xsdf-lexicon-footer "

// FileInfo identifies one checksummed codec file: the identity the
// daemon reports on /statusz after swapping the file in.
type FileInfo struct {
	// Checksum is the hex SHA-256 of the content bytes above the footer.
	Checksum string
	// Version is the operator-chosen version label recorded at pack time
	// ("sha-<prefix>" when none was given).
	Version string
	// Concepts is the concept count recorded in the footer.
	Concepts int
}

// Checksum returns the hex SHA-256 of the network's canonical Save
// bytes, computed once and memoized. For a network loaded via ReadFile
// this is not necessarily the file checksum (edge materialization can
// reorder emission); use the FileInfo for file identity and this for
// in-memory identity (e.g. the embedded lexicon).
func (n *Network) Checksum() string {
	n.checksumOnce.Do(func() {
		h := sha256.New()
		// Save into a hash never fails: the writer cannot error.
		_ = n.Save(h)
		n.checksum = hex.EncodeToString(h.Sum(nil))
	})
	return n.checksum
}

// VersionLabel derives the version label WriteFile records when the
// operator supplies none: "sha-" plus a checksum prefix.
func VersionLabel(checksum string) string {
	if len(checksum) > 12 {
		checksum = checksum[:12]
	}
	return "sha-" + checksum
}

// WriteFile publishes the network to path crash-safely: the codec bytes
// plus a checksum footer are written to a temp file in the target
// directory, fsynced, and atomically renamed into place, so readers see
// either the old file or the complete new one — never a torn write. An
// empty version derives a "sha-<prefix>" label; whitespace in the label
// is folded to '-' (the footer is line-oriented).
func WriteFile(path string, n *Network, version string) (FileInfo, error) {
	var content bytes.Buffer
	if err := n.Save(&content); err != nil {
		return FileInfo{}, fmt.Errorf("semnet: write %s: %w", path, err)
	}
	sum := sha256.Sum256(content.Bytes())
	info := FileInfo{
		Checksum: hex.EncodeToString(sum[:]),
		Version:  strings.Join(strings.Fields(version), "-"),
		Concepts: n.Len(),
	}
	if info.Version == "" {
		info.Version = VersionLabel(info.Checksum)
	}
	fmt.Fprintf(&content, "%ssha256=%s version=%s concepts=%d\n",
		footerPrefix, info.Checksum, info.Version, info.Concepts)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".lexicon-*.tmp")
	if err != nil {
		return FileInfo{}, fmt.Errorf("semnet: write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(content.Bytes()); err != nil {
		tmp.Close()
		return FileInfo{}, fmt.Errorf("semnet: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return FileInfo{}, fmt.Errorf("semnet: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return FileInfo{}, fmt.Errorf("semnet: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return FileInfo{}, fmt.Errorf("semnet: publish %s: %w", path, err)
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// filesystems; a failure here cannot un-publish the file.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return info, nil
}

// malformed wraps a file-integrity failure so it matches
// xsdferrors.ErrMalformedInput under errors.Is.
func malformed(path, format string, args ...any) error {
	return fmt.Errorf("semnet: %s: %s: %w", path, fmt.Sprintf(format, args...), xsdferrors.ErrMalformedInput)
}

// ReadFile loads a checksummed codec file written by WriteFile. It
// requires the footer to be the final line and the content above it to
// hash to the recorded checksum, rejecting truncated files, trailing
// garbage, and corrupted bytes with ErrMalformedInput-family errors
// before any of the content is trusted. Structural validation is the
// caller's next step (VerifyFile bundles both).
func ReadFile(path string) (*Network, FileInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, FileInfo{}, fmt.Errorf("semnet: read %s: %w", path, err)
	}
	info, content, err := splitFooter(path, data)
	if err != nil {
		return nil, FileInfo{}, err
	}
	sum := sha256.Sum256(content)
	if got := hex.EncodeToString(sum[:]); got != info.Checksum {
		return nil, FileInfo{}, malformed(path, "checksum mismatch: content hashes to %s, footer records %s (truncated or corrupted file)", got, info.Checksum)
	}
	n, err := Load(bytes.NewReader(content))
	if err != nil {
		return nil, FileInfo{}, fmt.Errorf("semnet: %s: %w", path, err)
	}
	if n.Len() != info.Concepts {
		return nil, FileInfo{}, malformed(path, "footer records %d concepts, content holds %d", info.Concepts, n.Len())
	}
	return n, info, nil
}

// splitFooter locates and parses the footer, which must be the file's
// final, newline-terminated line.
func splitFooter(path string, data []byte) (FileInfo, []byte, error) {
	if len(data) == 0 {
		return FileInfo{}, nil, malformed(path, "empty file")
	}
	if data[len(data)-1] != '\n' {
		return FileInfo{}, nil, malformed(path, "missing final newline (truncated file or trailing garbage)")
	}
	idx := bytes.LastIndexByte(data[:len(data)-1], '\n')
	last := string(data[idx+1 : len(data)-1])
	if !strings.HasPrefix(last, footerPrefix) {
		return FileInfo{}, nil, malformed(path, "missing checksum footer (unchecksummed, truncated, or garbage-appended file)")
	}
	var info FileInfo
	for _, field := range strings.Fields(last[len(footerPrefix):]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return FileInfo{}, nil, malformed(path, "bad footer field %q", field)
		}
		switch key {
		case "sha256":
			if len(val) != hex.EncodedLen(sha256.Size) {
				return FileInfo{}, nil, malformed(path, "bad footer checksum %q", val)
			}
			info.Checksum = val
		case "version":
			info.Version = val
		case "concepts":
			nc, err := strconv.Atoi(val)
			if err != nil || nc < 0 {
				return FileInfo{}, nil, malformed(path, "bad footer concept count %q", val)
			}
			info.Concepts = nc
		default:
			return FileInfo{}, nil, malformed(path, "unknown footer field %q", field)
		}
	}
	if info.Checksum == "" {
		return FileInfo{}, nil, malformed(path, "footer lacks a sha256 field")
	}
	return info, data[:idx+1], nil
}

// VerifyFile is the offline trust check: codec integrity (ReadFile) plus
// the structural invariants (Validate) — exactly the checks the daemon's
// reload pipeline applies before a canary, so the printed identity is
// the one a successful swap will report.
func VerifyFile(path string) (FileInfo, error) {
	n, info, err := ReadFile(path)
	if err != nil {
		return FileInfo{}, err
	}
	if err := n.Validate(); err != nil {
		return info, fmt.Errorf("semnet: %s: %w", path, err)
	}
	return info, nil
}
