// Package semnet implements the semantic network data model of Definition 2
// in the XSDF paper: SN = (C, L, G, E, R, f, g) where C is a set of concept
// nodes (synsets), L concept labels, G glosses, E edges, and R semantic
// relation kinds. The weighted variant S̄N additionally carries concept
// frequencies statistically quantified from a text corpus, which the
// node-based (information content) similarity measure requires.
//
// The package is knowledge-base agnostic: internal/wordnet provides an
// embedded WordNet-like instance plus a synthetic generator.
package semnet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// ConceptID uniquely identifies a concept (word sense). The embedded
// lexicon uses WordNet-style keys such as "movie.n.01".
type ConceptID string

// Relation enumerates the semantic relation kinds of R (Definition 2).
// Synonymy is not an edge kind: synonymous words are integrated in the
// concepts themselves as lemma sets.
type Relation uint8

const (
	// Hypernym links a concept to a more general concept (Is-A).
	Hypernym Relation = iota
	// Hyponym is the inverse of Hypernym (Has-Instance / specialization).
	Hyponym
	// Meronym links a whole to one of its parts (Has-Part).
	Meronym
	// Holonym is the inverse of Meronym (Part-Of).
	Holonym
	// Related is a catch-all associative relation (see-also, domain).
	Related
	numRelations
)

// String returns the relation name.
func (r Relation) String() string {
	switch r {
	case Hypernym:
		return "hypernym"
	case Hyponym:
		return "hyponym"
	case Meronym:
		return "meronym"
	case Holonym:
		return "holonym"
	case Related:
		return "related"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// Inverse returns the relation pointing the other way along the same edge.
func (r Relation) Inverse() Relation {
	switch r {
	case Hypernym:
		return Hyponym
	case Hyponym:
		return Hypernym
	case Meronym:
		return Holonym
	case Holonym:
		return Meronym
	default:
		return Related
	}
}

// Edge is one directed, labeled link of E.
type Edge struct {
	To  ConceptID
	Rel Relation
}

// Concept is one node of C with its label set (f: C -> L, L^n) and gloss
// (f: C -> G). Freq is the corpus occurrence count used by the weighted
// network S̄N.
type Concept struct {
	ID     ConceptID
	Lemmas []string // synonyms; Lemmas[0] is the primary label
	Gloss  string
	Freq   float64
}

// Label returns the concept's primary label (c.ℓ in the paper).
func (c *Concept) Label() string {
	if len(c.Lemmas) == 0 {
		return string(c.ID)
	}
	return c.Lemmas[0]
}

// Network is an immutable semantic network built by a Builder. All lookup
// methods are safe for concurrent use.
//
// Alongside the string-keyed API the Network carries a dense integer
// representation (see index.go): every derived quantity the scoring hot
// path reads — depth, information content, adjacency, ancestor lists,
// expanded glosses, sense lists — is stored in flat arrays indexed by
// dense concept id, and the label universe (all lemmas, sorted) maps
// labels to dense vector dimensions. The string-keyed methods delegate
// through the index, so both views are always consistent.
type Network struct {
	concepts map[ConceptID]*Concept
	order    []ConceptID
	edges    map[ConceptID][]Edge
	byLemma  map[string][]ConceptID

	maxPolysemy int
	maxDepth    int
	totalFreq   float64

	// Dense representation, indexed by the position of each concept in the
	// immutable insertion order. Built once in Build; never mutated.
	index    *ConceptIndex
	depthD   []int32       // hypernym depth; roots have depth 1
	cumFreqD []float64     // own freq + all hyponym descendants
	icD      []float64     // precomputed -log(cumFreq/totalFreq)
	edgesD   [][]DenseEdge // integer adjacency mirroring edges
	glossTokD [][]string   // tokenized gloss cache

	// Label universe: every distinct lemma, sorted lexicographically, so
	// dense label ids preserve string order. labelOfD maps each concept to
	// the dimension of its primary label.
	labels   []string
	labelID  map[string]int32
	labelOfD []int32

	// Hot-path precomputations, all derived at Build time from the immutable
	// edge set: per-concept ancestor visit lists (BFS order, exactly the
	// walk LCS historically did) plus sorted copies for O(log d) membership
	// feed LCS without re-walking the hypernym DAG per call, and expanded
	// glosses feed the gloss-overlap measure without re-concatenating
	// neighbor glosses per pair. The network is immutable after Build, so
	// these never invalidate.
	ancListD   [][]int32  // BFS-from-concept visit order over hypernyms
	ancSortedD [][]int32  // same contents, ascending (binary-search membership)
	expGlossD  [][]string // own + direct-neighbor gloss tokens

	sensesD map[string][]DenseID // lemma -> dense senses, frequency order

	lcsMemo lcsCache // concurrency-safe LCS memo (taxonomy walks dominate Sim cost)

	// checksum memoizes Checksum() — the SHA-256 of the canonical Save
	// bytes, the in-memory identity the hot-swap layer reports.
	checksumOnce sync.Once
	checksum     string
}

// lcsCache memoizes LCS results under sharded locks so one immutable
// Network can serve many goroutines without contention on a single mutex.
// Keys are packed dense pairs; shard selection is a two-multiply integer
// mix (mix64), so a lookup allocates nothing and hashes no strings.
const lcsShardCount = 32

type lcsCache struct {
	shards [lcsShardCount]lcsShard
}

type lcsShard struct {
	mu sync.RWMutex
	m  map[uint64]lcsEntry
}

type lcsEntry struct {
	d  DenseID
	ok bool
}

func (c *lcsCache) init() {
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]lcsEntry)
	}
}

func lower(s string) string { return strings.ToLower(s) }

// Len returns |C|.
func (n *Network) Len() int { return len(n.order) }

// Concept returns the concept with the given id, or nil when unknown.
func (n *Network) Concept(id ConceptID) *Concept { return n.concepts[id] }

// Concepts returns all concept ids in deterministic (insertion) order.
func (n *Network) Concepts() []ConceptID { return n.order }

// HasLemma reports whether the word or multi-word expression names at least
// one concept. It satisfies lingproc.Lexicon.
func (n *Network) HasLemma(lemma string) bool {
	_, ok := n.byLemma[strings.ToLower(lemma)]
	return ok
}

// Senses returns the concepts whose lemma sets contain the given word or
// expression — senses(x.ℓ) in the paper. The result is ordered by
// decreasing concept frequency (ties keep insertion order), mirroring
// WordNet's frequency-ordered sense lists; Senses(w)[0] is the dominant
// sense.
func (n *Network) Senses(lemma string) []ConceptID {
	return n.byLemma[strings.ToLower(lemma)]
}

// PolysemyOf returns the number of senses of the lemma.
func (n *Network) PolysemyOf(lemma string) int { return len(n.Senses(lemma)) }

// MaxPolysemy returns Max(senses(SN)): the maximum number of senses any
// single word/expression has (33 for "head" in WordNet 2.1).
func (n *Network) MaxPolysemy() int { return n.maxPolysemy }

// Edges returns the outgoing edges of id (inverse edges are materialized at
// build time, so the adjacency is effectively undirected with typed arcs).
func (n *Network) Edges(id ConceptID) []Edge { return n.edges[id] }

// Hypernyms returns the direct hypernyms of id.
func (n *Network) Hypernyms(id ConceptID) []ConceptID {
	var out []ConceptID
	for _, e := range n.edges[id] {
		if e.Rel == Hypernym {
			out = append(out, e.To)
		}
	}
	return out
}

// Depth returns the concept's hypernym depth, where root concepts (those
// without hypernyms) have depth 1. Unknown ids yield 0.
func (n *Network) Depth(id ConceptID) int {
	if d, ok := n.index.Dense(id); ok {
		return int(n.depthD[d])
	}
	return 0
}

// MaxDepth returns the maximum hypernym depth in the network.
func (n *Network) MaxDepth() int { return n.maxDepth }

// IC returns the information content -log p(c) of the concept under the
// network's frequency annotation, where p(c) counts the concept and all of
// its hyponym descendants (Resnik's convention). Concepts with zero
// cumulative frequency get the maximum observed IC.
func (n *Network) IC(id ConceptID) float64 {
	if d, ok := n.index.Dense(id); ok {
		return n.icD[d]
	}
	return n.maxIC()
}

// cumFreq returns the cumulative (descendant-inclusive) frequency of a
// concept; unknown ids yield 0.
func (n *Network) cumFreq(id ConceptID) float64 {
	if d, ok := n.index.Dense(id); ok {
		return n.cumFreqD[d]
	}
	return 0
}

func (n *Network) maxIC() float64 {
	if n.totalFreq <= 0 {
		return 0
	}
	return -math.Log(0.5 / n.totalFreq)
}

// LCS returns the lowest common subsumer of a and b in the hypernym
// hierarchy (the deepest shared ancestor, where a concept is an ancestor of
// itself) and true, or "" and false when the two concepts share no ancestor.
// Known pairs route through the int-keyed memo (LCSDense); ids outside the
// network fall back to an uncached string walk.
func (n *Network) LCS(a, b ConceptID) (ConceptID, bool) {
	da, oka := n.index.Dense(a)
	db, okb := n.index.Dense(b)
	if oka && okb {
		d, ok := n.LCSDense(da, db)
		if !ok {
			return "", false
		}
		return n.index.ids[d], true
	}
	return n.lcsComputeSlow(a, b)
}

// lcsComputeSlow handles ConceptIDs that are not part of the network: it
// scans b's ancestors in BFS visit order (the same walk the dense path
// reproduces, tie-breaks included) and keeps the deepest one that is also
// an ancestor of a.
func (n *Network) lcsComputeSlow(a, b ConceptID) (ConceptID, bool) {
	anc := ancestorSetOf(n.ancestorList(a))
	list := n.ancestorList(b)
	var best ConceptID
	bestDepth := -1
	for _, cur := range list {
		if _, ok := anc[cur]; ok {
			if d := n.Depth(cur); d > bestDepth {
				best, bestDepth = cur, d
			}
		}
	}
	if bestDepth < 0 {
		return "", false
	}
	return best, true
}

// ancestorList returns a and all its transitive hypernyms in BFS visit
// order (dedup on first visit), matching the walk LCS historically did.
func (n *Network) ancestorList(a ConceptID) []ConceptID {
	var out []ConceptID
	seen := map[ConceptID]struct{}{}
	queue := []ConceptID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, dup := seen[cur]; dup {
			continue
		}
		seen[cur] = struct{}{}
		out = append(out, cur)
		queue = append(queue, n.Hypernyms(cur)...)
	}
	return out
}

func ancestorSetOf(list []ConceptID) map[ConceptID]struct{} {
	out := make(map[ConceptID]struct{}, len(list))
	for _, id := range list {
		out[id] = struct{}{}
	}
	return out
}

// GlossTokens returns the tokenized, stop-word-free gloss of the concept,
// cached at build time for the gloss-overlap measure.
func (n *Network) GlossTokens(id ConceptID) []string {
	if d, ok := n.index.Dense(id); ok {
		return n.glossTokD[d]
	}
	return nil
}

// ExpandedGlossTokens returns the concept's gloss tokens concatenated with
// those of its direct neighbors over all relation kinds — the "extended"
// gloss of the Banerjee-Pedersen overlap measure — precomputed at Build
// time. Callers must treat the returned slice as read-only.
func (n *Network) ExpandedGlossTokens(id ConceptID) []string {
	if d, ok := n.index.Dense(id); ok {
		return n.expGlossD[d]
	}
	return nil
}

// expandGlossDense assembles the extended gloss from the per-concept gloss
// caches, in edge order (deterministic: edges are fixed at Build).
func (n *Network) expandGlossDense(d DenseID) []string {
	own := n.glossTokD[d]
	out := make([]string, 0, len(own)*3)
	out = append(out, own...)
	for _, e := range n.edgesD[d] {
		out = append(out, n.glossTokD[e.To]...)
	}
	return out
}

// Neighborhood returns the concepts within hop distance <= radius of id
// (over all relation kinds), mapped to their distance. The center is
// included at distance 0. This is the semantic-network analogue of the XML
// sphere neighborhood (§3.5.2): rings are built using the semantic
// relations connecting concepts.
func (n *Network) Neighborhood(id ConceptID, radius int) map[ConceptID]int {
	out := map[ConceptID]int{id: 0}
	frontier := []ConceptID{id}
	for d := 1; d <= radius; d++ {
		var next []ConceptID
		for _, cur := range frontier {
			for _, e := range n.edges[cur] {
				if _, dup := out[e.To]; dup {
					continue
				}
				out[e.To] = d
				next = append(next, e.To)
			}
		}
		frontier = next
	}
	return out
}

// Lemmas returns every distinct word/expression in the network, sorted.
// Useful for tests and corpus generation.
func (n *Network) Lemmas() []string {
	out := make([]string, 0, len(n.byLemma))
	for l := range n.byLemma {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// TotalFreq returns the sum of all concept frequencies (the corpus size
// proxy of the weighted network S̄N).
func (n *Network) TotalFreq() float64 { return n.totalFreq }
