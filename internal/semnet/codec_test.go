package semnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildFigure2(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len: %d vs %d", loaded.Len(), orig.Len())
	}
	for _, id := range orig.Concepts() {
		oc, lc := orig.Concept(id), loaded.Concept(id)
		if lc == nil {
			t.Fatalf("concept %s lost", id)
		}
		if oc.Gloss != lc.Gloss || oc.Freq != lc.Freq {
			t.Errorf("%s: %+v vs %+v", id, oc, lc)
		}
		if strings.Join(oc.Lemmas, "|") != strings.Join(lc.Lemmas, "|") {
			t.Errorf("%s lemmas differ", id)
		}
		if orig.Depth(id) != loaded.Depth(id) {
			t.Errorf("%s depth %d vs %d", id, orig.Depth(id), loaded.Depth(id))
		}
	}
	// Derived quantities must agree.
	if lcs1, _ := orig.LCS("actor.n.01", "worker.n.01"); true {
		lcs2, _ := loaded.LCS("actor.n.01", "worker.n.01")
		if lcs1 != lcs2 {
			t.Errorf("LCS differs: %s vs %s", lcs1, lcs2)
		}
	}
	if orig.MaxPolysemy() != loaded.MaxPolysemy() {
		t.Error("polysemy differs")
	}
	// PartOf edges survive.
	nb1 := orig.Neighborhood("hand.n.01", 1)
	nb2 := loaded.Neighborhood("hand.n.01", 1)
	if len(nb1) != len(nb2) {
		t.Errorf("neighborhood sizes %d vs %d", len(nb1), len(nb2))
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad record", "x\ta\tb"},
		{"short concept", "c\tid\t1"},
		{"bad freq", "c\tid\tNOPE\tlemma\tgloss"},
		{"short relation", "r\ta\thypernym"},
		{"bad relation", "c\ta.n.01\t1\ta\tg\nr\ta.n.01\tfriendof\ta.n.01"},
		{"unknown endpoint", "c\ta.n.01\t1\ta\tg\nr\ta.n.01\thypernym\tb.n.01"},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nc\ta.n.01\t2\talpha|first\ta gloss here\n# trailing\n"
	n, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 1 || !n.HasLemma("alpha") || !n.HasLemma("first") {
		t.Errorf("loaded %d concepts", n.Len())
	}
	if n.Concept("a.n.01").Gloss != "a gloss here" {
		t.Errorf("gloss = %q", n.Concept("a.n.01").Gloss)
	}
}

func TestValidateOnBuiltNetworks(t *testing.T) {
	n := buildFigure2(t)
	if err := n.Validate(); err != nil {
		t.Errorf("built network invalid: %v", err)
	}
	// Round-tripped networks must stay valid.
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("loaded network invalid: %v", err)
	}
}
