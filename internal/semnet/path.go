package semnet

// HypernymPath returns the chain from the concept up to a hierarchy root
// along its shallowest hypernyms (depth-minimal parents), starting with the
// concept itself. Unknown concepts return nil.
func (n *Network) HypernymPath(c ConceptID) []ConceptID {
	if n.Concept(c) == nil {
		return nil
	}
	path := []ConceptID{c}
	cur := c
	for {
		parents := n.Hypernyms(cur)
		if len(parents) == 0 {
			return path
		}
		best := parents[0]
		for _, p := range parents[1:] {
			if n.Depth(p) < n.Depth(best) {
				best = p
			}
		}
		path = append(path, best)
		cur = best
	}
}

// PathBetween returns the taxonomic path a → ... → LCS → ... → b that
// explains the edge-based similarity of the pair: a's hypernym chain up to
// the lowest common subsumer, then down b's chain. ok is false when the
// concepts share no ancestor.
func (n *Network) PathBetween(a, b ConceptID) ([]ConceptID, bool) {
	lcs, ok := n.LCS(a, b)
	if !ok {
		return nil, false
	}
	up, ok := chainTo(n, a, lcs)
	if !ok {
		return nil, false
	}
	down, ok := chainTo(n, b, lcs)
	if !ok {
		return nil, false
	}
	// up already ends at lcs; append down reversed without repeating it.
	for i := len(down) - 2; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up, true
}

// chainTo finds a hypernym chain from c up to ancestor (inclusive) via BFS,
// returning the shortest such chain.
func chainTo(n *Network, c, ancestor ConceptID) ([]ConceptID, bool) {
	if c == ancestor {
		return []ConceptID{c}, true
	}
	prev := map[ConceptID]ConceptID{}
	queue := []ConceptID{c}
	seen := map[ConceptID]bool{c: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range n.Hypernyms(cur) {
			if seen[p] {
				continue
			}
			seen[p] = true
			prev[p] = cur
			if p == ancestor {
				// Reconstruct.
				var rev []ConceptID
				for at := p; ; at = prev[at] {
					rev = append(rev, at)
					if at == c {
						break
					}
				}
				// rev is ancestor..c; reverse to c..ancestor.
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			queue = append(queue, p)
		}
	}
	return nil, false
}
