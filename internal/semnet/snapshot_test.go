package semnet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/xsdferrors"
)

func writeTestFile(t *testing.T, version string) (string, *Network, FileInfo) {
	t.Helper()
	n := buildFigure2(t)
	path := filepath.Join(t.TempDir(), "lexicon.semnet")
	info, err := WriteFile(path, n, version)
	if err != nil {
		t.Fatal(err)
	}
	return path, n, info
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	path, orig, info := writeTestFile(t, "v1.2")
	if info.Version != "v1.2" {
		t.Errorf("version = %q", info.Version)
	}
	if info.Concepts != orig.Len() {
		t.Errorf("concepts = %d, want %d", info.Concepts, orig.Len())
	}
	if len(info.Checksum) != 64 {
		t.Errorf("checksum %q not a sha256 hex digest", info.Checksum)
	}
	loaded, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Errorf("ReadFile info %+v, WriteFile info %+v", got, info)
	}
	if loaded.Len() != orig.Len() {
		t.Errorf("Len %d vs %d", loaded.Len(), orig.Len())
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("loaded network invalid: %v", err)
	}
	// The file checksum is the hash of the writer's canonical Save bytes,
	// so re-packing the same network reproduces the identity bit-for-bit.
	if orig.Checksum() != info.Checksum {
		t.Errorf("Network.Checksum %s != file checksum %s", orig.Checksum(), info.Checksum)
	}
	// The footer is a comment: the lenient Load still accepts the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Errorf("plain Load rejected a footered file: %v", err)
	}
}

func TestWriteFileDefaultVersion(t *testing.T) {
	_, _, info := writeTestFile(t, "")
	if !strings.HasPrefix(info.Version, "sha-") || len(info.Version) != len("sha-")+12 {
		t.Errorf("default version = %q, want sha-<12 hex>", info.Version)
	}
	if !strings.HasPrefix(info.Checksum, info.Version[len("sha-"):]) {
		t.Errorf("version %q not derived from checksum %q", info.Version, info.Checksum)
	}
}

func TestWriteFileSanitizesVersion(t *testing.T) {
	_, _, info := writeTestFile(t, "oewn 2025\trc1")
	if info.Version != "oewn-2025-rc1" {
		t.Errorf("version = %q, want whitespace folded to dashes", info.Version)
	}
}

// corrupt applies f to the file bytes and writes them back.
func corrupt(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		// The regression fixture of the crash-safe write satellite: a
		// writer that died mid-copy leaves a prefix that still parses.
		{"truncated half", func(d []byte) []byte { return d[:len(d)/2] }},
		{"truncated footer", func(d []byte) []byte {
			i := bytes.LastIndex(d[:len(d)-1], []byte("\n"))
			return d[:i+1]
		}},
		{"trailing garbage line", func(d []byte) []byte { return append(d, []byte("r\tbogus\thypernym\tbogus\n")...) }},
		{"trailing garbage bytes", func(d []byte) []byte { return append(d, []byte("xx")...) }},
		{"flipped content byte", func(d []byte) []byte {
			out := bytes.Clone(d)
			out[len(out)/3] ^= 0x20
			return out
		}},
		{"empty", func([]byte) []byte { return nil }},
		{"footer only concept-count lie", func(d []byte) []byte {
			return bytes.Replace(d, []byte("concepts="), []byte("concepts=9"), 1)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path, _, _ := writeTestFile(t, "v1")
			corrupt(t, path, c.mut)
			_, _, err := ReadFile(path)
			if err == nil {
				t.Fatal("ReadFile accepted a corrupted file")
			}
			if !errors.Is(err, xsdferrors.ErrMalformedInput) {
				t.Errorf("error %v does not match ErrMalformedInput", err)
			}
		})
	}
}

func TestReadFileRejectsUnfooteredFile(t *testing.T) {
	n := buildFigure2(t)
	path := filepath.Join(t.TempDir(), "plain.semnet")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := ReadFile(path); !errors.Is(err, xsdferrors.ErrMalformedInput) {
		t.Errorf("ReadFile on plain Save output: %v, want ErrMalformedInput", err)
	}
}

func TestVerifyFile(t *testing.T) {
	path, _, info := writeTestFile(t, "v7")
	got, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Errorf("VerifyFile info %+v, want %+v", got, info)
	}
	corrupt(t, path, func(d []byte) []byte { return d[:len(d)-8] })
	if _, err := VerifyFile(path); !errors.Is(err, xsdferrors.ErrMalformedInput) {
		t.Errorf("VerifyFile on truncated file: %v", err)
	}
}

func TestWriteFileLeavesNoTempOnSuccess(t *testing.T) {
	path, _, _ := writeTestFile(t, "v1")
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestChecksumMemoizedAndStable(t *testing.T) {
	n := buildFigure2(t)
	c1, c2 := n.Checksum(), n.Checksum()
	if c1 != c2 || len(c1) != 64 {
		t.Fatalf("checksums %q / %q", c1, c2)
	}
	if m := buildFigure2(t); m.Checksum() != c1 {
		t.Error("identical builds hash differently")
	}
}
