package semnet

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildFigure2 constructs a network shaped like the paper's Figure 2
// extract: entity > {person > {actor, worker}, object}, with frequencies.
func buildFigure2(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	b.AddConcept("entity.n.01", "that which exists", 100, "entity")
	b.AddConcept("person.n.01", "a human being", 50, "person", "individual")
	b.AddConcept("object.n.01", "a tangible thing", 40, "object")
	b.AddConcept("actor.n.01", "a theatrical performer", 10, "actor", "player")
	b.AddConcept("worker.n.01", "a person who works", 15, "worker", "player")
	b.AddConcept("hand.n.01", "the prehensile extremity", 5, "hand")
	b.IsA("person.n.01", "entity.n.01")
	b.IsA("object.n.01", "entity.n.01")
	b.IsA("actor.n.01", "person.n.01")
	b.IsA("worker.n.01", "person.n.01")
	b.PartOf("hand.n.01", "person.n.01")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSensesAndPolysemy(t *testing.T) {
	n := buildFigure2(t)
	if got := n.PolysemyOf("player"); got != 2 {
		t.Errorf("polysemy(player) = %d, want 2", got)
	}
	if got := n.PolysemyOf("actor"); got != 1 {
		t.Errorf("polysemy(actor) = %d, want 1", got)
	}
	if got := n.PolysemyOf("unknown"); got != 0 {
		t.Errorf("polysemy(unknown) = %d, want 0", got)
	}
	if n.MaxPolysemy() != 2 {
		t.Errorf("MaxPolysemy = %d, want 2", n.MaxPolysemy())
	}
	if !n.HasLemma("Individual") {
		t.Error("HasLemma should be case-insensitive")
	}
}

func TestSensesFrequencyOrdered(t *testing.T) {
	n := buildFigure2(t)
	// "player" names worker (freq 15) and actor (freq 10): worker first.
	senses := n.Senses("player")
	if len(senses) != 2 || senses[0] != "worker.n.01" {
		t.Errorf("Senses(player) = %v, want worker.n.01 first (higher freq)", senses)
	}
}

func TestDepths(t *testing.T) {
	n := buildFigure2(t)
	want := map[ConceptID]int{
		"entity.n.01": 1, "person.n.01": 2, "object.n.01": 2,
		"actor.n.01": 3, "worker.n.01": 3,
		"hand.n.01": 1, // no hypernym: a root of its own
	}
	for id, d := range want {
		if got := n.Depth(id); got != d {
			t.Errorf("Depth(%s) = %d, want %d", id, got, d)
		}
	}
	if n.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d", n.MaxDepth())
	}
}

func TestLCS(t *testing.T) {
	n := buildFigure2(t)
	if lcs, ok := n.LCS("actor.n.01", "worker.n.01"); !ok || lcs != "person.n.01" {
		t.Errorf("LCS(actor, worker) = %s %v", lcs, ok)
	}
	if lcs, ok := n.LCS("actor.n.01", "object.n.01"); !ok || lcs != "entity.n.01" {
		t.Errorf("LCS(actor, object) = %s %v", lcs, ok)
	}
	// A concept subsumes itself.
	if lcs, ok := n.LCS("person.n.01", "actor.n.01"); !ok || lcs != "person.n.01" {
		t.Errorf("LCS(person, actor) = %s %v", lcs, ok)
	}
	// hand is an isolated root: no common subsumer with entity's tree.
	if _, ok := n.LCS("hand.n.01", "actor.n.01"); ok {
		t.Error("LCS(hand, actor) should not exist")
	}
}

func TestICMonotoneUpHierarchy(t *testing.T) {
	n := buildFigure2(t)
	// IC must not decrease with specialization: IC(actor) >= IC(person) >=
	// IC(entity).
	if !(n.IC("actor.n.01") >= n.IC("person.n.01") && n.IC("person.n.01") >= n.IC("entity.n.01")) {
		t.Errorf("IC not monotone: actor=%.3f person=%.3f entity=%.3f",
			n.IC("actor.n.01"), n.IC("person.n.01"), n.IC("entity.n.01"))
	}
	if n.IC("entity.n.01") < 0 {
		t.Errorf("IC(root) = %.3f, want >= 0", n.IC("entity.n.01"))
	}
}

func TestNeighborhood(t *testing.T) {
	n := buildFigure2(t)
	nb := n.Neighborhood("actor.n.01", 1)
	if nb["actor.n.01"] != 0 {
		t.Error("center missing at distance 0")
	}
	if nb["person.n.01"] != 1 {
		t.Errorf("person at %d, want 1", nb["person.n.01"])
	}
	if _, ok := nb["entity.n.01"]; ok {
		t.Error("entity should be outside radius 1")
	}
	nb2 := n.Neighborhood("actor.n.01", 2)
	if nb2["entity.n.01"] != 2 || nb2["worker.n.01"] != 2 || nb2["hand.n.01"] != 2 {
		t.Errorf("radius-2 neighborhood wrong: %v", nb2)
	}
}

func TestPartOfEdgesBidirectional(t *testing.T) {
	n := buildFigure2(t)
	var foundHolonym, foundMeronym bool
	for _, e := range n.Edges("hand.n.01") {
		if e.Rel == Holonym && e.To == "person.n.01" {
			foundHolonym = true
		}
	}
	for _, e := range n.Edges("person.n.01") {
		if e.Rel == Meronym && e.To == "hand.n.01" {
			foundMeronym = true
		}
	}
	if !foundHolonym || !foundMeronym {
		t.Error("PartOf edge or inverse missing")
	}
}

func TestGlossTokensStemmedAndStopFree(t *testing.T) {
	n := buildFigure2(t)
	toks := n.GlossTokens("actor.n.01") // "a theatrical performer"
	joined := strings.Join(toks, " ")
	if strings.Contains(joined, " a ") || len(toks) != 2 {
		t.Errorf("gloss tokens = %v", toks)
	}
	// "theatrical" must be stemmed consistently with "theater"-family words.
	if toks[0] != "theatric" {
		t.Errorf("gloss token[0] = %q, want stemmed form", toks[0])
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate id", func(t *testing.T) {
		b := NewBuilder()
		b.AddConcept("x.n.01", "g", 1, "x")
		b.AddConcept("x.n.01", "g", 1, "x")
		if _, err := b.Build(); err == nil {
			t.Error("expected duplicate error")
		}
	})
	t.Run("no lemmas", func(t *testing.T) {
		b := NewBuilder()
		b.AddConcept("x.n.01", "g", 1)
		if _, err := b.Build(); err == nil {
			t.Error("expected no-lemma error")
		}
	})
	t.Run("unknown edge endpoint", func(t *testing.T) {
		b := NewBuilder()
		b.AddConcept("x.n.01", "g", 1, "x")
		b.IsA("x.n.01", "ghost.n.01")
		if _, err := b.Build(); err == nil {
			t.Error("expected unknown-endpoint error")
		}
	})
	t.Run("hypernym cycle", func(t *testing.T) {
		b := NewBuilder()
		b.AddConcept("a.n.01", "g", 1, "a")
		b.AddConcept("b.n.01", "g", 1, "b")
		b.IsA("a.n.01", "b.n.01")
		b.IsA("b.n.01", "a.n.01")
		if _, err := b.Build(); err == nil {
			t.Error("expected cycle error")
		}
	})
}

func TestRelationInverse(t *testing.T) {
	pairs := map[Relation]Relation{
		Hypernym: Hyponym, Hyponym: Hypernym,
		Meronym: Holonym, Holonym: Meronym,
		Related: Related,
	}
	for r, inv := range pairs {
		if r.Inverse() != inv {
			t.Errorf("%v.Inverse() = %v, want %v", r, r.Inverse(), inv)
		}
	}
}

func TestConceptLabel(t *testing.T) {
	n := buildFigure2(t)
	if got := n.Concept("person.n.01").Label(); got != "person" {
		t.Errorf("Label = %q", got)
	}
	empty := &Concept{ID: "x.n.01"}
	if empty.Label() != "x.n.01" {
		t.Error("lemma-less concept should fall back to id")
	}
}

// chainNetwork builds a deterministic chain a0 <- a1 <- ... for property
// tests.
func chainNetwork(depth int) *Network {
	b := NewBuilder()
	for i := 0; i < depth; i++ {
		id := ConceptID(chainID(i))
		b.AddConcept(id, "gloss word", float64(depth-i), chainID(i))
		if i > 0 {
			b.IsA(id, ConceptID(chainID(i-1)))
		}
	}
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

func chainID(i int) string {
	return "c" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ".n.01"
}

// TestChainDepthProperty: in a chain, Depth(i) == i+1 and LCS(i, j) ==
// min(i, j).
func TestChainDepthProperty(t *testing.T) {
	f := func(di, ij uint8) bool {
		depth := 2 + int(di)%20
		n := chainNetwork(depth)
		i := int(ij) % depth
		j := (int(ij) / depth) % depth
		a, b := ConceptID(chainID(i)), ConceptID(chainID(j))
		if n.Depth(a) != i+1 {
			return false
		}
		lcs, ok := n.LCS(a, b)
		if !ok {
			return false
		}
		m := i
		if j < m {
			m = j
		}
		return lcs == ConceptID(chainID(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNeighborhoodMonotone: enlarging the radius never removes members, and
// distances are consistent.
func TestNeighborhoodMonotone(t *testing.T) {
	n := buildFigure2(t)
	prev := map[ConceptID]int{}
	for r := 0; r <= 4; r++ {
		cur := n.Neighborhood("actor.n.01", r)
		for id, d := range prev {
			if cd, ok := cur[id]; !ok || cd != d {
				t.Fatalf("radius %d lost or changed member %s", r, id)
			}
		}
		for _, d := range cur {
			if d > r {
				t.Fatalf("member beyond radius %d", r)
			}
		}
		prev = cur
	}
}
