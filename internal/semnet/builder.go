package semnet

import (
	"fmt"
	"repro/internal/lingproc"
	"sort"
	"strings"
)

// Builder assembles a Network incrementally. It is not safe for concurrent
// use; Build finalizes and returns an immutable Network.
type Builder struct {
	concepts map[ConceptID]*Concept
	order    []ConceptID
	edges    map[ConceptID][]Edge
	errs     []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		concepts: make(map[ConceptID]*Concept),
		edges:    make(map[ConceptID][]Edge),
	}
}

// AddConcept registers a concept. Lemmas are lower-cased; the first lemma is
// the primary label. Duplicate ids are recorded as build errors.
func (b *Builder) AddConcept(id ConceptID, gloss string, freq float64, lemmas ...string) *Builder {
	if _, dup := b.concepts[id]; dup {
		b.errs = append(b.errs, fmt.Errorf("semnet: duplicate concept %q", id))
		return b
	}
	if len(lemmas) == 0 {
		b.errs = append(b.errs, fmt.Errorf("semnet: concept %q has no lemmas", id))
		return b
	}
	low := make([]string, len(lemmas))
	for i, l := range lemmas {
		low[i] = strings.ToLower(strings.TrimSpace(l))
	}
	b.concepts[id] = &Concept{ID: id, Lemmas: low, Gloss: gloss, Freq: freq}
	b.order = append(b.order, id)
	return b
}

// AddEdge registers a typed edge from -> to and its inverse to -> from.
// Unknown endpoints are recorded as build errors at Build time.
func (b *Builder) AddEdge(from ConceptID, rel Relation, to ConceptID) *Builder {
	b.edges[from] = append(b.edges[from], Edge{To: to, Rel: rel})
	b.edges[to] = append(b.edges[to], Edge{To: from, Rel: rel.Inverse()})
	return b
}

// IsA is shorthand for AddEdge(child, Hypernym, parent).
func (b *Builder) IsA(child, parent ConceptID) *Builder {
	return b.AddEdge(child, Hypernym, parent)
}

// PartOf is shorthand for AddEdge(part, Holonym, whole).
func (b *Builder) PartOf(part, whole ConceptID) *Builder {
	return b.AddEdge(part, Holonym, whole)
}

// Build validates the accumulated definitions and returns the finished
// network: lemma index, hypernym depths, cumulative frequencies, and gloss
// token caches are all precomputed here.
func (b *Builder) Build() (*Network, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	n := &Network{
		concepts: b.concepts,
		order:    b.order,
		edges:    make(map[ConceptID][]Edge, len(b.edges)),
		byLemma:  make(map[string][]ConceptID),
		depth:    make(map[ConceptID]int, len(b.concepts)),
		cumFreq:  make(map[ConceptID]float64, len(b.concepts)),
		glossTok: make(map[ConceptID][]string, len(b.concepts)),
	}
	// Validate and copy edges, deduplicating.
	for from, es := range b.edges {
		if _, ok := b.concepts[from]; !ok {
			return nil, fmt.Errorf("semnet: edge from unknown concept %q", from)
		}
		seen := make(map[Edge]struct{}, len(es))
		for _, e := range es {
			if _, ok := b.concepts[e.To]; !ok {
				return nil, fmt.Errorf("semnet: edge %q -> unknown concept %q", from, e.To)
			}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			n.edges[from] = append(n.edges[from], e)
		}
	}
	// Lemma index. Senses of each lemma are ordered by decreasing concept
	// frequency (ties keep insertion order), mirroring WordNet's
	// frequency-ordered sense lists: Senses(lemma)[0] is the dominant
	// sense, which baselines and tie-breaks fall back to.
	for _, id := range b.order {
		for _, l := range b.concepts[id].Lemmas {
			n.byLemma[l] = append(n.byLemma[l], id)
		}
	}
	for _, ids := range n.byLemma {
		sort.SliceStable(ids, func(i, j int) bool {
			return b.concepts[ids[i]].Freq > b.concepts[ids[j]].Freq
		})
	}
	for _, ids := range n.byLemma {
		if len(ids) > n.maxPolysemy {
			n.maxPolysemy = len(ids)
		}
	}
	if err := n.computeDepths(); err != nil {
		return nil, err
	}
	if err := n.computeCumFreq(); err != nil {
		return nil, err
	}
	for _, id := range b.order {
		n.glossTok[id] = tokenizeGloss(b.concepts[id].Gloss)
	}
	// Hot-path precomputations: ancestor lists/sets for LCS, expanded
	// glosses for the overlap measure. Both are pure functions of the
	// now-frozen edge set, so computing them once here removes the
	// per-call taxonomy walks and gloss concatenations that dominate
	// similarity scoring.
	n.ancList = make(map[ConceptID][]ConceptID, len(b.order))
	n.ancSet = make(map[ConceptID]map[ConceptID]struct{}, len(b.order))
	for _, id := range b.order {
		list := n.ancestorList(id)
		n.ancList[id] = list
		n.ancSet[id] = ancestorSetOf(list)
	}
	n.expGloss = make(map[ConceptID][]string, len(b.order))
	for _, id := range b.order {
		n.expGloss[id] = n.expandGloss(id)
	}
	n.lcsMemo.init()
	return n, nil
}

// MustBuild is Build that panics on error, for static embedded lexicons.
//
// Panic audit: this panic is unreachable from user input inside the
// framework — the only library caller (wordnet.Default) builds the
// embedded lexicon, which is validated by the wordnet package's tests at
// CI time. Networks assembled from user data should call Build and handle
// the error; additionally, the public pipeline entry points recover any
// escaping panic into an *xsdferrors.PanicError, so even a Must* misuse in
// caller code cannot take down a batch run.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// computeDepths assigns each concept its hypernym depth: roots (concepts
// without hypernyms) get depth 1, children one more than their shallowest
// parent. Cycles in the hypernym relation are rejected.
func (n *Network) computeDepths() error {
	// Kahn-style BFS from the roots downward along Hyponym edges.
	indeg := make(map[ConceptID]int, len(n.concepts)) // number of hypernyms
	for _, id := range n.order {
		for _, e := range n.edges[id] {
			if e.Rel == Hypernym {
				indeg[id]++
			}
		}
	}
	var queue []ConceptID
	for _, id := range n.order {
		if indeg[id] == 0 {
			n.depth[id] = 1
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		processed++
		if n.depth[cur] > n.maxDepth {
			n.maxDepth = n.depth[cur]
		}
		for _, e := range n.edges[cur] {
			if e.Rel != Hyponym {
				continue
			}
			child := e.To
			if d, ok := n.depth[child]; !ok || n.depth[cur]+1 < d {
				n.depth[child] = n.depth[cur] + 1
			}
			indeg[child]--
			if indeg[child] == 0 {
				queue = append(queue, child)
			}
		}
	}
	if processed != len(n.concepts) {
		return fmt.Errorf("semnet: hypernym cycle detected (%d of %d concepts reachable from roots)",
			processed, len(n.concepts))
	}
	return nil
}

// computeCumFreq propagates concept frequencies up the hypernym hierarchy:
// cumFreq(c) = Freq(c) + sum of Freq over all hyponym descendants, so that
// p(c) is monotone non-decreasing toward the roots as Resnik/Lin require.
func (n *Network) computeCumFreq() error {
	// Process concepts deepest-first so each child is finished before its
	// parents accumulate it. A descendant reachable through multiple parents
	// must still be counted once per distinct path-free semantics, so we
	// compute cumFreq per concept from its full descendant set instead of
	// summing child cumFreqs (which would double-count under multiple
	// inheritance).
	for _, id := range n.order {
		desc := n.descendantSet(id)
		var sum float64
		for d := range desc {
			sum += n.concepts[d].Freq
		}
		n.cumFreq[id] = sum
	}
	for _, id := range n.order {
		if len(n.Hypernyms(id)) == 0 {
			n.totalFreq += n.cumFreq[id]
		}
	}
	if n.totalFreq <= 0 {
		// Unweighted network: IC degenerates gracefully (see IC).
		n.totalFreq = 0
	}
	return nil
}

// descendantSet returns id plus all transitive hyponyms.
func (n *Network) descendantSet(id ConceptID) map[ConceptID]struct{} {
	out := map[ConceptID]struct{}{}
	queue := []ConceptID{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, dup := out[cur]; dup {
			continue
		}
		out[cur] = struct{}{}
		for _, e := range n.edges[cur] {
			if e.Rel == Hyponym {
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// tokenizeGloss lower-cases, splits, and stems a gloss into content words
// for the gloss-overlap measure, dropping one-letter tokens and common stop
// words. Stemming makes morphological variants ("actor"/"actors",
// "recorded"/"recordings") overlap, as the Banerjee-Pedersen measure
// assumes of its preprocessed glosses.
func tokenizeGloss(gloss string) []string {
	fields := strings.FieldsFunc(strings.ToLower(gloss), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		if len(f) <= 1 || isGlossStop(f) {
			continue
		}
		out = append(out, lingproc.Stem(f))
	}
	return out
}

var glossStops = func() map[string]struct{} {
	m := map[string]struct{}{}
	for _, w := range strings.Fields("a an the of or and to in on for with by as at is are was were be that this it its from who which") {
		m[w] = struct{}{}
	}
	return m
}()

func isGlossStop(w string) bool {
	_, ok := glossStops[w]
	return ok
}

// SortedLemmaIndex renders the lemma -> sense-count mapping sorted by lemma,
// a debugging aid used by cmd tools.
func (n *Network) SortedLemmaIndex() []string {
	lemmas := n.Lemmas()
	out := make([]string, len(lemmas))
	for i, l := range lemmas {
		out[i] = fmt.Sprintf("%s (%d senses)", l, len(n.byLemma[l]))
	}
	sort.Strings(out)
	return out
}
