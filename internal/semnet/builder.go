package semnet

import (
	"fmt"
	"math"
	"repro/internal/lingproc"
	"sort"
	"strings"
)

// Builder assembles a Network incrementally. It is not safe for concurrent
// use; Build finalizes and returns an immutable Network.
type Builder struct {
	concepts map[ConceptID]*Concept
	order    []ConceptID
	edges    map[ConceptID][]Edge
	errs     []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		concepts: make(map[ConceptID]*Concept),
		edges:    make(map[ConceptID][]Edge),
	}
}

// AddConcept registers a concept. Lemmas are lower-cased; the first lemma is
// the primary label. Duplicate ids are recorded as build errors.
func (b *Builder) AddConcept(id ConceptID, gloss string, freq float64, lemmas ...string) *Builder {
	if _, dup := b.concepts[id]; dup {
		b.errs = append(b.errs, fmt.Errorf("semnet: duplicate concept %q", id))
		return b
	}
	if len(lemmas) == 0 {
		b.errs = append(b.errs, fmt.Errorf("semnet: concept %q has no lemmas", id))
		return b
	}
	low := make([]string, len(lemmas))
	for i, l := range lemmas {
		low[i] = strings.ToLower(strings.TrimSpace(l))
	}
	b.concepts[id] = &Concept{ID: id, Lemmas: low, Gloss: gloss, Freq: freq}
	b.order = append(b.order, id)
	return b
}

// AddEdge registers a typed edge from -> to and its inverse to -> from.
// Unknown endpoints are recorded as build errors at Build time.
func (b *Builder) AddEdge(from ConceptID, rel Relation, to ConceptID) *Builder {
	b.edges[from] = append(b.edges[from], Edge{To: to, Rel: rel})
	b.edges[to] = append(b.edges[to], Edge{To: from, Rel: rel.Inverse()})
	return b
}

// IsA is shorthand for AddEdge(child, Hypernym, parent).
func (b *Builder) IsA(child, parent ConceptID) *Builder {
	return b.AddEdge(child, Hypernym, parent)
}

// PartOf is shorthand for AddEdge(part, Holonym, whole).
func (b *Builder) PartOf(part, whole ConceptID) *Builder {
	return b.AddEdge(part, Holonym, whole)
}

// Build validates the accumulated definitions and returns the finished
// network: lemma index, hypernym depths, cumulative frequencies, and gloss
// token caches are all precomputed here.
func (b *Builder) Build() (*Network, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	n := &Network{
		concepts: b.concepts,
		order:    b.order,
		edges:    make(map[ConceptID][]Edge, len(b.edges)),
		byLemma:  make(map[string][]ConceptID),
	}
	// Validate and copy edges, deduplicating.
	for from, es := range b.edges {
		if _, ok := b.concepts[from]; !ok {
			return nil, fmt.Errorf("semnet: edge from unknown concept %q", from)
		}
		seen := make(map[Edge]struct{}, len(es))
		for _, e := range es {
			if _, ok := b.concepts[e.To]; !ok {
				return nil, fmt.Errorf("semnet: edge %q -> unknown concept %q", from, e.To)
			}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			n.edges[from] = append(n.edges[from], e)
		}
	}
	// Lemma index. Senses of each lemma are ordered by decreasing concept
	// frequency (ties keep insertion order), mirroring WordNet's
	// frequency-ordered sense lists: Senses(lemma)[0] is the dominant
	// sense, which baselines and tie-breaks fall back to.
	for _, id := range b.order {
		for _, l := range b.concepts[id].Lemmas {
			n.byLemma[l] = append(n.byLemma[l], id)
		}
	}
	for _, ids := range n.byLemma {
		sort.SliceStable(ids, func(i, j int) bool {
			return b.concepts[ids[i]].Freq > b.concepts[ids[j]].Freq
		})
	}
	for _, ids := range n.byLemma {
		if len(ids) > n.maxPolysemy {
			n.maxPolysemy = len(ids)
		}
	}
	// Dense representation: assign every concept its int32 id (position in
	// the immutable insertion order) and translate the edge set, then run
	// every derived computation — depths, cumulative frequencies, gloss
	// caches, ancestor lists, expanded glosses — directly on the dense
	// arrays. The string-keyed API delegates through the index.
	n.index = newConceptIndex(n.order)
	N := len(n.order)
	n.edgesD = make([][]DenseEdge, N)
	for i, id := range n.order {
		es := n.edges[id]
		if len(es) == 0 {
			continue
		}
		ds := make([]DenseEdge, len(es))
		for j, e := range es {
			ds[j] = DenseEdge{To: n.index.dense[e.To], Rel: e.Rel}
		}
		n.edgesD[i] = ds
	}
	n.buildLabelTable()
	if err := n.computeDepths(); err != nil {
		return nil, err
	}
	n.computeCumFreq()
	n.icD = make([]float64, N)
	for d := 0; d < N; d++ {
		if cf := n.cumFreqD[d]; cf > 0 && n.totalFreq > 0 {
			n.icD[d] = -math.Log(cf / n.totalFreq)
		} else {
			n.icD[d] = n.maxIC()
		}
	}
	n.glossTokD = make([][]string, N)
	for i, id := range n.order {
		n.glossTokD[i] = tokenizeGloss(b.concepts[id].Gloss)
	}
	// Hot-path precomputations: ancestor lists (BFS visit order, plus a
	// sorted copy for binary-search membership) for LCS, expanded glosses
	// for the overlap measure. Both are pure functions of the now-frozen
	// edge set, so computing them once here removes the per-call taxonomy
	// walks and gloss concatenations that dominate similarity scoring.
	n.ancListD = make([][]int32, N)
	n.ancSortedD = make([][]int32, N)
	for d := 0; d < N; d++ {
		list := n.ancestorListDense(DenseID(d))
		n.ancListD[d] = list
		sorted := make([]int32, len(list))
		copy(sorted, list)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		n.ancSortedD[d] = sorted
	}
	n.expGlossD = make([][]string, N)
	for d := 0; d < N; d++ {
		n.expGlossD[d] = n.expandGlossDense(DenseID(d))
	}
	n.sensesD = make(map[string][]DenseID, len(n.byLemma))
	for lemma, ids := range n.byLemma {
		ds := make([]DenseID, len(ids))
		for i, id := range ids {
			ds[i] = n.index.dense[id]
		}
		n.sensesD[lemma] = ds
	}
	n.lcsMemo.init()
	return n, nil
}

// buildLabelTable freezes the label universe: every distinct lemma, sorted
// lexicographically so dense label order preserves string order, plus the
// primary-label dimension of each concept.
func (n *Network) buildLabelTable() {
	n.labels = make([]string, 0, len(n.byLemma))
	for l := range n.byLemma {
		n.labels = append(n.labels, l)
	}
	sort.Strings(n.labels)
	n.labelID = make(map[string]int32, len(n.labels))
	for i, l := range n.labels {
		n.labelID[l] = int32(i)
	}
	n.labelOfD = make([]int32, len(n.order))
	for i, id := range n.order {
		n.labelOfD[i] = n.labelID[n.concepts[id].Label()]
	}
}

// ancestorListDense returns d and all its transitive hypernyms in BFS visit
// order (dedup on first visit), matching the walk LCS historically did.
func (n *Network) ancestorListDense(d DenseID) []int32 {
	out := []int32{}
	seen := make(map[int32]struct{})
	queue := []int32{d}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, dup := seen[cur]; dup {
			continue
		}
		seen[cur] = struct{}{}
		out = append(out, cur)
		for _, e := range n.edgesD[cur] {
			if e.Rel == Hypernym {
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// MustBuild is Build that panics on error, for static embedded lexicons.
//
// Panic audit: this panic is unreachable from user input inside the
// framework — the only library caller (wordnet.Default) builds the
// embedded lexicon, which is validated by the wordnet package's tests at
// CI time. Networks assembled from user data should call Build and handle
// the error; additionally, the public pipeline entry points recover any
// escaping panic into an *xsdferrors.PanicError, so even a Must* misuse in
// caller code cannot take down a batch run.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// computeDepths assigns each concept its hypernym depth: roots (concepts
// without hypernyms) get depth 1, children one more than their shallowest
// parent. Cycles in the hypernym relation are rejected.
func (n *Network) computeDepths() error {
	// Kahn-style BFS from the roots downward along Hyponym edges, entirely
	// on the dense adjacency.
	N := len(n.order)
	n.depthD = make([]int32, N)
	indeg := make([]int32, N) // number of hypernyms
	for d := 0; d < N; d++ {
		for _, e := range n.edgesD[d] {
			if e.Rel == Hypernym {
				indeg[d]++
			}
		}
	}
	var queue []int32
	for d := 0; d < N; d++ {
		if indeg[d] == 0 {
			n.depthD[d] = 1
			queue = append(queue, int32(d))
		}
	}
	processed := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		processed++
		if int(n.depthD[cur]) > n.maxDepth {
			n.maxDepth = int(n.depthD[cur])
		}
		for _, e := range n.edgesD[cur] {
			if e.Rel != Hyponym {
				continue
			}
			child := e.To
			if d := n.depthD[child]; d == 0 || n.depthD[cur]+1 < d {
				n.depthD[child] = n.depthD[cur] + 1
			}
			indeg[child]--
			if indeg[child] == 0 {
				queue = append(queue, child)
			}
		}
	}
	if processed != N {
		return fmt.Errorf("semnet: hypernym cycle detected (%d of %d concepts reachable from roots)",
			processed, N)
	}
	return nil
}

// computeCumFreq propagates concept frequencies up the hypernym hierarchy:
// cumFreq(c) = Freq(c) + sum of Freq over all hyponym descendants, so that
// p(c) is monotone non-decreasing toward the roots as Resnik/Lin require.
func (n *Network) computeCumFreq() {
	// A descendant reachable through multiple parents must still be counted
	// once per distinct path-free semantics, so cumFreq is computed per
	// concept from its full descendant set instead of summing child
	// cumFreqs (which would double-count under multiple inheritance).
	// Descendants are accumulated in BFS visit order, which is fixed by the
	// frozen edge set, so the float sum is deterministic.
	N := len(n.order)
	n.cumFreqD = make([]float64, N)
	visited := make([]int32, N)
	epoch := int32(0)
	var queue []int32
	for d := 0; d < N; d++ {
		epoch++
		queue = append(queue[:0], int32(d))
		var sum float64
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if visited[cur] == epoch {
				continue
			}
			visited[cur] = epoch
			sum += n.concepts[n.order[cur]].Freq
			for _, e := range n.edgesD[cur] {
				if e.Rel == Hyponym {
					queue = append(queue, e.To)
				}
			}
		}
		n.cumFreqD[d] = sum
	}
	for d := 0; d < N; d++ {
		root := true
		for _, e := range n.edgesD[d] {
			if e.Rel == Hypernym {
				root = false
				break
			}
		}
		if root {
			n.totalFreq += n.cumFreqD[d]
		}
	}
}

// tokenizeGloss lower-cases, splits, and stems a gloss into content words
// for the gloss-overlap measure, dropping one-letter tokens and common stop
// words. Stemming makes morphological variants ("actor"/"actors",
// "recorded"/"recordings") overlap, as the Banerjee-Pedersen measure
// assumes of its preprocessed glosses.
func tokenizeGloss(gloss string) []string {
	fields := strings.FieldsFunc(strings.ToLower(gloss), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		if len(f) <= 1 || isGlossStop(f) {
			continue
		}
		out = append(out, lingproc.Stem(f))
	}
	return out
}

var glossStops = func() map[string]struct{} {
	m := map[string]struct{}{}
	for _, w := range strings.Fields("a an the of or and to in on for with by as at is are was were be that this it its from who which") {
		m[w] = struct{}{}
	}
	return m
}()

func isGlossStop(w string) bool {
	_, ok := glossStops[w]
	return ok
}

// SortedLemmaIndex renders the lemma -> sense-count mapping sorted by lemma,
// a debugging aid used by cmd tools.
func (n *Network) SortedLemmaIndex() []string {
	lemmas := n.Lemmas()
	out := make([]string, len(lemmas))
	for i, l := range lemmas {
		out[i] = fmt.Sprintf("%s (%d senses)", l, len(n.byLemma[l]))
	}
	sort.Strings(out)
	return out
}
