package semnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's framework is knowledge-base agnostic (§3.1: "any other
// knowledge base can be used based on the application scenario, e.g., ODP
// ... or FOAF"). This file implements a plain-text interchange format so
// users can load their own semantic networks without recompiling:
//
//	# comment
//	c <id> <freq> <lemma>[|<lemma>...]	<gloss>
//	r <from> <relation> <to>
//
// Concept lines come first; relation lines may reference any declared
// concept. Fields of the concept line are TAB separated so lemmas and
// glosses can contain spaces; lemmas are separated by '|'. Relations are
// written once per undirected pair using the canonical direction
// (hypernym, holonym, related); inverses are re-materialized on load.

// Save writes the network in the text interchange format. Networks
// round-trip through Save/Load up to edge ordering.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# semnet v1: %d concepts\n", n.Len())
	for _, id := range n.order {
		c := n.concepts[id]
		fmt.Fprintf(bw, "c\t%s\t%g\t%s\t%s\n", id, c.Freq, strings.Join(c.Lemmas, "|"), c.Gloss)
	}
	for _, id := range n.order {
		for _, e := range n.edges[id] {
			// Emit each undirected pair once, in canonical direction.
			switch e.Rel {
			case Hypernym, Holonym:
				fmt.Fprintf(bw, "r\t%s\t%s\t%s\n", id, e.Rel, e.To)
			case Related:
				if id < e.To {
					fmt.Fprintf(bw, "r\t%s\t%s\t%s\n", id, e.Rel, e.To)
				}
			}
		}
	}
	return bw.Flush()
}

// Load parses a network from the text interchange format.
func Load(r io.Reader) (*Network, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "c":
			if len(fields) != 5 {
				return nil, fmt.Errorf("semnet: line %d: concept needs 5 tab-separated fields, got %d", lineNo, len(fields))
			}
			freq, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("semnet: line %d: bad frequency %q", lineNo, fields[2])
			}
			lemmas := strings.Split(fields[3], "|")
			b.AddConcept(ConceptID(fields[1]), fields[4], freq, lemmas...)
		case "r":
			if len(fields) != 4 {
				return nil, fmt.Errorf("semnet: line %d: relation needs 4 fields, got %d", lineNo, len(fields))
			}
			rel, err := parseRelation(fields[2])
			if err != nil {
				return nil, fmt.Errorf("semnet: line %d: %v", lineNo, err)
			}
			b.AddEdge(ConceptID(fields[1]), rel, ConceptID(fields[3]))
		default:
			return nil, fmt.Errorf("semnet: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("semnet: load: %w", err)
	}
	return b.Build()
}

func parseRelation(s string) (Relation, error) {
	switch s {
	case "hypernym":
		return Hypernym, nil
	case "hyponym":
		return Hyponym, nil
	case "meronym":
		return Meronym, nil
	case "holonym":
		return Holonym, nil
	case "related":
		return Related, nil
	default:
		return 0, fmt.Errorf("unknown relation %q", s)
	}
}
