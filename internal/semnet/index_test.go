package semnet

import (
	"fmt"
	"strings"
	"testing"
)

// buildChain builds a network whose concepts are the given ids in order,
// linked into a hypernym chain (each concept IsA its predecessor), so
// Build always succeeds on any duplicate-free id list.
func buildChain(tb testing.TB, ids []ConceptID) *Network {
	tb.Helper()
	b := NewBuilder()
	for i, id := range ids {
		b.AddConcept(id, "gloss of "+string(id), float64(i+1), "lemma_"+string(id))
		if i > 0 {
			b.IsA(id, ids[i-1])
		}
	}
	net, err := b.Build()
	if err != nil {
		tb.Fatalf("Build(%d concepts): %v", len(ids), err)
	}
	return net
}

// checkIndexBijection asserts the ConceptIndex invariants: every concept
// has exactly one dense id in [0, Len), dense ids follow insertion order,
// both directions round-trip, and out-of-universe lookups miss.
func checkIndexBijection(tb testing.TB, net *Network) {
	tb.Helper()
	ix := net.Index()
	order := net.Concepts()
	if ix.Len() != len(order) {
		tb.Fatalf("index Len = %d, want %d concepts", ix.Len(), len(order))
	}
	seen := make(map[DenseID]ConceptID, len(order))
	for i, id := range order {
		d, ok := net.Dense(id)
		if !ok {
			tb.Fatalf("Dense(%q) missing", id)
		}
		if d != DenseID(i) {
			tb.Fatalf("Dense(%q) = %d, want insertion position %d", id, d, i)
		}
		if prev, dup := seen[d]; dup {
			tb.Fatalf("dense id %d assigned to both %q and %q", d, prev, id)
		}
		seen[d] = id
		back, ok := net.ConceptAt(d)
		if !ok || back != id {
			tb.Fatalf("ConceptAt(Dense(%q)) = %q, %v", id, back, ok)
		}
	}
	if _, ok := net.ConceptAt(-1); ok {
		tb.Error("ConceptAt(-1) resolved")
	}
	if _, ok := net.ConceptAt(DenseID(len(order))); ok {
		tb.Errorf("ConceptAt(%d) resolved past the universe", len(order))
	}
	if net.Concept("__not_a_concept__") == nil {
		if _, ok := net.Dense("__not_a_concept__"); ok {
			tb.Error("Dense of an unknown ConceptID resolved")
		}
	}
}

func TestConceptIndexBijection(t *testing.T) {
	ids := make([]ConceptID, 100)
	for i := range ids {
		ids[i] = ConceptID(fmt.Sprintf("c%03d.n.01", i))
	}
	checkIndexBijection(t, buildChain(t, ids))
}

// FuzzConceptIndexRoundTrip drives the bijection check over arbitrary
// comma-separated id lists, including across a rebuild with suffix-tagged
// ids: the second network's index must resolve only tagged ids and the
// first only untagged ones — dense ids never leak between epochs.
func FuzzConceptIndexRoundTrip(f *testing.F) {
	f.Add("a.n.01,b.n.01,c.n.01")
	f.Add("kelly.n.01")
	f.Add("x,,x,y,\x00,verylongconceptidentifierthatkeepsgoing.n.02")
	f.Fuzz(func(t *testing.T, raw string) {
		var ids []ConceptID
		dedup := make(map[ConceptID]bool)
		for _, part := range strings.Split(raw, ",") {
			id := ConceptID(part)
			if part == "" || dedup[id] {
				continue
			}
			dedup[id] = true
			ids = append(ids, id)
			if len(ids) == 64 {
				break
			}
		}
		if len(ids) == 0 {
			t.Skip("no usable ids in input")
		}
		net := buildChain(t, ids)
		checkIndexBijection(t, net)

		// Rebuild with every id suffix-tagged: a fresh epoch, a fresh
		// index. Untagged ids must miss in the new network and tagged
		// ids in the old — same strings, disjoint universes.
		tagged := make([]ConceptID, len(ids))
		taggedSet := make(map[ConceptID]bool, len(ids))
		for i, id := range ids {
			tagged[i] = id + "#v2"
			taggedSet[tagged[i]] = true
		}
		net2 := buildChain(t, tagged)
		checkIndexBijection(t, net2)
		for i, id := range ids {
			// An adversarial input can contain ids that already carry
			// the tag (so the two universes overlap on that string);
			// the disjointness claims only apply outside the overlap.
			if !taggedSet[id] {
				if _, ok := net2.Dense(id); ok {
					t.Errorf("untagged %q leaked into the tagged network's index", id)
				}
			}
			if !dedup[tagged[i]] {
				if _, ok := net.Dense(tagged[i]); ok {
					t.Errorf("tagged %q leaked into the untagged network's index", tagged[i])
				}
			}
		}
	})
}
