package semnet

import "testing"

func TestHypernymPath(t *testing.T) {
	n := buildFigure2(t)
	path := n.HypernymPath("actor.n.01")
	want := []ConceptID{"actor.n.01", "person.n.01", "entity.n.01"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, path[i], want[i])
		}
	}
	if got := n.HypernymPath("ghost.n.99"); got != nil {
		t.Errorf("unknown concept path = %v", got)
	}
	// A root's path is itself.
	if got := n.HypernymPath("entity.n.01"); len(got) != 1 {
		t.Errorf("root path = %v", got)
	}
}

func TestPathBetween(t *testing.T) {
	n := buildFigure2(t)
	path, ok := n.PathBetween("actor.n.01", "worker.n.01")
	if !ok {
		t.Fatal("no path")
	}
	want := []ConceptID{"actor.n.01", "person.n.01", "worker.n.01"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, path[i], want[i])
		}
	}
	// Identity path.
	if p, ok := n.PathBetween("actor.n.01", "actor.n.01"); !ok || len(p) != 1 {
		t.Errorf("identity path = %v %v", p, ok)
	}
	// Ancestor-descendant path goes straight up.
	if p, ok := n.PathBetween("actor.n.01", "entity.n.01"); !ok || len(p) != 3 {
		t.Errorf("ancestor path = %v %v", p, ok)
	}
	// Disconnected concepts have no path.
	if _, ok := n.PathBetween("hand.n.01", "actor.n.01"); ok {
		t.Error("disconnected concepts should have no path")
	}
}

func TestPathBetweenOnEmbeddedLexiconShapes(t *testing.T) {
	// Path length must match the edge-count implied by Wu-Palmer depths:
	// len(path) = (depth(a)-depth(lcs)) + (depth(b)-depth(lcs)) + 1.
	n := buildFigure2(t)
	a, b := ConceptID("actor.n.01"), ConceptID("object.n.01")
	path, ok := n.PathBetween(a, b)
	if !ok {
		t.Fatal("no path")
	}
	lcs, _ := n.LCS(a, b)
	wantLen := (n.Depth(a) - n.Depth(lcs)) + (n.Depth(b) - n.Depth(lcs)) + 1
	if len(path) != wantLen {
		t.Errorf("path len %d, want %d (%v)", len(path), wantLen, path)
	}
}
