package semnet

import "fmt"

// Validate checks the structural invariants every Network built by Builder
// or Load must satisfy. It is cheap enough to run on loaded user networks
// before trusting them, and the test suites run it against the embedded
// lexicon and the synthetic generator:
//
//   - every edge endpoint exists and carries its inverse edge;
//   - every concept has at least one lemma and positive frequency;
//   - hypernym depths are consistent (child depth = shallowest parent + 1,
//     roots at depth 1);
//   - cumulative frequencies are monotone: cumFreq(parent) >= cumFreq(child)
//     whenever the child has a single hypernym (multi-parent children may
//     legitimately contribute to several ancestors);
//   - the lemma index is complete and frequency-ordered.
func (n *Network) Validate() error {
	for _, id := range n.order {
		c := n.concepts[id]
		if c == nil {
			return fmt.Errorf("semnet: validate: order references unknown concept %q", id)
		}
		if len(c.Lemmas) == 0 {
			return fmt.Errorf("semnet: validate: %s has no lemmas", id)
		}
		if c.Freq <= 0 {
			return fmt.Errorf("semnet: validate: %s has non-positive frequency %g", id, c.Freq)
		}
		for _, e := range n.edges[id] {
			if n.concepts[e.To] == nil {
				return fmt.Errorf("semnet: validate: %s has edge to unknown %q", id, e.To)
			}
			if !n.hasEdge(e.To, id, e.Rel.Inverse()) {
				return fmt.Errorf("semnet: validate: edge %s -%s-> %s lacks inverse", id, e.Rel, e.To)
			}
		}
		// Depth consistency.
		parents := n.Hypernyms(id)
		if len(parents) == 0 {
			if n.Depth(id) != 1 {
				return fmt.Errorf("semnet: validate: root %s has depth %d, want 1", id, n.Depth(id))
			}
			continue
		}
		min := 0
		for i, p := range parents {
			if i == 0 || n.Depth(p) < min {
				min = n.Depth(p)
			}
		}
		if n.Depth(id) != min+1 {
			return fmt.Errorf("semnet: validate: depth(%s) = %d, want shallowest parent %d + 1",
				id, n.Depth(id), min)
		}
		// Cumulative-frequency monotonicity for single-parent concepts.
		if len(parents) == 1 && n.cumFreq(parents[0]) < n.cumFreq(id)-1e-9 {
			return fmt.Errorf("semnet: validate: cumFreq(%s)=%g < cumFreq(%s)=%g",
				parents[0], n.cumFreq(parents[0]), id, n.cumFreq(id))
		}
	}
	// Lemma index completeness and ordering.
	for lemma, ids := range n.byLemma {
		for i, id := range ids {
			if n.concepts[id] == nil {
				return fmt.Errorf("semnet: validate: lemma %q indexes unknown %q", lemma, id)
			}
			if i > 0 && n.concepts[ids[i-1]].Freq < n.concepts[id].Freq {
				return fmt.Errorf("semnet: validate: senses of %q not frequency-ordered", lemma)
			}
			found := false
			for _, l := range n.concepts[id].Lemmas {
				if l == lemma {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("semnet: validate: lemma %q indexes %s which lacks it", lemma, id)
			}
		}
	}
	return nil
}

func (n *Network) hasEdge(from, to ConceptID, rel Relation) bool {
	for _, e := range n.edges[from] {
		if e.To == to && e.Rel == rel {
			return true
		}
	}
	return false
}
