package xmltree

import (
	"fmt"
	"strings"
)

// This file implements a small path-query engine over document trees — an
// XPath-like subset sufficient for the semantic-aware query-rewriting
// scenarios of §1 and for tests/tools that need to address nodes
// structurally:
//
//	films/picture/cast     exact label path from the root
//	picture/*/star         * matches any single label
//	//star                 // descends any number of levels
//	films//kelly           descendant at any depth under films
//
// Matching is against Node.Label (the pre-processed label when linguistic
// processing has run, the raw tag otherwise) and is case-sensitive.

// Select returns, in preorder, every node whose root path matches the
// query. An empty or "/" query selects the root. Invalid queries (empty
// segments other than the // separator) return an error.
func (t *Tree) Select(query string) ([]*Node, error) {
	if t.Root == nil {
		return nil, nil
	}
	segs, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return []*Node{t.Root}, nil
	}
	var out []*Node
	seen := map[*Node]bool{}
	// matchFrom matches the segment list starting at node n, where n must
	// match segs[0].
	var matchFrom func(n *Node, segs []segment)
	matchFrom = func(n *Node, segs []segment) {
		s := segs[0]
		if !s.matches(n.Label) {
			return
		}
		if len(segs) == 1 {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
			return
		}
		next := segs[1]
		if next.deep {
			var walk func(d *Node)
			walk = func(d *Node) {
				matchFrom(d, segs[1:])
				for _, c := range d.Children {
					walk(c)
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		} else {
			for _, c := range n.Children {
				matchFrom(c, segs[1:])
			}
		}
	}
	first := segs[0]
	if first.deep {
		var walk func(d *Node)
		walk = func(d *Node) {
			matchFrom(d, segs)
			for _, c := range d.Children {
				walk(c)
			}
		}
		walk(t.Root)
	} else {
		matchFrom(t.Root, segs)
	}
	// Preorder output order.
	sortByIndex(out)
	return out, nil
}

// SelectFirst returns the first (preorder) match, or nil.
func (t *Tree) SelectFirst(query string) (*Node, error) {
	nodes, err := t.Select(query)
	if err != nil || len(nodes) == 0 {
		return nil, err
	}
	return nodes[0], nil
}

// segment is one step of a parsed query.
type segment struct {
	label string // "*" is a wildcard
	// deep marks a step preceded by //: it may match at any depth below
	// the previous match (or anywhere in the tree for the first step).
	deep bool
}

func (s segment) matches(label string) bool {
	return s.label == "*" || s.label == label
}

// parseQuery splits the query into segments, folding the // separator into
// the deep flag of the following segment.
func parseQuery(q string) ([]segment, error) {
	q = strings.TrimSpace(q)
	q = strings.TrimPrefix(q, "/")
	if q == "" {
		return nil, nil
	}
	var segs []segment
	deep := strings.HasPrefix(q, "/") // original query began with //
	q = strings.TrimPrefix(q, "/")
	for _, part := range strings.Split(q, "/") {
		if part == "" {
			// An empty part marks a // separator before the next segment.
			deep = true
			continue
		}
		segs = append(segs, segment{label: part, deep: deep})
		deep = false
	}
	if deep {
		return nil, fmt.Errorf("xmltree: query %q ends with a dangling //", q)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("xmltree: query %q has no segments", q)
	}
	return segs, nil
}

func sortByIndex(nodes []*Node) {
	// Insertion sort: result sets are small and nearly ordered.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Index < nodes[j-1].Index; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}
