package xmltree

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/xsdferrors"
)

// FuzzParse checks that arbitrary byte inputs never panic the parser and
// that anything it accepts survives a serialize/reparse round trip with the
// same node count.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<films><picture title="Rear Window"><cast><star>Kelly</star></cast></picture></films>`,
		`<a b="1" c="2">text <d/> more</a>`,
		`<x><y><z/></y></x>`,
		`not xml at all`,
		`<a>&lt;&amp;&gt;</a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := ParseString(doc, DefaultParseOptions())
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.WriteXML(&buf, false); err != nil {
			t.Fatalf("accepted tree failed to serialize: %v", err)
		}
		tr2, err := Parse(&buf, DefaultParseOptions())
		if err != nil {
			t.Fatalf("serialized output does not reparse: %v\n%s", err, buf.String())
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed node count %d -> %d", tr.Len(), tr2.Len())
		}
	})
}

// FuzzParseLimits drives the resource-guarded parser with tight limits:
// any input must yield either a tree within the limits, a typed
// *xsdferrors.LimitError, or a malformed-input error — never a panic and
// never an over-limit tree.
func FuzzParseLimits(f *testing.F) {
	f.Add(`<a/>`)
	f.Add(nested(20))
	f.Add(`<a b="` + strings.Repeat("x", 40) + `">` + strings.Repeat("<c/>", 40) + `</a>`)
	f.Add(`<a>` + strings.Repeat("tok ", 40) + `</a>`)
	opts := ParseOptions{IncludeContent: true, MaxDepth: 8, MaxNodes: 32, MaxTokenBytes: 24}
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := ParseString(doc, opts)
		if err != nil {
			if !errors.Is(err, xsdferrors.ErrLimitExceeded) && !errors.Is(err, xsdferrors.ErrMalformedInput) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if tr.Len() > 32 {
			t.Fatalf("accepted tree exceeds node limit: %d nodes", tr.Len())
		}
		// Element nesting limit 8 allows node depths up to 9 (attribute
		// level) / 10 (token under attribute).
		if tr.MaxDepth() > 10 {
			t.Fatalf("accepted tree exceeds depth limit: depth %d", tr.MaxDepth())
		}
	})
}

// FuzzSubtreeScanner drives the incremental scanner over arbitrary
// input with tight guards: every Next outcome must be a within-limits
// subtree, a typed recoverable trip, a typed fatal error (sticky), or a
// clean EOF — never a panic and never a stall. Inputs the whole-document
// parser accepts must also scan to a clean EOF, with no more nodes
// across the emitted subtrees than the whole tree holds.
func FuzzSubtreeScanner(f *testing.F) {
	f.Add(`<a/>`)
	f.Add(`<r><s>one</s><s>two</s></r>`)
	f.Add(`<r><s>` + strings.Repeat("tok ", 40) + `</s><s>ok</s></r>`)
	f.Add(nested(20))
	f.Add(`<r><s><broken></s></r>`)
	f.Add(`<r>` + strings.Repeat(`<s a="v">t</s>`, 12) + `</r>`)
	opts := ParseOptions{IncludeContent: true, MaxDepth: 8, MaxNodes: 32, MaxTokenBytes: 24}
	f.Fuzz(func(t *testing.T, doc string) {
		whole, wholeErr := ParseString(doc, opts)
		sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
			ParseOptions:    opts,
			MaxSubtreeBytes: -1,
			MaxSubtrees:     -1,
		})
		totalNodes := 0
		for i := 0; ; i++ {
			if i > len(doc)+16 {
				t.Fatalf("scanner failed to terminate after %d calls", i)
			}
			st, err := sc.Next()
			if err == nil {
				if st.Tree.Len() > 32 {
					t.Fatalf("emitted subtree exceeds node limit: %d nodes", st.Tree.Len())
				}
				if st.Tree.MaxDepth() > 9 {
					t.Fatalf("emitted subtree exceeds depth limit: %d", st.Tree.MaxDepth())
				}
				if st.Bytes() <= 0 {
					t.Fatalf("emitted subtree has non-positive size %d", st.Bytes())
				}
				totalNodes += st.Tree.Len()
				continue
			}
			if err == io.EOF {
				if wholeErr == nil && totalNodes > whole.Len() {
					t.Fatalf("subtrees hold %d nodes, whole tree only %d", totalNodes, whole.Len())
				}
				return
			}
			var se *SubtreeError
			if !errors.As(err, &se) {
				t.Fatalf("untyped scanner error: %v", err)
			}
			if !errors.Is(err, xsdferrors.ErrLimitExceeded) && !errors.Is(err, xsdferrors.ErrMalformedInput) {
				t.Fatalf("scanner error outside the taxonomy: %v", err)
			}
			if se.Fatal {
				if wholeErr == nil {
					t.Fatalf("whole-document parse accepted but scanner failed: %v", err)
				}
				if _, again := sc.Next(); !errors.Is(again, err) {
					t.Fatalf("fatal error not sticky: first %v then %v", err, again)
				}
				return
			}
		}
	})
}

// FuzzSelect checks the path-query parser/matcher against arbitrary
// queries: no panics, and results always belong to the tree.
func FuzzSelect(f *testing.F) {
	for _, q := range []string{"a/b", "//star", "films/*/cast", "a//b//c", "/", "", "//"} {
		f.Add(q)
	}
	tr, err := ParseString(`<films><picture><cast><star>Kelly</star></cast></picture></films>`, DefaultParseOptions())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, q string) {
		nodes, err := tr.Select(q)
		if err != nil {
			return
		}
		for _, n := range nodes {
			if tr.Node(n.Index) != n {
				t.Fatalf("query %q returned node outside the tree", q)
			}
		}
	})
}
