package xmltree

import (
	"encoding/json"
	"io"

	"repro/xsdferrors"
)

// JSONNode is the JSON projection of a semantic tree node, the machine
// interchange form of the "semantic XML tree" output (Figure 4.b): the
// original tag, processed label, assigned concept, and recursively the
// children. Empty fields are omitted.
type JSONNode struct {
	Kind     string      `json:"kind"`
	Raw      string      `json:"raw"`
	Label    string      `json:"label,omitempty"`
	Sense    string      `json:"sense,omitempty"`
	Score    float64     `json:"score,omitempty"`
	Degraded string      `json:"degraded,omitempty"`
	Gold     string      `json:"gold,omitempty"`
	Children []*JSONNode `json:"children,omitempty"`
}

// SemanticJSON converts the tree into its JSON projection.
func (t *Tree) SemanticJSON() *JSONNode {
	if t.Root == nil {
		return nil
	}
	var conv func(n *Node) *JSONNode
	conv = func(n *Node) *JSONNode {
		j := &JSONNode{
			Kind:  n.Kind.String(),
			Raw:   n.Raw,
			Sense: n.Sense,
			Score: n.SenseScore,
			Gold:  n.Gold,
		}
		if n.Degraded != xsdferrors.DegradeNone {
			j.Degraded = n.Degraded.String()
		}
		if n.Label != n.Raw {
			j.Label = n.Label
		}
		for _, c := range n.Children {
			j.Children = append(j.Children, conv(c))
		}
		return j
	}
	return conv(t.Root)
}

// WriteJSON writes the semantic tree as indented JSON.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.SemanticJSON())
}

// FromSemanticJSON rebuilds a tree from its JSON projection (senses, scores
// and gold labels included), the inverse of SemanticJSON.
func FromSemanticJSON(j *JSONNode) *Tree {
	if j == nil {
		return &Tree{}
	}
	var conv func(j *JSONNode) *Node
	conv = func(j *JSONNode) *Node {
		n := &Node{
			Raw:        j.Raw,
			Label:      j.Label,
			Sense:      j.Sense,
			SenseScore: j.Score,
			Gold:       j.Gold,
		}
		if lvl, ok := xsdferrors.ParseDegradationLevel(j.Degraded); ok {
			n.Degraded = lvl
		}
		if n.Label == "" {
			n.Label = n.Raw
		}
		switch j.Kind {
		case "attribute":
			n.Kind = Attribute
		case "token":
			n.Kind = Token
		default:
			n.Kind = Element
		}
		for _, c := range j.Children {
			n.AddChild(conv(c))
		}
		return n
	}
	return New(conv(j))
}

// ReadJSON parses a semantic tree from its JSON form.
func ReadJSON(r io.Reader) (*Tree, error) {
	var j JSONNode
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, err
	}
	return FromSemanticJSON(&j), nil
}
