package xmltree

import "fmt"

// The paper notes that semantic XML trees become graphs "when hyperlinks
// come to play" (§1). This file implements intra-document hyperlinks via
// the classic ID/IDREF convention: an attribute named "id" declares an
// anchor, and attributes named "idref", "ref", or "href" (with a leading
// '#') point at it. ResolveLinks materializes the references as Node.Links
// edges, which the sphere package can optionally traverse so that linked
// elements join each other's disambiguation contexts.

// idAttrNames and refAttrNames are matched case-insensitively against
// attribute labels.
var refAttrNames = map[string]bool{"idref": true, "ref": true, "href": true}

// ResolveLinks scans the tree for ID/IDREF attributes and connects the
// owning elements with bidirectional Links edges. It returns the number of
// links resolved. Dangling references are reported as an error after all
// resolvable links are installed; duplicate anchor ids keep the first
// declaration.
func (t *Tree) ResolveLinks() (int, error) {
	resolved, dangling := t.ResolveLinksReport()
	if len(dangling) > 0 {
		return resolved, fmt.Errorf("xmltree: %d dangling idref(s): %v", len(dangling), dangling)
	}
	return resolved, nil
}

// ResolveLinksReport is ResolveLinks with degraded-mode reporting instead
// of an error: it returns the number of links installed and the list of
// dangling reference values (references whose anchor id does not exist).
// Dangling references are tolerated — every resolvable link still applies
// — so callers can record the degradation without treating it as failure.
func (t *Tree) ResolveLinksReport() (resolved int, dangling []string) {
	anchors := map[string]*Node{} // id value -> owning element
	type pending struct {
		from  *Node
		value string
	}
	var refs []pending

	for _, n := range t.Nodes() {
		if n.Kind != Attribute || n.Parent == nil {
			continue
		}
		value := attrValue(n)
		if value == "" {
			continue
		}
		switch {
		case equalFold(n.Label, "id"):
			if _, dup := anchors[value]; !dup {
				anchors[value] = n.Parent
			}
		case refAttrNames[lowerASCII(n.Label)]:
			if value[0] == '#' {
				value = value[1:]
			}
			refs = append(refs, pending{from: n.Parent, value: value})
		}
	}

	for _, r := range refs {
		target, ok := anchors[r.value]
		if !ok {
			dangling = append(dangling, r.value)
			continue
		}
		if target == r.from {
			continue // self-reference adds nothing
		}
		r.from.Links = append(r.from.Links, target)
		target.Links = append(target.Links, r.from)
		resolved++
	}
	return resolved, dangling
}

// attrValue joins an attribute's token children back into its raw value.
func attrValue(attr *Node) string {
	if len(attr.Children) == 0 {
		return ""
	}
	if len(attr.Children) == 1 {
		return attr.Children[0].Raw
	}
	out := attr.Children[0].Raw
	for _, c := range attr.Children[1:] {
		out += " " + c.Raw
	}
	return out
}

func lowerASCII(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

func equalFold(a, b string) bool { return lowerASCII(a) == lowerASCII(b) }
