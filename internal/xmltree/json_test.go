package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

func TestSemanticJSONRoundTrip(t *testing.T) {
	tr, err := ParseString(`<films><picture title="Rear Window"><cast><star>Kelly</star></cast></picture></films>`,
		DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr.Node(2).Label = "picture"
	for _, n := range tr.Nodes() {
		if n.Raw == "cast" {
			n.Sense = "cast.n.01"
			n.SenseScore = 0.5
		}
		if n.Raw == "Kelly" {
			n.Gold = "kelly.n.01"
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"sense": "cast.n.01"`, `"gold": "kelly.n.01"`, `"kind": "attribute"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}

	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip Len %d vs %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.Node(i), back.Node(i)
		if a.Raw != b.Raw || a.Kind != b.Kind || a.Sense != b.Sense ||
			a.SenseScore != b.SenseScore || a.Gold != b.Gold {
			t.Errorf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSemanticJSONEmpty(t *testing.T) {
	var tr Tree
	if tr.SemanticJSON() != nil {
		t.Error("empty tree should project to nil")
	}
	if got := FromSemanticJSON(nil); got.Len() != 0 {
		t.Error("nil JSON should rebuild empty tree")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
}
