package xmltree

import (
	"strings"
	"testing"
)

const linkedDoc = `<plays>
  <persona id="p1"><name>Hamlet</name></persona>
  <persona id="p2"><name>Ophelia</name></persona>
  <speech speaker="#p1"><line>words words</line></speech>
  <speech speaker="p2"><line>more words</line></speech>
</plays>`

// speakerDoc uses the idref attribute name directly.
const idrefDoc = `<a><b id="x"/><c idref="x"/><d ref="x"/></a>`

func TestResolveLinksBasic(t *testing.T) {
	tr, err := ParseString(idrefDoc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.ResolveLinks()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resolved %d links, want 2", n)
	}
	var b, c, d *Node
	for _, x := range tr.Nodes() {
		switch x.Label {
		case "b":
			b = x
		case "c":
			c = x
		case "d":
			d = x
		}
	}
	if len(b.Links) != 2 {
		t.Errorf("anchor has %d links, want 2 (c and d)", len(b.Links))
	}
	if len(c.Links) != 1 || c.Links[0] != b {
		t.Errorf("c links = %v", c.Links)
	}
	if len(d.Links) != 1 || d.Links[0] != b {
		t.Errorf("d links = %v", d.Links)
	}
}

func TestResolveLinksHashPrefix(t *testing.T) {
	tr, err := ParseString(linkedDoc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.ResolveLinks()
	if err == nil {
		t.Log("no dangling refs") // speaker="p2" resolves; speaker isn't a ref name
	}
	_ = n
	// speaker is not a recognized ref attribute: no links from it.
	for _, x := range tr.Nodes() {
		if x.Label == "speech" && len(x.Links) != 0 {
			t.Errorf("speech should have no links via unrecognized attribute")
		}
	}
}

func TestResolveLinksRefNamedAttributes(t *testing.T) {
	doc := strings.ReplaceAll(linkedDoc, "speaker=", "idref=")
	tr, err := ParseString(doc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.ResolveLinks()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resolved %d, want 2 (with and without # prefix)", n)
	}
	// The first speech links to persona p1.
	var speech, persona *Node
	for _, x := range tr.Nodes() {
		if x.Label == "speech" && speech == nil {
			speech = x
		}
		if x.Label == "persona" && persona == nil {
			persona = x
		}
	}
	if len(speech.Links) != 1 || speech.Links[0] != persona {
		t.Errorf("speech links = %v", speech.Links)
	}
}

func TestResolveLinksDangling(t *testing.T) {
	tr, err := ParseString(`<a><b idref="ghost"/></a>`, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ResolveLinks(); err == nil {
		t.Error("expected dangling-reference error")
	}
}

func TestResolveLinksSelfReferenceIgnored(t *testing.T) {
	tr, err := ParseString(`<a id="s" idref="s"/>`, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.ResolveLinks()
	if err != nil || n != 0 {
		t.Errorf("self reference: n=%d err=%v", n, err)
	}
}

func TestCloneRemapsLinks(t *testing.T) {
	tr, err := ParseString(idrefDoc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ResolveLinks(); err != nil {
		t.Fatal(err)
	}
	cp := tr.Clone()
	for i := 0; i < tr.Len(); i++ {
		o, c := tr.Node(i), cp.Node(i)
		if len(o.Links) != len(c.Links) {
			t.Fatalf("node %d link count %d vs %d", i, len(o.Links), len(c.Links))
		}
		for j := range o.Links {
			if c.Links[j] == o.Links[j] {
				t.Fatal("clone shares link targets with original")
			}
			if c.Links[j].Index != o.Links[j].Index {
				t.Fatal("clone link points at wrong node")
			}
		}
	}
}
