package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildFigure6 constructs the paper's Figure 6 tree:
//
//	Films
//	└── Picture
//	    ├── cast
//	    │   ├── star ── Stewart
//	    │   └── star ── Kelly
//	    └── Plot
func buildFigure6(t *testing.T) *Tree {
	t.Helper()
	films := &Node{Raw: "Films", Label: "films", Kind: Element}
	picture := &Node{Raw: "Picture", Label: "picture", Kind: Element}
	cast := &Node{Raw: "cast", Label: "cast", Kind: Element}
	star1 := &Node{Raw: "star", Label: "star", Kind: Element}
	star2 := &Node{Raw: "star", Label: "star", Kind: Element}
	stewart := &Node{Raw: "Stewart", Label: "stewart", Kind: Token}
	kelly := &Node{Raw: "Kelly", Label: "kelly", Kind: Token}
	plot := &Node{Raw: "Plot", Label: "plot", Kind: Element}
	star1.AddChild(stewart)
	star2.AddChild(kelly)
	cast.AddChild(star1)
	cast.AddChild(star2)
	picture.AddChild(cast)
	picture.AddChild(plot)
	films.AddChild(picture)
	return New(films)
}

func TestPreorderIndexing(t *testing.T) {
	tr := buildFigure6(t)
	want := []string{"films", "picture", "cast", "star", "stewart", "star", "kelly", "plot"}
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(want))
	}
	for i, label := range want {
		n := tr.Node(i)
		if n == nil || n.Label != label {
			t.Errorf("T[%d] = %v, want label %q", i, n, label)
		}
		if n.Index != i {
			t.Errorf("T[%d].Index = %d", i, n.Index)
		}
	}
}

func TestDepths(t *testing.T) {
	tr := buildFigure6(t)
	wantDepth := map[string]int{"films": 0, "picture": 1, "cast": 2, "plot": 2, "star": 3}
	for _, n := range tr.Nodes() {
		if want, ok := wantDepth[n.Label]; ok && n.Depth != want {
			t.Errorf("depth(%s) = %d, want %d", n.Label, n.Depth, want)
		}
	}
	if tr.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4 (token leaves)", tr.MaxDepth())
	}
}

func TestDensityVsFanOut(t *testing.T) {
	tr := buildFigure6(t)
	cast := tr.Node(2)
	if cast.Label != "cast" {
		t.Fatalf("T[2] = %s", cast.Label)
	}
	if got := cast.FanOut(); got != 2 {
		t.Errorf("fan-out(cast) = %d, want 2", got)
	}
	// Two children but both labeled "star": density 1 (Assumption 3).
	if got := cast.Density(); got != 1 {
		t.Errorf("density(cast) = %d, want 1", got)
	}
	picture := tr.Node(1)
	if got := picture.Density(); got != 2 {
		t.Errorf("density(picture) = %d, want 2", got)
	}
}

func TestDistanceMatchesPaperExample(t *testing.T) {
	tr := buildFigure6(t)
	cast := tr.Node(2)
	kelly := tr.Node(6)
	if kelly.Label != "kelly" {
		t.Fatalf("T[6] = %s", kelly.Label)
	}
	// §3.4.1: "the distance between nodes T[2] and T[6] of labels cast and
	// Kelly respectively is equal to 2."
	if d := Distance(cast, kelly); d != 2 {
		t.Errorf("Dist(cast, kelly) = %d, want 2", d)
	}
	if d := Distance(cast, cast); d != 0 {
		t.Errorf("Dist(x, x) = %d, want 0", d)
	}
	films := tr.Node(0)
	if d := Distance(films, kelly); d != 4 {
		t.Errorf("Dist(films, kelly) = %d, want 4", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	tr := buildFigure6(t)
	nodes := tr.Nodes()
	for _, a := range nodes {
		for _, b := range nodes {
			if Distance(a, b) != Distance(b, a) {
				t.Fatalf("Distance not symmetric for %s, %s", a, b)
			}
		}
	}
}

func TestLCA(t *testing.T) {
	tr := buildFigure6(t)
	stewart, kelly := tr.Node(4), tr.Node(6)
	if got := LCA(stewart, kelly); got.Label != "cast" {
		t.Errorf("LCA(stewart, kelly) = %s, want cast", got.Label)
	}
	cast := tr.Node(2)
	if got := LCA(cast, kelly); got != cast {
		t.Errorf("LCA(cast, kelly) = %s, want cast itself", got.Label)
	}
}

func TestPath(t *testing.T) {
	tr := buildFigure6(t)
	kelly := tr.Node(6)
	got := strings.Join(kelly.Path(), "/")
	if got != "films/picture/cast/star/kelly" {
		t.Errorf("Path = %q", got)
	}
}

func TestAncestors(t *testing.T) {
	tr := buildFigure6(t)
	kelly := tr.Node(6)
	anc := kelly.Ancestors()
	if len(anc) != 4 || anc[0].Label != "star" || anc[3].Label != "films" {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestCloneIsDeepAndPreservesAnnotations(t *testing.T) {
	tr := buildFigure6(t)
	tr.Node(2).Sense = "cast.n.01"
	tr.Node(2).Gold = "cast.n.01"
	cp := tr.Clone()
	if cp.Len() != tr.Len() {
		t.Fatalf("clone Len = %d, want %d", cp.Len(), tr.Len())
	}
	if cp.Node(2).Sense != "cast.n.01" || cp.Node(2).Gold != "cast.n.01" {
		t.Errorf("clone lost annotations: %+v", cp.Node(2))
	}
	cp.Node(2).Sense = "changed"
	if tr.Node(2).Sense != "cast.n.01" {
		t.Error("mutating clone affected original")
	}
	for i := range cp.Nodes() {
		if cp.Node(i) == tr.Node(i) {
			t.Fatalf("clone shares node %d with original", i)
		}
	}
}

func TestReindexAfterMutation(t *testing.T) {
	tr := buildFigure6(t)
	plot := tr.Node(7)
	plot.AddChild(&Node{Raw: "twist", Label: "twist", Kind: Token})
	tr.Reindex()
	if tr.Len() != 9 {
		t.Errorf("Len after mutation = %d, want 9", tr.Len())
	}
	if tr.Node(8).Label != "twist" {
		t.Errorf("T[8] = %s, want twist", tr.Node(8).Label)
	}
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	tr.Reindex()
	if tr.Len() != 0 || tr.Node(0) != nil || tr.MaxDepth() != 0 {
		t.Error("empty tree should be inert")
	}
}

func TestKindString(t *testing.T) {
	if Element.String() != "element" || Attribute.String() != "attribute" || Token.String() != "token" {
		t.Error("Kind names wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind formatting wrong")
	}
}

// randomTree builds a deterministic pseudo-random tree shape from a seed
// vector, for property-based checks.
func randomTree(shape []uint8) *Tree {
	root := &Node{Label: "r", Kind: Element}
	nodes := []*Node{root}
	for i, b := range shape {
		if len(nodes) >= 64 {
			break
		}
		parent := nodes[int(b)%len(nodes)]
		n := &Node{Label: string(rune('a' + i%26)), Kind: Element}
		parent.AddChild(n)
		nodes = append(nodes, n)
	}
	return New(root)
}

// TestDistanceTriangleInequality checks Dist(a,c) <= Dist(a,b) + Dist(b,c)
// on random trees (tree metric property).
func TestDistanceTriangleInequality(t *testing.T) {
	f := func(shape []uint8, ai, bi, ci uint8) bool {
		tr := randomTree(shape)
		n := tr.Len()
		a := tr.Node(int(ai) % n)
		b := tr.Node(int(bi) % n)
		c := tr.Node(int(ci) % n)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDistanceViaDepthIdentity checks Dist(a,b) =
// depth(a)+depth(b)-2*depth(LCA(a,b)) on random trees.
func TestDistanceViaDepthIdentity(t *testing.T) {
	f := func(shape []uint8, ai, bi uint8) bool {
		tr := randomTree(shape)
		n := tr.Len()
		a := tr.Node(int(ai) % n)
		b := tr.Node(int(bi) % n)
		l := LCA(a, b)
		return Distance(a, b) == a.Depth+b.Depth-2*l.Depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPreorderParentBeforeChild: preorder index of a parent is always
// smaller than its children's.
func TestPreorderParentBeforeChild(t *testing.T) {
	f := func(shape []uint8) bool {
		tr := randomTree(shape)
		for _, n := range tr.Nodes() {
			for _, c := range n.Children {
				if c.Index <= n.Index {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
