// Package xmltree implements the rooted ordered labeled tree model of
// Definition 1 in the XSDF paper (Charbel et al., EDBT 2015).
//
// An XML document is modeled as a rooted ordered labeled tree where nodes
// represent XML elements, attributes, and text tokens. Element nodes are
// ordered following their order of appearance in the document. Attribute
// nodes appear as children of their containing element, sorted by attribute
// name, before all sub-elements. Element/attribute text values are tokenized
// (see internal/lingproc) and each token becomes a leaf child of its
// container, in order of appearance.
package xmltree

import (
	"fmt"
	"strings"

	"repro/xsdferrors"
)

// Kind distinguishes the three node categories of the XSDF document model.
type Kind uint8

const (
	// Element is an XML element node, labeled with the element tag name.
	Element Kind = iota
	// Attribute is an XML attribute node, labeled with the attribute name.
	Attribute
	// Token is a leaf node holding one token of an element or attribute
	// text value.
	Token
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Token:
		return "token"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a single node of a rooted ordered labeled tree. In the paper's
// notation, for a node x: x.ℓ is Label, x.d is Depth, and x.f is FanOut.
type Node struct {
	// Raw is the original tag name, attribute name, or token text as it
	// appeared in the document, before linguistic pre-processing.
	Raw string
	// Label is the node label after linguistic pre-processing (lower-cased,
	// stemmed when needed). Compound labels keep both tokens joined by a
	// space ("first name") so they are disambiguated together (§3.2).
	Label string
	// Tokens holds the individual pre-processed tokens of a compound label
	// (len 2), or a single entry equal to Label otherwise. Empty until
	// linguistic pre-processing runs.
	Tokens []string
	// Kind is the node category (element, attribute, or text token).
	Kind Kind
	// Parent is nil for the root.
	Parent *Node
	// Children in document order (attributes first, sorted by name).
	Children []*Node

	// Index is the node's preorder rank: T[i] in the paper's notation.
	// Maintained by Tree.Reindex.
	Index int
	// Depth is the number of edges from the root. Maintained by Reindex.
	Depth int

	// Sense is the identifier of the semantic concept assigned by
	// disambiguation, or empty when the node has not been (or could not be)
	// disambiguated.
	Sense string
	// SenseScore is the score of the winning sense in [0,1].
	SenseScore float64
	// Degraded records the degradation-ladder level the node was scored
	// at: zero for the full configured method (or when the ladder is off),
	// higher values for the cheaper fallbacks a budget-pressured run
	// stepped down to.
	Degraded xsdferrors.DegradationLevel
	// Gold is the ground-truth concept identifier attached by the corpus
	// generators (empty for real documents).
	Gold string

	// Links holds intra-document hyperlink edges (ID/IDREF) materialized by
	// Tree.ResolveLinks. With links present the document is a graph rather
	// than a tree; sphere construction may traverse them (§1).
	Links []*Node
}

// FanOut returns the node's out-degree (x.f in the paper).
func (n *Node) FanOut() int { return len(n.Children) }

// Density returns the number of children having distinct labels (x.f̄ in the
// paper): the node density factor of Proposition 3.
func (n *Node) Density() int {
	if len(n.Children) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(n.Children))
	for _, c := range n.Children {
		seen[c.Label] = struct{}{}
	}
	return len(seen)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AddChild appends c as the last child of n and sets its parent pointer.
func (n *Node) AddChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Path returns the labels on the path from the root down to n, inclusive.
func (n *Node) Path() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Label)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Ancestors returns the chain of ancestor nodes from parent up to the root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// String renders a short diagnostic description of the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s %q (T[%d] depth=%d)", n.Kind, n.Label, n.Index, n.Depth)
}

// Tree is a rooted ordered labeled tree (Definition 1). The zero value is an
// empty tree; use New or a parser to build one, then Reindex after any
// structural mutation.
type Tree struct {
	Root *Node

	nodes    []*Node
	maxDepth int
	maxDens  int
	maxFan   int
}

// New wraps root into a Tree and computes preorder indexes and statistics.
func New(root *Node) *Tree {
	t := &Tree{Root: root}
	t.Reindex()
	return t
}

// Reindex recomputes preorder indexes, depths, and the tree-level maxima
// (depth, fan-out, density) after structural changes.
func (t *Tree) Reindex() {
	t.nodes = t.nodes[:0]
	t.maxDepth, t.maxDens, t.maxFan = 0, 0, 0
	if t.Root == nil {
		return
	}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		n.Index = len(t.nodes)
		n.Depth = depth
		t.nodes = append(t.nodes, n)
		if depth > t.maxDepth {
			t.maxDepth = depth
		}
		if f := n.FanOut(); f > t.maxFan {
			t.maxFan = f
		}
		if d := n.Density(); d > t.maxDens {
			t.maxDens = d
		}
		for _, c := range n.Children {
			c.Parent = n
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the i-th node in preorder (the paper's T[i]), or nil when i
// is out of range.
func (t *Tree) Node(i int) *Node {
	if i < 0 || i >= len(t.nodes) {
		return nil
	}
	return t.nodes[i]
}

// Nodes returns the preorder node sequence. The slice is shared with the
// tree: callers must not mutate it.
func (t *Tree) Nodes() []*Node { return t.nodes }

// MaxDepth returns Max(depth(T)) used by the Amb_Depth factor.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// MaxFanOut returns Max(fan-out(T)).
func (t *Tree) MaxFanOut() int { return t.maxFan }

// MaxDensity returns Max(f̄an-out(T)): the maximum number of children with
// distinct labels over all nodes, used by the Amb_Density factor.
func (t *Tree) MaxDensity() int { return t.maxDens }

// Distance returns the number of edges on the unique path between a and b.
// Both nodes must belong to the same tree. The implementation climbs parent
// pointers to the lowest common ancestor, so it runs in O(depth).
func Distance(a, b *Node) int {
	if a == b {
		return 0
	}
	da, db := a.Depth, b.Depth
	dist := 0
	for da > db {
		a = a.Parent
		da--
		dist++
	}
	for db > da {
		b = b.Parent
		db--
		dist++
	}
	for a != b {
		a = a.Parent
		b = b.Parent
		dist += 2
	}
	return dist
}

// LCA returns the lowest common ancestor of a and b (possibly a or b itself).
func LCA(a, b *Node) *Node {
	for a.Depth > b.Depth {
		a = a.Parent
	}
	for b.Depth > a.Depth {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// Dump renders an indented textual view of the tree, useful in tests and
// example programs.
func (t *Tree) Dump() string {
	var sb strings.Builder
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		sb.WriteString(n.Label)
		if n.Sense != "" {
			sb.WriteString(" -> ")
			sb.WriteString(n.Sense)
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, indent+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	return sb.String()
}

// Clone returns a deep copy of the tree. Sense assignments, gold labels,
// and hyperlink edges are preserved (links are remapped into the copy).
func (t *Tree) Clone() *Tree {
	if t.Root == nil {
		return &Tree{}
	}
	mapping := make(map[*Node]*Node, len(t.nodes))
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{
			Raw:        n.Raw,
			Label:      n.Label,
			Kind:       n.Kind,
			Sense:      n.Sense,
			SenseScore: n.SenseScore,
			Degraded:   n.Degraded,
			Gold:       n.Gold,
		}
		mapping[n] = m
		if len(n.Tokens) > 0 {
			m.Tokens = append([]string(nil), n.Tokens...)
		}
		for _, c := range n.Children {
			m.AddChild(cp(c))
		}
		return m
	}
	root := cp(t.Root)
	for old, neu := range mapping {
		for _, l := range old.Links {
			if tl, ok := mapping[l]; ok {
				neu.Links = append(neu.Links, tl)
			}
		}
	}
	return New(root)
}
