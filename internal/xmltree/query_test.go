package xmltree

import (
	"strings"
	"testing"
)

func queryTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := ParseString(
		`<films><picture><cast><star>Stewart</star><star>Kelly</star></cast><plot/></picture>
		 <picture><cast><star>Grant</star></cast></picture></films>`,
		ParseOptions{IncludeContent: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		n.Label = strings.ToLower(n.Raw)
	}
	return tr
}

func labels(nodes []*Node) string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Label)
	}
	return strings.Join(out, ",")
}

func TestSelectExactPath(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("films/picture/cast")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || labels(nodes) != "cast,cast" {
		t.Errorf("got %s", labels(nodes))
	}
}

func TestSelectWildcard(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("films/*/cast/star")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("wildcard matched %d stars, want 3", len(nodes))
	}
}

func TestSelectDeep(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("//star")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("//star matched %d, want 3", len(nodes))
	}
	nodes, err = tr.Select("films//kelly")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Kind != Token {
		t.Errorf("films//kelly = %s", labels(nodes))
	}
}

func TestSelectDeepMiddle(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("films//star")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("films//star = %s", labels(nodes))
	}
}

func TestSelectRootAndMisses(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("")
	if err != nil || len(nodes) != 1 || nodes[0] != tr.Root {
		t.Errorf("empty query: %v %v", labels(nodes), err)
	}
	nodes, err = tr.Select("movies/picture")
	if err != nil || len(nodes) != 0 {
		t.Errorf("non-matching root: %v", labels(nodes))
	}
	if _, err := tr.Select("films//"); err == nil {
		t.Error("dangling // should error")
	}
}

func TestSelectFirst(t *testing.T) {
	tr := queryTree(t)
	n, err := tr.SelectFirst("//star")
	if err != nil || n == nil {
		t.Fatal(err)
	}
	// First in preorder: the Stewart star.
	if n.Children[0].Label != "stewart" {
		t.Errorf("first star holds %s", n.Children[0].Label)
	}
	if miss, err := tr.SelectFirst("//nothing"); err != nil || miss != nil {
		t.Errorf("miss = %v %v", miss, err)
	}
}

func TestSelectPreorderAndNoDuplicates(t *testing.T) {
	tr := queryTree(t)
	nodes, err := tr.Select("//picture//star")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("duplicates or misses: %d results", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Index <= nodes[i-1].Index {
			t.Error("results not in preorder")
		}
	}
}

func TestSelectOnEmptyTree(t *testing.T) {
	var tr Tree
	nodes, err := tr.Select("//x")
	if err != nil || nodes != nil {
		t.Errorf("empty tree: %v %v", nodes, err)
	}
}
