// Incremental SAX-style parsing: a pull-based scanner that walks the
// decoder's token stream and materializes one completed subtree at a
// time, so a document far larger than memory can be disambiguated
// subtree-by-subtree with live heap proportional to one subtree.
//
// The document is split at a configurable element depth (default 1: the
// children of the document root). Elements, attributes, and text above
// the split depth — the "envelope" — are consumed for well-formedness
// checking and path accounting but never materialized, which is the
// mode's one semantic divergence from whole-document parsing: a node
// whose sphere context would have crossed the subtree boundary loses the
// envelope side of that context (see the golden equivalence test).
//
// Guard semantics are scoped by where a violation happens:
//
//   - Inside a subtree, MaxDepth/MaxNodes/MaxTokenBytes (counted per
//     subtree) and MaxSubtreeBytes violations fail that subtree only:
//     Next returns a recoverable *SubtreeError, the scanner skips to the
//     subtree's end tag, and the following Next continues with the next
//     subtree.
//   - In the envelope, and for the document-level MaxSubtrees budget and
//     any well-formedness failure, the violation is fatal: Next returns a
//     *SubtreeError with Fatal set and every later call returns the same
//     error. Subtrees already emitted remain valid partial results.
//
// Both shapes carry the subtree ordinal and the input byte offset, so a
// caller knows exactly where the cut happened.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/xsdferrors"
)

// Default budgets of the incremental mode, applied when the
// corresponding SubtreeOptions field is zero.
const (
	// DefaultSplitDepth emits the children of the document root.
	DefaultSplitDepth = 1
	// DefaultMaxSubtreeBytes bounds the encoded size of one subtree.
	DefaultMaxSubtreeBytes = 16 << 20 // 16 MiB
	// DefaultMaxSubtrees bounds how many subtrees one document may emit.
	DefaultMaxSubtrees = 1_000_000
)

// SubtreeOptions configures a SubtreeScanner. The embedded ParseOptions
// guards (MaxDepth, MaxNodes, MaxTokenBytes) are enforced per subtree,
// with depth counted from the subtree root.
type SubtreeOptions struct {
	ParseOptions

	// SplitDepth is the element depth whose elements become subtree
	// roots: 1 (the default) splits at the children of the document
	// root, 2 at the grandchildren, and so on. Values below 1 select the
	// default.
	SplitDepth int
	// MaxSubtreeBytes bounds the encoded input size of a single subtree
	// (bytes consumed between its start tag and the end of its end tag).
	// Zero selects DefaultMaxSubtreeBytes; negative disables the guard.
	MaxSubtreeBytes int64
	// MaxSubtrees bounds the number of subtrees the scanner will attempt
	// for one document. Zero selects DefaultMaxSubtrees; negative
	// disables the guard. Exceeding it is fatal: the budget bounds total
	// work, not one subtree.
	MaxSubtrees int
}

func (o SubtreeOptions) splitDepth() int {
	if o.SplitDepth < 1 {
		return DefaultSplitDepth
	}
	return o.SplitDepth
}

func (o SubtreeOptions) maxSubtreeBytes() int64 {
	switch {
	case o.MaxSubtreeBytes == 0:
		return DefaultMaxSubtreeBytes
	case o.MaxSubtreeBytes < 0:
		return int64(^uint64(0) >> 1)
	default:
		return o.MaxSubtreeBytes
	}
}

func (o SubtreeOptions) maxSubtrees() int { return resolveLimit(o.MaxSubtrees, DefaultMaxSubtrees) }

// Subtree is one completed subtree emitted by a SubtreeScanner.
type Subtree struct {
	// Tree is the materialized subtree, indexed with the subtree root at
	// depth 0 — ready for the pipeline like any parsed document.
	Tree *Tree
	// Index is the subtree's 0-based ordinal within the document,
	// counting every attempted subtree (emitted and guard-tripped), so
	// it is stable across partial failures.
	Index int
	// Path holds the raw tag names of the envelope ancestors, document
	// root first — where in the document the subtree root hangs.
	Path []string
	// StartOffset and EndOffset delimit the subtree's encoded bytes in
	// the input stream.
	StartOffset, EndOffset int64
}

// Bytes is the encoded input size of the subtree.
func (s *Subtree) Bytes() int64 { return s.EndOffset - s.StartOffset }

// SubtreeError reports where incremental parsing stopped. It wraps the
// underlying typed error (an *xsdferrors.LimitError or an error matching
// xsdferrors.ErrMalformedInput), so errors.Is/As dispatch keeps working
// through it.
type SubtreeError struct {
	// Subtree is the 0-based ordinal of the subtree being parsed when
	// the error hit (equal to the count of previously attempted
	// subtrees when the error is document-level).
	Subtree int
	// Offset is the input byte offset where the violation was detected.
	Offset int64
	// Fatal marks document-level failures (malformedness, envelope
	// violations, the MaxSubtrees budget): no further subtree can
	// follow, and every later Next returns the same error. Recoverable
	// errors (per-subtree guard trips) fail one subtree; the next Next
	// continues behind it.
	Fatal bool
	// Err is the underlying typed error.
	Err error
}

func (e *SubtreeError) Error() string {
	return fmt.Sprintf("xmltree: subtree %d (input offset %d): %v", e.Subtree, e.Offset, e.Err)
}

func (e *SubtreeError) Unwrap() error { return e.Err }

// SubtreeScanner incrementally parses one XML document, emitting one
// completed subtree per Next call. Use NewSubtreeScanner; the scanner is
// single-goroutine (pull-based), holds no more than one subtree of
// nodes, and never re-reads input.
type SubtreeScanner struct {
	dec      *xml.Decoder
	tokenize func(string) []string
	include  bool

	splitDepth         int
	maxDepth, maxNodes int
	maxValue           int
	maxSubtreeBytes    int64
	maxSubtrees        int

	path       []string // envelope element names currently open
	open       int      // count of open envelope elements (== len(path))
	rootSeen   bool
	rootClosed bool

	index   int // subtrees attempted (emitted + guard-tripped)
	emitted int
	failed  int

	skip int   // >0: recovering — open elements of a tripped subtree left to close
	err  error // sticky terminal state (a fatal *SubtreeError, or io.EOF)
}

// NewSubtreeScanner reads one XML document from r in incremental subtree
// mode.
func NewSubtreeScanner(r io.Reader, opts SubtreeOptions) *SubtreeScanner {
	tokenize := opts.Tokenize
	if tokenize == nil {
		tokenize = strings.Fields
	}
	return &SubtreeScanner{
		dec:             xml.NewDecoder(r),
		tokenize:        tokenize,
		include:         opts.IncludeContent,
		splitDepth:      opts.splitDepth(),
		maxDepth:        opts.maxDepth(),
		maxNodes:        opts.maxNodes(),
		maxValue:        opts.maxTokenBytes(),
		maxSubtreeBytes: opts.maxSubtreeBytes(),
		maxSubtrees:     opts.maxSubtrees(),
	}
}

// Emitted is the number of subtrees successfully returned so far.
func (s *SubtreeScanner) Emitted() int { return s.emitted }

// Failed is the number of subtrees skipped on a recoverable guard trip.
func (s *SubtreeScanner) Failed() int { return s.failed }

// InputOffset is the byte offset the decoder has consumed up to.
func (s *SubtreeScanner) InputOffset() int64 { return s.dec.InputOffset() }

// fatal records a document-level error; every later Next repeats it.
func (s *SubtreeScanner) fatal(err error) error {
	se := &SubtreeError{Subtree: s.index, Offset: s.dec.InputOffset(), Fatal: true, Err: err}
	s.err = se
	return se
}

// trip records a per-subtree guard violation: the current subtree (with
// stillOpen elements consumed but unclosed) is abandoned, and the next
// Next call skips to its end tag before continuing.
func (s *SubtreeScanner) trip(idx, stillOpen int, err error) error {
	s.failed++
	s.skip = stillOpen
	return &SubtreeError{Subtree: idx, Offset: s.dec.InputOffset(), Err: err}
}

// Next returns the next completed subtree. It returns io.EOF after the
// document ends cleanly; a recoverable *SubtreeError when one subtree
// tripped a guard (call Next again to continue past it); and a fatal
// *SubtreeError on malformed input or a document-level budget violation
// (every later call returns the same error).
func (s *SubtreeScanner) Next() (*Subtree, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.skip > 0 {
		if err := s.skipTripped(); err != nil {
			return nil, s.fatal(err)
		}
	}
	for {
		off := s.dec.InputOffset()
		tok, err := s.dec.Token()
		if err == io.EOF {
			switch {
			case !s.rootSeen:
				return nil, s.fatal(malformed("empty document"))
			case s.open != 0:
				return nil, s.fatal(malformed("%d unclosed elements", s.open))
			}
			s.err = io.EOF
			return nil, io.EOF
		}
		if err != nil {
			return nil, s.fatal(fmt.Errorf("xmltree: parse: %w: %w", xsdferrors.ErrMalformedInput, err))
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if s.open == 0 {
				if s.rootClosed {
					return nil, s.fatal(malformed("multiple root elements"))
				}
				s.rootSeen = true
			}
			if s.open < s.splitDepth {
				// Envelope element: guard its attribute values (they are
				// decoded into memory either way), record the path, and
				// descend without materializing anything.
				for _, a := range tk.Attr {
					if len(a.Value) > s.maxValue {
						return nil, s.fatal(&xsdferrors.LimitError{
							Limit: "token-bytes", Max: s.maxValue, Actual: len(a.Value)})
					}
				}
				s.path = append(s.path, tk.Name.Local)
				s.open++
				continue
			}
			if s.index >= s.maxSubtrees {
				return nil, s.fatal(&xsdferrors.LimitError{
					Limit: "subtrees", Max: s.maxSubtrees, Actual: s.index + 1})
			}
			return s.buildSubtree(tk, off)
		case xml.EndElement:
			if s.open == 0 {
				return nil, s.fatal(malformed("unbalanced end element %q", tk.Name.Local))
			}
			s.open--
			s.path = s.path[:len(s.path)-1]
			if s.open == 0 {
				s.rootClosed = true
			}
		case xml.CharData:
			// Envelope text is never materialized, but an oversized chunk
			// was already decoded whole — reject the document like Parse
			// would.
			if len(tk) > s.maxValue {
				return nil, s.fatal(&xsdferrors.LimitError{
					Limit: "token-bytes", Max: s.maxValue, Actual: len(tk)})
			}
		}
	}
}

// buildSubtree materializes one subtree whose start tag (already
// consumed) began at startOff, enforcing the per-subtree guards.
func (s *SubtreeScanner) buildSubtree(start xml.StartElement, startOff int64) (*Subtree, error) {
	idx := s.index
	s.index++

	nodes := 0
	addNode := func() error {
		nodes++
		if nodes > s.maxNodes {
			return &xsdferrors.LimitError{Limit: "nodes", Max: s.maxNodes, Actual: nodes}
		}
		return nil
	}

	// startElement maps one start tag (the root, or a descendant) onto
	// its node with sorted, tokenized attributes — the same construction
	// as Parse, with depth counted from the subtree root.
	startElement := func(tk xml.StartElement, depth int) (*Node, error) {
		if depth > s.maxDepth {
			return nil, &xsdferrors.LimitError{Limit: "depth", Max: s.maxDepth, Actual: depth}
		}
		if err := addNode(); err != nil {
			return nil, err
		}
		n := &Node{Raw: tk.Name.Local, Label: tk.Name.Local, Kind: Element}
		attrs := append([]xml.Attr(nil), tk.Attr...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name.Local < attrs[j].Name.Local })
		for _, a := range attrs {
			if len(a.Value) > s.maxValue {
				return nil, &xsdferrors.LimitError{Limit: "token-bytes", Max: s.maxValue, Actual: len(a.Value)}
			}
			if err := addNode(); err != nil {
				return nil, err
			}
			an := &Node{Raw: a.Name.Local, Label: a.Name.Local, Kind: Attribute}
			n.AddChild(an)
			if s.include {
				for _, w := range s.tokenize(a.Value) {
					if err := addNode(); err != nil {
						return nil, err
					}
					an.AddChild(&Node{Raw: w, Label: w, Kind: Token})
				}
			}
		}
		return n, nil
	}

	root, err := startElement(start, 1)
	if err != nil {
		return nil, s.trip(idx, 1, err)
	}
	stack := []*Node{root}

	for {
		if consumed := s.dec.InputOffset() - startOff; consumed > s.maxSubtreeBytes {
			return nil, s.trip(idx, len(stack), &xsdferrors.LimitError{
				Limit: "subtree-bytes", Max: int(s.maxSubtreeBytes), Actual: int(consumed)})
		}
		tok, err := s.dec.Token()
		if err == io.EOF {
			return nil, s.fatal(malformed("%d unclosed elements", s.open+len(stack)))
		}
		if err != nil {
			return nil, s.fatal(fmt.Errorf("xmltree: parse: %w: %w", xsdferrors.ErrMalformedInput, err))
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			n, err := startElement(tk, len(stack)+1)
			if err != nil {
				return nil, s.trip(idx, len(stack)+1, err)
			}
			stack[len(stack)-1].AddChild(n)
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				continue
			}
			s.emitted++
			return &Subtree{
				Tree:        New(root),
				Index:       idx,
				Path:        append([]string(nil), s.path...),
				StartOffset: startOff,
				EndOffset:   s.dec.InputOffset(),
			}, nil
		case xml.CharData:
			if len(tk) > s.maxValue {
				return nil, s.trip(idx, len(stack), &xsdferrors.LimitError{
					Limit: "token-bytes", Max: s.maxValue, Actual: len(tk)})
			}
			if !s.include {
				continue
			}
			parent := stack[len(stack)-1]
			for _, w := range s.tokenize(string(tk)) {
				if err := addNode(); err != nil {
					return nil, s.trip(idx, len(stack), err)
				}
				parent.AddChild(&Node{Raw: w, Label: w, Kind: Token})
			}
		}
	}
}

// skipTripped discards the rest of a guard-tripped subtree: tokens are
// read and dropped until its open elements close. Well-formedness is
// still checked (a malformed tail is fatal), but the tripped subtree's
// content is not re-guarded — it already failed.
func (s *SubtreeScanner) skipTripped() error {
	for s.skip > 0 {
		tok, err := s.dec.Token()
		if err == io.EOF {
			return malformed("%d unclosed elements", s.open+s.skip)
		}
		if err != nil {
			return fmt.Errorf("xmltree: parse: %w: %w", xsdferrors.ErrMalformedInput, err)
		}
		switch tok.(type) {
		case xml.StartElement:
			s.skip++
		case xml.EndElement:
			s.skip--
		}
	}
	return nil
}
