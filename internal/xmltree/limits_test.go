package xmltree

import (
	"errors"
	"strings"
	"testing"

	"repro/xsdferrors"
)

// nested builds <a><a>...<a/>...</a></a> with the given element depth.
func nested(depth int) string {
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("</a>")
	}
	return sb.String()
}

func TestParseAdversarialInputs(t *testing.T) {
	cases := []struct {
		name      string
		doc       string
		opts      ParseOptions
		wantLimit string // LimitError.Limit, or "" for a malformed-input error
	}{
		{
			name:      "billion-laughs nesting vs default depth guard",
			doc:       nested(DefaultMaxDepth + 10),
			opts:      DefaultParseOptions(),
			wantLimit: "depth",
		},
		{
			name:      "nesting just over a custom depth limit",
			doc:       nested(6),
			opts:      ParseOptions{IncludeContent: true, MaxDepth: 5},
			wantLimit: "depth",
		},
		{
			name:      "huge attribute value",
			doc:       `<a b="` + strings.Repeat("x", 64) + `"/>`,
			opts:      ParseOptions{IncludeContent: true, MaxTokenBytes: 32},
			wantLimit: "token-bytes",
		},
		{
			name:      "huge character-data chunk",
			doc:       `<a>` + strings.Repeat("y", 64) + `</a>`,
			opts:      ParseOptions{IncludeContent: true, MaxTokenBytes: 32},
			wantLimit: "token-bytes",
		},
		{
			name:      "node-count bomb",
			doc:       `<a>` + strings.Repeat("<b/>", 50) + `</a>`,
			opts:      ParseOptions{IncludeContent: true, MaxNodes: 20},
			wantLimit: "nodes",
		},
		{
			name:      "token flood counts against node limit",
			doc:       `<a>` + strings.Repeat("w ", 50) + `</a>`,
			opts:      ParseOptions{IncludeContent: true, MaxNodes: 20},
			wantLimit: "nodes",
		},
		{name: "truncated document", doc: `<a><b>text`, opts: DefaultParseOptions()},
		{name: "unbalanced end", doc: `<a></b></a>`, opts: DefaultParseOptions()},
		{name: "multiple roots", doc: `<a/><b/>`, opts: DefaultParseOptions()},
		{name: "empty input", doc: ``, opts: DefaultParseOptions()},
		{name: "not xml", doc: `{"json": true}`, opts: DefaultParseOptions()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.doc, tc.opts)
			if err == nil {
				t.Fatal("hostile input must be rejected")
			}
			if tc.wantLimit != "" {
				var le *xsdferrors.LimitError
				if !errors.As(err, &le) {
					t.Fatalf("want *LimitError, got %T: %v", err, err)
				}
				if le.Limit != tc.wantLimit {
					t.Errorf("tripped %q guard, want %q", le.Limit, tc.wantLimit)
				}
				if !errors.Is(err, xsdferrors.ErrLimitExceeded) {
					t.Error("limit errors must match ErrLimitExceeded")
				}
			} else {
				if !errors.Is(err, xsdferrors.ErrMalformedInput) {
					t.Errorf("want ErrMalformedInput, got: %v", err)
				}
				if errors.Is(err, xsdferrors.ErrLimitExceeded) {
					t.Errorf("malformed input must not read as a limit violation: %v", err)
				}
			}
		})
	}
}

func TestParseLimitsDisabledAndDefaults(t *testing.T) {
	// Negative limits disable the guards entirely.
	deep := nested(DefaultMaxDepth + 10)
	tr, err := ParseString(deep, ParseOptions{IncludeContent: true, MaxDepth: -1})
	if err != nil {
		t.Fatalf("disabled depth guard must accept deep input: %v", err)
	}
	if tr.MaxDepth() != DefaultMaxDepth+9 {
		t.Errorf("depth = %d", tr.MaxDepth())
	}
	// Documents within the default limits parse as before.
	if _, err := ParseString(nested(50), DefaultParseOptions()); err != nil {
		t.Fatalf("benign document rejected: %v", err)
	}
}

func TestParseLimitErrorDetail(t *testing.T) {
	_, err := ParseString(nested(10), ParseOptions{MaxDepth: 3})
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Max != 3 || le.Actual != 4 {
		t.Errorf("limit detail = max %d actual %d, want max 3 actual 4", le.Max, le.Actual)
	}
}
