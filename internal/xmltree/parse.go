package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/xsdferrors"
)

// Default resource limits applied when the corresponding ParseOptions
// field is zero. They are generous for legitimate documents but stop
// hostile inputs (the "billion laughs" nesting shape, megabyte attribute
// values) before the tree is materialized.
const (
	DefaultMaxDepth      = 1_000
	DefaultMaxNodes      = 1_000_000
	DefaultMaxTokenBytes = 1 << 20 // 1 MiB per text value or character-data chunk
)

// ParseOptions controls how an XML byte stream is mapped onto the tree model.
type ParseOptions struct {
	// IncludeContent controls whether element/attribute text values are kept
	// as Token leaf nodes (structure-and-content mode, the paper's default)
	// or dropped (structure-only mode).
	IncludeContent bool
	// Tokenize splits a text value into raw tokens. When nil, values are
	// split on Unicode whitespace. Linguistic pre-processing proper (stop
	// words, stemming, compound handling) is applied later by
	// internal/lingproc.
	Tokenize func(string) []string

	// MaxDepth bounds element nesting depth; MaxNodes bounds the total
	// node count (elements + attributes + tokens); MaxTokenBytes bounds the
	// byte length of a single attribute value or character-data chunk.
	// Zero selects the package defaults above; a negative value disables
	// the guard. Violations abort parsing with an
	// *xsdferrors.LimitError.
	MaxDepth      int
	MaxNodes      int
	MaxTokenBytes int
}

func resolveLimit(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	default:
		return v
	}
}

func (o ParseOptions) maxDepth() int      { return resolveLimit(o.MaxDepth, DefaultMaxDepth) }
func (o ParseOptions) maxNodes() int      { return resolveLimit(o.MaxNodes, DefaultMaxNodes) }
func (o ParseOptions) maxTokenBytes() int { return resolveLimit(o.MaxTokenBytes, DefaultMaxTokenBytes) }

// DefaultParseOptions returns the structure-and-content configuration used
// throughout the paper's experiments.
func DefaultParseOptions() ParseOptions {
	return ParseOptions{IncludeContent: true}
}

// malformed builds a parse error that matches xsdferrors.ErrMalformedInput
// under errors.Is while keeping the traditional message prefix.
func malformed(format string, args ...any) error {
	return fmt.Errorf("xmltree: parse: %w: %s",
		xsdferrors.ErrMalformedInput, fmt.Sprintf(format, args...))
}

// Parse reads an XML document and returns its rooted ordered labeled tree.
// Attribute nodes are sorted by name and placed before sub-elements,
// following the canonical ordering of §3.1.
//
// Parsing is resource-guarded: nesting depth, total node count, and
// per-value byte size are bounded by the ParseOptions limits (package
// defaults when zero), and violations return an *xsdferrors.LimitError.
// Well-formedness failures return errors matching
// xsdferrors.ErrMalformedInput. Parse never panics on hostile input.
func Parse(r io.Reader, opts ParseOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	tokenize := opts.Tokenize
	if tokenize == nil {
		tokenize = strings.Fields
	}
	maxDepth, maxNodes, maxValue := opts.maxDepth(), opts.maxNodes(), opts.maxTokenBytes()

	nodes := 0
	addNode := func() error {
		nodes++
		if nodes > maxNodes {
			return &xsdferrors.LimitError{Limit: "nodes", Max: maxNodes, Actual: nodes}
		}
		return nil
	}

	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w: %w", xsdferrors.ErrMalformedInput, err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if len(stack)+1 > maxDepth {
				return nil, &xsdferrors.LimitError{Limit: "depth", Max: maxDepth, Actual: len(stack) + 1}
			}
			if err := addNode(); err != nil {
				return nil, err
			}
			n := &Node{Raw: tk.Name.Local, Label: tk.Name.Local, Kind: Element}
			attrs := append([]xml.Attr(nil), tk.Attr...)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name.Local < attrs[j].Name.Local })
			for _, a := range attrs {
				if len(a.Value) > maxValue {
					return nil, &xsdferrors.LimitError{Limit: "token-bytes", Max: maxValue, Actual: len(a.Value)}
				}
				if err := addNode(); err != nil {
					return nil, err
				}
				an := &Node{Raw: a.Name.Local, Label: a.Name.Local, Kind: Attribute}
				n.AddChild(an)
				if opts.IncludeContent {
					for _, w := range tokenize(a.Value) {
						if err := addNode(); err != nil {
							return nil, err
						}
						an.AddChild(&Node{Raw: w, Label: w, Kind: Token})
					}
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, malformed("multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AddChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, malformed("unbalanced end element %q", tk.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(tk) > maxValue {
				return nil, &xsdferrors.LimitError{Limit: "token-bytes", Max: maxValue, Actual: len(tk)}
			}
			if !opts.IncludeContent || len(stack) == 0 {
				continue
			}
			parent := stack[len(stack)-1]
			for _, w := range tokenize(string(tk)) {
				if err := addNode(); err != nil {
					return nil, err
				}
				parent.AddChild(&Node{Raw: w, Label: w, Kind: Token})
			}
		}
	}
	if root == nil {
		return nil, malformed("empty document")
	}
	if len(stack) != 0 {
		return nil, malformed("%d unclosed elements", len(stack))
	}
	return New(root), nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string, opts ParseOptions) (*Tree, error) {
	return Parse(strings.NewReader(doc), opts)
}

// WriteXML serializes the tree back to XML. Token children are emitted as
// character data (joined by single spaces); attribute nodes become XML
// attributes again. When annotate is true, disambiguated nodes carry an
// xsdf:sense attribute with the assigned concept identifier, producing the
// "semantic XML tree" output of Figure 4.b.
func (t *Tree) WriteXML(w io.Writer, annotate bool) error {
	if t.Root == nil {
		return fmt.Errorf("xmltree: write: empty tree")
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	return writeElem(w, t.Root, 0, annotate)
}

func writeElem(w io.Writer, n *Node, indent int, annotate bool) error {
	pad := strings.Repeat("  ", indent)
	var sb strings.Builder
	sb.WriteString(pad)
	sb.WriteByte('<')
	sb.WriteString(n.Raw)
	var text []string
	var elems []*Node
	for _, c := range n.Children {
		switch c.Kind {
		case Attribute:
			sb.WriteByte(' ')
			sb.WriteString(c.Raw)
			sb.WriteString(`="`)
			var vals []string
			for _, tc := range c.Children {
				vals = append(vals, escapeAttr(tc.Raw))
			}
			sb.WriteString(strings.Join(vals, " "))
			sb.WriteByte('"')
			if annotate && c.Sense != "" {
				sb.WriteString(` xsdf:sense-`)
				sb.WriteString(c.Raw)
				sb.WriteString(`="`)
				sb.WriteString(escapeAttr(c.Sense))
				sb.WriteByte('"')
			}
		case Token:
			text = append(text, escapeText(c.Raw))
		case Element:
			elems = append(elems, c)
		}
	}
	if annotate && n.Sense != "" {
		sb.WriteString(` xsdf:sense="`)
		sb.WriteString(escapeAttr(n.Sense))
		sb.WriteByte('"')
	}
	if len(text) == 0 && len(elems) == 0 {
		sb.WriteString("/>\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	sb.WriteByte('>')
	if len(elems) == 0 {
		sb.WriteString(strings.Join(text, " "))
		sb.WriteString("</")
		sb.WriteString(n.Raw)
		sb.WriteString(">\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	sb.WriteByte('\n')
	if len(text) > 0 {
		sb.WriteString(pad)
		sb.WriteString("  ")
		sb.WriteString(strings.Join(text, " "))
		sb.WriteByte('\n')
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, c := range elems {
		if err := writeElem(w, c, indent+1, annotate); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", pad, n.Raw)
	return err
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
