package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

// doc1 is Figure 1.a of the paper.
const doc1 = `<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director> Hitchcock </director>
    <year> 1954 </year>
    <genre> mystery </genre>
    <cast>
      <star> Stewart </star>
      <star> Kelly </star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`

func TestParseDoc1Structure(t *testing.T) {
	tr, err := ParseString(doc1, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Label != "films" {
		t.Fatalf("root = %s", tr.Root.Label)
	}
	picture := tr.Root.Children[0]
	if picture.Label != "picture" {
		t.Fatalf("first child = %s", picture.Label)
	}
	// The title attribute must come first (attributes before sub-elements).
	attr := picture.Children[0]
	if attr.Kind != Attribute || attr.Label != "title" {
		t.Fatalf("first child of picture = %v, want title attribute", attr)
	}
	if len(attr.Children) != 2 || attr.Children[0].Raw != "Rear" || attr.Children[1].Raw != "Window" {
		t.Errorf("title attribute tokens = %v", attr.Children)
	}
	// Elements follow in document order.
	var elems []string
	for _, c := range picture.Children[1:] {
		elems = append(elems, c.Label)
	}
	if got := strings.Join(elems, ","); got != "director,year,genre,cast,plot" {
		t.Errorf("element order = %s", got)
	}
}

func TestParseStructureOnly(t *testing.T) {
	tr, err := ParseString(doc1, ParseOptions{IncludeContent: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		if n.Kind == Token {
			t.Fatalf("structure-only tree contains token %q", n.Raw)
		}
	}
}

func TestParseAttributesSorted(t *testing.T) {
	tr, err := ParseString(`<m zeta="1" alpha="2" mid="3"/>`, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range tr.Root.Children {
		if c.Kind == Attribute {
			names = append(names, c.Label)
		}
	}
	if got := strings.Join(names, ","); got != "alpha,mid,zeta" {
		t.Errorf("attributes = %s, want sorted", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"empty", ``},
		{"unclosed", `<a><b></b>`},
		{"junk", `<<<`},
		{"two roots", `<a/><b/>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.doc, DefaultParseOptions()); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseCustomTokenizer(t *testing.T) {
	opts := DefaultParseOptions()
	opts.Tokenize = func(s string) []string {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil
		}
		return []string{strings.ToLower(s)} // whole value as one token
	}
	tr, err := ParseString(`<a>Hello World</a>`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Raw != "hello world" {
		t.Errorf("custom tokenizer ignored: %v", tr.Root.Children)
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	tr, err := ParseString(doc1, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteXML(&buf, false); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(&buf, DefaultParseOptions())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if tr2.Len() != tr.Len() {
		t.Errorf("round trip node count %d != %d", tr2.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if tr.Node(i).Raw != tr2.Node(i).Raw || tr.Node(i).Kind != tr2.Node(i).Kind {
			t.Errorf("node %d: %v != %v", i, tr.Node(i), tr2.Node(i))
		}
	}
}

func TestWriteXMLAnnotated(t *testing.T) {
	tr, err := ParseString(`<cast><star>Kelly</star></cast>`, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr.Root.Sense = "cast.n.01"
	var buf bytes.Buffer
	if err := tr.WriteXML(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `xsdf:sense="cast.n.01"`) {
		t.Errorf("annotated output missing sense attribute:\n%s", buf.String())
	}
}

func TestWriteXMLEscaping(t *testing.T) {
	root := &Node{Raw: "a", Label: "a", Kind: Element}
	root.AddChild(&Node{Raw: `x<&>"y`, Label: "x", Kind: Token})
	tr := New(root)
	var buf bytes.Buffer
	if err := tr.WriteXML(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "x<&>") {
		t.Errorf("unescaped special characters in %s", out)
	}
	if !strings.Contains(out, "x&lt;&amp;&gt;") {
		t.Errorf("expected escapes in %s", out)
	}
}

func TestWriteXMLEmptyTree(t *testing.T) {
	var tr Tree
	if err := tr.WriteXML(&bytes.Buffer{}, false); err == nil {
		t.Error("expected error for empty tree")
	}
}
