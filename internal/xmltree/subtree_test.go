package xmltree

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/xsdferrors"
)

// scanAll drives a scanner to its terminal state, collecting emitted
// subtrees and per-subtree (recoverable) errors.
func scanAll(t *testing.T, sc *SubtreeScanner) (subs []*Subtree, trips []*SubtreeError, terminal error) {
	t.Helper()
	for {
		st, err := sc.Next()
		if err == nil {
			subs = append(subs, st)
			continue
		}
		var se *SubtreeError
		if errors.As(err, &se) && !se.Fatal {
			trips = append(trips, se)
			continue
		}
		return subs, trips, err
	}
}

func TestSubtreeScannerBasic(t *testing.T) {
	doc := `<library name="main">
		<shelf id="a"><book>semantic tree</book></shelf>
		<shelf id="b"><book>network</book><book>movie</book></shelf>
		<empty/>
	</library>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(trips) != 0 {
		t.Fatalf("unexpected trips: %v", trips)
	}
	if len(subs) != 3 {
		t.Fatalf("emitted %d subtrees, want 3", len(subs))
	}
	if sc.Emitted() != 3 || sc.Failed() != 0 {
		t.Fatalf("Emitted=%d Failed=%d, want 3, 0", sc.Emitted(), sc.Failed())
	}
	for i, st := range subs {
		if st.Index != i {
			t.Errorf("subtree %d has Index %d", i, st.Index)
		}
		if len(st.Path) != 1 || st.Path[0] != "library" {
			t.Errorf("subtree %d Path = %v, want [library]", i, st.Path)
		}
		if st.Bytes() <= 0 || st.StartOffset >= st.EndOffset {
			t.Errorf("subtree %d offsets [%d, %d)", i, st.StartOffset, st.EndOffset)
		}
	}
	if got := subs[0].Tree.Root.Label; got != "shelf" {
		t.Errorf("first subtree root = %q, want shelf", got)
	}
	// Subtree trees are indexed from their own root.
	if d := subs[1].Tree.Root.Depth; d != 0 {
		t.Errorf("subtree root depth = %d, want 0", d)
	}
	// shelf + id attr + token "b" + 2 books + 2 tokens ("network", "movie").
	if n := subs[1].Tree.Len(); n != 7 {
		t.Errorf("second subtree has %d nodes, want 7", n)
	}
	if got := subs[2].Tree.Root.Label; got != "empty" {
		t.Errorf("third subtree root = %q, want empty", got)
	}
}

// The subtree node construction must match Parse exactly: parsing a
// subtree's source region standalone yields the identical tree shape.
func TestSubtreeScannerMatchesParse(t *testing.T) {
	inner := `<shelf genre="crime fiction" id="x"><book year="1954">rear window</book>text tail</shelf>`
	doc := "<lib>" + inner + "</lib>"
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
	})
	st, err := sc.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	want, err := ParseString(inner, ParseOptions{IncludeContent: true})
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got, w := st.Tree.Dump(), want.Dump(); got != w {
		t.Errorf("subtree tree differs from standalone parse:\ngot:\n%s\nwant:\n%s", got, w)
	}
	if got, w := st.Tree.Len(), want.Len(); got != w {
		t.Errorf("Len = %d, want %d", got, w)
	}
}

func TestSubtreeScannerSplitDepth(t *testing.T) {
	doc := `<a><b><c>one</c><c>two</c></b><b><c>three</c></b></a>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
		SplitDepth:   2,
	})
	subs, _, err := scanAll(t, sc)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(subs) != 3 {
		t.Fatalf("emitted %d subtrees, want 3", len(subs))
	}
	for i, st := range subs {
		if st.Tree.Root.Label != "c" {
			t.Errorf("subtree %d root = %q, want c", i, st.Tree.Root.Label)
		}
		if len(st.Path) != 2 || st.Path[0] != "a" || st.Path[1] != "b" {
			t.Errorf("subtree %d Path = %v, want [a b]", i, st.Path)
		}
	}
}

// A split depth below the document's element depth emits nothing: the
// whole document is envelope, and the scan ends cleanly.
func TestSubtreeScannerSplitDeeperThanDocument(t *testing.T) {
	sc := NewSubtreeScanner(strings.NewReader(`<a><b/></a>`), SubtreeOptions{SplitDepth: 5})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF || len(subs) != 0 || len(trips) != 0 {
		t.Fatalf("got subs=%d trips=%d err=%v, want clean empty scan", len(subs), len(trips), err)
	}
}

func TestSubtreeScannerGuardTripRecovers(t *testing.T) {
	// Middle subtree exceeds MaxNodes (6 tokens + element = 7 > 5);
	// neighbors stay intact.
	doc := `<r><s>ok one</s><s>a b c d e f</s><s>ok two</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true, MaxNodes: 5},
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(subs) != 2 || len(trips) != 1 {
		t.Fatalf("subs=%d trips=%d, want 2 subtrees and 1 trip", len(subs), len(trips))
	}
	se := trips[0]
	if se.Subtree != 1 || se.Fatal {
		t.Errorf("trip = %+v, want recoverable at subtree 1", se)
	}
	var le *xsdferrors.LimitError
	if !errors.As(se, &le) || le.Limit != "nodes" {
		t.Errorf("trip error = %v, want nodes LimitError", se)
	}
	if !errors.Is(se, xsdferrors.ErrLimitExceeded) {
		t.Errorf("trip does not match ErrLimitExceeded: %v", se)
	}
	if subs[0].Index != 0 || subs[1].Index != 2 {
		t.Errorf("surviving indexes = %d, %d, want 0, 2", subs[0].Index, subs[1].Index)
	}
	if sc.Emitted() != 2 || sc.Failed() != 1 {
		t.Errorf("Emitted=%d Failed=%d, want 2, 1", sc.Emitted(), sc.Failed())
	}
}

func TestSubtreeScannerDepthPerSubtree(t *testing.T) {
	// Nesting depth is counted from the subtree root: depth 3 within the
	// subtree trips MaxDepth 2 even though the envelope adds one more
	// level of document depth.
	doc := `<r><s><x><y>deep</y></x></s><s>flat</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true, MaxDepth: 2},
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(subs) != 1 || len(trips) != 1 {
		t.Fatalf("subs=%d trips=%d, want 1 and 1", len(subs), len(trips))
	}
	var le *xsdferrors.LimitError
	if !errors.As(trips[0], &le) || le.Limit != "depth" || le.Actual != 3 {
		t.Errorf("trip = %v, want depth LimitError with Actual 3", trips[0])
	}
	if subs[0].Tree.Root.Label != "s" || subs[0].Index != 1 {
		t.Errorf("survivor = %q index %d, want s index 1", subs[0].Tree.Root.Label, subs[0].Index)
	}
}

func TestSubtreeScannerMaxSubtreeBytes(t *testing.T) {
	big := strings.Repeat("<x>word</x>", 64)
	doc := `<r><s>small</s><s>` + big + `</s><s>small too</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions:    ParseOptions{IncludeContent: true},
		MaxSubtreeBytes: 128,
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(subs) != 2 || len(trips) != 1 {
		t.Fatalf("subs=%d trips=%d, want 2 and 1", len(subs), len(trips))
	}
	var le *xsdferrors.LimitError
	if !errors.As(trips[0], &le) || le.Limit != "subtree-bytes" {
		t.Errorf("trip = %v, want subtree-bytes LimitError", trips[0])
	}
	if trips[0].Offset <= 0 {
		t.Errorf("trip carries no offset: %+v", trips[0])
	}
}

func TestSubtreeScannerMaxSubtreesFatal(t *testing.T) {
	doc := `<r><s>a</s><s>b</s><s>c</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
		MaxSubtrees:  2,
	})
	subs, trips, err := scanAll(t, sc)
	if len(subs) != 2 || len(trips) != 0 {
		t.Fatalf("subs=%d trips=%d, want 2 and 0", len(subs), len(trips))
	}
	var se *SubtreeError
	if !errors.As(err, &se) || !se.Fatal {
		t.Fatalf("terminal error = %v, want fatal SubtreeError", err)
	}
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) || le.Limit != "subtrees" {
		t.Fatalf("terminal error = %v, want subtrees LimitError", err)
	}
	// Sticky: the same error repeats.
	if _, err2 := sc.Next(); !errors.Is(err2, xsdferrors.ErrLimitExceeded) {
		t.Errorf("repeated Next = %v, want the sticky limit error", err2)
	}
}

func TestSubtreeScannerMalformedMidDocument(t *testing.T) {
	// Two good subtrees, then a tag mismatch: partial results with exact
	// accounting, then a fatal malformed error.
	doc := `<r><s>one</s><s>two</s><s><broken></s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
	})
	subs, trips, err := scanAll(t, sc)
	if len(subs) != 2 || len(trips) != 0 {
		t.Fatalf("subs=%d trips=%d before the malformed tail, want 2 and 0", len(subs), len(trips))
	}
	var se *SubtreeError
	if !errors.As(err, &se) || !se.Fatal {
		t.Fatalf("terminal error = %v, want fatal SubtreeError", err)
	}
	if !errors.Is(err, xsdferrors.ErrMalformedInput) {
		t.Fatalf("terminal error = %v, want ErrMalformedInput", err)
	}
	if se.Subtree != 3 {
		t.Errorf("failure attributed to subtree %d, want 3", se.Subtree)
	}
	if se.Offset <= 0 {
		t.Errorf("fatal error carries no offset: %+v", se)
	}
}

func TestSubtreeScannerWellFormedness(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"empty", "   "},
		{"multiple-roots", "<a/><b/>"},
		{"unclosed-root", "<a><b/>"},
		{"unclosed-subtree", "<a><b>"},
		{"bad-tag", "<a><b></c></a>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewSubtreeScanner(strings.NewReader(tc.doc), SubtreeOptions{})
			_, _, err := scanAll(t, sc)
			if !errors.Is(err, xsdferrors.ErrMalformedInput) {
				t.Fatalf("terminal error = %v, want ErrMalformedInput", err)
			}
			var se *SubtreeError
			if !errors.As(err, &se) || !se.Fatal {
				t.Fatalf("terminal error = %v, want fatal SubtreeError", err)
			}
		})
	}
}

func TestSubtreeScannerEnvelopeTokenBytesFatal(t *testing.T) {
	doc := `<r>` + strings.Repeat("x", 64) + `<s>fine</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true, MaxTokenBytes: 16},
	})
	_, _, err := scanAll(t, sc)
	var se *SubtreeError
	if !errors.As(err, &se) || !se.Fatal {
		t.Fatalf("terminal error = %v, want fatal SubtreeError", err)
	}
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) || le.Limit != "token-bytes" {
		t.Fatalf("terminal error = %v, want token-bytes LimitError", err)
	}
}

func TestSubtreeScannerTokenBytesInsideSubtreeRecovers(t *testing.T) {
	doc := `<r><s>` + strings.Repeat("x", 64) + `</s><s>ok</s></r>`
	sc := NewSubtreeScanner(strings.NewReader(doc), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true, MaxTokenBytes: 16},
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF || len(subs) != 1 || len(trips) != 1 {
		t.Fatalf("subs=%d trips=%d err=%v, want 1 subtree, 1 trip, EOF", len(subs), len(trips), err)
	}
}

// A document accepted by whole-document Parse under the default guards
// is accepted subtree-by-subtree too, and in the same order.
func TestSubtreeScannerOrderAndCount(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<corpus>")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, `<doc n="%d">payload %d</doc>`, i, i)
	}
	sb.WriteString("</corpus>")
	sc := NewSubtreeScanner(strings.NewReader(sb.String()), SubtreeOptions{
		ParseOptions: ParseOptions{IncludeContent: true},
	})
	subs, trips, err := scanAll(t, sc)
	if err != io.EOF || len(trips) != 0 {
		t.Fatalf("err=%v trips=%d, want clean EOF", err, len(trips))
	}
	if len(subs) != 40 {
		t.Fatalf("emitted %d, want 40", len(subs))
	}
	for i, st := range subs {
		if st.Index != i {
			t.Fatalf("subtree %d carries Index %d", i, st.Index)
		}
		prev := int64(0)
		if i > 0 {
			prev = subs[i-1].EndOffset
		}
		if st.StartOffset < prev {
			t.Fatalf("subtree %d overlaps its predecessor: start %d < prev end %d", i, st.StartOffset, prev)
		}
	}
}
