package lingproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// fakeLex is a set-backed Lexicon for tests.
type fakeLex map[string]bool

func (f fakeLex) HasLemma(l string) bool { return f[strings.ToLower(l)] }

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"A wheelchair bound photographer", []string{"a", "wheelchair", "bound", "photographer"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"hy-phen's", []string{"hy", "phen", "s"}},
		{"year 1954!", []string{"year", "1954"}},
		{"", nil},
		{"...", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitCompound(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Directed_By", []string{"directed", "by"}},
		{"FirstName", []string{"first", "name"}},
		{"firstname", []string{"firstname"}},
		{"initPage", []string{"init", "page"}},
		{"cast", []string{"cast"}},
		{"XMLDocument", []string{"xml", "document"}},
		{"list-price", []string{"list", "price"}},
		{"a.b", []string{"a", "b"}},
		{"breakfast_menu", []string{"breakfast", "menu"}},
	}
	for _, c := range cases {
		if got := SplitCompound(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitCompound(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "The", "by", "of", "and"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"cast", "movie", "state"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
}

func TestNormalize(t *testing.T) {
	lex := fakeLex{"movie": true, "star": true, "direct": true, "box": true, "baby": true}
	cases := []struct{ in, want string }{
		{"movie", "movie"},     // direct hit
		{"Movies", "movie"},    // plural reduction
		{"directed", "direct"}, // Porter stem
		{"boxes", "box"},
		{"babies", "baby"},
		{"qwzzk", "qwzzk"}, // unknown stays as-is
	}
	for _, c := range cases {
		if got := Normalize(c.in, lex); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestProcessLabelSingleWord(t *testing.T) {
	lex := fakeLex{"cast": true}
	label, tokens := ProcessLabel("cast", lex)
	if label != "cast" || !reflect.DeepEqual(tokens, []string{"cast"}) {
		t.Errorf("got %q %v", label, tokens)
	}
}

func TestProcessLabelCompoundSingleConcept(t *testing.T) {
	// "FirstName" -> "first name" which matches a single concept (§3.2
	// case 2a): one token.
	lex := fakeLex{"first name": true, "first": true, "name": true}
	label, tokens := ProcessLabel("FirstName", lex)
	if label != "first name" || len(tokens) != 1 {
		t.Errorf("got %q %v, want single-token compound", label, tokens)
	}
}

func TestProcessLabelCompoundNoSingleConcept(t *testing.T) {
	// No single concept: the two normalized terms stay in one label to be
	// disambiguated together (§3.2 case 2b).
	lex := fakeLex{"init": false, "page": true}
	label, tokens := ProcessLabel("initPage", lex)
	if label != "init page" || !reflect.DeepEqual(tokens, []string{"init", "page"}) {
		t.Errorf("got %q %v", label, tokens)
	}
}

func TestProcessLabelCompoundStopWordRemoval(t *testing.T) {
	// "Directed_By": "by" is a stop word; the remaining term is stemmed.
	lex := fakeLex{"direct": true}
	label, tokens := ProcessLabel("Directed_By", lex)
	if label != "direct" || !reflect.DeepEqual(tokens, []string{"direct"}) {
		t.Errorf("got %q %v", label, tokens)
	}
}

func TestProcessLabelAllStopWords(t *testing.T) {
	label, tokens := ProcessLabel("of_the", nil)
	if label == "" || len(tokens) == 0 {
		t.Errorf("degenerate tag dropped entirely: %q %v", label, tokens)
	}
}

func TestProcessLabelThreeTerms(t *testing.T) {
	// More than two content terms: keep the first two (§3.2 footnote 4).
	lex := fakeLex{}
	_, tokens := ProcessLabel("OneTwoThree", lex)
	if len(tokens) != 2 {
		t.Errorf("tokens = %v, want 2 kept", tokens)
	}
}

func TestProcessValueToken(t *testing.T) {
	lex := fakeLex{"neighbor": true}
	if w, ok := ProcessValueToken("Neighbors", lex); !ok || w != "neighbor" {
		t.Errorf("got %q %v", w, ok)
	}
	if _, ok := ProcessValueToken("the", lex); ok {
		t.Error("stop word not dropped")
	}
}

func TestProcessTree(t *testing.T) {
	doc := `<films><picture title="Rear Window"><directed_by>Alfred Hitchcock</directed_by>
	<plot>A photographer spies on his neighbors</plot></picture></films>`
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: true, Tokenize: Tokenize})
	if err != nil {
		t.Fatal(err)
	}
	lex := fakeLex{"film": true, "picture": true, "title": true, "direct": true,
		"photographer": true, "spy": true, "neighbor": true, "plot": true,
		"window": true, "rear": true, "hitchcock": true, "alfred": true}
	ProcessTree(tr, lex)

	if tr.Root.Label != "film" {
		t.Errorf("root label = %q, want stemmed/singular film", tr.Root.Label)
	}
	// Stop-word tokens ("a", "on", "his") must be gone.
	for _, n := range tr.Nodes() {
		if n.Kind == xmltree.Token && IsStopWord(n.Label) {
			t.Errorf("stop word token %q survived", n.Label)
		}
	}
	// directed_by: "by" removed, "directed" stemmed.
	var found bool
	for _, n := range tr.Nodes() {
		if n.Raw == "directed_by" {
			found = true
			if n.Label != "direct" {
				t.Errorf("directed_by label = %q", n.Label)
			}
		}
	}
	if !found {
		t.Fatal("directed_by node missing")
	}
}

func TestProcessTreeIdempotent(t *testing.T) {
	doc := `<movies><movie year="1954"><name>Rear Window</name></movie></movies>`
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: true, Tokenize: Tokenize})
	if err != nil {
		t.Fatal(err)
	}
	lex := fakeLex{"movie": true, "year": true, "name": true, "rear": true, "window": true}
	ProcessTree(tr, lex)
	first := dumpLabels(tr)
	ProcessTree(tr, lex)
	if second := dumpLabels(tr); second != first {
		t.Errorf("ProcessTree not idempotent:\n%s\nvs\n%s", first, second)
	}
}

func dumpLabels(tr *xmltree.Tree) string {
	var sb strings.Builder
	for _, n := range tr.Nodes() {
		sb.WriteString(n.Label)
		sb.WriteByte('|')
	}
	return sb.String()
}

// TestSplitCompoundLowercase: output terms are always lower-case and
// non-empty.
func TestSplitCompoundLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, term := range SplitCompound(s) {
			if term != strings.ToLower(term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
