package lingproc

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzStem: the Porter stemmer must never panic and must keep output
// within the input length bound (+1 for the e-restoration cases).
func FuzzStem(f *testing.F) {
	for _, s := range []string{"caresses", "relational", "hopping", "sky", "", "a", "motoring", "électricité"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, w string) {
		got := Stem(w)
		if len(got) > len(w)+1 {
			t.Fatalf("Stem(%q) = %q grew beyond bound", w, got)
		}
	})
}

// FuzzSplitCompound: splitting must never panic, never lose all content
// for non-empty letter input, and always lower-case its output.
func FuzzSplitCompound(f *testing.F) {
	for _, s := range []string{"FirstName", "Directed_By", "a", "", "XMLDoc", "ALLCAPS", "x-y.z"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, tag string) {
		if !utf8.ValidString(tag) {
			return
		}
		terms := SplitCompound(tag)
		if len(terms) == 0 {
			t.Fatalf("SplitCompound(%q) returned nothing", tag)
		}
		for _, term := range terms {
			if term != strings.ToLower(term) {
				t.Fatalf("SplitCompound(%q) produced non-lowercase %q", tag, term)
			}
		}
	})
}

// FuzzTokenize: tokens contain only letters and digits, lower-cased.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"A wheelchair bound photographer", "1954!", "", "--", "naïve café"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
		}
	})
}
