package lingproc

import (
	"testing"

	"repro/internal/corpus"
)

// benchLex approximates the embedded lexicon's coverage without importing
// it (internal/wordnet depends on internal/semnet, which depends on this
// package for gloss stemming — a test-only import cycle).
var benchLex = fakeLex{
	"first": true, "name": true, "first name": true, "list": true,
	"price": true, "cast": true, "stagedir": true, "star": true,
	"movie": true, "picture": true, "play": true, "act": true,
	"scene": true, "speech": true, "speaker": true, "line": true,
	"title": true, "persona": true, "plot": true, "direct": true,
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "conditionally", "disambiguation",
		"photographers", "neighbors", "troubled", "happiness", "movies"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkTokenize(b *testing.B) {
	const s = "A wheelchair-bound photographer spies on his neighbors, 1954!"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Tokenize(s)) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkSplitCompound(b *testing.B) {
	tags := []string{"FirstName", "Directed_By", "initPage", "cast", "XMLDocumentRoot"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitCompound(tags[i%len(tags)])
	}
}

func BenchmarkProcessLabel(b *testing.B) {
	tags := []string{"FirstName", "ListPrice", "cast", "firstname", "STAGEDIR"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProcessLabel(tags[i%len(tags)], benchLex)
	}
}

func BenchmarkProcessTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := corpus.GenerateDataset(1, 1)[0].Tree
		b.StartTimer()
		ProcessTree(tr, benchLex)
	}
}
