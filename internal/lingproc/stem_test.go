package lingproc

import (
	"testing"
	"testing/quick"
)

// TestStemKnownPairs exercises the classic Porter test vectors plus the
// domain vocabulary the pipeline depends on.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		// Porter's published examples.
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		// Domain words.
		"directed": "direct",
		"actors":   "actor",
		"spies":    "spi",
		"pages":    "page",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "by", "of"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// TestStemIdempotentOnCommonVocabulary: stemming a stem should be stable
// for typical dictionary words (not guaranteed for arbitrary strings by the
// Porter algorithm, but it must hold on our pipeline's vocabulary).
func TestStemIdempotentOnVocabulary(t *testing.T) {
	words := []string{"movies", "pictures", "directed", "casting", "stars",
		"plotting", "reviews", "ratings", "customers", "publishers",
		"articles", "authors", "personnel", "families", "addresses"}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

// TestStemNeverGrows: the Porter stemmer only removes or rewrites suffixes;
// output is never longer than input+1 (the +e restoration cases).
func TestStemNeverGrows(t *testing.T) {
	f := func(s string) bool {
		// Restrict to ASCII lower-case words, the stemmer's domain.
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s) && len(clean) < 30; i++ {
			c := s[i] | 0x20
			if c >= 'a' && c <= 'z' {
				clean = append(clean, c)
			}
		}
		w := string(clean)
		return len(Stem(w)) <= len(w)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStemASCIIOnlyOutput: output of stemming an ASCII word is ASCII.
func TestStemLowercaseInputPreserved(t *testing.T) {
	if got := Stem("Motoring"); got != "motor" {
		t.Errorf("Stem should lower-case: got %q", got)
	}
}
