package lingproc

import (
	"sync"

	"repro/internal/xmltree"
)

// Processor memoizes linguistic pre-processing against one fixed lexicon.
// Tag names and value tokens repeat heavily across a corpus (every <star>
// element re-derives the same label and token list), and ProcessLabel's
// compound analysis — splitting, normalization, dictionary segmentation —
// allocates on every call. A Processor computes each distinct raw string
// once and hands out the shared result; a core snapshot owns one per
// lexicon version, so memos can never mix two networks.
//
// Returned label/token slices are shared across calls and across trees:
// callers must treat them as read-only, which every in-tree consumer does
// (the disambiguator and selectors only read Node.Tokens).
//
// Processor is safe for concurrent use; shards keep batch workers from
// serializing on one lock.
type Processor struct {
	lex    Lexicon
	shards [procShardCount]procShard
}

const procShardCount = 16

type labelEntry struct {
	label  string
	tokens []string
}

type tokenEntry struct {
	tok    string
	tokens []string // one-element slice for token leaves, shared
	ok     bool
}

type procShard struct {
	mu     sync.RWMutex
	labels map[string]labelEntry
	tokens map[string]tokenEntry
}

// NewProcessor returns an empty memoizing processor over lex (nil means
// the empty lexicon, matching the package-level functions).
func NewProcessor(lex Lexicon) *Processor {
	if lex == nil {
		lex = emptyLexicon{}
	}
	p := &Processor{lex: lex}
	for i := range p.shards {
		p.shards[i].labels = make(map[string]labelEntry)
		p.shards[i].tokens = make(map[string]tokenEntry)
	}
	return p
}

// procShardOf is FNV-1a over the raw string, reduced to a shard index.
func procShardOf(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h % procShardCount
}

// Label is ProcessLabel memoized per raw tag name. The returned token
// slice is shared: read-only.
func (p *Processor) Label(tag string) (string, []string) {
	sh := &p.shards[procShardOf(tag)]
	sh.mu.RLock()
	e, ok := sh.labels[tag]
	sh.mu.RUnlock()
	if ok {
		return e.label, e.tokens
	}
	label, tokens := ProcessLabel(tag, p.lex)
	sh.mu.Lock()
	sh.labels[tag] = labelEntry{label: label, tokens: tokens}
	sh.mu.Unlock()
	return label, tokens
}

// ValueToken is ProcessValueToken memoized per raw token, returning the
// normalized token, its shared one-element token slice, and whether the
// token survives stop-word removal.
func (p *Processor) ValueToken(tok string) (string, []string, bool) {
	sh := &p.shards[procShardOf(tok)]
	sh.mu.RLock()
	e, ok := sh.tokens[tok]
	sh.mu.RUnlock()
	if ok {
		return e.tok, e.tokens, e.ok
	}
	w, keep := ProcessValueToken(tok, p.lex)
	e = tokenEntry{tok: w, ok: keep}
	if keep {
		e.tokens = []string{w}
	}
	sh.mu.Lock()
	sh.tokens[tok] = e
	sh.mu.Unlock()
	return e.tok, e.tokens, e.ok
}

// ProcessTree is the package-level ProcessTree routed through the memos:
// the identical walk, label analysis, and stop-word removal, with each
// distinct raw string computed once per Processor lifetime.
func (p *Processor) ProcessTree(t *xmltree.Tree) {
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.Kind == xmltree.Token {
				w, toks, ok := p.ValueToken(c.Raw)
				if !ok {
					continue
				}
				c.Label = w
				c.Tokens = toks
			}
			kept = append(kept, c)
		}
		n.Children = kept
		for _, c := range n.Children {
			if c.Kind != xmltree.Token {
				c.Label, c.Tokens = p.Label(c.Raw)
			}
			walk(c)
		}
	}
	if t.Root != nil {
		t.Root.Label, t.Root.Tokens = p.Label(t.Root.Raw)
		walk(t.Root)
	}
	t.Reindex()
}
