// Package lingproc implements the linguistic pre-processing module of XSDF
// (§3.2 of the paper): tokenization, stop-word removal, stemming, and
// compound-word handling for XML element/attribute tag names and text
// values.
//
// Three input cases are distinguished:
//
//  1. tag names consisting of an individual word — kept as-is, stemmed only
//     when the word is unknown to the reference semantic network;
//  2. tag names consisting of a compound word ("Directed_By", "FirstName") —
//     if the two terms match a single concept in the network ("first name")
//     they become one token, otherwise the terms are kept within a single
//     node label to be disambiguated together;
//  3. text values — tokenized on whitespace/punctuation, stop words removed,
//     remaining tokens stemmed when unknown, each mapped to its own leaf
//     node.
package lingproc

import (
	"strings"
	"unicode"

	"repro/internal/xmltree"
)

// Lexicon is the minimal view of a semantic network the pre-processor needs:
// membership tests for words and expressions. *semnet.Network satisfies it.
type Lexicon interface {
	// HasLemma reports whether the word or multi-word expression (space
	// separated) names at least one concept.
	HasLemma(lemma string) bool
}

// emptyLexicon is used when no lexicon is supplied: nothing matches, so
// every word is stemmed and compounds always split.
type emptyLexicon struct{}

func (emptyLexicon) HasLemma(string) bool { return false }

// stopWords is a compact English stop-word list suited to XML tag names and
// short text values. Derived from the classic van Rijsbergen list.
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`a about above after again all am an and
		any are as at be because been before being below between both but by
		did do does doing down during each few for from further had has have
		having he her here hers him his how i if in into is it its itself me
		more most my no nor not of off on once only or other our ours out
		over own same she so some such than that the their theirs them then
		there these they this those through to too under until up very was we
		were what when where which while who whom why with you your yours`) {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the lower-cased word is on the stop-word list.
func IsStopWord(w string) bool {
	_, ok := stopWords[strings.ToLower(w)]
	return ok
}

// Tokenize splits a text value into lower-cased word tokens, breaking on any
// rune that is neither a letter nor a digit. Pure-digit tokens are kept
// (years, quantities) since they can carry gold labels in the corpus.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// SplitCompound breaks a tag name into its constituent terms, handling the
// two compound conventions of §3.2: special delimiters (underscore, hyphen,
// dot) and camel case ("FirstName" -> ["first", "name"]). A simple name
// yields a single term. All terms are lower-cased.
func SplitCompound(tag string) []string {
	// First break on explicit delimiters.
	fields := strings.FieldsFunc(tag, func(r rune) bool {
		return r == '_' || r == '-' || r == '.' || r == ':' || r == ' '
	})
	var terms []string
	for _, f := range fields {
		terms = append(terms, splitCamel(f)...)
	}
	if len(terms) == 0 {
		return []string{strings.ToLower(tag)}
	}
	return terms
}

// splitCamel splits camelCase and PascalCase words at lower-to-upper
// boundaries, keeping acronym runs together ("XMLDoc" -> ["xml", "doc"]).
func splitCamel(s string) []string {
	runes := []rune(s)
	var parts []string
	start := 0
	for i := 1; i < len(runes); i++ {
		prevLower := unicode.IsLower(runes[i-1])
		curUpper := unicode.IsUpper(runes[i])
		// boundary: aB
		if prevLower && curUpper {
			parts = append(parts, strings.ToLower(string(runes[start:i])))
			start = i
			continue
		}
		// boundary: ABc (end of acronym run)
		if curUpper && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]) {
			parts = append(parts, strings.ToLower(string(runes[start:i])))
			start = i
		}
	}
	parts = append(parts, strings.ToLower(string(runes[start:])))
	return parts
}

// Normalize maps a single word to the form used for lexicon lookup: the
// word itself when the lexicon knows it, otherwise a naive plural
// reduction, otherwise its Porter stem (the paper stems only "when the word
// is not found in the reference semantic network"). Plural reduction is
// tried before Porter because the Porter stem of regular plurals often
// undershoots dictionary lemmas ("movies" -> "movi").
func Normalize(word string, lex Lexicon) string {
	w := strings.ToLower(word)
	if lex.HasLemma(w) {
		return w
	}
	for _, s := range singularCandidates(w) {
		if lex.HasLemma(s) {
			return s
		}
	}
	if s := Stem(w); lex.HasLemma(s) {
		return s
	}
	return w
}

// singularCandidates lists plausible singular forms of a regular English
// plural, most specific first ("movies" -> "movie"; "babies" -> "baby";
// "boxes" -> "box"). Empty when the word does not look plural.
func singularCandidates(w string) []string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return []string{w[:len(w)-1], w[:len(w)-3] + "y"}
	case strings.HasSuffix(w, "es") && len(w) > 3:
		return []string{w[:len(w)-1], w[:len(w)-2]}
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return []string{w[:len(w)-1]}
	default:
		return nil
	}
}

// ProcessLabel pre-processes one tag name and returns the node label and its
// constituent tokens following the three-case analysis of §3.2:
//
//   - individual word:        label == the normalized word, one token;
//   - compound matching a single concept ("first name"): label == the joined
//     expression, one token;
//   - compound with no single match: label joins the surviving terms with a
//     space and Tokens carries them separately, so the disambiguator can run
//     the compound special case (Eqs. 10/12).
func ProcessLabel(tag string, lex Lexicon) (label string, tokens []string) {
	if lex == nil {
		lex = emptyLexicon{}
	}
	terms := SplitCompound(tag)
	if len(terms) == 1 {
		w := Normalize(terms[0], lex)
		if !lex.HasLemma(w) {
			// Undelimited compounds ("firstname", "lastname") carry no case
			// or delimiter hints; fall back to dictionary segmentation into
			// two known words.
			if t1, t2, ok := segment(w, lex); ok {
				terms = []string{t1, t2}
			}
		}
		if len(terms) == 1 {
			return w, []string{w}
		}
	}
	// Compound: does the joined expression name a single concept?
	joined := strings.Join(terms, " ")
	if lex.HasLemma(joined) {
		return joined, []string{joined}
	}
	// No single match: remove stop words, normalize each surviving term,
	// keep them in one label to be disambiguated together.
	var kept []string
	for _, t := range terms {
		if IsStopWord(t) {
			continue
		}
		kept = append(kept, Normalize(t, lex))
	}
	if len(kept) == 0 {
		// Degenerate all-stop-word tag; keep the raw terms.
		kept = terms
	}
	if len(kept) == 1 {
		return kept[0], kept
	}
	// The paper notes tags rarely exceed two terms; keep the first two.
	if len(kept) > 2 {
		kept = kept[:2]
	}
	return strings.Join(kept, " "), kept
}

// segment splits an unknown word into two dictionary words, preferring the
// longest known prefix ("firstname" -> "first" + "name"). Both halves must
// be known and at least two letters long.
func segment(w string, lex Lexicon) (string, string, bool) {
	for i := len(w) - 2; i >= 2; i-- {
		if lex.HasLemma(w[:i]) && lex.HasLemma(w[i:]) {
			return w[:i], w[i:], true
		}
	}
	return "", "", false
}

// ProcessValueToken pre-processes one token of a text value. It returns the
// normalized token and true, or "" and false when the token is a stop word
// and should be dropped.
func ProcessValueToken(tok string, lex Lexicon) (string, bool) {
	if lex == nil {
		lex = emptyLexicon{}
	}
	w := strings.ToLower(tok)
	if IsStopWord(w) {
		return "", false
	}
	return Normalize(w, lex), true
}

// ProcessTree applies the full linguistic pre-processing pipeline to every
// node of t in place: element/attribute labels go through ProcessLabel,
// token leaves through ProcessValueToken (stop-word tokens are removed from
// the tree). The tree is reindexed before returning.
func ProcessTree(t *xmltree.Tree, lex Lexicon) {
	if lex == nil {
		lex = emptyLexicon{}
	}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.Kind == xmltree.Token {
				w, ok := ProcessValueToken(c.Raw, lex)
				if !ok {
					continue
				}
				c.Label = w
				c.Tokens = []string{w}
			}
			kept = append(kept, c)
		}
		n.Children = kept
		for _, c := range n.Children {
			if c.Kind != xmltree.Token {
				c.Label, c.Tokens = ProcessLabel(c.Raw, lex)
			}
			walk(c)
		}
	}
	if t.Root != nil {
		t.Root.Label, t.Root.Tokens = ProcessLabel(t.Root.Raw, lex)
		walk(t.Root)
	}
	t.Reindex()
}
