package lingproc

// Stem applies the Porter stemming algorithm (Porter, 1980) to a single
// lower-case word and returns its stem. Words of length <= 2 are returned
// unchanged, per the original algorithm. Upper-case ASCII letters are
// lowered byte-wise; non-ASCII bytes pass through untouched (the
// algorithm's suffix rules only ever match ASCII), so output never grows
// beyond the input (+1 for the e-restoration cases).
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := make([]byte, len(word))
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		w[i] = c
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense: a letter
// other than a, e, i, o, u, and other than y preceded by a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:end].
func measure(w []byte, end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && isCons(w, i) {
		i++
	}
	for i < end {
		// in vowel run
		for i < end && !isCons(w, i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		for i < end && isCons(w, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether w[:end] contains a vowel.
func hasVowel(w []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether w ends with a double consonant.
func doubleCons(w []byte) bool {
	n := len(w)
	if n < 2 {
		return false
	}
	return w[n-1] == w[n-2] && isCons(w, n-1)
}

// cvc reports whether w[:end] ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func cvc(w []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isCons(w, end-3) || isCons(w, end-2) || !isCons(w, end-1) {
		return false
	}
	switch w[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the measure of the remaining
// stem is > m. Returns the (possibly new) word and whether it matched s.
func replaceSuffix(w []byte, s, r string, m int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stemEnd := len(w) - len(s)
	if measure(w, stemEnd) > m {
		return append(w[:stemEnd], r...), true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	cleanup := false
	if hasSuffix(w, "ed") && hasVowel(w, len(w)-2) {
		w = w[:len(w)-2]
		cleanup = true
	} else if hasSuffix(w, "ing") && hasVowel(w, len(w)-3) {
		w = w[:len(w)-3]
		cleanup = true
	}
	if !cleanup {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case doubleCons(w):
		last := w[len(w)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return w[:len(w)-1]
		}
	case measure(w, len(w)) == 1 && cvc(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		var done bool
		if w, done = replaceSuffix(w, rule.s, rule.r, 0); done {
			return w
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		var done bool
		if w, done = replaceSuffix(w, rule.s, rule.r, 0); done {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stemEnd := len(w) - len(s)
		if measure(w, stemEnd) > 1 {
			return w[:stemEnd]
		}
		return w
	}
	// (m>1 and (*S or *T)) ION ->
	if hasSuffix(w, "ion") {
		stemEnd := len(w) - 3
		if stemEnd > 0 && (w[stemEnd-1] == 's' || w[stemEnd-1] == 't') && measure(w, stemEnd) > 1 {
			return w[:stemEnd]
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stemEnd := len(w) - 1
	m := measure(w, stemEnd)
	if m > 1 || (m == 1 && !cvc(w, stemEnd)) {
		return w[:stemEnd]
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w, len(w)) > 1 && doubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
