package wordnet

// fillerSynsets widen the hierarchy the way real WordNet is wide: every hub
// concept (statement, document, device, activity, region, property, person
// subtypes, ...) gets additional hyponyms that never appear as tags or
// values in the test corpus. They matter for fidelity: semantic-network
// sphere neighborhoods (§3.5.2) of real WordNet concepts are bushy, so
// concept context vectors carry many dimensions unrelated to any one
// document — without these, context-based disambiguation degenerates into
// an oracle over a co-occurrence-shaped lexicon.
var fillerSynsets = []syn{
	// statement hyponyms
	{id: "remark.n.01", lemmas: []string{"remark", "comment"}, gloss: "a statement that expresses a personal opinion or belief", parent: "statement.n.01"},
	{id: "declaration.n.01", lemmas: []string{"declaration"}, gloss: "a statement that is emphatic and explicit", parent: "statement.n.01"},
	{id: "announcement.n.01", lemmas: []string{"announcement", "proclamation"}, gloss: "a formal public statement", parent: "statement.n.01"},
	{id: "answer.n.01", lemmas: []string{"answer", "reply", "response"}, gloss: "a statement that is made in reply to a question or request", parent: "statement.n.01"},
	{id: "promise.n.01", lemmas: []string{"promise"}, gloss: "a verbal commitment by one person to another agreeing to do something", parent: "statement.n.01"},
	{id: "excuse.n.01", lemmas: []string{"excuse", "alibi"}, gloss: "a defense of some offensive behavior", parent: "statement.n.01"},
	// message hyponyms
	{id: "request.n.01", lemmas: []string{"request", "petition"}, gloss: "a formal message requesting something", parent: "message.n.02"},
	{id: "warning.n.01", lemmas: []string{"warning"}, gloss: "a message informing of danger", parent: "message.n.02"},
	{id: "promotion.n.01", lemmas: []string{"promotion", "publicity"}, gloss: "a message issued on behalf of some product or cause", parent: "message.n.02"},
	// text / writing hyponyms
	{id: "paragraph.n.01", lemmas: []string{"paragraph"}, gloss: "one of several distinct subdivisions of a text intended to separate ideas", parent: "text.n.01"},
	{id: "column.n.01", lemmas: []string{"column", "newspaper column"}, gloss: "an article giving opinions or perspectives printed regularly", parent: "text.n.01"},
	{id: "essay.n.01", lemmas: []string{"essay"}, gloss: "an analytic or interpretive literary composition", parent: "writing.n.02"},
	{id: "manuscript.n.01", lemmas: []string{"manuscript"}, gloss: "the form of a literary work submitted for publication", parent: "writing.n.02"},
	{id: "poem.n.01", lemmas: []string{"poem", "verse form"}, gloss: "a composition written in metrical feet forming rhythmical lines", parent: "writing.n.02"},
	{id: "novel.n.01", lemmas: []string{"novel"}, gloss: "an extended fictional work in prose", parent: "writing.n.02"},
	// document hyponyms
	{id: "certificate.n.01", lemmas: []string{"certificate", "credential"}, gloss: "a document attesting to the truth of certain stated facts", parent: "document.n.01"},
	{id: "contract.n.01", lemmas: []string{"contract"}, gloss: "a binding agreement between two or more persons that is enforceable by law", parent: "document.n.01"},
	{id: "license.n.01", lemmas: []string{"license", "permit"}, gloss: "a legal document giving official permission to do something", parent: "document.n.01"},
	{id: "passport.n.01", lemmas: []string{"passport"}, gloss: "a document issued by a country to a citizen allowing that person to travel abroad", parent: "document.n.01"},
	{id: "report.n.01", lemmas: []string{"report", "written report"}, gloss: "a written document describing the findings of some individual or group", parent: "document.n.01"},
	// publication hyponyms
	{id: "magazine.n.01", lemmas: []string{"magazine", "mag"}, gloss: "a periodic publication containing pictures and stories and articles", parent: "periodical.n.01"},
	{id: "newspaper.n.01", lemmas: []string{"newspaper", "paper", "gazette"}, gloss: "a daily or weekly publication on folded sheets containing news and articles", parent: "periodical.n.01"},
	{id: "handbook.n.01", lemmas: []string{"handbook", "manual"}, gloss: "a concise reference publication covering a particular subject", parent: "publication.n.01"},
	{id: "atlas.n.01", lemmas: []string{"atlas", "book of maps"}, gloss: "a collection of maps in book form", parent: "publication.n.01"},
	// dramatic composition hyponyms
	{id: "opera.n.01", lemmas: []string{"opera"}, gloss: "a drama set to music consisting of singing with orchestral accompaniment", parent: "dramatic_composition.n.01"},
	{id: "tragedy.n.01", lemmas: []string{"tragedy"}, gloss: "drama in which the protagonist is overcome by some superior force", parent: "dramatic_composition.n.01"},
	{id: "comedy.n.01", lemmas: []string{"comedy"}, gloss: "light and humorous drama with a happy ending", parent: "dramatic_composition.n.01"},
	{id: "ballet.n.01", lemmas: []string{"ballet", "concert dance"}, gloss: "a theatrical performance of a story by trained dancers", parent: "dramatic_composition.n.01"},
	// symbol hyponyms
	{id: "emblem.n.01", lemmas: []string{"emblem", "allegory"}, gloss: "a visible symbol representing an abstract idea", parent: "symbol.n.01"},
	{id: "token.n.01", lemmas: []string{"token"}, gloss: "an individual instance of a type of symbol", parent: "symbol.n.01"},
	{id: "numeral.n.01", lemmas: []string{"numeral", "number symbol"}, gloss: "a symbol used to represent a number", parent: "symbol.n.01"},
	// device hyponyms
	{id: "instrument.n.01", lemmas: []string{"instrument"}, gloss: "a device that requires skill for proper use", parent: "device.n.01"},
	{id: "machine.n.01", lemmas: []string{"machine"}, gloss: "any mechanical or electrical device that transmits or modifies energy", parent: "device.n.01"},
	{id: "keyboard.n.01", lemmas: []string{"keyboard"}, gloss: "a device consisting of a set of keys operated by hand", parent: "device.n.01"},
	{id: "filter.n.01", lemmas: []string{"filter"}, gloss: "a device that removes something from whatever passes through it", parent: "device.n.01"},
	{id: "lock.n.01", lemmas: []string{"lock"}, gloss: "a fastener fitted to a door or drawer to keep it closed", parent: "device.n.01"},
	{id: "switch.n.01", lemmas: []string{"switch", "electric switch"}, gloss: "a device for making or breaking an electric circuit", parent: "device.n.01"},
	// instrumentality / container hyponyms
	{id: "furniture.n.01", lemmas: []string{"furniture", "furnishing"}, gloss: "furnishings that make a room ready for occupancy", parent: "instrumentality.n.01"},
	{id: "vehicle.n.01", lemmas: []string{"vehicle"}, gloss: "a conveyance that transports people or objects", parent: "instrumentality.n.01"},
	{id: "bottle.n.01", lemmas: []string{"bottle"}, gloss: "a container typically of glass with a narrow neck", parent: "container.n.01"},
	{id: "box.n.01", lemmas: []string{"box"}, gloss: "a rigid rectangular container usually with a lid", parent: "container.n.01"},
	{id: "basket.n.01", lemmas: []string{"basket", "handbasket"}, gloss: "a container that is usually woven and has handles", parent: "container.n.01"},
	// structure / building hyponyms
	{id: "bridge.n.01", lemmas: []string{"bridge", "span"}, gloss: "a structure that allows people or vehicles to cross an obstacle", parent: "structure.n.01"},
	{id: "tower.n.01", lemmas: []string{"tower"}, gloss: "a structure taller than its diameter standing alone or attached to a larger building", parent: "structure.n.01"},
	{id: "wall.n.01", lemmas: []string{"wall"}, gloss: "an architectural partition with a height and length greater than its thickness", parent: "structure.n.01"},
	{id: "school.n.02", lemmas: []string{"school", "schoolhouse"}, gloss: "a building where young people receive education", parent: "building.n.01"},
	{id: "hotel.n.01", lemmas: []string{"hotel"}, gloss: "a building where travelers can pay for lodging and meals", parent: "building.n.01"},
	{id: "library.n.01", lemmas: []string{"library"}, gloss: "a building that houses a collection of books and other materials", parent: "building.n.01"},
	// person subtypes
	{id: "teacher.n.01", lemmas: []string{"teacher", "instructor"}, gloss: "a person whose occupation is teaching", parent: "worker.n.01"},
	{id: "engineer.n.01", lemmas: []string{"engineer", "applied scientist"}, gloss: "a person who uses scientific knowledge to solve practical problems", parent: "worker.n.01"},
	{id: "nurse.n.01", lemmas: []string{"nurse"}, gloss: "a worker who is skilled in caring for the sick under the supervision of a physician", parent: "worker.n.01"},
	{id: "lawyer.n.01", lemmas: []string{"lawyer", "attorney"}, gloss: "a professional person authorized to practice law", parent: "expert.n.01"},
	{id: "judge.n.01", lemmas: []string{"judge", "justice"}, gloss: "a public official authorized to decide questions brought before a court", parent: "leader.n.01"},
	{id: "captain.n.01", lemmas: []string{"captain", "skipper"}, gloss: "the leader of a group of people such as the officer in command of a ship", parent: "leader.n.01"},
	{id: "mayor.n.01", lemmas: []string{"mayor", "city manager"}, gloss: "the head of a city government", parent: "leader.n.01"},
	{id: "poet.n.01", lemmas: []string{"poet"}, gloss: "a writer of poems", parent: "writer.n.01"},
	{id: "journalist.n.01", lemmas: []string{"journalist"}, gloss: "a writer for newspapers and magazines", parent: "writer.n.01"},
	{id: "painter.n.01", lemmas: []string{"painter"}, gloss: "an artist who paints pictures", parent: "artist.n.01"},
	{id: "sculptor.n.01", lemmas: []string{"sculptor", "carver"}, gloss: "an artist who creates sculptures", parent: "artist.n.01"},
	{id: "magician.n.01", lemmas: []string{"magician", "conjurer"}, gloss: "an entertainer who performs magic tricks of illusion and sleight of hand", parent: "entertainer.n.01"},
	{id: "acrobat.n.01", lemmas: []string{"acrobat"}, gloss: "an athlete who performs gymnastic feats requiring skillful control of the body", parent: "performer.n.01"},
	{id: "violinist.n.01", lemmas: []string{"violinist", "fiddler"}, gloss: "a musician who plays the violin", parent: "musician.n.01"},
	{id: "pianist.n.01", lemmas: []string{"pianist", "piano player"}, gloss: "a musician who plays the piano", parent: "musician.n.01"},
	{id: "swimmer.n.01", lemmas: []string{"swimmer"}, gloss: "a trained athlete who participates in swimming meets", parent: "athlete.n.01"},
	{id: "runner.n.01", lemmas: []string{"runner"}, gloss: "an athlete who competes in foot races", parent: "athlete.n.01"},
	// activity hyponyms
	{id: "exercise.n.01", lemmas: []string{"exercise", "workout"}, gloss: "the activity of exerting muscles in order to keep fit", parent: "activity.n.01"},
	{id: "training.n.01", lemmas: []string{"training", "preparation"}, gloss: "the activity of imparting and acquiring skills", parent: "activity.n.01"},
	{id: "cooking.n.01", lemmas: []string{"cooking", "cookery"}, gloss: "the act of preparing food by the application of heat", parent: "activity.n.01"},
	{id: "hunting.n.01", lemmas: []string{"hunting", "hunt"}, gloss: "the activity of pursuing and killing wild animals", parent: "activity.n.01"},
	{id: "fishing.n.01", lemmas: []string{"fishing"}, gloss: "the activity of catching fish", parent: "activity.n.01"},
	{id: "dancing.n.01", lemmas: []string{"dancing", "dance"}, gloss: "the activity of taking part in a social function involving rhythmic movement", parent: "activity.n.01"},
	// event / act hyponyms
	{id: "accident.n.01", lemmas: []string{"accident"}, gloss: "an unfortunate mishap that happens unexpectedly", parent: "event.n.01"},
	{id: "ceremony.n.01", lemmas: []string{"ceremony"}, gloss: "a formal event performed on a special occasion", parent: "social_event.n.01"},
	{id: "festival.n.01", lemmas: []string{"festival", "fete"}, gloss: "an organized series of performances and events", parent: "social_event.n.01"},
	{id: "contest.n.01", lemmas: []string{"contest", "competition"}, gloss: "an occasion on which a winner is selected from among two or more contestants", parent: "social_event.n.01"},
	{id: "rescue.n.01", lemmas: []string{"rescue", "deliverance"}, gloss: "the act of freeing from harm or evil", parent: "act.n.02"},
	{id: "escape.n.01", lemmas: []string{"escape", "flight"}, gloss: "the act of escaping physically from confinement", parent: "act.n.02"},
	// region / location hyponyms
	{id: "desert.n.01", lemmas: []string{"desert"}, gloss: "an arid region with little or no vegetation", parent: "region.n.01"},
	{id: "forest.n.01", lemmas: []string{"forest", "woodland"}, gloss: "a region densely covered with trees and underbrush", parent: "region.n.01"},
	{id: "coast.n.01", lemmas: []string{"coast", "seashore"}, gloss: "the shore of a sea or ocean regarded as a region", parent: "region.n.01"},
	{id: "valley.n.01", lemmas: []string{"valley", "vale"}, gloss: "a long depression in the surface of the land between hills", parent: "region.n.01"},
	{id: "village.n.01", lemmas: []string{"village", "hamlet"}, gloss: "a community of people smaller than a town", parent: "administrative_district.n.01"},
	{id: "county.n.01", lemmas: []string{"county"}, gloss: "a region created by territorial division for the purpose of local government", parent: "administrative_district.n.01"},
	{id: "harbor.n.01", lemmas: []string{"harbor", "seaport"}, gloss: "a sheltered port where ships can take on or discharge cargo", parent: "geographic_point.n.01"},
	// property / attribute hyponyms
	{id: "color.n.01", lemmas: []string{"color", "colour"}, gloss: "a visual attribute of things that results from the light they reflect", parent: "property.n.01"},
	{id: "temperature.n.01", lemmas: []string{"temperature"}, gloss: "the degree of hotness or coldness of a body or environment", parent: "property.n.01"},
	{id: "speed.n.01", lemmas: []string{"speed", "velocity"}, gloss: "a rate at which something happens or moves", parent: "property.n.01"},
	{id: "hardness.n.01", lemmas: []string{"hardness"}, gloss: "the property of being rigid and resistant to pressure", parent: "property.n.01"},
	{id: "texture.n.01", lemmas: []string{"texture"}, gloss: "the feel of a surface or a fabric", parent: "property.n.01"},
	{id: "honesty.n.01", lemmas: []string{"honesty", "honestness"}, gloss: "the quality of being honest", parent: "quality.n.01"},
	{id: "courage.n.01", lemmas: []string{"courage", "bravery"}, gloss: "a quality of spirit that enables you to face danger despite fear", parent: "trait.n.01"},
	// state / condition hyponyms
	{id: "health.n.01", lemmas: []string{"health"}, gloss: "the general condition of body and mind", parent: "condition.n.01"},
	{id: "poverty.n.01", lemmas: []string{"poverty", "impoverishment"}, gloss: "the state of having little or no money and few or no material possessions", parent: "condition.n.01"},
	{id: "silence.n.01", lemmas: []string{"silence"}, gloss: "the state of being silent as when no one is speaking", parent: "state.n.02"},
	{id: "freedom.n.01", lemmas: []string{"freedom"}, gloss: "the condition of being free from restraints", parent: "state.n.02"},
	// measure / quantity hyponyms
	{id: "mile.n.01", lemmas: []string{"mile", "statute mile"}, gloss: "a unit of length equal to 1760 yards", parent: "unit_of_measurement.n.01"},
	{id: "gallon.n.01", lemmas: []string{"gallon"}, gloss: "a United States liquid unit equal to 4 quarts", parent: "unit_of_measurement.n.01"},
	{id: "month.n.01", lemmas: []string{"month"}, gloss: "one of the twelve divisions of the calendar year", parent: "time_period.n.01"},
	{id: "week.n.01", lemmas: []string{"week"}, gloss: "any period of seven consecutive days", parent: "time_period.n.01"},
	{id: "decade.n.01", lemmas: []string{"decade", "decennium"}, gloss: "a period of ten years", parent: "time_period.n.01"},
	{id: "season.n.01", lemmas: []string{"season"}, gloss: "a period of the year marked by special events or activities", parent: "time_period.n.01"},
	// organization hyponyms
	{id: "army.n.01", lemmas: []string{"army", "ground forces"}, gloss: "a permanent organization of the military land forces of a nation", parent: "unit.n.03"},
	{id: "university.n.01", lemmas: []string{"university"}, gloss: "a large and diverse institution of higher learning", parent: "organization.n.01"},
	{id: "team.n.01", lemmas: []string{"team", "squad"}, gloss: "a cooperative unit of persons organized for work or sport", parent: "unit.n.03"},
	{id: "committee.n.01", lemmas: []string{"committee", "commission"}, gloss: "a special group delegated to consider some matter", parent: "organization.n.01"},
	{id: "church.n.01", lemmas: []string{"church", "christian church"}, gloss: "one of the groups of Christians who have their own beliefs and forms of worship", parent: "organization.n.01"},
	// food hyponyms
	{id: "bread.n.01", lemmas: []string{"bread", "breadstuff"}, gloss: "a food made from dough of flour or meal and usually raised with yeast", parent: "food.n.02"},
	{id: "cheese.n.01", lemmas: []string{"cheese"}, gloss: "a solid food prepared from the pressed curd of milk", parent: "food.n.02"},
	{id: "soup.n.01", lemmas: []string{"soup"}, gloss: "liquid food especially of meat or fish or vegetable stock", parent: "food.n.02"},
	{id: "salad.n.01", lemmas: []string{"salad"}, gloss: "food mixtures either arranged on a plate or tossed and served with a moist dressing", parent: "food.n.02"},
	{id: "dinner.n.01", lemmas: []string{"dinner"}, gloss: "the main meal of the day served in the evening or at midday", parent: "meal.n.01"},
	{id: "lunch.n.01", lemmas: []string{"lunch", "luncheon"}, gloss: "a midday meal", parent: "meal.n.01"},
	{id: "tea.n.01", lemmas: []string{"tea"}, gloss: "a beverage made by steeping tea leaves in water", parent: "beverage.n.01"},
	{id: "milk.n.01", lemmas: []string{"milk"}, gloss: "a white nutritious liquid secreted by mammals and used as food by human beings", parent: "beverage.n.01"},
	// animal / plant hyponyms
	{id: "dog.n.01", lemmas: []string{"dog", "domestic dog"}, gloss: "a domesticated carnivorous mammal that has been kept by humans since prehistoric times", parent: "animal.n.01"},
	{id: "cat.n.01", lemmas: []string{"cat", "true cat"}, gloss: "a feline mammal usually having thick soft fur", parent: "animal.n.01"},
	{id: "horse.n.01", lemmas: []string{"horse", "equus caballus"}, gloss: "a solid hoofed herbivorous quadruped domesticated since prehistoric times", parent: "animal.n.01"},
	{id: "eagle.n.01", lemmas: []string{"eagle", "bird of jove"}, gloss: "any of various large keen sighted diurnal birds of prey", parent: "bird.n.01"},
	{id: "sparrow.n.01", lemmas: []string{"sparrow", "true sparrow"}, gloss: "any of several small dull colored singing birds feeding on seeds", parent: "bird.n.01"},
	{id: "oak.n.01", lemmas: []string{"oak", "oak tree"}, gloss: "a deciduous tree of the genus Quercus bearing acorns", parent: "plant.n.01"},
	{id: "pine.n.01", lemmas: []string{"pine", "pine tree"}, gloss: "a coniferous tree of the genus Pinus with needlelike leaves", parent: "plant.n.01"},
	{id: "grass.n.01", lemmas: []string{"grass"}, gloss: "narrow leaved green herbage grown as lawns or used as pasture", parent: "plant.n.01"},
	{id: "leaf.n.01", lemmas: []string{"leaf", "foliage"}, gloss: "the main organ of photosynthesis in higher plants", parent: "plant_organ.n.01"},
	{id: "root.n.01", lemmas: []string{"root"}, gloss: "the usually underground organ that anchors and supports a plant", parent: "plant_organ.n.01"},
	{id: "seed.n.01", lemmas: []string{"seed"}, gloss: "a small hard fruit or ripened ovule of a plant", parent: "plant_organ.n.01"},
	// body / natural object hyponyms
	{id: "hand.n.01", lemmas: []string{"hand", "manus"}, gloss: "the prehensile extremity of the superior limb", parent: "body_part.n.01"},
	{id: "eye.n.01", lemmas: []string{"eye", "oculus"}, gloss: "the organ of sight", parent: "body_part.n.01"},
	{id: "heart.n.01", lemmas: []string{"heart", "pump", "ticker"}, gloss: "the hollow muscular organ that maintains the circulation of the blood", parent: "body_part.n.01"},
	{id: "moon.n.01", lemmas: []string{"moon"}, gloss: "the natural satellite of the earth", parent: "celestial_body.n.01"},
	{id: "planet.n.01", lemmas: []string{"planet"}, gloss: "a celestial body that revolves around the sun in its orbit", parent: "celestial_body.n.01"},
	{id: "comet.n.01", lemmas: []string{"comet"}, gloss: "a relatively small celestial body consisting of a frozen mass that travels around the sun", parent: "celestial_body.n.01"},
	// cognition hyponyms
	{id: "memory.n.01", lemmas: []string{"memory", "remembrance"}, gloss: "the cognitive process whereby past experience is remembered", parent: "cognition.n.01"},
	{id: "belief.n.01", lemmas: []string{"belief"}, gloss: "any cognitive content held as true", parent: "content.n.05"},
	{id: "idea.n.01", lemmas: []string{"idea", "thought"}, gloss: "the content of cognition; the main thing you are thinking about", parent: "content.n.05"},
	{id: "skill.n.01", lemmas: []string{"skill", "accomplishment"}, gloss: "an ability that has been acquired by training", parent: "ability.n.01"},
	// group / collection hyponyms
	{id: "crowd.n.01", lemmas: []string{"crowd"}, gloss: "a large number of things or people considered together", parent: "social_group.n.01"},
	{id: "audience.n.01", lemmas: []string{"audience"}, gloss: "a gathering of spectators or listeners at a public performance", parent: "social_group.n.01"},
	{id: "fleet.n.01", lemmas: []string{"fleet"}, gloss: "a group of ships or vehicles operating together under the same ownership", parent: "collection.n.01"},
	{id: "library.n.02", lemmas: []string{"library", "program library"}, gloss: "a collection of standard programs and subroutines for immediate use", parent: "collection.n.01"},
	{id: "archive.n.01", lemmas: []string{"archive"}, gloss: "a collection of records especially about an institution", parent: "collection.n.01"},
}
