package wordnet

// generalPolysemy holds the highly polysemous everyday words that drive the
// ambiguity-degree experiments. "head" is the network's polysemy maximum,
// mirroring its role in WordNet 2.1 (§3.3, Eq. 1).
var generalPolysemy = []syn{
	// ---- head: the Max(senses(SN)) anchor ----
	{id: "head.n.01", lemmas: []string{"head", "caput"}, gloss: "the upper part of the human body or the front part of the body in animals that contains the face and brains", parent: "body_part.n.01", freq: 80},
	{id: "head.n.02", lemmas: []string{"head", "chief", "top dog"}, gloss: "a person who is in charge of or leads an organization", parent: "leader.n.01", freq: 40},
	{id: "head.n.03", lemmas: []string{"head", "mind", "brain", "psyche", "nous"}, gloss: "that which is responsible for thought and feeling; the seat of the faculty of reason", parent: "cognition.n.01", freq: 30},
	{id: "head.n.04", lemmas: []string{"head"}, gloss: "the top or uppermost or forward part of anything", parent: "part.n.01", freq: 25},
	{id: "head.n.05", lemmas: []string{"head"}, gloss: "the foam or froth that accumulates at the top when you pour an effervescent liquid into a container", parent: "substance.n.01", freq: 5},
	{id: "head.n.06", lemmas: []string{"head", "fountainhead", "headspring"}, gloss: "the source of water from which a stream arises", parent: "location.n.01", freq: 5},
	{id: "head.n.07", lemmas: []string{"head", "headmaster", "school principal"}, gloss: "the educator who has executive authority for a school", parent: "leader.n.01", freq: 8},
	{id: "head.n.08", lemmas: []string{"head", "drumhead"}, gloss: "a membrane that is stretched taut over a drum", parent: "device.n.01", freq: 3},
	{id: "head.n.09", lemmas: []string{"head", "read-write head"}, gloss: "an electromagnet that reads and writes information on a magnetic medium", parent: "device.n.01", freq: 4},
	{id: "head.n.10", lemmas: []string{"head"}, gloss: "a toilet on a ship or boat", parent: "structure.n.01", freq: 3},
	{id: "head.n.11", lemmas: []string{"head", "capitulum"}, gloss: "a dense cluster of flowers or foliage such as a head of cabbage or lettuce", parent: "plant_organ.n.01", freq: 4},
	{id: "head.n.12", lemmas: []string{"head", "headline"}, gloss: "the heading or caption that appears at the top of a newspaper article", parent: "text.n.01", freq: 6},
	{id: "head.n.13", lemmas: []string{"head"}, gloss: "a projecting part that is the striking or working end of a tool or instrument", parent: "part.n.01", freq: 5},
	{id: "head.n.14", lemmas: []string{"head"}, gloss: "a single domestic animal counted as one of a larger number", parent: "animal.n.01", freq: 4},
	{id: "head.n.15", lemmas: []string{"head"}, gloss: "the obverse side of a coin that bears the representation of a person", parent: "part.n.01", freq: 3},
	{id: "head.n.16", lemmas: []string{"head"}, gloss: "the pressure exerted by a confined fluid as in a head of steam", parent: "property.n.01", freq: 3},
	{id: "head.n.17", lemmas: []string{"head"}, gloss: "a critical and decisive point such as matters coming to a head", parent: "state.n.02", freq: 4},
	{id: "head.n.18", lemmas: []string{"head", "head word"}, gloss: "the word in a grammatical constituent that plays the same grammatical role as the whole constituent", parent: "word.n.01", freq: 3},
	{id: "head.n.19", lemmas: []string{"head", "promontory", "headland", "foreland"}, gloss: "a natural elevation of land jutting out into the sea", parent: "geological_formation.n.01", freq: 4},
	{id: "head.n.20", lemmas: []string{"head"}, gloss: "the length or height of a head used as a unit of measurement as in winning by a head", parent: "unit_of_measurement.n.01", freq: 3},

	// ---- line ----
	{id: "line.n.01", lemmas: []string{"line"}, gloss: "a single row of written words or printed characters forming a unit of text", parent: "text.n.01", freq: 40},
	{id: "line.n.02", lemmas: []string{"line", "queue", "waiting line"}, gloss: "a formation of people or things standing or waiting one behind another", parent: "group.n.01", freq: 15},
	{id: "line.n.03", lemmas: []string{"line"}, gloss: "a mark that is long relative to its width drawn on a surface", parent: "symbol.n.01", freq: 15},
	{id: "line.n.04", lemmas: []string{"line", "phone line", "telephone line"}, gloss: "a telephone connection carrying signals between two points", parent: "instrumentality.n.01", freq: 10},
	{id: "line.n.05", lemmas: []string{"line", "product line", "line of products"}, gloss: "a particular kind of product or merchandise offered by a company", parent: "collection.n.01", freq: 8},
	{id: "line.n.06", lemmas: []string{"line"}, gloss: "something long and thin and flexible such as a rope or cord", parent: "artifact.n.01", freq: 8},
	{id: "line.n.07", lemmas: []string{"line", "railway line", "rail line"}, gloss: "the road consisting of railroad track and roadbed over which trains travel", parent: "way.n.01", freq: 7},
	{id: "line.n.08", lemmas: []string{"line", "actor's line", "words"}, gloss: "the words of a speech spoken by an actor in a scene of a play or film", parent: "statement.n.01", wholes: []string{"speech.n.04"}, freq: 20},
	{id: "line.n.09", lemmas: []string{"line", "lineage", "descent", "bloodline"}, gloss: "the descendants of one individual considered as a connected series", parent: "group.n.01", freq: 6},
	{id: "line.n.10", lemmas: []string{"line", "dividing line", "demarcation"}, gloss: "a conceptual separation or boundary between two places or things", parent: "location.n.01", freq: 6},

	// ---- state (state.n.02 condition lives in the upper ontology) ----
	{id: "state.n.01", lemmas: []string{"state", "province"}, gloss: "the territory occupied by one of the constituent administrative districts of a nation", parent: "administrative_district.n.01", freq: 50},
	{id: "state.n.03", lemmas: []string{"state", "nation", "country", "commonwealth", "land"}, gloss: "a politically organized body of people under a single government", parent: "organization.n.01", freq: 35},
	{id: "state.n.04", lemmas: []string{"state"}, gloss: "the group of people comprising the government of a sovereign nation", parent: "organization.n.01", freq: 15},
	{id: "state.n.05", lemmas: []string{"state", "state of matter"}, gloss: "the three traditional states of matter are solids and liquids and gases", parent: "property.n.01", freq: 8},
	{id: "state.n.06", lemmas: []string{"state"}, gloss: "a state of depression or agitation as in being in such a state", parent: "condition.n.01", freq: 6},
	{id: "state.n.07", lemmas: []string{"state", "department of state", "state department"}, gloss: "the federal department that sets and maintains foreign policies", parent: "organization.n.01", freq: 5},

	// ---- name ----
	{id: "name.n.02", lemmas: []string{"name", "reputation"}, gloss: "a person's reputation as in making a name for himself", parent: "attribute.n.01", freq: 12},
	{id: "name.n.03", lemmas: []string{"name", "epithet"}, gloss: "a defamatory or abusive word or phrase as in calling someone names", parent: "statement.n.01", freq: 4},
	{id: "first_name.n.01", lemmas: []string{"first name", "given name", "forename"}, gloss: "the name that precedes the surname and is used to identify a person within a family", parent: "name.n.01", freq: 15},
	{id: "last_name.n.01", lemmas: []string{"last name", "surname", "family name", "cognomen"}, gloss: "the name used to identify the members of a family as distinguished from each member's given name", parent: "name.n.01", freq: 15},

	// ---- year ----
	{id: "year.n.01", lemmas: []string{"year", "twelvemonth", "yr"}, gloss: "a period of time containing 365 or 366 days", parent: "time_period.n.01", freq: 60},
	{id: "year.n.02", lemmas: []string{"year", "school year", "academic year"}, gloss: "a period of time occupied by an academic calendar of teaching", parent: "time_period.n.01", freq: 10},
	{id: "year.n.03", lemmas: []string{"year", "class", "cohort"}, gloss: "a body of students who graduate together such as the year of 1990", parent: "social_group.n.01", freq: 6},

	// ---- number ----
	{id: "number.n.01", lemmas: []string{"number", "figure"}, gloss: "the property possessed by a sum or total or indefinite quantity of units or individuals", parent: "definite_quantity.n.01", freq: 40},
	{id: "number.n.02", lemmas: []string{"number", "phone number", "telephone number"}, gloss: "the number is used in calling a particular telephone", parent: "name.n.01", freq: 15},
	{id: "number.n.03", lemmas: []string{"number", "numeral"}, gloss: "a symbol used to represent a number", parent: "symbol.n.01", freq: 12},
	{id: "number.n.04", lemmas: []string{"number", "issue"}, gloss: "one of a series of periodical publications such as an issue of a magazine", parent: "publication.n.01", freq: 10},
	{id: "number.n.05", lemmas: []string{"number", "act", "routine", "turn", "bit"}, gloss: "a short theatrical performance that is part of a longer program", parent: "show.n.01", freq: 6},
	{id: "number.n.06", lemmas: []string{"number", "grammatical number"}, gloss: "the grammatical category for the forms of nouns and pronouns and verbs", parent: "category.n.01", freq: 4},

	// ---- part (part.n.01 generic is upper) ----
	{id: "part.n.02", lemmas: []string{"part", "piece"}, gloss: "a portion of a natural object as in parts of the river", parent: "natural_object.n.01", freq: 20},
	{id: "part.n.03", lemmas: []string{"part", "role", "theatrical role", "character", "persona"}, gloss: "an actor's portrayal of someone in a play or film", parent: "imaginary_being.n.01", freq: 25},
	{id: "part.n.04", lemmas: []string{"part", "share", "portion", "percentage"}, gloss: "assets belonging to or due to or contributed by an individual person or group", parent: "possession.n.01", freq: 12},
	{id: "part.n.05", lemmas: []string{"part", "voice"}, gloss: "the melody carried by a particular voice or instrument in polyphonic music", parent: "auditory_communication.n.01", freq: 6},
	{id: "part.n.06", lemmas: []string{"part", "region"}, gloss: "the extended spatial location of something as in the farming regions of France", parent: "region.n.01", freq: 10},

	// ---- character ----
	{id: "character.n.01", lemmas: []string{"character", "fictional character", "fictitious character"}, gloss: "an imaginary person represented in a work of fiction", parent: "imaginary_being.n.01", freq: 25},
	{id: "character.n.02", lemmas: []string{"character", "grapheme", "graphic symbol"}, gloss: "a written symbol that is used to represent speech", parent: "symbol.n.01", freq: 15},
	{id: "character.n.03", lemmas: []string{"character", "fiber", "fibre"}, gloss: "the inherent complex of attributes that determines a person's moral and ethical actions", parent: "trait.n.01", freq: 12},
	{id: "character.n.04", lemmas: []string{"character", "eccentric", "case", "type"}, gloss: "a person of a specified kind usually with many eccentricities", parent: "person.n.01", freq: 8},
	{id: "character.n.05", lemmas: []string{"character", "quality", "lineament"}, gloss: "a characteristic property that defines the apparent individual nature of something", parent: "property.n.01", freq: 6},

	// ---- light ----
	{id: "light.n.01", lemmas: []string{"light", "visible light", "visible radiation"}, gloss: "electromagnetic radiation that can produce a visual sensation", parent: "radiation.n.01", freq: 40},
	{id: "light.n.02", lemmas: []string{"light", "light source"}, gloss: "a device sold as a product serving as a source of illumination such as an electric lamp", parent: "device.n.01", freq: 20},
	{id: "light.n.03", lemmas: []string{"light", "illumination"}, gloss: "the degree of illumination received such as the amount of sunlight a plant requires", parent: "property.n.01", freq: 15},
	{id: "light.n.04", lemmas: []string{"light", "daylight", "sunlight"}, gloss: "the natural light of day provided by the sun", parent: "radiation.n.01", freq: 12},
	{id: "light.n.05", lemmas: []string{"light", "traffic light", "stoplight"}, gloss: "a visual signal to control the flow of traffic at intersections", parent: "device.n.01", freq: 6},
	{id: "light.n.06", lemmas: []string{"light", "perspective"}, gloss: "a particular perspective or aspect of a situation as in seeing things in a new light", parent: "cognition.n.01", freq: 6},
	{id: "light.n.07", lemmas: []string{"light", "flame", "fire"}, gloss: "a source used to ignite something such as a light for a cigarette", parent: "event.n.01", freq: 4},

	// ---- time ----
	{id: "time.n.01", lemmas: []string{"time"}, gloss: "the continuum of experience in which events pass from the future through the present to the past", parent: "measure.n.01", freq: 50},
	{id: "time.n.02", lemmas: []string{"time", "clip"}, gloss: "an instance or single occasion for some event as in this time he succeeded", parent: "event.n.01", freq: 20},
	{id: "time.n.03", lemmas: []string{"time"}, gloss: "an indefinite period usually marked by specific attributes or activities", parent: "time_period.n.01", freq: 15},
	{id: "time.n.04", lemmas: []string{"time", "prison term", "sentence"}, gloss: "the period of time a prisoner is imprisoned", parent: "time_period.n.01", freq: 5},
	{id: "time.n.05", lemmas: []string{"time", "clock time"}, gloss: "a reading of a point in time as given by a clock", parent: "value.n.01", freq: 10},

	// ---- run ----
	{id: "run.n.01", lemmas: []string{"run", "running"}, gloss: "the act of running or traveling on foot at a fast pace", parent: "activity.n.01", freq: 20},
	{id: "run.n.02", lemmas: []string{"run"}, gloss: "a score in baseball made by a runner touching all four bases safely", parent: "accomplishment.n.01", freq: 8},
	{id: "run.n.03", lemmas: []string{"run", "streak"}, gloss: "an unbroken series of events such as a run of bad luck", parent: "series.n.01", freq: 8},
	{id: "run.n.04", lemmas: []string{"run", "rivulet", "rill", "streamlet"}, gloss: "a small stream of water", parent: "location.n.01", freq: 4},
	{id: "run.n.05", lemmas: []string{"run"}, gloss: "the continuous period of time a theatrical production is performed", parent: "time_period.n.01", freq: 10},
	{id: "run.n.06", lemmas: []string{"run", "ladder", "ravel"}, gloss: "a row of unravelled stitches in a stocking", parent: "part.n.01", freq: 3},

	// ---- window ----
	{id: "window.n.01", lemmas: []string{"window"}, gloss: "a framework of wood or metal that contains a glass windowpane and is built into a wall to admit light or air", parent: "structure.n.01", freq: 30},
	{id: "window.n.02", lemmas: []string{"window"}, gloss: "a rectangular part of a computer screen that displays its own file or message", parent: "representation.n.01", freq: 10},
	{id: "window.n.03", lemmas: []string{"window", "time window"}, gloss: "a limited period of time during which an opportunity exists", parent: "time_period.n.01", freq: 6},
	{id: "window.n.04", lemmas: []string{"window"}, gloss: "an opening in a wall or screen through which business is transacted as at a ticket window", parent: "structure.n.01", freq: 5},

	// ---- rear ----
	{id: "rear.n.01", lemmas: []string{"rear", "back"}, gloss: "the side of an object that is opposite its front", parent: "part.n.01", freq: 15},
	{id: "rear.n.02", lemmas: []string{"rear", "backside", "behind"}, gloss: "the fleshy part of the human body that you sit on", parent: "body_part.n.01", freq: 5},
	{id: "rear.n.03", lemmas: []string{"rear"}, gloss: "the section of a military formation farthest from the fighting front", parent: "unit.n.03", freq: 4},

	// ---- first / last ----
	{id: "first.n.01", lemmas: []string{"first", "number one"}, gloss: "the first or highest rank in an ordering or series", parent: "position.n.02", freq: 20},
	{id: "first.n.02", lemmas: []string{"first", "first gear", "low gear"}, gloss: "the lowest forward gear ratio in the gear box of a motor vehicle", parent: "device.n.01", freq: 4},
	{id: "last.n.01", lemmas: []string{"last", "end", "final stage"}, gloss: "the concluding part of any performance or series", parent: "part.n.01", freq: 15},
	{id: "last.n.02", lemmas: []string{"last", "shoemaker's last", "cobbler's last"}, gloss: "a holding device shaped like a human foot that is used to fashion or repair shoes", parent: "device.n.01", freq: 3},

	// ---- group (group.n.01 generic is upper) ----
	{id: "group.n.02", lemmas: []string{"group", "musical group", "musical organization"}, gloss: "an organization of musicians who perform together", parent: "organization.n.01", freq: 12},
	{id: "group.n.03", lemmas: []string{"group", "radical", "chemical group"}, gloss: "a set of atoms that is part of a larger molecule and behaves as a unit", parent: "substance.n.01", freq: 4},

	// ---- direction ----
	{id: "direction.n.01", lemmas: []string{"direction", "way"}, gloss: "a line leading to a place or point as in the direction of the city", parent: "relation.n.01", freq: 20},
	{id: "direction.n.02", lemmas: []string{"direction", "guidance", "counsel"}, gloss: "something that provides guidance about how to proceed", parent: "message.n.02", freq: 10},
	{id: "direction.n.03", lemmas: []string{"direction", "management"}, gloss: "the act of managing or supervising something", parent: "activity.n.01", freq: 8},
	{id: "direction.n.04", lemmas: []string{"direction", "trend"}, gloss: "a general course along which something has a tendency to develop", parent: "cognition.n.01", freq: 6},
	{id: "stage_direction.n.01", lemmas: []string{"stage direction", "stagedir"}, gloss: "an instruction written as part of the script of a play telling the actors what to do", parent: "instruction.n.01", freq: 8},

	// ---- system / art / database (book-title and value vocabulary) ----
	{id: "system.n.01", lemmas: []string{"system"}, gloss: "a procedure or process for obtaining an objective; a complex method", parent: "cognition.n.01", freq: 20},
	{id: "system.n.02", lemmas: []string{"system"}, gloss: "instrumentality that combines interrelated interacting artifacts designed to work as a coherent entity", parent: "instrumentality.n.01", freq: 15},
	{id: "system.n.03", lemmas: []string{"system"}, gloss: "a group of physiologically or anatomically related organs or parts of the body", parent: "body_part.n.01", freq: 6},
	{id: "art.n.01", lemmas: []string{"art", "fine art"}, gloss: "the products of human creativity such as works of art collectively", parent: "creation.n.01", freq: 20},
	{id: "art.n.02", lemmas: []string{"art", "artistry", "prowess"}, gloss: "a superior skill that you can learn by study and practice", parent: "ability.n.01", freq: 10},
	{id: "art.n.03", lemmas: []string{"art", "artwork", "graphics"}, gloss: "photographs or other visual representations in a printed publication", parent: "representation.n.01", freq: 6},
	{id: "database.n.01", lemmas: []string{"database"}, gloss: "an organized body of related information stored in a computer", parent: "information.n.02", freq: 12},
}
