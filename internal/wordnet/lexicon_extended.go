package wordnet

// extendedVocabulary adds common polysemous English nouns beyond the test
// corpus vocabulary. They make the lexicon's sense distribution more
// WordNet-like (deliberately NOT used as corpus gold labels, so the
// calibrated experiments are unaffected) and give downstream users useful
// coverage for their own documents.
var extendedVocabulary = []syn{
	// ---- bank ----
	{id: "bank.n.01", lemmas: []string{"bank", "banking company"}, gloss: "a financial institution that accepts deposits and channels the money into lending", parent: "company.n.01", freq: 20},
	{id: "bank.n.02", lemmas: []string{"bank", "riverbank", "riverside"}, gloss: "sloping land beside a body of water", parent: "geological_formation.n.01", freq: 12},
	{id: "bank.n.03", lemmas: []string{"bank", "bank building"}, gloss: "a building in which the business of banking is transacted", parent: "building.n.01", freq: 8},
	{id: "bank.n.04", lemmas: []string{"bank"}, gloss: "an arrangement of similar objects in a row or in tiers such as a bank of switches", parent: "collection.n.01", freq: 5},
	{id: "bank.n.05", lemmas: []string{"bank"}, gloss: "a supply or stock held in reserve for future use such as a blood bank", parent: "collection.n.01", freq: 5},

	// ---- spring ----
	{id: "spring.n.01", lemmas: []string{"spring", "springtime"}, gloss: "the season of growth between winter and summer", parent: "season.n.01", freq: 15},
	{id: "spring.n.02", lemmas: []string{"spring"}, gloss: "a metal elastic device that returns to its shape when stretched or compressed", parent: "device.n.01", freq: 8},
	{id: "spring.n.03", lemmas: []string{"spring", "fountain", "natural spring"}, gloss: "a natural flow of ground water emerging from the earth", parent: "geological_formation.n.01", freq: 7},
	{id: "spring.n.04", lemmas: []string{"spring", "leap", "bound"}, gloss: "a light self propelled jumping movement upwards or forwards", parent: "act.n.02", freq: 5},
	{id: "spring.n.05", lemmas: []string{"spring", "springiness"}, gloss: "the elasticity of something that can be stretched and returns to its original length", parent: "property.n.01", freq: 4},

	// ---- note ----
	{id: "note.n.01", lemmas: []string{"note", "short letter", "billet"}, gloss: "a short personal written message", parent: "document.n.01", freq: 12},
	{id: "note.n.02", lemmas: []string{"note", "musical note", "tone"}, gloss: "a notation representing the pitch and duration of a musical sound", parent: "symbol.n.01", freq: 10},
	{id: "note.n.03", lemmas: []string{"note", "annotation", "notation"}, gloss: "a comment or instruction usually added to a text", parent: "statement.n.01", freq: 8},
	{id: "note.n.04", lemmas: []string{"note", "bank note", "banknote", "bill"}, gloss: "a piece of paper money issued by a bank", parent: "currency.n.01", freq: 6},
	{id: "note.n.05", lemmas: []string{"note", "promissory note", "note of hand"}, gloss: "a promise to pay a specified amount on demand or at a certain time", parent: "document.n.01", freq: 4},

	// ---- key ----
	{id: "key.n.01", lemmas: []string{"key"}, gloss: "a metal device shaped to open or close a specific lock", parent: "device.n.01", freq: 15},
	{id: "key.n.02", lemmas: []string{"key", "tonality"}, gloss: "any of 24 major or minor diatonic scales that provide the tonal framework of music", parent: "category.n.01", freq: 6},
	{id: "key.n.03", lemmas: []string{"key"}, gloss: "something crucial for explaining a problem as in the key to the mystery", parent: "cognition.n.01", freq: 8},
	{id: "key.n.04", lemmas: []string{"key"}, gloss: "a lever that actuates a mechanism when depressed such as a piano or keyboard key", parent: "device.n.01", freq: 6},
	{id: "key.n.05", lemmas: []string{"key", "cay", "florida key"}, gloss: "a coral reef off the southern coast of Florida", parent: "geological_formation.n.01", freq: 3},
	{id: "key.n.06", lemmas: []string{"key", "answer key"}, gloss: "a list of answers or solutions to questions or problems", parent: "list.n.01", freq: 4},

	// ---- bar ----
	{id: "bar.n.01", lemmas: []string{"bar", "barroom", "saloon", "taproom"}, gloss: "a room or establishment where alcoholic drinks are served over a counter", parent: "building.n.01", freq: 12},
	{id: "bar.n.02", lemmas: []string{"bar"}, gloss: "a rigid piece of metal or wood usually used as a fastening or obstruction or weapon", parent: "device.n.01", freq: 10},
	{id: "bar.n.03", lemmas: []string{"bar", "measure"}, gloss: "musical notation for a repeating pattern of musical beats", parent: "symbol.n.01", freq: 5},
	{id: "bar.n.04", lemmas: []string{"bar", "legal profession", "legal community"}, gloss: "the body of individuals qualified to practice law", parent: "social_group.n.01", freq: 5},
	{id: "bar.n.05", lemmas: []string{"bar"}, gloss: "a counter where you can obtain food or drink", parent: "structure.n.01", freq: 6},
	{id: "bar.n.06", lemmas: []string{"bar"}, gloss: "a unit of pressure equal to a million dynes per square centimeter", parent: "unit_of_measurement.n.01", freq: 3},

	// ---- board ----
	{id: "board.n.01", lemmas: []string{"board", "plank"}, gloss: "a stout length of sawn timber", parent: "artifact.n.01", freq: 10},
	{id: "board.n.02", lemmas: []string{"board", "board of directors", "directorate"}, gloss: "a committee having supervisory powers over an organization", parent: "committee.n.01", freq: 8},
	{id: "board.n.03", lemmas: []string{"board", "gameboard"}, gloss: "a flat portable surface on which games are played", parent: "device.n.01", freq: 5},
	{id: "board.n.04", lemmas: []string{"board", "circuit board", "card"}, gloss: "a printed circuit that can be inserted into expansion slots in a computer", parent: "device.n.01", freq: 5},

	// ---- post ----
	{id: "post.n.01", lemmas: []string{"post", "stake"}, gloss: "an upright consisting of a piece of timber fixed firmly in the ground", parent: "structure.n.01", freq: 8},
	{id: "post.n.02", lemmas: []string{"post", "position", "berth", "office"}, gloss: "a job in an organization such as a diplomatic post", parent: "position.n.02", freq: 8},
	{id: "post.n.03", lemmas: []string{"post", "mail", "mail service"}, gloss: "the system whereby messages and parcels are transported and delivered", parent: "system.n.02", freq: 6},
	{id: "post.n.04", lemmas: []string{"post", "military post"}, gloss: "a military installation at which a body of troops is stationed", parent: "structure.n.01", freq: 4},

	// ---- match ----
	{id: "match.n.01", lemmas: []string{"match", "lucifer", "friction match"}, gloss: "a thin piece of wood tipped with material that ignites when rubbed", parent: "device.n.01", freq: 8},
	{id: "match.n.02", lemmas: []string{"match", "sports match"}, gloss: "a formal contest in which two or more persons or teams compete", parent: "contest.n.01", freq: 10},
	{id: "match.n.03", lemmas: []string{"match", "mate", "counterpart"}, gloss: "an exact duplicate or a person or thing that resembles another closely", parent: "relation.n.01", freq: 6},
	{id: "match.n.04", lemmas: []string{"match", "couple", "pairing"}, gloss: "a pair of people who live together or are engaged to be married", parent: "social_group.n.01", freq: 4},

	// ---- case ----
	{id: "case.n.01", lemmas: []string{"case", "instance", "example"}, gloss: "an occurrence of something such as a case of the disease", parent: "event.n.01", freq: 15},
	{id: "case.n.02", lemmas: []string{"case", "legal case", "lawsuit", "suit"}, gloss: "a legal action brought to a court of law for judgment", parent: "proceedings.n.02", freq: 10},
	{id: "case.n.03", lemmas: []string{"case", "casing"}, gloss: "a protective container designed to hold or cover something", parent: "container.n.01", freq: 8},
	{id: "case.n.04", lemmas: []string{"case", "grammatical case"}, gloss: "the grammatical category marking the function of a noun in a sentence", parent: "category.n.01", freq: 3},

	// ---- court ----
	{id: "court.n.01", lemmas: []string{"court", "tribunal", "judicature"}, gloss: "an assembly of judges that deliberates on legal cases", parent: "organization.n.01", freq: 10},
	{id: "court.n.02", lemmas: []string{"court", "courtroom"}, gloss: "a room in which a law court sits", parent: "building.n.01", freq: 6},
	{id: "court.n.03", lemmas: []string{"court", "tennis court", "playing court"}, gloss: "a specially marked horizontal area within which a game is played", parent: "area.n.01", freq: 6},
	{id: "court.n.04", lemmas: []string{"court", "royal court"}, gloss: "the sovereign and his advisers who are the governing power of a state", parent: "organization.n.01", freq: 4},

	// ---- field ----
	{id: "field.n.01", lemmas: []string{"field"}, gloss: "a piece of land cleared of trees and usually enclosed for cultivation or pasture", parent: "region.n.01", freq: 12},
	{id: "field.n.02", lemmas: []string{"field", "field of study", "discipline", "subject area"}, gloss: "a branch of knowledge studied or taught", parent: "cognition.n.01", freq: 10},
	{id: "field.n.03", lemmas: []string{"field", "playing field", "athletic field"}, gloss: "a piece of land prepared for playing a game", parent: "area.n.01", freq: 6},
	{id: "field.n.04", lemmas: []string{"field", "battlefield", "field of battle"}, gloss: "a region where a battle is being or has been fought", parent: "region.n.01", freq: 4},
	{id: "field.n.05", lemmas: []string{"field", "data field"}, gloss: "a region of a record or database reserved for a particular item of information", parent: "part.n.01", freq: 4},

	// ---- file ----
	{id: "file.n.01", lemmas: []string{"file", "data file", "computer file"}, gloss: "a set of related records stored together in a computer", parent: "collection.n.01", freq: 12},
	{id: "file.n.02", lemmas: []string{"file", "file cabinet", "filing cabinet"}, gloss: "office furniture consisting of a container for keeping papers in order", parent: "furniture.n.01", freq: 5},
	{id: "file.n.03", lemmas: []string{"file", "single file", "indian file"}, gloss: "a line of persons or things ranged one behind the other", parent: "group.n.01", freq: 4},
	{id: "file.n.04", lemmas: []string{"file"}, gloss: "a steel hand tool with small sharp teeth for smoothing wood or metal", parent: "device.n.01", freq: 4},

	// ---- party ----
	{id: "party.n.01", lemmas: []string{"party"}, gloss: "a social gathering of invited guests for pleasure", parent: "social_event.n.01", freq: 12},
	{id: "party.n.02", lemmas: []string{"party", "political party"}, gloss: "an organization to gain political power", parent: "organization.n.01", freq: 10},
	{id: "party.n.03", lemmas: []string{"party"}, gloss: "a band of people associated temporarily in some activity such as a search party", parent: "social_group.n.01", freq: 6},
	{id: "party.n.04", lemmas: []string{"party"}, gloss: "a person involved in legal proceedings such as the injured party", parent: "person.n.01", freq: 5},

	// ---- press ----
	{id: "press.n.01", lemmas: []string{"press", "public press"}, gloss: "the print media responsible for gathering and publishing news", parent: "organization.n.01", freq: 8},
	{id: "press.n.02", lemmas: []string{"press", "printing press"}, gloss: "a machine used for printing", parent: "machine.n.01", freq: 5},
	{id: "press.n.03", lemmas: []string{"press", "pressing", "pressure"}, gloss: "the act of pressing or the exertion of force", parent: "act.n.02", freq: 4},
	{id: "press.n.04", lemmas: []string{"press", "wardrobe"}, gloss: "a tall piece of furniture that provides storage space for clothes", parent: "furniture.n.01", freq: 3},

	// ---- wave ----
	{id: "wave.n.01", lemmas: []string{"wave", "moving ridge"}, gloss: "one of a series of ridges that moves across the surface of a liquid", parent: "phenomenon.n.01", freq: 10},
	{id: "wave.n.02", lemmas: []string{"wave"}, gloss: "a movement like that of a sudden occurrence or increase as in a wave of emigration", parent: "event.n.01", freq: 6},
	{id: "wave.n.03", lemmas: []string{"wave", "wafture", "wave of the hand"}, gloss: "the act of signaling by a movement of the hand", parent: "act.n.02", freq: 4},

	// ---- branch ----
	{id: "branch.n.01", lemmas: []string{"branch", "tree branch", "limb"}, gloss: "a division of a stem arising from the trunk of a tree", parent: "plant_organ.n.01", freq: 10},
	{id: "branch.n.02", lemmas: []string{"branch", "subdivision", "arm"}, gloss: "a division of some larger or more complex organization", parent: "unit.n.03", freq: 8},
	{id: "branch.n.03", lemmas: []string{"branch", "leg", "ramification"}, gloss: "a part of a forked or branching shape", parent: "part.n.01", freq: 4},

	// ---- crane / mouse / web : device-animal ambiguity ----
	{id: "crane.n.01", lemmas: []string{"crane"}, gloss: "a large long necked wading bird of marshes and plains", parent: "bird.n.01", freq: 5},
	{id: "crane.n.02", lemmas: []string{"crane"}, gloss: "a lifting machine for moving heavy objects by suspending them from a projecting arm", parent: "machine.n.01", freq: 6},
	{id: "mouse.n.01", lemmas: []string{"mouse"}, gloss: "any of numerous small rodents with pointed snouts and long slender tails", parent: "animal.n.01", freq: 8},
	{id: "mouse.n.02", lemmas: []string{"mouse", "computer mouse"}, gloss: "a hand operated electronic device that controls a cursor on a computer display", parent: "device.n.01", freq: 8},
	{id: "web.n.01", lemmas: []string{"web", "spider web"}, gloss: "a structure of fine threads constructed by a spider", parent: "natural_object.n.01", freq: 6},
	{id: "web.n.02", lemmas: []string{"web", "world wide web", "www"}, gloss: "the worldwide network of interlinked hypertext documents", parent: "system.n.02", freq: 10},
	{id: "web.n.03", lemmas: []string{"web", "entanglement"}, gloss: "an intricate network suggesting something that was formed by weaving", parent: "structure.n.01", freq: 4},

	// ---- seal / bat / pupil : classic WSD pairs ----
	{id: "seal.n.01", lemmas: []string{"seal"}, gloss: "any of numerous marine mammals that come on shore to breed", parent: "animal.n.01", freq: 6},
	{id: "seal.n.02", lemmas: []string{"seal", "stamp"}, gloss: "a device incised to make an impression that certifies a document", parent: "device.n.01", freq: 5},
	{id: "seal.n.03", lemmas: []string{"seal", "sealskin"}, gloss: "a fastener that provides a tight and perfect closure", parent: "device.n.01", freq: 4},
	{id: "bat.n.01", lemmas: []string{"bat", "chiropteran"}, gloss: "a nocturnal flying mammal with membranous wings", parent: "animal.n.01", freq: 6},
	{id: "bat.n.02", lemmas: []string{"bat"}, gloss: "a club used for hitting a ball in various games", parent: "equipment.n.01", freq: 6},
	{id: "pupil.n.01", lemmas: []string{"pupil", "schoolchild", "school-age child"}, gloss: "a young person attending school", parent: "person.n.01", freq: 6},
	{id: "pupil.n.02", lemmas: []string{"pupil"}, gloss: "the contractile aperture in the center of the iris of the eye", parent: "body_part.n.01", freq: 5},

	// ---- organ / cell / mass ----
	{id: "organ.n.01", lemmas: []string{"organ"}, gloss: "a fully differentiated structural and functional unit in an animal", parent: "body_part.n.01", freq: 8},
	{id: "organ.n.02", lemmas: []string{"organ", "pipe organ"}, gloss: "a large musical keyboard instrument with pipes sounded by compressed air", parent: "instrument.n.01", freq: 5},
	{id: "organ.n.03", lemmas: []string{"organ", "house organ", "newspaper"}, gloss: "a periodical that is published by a special interest group", parent: "periodical.n.01", freq: 3},
	{id: "cell.n.01", lemmas: []string{"cell"}, gloss: "the basic structural and functional unit of all organisms", parent: "natural_object.n.01", freq: 10},
	{id: "cell.n.02", lemmas: []string{"cell", "jail cell", "prison cell"}, gloss: "a room where a prisoner is kept", parent: "structure.n.01", freq: 5},
	{id: "cell.n.03", lemmas: []string{"cell", "cellphone", "mobile phone"}, gloss: "a hand held mobile radiotelephone for use in an area divided into small sections", parent: "device.n.01", freq: 6},
	{id: "cell.n.04", lemmas: []string{"cell", "electric cell", "battery cell"}, gloss: "a device that delivers an electric current as the result of a chemical reaction", parent: "device.n.01", freq: 4},
	{id: "mass.n.01", lemmas: []string{"mass"}, gloss: "the property of a body that causes it to have weight in a gravitational field", parent: "property.n.01", freq: 8},
	{id: "mass.n.02", lemmas: []string{"mass", "religious mass"}, gloss: "a sequence of prayers constituting the Christian eucharistic rite", parent: "ceremony.n.01", freq: 5},
	{id: "mass.n.03", lemmas: []string{"mass", "the great unwashed", "multitude"}, gloss: "the common people generally considered as a group", parent: "social_group.n.01", freq: 4},

	// ---- chair / cabinet / table : furniture-institution ambiguity ----
	{id: "chair.n.01", lemmas: []string{"chair"}, gloss: "a seat for one person with a support for the back", parent: "furniture.n.01", freq: 10},
	{id: "chair.n.02", lemmas: []string{"chair", "chairperson", "chairman of the board"}, gloss: "the officer who presides at the meetings of an organization", parent: "leader.n.01", freq: 6},
	{id: "chair.n.03", lemmas: []string{"chair", "professorship"}, gloss: "the position of professor at a university", parent: "position.n.02", freq: 4},
	{id: "cabinet.n.01", lemmas: []string{"cabinet"}, gloss: "a piece of furniture resembling a cupboard with shelves", parent: "furniture.n.01", freq: 6},
	{id: "cabinet.n.02", lemmas: []string{"cabinet"}, gloss: "a committee of senior ministers responsible for advising the head of government", parent: "committee.n.01", freq: 5},
	{id: "table.n.01", lemmas: []string{"table"}, gloss: "a piece of furniture having a smooth flat top supported by legs", parent: "furniture.n.01", freq: 12},
	{id: "table.n.02", lemmas: []string{"table", "tabular array"}, gloss: "a set of data arranged in rows and columns", parent: "representation.n.01", freq: 8},
	{id: "table.n.03", lemmas: []string{"table"}, gloss: "a company of people assembled at a table for a meal or game", parent: "social_group.n.01", freq: 3},

	// ---- letter / sentence / period : writing ambiguity ----
	{id: "letter.n.01", lemmas: []string{"letter", "missive"}, gloss: "a written message addressed to a person or organization", parent: "document.n.01", freq: 10},
	{id: "letter.n.02", lemmas: []string{"letter", "letter of the alphabet", "alphabetic character"}, gloss: "a written symbol representing a speech sound", parent: "character.n.02", freq: 8},
	{id: "sentence.n.01", lemmas: []string{"sentence"}, gloss: "a string of words satisfying the grammatical rules of a language", parent: "language_unit.n.01", freq: 8},
	{id: "sentence.n.02", lemmas: []string{"sentence", "conviction", "judgment of conviction"}, gloss: "a final judgment of guilty in a criminal case and the punishment imposed", parent: "act.n.02", freq: 5},
	{id: "period.n.02", lemmas: []string{"period", "full stop", "full point"}, gloss: "a punctuation mark placed at the end of a declarative sentence", parent: "symbol.n.01", freq: 5},
	{id: "period.n.03", lemmas: []string{"period", "geological period"}, gloss: "a unit of geological time during which a system of rocks formed", parent: "time_period.n.01", freq: 4},

	// ---- operation / interest / capital ----
	{id: "operation.n.01", lemmas: []string{"operation", "surgery", "surgical operation"}, gloss: "a medical procedure involving an incision with instruments", parent: "act.n.02", freq: 8},
	{id: "operation.n.02", lemmas: []string{"operation", "functioning", "performance"}, gloss: "the process of working or operating as in the operation of a machine", parent: "activity.n.01", freq: 6},
	{id: "operation.n.03", lemmas: []string{"operation", "military operation"}, gloss: "activity by a military force as in a rescue operation", parent: "activity.n.01", freq: 5},
	{id: "operation.n.04", lemmas: []string{"operation", "mathematical operation"}, gloss: "a calculation by mathematical methods", parent: "cognition.n.01", freq: 4},
	{id: "interest.n.01", lemmas: []string{"interest", "involvement"}, gloss: "a sense of concern with and curiosity about someone or something", parent: "cognition.n.01", freq: 10},
	{id: "interest.n.02", lemmas: []string{"interest"}, gloss: "a fixed charge for borrowing money usually a percentage of the amount borrowed", parent: "cost.n.01", freq: 8},
	{id: "interest.n.03", lemmas: []string{"interest", "stake"}, gloss: "a right or legal share of something such as a financial involvement", parent: "asset.n.01", freq: 5},
	{id: "interest.n.04", lemmas: []string{"interest", "pastime", "pursuit"}, gloss: "a diversion that occupies one's time and thoughts", parent: "activity.n.01", freq: 5},
	{id: "capital.n.01", lemmas: []string{"capital"}, gloss: "assets available for use in the production of further assets", parent: "asset.n.01", freq: 8},
	{id: "capital.n.02", lemmas: []string{"capital", "capital city"}, gloss: "a seat of government of a country or region", parent: "city.n.01", freq: 8},
	{id: "capital.n.03", lemmas: []string{"capital", "capital letter", "majuscule"}, gloss: "one of the large alphabetic characters used as the first letter", parent: "character.n.02", freq: 4},

	// ---- pipe / drill / saw ----
	{id: "pipe.n.01", lemmas: []string{"pipe", "pipage", "piping"}, gloss: "a long tube made of metal or plastic used to carry water or oil or gas", parent: "instrumentality.n.01", freq: 8},
	{id: "pipe.n.02", lemmas: []string{"pipe", "tobacco pipe"}, gloss: "a tube with a small bowl at one end used for smoking tobacco", parent: "device.n.01", freq: 5},
	{id: "pipe.n.03", lemmas: []string{"pipe", "organ pipe"}, gloss: "the flues and stops on a pipe organ", parent: "part.n.01", freq: 3},
	{id: "drill.n.01", lemmas: []string{"drill"}, gloss: "a tool with a sharp rotating point for making holes in hard materials", parent: "device.n.01", freq: 6},
	{id: "drill.n.02", lemmas: []string{"drill", "exercise", "practice session"}, gloss: "systematic training by multiple repetitions", parent: "training.n.01", freq: 5},
	{id: "saw.n.01", lemmas: []string{"saw"}, gloss: "hand tool having a toothed blade for cutting", parent: "device.n.01", freq: 5},
	{id: "saw.n.02", lemmas: []string{"saw", "proverb", "adage", "byword"}, gloss: "a condensed but memorable saying embodying some important fact", parent: "statement.n.01", freq: 3},
}
