package wordnet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/semnet"
)

func TestDefaultBuildsAndIsShared(t *testing.T) {
	a := Default()
	b := Default()
	if a != b {
		t.Error("Default should return a shared instance")
	}
	if a.Len() < 500 {
		t.Errorf("embedded lexicon has %d concepts, expected several hundred", a.Len())
	}
}

func TestHeadIsPolysemyAnchor(t *testing.T) {
	n := Default()
	if got := n.PolysemyOf("head"); got != 20 {
		t.Errorf("polysemy(head) = %d, want 20", got)
	}
	if n.MaxPolysemy() != 20 {
		t.Errorf("MaxPolysemy = %d: some word outranks the designed anchor", n.MaxPolysemy())
	}
}

func TestPaperVocabularyCovered(t *testing.T) {
	n := Default()
	// Every tag of the Figure 1 documents must be resolvable.
	words := []string{"film", "picture", "director", "year", "genre", "cast",
		"star", "plot", "movie", "name", "actor", "first name", "last name",
		"kelly", "stewart", "hitchcock", "title", "mystery",
		// dataset tags
		"play", "act", "scene", "speech", "speaker", "line", "persona",
		"prologue", "epilogue", "stagedir", "product", "item", "brand",
		"price", "review", "rating", "customer", "stock", "shipping",
		"proceedings", "article", "author", "volume", "number", "conference",
		"page", "book", "publisher", "bib", "catalog", "cd", "artist",
		"country", "company", "food", "menu", "calories", "description",
		"plant", "botanical", "zone", "light", "availability", "personnel",
		"person", "family", "given", "email", "address", "street", "city",
		"state", "zip", "club", "member", "age", "hobby", "president"}
	for _, w := range words {
		if !n.HasLemma(w) {
			t.Errorf("lemma %q missing from embedded lexicon", w)
		}
	}
}

func TestPolysemousWordsHaveMultipleSenses(t *testing.T) {
	n := Default()
	wantAtLeast := map[string]int{
		"line": 10, "play": 8, "state": 7, "star": 6, "cast": 5,
		"picture": 5, "title": 6, "family": 6, "club": 5, "company": 6,
		"stock": 6, "light": 7,
	}
	for w, min := range wantAtLeast {
		if got := n.PolysemyOf(w); got < min {
			t.Errorf("polysemy(%q) = %d, want >= %d", w, got, min)
		}
	}
}

func TestSingleHierarchyRoot(t *testing.T) {
	n := Default()
	roots := 0
	for _, id := range n.Concepts() {
		if len(n.Hypernyms(id)) == 0 {
			roots++
			if id != "entity.n.01" {
				t.Errorf("unexpected hierarchy root %s", id)
			}
		}
	}
	if roots != 1 {
		t.Errorf("%d roots, want 1 (entity)", roots)
	}
}

func TestEveryConceptHasGloss(t *testing.T) {
	n := Default()
	for _, id := range n.Concepts() {
		c := n.Concept(id)
		if strings.TrimSpace(c.Gloss) == "" {
			t.Errorf("%s has no gloss", id)
		}
		if len(c.Lemmas) == 0 {
			t.Errorf("%s has no lemmas", id)
		}
		if c.Freq <= 0 {
			t.Errorf("%s has non-positive frequency", id)
		}
	}
}

func TestDominantSensesOrderedFirst(t *testing.T) {
	n := Default()
	// The first sense of these lemmas must be the intended dominant one.
	want := map[string]semnet.ConceptID{
		"movie": "picture.n.02",
		"cast":  "cast.n.01",
		"book":  "book.n.01",
		"price": "price.n.01",
		"head":  "head.n.01",
	}
	for lemma, first := range want {
		if got := n.Senses(lemma)[0]; got != first {
			t.Errorf("Senses(%q)[0] = %s, want %s", lemma, got, first)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := DefaultGenerateConfig(11)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Len() != cfg.Concepts {
		t.Fatalf("sizes: %d, %d, want %d", a.Len(), b.Len(), cfg.Concepts)
	}
	for i, id := range a.Concepts() {
		if b.Concepts()[i] != id {
			t.Fatal("concept order differs between runs")
		}
		if a.Concept(id).Gloss != b.Concept(id).Gloss {
			t.Fatal("glosses differ between runs")
		}
	}
	if a.MaxDepth() < 3 {
		t.Errorf("generated hierarchy too flat: depth %d", a.MaxDepth())
	}
	if a.MaxPolysemy() < 2 {
		t.Error("generated network has no polysemy")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenerateConfig{Concepts: 1, Lemmas: 5}); err == nil {
		t.Error("expected error for too few concepts")
	}
	if _, err := Generate(GenerateConfig{Concepts: 5, Lemmas: 1}); err == nil {
		t.Error("expected error for too few lemmas")
	}
}

func TestGenerateScales(t *testing.T) {
	n, err := Generate(GenerateConfig{Seed: 3, Concepts: 5000, Lemmas: 900, MaxBranch: 8, PartEvery: 11})
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 5000 {
		t.Errorf("Len = %d", n.Len())
	}
	// IC must be finite everywhere.
	for _, id := range n.Concepts()[:100] {
		if v := n.IC(id); v < 0 {
			t.Errorf("IC(%s) = %f", id, v)
		}
	}
}

// TestEmbeddedLexiconCodecRoundTrip saves the full embedded lexicon through
// the semnet interchange format and verifies the reloaded network preserves
// every derived quantity the algorithms depend on.
func TestEmbeddedLexiconCodecRoundTrip(t *testing.T) {
	orig := Default()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := semnet.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len %d vs %d", loaded.Len(), orig.Len())
	}
	if loaded.MaxPolysemy() != orig.MaxPolysemy() || loaded.MaxDepth() != orig.MaxDepth() {
		t.Errorf("derived maxima differ: polysemy %d/%d depth %d/%d",
			loaded.MaxPolysemy(), orig.MaxPolysemy(), loaded.MaxDepth(), orig.MaxDepth())
	}
	for _, id := range orig.Concepts()[:200] {
		if loaded.Depth(id) != orig.Depth(id) {
			t.Fatalf("depth(%s) differs", id)
		}
		if got, want := loaded.IC(id), orig.IC(id); got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("IC(%s) %f vs %f", id, got, want)
		}
	}
	for _, lemma := range []string{"star", "cast", "head", "first name"} {
		a, b := orig.Senses(lemma), loaded.Senses(lemma)
		if len(a) != len(b) {
			t.Fatalf("senses(%s) %d vs %d", lemma, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("senses(%s)[%d] %s vs %s", lemma, i, a[i], b[i])
			}
		}
	}
}

// TestEmbeddedAndGeneratedNetworksValidate runs the structural integrity
// checker over the embedded lexicon and a synthetic network.
func TestEmbeddedAndGeneratedNetworksValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("embedded lexicon invalid: %v", err)
	}
	g, err := Generate(DefaultGenerateConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("generated network invalid: %v", err)
	}
}
