package wordnet

import (
	"fmt"
	"math/rand"

	"repro/internal/semnet"
)

// GenerateConfig parameterizes the synthetic semantic-network generator used
// by scale and property-based tests.
type GenerateConfig struct {
	// Seed drives the deterministic pseudo-random construction.
	Seed int64
	// Concepts is the total number of synsets (>= 2).
	Concepts int
	// Lemmas is the size of the word vocabulary; polysemy arises because
	// Concepts > Lemmas assigns several concepts to some words.
	Lemmas int
	// MaxBranch bounds how far back a concept may pick its hypernym,
	// controlling the tree shape (larger = bushier and shallower).
	MaxBranch int
	// PartEvery adds one PART-OF edge for every n-th concept (0 disables).
	PartEvery int
}

// DefaultGenerateConfig returns a medium-sized network comparable to the
// embedded lexicon.
func DefaultGenerateConfig(seed int64) GenerateConfig {
	return GenerateConfig{Seed: seed, Concepts: 500, Lemmas: 180, MaxBranch: 6, PartEvery: 7}
}

// Generate builds a deterministic synthetic semantic network: a hypernym
// tree with Zipf-like frequencies (general concepts more frequent),
// synthetic glosses assembled from the lemma vocabulary (so gloss overlap is
// meaningful), and optional PART-OF edges. Identical configs produce
// identical networks.
func Generate(cfg GenerateConfig) (*semnet.Network, error) {
	if cfg.Concepts < 2 {
		return nil, fmt.Errorf("wordnet: Generate needs >= 2 concepts, got %d", cfg.Concepts)
	}
	if cfg.Lemmas < 2 {
		return nil, fmt.Errorf("wordnet: Generate needs >= 2 lemmas, got %d", cfg.Lemmas)
	}
	if cfg.MaxBranch < 1 {
		cfg.MaxBranch = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	vocab := make([]string, cfg.Lemmas)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}

	b := semnet.NewBuilder()
	ids := make([]semnet.ConceptID, cfg.Concepts)
	parents := make([]int, cfg.Concepts)
	depthOf := make([]int, cfg.Concepts)
	for i := 0; i < cfg.Concepts; i++ {
		ids[i] = semnet.ConceptID(fmt.Sprintf("c%04d.n.01", i))
		// 1-3 lemmas drawn from the shared vocabulary create polysemy.
		nl := 1 + rng.Intn(3)
		lemmas := make([]string, 0, nl)
		seen := map[string]bool{}
		for len(lemmas) < nl {
			w := vocab[rng.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				lemmas = append(lemmas, w)
			}
		}
		// Synthetic gloss of 5-12 vocabulary words, so glosses of related
		// concepts share phrases and the overlap measure is non-trivial.
		gl := 5 + rng.Intn(8)
		gloss := ""
		for g := 0; g < gl; g++ {
			if g > 0 {
				gloss += " "
			}
			gloss += vocab[rng.Intn(len(vocab))]
		}
		parents[i] = -1
		depth := 1
		if i > 0 {
			// Parent chosen among recent earlier concepts so the hierarchy
			// deepens steadily.
			lo := i - cfg.MaxBranch*4
			if lo < 0 {
				lo = 0
			}
			parents[i] = lo + rng.Intn(i-lo)
			depth = depthOf[parents[i]] + 1
		}
		depthOf[i] = depth
		// Zipf-ish frequency decaying with depth.
		b.AddConcept(ids[i], gloss, 200/float64(depth), lemmas...)
	}
	for i, p := range parents {
		if p >= 0 {
			b.IsA(ids[i], ids[p])
		}
	}
	if cfg.PartEvery > 0 {
		for i := cfg.PartEvery; i < cfg.Concepts; i += cfg.PartEvery {
			b.PartOf(ids[i], ids[i-cfg.PartEvery/2-1])
		}
	}
	return b.Build()
}
