// Package wordnet provides the reference semantic network instances used by
// the reproduction.
//
// The paper uses WordNet 2.1, which is not redistributable inside this
// offline module, so the package embeds a hand-curated mini-WordNet of
// several hundred noun synsets covering the complete tag and value
// vocabulary of the ten test datasets (Table 3), plus the polysemous common
// words ("head", "line", "play", "state", "star", "cast", ...) that drive
// the ambiguity experiments. The hierarchy, lemma sets, glosses, and
// IS-A/PART-OF links follow WordNet's conventions; concept frequencies are
// synthetic Brown-corpus-style counts decreasing with sense rank, which is
// what the Lin information-content measure needs (see DESIGN.md,
// "Substitutions").
//
// For scale and property-based testing, Generate builds seeded synthetic
// networks of arbitrary size with the same structural properties.
package wordnet

import (
	"sync"

	"repro/internal/semnet"
)

// syn is one embedded synset definition. parent is the hypernym concept id
// ("" for hierarchy roots); wholes lists holonym targets (this concept is
// PART-OF each of them).
type syn struct {
	id     string
	lemmas []string
	gloss  string
	parent string
	wholes []string
	freq   float64
}

// defaultFreq is the synthetic corpus count for synsets without an explicit
// frequency. Dominant senses get explicit larger counts.
const defaultFreq = 10

var (
	defaultOnce sync.Once
	defaultNet  *semnet.Network
)

// Default returns the embedded mini-WordNet. The network is built once and
// shared; it is immutable and safe for concurrent use.
func Default() *semnet.Network {
	defaultOnce.Do(func() {
		defaultNet = build(allSynsets())
	})
	return defaultNet
}

func allSynsets() []syn {
	var all []syn
	all = append(all, upperOntology...)
	all = append(all, generalPolysemy...)
	all = append(all, mediaDomain...)
	all = append(all, commerceDomain...)
	all = append(all, peopleDomain...)
	all = append(all, fillerSynsets...)
	all = append(all, extendedVocabulary...)
	all = append(all, worldVocabulary...)
	all = append(all, commonVocabulary...)
	all = append(all, geoVocabulary...)
	all = append(all, natureVocabulary...)
	return all
}

func build(defs []syn) *semnet.Network {
	b := semnet.NewBuilder()
	for _, s := range defs {
		f := s.freq
		if f == 0 {
			f = defaultFreq
		}
		b.AddConcept(semnet.ConceptID(s.id), s.gloss, f, s.lemmas...)
	}
	for _, s := range defs {
		if s.parent != "" {
			b.IsA(semnet.ConceptID(s.id), semnet.ConceptID(s.parent))
		}
		for _, w := range s.wholes {
			b.PartOf(semnet.ConceptID(s.id), semnet.ConceptID(w))
		}
	}
	return b.MustBuild()
}
