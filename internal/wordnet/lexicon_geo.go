package wordnet

// geoVocabulary adds countries, cities, and landmarks — the proper-noun
// layer address-like values need when users run XSDF on their own
// documents (the corpus keeps its own geographic values gold-free so the
// calibrated experiments are untouched).
var geoVocabulary = []syn{
	// countries (instances of the nation sense of country)
	{id: "france.n.01", lemmas: []string{"france", "french republic"}, gloss: "a republic in western europe famous for its art and cuisine", parent: "country.n.01", freq: 8},
	{id: "germany.n.01", lemmas: []string{"germany", "federal republic of germany"}, gloss: "a republic in central europe", parent: "country.n.01", freq: 8},
	{id: "italy.n.01", lemmas: []string{"italy", "italian republic"}, gloss: "a republic in southern europe on the italian peninsula", parent: "country.n.01", freq: 7},
	{id: "spain.n.01", lemmas: []string{"spain", "kingdom of spain"}, gloss: "a parliamentary monarchy in southwestern europe", parent: "country.n.01", freq: 6},
	{id: "england.n.01", lemmas: []string{"england"}, gloss: "a division of the united kingdom on the island of great britain", parent: "country.n.01", freq: 8},
	{id: "uk.n.01", lemmas: []string{"uk", "united kingdom", "britain", "great britain"}, gloss: "a monarchy in northwestern europe comprising england scotland wales and northern ireland", parent: "country.n.01", freq: 8},
	{id: "usa.n.01", lemmas: []string{"usa", "united states", "united states of america", "america"}, gloss: "a north american republic of fifty states", parent: "country.n.01", freq: 10},
	{id: "japan.n.01", lemmas: []string{"japan"}, gloss: "a constitutional monarchy occupying an archipelago off east asia", parent: "country.n.01", freq: 7},
	{id: "china.n.01", lemmas: []string{"china", "people's republic of china"}, gloss: "a communist nation covering a vast territory in east asia", parent: "country.n.01", freq: 7},
	{id: "china.n.02", lemmas: []string{"china", "chinaware"}, gloss: "high quality porcelain dishware originally made in china", parent: "container.n.01", freq: 4},
	{id: "india.n.01", lemmas: []string{"india", "republic of india"}, gloss: "a republic in south asia second most populous country in the world", parent: "country.n.01", freq: 7},
	{id: "canada.n.01", lemmas: []string{"canada"}, gloss: "a nation in northern north america the second largest country in the world", parent: "country.n.01", freq: 6},
	{id: "australia.n.01", lemmas: []string{"australia", "commonwealth of australia"}, gloss: "a nation occupying the whole of the australian continent", parent: "country.n.01", freq: 6},
	{id: "egypt.n.01", lemmas: []string{"egypt", "arab republic of egypt"}, gloss: "a republic in northeastern africa known for ancient monuments", parent: "country.n.01", freq: 5},
	{id: "greece.n.01", lemmas: []string{"greece", "hellenic republic"}, gloss: "a republic in southeastern europe regarded as the birthplace of western democracy", parent: "country.n.01", freq: 5},
	{id: "monaco.n.01", lemmas: []string{"monaco", "principality of monaco"}, gloss: "a tiny principality on the mediterranean coast famous for its casino", parent: "country.n.01", freq: 4},
	{id: "scotland.n.01", lemmas: []string{"scotland"}, gloss: "a division of the united kingdom occupying the northern part of great britain", parent: "country.n.01", freq: 5},

	// cities (instances of the urban sense of city)
	{id: "paris.n.01", lemmas: []string{"paris", "city of light"}, gloss: "the capital and largest city of france", parent: "city.n.01", freq: 7},
	{id: "paris.n.02", lemmas: []string{"paris"}, gloss: "the trojan prince whose abduction of helen led to the trojan war", parent: "person.n.01", freq: 3},
	{id: "london.n.01", lemmas: []string{"london", "greater london"}, gloss: "the capital and largest city of england and the united kingdom", parent: "city.n.01", freq: 8},
	{id: "london.n.02", lemmas: []string{"london", "jack london"}, gloss: "united states writer of adventure novels", parent: "writer.n.01", freq: 3},
	{id: "rome.n.01", lemmas: []string{"rome", "eternal city"}, gloss: "the capital and largest city of italy once the seat of the roman empire", parent: "city.n.01", freq: 6},
	{id: "berlin.n.01", lemmas: []string{"berlin"}, gloss: "the capital and largest city of germany", parent: "city.n.01", freq: 6},
	{id: "berlin.n.02", lemmas: []string{"berlin", "irving berlin"}, gloss: "united states songwriter of popular standards", parent: "musician.n.01", freq: 3},
	{id: "madrid.n.01", lemmas: []string{"madrid"}, gloss: "the capital and largest city of spain centrally located", parent: "city.n.01", freq: 5},
	{id: "tokyo.n.01", lemmas: []string{"tokyo", "edo"}, gloss: "the capital and largest city of japan", parent: "city.n.01", freq: 6},
	{id: "newyork.n.01", lemmas: []string{"new york", "new york city", "big apple"}, gloss: "the largest city of the united states a center of finance and culture", parent: "city.n.01", freq: 8},
	{id: "newyork.n.02", lemmas: []string{"new york", "new york state", "empire state"}, gloss: "a mid atlantic state of the united states", parent: "state.n.01", freq: 5},
	{id: "hollywood.n.01", lemmas: []string{"hollywood"}, gloss: "a district of los angeles regarded as the center of the american film industry", parent: "city.n.01", freq: 5},
	{id: "hollywood.n.02", lemmas: []string{"hollywood"}, gloss: "the american film industry considered collectively", parent: "organization.n.01", freq: 4},
	{id: "madison.n.01", lemmas: []string{"madison"}, gloss: "the capital city of the state of wisconsin", parent: "city.n.01", freq: 4},
	{id: "madison.n.02", lemmas: []string{"madison", "james madison"}, gloss: "fourth president of the united states", parent: "president.n.01", freq: 3},
	{id: "wisconsin.n.01", lemmas: []string{"wisconsin", "badger state"}, gloss: "a midwestern state of the united states", parent: "state.n.01", freq: 4},

	// landmarks and physical geography
	{id: "thames.n.01", lemmas: []string{"thames", "river thames"}, gloss: "the river flowing through southern england past london", parent: "river.n.01", freq: 3},
	{id: "seine.n.01", lemmas: []string{"seine"}, gloss: "the river flowing through paris into the english channel", parent: "river.n.01", freq: 3},
	{id: "seine.n.02", lemmas: []string{"seine", "seine net"}, gloss: "a large fishing net that hangs vertically in the water", parent: "device.n.01", freq: 2},
	{id: "nile.n.01", lemmas: []string{"nile", "nile river"}, gloss: "the longest river of the world flowing through egypt", parent: "river.n.01", freq: 4},
	{id: "everest.n.01", lemmas: []string{"everest", "mount everest"}, gloss: "the highest mountain peak in the world located in the himalayas", parent: "mountain.n.01", freq: 4},
	{id: "alps.n.01", lemmas: []string{"alps", "the alps"}, gloss: "a large mountain system in south central europe", parent: "mountain.n.01", freq: 4},
	{id: "atlantic.n.01", lemmas: []string{"atlantic", "atlantic ocean"}, gloss: "the second largest ocean separating europe and africa from the americas", parent: "ocean.n.01", freq: 5},
	{id: "pacific.n.01", lemmas: []string{"pacific", "pacific ocean"}, gloss: "the largest ocean in the world", parent: "ocean.n.01", freq: 5},
	{id: "sahara.n.01", lemmas: []string{"sahara", "sahara desert"}, gloss: "the world's largest hot desert covering much of northern africa", parent: "desert.n.01", freq: 3},
	{id: "amazonriver.n.01", lemmas: []string{"amazon river"}, gloss: "the south american river carrying more water than any other river", parent: "river.n.01", freq: 3},
}
