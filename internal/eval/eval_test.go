package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScore(t *testing.T) {
	p := Score(8, 10, 16)
	if math.Abs(p.Precision-0.8) > 1e-12 {
		t.Errorf("precision = %f", p.Precision)
	}
	if math.Abs(p.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %f", p.Recall)
	}
	wantF := 2 * 0.8 * 0.5 / 1.3
	if math.Abs(p.F-wantF) > 1e-12 {
		t.Errorf("f = %f, want %f", p.F, wantF)
	}
}

func TestScoreDegenerate(t *testing.T) {
	z := Score(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F != 0 {
		t.Errorf("zero counts: %+v", z)
	}
	if p := Score(0, 5, 5); p.F != 0 {
		t.Errorf("no correct answers: F = %f", p.F)
	}
	if p := Score(5, 5, 5); p.F != 1 {
		t.Errorf("perfect: F = %f", p.F)
	}
}

func TestCombineMicroAverages(t *testing.T) {
	a := Score(3, 4, 5)
	b := Score(1, 2, 5)
	c := Combine(a, b)
	if c.Correct != 4 || c.Assigned != 6 || c.Total != 10 {
		t.Errorf("combined counts: %+v", c)
	}
	if math.Abs(c.Precision-4.0/6) > 1e-12 {
		t.Errorf("combined precision = %f", c.Precision)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson(x, x) = %f", got)
	}
	y := []float64{4, 3, 2, 1}
	if got := Pearson(x, y); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson(x, -x) = %f", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("length mismatch should yield 0")
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Error("single point should yield 0")
	}
	if Pearson([]float64{2, 2, 2}, []float64{1, 5, 9}) != 0 {
		t.Error("zero variance should yield 0")
	}
}

func TestPearsonLinearInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			x = append(x, v)
		}
		if len(x) < 3 {
			return true
		}
		// y = 2x + 3 correlates perfectly.
		y := make([]float64, len(x))
		vary := false
		for i, v := range x {
			y[i] = 2*v + 3
			if v != x[0] {
				vary = true
			}
		}
		r := Pearson(x, y)
		if !vary {
			return r == 0
		}
		return math.Abs(r-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPearsonRange(t *testing.T) {
	f := func(xr, yr []float64) bool {
		n := len(xr)
		if len(yr) < n {
			n = len(yr)
		}
		if n < 2 {
			return true
		}
		x, y := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i] = sane(xr[i]), sane(yr[i])
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sane(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %f", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %f, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestFIsHarmonicMean(t *testing.T) {
	f := func(c, a, tot uint8) bool {
		correct := int(c) % 50
		assigned := correct + int(a)%50
		total := assigned + int(tot)%50
		if total == 0 {
			return true
		}
		p := Score(correct, assigned, total)
		if p.Precision < p.F-1e-12 && p.Recall < p.F-1e-12 {
			return false // F must lie between P and R
		}
		return p.F >= 0 && p.F <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
