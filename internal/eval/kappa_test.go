package eval

import (
	"math"
	"testing"
)

func TestFleissKappaPerfectAgreement(t *testing.T) {
	// Three annotators, two items, different categories per item: perfect
	// within-item agreement, both categories used.
	ratings := [][]int{
		{3, 0},
		{0, 3},
	}
	k, ok := FleissKappa(ratings)
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(k-1) > 1e-12 {
		t.Errorf("kappa = %f, want 1", k)
	}
}

func TestFleissKappaWikipediaExample(t *testing.T) {
	// The classic worked example (Fleiss 1971 via Wikipedia): 10 items, 14
	// annotators, 5 categories; kappa ≈ 0.210.
	ratings := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	k, ok := FleissKappa(ratings)
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(k-0.210) > 0.001 {
		t.Errorf("kappa = %.4f, want 0.210", k)
	}
}

func TestFleissKappaChanceLevel(t *testing.T) {
	// Split votes on every item hover near chance.
	ratings := [][]int{
		{2, 2},
		{2, 2},
		{2, 2},
	}
	k, ok := FleissKappa(ratings)
	if !ok {
		t.Fatal("not ok")
	}
	if k > 0 {
		t.Errorf("kappa = %f, want <= 0 for uniform splits", k)
	}
}

func TestFleissKappaDegenerate(t *testing.T) {
	if _, ok := FleissKappa(nil); ok {
		t.Error("empty input should fail")
	}
	if _, ok := FleissKappa([][]int{{3, 0}}); ok {
		t.Error("single item should fail")
	}
	if _, ok := FleissKappa([][]int{{1, 0}, {0, 1}}); ok {
		t.Error("single annotator should fail")
	}
	if _, ok := FleissKappa([][]int{{3, 0}, {2, 0}}); ok {
		t.Error("inconsistent row sums should fail")
	}
	if _, ok := FleissKappa([][]int{{3, 0}, {3, 0}}); ok {
		t.Error("single-category use should be undefined")
	}
	if _, ok := FleissKappa([][]int{{3, -1}, {1, 1}}); ok {
		t.Error("negative counts should fail")
	}
}
