// Package eval implements the evaluation metrics of §4: precision, recall,
// and f-value for sense assignments (§4.3) and Pearson's correlation
// coefficient for ambiguity ratings (§4.2).
package eval

import "math"

// PRF holds precision, recall, and the balanced f-value.
type PRF struct {
	Precision float64
	Recall    float64
	F         float64
	// Correct, Assigned, and Total are the underlying counts.
	Correct  int
	Assigned int
	Total    int
}

// Score computes PRF from counts: correct answers among assigned senses
// (precision), among all expected answers (recall), and their harmonic
// mean.
func Score(correct, assigned, total int) PRF {
	p := PRF{Correct: correct, Assigned: assigned, Total: total}
	if assigned > 0 {
		p.Precision = float64(correct) / float64(assigned)
	}
	if total > 0 {
		p.Recall = float64(correct) / float64(total)
	}
	if p.Precision+p.Recall > 0 {
		p.F = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// Combine micro-averages several PRF results by summing their counts.
func Combine(results ...PRF) PRF {
	var c, a, t int
	for _, r := range results {
		c += r.Correct
		a += r.Assigned
		t += r.Total
	}
	return Score(c, a, t)
}

// Pearson returns the Pearson correlation coefficient between x and y,
// in [-1, 1]. Mismatched lengths, fewer than two points, or zero variance
// yield 0 (uncorrelated), mirroring the paper's handling.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(n))
}
