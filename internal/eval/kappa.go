package eval

// FleissKappa measures inter-annotator agreement for categorical ratings:
// ratings[i][c] is the number of annotators who assigned category c to item
// i; every row must sum to the same number of annotators n >= 2. Returns
// kappa in [-1, 1] (1 = perfect agreement, 0 = chance-level) and ok=false
// for degenerate input (fewer than 2 items/annotators, inconsistent rows,
// or chance agreement of 1, where kappa is undefined).
//
// The paper reports five human annotators (§4.2); the gold package's
// simulated panel is validated against this statistic.
func FleissKappa(ratings [][]int) (kappa float64, ok bool) {
	nItems := len(ratings)
	if nItems < 2 {
		return 0, false
	}
	nCats := len(ratings[0])
	if nCats < 1 {
		return 0, false
	}
	nAnnotators := 0
	for _, r := range ratings[0] {
		nAnnotators += r
	}
	if nAnnotators < 2 {
		return 0, false
	}

	// Per-item agreement P_i and per-category proportions p_c.
	pc := make([]float64, nCats)
	var pBarSum float64
	for _, row := range ratings {
		if len(row) != nCats {
			return 0, false
		}
		sum := 0
		var agree float64
		for c, r := range row {
			if r < 0 {
				return 0, false
			}
			sum += r
			agree += float64(r * (r - 1))
			pc[c] += float64(r)
		}
		if sum != nAnnotators {
			return 0, false
		}
		pBarSum += agree / float64(nAnnotators*(nAnnotators-1))
	}
	pBar := pBarSum / float64(nItems)

	var pe float64
	total := float64(nItems * nAnnotators)
	for _, v := range pc {
		p := v / total
		pe += p * p
	}
	if pe >= 1 {
		// All annotators used a single category everywhere: agreement is
		// trivially perfect but kappa is undefined.
		return 0, false
	}
	return (pBar - pe) / (1 - pe), true
}
