package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// ---- shared value vocabularies (word -> intended lexicon sense) ----

var verseWords = []wg{
	{"light", "light.n.01"}, {"star", "star.n.01"}, {"sun", "sun.n.01"},
	{"rose", "rose.n.01"}, {"flower", "flower.n.01"}, {"head", "head.n.01"},
	{"time", "time.n.01"}, {"heart", ""}, {"sweet", ""}, {"night", ""},
	{"fair", ""}, {"crown", ""}, {"morn", ""}, {"gentle", ""},
}

var personNames = []wg{
	{"Ferdinand", ""}, {"Miranda", ""}, {"Orlando", ""}, {"Rosalind", ""},
	{"Sebastian", ""}, {"Viola", ""}, {"Antonio", ""}, {"Beatrice", ""},
}

var bookTitleWords = []wg{
	{"database", "database.n.01"}, {"system", "system.n.02"},
	{"art", "art.n.02"}, {"plan", "plan.n.01"}, {"theory", ""},
	{"design", ""}, {"query", ""}, {"index", ""},
}

var plotWords = []wg{
	{"photographer", "photographer.n.01"}, {"neighbor", "neighbor.n.01"},
	{"spy", "spy.n.01"}, {"wheelchair", "wheelchair.n.01"},
	{"window", "window.n.01"}, {"mystery", "mystery.n.02"},
	{"murder", ""}, {"suspense", ""},
}

var productWords = []wg{
	{"light", "light.n.02"}, {"club", "club.n.04"}, {"record", "record.n.02"},
	{"cream", "cream.n.03"}, {"cd", "cd.n.01"}, {"book", "book.n.02"},
	{"weight", "weight.n.02"}, {"shade", "shade.n.02"}, {"zip", "zip.n.03"},
	{"deluxe", ""}, {"portable", ""}, {"classic", ""},
}

var dishWords = []wg{
	{"waffle", "waffle.n.01"}, {"toast", "toast.n.01"}, {"berry", "berry.n.01"},
	{"cream", "cream.n.01"}, {"egg", "egg.n.01"}, {"bacon", "bacon.n.01"},
	{"sausage", "sausage.n.01"}, {"syrup", "syrup.n.01"},
	{"honey", "honey.n.01"}, {"coffee", "coffee.n.01"}, {"juice", "juice.n.01"},
	{"fresh", ""}, {"homemade", ""},
}

var plantWords = []wg{
	{"rose", "rose.n.01"}, {"lily", "lily.n.01"}, {"daisy", "daisy.n.01"},
	{"violet", "violet.n.01"}, {"fern", "fern.n.01"}, {"annual", "annual.n.02"},
	{"perennial", "perennial.n.01"}, {"shrub", "shrub.n.01"},
}

var hobbyWords = []wg{
	{"chess", "chess.n.01"}, {"tennis", "tennis.n.01"},
	{"swimming", "swimming.n.01"}, {"reading", "reading.n.01"},
	{"gardening", "gardening.n.01"}, {"photography", "photography.n.01"},
	{"music", "music.n.01"}, {"cinema", "picture.n.02"},
}

var cdArtists = []wg{
	{"dylan", "dylan.n.01"}, {"madonna", "madonna.n.02"},
	{"queen", "queen.n.05"}, {"orchestra", ""}, {"trio", ""},
}

var cdTitleWords = []wg{
	{"rock", "rock.n.02"}, {"country", "country.n.04"}, {"rose", "rose.n.01"},
	{"light", "light.n.01"}, {"night", ""}, {"gold", ""}, {"greatest", ""},
}

// ---- Dataset 1: Shakespeare collection (Group 1: high ambiguity, rich structure) ----

// genShakespeare emulates shakespeare.dtd: PLAY with TITLE, PERSONAE, and a
// few ACTs of SCENEs of SPEECHes. Tags are highly polysemous ("play", "act",
// "scene", "line", "title", "speech") and the tree is deep and dense.
func genShakespeare(rng *rand.Rand) *xmltree.Node {
	play := el("PLAY", "play.n.01")
	play.AddChild(titleEl(rng))
	personae := el("PERSONAE", "persona.n.01")
	personae.AddChild(titleEl(rng))
	for i := 0; i < 4+rng.Intn(3); i++ {
		p := pick(rng, personNames)
		personae.AddChild(el("PERSONA", "persona.n.01", tok(p.word, p.gold)))
	}
	play.AddChild(personae)
	play.AddChild(el("PROLOGUE", "prologue.n.01", speechEl(rng)))
	nActs := 2 + rng.Intn(2)
	for a := 0; a < nActs; a++ {
		act := el("ACT", "act.n.01")
		act.AddChild(titleEl(rng))
		for s := 0; s < 2; s++ {
			scene := el("SCENE", "scene.n.01")
			scene.AddChild(titleEl(rng))
			for sp := 0; sp < 2+rng.Intn(2); sp++ {
				scene.AddChild(speechEl(rng))
			}
			w := pick(rng, verseWords)
			scene.AddChild(el("STAGEDIR", "stage_direction.n.01", tok("enter", ""), tok(w.word, w.gold)))
			act.AddChild(scene)
		}
		play.AddChild(act)
	}
	play.AddChild(el("EPILOGUE", "epilogue.n.01", speechEl(rng)))
	return play
}

func titleEl(rng *rand.Rand) *xmltree.Node {
	n := el("TITLE", "title.n.01")
	for _, t := range toks(rng, verseWords, 1+rng.Intn(2)) {
		n.AddChild(t)
	}
	return n
}

func speechEl(rng *rand.Rand) *xmltree.Node {
	sp := el("SPEECH", "speech.n.04")
	p := pick(rng, personNames)
	sp.AddChild(el("SPEAKER", "speaker.n.01", tok(p.word, p.gold)))
	for l := 0; l < 2+rng.Intn(2); l++ {
		line := el("LINE", "line.n.08")
		for _, t := range toks(rng, verseWords, 2+rng.Intn(2)) {
			line.AddChild(t)
		}
		sp.AddChild(line)
	}
	return sp
}

// ---- Dataset 2: Amazon product files (Group 2: high ambiguity, poor structure) ----

// genAmazon emulates amazon_product.dtd the way real Amazon exports look:
// compound camel-case tags ("ProductName", "ListPrice", "ItemWeight") that
// require tag tokenization (Table 4), nested under thin repetitive chains
// so fan-out and density stay low while label polysemy is high. Baselines
// without compound handling (RPD) cannot even look these labels up.
func genAmazon(rng *rand.Rand) *xmltree.Node {
	root := el("products", "product.n.02")
	nProducts := 4 + rng.Intn(3)
	for p := 0; p < nProducts; p++ {
		prod := el("product", "product.n.02")

		item := el("item", "item.n.02")
		// "BrandName" joins to "brand name", a single concept in the
		// lexicon: the compound-as-one-token path of Â§3.2.
		brand := el("BrandName", "brand.n.01")
		brand.AddChild(tok(fmt.Sprintf("acme%d", rng.Intn(20)), ""))
		item.AddChild(brand)
		// "ProductName" has no single-concept match: both tokens carry a
		// sense pair (Eqs. 10/12).
		pname := el("ProductName", "product.n.02+name.n.01")
		for _, t := range toks(rng, productWords, 1+rng.Intn(2)) {
			pname.AddChild(t)
		}
		item.AddChild(pname)
		det := el("detail", "detail.n.01")
		desc := el("description", "description.n.01")
		for _, t := range toks(rng, productWords, 2+rng.Intn(2)) {
			desc.AddChild(t)
		}
		det.AddChild(desc)
		item.AddChild(det)
		prod.AddChild(item)

		review := el("CustomerReview", "customer.n.01+review.n.01")
		rating := el("rating", "rating.n.01")
		rating.AddChild(numTok(rng, 1, 5))
		review.AddChild(rating)
		review.AddChild(el("customer", "customer.n.01", tok(pick(rng, personNames).word, "")))
		prod.AddChild(review)

		stock := el("stock", "stock.n.01")
		cond := el("condition", "condition.n.01")
		cond.AddChild(tok("new", ""))
		stock.AddChild(cond)
		prod.AddChild(stock)
		ship := el("shipping", "shipping.n.01")
		weight := el("ItemWeight", "item.n.02+weight.n.01")
		weight.AddChild(numTok(rng, 1, 40))
		ship.AddChild(weight)
		prod.AddChild(ship)

		price := el("ListPrice", "list.n.01+price.n.01", at("currency", "currency.n.01", tok("usd", "")))
		price.AddChild(numTok(rng, 5, 500))
		prod.AddChild(price)

		if rng.Intn(2) == 0 {
			feat := el("feature", "feature.n.01")
			w := pick(rng, productWords)
			feat.AddChild(tok(w.word, w.gold))
			prod.AddChild(feat)
		}
		root.AddChild(prod)
	}
	return root
}

// ---- Dataset 3: SIGMOD Record (Group 3: low ambiguity, rich structure) ----

func genSigmod(rng *rand.Rand) *xmltree.Node {
	root := el("proceedings", "proceedings.n.01")
	head := el("title", "title.n.01")
	head.AddChild(tok("sigmod", ""))
	head.AddChild(tok("record", "record.n.01"))
	root.AddChild(head)
	vol := el("volume", "volume.n.01")
	vol.AddChild(numTok(rng, 10, 40))
	root.AddChild(vol)
	num := el("number", "number.n.04")
	num.AddChild(numTok(rng, 1, 4))
	root.AddChild(num)
	conf := el("conference", "conference.n.01", tok("sigmod", ""))
	root.AddChild(conf)
	for a := 0; a < 3+rng.Intn(2); a++ {
		art := el("article", "article.n.01")
		t := el("title", "title.n.01")
		for _, tk := range toks(rng, bookTitleWords, 2) {
			t.AddChild(tk)
		}
		art.AddChild(t)
		ip := el("initPage", "page.n.01")
		ip.AddChild(numTok(rng, 1, 80))
		art.AddChild(ip)
		ep := el("endPage", "last.n.01+page.n.01")
		ep.AddChild(numTok(rng, 81, 160))
		art.AddChild(ep)
		authors := el("authors", "author.n.01")
		for i := 0; i < 1+rng.Intn(2); i++ {
			w := []wg{{"knuth", "knuth.n.01"}, {"ullman", "ullman.n.01"}, {"gray", ""}, {"codd", ""}}[rng.Intn(4)]
			authors.AddChild(el("author", "author.n.01", tok(w.word, w.gold)))
		}
		art.AddChild(authors)
		root.AddChild(art)
	}
	return root
}

// ---- Dataset 4: IMDB movies (Group 3) ----

func genMovies(rng *rand.Rand) *xmltree.Node {
	root := el("movies", "picture.n.02")
	movie := el("movie", "picture.n.02", at("year", "year.n.01", numTok(rng, 1930, 1990)))
	title := el("title", "title.n.01")
	title.AddChild(tok("rear", "rear.n.01"))
	title.AddChild(tok("window", "window.n.01"))
	movie.AddChild(title)
	movie.AddChild(el("director", "director.n.01", tok("hitchcock", "hitchcock.n.01")))
	movie.AddChild(el("genre", "genre.n.01", tok("mystery", "mystery.n.01")))
	cast := el("cast", "cast.n.01")
	stars := []wg{{"kelly", "kelly.n.01"}, {"stewart", "stewart.n.01"}}
	for _, s := range stars {
		cast.AddChild(el("star", "star.n.02", tok(s.word, s.gold)))
	}
	movie.AddChild(cast)
	plot := el("plot", "plot.n.03")
	for _, t := range toks(rng, plotWords, 2+rng.Intn(2)) {
		plot.AddChild(t)
	}
	movie.AddChild(plot)
	root.AddChild(movie)
	return root
}

// ---- Dataset 5: Niagara bib (Group 3) ----

func genBib(rng *rand.Rand) *xmltree.Node {
	root := el("bib", "bibliography.n.01")
	for b := 0; b < 2+rng.Intn(2); b++ {
		book := el("book", "book.n.01", at("year", "year.n.01", numTok(rng, 1970, 2005)))
		t := el("title", "title.n.01")
		for _, tk := range toks(rng, bookTitleWords, 2) {
			t.AddChild(tk)
		}
		book.AddChild(t)
		for i := 0; i < 1+rng.Intn(2); i++ {
			w := []wg{{"knuth", "knuth.n.01"}, {"ullman", "ullman.n.01"}, {"date", ""}}[rng.Intn(3)]
			book.AddChild(el("author", "author.n.01", tok(w.word, w.gold)))
		}
		book.AddChild(el("publisher", "publisher.n.01", tok("addison", ""), tok("wesley", "")))
		price := el("price", "price.n.01")
		price.AddChild(numTok(rng, 20, 120))
		book.AddChild(price)
		root.AddChild(book)
	}
	return root
}

// ---- Dataset 6: W3Schools cd_catalog (Group 4: low ambiguity, poor structure) ----

func genCDCatalog(rng *rand.Rand) *xmltree.Node {
	root := el("catalog", "catalog.n.01")
	for c := 0; c < 2; c++ {
		cd := el("cd", "cd.n.01")
		t := el("title", "title.n.01")
		for _, tk := range toks(rng, cdTitleWords, 1+rng.Intn(2)) {
			t.AddChild(tk)
		}
		cd.AddChild(t)
		a := pick(rng, cdArtists)
		cd.AddChild(el("artist", "artist.n.02", tok(a.word, a.gold)))
		cd.AddChild(el("country", "country.n.01", tok("uk", "")))
		cd.AddChild(el("company", "company.n.01", tok("emi", "")))
		price := el("price", "price.n.01")
		price.AddChild(numTok(rng, 8, 20))
		cd.AddChild(price)
		year := el("year", "year.n.01")
		year.AddChild(numTok(rng, 1970, 2000))
		cd.AddChild(year)
		root.AddChild(cd)
	}
	return root
}

// ---- Dataset 7: W3Schools food_menu (Group 4) ----

func genFoodMenu(rng *rand.Rand) *xmltree.Node {
	root := el("breakfast_menu", "breakfast.n.01+menu.n.01")
	for f := 0; f < 3; f++ {
		food := el("food", "food.n.01")
		name := el("name", "name.n.01")
		for _, tk := range toks(rng, dishWords, 1+rng.Intn(2)) {
			name.AddChild(tk)
		}
		food.AddChild(name)
		price := el("price", "price.n.01")
		price.AddChild(numTok(rng, 4, 12))
		food.AddChild(price)
		desc := el("description", "description.n.01")
		for _, tk := range toks(rng, dishWords, 2) {
			desc.AddChild(tk)
		}
		food.AddChild(desc)
		cal := el("calories", "calorie.n.01")
		cal.AddChild(numTok(rng, 200, 900))
		food.AddChild(cal)
		root.AddChild(food)
	}
	return root
}

// ---- Dataset 8: W3Schools plant_catalog (Group 4) ----

func genPlantCatalog(rng *rand.Rand) *xmltree.Node {
	root := el("catalog", "catalog.n.01")
	for p := 0; p < 2; p++ {
		plant := el("plant", "plant.n.01")
		w := pick(rng, plantWords)
		plant.AddChild(el("common", "common_name.n.01", tok(w.word, w.gold)))
		plant.AddChild(el("botanical", "botanical.n.01", tok("rosa", ""), tok("rugosa", "")))
		zone := el("zone", "zone.n.02")
		zone.AddChild(numTok(rng, 3, 9))
		plant.AddChild(zone)
		light := el("light", "light.n.03")
		if rng.Intn(2) == 0 {
			light.AddChild(tok("sun", "sun.n.02"))
		} else {
			light.AddChild(tok("shade", "shade.n.01"))
		}
		plant.AddChild(light)
		price := el("price", "price.n.01")
		price.AddChild(numTok(rng, 3, 15))
		plant.AddChild(price)
		avail := el("availability", "availability.n.01")
		avail.AddChild(numTok(rng, 1, 12))
		plant.AddChild(avail)
		root.AddChild(plant)
	}
	return root
}

// ---- Dataset 9: Niagara personnel (Group 4) ----

// genPersonnel is the dataset behind the paper's Table 2 discussion: the
// meaning of "state" under "address" is obvious to human annotators but
// highly polysemous for the system.
func genPersonnel(rng *rand.Rand) *xmltree.Node {
	root := el("personnel", "personnel.n.01")
	for p := 0; p < 2; p++ {
		person := el("person", "person.n.01")
		name := el("name", "name.n.01")
		name.AddChild(el("family", "family.n.02", tok(pick(rng, personNames).word, "")))
		name.AddChild(el("given", "given.n.01", tok(pick(rng, personNames).word, "")))
		person.AddChild(name)
		person.AddChild(el("email", "email.n.01", tok("user", ""), tok("example", "")))
		addr := el("address", "address.n.01")
		addr.AddChild(el("street", "street.n.01", tok("main", "")))
		addr.AddChild(el("city", "city.n.01", tok("madison", "")))
		addr.AddChild(el("state", "state.n.01", tok("wisconsin", "")))
		zip := el("zip", "zip.n.01")
		zip.AddChild(numTok(rng, 10000, 99999))
		addr.AddChild(zip)
		person.AddChild(addr)
		root.AddChild(person)
	}
	return root
}

// ---- Dataset 10: Niagara club (Group 4) ----

func genClub(rng *rand.Rand) *xmltree.Node {
	root := el("club", "club.n.01")
	root.AddChild(el("president", "president.n.03", tok(pick(rng, personNames).word, "")))
	for m := 0; m < 2; m++ {
		member := el("member", "member.n.01", at("since", "", numTok(rng, 1990, 2014)))
		member.AddChild(el("name", "name.n.01", tok(pick(rng, personNames).word, "")))
		age := el("age", "age.n.01")
		age.AddChild(numTok(rng, 18, 80))
		member.AddChild(age)
		h := pick(rng, hobbyWords)
		member.AddChild(el("hobby", "hobby.n.01", tok(h.word, h.gold)))
		root.AddChild(member)
	}
	return root
}
