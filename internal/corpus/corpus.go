// Package corpus generates the test-document collection of §4.1 (Table 3):
// ten datasets over the same DTD families the paper used (Shakespeare
// plays, Amazon products, SIGMOD Record proceedings, IMDB movies, Niagara
// bib/personnel/club, and the W3Schools cd/food/plant catalogs), organized
// into the four ambiguity × structure groups of Table 1.
//
// The paper's documents came from public downloads that are not available
// offline, so the generators synthesize structurally equivalent documents:
// the same grammars and tag vocabularies, comparable node counts, depth,
// fan-out, and label polysemy. Crucially, every node whose label (or token)
// has an intended meaning in the embedded lexicon carries a gold concept
// identifier, giving the evaluation exact ground truth (see DESIGN.md,
// "Substitutions"). Generation is fully deterministic per seed.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Doc is one generated test document.
type Doc struct {
	// Dataset is the 1-based dataset number of Table 3.
	Dataset int
	// Group is the 1-based test group of Table 1.
	Group int
	// Name identifies the document ("shakespeare-03").
	Name string
	// Grammar names the DTD family of Table 3.
	Grammar string
	// Tree is the document tree with Raw labels and Gold sense annotations.
	Tree *xmltree.Tree
}

// DatasetInfo describes one dataset row of Table 3.
type DatasetInfo struct {
	Dataset int
	Group   int
	Source  string
	Grammar string
	NumDocs int
}

// Datasets lists the ten datasets with the document counts of Table 3.
// (The paper's prose says "80 test documents" while its Table 3 rows sum to
// 60; we follow Table 3, and note the discrepancy in EXPERIMENTS.md.)
func Datasets() []DatasetInfo {
	return []DatasetInfo{
		{1, 1, "Shakespeare collection", "shakespeare.dtd", 10},
		{2, 2, "Amazon product files", "amazon_product.dtd", 10},
		{3, 3, "SIGMOD Record", "ProceedingsPage.dtd", 6},
		{4, 3, "IMDB database", "movies.dtd", 6},
		{5, 3, "Niagara collection", "bib.dtd", 8},
		{6, 4, "W3Schools", "cd_catalog.dtd", 4},
		{7, 4, "W3Schools", "food_menu.dtd", 4},
		{8, 4, "W3Schools", "plant_catalog.dtd", 4},
		{9, 4, "Niagara collection", "personnel.dtd", 4},
		{10, 4, "Niagara collection", "club.dtd", 4},
	}
}

// Generate builds the full collection deterministically from seed.
func Generate(seed int64) []Doc { return GenerateScaled(seed, 1) }

// GenerateScaled builds scale x the Table 3 document counts — the same ten
// grammars with proportionally more documents per dataset — for throughput
// benchmarks and robustness tests beyond the paper's corpus size. scale < 1
// is treated as 1.
func GenerateScaled(seed int64, scale int) []Doc {
	if scale < 1 {
		scale = 1
	}
	var docs []Doc
	for _, ds := range Datasets() {
		for i := 0; i < ds.NumDocs*scale; i++ {
			rng := rand.New(rand.NewSource(seed + int64(ds.Dataset)*1000 + int64(i)))
			var root *xmltree.Node
			switch ds.Dataset {
			case 1:
				root = genShakespeare(rng)
			case 2:
				root = genAmazon(rng)
			case 3:
				root = genSigmod(rng)
			case 4:
				root = genMovies(rng)
			case 5:
				root = genBib(rng)
			case 6:
				root = genCDCatalog(rng)
			case 7:
				root = genFoodMenu(rng)
			case 8:
				root = genPlantCatalog(rng)
			case 9:
				root = genPersonnel(rng)
			case 10:
				root = genClub(rng)
			}
			docs = append(docs, Doc{
				Dataset: ds.Dataset,
				Group:   ds.Group,
				Name:    fmt.Sprintf("%s-%02d", shortName(ds.Grammar), i+1),
				Grammar: ds.Grammar,
				Tree:    xmltree.New(root),
			})
		}
	}
	return docs
}

// GenerateDataset builds only the documents of one dataset.
func GenerateDataset(seed int64, dataset int) []Doc {
	var out []Doc
	for _, d := range Generate(seed) {
		if d.Dataset == dataset {
			out = append(out, d)
		}
	}
	return out
}

// GroupDocs partitions documents by Table 1 group (1-4).
func GroupDocs(docs []Doc) map[int][]Doc {
	out := make(map[int][]Doc, 4)
	for _, d := range docs {
		out[d.Group] = append(out[d.Group], d)
	}
	return out
}

func shortName(grammar string) string {
	switch grammar {
	case "shakespeare.dtd":
		return "shakespeare"
	case "amazon_product.dtd":
		return "amazon"
	case "ProceedingsPage.dtd":
		return "sigmod"
	case "movies.dtd":
		return "movies"
	case "bib.dtd":
		return "bib"
	case "cd_catalog.dtd":
		return "cd"
	case "food_menu.dtd":
		return "food"
	case "plant_catalog.dtd":
		return "plant"
	case "personnel.dtd":
		return "personnel"
	case "club.dtd":
		return "club"
	default:
		return grammar
	}
}

// ---- tree-building helpers shared by the dataset generators ----

// el creates an element node with a gold concept id ("" when the tag has no
// intended lexicon meaning).
func el(tag, gold string, children ...*xmltree.Node) *xmltree.Node {
	n := &xmltree.Node{Raw: tag, Label: tag, Kind: xmltree.Element, Gold: gold}
	for _, c := range children {
		n.AddChild(c)
	}
	return n
}

// at creates an attribute node.
func at(name, gold string, children ...*xmltree.Node) *xmltree.Node {
	n := &xmltree.Node{Raw: name, Label: name, Kind: xmltree.Attribute, Gold: gold}
	for _, c := range children {
		n.AddChild(c)
	}
	return n
}

// tok creates a text-token leaf with an optional gold concept id.
func tok(word, gold string) *xmltree.Node {
	return &xmltree.Node{Raw: word, Label: word, Kind: xmltree.Token, Gold: gold}
}

// wg is a word with its intended gold sense, used for value vocabularies.
type wg struct {
	word string
	gold string
}

// pick selects a uniformly random entry of pool.
func pick(rng *rand.Rand, pool []wg) wg {
	return pool[rng.Intn(len(pool))]
}

// toks maps 1..n random pool entries to token nodes.
func toks(rng *rand.Rand, pool []wg, n int) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, n)
	for i := 0; i < n; i++ {
		w := pick(rng, pool)
		out = append(out, tok(w.word, w.gold))
	}
	return out
}

// numTok creates a numeric token (no lexicon senses: unambiguous noise).
func numTok(rng *rand.Rand, lo, hi int) *xmltree.Node {
	return tok(fmt.Sprintf("%d", lo+rng.Intn(hi-lo+1)), "")
}
