package corpus

import (
	"strings"
	"testing"

	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42)
	b := Generate(42)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Tree.Len() != b[i].Tree.Len() {
			t.Fatalf("doc %d differs", i)
		}
		for j := 0; j < a[i].Tree.Len(); j++ {
			na, nb := a[i].Tree.Node(j), b[i].Tree.Node(j)
			if na.Raw != nb.Raw || na.Gold != nb.Gold {
				t.Fatalf("doc %d node %d differs: %v vs %v", i, j, na, nb)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, b := Generate(1), Generate(2)
	same := true
	for i := range a {
		if a[i].Tree.Len() != b[i].Tree.Len() {
			same = false
			break
		}
	}
	if same {
		// Sizes may coincide; compare token content.
		var ta, tb strings.Builder
		for _, n := range a[0].Tree.Nodes() {
			ta.WriteString(n.Raw)
		}
		for _, n := range b[0].Tree.Nodes() {
			tb.WriteString(n.Raw)
		}
		if ta.String() == tb.String() {
			t.Error("different seeds produced identical corpus")
		}
	}
}

func TestDatasetCountsMatchTable3(t *testing.T) {
	docs := Generate(42)
	counts := map[int]int{}
	for _, d := range docs {
		counts[d.Dataset]++
	}
	want := map[int]int{1: 10, 2: 10, 3: 6, 4: 6, 5: 8, 6: 4, 7: 4, 8: 4, 9: 4, 10: 4}
	for ds, n := range want {
		if counts[ds] != n {
			t.Errorf("dataset %d has %d docs, want %d", ds, counts[ds], n)
		}
	}
	if len(docs) != 60 {
		t.Errorf("total docs = %d, want 60 (Table 3 row sum)", len(docs))
	}
}

func TestGroupAssignment(t *testing.T) {
	groups := GroupDocs(Generate(42))
	if len(groups[1]) != 10 || len(groups[2]) != 10 || len(groups[3]) != 20 || len(groups[4]) != 20 {
		t.Errorf("group sizes: %d %d %d %d", len(groups[1]), len(groups[2]), len(groups[3]), len(groups[4]))
	}
}

// TestGoldSensesResolvable: every gold annotation must be achievable — each
// concept of the gold (pair) must exist in the lexicon and be among the
// senses of the node's processed tokens. This guards against corpus bugs
// where no system could ever be scored correct.
func TestGoldSensesResolvable(t *testing.T) {
	net := wordnet.Default()
	for _, d := range Generate(42) {
		lingproc.ProcessTree(d.Tree, net)
		for _, n := range d.Tree.Nodes() {
			if n.Gold == "" {
				continue
			}
			parts := strings.Split(n.Gold, "+")
			tokens := n.Tokens
			if len(tokens) == 0 {
				tokens = []string{n.Label}
			}
			for _, p := range parts {
				if net.Concept(semnet.ConceptID(p)) == nil {
					t.Errorf("%s: gold %q references unknown concept", d.Name, p)
					continue
				}
			}
			if len(parts) == 1 {
				// The single gold concept must be a sense of some token.
				found := false
				for _, tok := range tokens {
					for _, s := range net.Senses(tok) {
						if string(s) == parts[0] {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("%s: gold %q unreachable from tokens %v of %q",
						d.Name, n.Gold, tokens, n.Raw)
				}
			} else if len(parts) == 2 && len(tokens) == 2 {
				for i, p := range parts {
					found := false
					for _, s := range net.Senses(tokens[i]) {
						if string(s) == p {
							found = true
						}
					}
					if !found {
						t.Errorf("%s: gold pair part %q unreachable from token %q",
							d.Name, p, tokens[i])
					}
				}
			}
		}
	}
}

func TestEveryDocHasGoldNodes(t *testing.T) {
	for _, d := range Generate(42) {
		gold := 0
		for _, n := range d.Tree.Nodes() {
			if n.Gold != "" {
				gold++
			}
		}
		if gold < 8 {
			t.Errorf("%s has only %d gold nodes; the panel needs 12-13", d.Name, gold)
		}
	}
}

func TestShakespeareShape(t *testing.T) {
	docs := GenerateDataset(42, 1)
	for _, d := range docs {
		if d.Tree.Root.Raw != "PLAY" {
			t.Errorf("%s root = %s", d.Name, d.Tree.Root.Raw)
		}
		if d.Tree.Len() < 100 {
			t.Errorf("%s too small: %d nodes", d.Name, d.Tree.Len())
		}
		if d.Tree.MaxDepth() < 4 {
			t.Errorf("%s too shallow: %d", d.Name, d.Tree.MaxDepth())
		}
	}
}

func TestAmazonCompoundTags(t *testing.T) {
	docs := GenerateDataset(42, 2)
	foundCompound := false
	for _, d := range docs {
		for _, n := range d.Tree.Nodes() {
			if n.Raw == "ListPrice" || n.Raw == "BrandName" {
				foundCompound = true
			}
		}
	}
	if !foundCompound {
		t.Error("amazon dataset must contain compound camel-case tags")
	}
}

func TestPersonnelStateExample(t *testing.T) {
	// The Table 2 discussion depends on "state" appearing under "address".
	docs := GenerateDataset(42, 9)
	found := false
	for _, d := range docs {
		for _, n := range d.Tree.Nodes() {
			if n.Raw == "state" && n.Parent != nil && n.Parent.Raw == "address" {
				found = true
				if n.Gold != "state.n.01" {
					t.Errorf("state gold = %q", n.Gold)
				}
			}
		}
	}
	if !found {
		t.Error("personnel docs must contain state under address")
	}
}

func TestSerializableToXML(t *testing.T) {
	for _, d := range Generate(42)[:5] {
		var sb strings.Builder
		if err := d.Tree.WriteXML(&sb, false); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if _, err := xmltree.ParseString(sb.String(), xmltree.DefaultParseOptions()); err != nil {
			t.Errorf("%s does not round-trip: %v", d.Name, err)
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	base := Generate(42)
	scaled := GenerateScaled(42, 3)
	if len(scaled) != 3*len(base) {
		t.Fatalf("scale 3 produced %d docs, want %d", len(scaled), 3*len(base))
	}
	// The first documents of each dataset coincide with the unscaled run.
	byName := map[string]Doc{}
	for _, d := range scaled {
		byName[d.Name] = d
	}
	for _, d := range base {
		s, ok := byName[d.Name]
		if !ok {
			t.Fatalf("scaled corpus missing %s", d.Name)
		}
		if s.Tree.Len() != d.Tree.Len() {
			t.Errorf("%s differs between scales", d.Name)
		}
	}
	// Degenerate scale clamps to 1.
	if got := GenerateScaled(42, 0); len(got) != len(base) {
		t.Errorf("scale 0 produced %d docs", len(got))
	}
}
