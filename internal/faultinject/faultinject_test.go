package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// TestDisabledFastPath: with no injector installed, every site is inert.
func TestDisabledFastPath(t *testing.T) {
	if Enabled() {
		t.Fatal("no injector should be installed by default")
	}
	TreeStart()
	NodeStart()
	if DropLookup() {
		t.Error("DropLookup must be false when disabled")
	}
	if err := ServerFault(); err != nil {
		t.Errorf("ServerFault must be nil when disabled: %v", err)
	}
	if _, ok := PoisonSim(); ok {
		t.Error("PoisonSim must not fire when disabled")
	}
	before := time.Now()
	if now := Now(); now.Before(before) {
		t.Error("Now must not run backwards when disabled")
	}
}

// TestDeterministicSchedule: equal seeds draw identical decision
// sequences; different seeds diverge.
func TestDeterministicSchedule(t *testing.T) {
	sample := func(seed int64) []bool {
		restore := Install(New(Config{Seed: seed, LookupErrRate: 0.3}))
		defer restore()
		out := make([]bool, 200)
		for i := range out {
			out[i] = DropLookup()
		}
		return out
	}
	a, b, c := sample(7), sample(7), sample(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at draw %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 drew identical schedules")
	}
	var hits int
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits < 30 || hits > 90 {
		t.Errorf("rate 0.3 over 200 draws fired %d times, want ~60", hits)
	}
}

// TestPointIndependence: draws at one point do not shift another point's
// sequence.
func TestPointIndependence(t *testing.T) {
	seq := func(interleave bool) []bool {
		restore := Install(New(Config{Seed: 3, LookupErrRate: 0.5, CachePoisonRate: 0.5}))
		defer restore()
		out := make([]bool, 50)
		for i := range out {
			if interleave {
				PoisonSim() // consume PointCache slots between lookups
			}
			out[i] = DropLookup()
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("PointCache draws shifted PointLookup's sequence at %d", i)
		}
	}
}

// TestInjectedPanics: tree and node panics throw InjectedPanic values.
func TestInjectedPanics(t *testing.T) {
	restore := Install(New(Config{Seed: 1, TreePanicRate: 1, NodePanicRate: 1}))
	defer restore()
	expectPanic := func(name string, f func()) {
		defer func() {
			if v := recover(); v == nil {
				t.Errorf("%s: expected panic", name)
			} else if _, ok := v.(InjectedPanic); !ok {
				t.Errorf("%s: panic value %T, want InjectedPanic", name, v)
			}
		}()
		f()
	}
	expectPanic("TreeStart", TreeStart)
	expectPanic("NodeStart", NodeStart)
}

// TestStageStartPanicCarriesStageName: stage panics identify both the
// point and the pipeline stage they fired at, so a chaos failure names
// the boundary that was poisoned.
func TestStageStartPanicCarriesStageName(t *testing.T) {
	restore := Install(New(Config{Seed: 1, StagePanicRate: 1}))
	defer restore()
	defer func() {
		v := recover()
		ip, ok := v.(InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want InjectedPanic", v)
		}
		if ip.Point != PointStage || ip.Stage != "preprocess" {
			t.Errorf("injected panic = %+v, want PointStage at preprocess", ip)
		}
		if s := ip.String(); !strings.Contains(s, `"preprocess"`) {
			t.Errorf("String() = %q, want the stage name quoted", s)
		}
	}()
	StageStart("preprocess")
}

// TestStageStartDisabledAndDelay: the nil fast path never fires, and a
// pure-delay schedule returns without panicking.
func TestStageStartDisabledAndDelay(t *testing.T) {
	StageStart("guard") // no injector installed: must be a no-op

	restore := Install(New(Config{Seed: 2, StageDelayRate: 1, StageDelay: time.Microsecond}))
	defer restore()
	StageStart("guard") // delay path: sleeps, never panics
}

// TestPoisonAndClock: poison returns the configured out-of-range value;
// clock skew only moves time forward, bounded by ClockSkewMax.
func TestPoisonAndClock(t *testing.T) {
	restore := Install(New(Config{Seed: 5, CachePoisonRate: 1, ClockSkewRate: 1, ClockSkewMax: time.Second}))
	defer restore()
	if v, ok := PoisonSim(); !ok || v != -1 {
		t.Errorf("PoisonSim = %v, %v; want -1, true (default poison)", v, ok)
	}
	for i := 0; i < 20; i++ {
		before := time.Now()
		now := Now()
		if now.Before(before) {
			t.Fatal("skewed clock ran backwards")
		}
		if now.Sub(before) > time.Second+50*time.Millisecond {
			t.Fatalf("skew %v exceeds ClockSkewMax", now.Sub(before))
		}
	}
}

// TestServerFaultSchedule: the server point draws its own deterministic
// sequence, fires ErrInjectedServerFault at roughly the configured rate,
// and replays identically from the same seed.
func TestServerFaultSchedule(t *testing.T) {
	sample := func(seed int64) []bool {
		restore := Install(New(Config{Seed: seed, ServerErrRate: 0.25}))
		defer restore()
		out := make([]bool, 200)
		for i := range out {
			err := ServerFault()
			if err != nil && err != ErrInjectedServerFault {
				t.Fatalf("unexpected fault value: %v", err)
			}
			out[i] = err != nil
		}
		return out
	}
	a, b := sample(11), sample(11)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 11 diverged at draw %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits < 20 || hits > 80 {
		t.Errorf("rate 0.25 over 200 draws fired %d times, want ~50", hits)
	}
}

// TestHooksRestore: SetHooks layers and restores like the original
// core.SetTestHooks seam.
func TestHooksRestore(t *testing.T) {
	var calls int
	restore := SetHooks(Hooks{BeforeTree: func(_ *xmltree.Tree) { calls++ }})
	if h := CurrentHooks(); h.BeforeTree == nil {
		t.Fatal("hook not installed")
	} else {
		h.BeforeTree(nil)
	}
	restore()
	if h := CurrentHooks(); h.BeforeTree != nil {
		t.Fatal("hook not restored")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}
