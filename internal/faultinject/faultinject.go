// Package faultinject is the deterministic fault-injection seam of the
// XSDF pipeline. It has two layers:
//
//   - Hooks, the hand-written seam promoted from the original
//     core.SetTestHooks: tests install callbacks that run at tree start
//     and before each target node (a panicking hook models a poisoned
//     document, a sleeping hook a slow node).
//   - Injector, a seeded schedule of randomized faults fired at named
//     pipeline points (semnet lookup latency/error, cached-similarity
//     poison, per-node panic/delay, clock skew on degradation deadlines).
//     Given the same Config, the multiset of decisions drawn at each
//     point is identical across runs, so a chaos failure reproduces from
//     its seed.
//
// Production code never installs either layer; every site tolerates the
// nil zero value with a single atomic load on the fast path.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmltree"
)

// Hooks is the callback seam of the pipeline (formerly core.TestHooks).
// All call sites tolerate the zero value.
type Hooks struct {
	// BeforeTree runs at the start of document processing, after the
	// resource guards, with the tree about to be processed.
	BeforeTree func(*xmltree.Tree)
	// BeforeNode runs before each target node is disambiguated.
	BeforeNode func(*xmltree.Node)
}

var (
	hooksMu sync.Mutex
	hooks   Hooks
)

// SetHooks installs h and returns a function restoring the previous
// hooks; tests should defer it. Safe for concurrent use with running
// pipelines (workers snapshot the hooks at tree start).
func SetHooks(h Hooks) (restore func()) {
	hooksMu.Lock()
	prev := hooks
	hooks = h
	hooksMu.Unlock()
	return func() {
		hooksMu.Lock()
		hooks = prev
		hooksMu.Unlock()
	}
}

// CurrentHooks snapshots the installed hooks.
func CurrentHooks() Hooks {
	hooksMu.Lock()
	defer hooksMu.Unlock()
	return hooks
}

// Point names an injection site in the pipeline. Each point keeps its own
// deterministic draw sequence, so enabling one fault class does not shift
// the decisions of another.
type Point uint8

const (
	// PointTree fires at the start of document processing.
	PointTree Point = iota
	// PointNode fires before each target node is disambiguated.
	PointNode
	// PointLookup fires at each sense lookup during scoring; a hit makes
	// the lookup behave like a failed semantic-network backend (no senses).
	PointLookup
	// PointCache fires at each cached pairwise-similarity read; a hit
	// returns a poisoned (out-of-range) score.
	PointCache
	// PointClock fires at each budget-tracker clock read; a hit skews the
	// observed time forward, aging deadlines prematurely.
	PointClock
	// PointServer fires once per HTTP request on the serving path, before
	// the pipeline runs; a hit fails the request (an internal server
	// fault) or delays it (a slow dependency ahead of the pipeline).
	PointServer
	// PointStage fires before each pipeline stage runs (the uniform
	// middleware seam of internal/pipeline); a hit panics — modeling a
	// poisoned stage boundary, boxed by the stage middleware into a
	// *PanicError — or delays the stage.
	PointStage
	// PointStream fires before each NDJSON result line the streaming
	// endpoint emits; a hit cuts the connection mid-stream (the client must
	// resume from its cursor) or stalls the write (a slow wire).
	PointStream
	// PointSubtree fires before each subtree an incremental scan pulls in
	// subtree streaming mode; a hit cuts the connection mid-document (the
	// client resumes from a mid-document cursor) or stalls the scan (a
	// slow upstream source).
	PointSubtree
	// PointReload fires at each stage of a staged lexicon reload (load,
	// validate, canary); a hit fails that stage — the reload pipeline
	// must roll back to the serving snapshot — or stalls the load (a slow
	// disk or oversized lexicon holding the reload, never the data path).
	PointReload

	numPoints
)

// String names the point.
func (p Point) String() string {
	switch p {
	case PointTree:
		return "tree"
	case PointNode:
		return "node"
	case PointLookup:
		return "semnet-lookup"
	case PointCache:
		return "cache-sim"
	case PointClock:
		return "clock"
	case PointServer:
		return "server"
	case PointStage:
		return "stage"
	case PointStream:
		return "stream"
	case PointSubtree:
		return "subtree"
	case PointReload:
		return "reload"
	default:
		return fmt.Sprintf("Point(%d)", uint8(p))
	}
}

// Config is a seeded fault schedule: per-point firing rates (in [0, 1])
// and fault magnitudes. The zero value injects nothing.
type Config struct {
	// Seed determines every draw; equal seeds give equal schedules.
	Seed int64

	// TreePanicRate panics at PointTree (a poisoned document).
	TreePanicRate float64
	// NodePanicRate panics at PointNode (a poisoned node).
	NodePanicRate float64
	// NodeDelayRate sleeps NodeDelay at PointNode (a slow node).
	NodeDelayRate float64
	NodeDelay     time.Duration
	// LookupErrRate makes a sense lookup return nothing (a failed
	// semantic-network backend); LookupDelayRate/LookupDelay model a slow
	// backend.
	LookupErrRate   float64
	LookupDelayRate float64
	LookupDelay     time.Duration
	// CachePoisonRate corrupts a cached-similarity read with PoisonValue
	// (default -1, outside the valid [0, 1] score range).
	CachePoisonRate float64
	PoisonValue     float64
	// ClockSkewRate skews a budget clock read forward by a deterministic
	// amount up to ClockSkewMax.
	ClockSkewRate float64
	ClockSkewMax  time.Duration
	// ServerErrRate fails an HTTP request at PointServer before the
	// pipeline runs (an injected internal server fault, surfaced as a
	// 500); ServerDelayRate/ServerDelay model a slow dependency ahead of
	// the pipeline, burning request budget without doing work.
	ServerErrRate   float64
	ServerDelayRate float64
	ServerDelay     time.Duration
	// StagePanicRate panics at PointStage, before a pipeline stage runs
	// (the stage middleware boxes it into a *PanicError);
	// StageDelayRate/StageDelay model a slow stage boundary.
	StagePanicRate float64
	StageDelayRate float64
	StageDelay     time.Duration
	// StreamCutRate cuts the connection at PointStream instead of emitting
	// the next NDJSON line (a mid-stream disconnect the client must resume
	// across); StreamStallRate/StreamStall stall the line write (a slow
	// wire between the emitter and the client).
	StreamCutRate   float64
	StreamStallRate float64
	StreamStall     time.Duration
	// SubtreeCutRate cuts the connection at PointSubtree, between two
	// subtrees of one incrementally scanned document (a mid-document
	// disconnect the client must resume across);
	// SubtreeStallRate/SubtreeStall stall the scan (a slow upstream
	// source feeding the incremental parser).
	SubtreeCutRate   float64
	SubtreeStallRate float64
	SubtreeStall     time.Duration
	// ReloadLoadErrRate / ReloadValidateErrRate / ReloadCanaryErrRate fail
	// the matching stage of a staged lexicon reload at PointReload (the
	// reload rolls back; serving traffic must never notice);
	// ReloadSlowRate/ReloadSlow stall the load stage, modeling a slow disk
	// or an OEWN-sized lexicon parse holding the swap back.
	ReloadLoadErrRate     float64
	ReloadValidateErrRate float64
	ReloadCanaryErrRate   float64
	ReloadSlowRate        float64
	ReloadSlow            time.Duration
}

// Injector fires the faults of one Config. Each point draws from its own
// counter-indexed hash sequence: the n-th draw at a point is a pure
// function of (seed, point, n), so the decision multiset is reproducible
// even when concurrent goroutines race for draw slots.
type Injector struct {
	cfg   Config
	draws [numPoints]atomic.Uint64
}

// New returns an Injector over cfg.
func New(cfg Config) *Injector {
	if cfg.PoisonValue == 0 {
		cfg.PoisonValue = -1
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's schedule.
func (inj *Injector) Config() Config { return inj.cfg }

var active atomic.Pointer[Injector]

// Install makes inj the process-wide injector and returns a restore
// function; tests should defer it. Installing nil disables injection.
func Install(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mix used
// to turn (seed, point, counter) into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw takes the next slot at p and returns a uniform value in [0, 1)
// plus the raw hash for magnitude derivation.
func (inj *Injector) draw(p Point) (float64, uint64) {
	n := inj.draws[p].Add(1) - 1
	h := splitmix64(uint64(inj.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(p)<<56 + n)
	return float64(h>>11) / (1 << 53), h
}

// InjectedPanic is the value thrown by schedule-driven panics, so chaos
// tests can tell injected panics from genuine pipeline bugs.
type InjectedPanic struct {
	Point Point
	Draw  uint64
	// Stage names the pipeline stage for PointStage hits, empty otherwise.
	Stage string
}

func (p InjectedPanic) String() string {
	if p.Stage != "" {
		return fmt.Sprintf("faultinject: injected panic at %s %q (draw %d)", p.Point, p.Stage, p.Draw)
	}
	return fmt.Sprintf("faultinject: injected panic at %s (draw %d)", p.Point, p.Draw)
}

// TreeStart fires PointTree: it may panic per the installed schedule.
func TreeStart() {
	inj := active.Load()
	if inj == nil {
		return
	}
	if u, h := inj.draw(PointTree); u < inj.cfg.TreePanicRate {
		panic(InjectedPanic{Point: PointTree, Draw: h})
	}
}

// NodeStart fires PointNode: it may sleep or panic per the schedule.
func NodeStart() {
	inj := active.Load()
	if inj == nil {
		return
	}
	u, h := inj.draw(PointNode)
	if u < inj.cfg.NodePanicRate {
		panic(InjectedPanic{Point: PointNode, Draw: h})
	}
	if u < inj.cfg.NodePanicRate+inj.cfg.NodeDelayRate && inj.cfg.NodeDelay > 0 {
		time.Sleep(inj.cfg.NodeDelay)
	}
}

// DropLookup fires PointLookup and reports whether the sense lookup
// should behave as failed; it may also sleep (slow backend).
func DropLookup() bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	u, _ := inj.draw(PointLookup)
	if u < inj.cfg.LookupErrRate {
		return true
	}
	if u < inj.cfg.LookupErrRate+inj.cfg.LookupDelayRate && inj.cfg.LookupDelay > 0 {
		time.Sleep(inj.cfg.LookupDelay)
	}
	return false
}

// PoisonSim fires PointCache: when the fault hits it returns a corrupted
// similarity value and true, and the caller must use it in place of the
// cached score.
func PoisonSim() (float64, bool) {
	inj := active.Load()
	if inj == nil {
		return 0, false
	}
	if u, _ := inj.draw(PointCache); u < inj.cfg.CachePoisonRate {
		return inj.cfg.PoisonValue, true
	}
	return 0, false
}

// ErrInjectedServerFault is what ServerFault returns on a hit, so the
// serving layer (and its tests) can tell injected request failures from
// genuine handler bugs.
var ErrInjectedServerFault = fmt.Errorf("faultinject: injected server fault")

// ServerFault fires PointServer once per request on the serving path. It
// may sleep (slow upstream dependency) and may return
// ErrInjectedServerFault, which the server surfaces as a 500.
func ServerFault() error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	u, _ := inj.draw(PointServer)
	if u < inj.cfg.ServerErrRate {
		return ErrInjectedServerFault
	}
	if u < inj.cfg.ServerErrRate+inj.cfg.ServerDelayRate && inj.cfg.ServerDelay > 0 {
		time.Sleep(inj.cfg.ServerDelay)
	}
	return nil
}

// StageStart fires PointStage before the named pipeline stage runs: it
// may panic or sleep per the installed schedule. The stage middleware
// (internal/pipeline) is its only caller, so a schedule with a non-zero
// StagePanicRate exercises every stage boundary uniformly.
func StageStart(stage string) {
	inj := active.Load()
	if inj == nil {
		return
	}
	u, h := inj.draw(PointStage)
	if u < inj.cfg.StagePanicRate {
		panic(InjectedPanic{Point: PointStage, Draw: h, Stage: stage})
	}
	if u < inj.cfg.StagePanicRate+inj.cfg.StageDelayRate && inj.cfg.StageDelay > 0 {
		time.Sleep(inj.cfg.StageDelay)
	}
}

// StreamEmit fires PointStream before one NDJSON result line is written.
// It may sleep (a stalled wire) and reports cut=true when the schedule
// wants the connection severed instead of the line delivered — the
// streaming handler aborts the connection without writing, so the client
// sees a mid-stream disconnect and must resume from its last cursor.
func StreamEmit() (cut bool) {
	inj := active.Load()
	if inj == nil {
		return false
	}
	u, _ := inj.draw(PointStream)
	if u < inj.cfg.StreamCutRate {
		return true
	}
	if u < inj.cfg.StreamCutRate+inj.cfg.StreamStallRate && inj.cfg.StreamStall > 0 {
		time.Sleep(inj.cfg.StreamStall)
	}
	return false
}

// SubtreeNext fires PointSubtree before an incremental scan pulls its
// next subtree in subtree streaming mode. It may sleep (a slow upstream
// source) and reports cut=true when the schedule wants the connection
// severed mid-document — the streaming handler aborts without emitting
// the subtree, and the client resumes from its last cursor, landing in
// the middle of the document's subtree sequence.
func SubtreeNext() (cut bool) {
	inj := active.Load()
	if inj == nil {
		return false
	}
	u, _ := inj.draw(PointSubtree)
	if u < inj.cfg.SubtreeCutRate {
		return true
	}
	if u < inj.cfg.SubtreeCutRate+inj.cfg.SubtreeStallRate && inj.cfg.SubtreeStall > 0 {
		time.Sleep(inj.cfg.SubtreeStall)
	}
	return false
}

// ErrInjectedReloadFault is what ReloadStage returns on a hit, so the
// reload pipeline (and its chaos tests) can tell injected reload
// failures from genuine candidate-lexicon problems.
var ErrInjectedReloadFault = fmt.Errorf("faultinject: injected reload fault")

// ReloadStage fires PointReload once per stage of a staged lexicon
// reload ("load", "validate", "canary"). A hit at the named stage
// returns an error wrapping ErrInjectedReloadFault — the reload must
// abort the stage and roll back — and the load stage may additionally
// stall (slow disk), exercising the requirement that a long reload never
// blocks serving traffic.
func ReloadStage(stage string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	u, _ := inj.draw(PointReload)
	var rate float64
	switch stage {
	case "load":
		rate = inj.cfg.ReloadLoadErrRate
	case "validate":
		rate = inj.cfg.ReloadValidateErrRate
	case "canary":
		rate = inj.cfg.ReloadCanaryErrRate
	}
	if u < rate {
		return fmt.Errorf("%w at %s stage", ErrInjectedReloadFault, stage)
	}
	if stage == "load" && u < rate+inj.cfg.ReloadSlowRate && inj.cfg.ReloadSlow > 0 {
		time.Sleep(inj.cfg.ReloadSlow)
	}
	return nil
}

// Now is the pipeline's budget clock: time.Now plus any scheduled skew.
// Skew is always forward (time appears to have passed), modeling a clock
// jump that ages a deadline prematurely.
func Now() time.Time {
	now := time.Now()
	inj := active.Load()
	if inj == nil {
		return now
	}
	if u, h := inj.draw(PointClock); u < inj.cfg.ClockSkewRate && inj.cfg.ClockSkewMax > 0 {
		skew := time.Duration(h % uint64(inj.cfg.ClockSkewMax))
		return now.Add(skew)
	}
	return now
}
