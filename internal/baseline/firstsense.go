package baseline

import (
	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// FirstSense is the Most Frequent Sense baseline: every token of a
// (pre-processed) label receives its first listed sense, relying on the
// semantic network's frequency ordering (semnet.Senses returns senses
// dominant-first) and ignoring the document context entirely. It is the
// classic WSD floor any context-aware method must beat — and the last rung
// of the pipeline's graceful-degradation ladder, which falls back to
// exactly this assignment when a document's budget runs out.
type FirstSense struct {
	net *semnet.Network
}

// NewFirstSense returns the baseline over net.
func NewFirstSense(net *semnet.Network) *FirstSense {
	return &FirstSense{net: net}
}

// Node picks the most frequent sense for each token of the node's label.
// Unlike RPD/VSD this baseline runs after linguistic pre-processing, so
// compound labels yield one concept per token ("first+name"), mirroring
// the pipeline's own sense identifiers. ok is false when no token is known
// to the network.
func (b *FirstSense) Node(x *xmltree.Node) ([]semnet.ConceptID, bool) {
	tokens := x.Tokens
	if len(tokens) == 0 {
		tokens = []string{x.Label}
	}
	var out []semnet.ConceptID
	for _, t := range tokens {
		if s := b.net.Senses(t); len(s) > 0 {
			out = append(out, s[0])
		}
	}
	return out, len(out) > 0
}

// Apply runs the baseline over the target nodes, writing senses in place,
// and returns the number of senses assigned. Sense identifiers join
// compound concepts with "+", matching disambig.Sense.ID.
func (b *FirstSense) Apply(targets []*xmltree.Node) int {
	n := 0
	for _, x := range targets {
		cs, ok := b.Node(x)
		if !ok {
			continue
		}
		id := string(cs[0])
		for _, c := range cs[1:] {
			id += "+" + string(c)
		}
		x.Sense = id
		n++
	}
	return n
}
