// Package baseline reimplements the two comparator systems of the paper's
// evaluation (§4.3.2): RPD, the root-path disambiguation of Tagarelli et
// al. [50], and VSD, the versatile structural disambiguation of Mandreoli
// et al. [29], following their descriptions in §2.2 of the XSDF paper.
package baseline

import (
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/xmltree"
)

// RPD is the Root Path Disambiguation baseline: the context of a node is
// the sequence of node labels connecting it to the document root, and
// per-path sense disambiguation compares every sense of the target label
// with all possible senses of the other labels in the same path, using
// gloss-based and edge-based semantic similarity, selecting the sense with
// the maximal accumulated score. Compound tag names are NOT tokenized
// (Table 4: RPD lacks tag tokenization), so labels such as "firstname" are
// looked up verbatim and usually miss.
type RPD struct {
	net *semnet.Network
	sim *simmeasure.Measure
}

// NewRPD returns the baseline over net. Per the original method, similarity
// combines the edge-based and gloss-based measures in equal parts (no
// node-based information content).
func NewRPD(net *semnet.Network) *RPD {
	w := simmeasure.Weights{Edge: 0.5, Gloss: 0.5}
	return &RPD{net: net, sim: simmeasure.New(net, w)}
}

// Node disambiguates one node against its root-path context. ok is false
// when the raw label (lower-cased, unsplit) has no senses.
func (r *RPD) Node(x *xmltree.Node) (semnet.ConceptID, bool) {
	// RPD performs no compound splitting: it uses the whole raw tag name.
	label := rawLookupLabel(x)
	senses := r.net.Senses(label)
	if len(senses) == 0 {
		return "", false
	}
	if len(senses) == 1 {
		return senses[0], true
	}
	// Context: labels on the root path (excluding the target itself).
	var ctxLabels []string
	for cur := x.Parent; cur != nil; cur = cur.Parent {
		ctxLabels = append(ctxLabels, rawLookupLabel(cur))
	}
	// RPD disambiguates element labels within the path only; a node with an
	// empty path context (the root) falls back to the first (dominant)
	// sense.
	best := senses[0]
	bestScore := -1.0
	for _, sp := range senses {
		var score float64
		for _, cl := range ctxLabels {
			m := 0.0
			for _, sj := range r.net.Senses(cl) {
				if v := r.sim.Sim(sp, sj); v > m {
					m = v
				}
			}
			score += m
		}
		if score > bestScore {
			bestScore = score
			best = sp
		}
	}
	return best, true
}

// Apply runs RPD over the target nodes, writing senses in place, and
// returns the number of senses assigned.
func (r *RPD) Apply(targets []*xmltree.Node) int {
	n := 0
	for _, x := range targets {
		if s, ok := r.Node(x); ok {
			x.Sense = string(s)
			n++
		}
	}
	return n
}

// rawLookupLabel lower-cases the node's raw tag/token for lexicon lookup
// without any compound splitting or stemming, modeling the weaker
// linguistic pre-processing of the baselines.
func rawLookupLabel(x *xmltree.Node) string {
	return lower(x.Raw)
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
