package baseline

import (
	"testing"

	"repro/internal/disambig"
	"repro/internal/wordnet"
)

func TestFirstSensePicksDominantSense(t *testing.T) {
	net := wordnet.Default()
	tr := parse(t, bibDoc)
	fs := NewFirstSense(net)
	x := find(t, tr, "book")
	cs, ok := fs.Node(x)
	if !ok || len(cs) != 1 {
		t.Fatalf("FirstSense on %q: %v %v", x.Label, cs, ok)
	}
	if want := net.Senses("book")[0]; cs[0] != want {
		t.Errorf("FirstSense = %s, want dominant sense %s", cs[0], want)
	}
}

func TestFirstSenseUnknownLabel(t *testing.T) {
	tr := parse(t, `<bib><zzqx>y</zzqx></bib>`)
	if _, ok := NewFirstSense(wordnet.Default()).Node(find(t, tr, "zzqx")); ok {
		t.Error("unknown label must fail")
	}
}

// TestFirstSenseMatchesLadderRung cross-checks the baseline against the
// pipeline's last degradation rung: forcing every node onto first-sense
// (FirstSenseAfter: 1 watermark) must yield the same assignments this
// baseline produces, because the rung IS the MFS baseline.
func TestFirstSenseMatchesLadderRung(t *testing.T) {
	net := wordnet.Default()
	base := parse(t, bibDoc)
	ladder := parse(t, bibDoc)

	baseTargets := base.Nodes()
	NewFirstSense(net).Apply(baseTargets)

	opts := disambig.DefaultOptions()
	opts.Degrade = disambig.Degradation{Enabled: true, FirstSenseAfter: 1}
	if _, err := disambig.New(net, opts).ApplyReport(t.Context(), ladder.Nodes()); err != nil {
		t.Fatal(err)
	}

	for i, want := range baseTargets {
		got := ladder.Node(i)
		if got.Sense != want.Sense {
			t.Errorf("node %q: ladder sense %q, baseline sense %q",
				want.Label, got.Sense, want.Sense)
		}
	}
}
