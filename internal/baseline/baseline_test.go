package baseline

import (
	"strings"
	"testing"

	"repro/internal/lingproc"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func parse(t *testing.T, doc string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: true, Tokenize: lingproc.Tokenize})
	if err != nil {
		t.Fatal(err)
	}
	lingproc.ProcessTree(tr, wordnet.Default())
	return tr
}

func find(t *testing.T, tr *xmltree.Tree, raw string) *xmltree.Node {
	t.Helper()
	for _, n := range tr.Nodes() {
		if n.Raw == raw {
			return n
		}
	}
	t.Fatalf("node %q not found", raw)
	return nil
}

const bibDoc = `<bib><book year="1998"><title>database design</title>
<author>ullman</author><publisher>addison</publisher></book></bib>`

func TestRPDUsesRootPath(t *testing.T) {
	tr := parse(t, bibDoc)
	rpd := NewRPD(wordnet.Default())
	s, ok := rpd.Node(find(t, tr, "book"))
	if !ok {
		t.Fatal("RPD failed on known label")
	}
	if !strings.HasPrefix(string(s), "book.") {
		t.Errorf("RPD sense = %s", s)
	}
}

func TestRPDMonosemousAndUnknown(t *testing.T) {
	tr := parse(t, `<bib><prologue>x</prologue><zzqx>y</zzqx></bib>`)
	rpd := NewRPD(wordnet.Default())
	if s, ok := rpd.Node(find(t, tr, "prologue")); !ok || s != "prologue.n.01" {
		t.Errorf("monosemous: %v %v", s, ok)
	}
	if _, ok := rpd.Node(find(t, tr, "zzqx")); ok {
		t.Error("unknown label must fail")
	}
}

// TestRPDNoCompoundTokenization verifies Table 4's key RPD limitation: a
// camel-case compound tag cannot be looked up at all.
func TestRPDNoCompoundTokenization(t *testing.T) {
	tr := parse(t, `<product><ListPrice>42</ListPrice></product>`)
	rpd := NewRPD(wordnet.Default())
	if _, ok := rpd.Node(find(t, tr, "ListPrice")); ok {
		t.Error("RPD must not tokenize compound tags (Table 4)")
	}
}

func TestRPDRootFallsBackToDominantSense(t *testing.T) {
	tr := parse(t, `<head><x/></head>`)
	rpd := NewRPD(wordnet.Default())
	s, ok := rpd.Node(tr.Node(0))
	if !ok {
		t.Fatal("root not disambiguated")
	}
	// Empty path context: dominant (first) sense.
	if s != wordnet.Default().Senses("head")[0] {
		t.Errorf("root fallback = %s, want dominant sense", s)
	}
}

func TestRPDApply(t *testing.T) {
	tr := parse(t, bibDoc)
	rpd := NewRPD(wordnet.Default())
	n := rpd.Apply(tr.Nodes())
	if n == 0 {
		t.Fatal("RPD assigned nothing")
	}
	count := 0
	for _, x := range tr.Nodes() {
		if x.Sense != "" {
			count++
		}
	}
	if count != n {
		t.Errorf("Apply reported %d, annotated %d", n, count)
	}
}

func TestVSDDecayAndRadius(t *testing.T) {
	v := NewVSD(wordnet.Default())
	if v.decay(0) != 1 {
		t.Errorf("decay(0) = %f", v.decay(0))
	}
	if !(v.decay(1) > v.decay(2) && v.decay(2) > v.decay(3)) {
		t.Error("decay not decreasing")
	}
	r := v.maxRadius()
	if r < 1 {
		t.Errorf("maxRadius = %d", r)
	}
	// The crossable frontier is exactly where decay crosses the cutoff.
	if v.decay(r) < v.Cutoff-1e-9 || v.decay(r+1) >= v.Cutoff {
		t.Errorf("radius %d inconsistent with cutoff: decay(r)=%f decay(r+1)=%f cutoff=%f",
			r, v.decay(r), v.decay(r+1), v.Cutoff)
	}
}

func TestVSDTokenizesCompounds(t *testing.T) {
	tr := parse(t, `<article><initPage>12</initPage><title>database</title></article>`)
	vsd := NewVSD(wordnet.Default())
	s, ok := vsd.Node(find(t, tr, "initPage"))
	if !ok {
		t.Fatal("VSD should tokenize compounds (Table 4)")
	}
	// VSD processes token senses separately: first sensed token ("init" is
	// unknown, "page" known) determines candidates.
	if !strings.HasPrefix(string(s), "page.") {
		t.Errorf("VSD compound sense = %s", s)
	}
}

func TestVSDUsesDescendantContext(t *testing.T) {
	// "cast" with star/kelly descendants: VSD's crossable context includes
	// them, so it assigns a sense — but with its single edge-based measure
	// it misses the ensemble reading that XSDF's combined measure finds
	// (Table 4, "combines the results of various semantic similarity
	// measures"). We assert only that a cast sense is chosen
	// deterministically.
	tr := parse(t, `<movie><cast><star>Kelly</star><star>Stewart</star></cast></movie>`)
	vsd := NewVSD(wordnet.Default())
	s, ok := vsd.Node(find(t, tr, "cast"))
	if !ok {
		t.Fatal("VSD failed")
	}
	if !strings.HasPrefix(string(s), "cast.") {
		t.Errorf("VSD cast = %s, want some cast sense", s)
	}
}

func TestVSDApplyAndDeterminism(t *testing.T) {
	tr := parse(t, bibDoc)
	vsd := NewVSD(wordnet.Default())
	if n := vsd.Apply(tr.Nodes()); n == 0 {
		t.Fatal("VSD assigned nothing")
	}
	first := senses(tr)
	tr2 := parse(t, bibDoc)
	vsd.Apply(tr2.Nodes())
	if senses(tr2) != first {
		t.Error("VSD not deterministic")
	}
}

func senses(tr *xmltree.Tree) string {
	var sb strings.Builder
	for _, n := range tr.Nodes() {
		sb.WriteString(n.Sense)
		sb.WriteByte('|')
	}
	return sb.String()
}

func TestLowerHelper(t *testing.T) {
	if lower("ListPrice") != "listprice" {
		t.Errorf("lower = %q", lower("ListPrice"))
	}
}
