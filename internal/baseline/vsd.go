package baseline

import (
	"math"

	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/xmltree"
)

// VSD is the Versatile Structural Disambiguation baseline of Mandreoli et
// al. [29] as described in §2.2 of the XSDF paper: the context of a node
// combines its ancestor (parent-direction) and descendant (sub-tree)
// neighborhoods, where an edge is "crossable" when a Gaussian decay
// function of its distance stays above a cutoff. Context nodes influence
// the target proportionally to that decay weight (the relational
// information model), and candidate senses are ranked with an edge-based
// semantic similarity (Leacock-Chodorow style; we use the Wu-Palmer
// implementation shared with XSDF, which is the same family).
type VSD struct {
	net *semnet.Network
	// Sigma is the Gaussian decay width; the effective context radius is
	// the largest distance whose weight stays >= Cutoff.
	Sigma float64
	// Cutoff is the crossability threshold on the decay weight.
	Cutoff float64
}

// NewVSD returns the baseline with the decay parameters reported as
// defaults in the original study (sigma = 2, cutoff ≈ weight at distance 3).
func NewVSD(net *semnet.Network) *VSD {
	return &VSD{net: net, Sigma: 2, Cutoff: math.Exp(-9.0 / 8.0)}
}

// decay is the Gaussian edge-weight function exp(-d²/(2σ²)).
func (v *VSD) decay(dist int) float64 {
	d := float64(dist)
	return math.Exp(-d * d / (2 * v.Sigma * v.Sigma))
}

// maxRadius returns the largest distance still crossable under the cutoff.
func (v *VSD) maxRadius() int {
	r := 0
	for v.decay(r+1) >= v.Cutoff-1e-12 {
		r++
		if r > 64 {
			break
		}
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Node disambiguates one node. VSD tokenizes compound tags but processes
// token senses separately as distinct labels (per §3.2's contrast with
// XSDF): the first token's best sense is returned for evaluation. ok is
// false when no token of the label has senses.
func (v *VSD) Node(x *xmltree.Node) (semnet.ConceptID, bool) {
	tokens := lingproc.SplitCompound(x.Raw)
	for i, t := range tokens {
		tokens[i] = lingproc.Normalize(t, v.net)
	}
	var senses []semnet.ConceptID
	for _, t := range tokens {
		if s := v.net.Senses(t); len(s) > 0 {
			senses = s
			break
		}
	}
	if len(senses) == 0 {
		return "", false
	}
	if len(senses) == 1 {
		return senses[0], true
	}
	members := sphere.Sphere(x, v.maxRadius())
	sim := simmeasure.New(v.net, simmeasure.EdgeOnly())
	best := senses[0]
	bestScore := -1.0
	for _, sp := range senses {
		var score float64
		for _, m := range members {
			if m.Node == x {
				continue
			}
			w := v.decay(m.Dist)
			if w < v.Cutoff {
				continue
			}
			mx := 0.0
			for _, tok := range contextTokens(m.Node, v.net) {
				for _, sj := range v.net.Senses(tok) {
					if s := sim.Sim(sp, sj); s > mx {
						mx = s
					}
				}
			}
			score += w * mx
		}
		if score > bestScore {
			bestScore = score
			best = sp
		}
	}
	return best, true
}

// contextTokens returns the lexicon-normalized tokens of a context node's
// raw label.
func contextTokens(n *xmltree.Node, net *semnet.Network) []string {
	tokens := lingproc.SplitCompound(n.Raw)
	for i, t := range tokens {
		tokens[i] = lingproc.Normalize(t, net)
	}
	return tokens
}

// Apply runs VSD over the target nodes, writing senses in place, and
// returns the number of senses assigned.
func (v *VSD) Apply(targets []*xmltree.Node) int {
	n := 0
	for _, x := range targets {
		if s, ok := v.Node(x); ok {
			x.Sense = string(s)
			n++
		}
	}
	return n
}
