// POST /adminz/reload: the operator's zero-downtime lexicon hot-swap
// endpoint. The staged pipeline (load → validate → canary → atomic swap)
// runs entirely off the request path — traffic on /v1/* keeps being
// served by the old snapshot until the swap lands, and keeps being
// served by it indefinitely when any stage fails: rollback is the
// default, not a recovery action. The endpoint is deliberately outside
// the per-route circuit breakers and the handler-concurrency semaphore:
// a saturated or tripped data plane is exactly when an operator needs
// the control plane to answer.
package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	xsdf "repro"
	"repro/xsdferrors"
)

// ReloadRequest is the body of POST /adminz/reload.
type ReloadRequest struct {
	// Path is the checksummed lexicon codec file to load, resolved on the
	// server's filesystem.
	Path string `json:"path"`
	// ExpectedChecksum, when non-empty, must match the file's footer
	// checksum or the reload fails at the load stage — the guard against
	// swapping in a file that changed between upload and reload.
	ExpectedChecksum string `json:"expected_checksum,omitempty"`
	// MinCanaryAssign overrides the canary acceptance threshold (the
	// minimum fraction of probe targets that must receive a sense);
	// 0 keeps the default.
	MinCanaryAssign float64 `json:"min_canary_assign,omitempty"`
}

// LexiconReport is the wire view of one lexicon snapshot's identity,
// shared by the reload response and /statusz.
type LexiconReport struct {
	Epoch      uint64 `json:"epoch"`
	Version    string `json:"version"`
	Checksum   string `json:"checksum"`
	Source     string `json:"source"`
	Concepts   int    `json:"concepts"`
	LoadedAt   string `json:"loaded_at"`
	LoadTimeMS int64  `json:"load_time_ms"`
}

// ReloadResponse is the body of a successful POST /adminz/reload.
type ReloadResponse struct {
	Lexicon LexiconReport `json:"lexicon"`
}

// LexiconStatusReport is the /statusz view of the lexicon subsystem:
// the serving snapshot's identity plus the cumulative swap counters.
type LexiconStatusReport struct {
	LexiconReport
	Swaps                uint64 `json:"swaps"`
	Rollbacks            uint64 `json:"rollbacks"`
	CanaryFailures       uint64 `json:"canary_failures"`
	RetiredAwaitingDrain int64  `json:"retired_awaiting_drain"`
}

func lexiconStatusReport(st xsdf.LexiconStats) LexiconStatusReport {
	return LexiconStatusReport{
		LexiconReport:        lexiconReport(st.Info),
		Swaps:                st.Swaps,
		Rollbacks:            st.Rollbacks,
		CanaryFailures:       st.CanaryFailures,
		RetiredAwaitingDrain: st.RetiredAwaitingDrain,
	}
}

func lexiconReport(info xsdf.LexiconInfo) LexiconReport {
	return LexiconReport{
		Epoch:      info.Epoch,
		Version:    info.Version,
		Checksum:   info.Checksum,
		Source:     info.Source,
		Concepts:   info.Concepts,
		LoadedAt:   info.LoadedAt.UTC().Format(time.RFC3339),
		LoadTimeMS: info.LoadTime.Milliseconds(),
	}
}

// serveReload: POST /adminz/reload.
func (s *Server) serveReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Path) == "" {
		s.writeErrorBody(w, http.StatusBadRequest,
			"server: reload request needs a path", xsdferrors.Kind(xsdferrors.ErrMalformedInput))
		return
	}
	info, err := s.fw.Reload(r.Context(), req.Path, xsdf.ReloadOptions{
		ExpectedChecksum: req.ExpectedChecksum,
		MinCanaryAssign:  req.MinCanaryAssign,
	})
	if err != nil {
		// The old snapshot is still serving; say so alongside the typed
		// stage failure so the operator knows nothing regressed.
		s.logger.Warn("lexicon reload failed",
			"path", req.Path, "error", err, "serving_epoch", info.Epoch)
		s.writeErrorBody(w, xsdferrors.HTTPStatus(err),
			fmt.Sprintf("%v (epoch %d still serving)", err, info.Epoch),
			xsdferrors.Kind(err))
		return
	}
	s.logger.Info("lexicon swapped",
		"path", req.Path, "epoch", info.Epoch, "version", info.Version,
		"checksum", info.Checksum, "load_ms", info.LoadTime.Milliseconds())
	s.writeJSON(w, http.StatusOK, ReloadResponse{Lexicon: lexiconReport(info)})
}
