// Package server is the resilient network serving layer of the XSDF
// framework: an HTTP JSON API over xsdf.Framework with per-request
// deadlines, request-size limits, panic recovery, typed status mapping,
// per-route circuit breaking, bounded handler concurrency, and graceful
// connection draining. It is the layer that turns the fault-tolerant
// pipeline (typed errors, admission gate, degradation ladder) into a
// daemon that stays up under real traffic (cmd/xsdfd).
//
// Endpoints:
//
//	POST /v1/disambiguate  one document  → Result | ErrorBody
//	POST /v1/batch         many documents → BatchResponse (per-doc status)
//	GET  /healthz          liveness: 200 while the process runs
//	GET  /readyz           readiness: 503 once draining begins
//	GET  /statusz          JSON operational snapshot
//
// Status mapping follows xsdferrors.HTTPStatus: overload → 429 (with a
// Retry-After hint sized from the admission gate's observed wait times),
// malformed input → 400, resource-guard violations → 413, expired budgets
// → 504, isolated panics → 500, and degraded-but-usable results → 200 with
// the achieved quality rung in the X-Xsdf-Quality header plus a JSON
// degradation report.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	xsdf "repro"
	"repro/internal/core"
	"repro/internal/disambig"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/xsdferrors"
)

// subtreeByteBuckets are the xsdf_stream_subtree_bytes histogram bounds:
// powers of four from 256 B to 16 MiB, spanning tiny leaf subtrees up to
// the default MaxSubtreeBytes budget.
var subtreeByteBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Config configures a Server. Framework is required; every other zero
// field selects the documented default.
type Config struct {
	// Framework is the disambiguation pipeline to serve. Its own
	// robustness options keep working underneath the server: the
	// admission gate sheds load as 429s, the degradation ladder turns
	// deadline pressure into 200-with-quality-header responses, and the
	// parse guards reject hostile inputs as 413s.
	Framework *xsdf.Framework

	// MaxBodyBytes bounds a request body (default 1 MiB). The limit is
	// the HTTP-layer counterpart of the xmltree parse guards: an
	// over-sized body is rejected as a 413 before the pipeline sees it,
	// and documents that fit still face MaxDepth/MaxNodes/MaxTokenBytes
	// at parse time.
	MaxBodyBytes int64

	// MaxTimeout caps any client-supplied budget (default 30s);
	// DefaultTimeout applies when the client sends none (default
	// MaxTimeout). The effective budget becomes the request context's
	// deadline, propagated into DisambiguateContext.
	MaxTimeout     time.Duration
	DefaultTimeout time.Duration

	// Concurrency bounds how many requests run the pipeline at once;
	// excess requests wait for a slot until their budget expires and are
	// then shed with 429. Non-positive selects
	// core.EffectiveWorkers(0) — the same "use all cores" rule as every
	// worker pool in the stack.
	Concurrency int

	// StreamWindow bounds how many documents one /v1/stream request keeps
	// in flight at once (default 4): the reader stops consuming the
	// request body while the window is full, so memory stays bounded no
	// matter how large the streamed batch is. A client may request a
	// smaller window per stream; never a larger one.
	StreamWindow int

	// StreamWriteTimeout is the per-line write deadline of /v1/stream
	// responses (default 10s). A client that stops consuming mid-stream
	// blocks the emitter until the deadline fires and is then shed — the
	// stream's handler slot and worker goroutines are freed instead of
	// being pinned by a slow reader.
	StreamWriteTimeout time.Duration

	// Breaker configures the per-route circuit breakers.
	Breaker BreakerOptions

	// Clock is the time source for the circuit breakers and the
	// Retry-After hint window (default faultinject.Now, so seeded
	// clock-skew schedules can age cooldowns deterministically in tests).
	Clock func() time.Time

	// Logger receives the server's structured logs: one request-completion
	// line per served request (trace ID, route, status, quality, per-stage
	// timings) plus operational warnings (panic recoveries, shed streams,
	// response-write failures). Nil selects slog.Default(), so panics are
	// never silently dropped by an embedder that forgot to wire logging;
	// pass NopLogger() to opt out explicitly.
	Logger *slog.Logger
}

// NopLogger returns a logger that discards everything — the explicit
// opt-out for embedders that truly want no operational logs. (The nil
// Config.Logger default is slog.Default(), not silence: a dropped panic
// log has historically been the difference between a bug report and a
// mystery.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler discards every record.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Server is the HTTP serving layer. Construct with New, mount with
// Handler or run with Serve/ListenAndServe, stop with Shutdown.
type Server struct {
	cfg     Config
	fw      *xsdf.Framework
	handler http.Handler
	httpSrv *http.Server

	sem       chan struct{} // handler-concurrency slots
	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{} // closed when draining begins
	inFlight  atomic.Int64
	served    atomic.Uint64
	start     time.Time

	statusMu     sync.Mutex
	statusCounts map[int]uint64

	// qualityCounts tallies served documents per degradation-ladder rung
	// ("full", "concept-only", "first-sense"), across the unary, batch,
	// and stream endpoints — the serving-layer view of how much quality
	// the ladder is currently trading for availability.
	qualityMu     sync.Mutex
	qualityCounts map[string]uint64

	// Stream lifecycle counters for /metricsz: documents delivered as
	// NDJSON lines, streams shed on a write timeout, and streams that
	// resumed a prior cursor sequence.
	streamDelivered atomic.Uint64
	streamShed      atomic.Uint64
	streamResumes   atomic.Uint64

	// Subtree-mode lifecycle: subtree result lines delivered, subtree
	// lines that carried a typed error, the guard-tripped slice of those
	// failures, and the encoded-size distribution of scanned subtrees.
	subtreeEmitted      atomic.Uint64
	subtreeFailed       atomic.Uint64
	subtreeGuardTripped atomic.Uint64
	subtreeBytes        *metrics.Histogram

	// gateWaits is the recent-window view of admission-gate waits that
	// sizes Retry-After hints for shed load.
	gateWaits *gateWaitWindow

	logger   *slog.Logger
	breakers map[string]*breaker
}

// New builds a Server over cfg.Framework.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("server: nil Framework")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.DefaultTimeout <= 0 || cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	cfg.Concurrency = core.EffectiveWorkers(cfg.Concurrency)
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 4
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = faultinject.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}

	s := &Server{
		cfg:           cfg,
		fw:            cfg.Framework,
		sem:           make(chan struct{}, cfg.Concurrency),
		drainCh:       make(chan struct{}),
		start:         time.Now(),
		statusCounts:  make(map[int]uint64),
		qualityCounts: make(map[string]uint64),
		subtreeBytes:  metrics.NewHistogram(subtreeByteBuckets),
		gateWaits:     newGateWaitWindow(cfg.Clock),
		logger:        cfg.Logger,
		breakers: map[string]*breaker{
			"disambiguate": newBreaker(cfg.Breaker, cfg.Clock),
			"batch":        newBreaker(cfg.Breaker, cfg.Clock),
			"stream":       newBreaker(cfg.Breaker, cfg.Clock),
		},
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.Handle("POST /v1/disambiguate", s.guarded("disambiguate", s.serveDisambiguate))
	mux.Handle("POST /v1/batch", s.guarded("batch", s.serveBatch))
	mux.Handle("POST /v1/stream", s.guarded("stream", s.serveStream))
	// Control plane: no breaker, no concurrency slot — an operator must be
	// able to swap the lexicon while the data plane is saturated.
	mux.HandleFunc("POST /adminz/reload", s.serveReload)
	s.handler = s.withAccounting(s.withRecovery(mux))

	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// Handler returns the fully middleware-wrapped handler, for mounting in
// tests (httptest) or a caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown. Like http.Server.Serve
// it returns http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.httpSrv.Serve(l) }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Drain marks the server not-ready: /readyz answers 503 so load balancers
// stop routing here, while open connections and in-flight requests keep
// being served. In-flight streams observe the drain and wrap up — they
// finish emitting the lines of their in-flight window, send a "draining"
// terminal line, and end, so a resumable client reconnects elsewhere
// instead of being cut mid-line. Shutdown calls Drain implicitly; calling
// it earlier gives orchestrators a pre-stop window.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Shutdown gracefully stops the server: it drains (readyz flips to 503),
// closes the listeners so new connections are refused, and waits for
// in-flight requests to finish — each one receives its complete response.
// It returns nil on a clean drain, or ctx's error when in-flight work
// outlives the caller's drain deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	return s.httpSrv.Shutdown(ctx)
}

// InFlight reports how many requests are currently being served.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// withAccounting is the outermost middleware: it assigns the request its
// trace ID (accepting a client-supplied X-Request-Id, generating one
// otherwise), tracks in-flight/served counts and the status
// distribution, folds fresh gate statistics into the Retry-After hint
// window, and emits the one structured log line that reconstructs the
// request — trace ID, route, status, quality, duration, and the
// pipeline's per-stage timings.
func (s *Server) withAccounting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		info := &requestInfo{id: sanitizeRequestID(r.Header.Get(RequestIDHeader))}
		if info.id == "" {
			info.id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, info.id)
		r = r.WithContext(withRequestInfo(r.Context(), info))

		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		s.served.Add(1)
		s.countStatus(rec.Status())
		if gs, ok := s.fw.GateStats(); ok {
			s.gateWaits.observe(gs)
		}

		// Probe endpoints log at Debug (scrapes every few seconds are
		// noise at Info); API requests log at Info.
		level := slog.LevelInfo
		if r.Method == http.MethodGet {
			level = slog.LevelDebug
		}
		info.mu.Lock()
		stages, quality := info.stages, info.quality
		info.mu.Unlock()
		attrs := []any{
			slog.String("request_id", info.id),
			slog.String("method", r.Method),
			slog.String("route", r.URL.Path),
			slog.Int("status", rec.Status()),
			slog.Float64("duration_ms", float64(elapsed.Microseconds())/1e3),
		}
		if quality != "" {
			attrs = append(attrs, slog.String("quality", quality))
		}
		if len(stages) > 0 {
			attrs = append(attrs, slog.String("stages", stageLine(stages)))
		}
		s.logger.Log(r.Context(), level, "request", attrs...)
	})
}

// withRecovery converts a handler panic into a 500 carrying a
// *xsdferrors.PanicError-shaped body, without killing the process. The
// pipeline's own entry points already box their panics; this is the
// defense line for handler bugs and injected faults above the pipeline.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					// A deliberate connection abort (the streaming
					// endpoint's injected mid-stream disconnect): let
					// net/http sever the connection instead of dressing it
					// up as a 500.
					panic(v)
				}
				pe := &xsdferrors.PanicError{Doc: -1, Value: v, Stack: debug.Stack()}
				s.logger.Error("panic recovered",
					slog.String("request_id", RequestIDFromContext(r.Context())),
					slog.String("route", r.URL.Path),
					slog.Any("panic", v),
					slog.String("stack", string(pe.Stack)))
				// Best effort: if the handler already wrote, the connection
				// carries a truncated response and this header set is a no-op.
				s.writeErrorBody(w, xsdferrors.HTTPStatus(pe), pe.Error(), xsdferrors.Kind(pe))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// guarded wraps a route handler with its circuit breaker: an open circuit
// fails fast with 503 + Retry-After, and 5xx outcomes feed the breaker's
// rolling window.
func (s *Server) guarded(route string, fn http.HandlerFunc) http.Handler {
	br := s.breakers[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		done, retryAfter, admitted := br.allow()
		if !admitted {
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
			s.writeErrorBody(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server: %s circuit open, retry in %v", route, retryAfter.Round(time.Millisecond)),
				"circuit-open")
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		fn(rec, r)
		done(rec.Status() >= 500)
	})
}

// handleHealthz: liveness — the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: readiness — 503 once draining has begun, so orchestrators
// stop routing new work here while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// GateReport is the statusz view of the admission gate.
type GateReport struct {
	Docs      int    `json:"docs_in_flight"`
	Nodes     int    `json:"nodes_in_flight"`
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Waited    uint64 `json:"waited"`
	AvgWaitMS int64  `json:"avg_wait_ms"`
}

// StageReport is the statusz view of one pipeline stage's cumulative
// counters. Durations are fractional microseconds so sub-microsecond
// stages (the guard on a small document) still report non-zero time.
type StageReport struct {
	Stage   string  `json:"stage"`
	Calls   uint64  `json:"calls"`
	Errors  uint64  `json:"errors"`
	Items   uint64  `json:"items"`
	TotalUS float64 `json:"total_us"`
	AvgUS   float64 `json:"avg_us"`
}

// StatusReport is the /statusz body.
type StatusReport struct {
	UptimeSeconds int64                    `json:"uptime_seconds"`
	Draining      bool                     `json:"draining"`
	InFlight      int64                    `json:"in_flight"`
	Served        uint64                   `json:"served"`
	Concurrency   int                      `json:"concurrency"`
	StatusCounts  map[string]uint64        `json:"status_counts"`
	Gate          *GateReport              `json:"gate,omitempty"`
	Cache         disambig.CacheStats      `json:"cache"`
	Breakers      map[string]BreakerReport `json:"breakers"`
	// Lexicon identifies the currently serving lexicon snapshot, with the
	// cumulative hot-swap counters alongside it.
	Lexicon LexiconStatusReport `json:"lexicon"`
	// Stages is the framework's cumulative per-stage pipeline accounting,
	// in execution order — the serving-layer answer to "where does the
	// time go".
	Stages []StageReport `json:"stages"`
}

// handleStatusz: one JSON snapshot of everything an operator asks first.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	rep := StatusReport{
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Draining:      s.draining.Load(),
		InFlight:      s.inFlight.Load(),
		Served:        s.served.Load(),
		Concurrency:   s.cfg.Concurrency,
		StatusCounts:  map[string]uint64{},
		Cache:         s.fw.CacheStats(),
		Breakers:      map[string]BreakerReport{},
		Lexicon:       lexiconStatusReport(s.fw.LexiconStats()),
	}
	s.statusMu.Lock()
	for code, n := range s.statusCounts {
		rep.StatusCounts[strconv.Itoa(code)] = n
	}
	s.statusMu.Unlock()
	if gs, ok := s.fw.GateStats(); ok {
		rep.Gate = &GateReport{
			Docs: gs.Docs, Nodes: gs.Nodes,
			Admitted: gs.Admitted, Rejected: gs.Rejected, Waited: gs.Waited,
			AvgWaitMS: gs.AvgWait.Milliseconds(),
		}
	}
	for route, br := range s.breakers {
		rep.Breakers[route] = br.report()
	}
	for _, st := range s.fw.StageStats() {
		sr := StageReport{
			Stage:   st.Stage,
			Calls:   st.Calls,
			Errors:  st.Errors,
			Items:   st.Items,
			TotalUS: float64(st.Total.Nanoseconds()) / 1e3,
		}
		if st.Calls > 0 {
			sr.AvgUS = sr.TotalUS / float64(st.Calls)
		}
		rep.Stages = append(rep.Stages, sr)
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// serveDisambiguate: POST /v1/disambiguate.
func (s *Server) serveDisambiguate(w http.ResponseWriter, r *http.Request) {
	var req DisambiguateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Document) == "" {
		s.writeErrorBody(w, http.StatusBadRequest,
			"server: empty document", xsdferrors.Kind(xsdferrors.ErrMalformedInput))
		return
	}
	ctx, cancel := s.requestContext(r, req.BudgetMS)
	defer cancel()

	release, err := s.acquireSlot(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	if err := faultinject.ServerFault(); err != nil {
		s.writeErrorBody(w, http.StatusInternalServerError, err.Error(), "injected")
		return
	}

	res, runErr := s.fw.DisambiguateContext(ctx, strings.NewReader(req.Document))
	if res == nil {
		s.writeError(w, runErr)
		return
	}
	// Success — possibly degraded (runErr matching ErrDegraded rides
	// alongside a usable partial result and still answers 200).
	out := resultFromRun(res, runErr)
	noteResult(ctx, res.Stages, out.Quality)
	s.countQuality(out.Quality)
	w.Header().Set(QualityHeader, out.Quality)
	s.writeJSON(w, http.StatusOK, out)
}

// serveBatch: POST /v1/batch. The response is always a 200 envelope with
// one per-document status mirroring what each document would have
// received alone, so one poisoned or oversized document never discards
// its neighbors — the HTTP face of BatchError.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Documents) == 0 {
		s.writeErrorBody(w, http.StatusBadRequest,
			"server: empty batch", xsdferrors.Kind(xsdferrors.ErrMalformedInput))
		return
	}
	ctx, cancel := s.requestContext(r, req.BudgetMS)
	defer cancel()

	release, err := s.acquireSlot(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	if err := faultinject.ServerFault(); err != nil {
		s.writeErrorBody(w, http.StatusInternalServerError, err.Error(), "injected")
		return
	}

	// Parse every document first; parse failures become per-item errors
	// and only the well-formed remainder enters the batch pipeline.
	items := make([]BatchItem, len(req.Documents))
	var trees []*xsdf.Tree
	var treeIdx []int
	for i, doc := range req.Documents {
		t, err := s.fw.ParseTree(strings.NewReader(doc))
		if err != nil {
			items[i] = errorItem(err)
			continue
		}
		trees = append(trees, t)
		treeIdx = append(treeIdx, i)
	}

	results, batchErr := s.fw.DisambiguateBatchContext(ctx, trees, xsdf.BatchOptions{})
	var be *xsdf.BatchError
	if batchErr != nil && !errors.As(batchErr, &be) {
		s.writeError(w, batchErr)
		return
	}
	for j, res := range results {
		var docErr error
		if be != nil {
			docErr = be.Errs[j]
		}
		i := treeIdx[j]
		if res == nil {
			items[i] = errorItem(docErr)
			continue
		}
		item := BatchItem{Status: http.StatusOK, Result: resultFromRun(res, docErr)}
		s.countQuality(item.Result.Quality)
		items[i] = item
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

// errorItem maps one document's pipeline error onto its wire item.
func errorItem(err error) BatchItem {
	if err == nil {
		err = fmt.Errorf("server: document produced no result and no error")
	}
	return BatchItem{
		Status: xsdferrors.HTTPStatus(err),
		Error:  err.Error(),
		Kind:   xsdferrors.Kind(err),
	}
}

// requestContext derives the request's processing context: the client
// budget (clamped by MaxTimeout, defaulted by DefaultTimeout) becomes a
// deadline layered over the connection's own cancellation.
func (s *Server) requestContext(r *http.Request, budgetMS int64) (context.Context, context.CancelFunc) {
	budget := s.cfg.DefaultTimeout
	if budgetMS > 0 {
		budget = time.Duration(budgetMS) * time.Millisecond
		if budget > s.cfg.MaxTimeout {
			budget = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), budget)
}

// acquireSlot takes a handler-concurrency slot, waiting until the request
// context dies; saturation past the budget is shed as overload.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: handler concurrency %d saturated (%v)",
			xsdferrors.ErrOverloaded, s.cfg.Concurrency, ctx.Err())
	}
}

// decodeBody JSON-decodes the size-limited request body into v, writing
// the typed error response itself when decoding fails.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, &xsdferrors.LimitError{
				Limit: "body-bytes", Max: int(mbe.Limit), Actual: int(mbe.Limit) + 1,
			})
			return false
		}
		s.writeErrorBody(w, http.StatusBadRequest,
			fmt.Sprintf("server: bad request body: %v", err),
			xsdferrors.Kind(xsdferrors.ErrMalformedInput))
		return false
	}
	return true
}

// writeError maps a pipeline error onto its HTTP response, adding the
// Retry-After hint on overload.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := xsdferrors.HTTPStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfterHint()))
	}
	s.writeErrorBody(w, code, err.Error(), xsdferrors.Kind(err))
}

// retryAfterHint sizes the Retry-After answer for shed load from the
// admission gate's recently observed waits: when documents admitted in
// the last few seconds waited w on average, telling the client to come
// back after ~2w gives capacity a realistic chance to free. The window
// matters: a lifetime average is dominated by history, so after hours of
// light traffic a sudden overload would hint near zero exactly when the
// hint should be large (and keep hinting large long after an overload
// has passed). Without recent waits, hint one second.
func (s *Server) retryAfterHint() time.Duration {
	if gs, ok := s.fw.GateStats(); ok {
		s.gateWaits.observe(gs)
	}
	if avg, ok := s.gateWaits.recentAvg(); ok && avg > 0 {
		hint := 2 * avg
		if hint > 30*time.Second {
			hint = 30 * time.Second
		}
		return hint
	}
	return time.Second
}

// retryAfterSeconds renders d as the integral-seconds form of Retry-After,
// rounding up so "soon" never becomes "now".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// writeErrorBody writes the standard error envelope.
func (s *Server) writeErrorBody(w http.ResponseWriter, code int, msg, kind string) {
	s.writeJSON(w, code, ErrorBody{Error: msg, Kind: kind})
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Warn("writing response failed", slog.Any("error", err))
	}
}

// countStatus records one response's status code.
func (s *Server) countStatus(code int) {
	s.statusMu.Lock()
	s.statusCounts[code]++
	s.statusMu.Unlock()
}

// countQuality records one served document's degradation-ladder rung.
func (s *Server) countQuality(quality string) {
	if quality == "" {
		return
	}
	s.qualityMu.Lock()
	s.qualityCounts[quality]++
	s.qualityMu.Unlock()
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so the
// streaming endpoint's per-line flushes and write deadlines reach the real
// connection through the middleware wrappers.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Status is the recorded code (200 when the handler wrote a body without
// an explicit WriteHeader; 200 also when it wrote nothing at all, which
// matches net/http's behavior at end of handler).
func (r *statusRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}
