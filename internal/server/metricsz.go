// GET /metricsz: the Prometheus text exposition of everything the serving
// stack measures — stage latency histograms, cache hit rates, admission
// gate pressure (occupancy, shed counts, wait distribution), circuit
// breaker states and rolling windows, response status/quality mixes, and
// stream lifecycle counters. The format is Prometheus text 0.0.4, written
// by the hand-rolled expositor in internal/metrics (no client library —
// see that package's doc for why), so any Prometheus-compatible scraper
// can consume it unmodified.
package server

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// metricsContentType is the Prometheus text exposition media type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// breakerStateValue maps a breaker's reported state onto a numeric gauge:
// the conventional closed=0 / half-open=1 / open=2 encoding (alert on
// value >= 2), with -1 for a disabled breaker so dashboards can tell
// "never trips" from "closed".
func breakerStateValue(state string) float64 {
	switch state {
	case "closed":
		return 0
	case "half-open":
		return 1
	case "open":
		return 2
	default: // "disabled"
		return -1
	}
}

// handleMetricsz: GET /metricsz.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	e := metrics.NewExpositor(w)

	// Process-level gauges.
	e.Family("xsdf_uptime_seconds", "Seconds since the server started.", "gauge")
	e.Sample("", nil, time.Since(s.start).Seconds())
	e.Family("xsdf_draining", "1 once graceful drain has begun, else 0.", "gauge")
	e.Sample("", nil, boolValue(s.draining.Load()))

	// HTTP accounting.
	e.Family("xsdf_http_requests_in_flight", "Requests currently being served.", "gauge")
	e.Sample("", nil, float64(s.inFlight.Load()))
	e.Family("xsdf_http_requests_total", "Requests served since start.", "counter")
	e.Sample("", nil, float64(s.served.Load()))

	e.Family("xsdf_http_responses_total", "Responses by HTTP status code.", "counter")
	s.statusMu.Lock()
	codes := make([]int, 0, len(s.statusCounts))
	for code := range s.statusCounts {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		e.Sample("", []metrics.Label{{Name: "code", Value: strconv.Itoa(code)}},
			float64(s.statusCounts[code]))
	}
	s.statusMu.Unlock()

	e.Family("xsdf_response_quality_total",
		"Documents served by degradation-ladder rung, across all endpoints.", "counter")
	s.qualityMu.Lock()
	rungs := make([]string, 0, len(s.qualityCounts))
	for q := range s.qualityCounts {
		rungs = append(rungs, q)
	}
	sort.Strings(rungs)
	for _, q := range rungs {
		e.Sample("", []metrics.Label{{Name: "quality", Value: q}}, float64(s.qualityCounts[q]))
	}
	s.qualityMu.Unlock()

	// Pipeline stages: latency distributions plus cumulative counters.
	// The histogram only sees stages that actually ran, so its count can
	// trail xsdf_stage_calls_total after cancellations — by design.
	e.Family("xsdf_stage_duration_seconds",
		"Pipeline stage execution latency (executed stages only).", "histogram")
	for _, sl := range s.fw.StageLatencies() {
		e.Histogram([]metrics.Label{{Name: "stage", Value: sl.Stage}}, sl.Latency)
	}
	stageStats := s.fw.StageStats()
	e.Family("xsdf_stage_calls_total", "Pipeline stage invocations.", "counter")
	for _, st := range stageStats {
		e.Sample("", []metrics.Label{{Name: "stage", Value: st.Stage}}, float64(st.Calls))
	}
	e.Family("xsdf_stage_errors_total", "Pipeline stage invocations that failed.", "counter")
	for _, st := range stageStats {
		e.Sample("", []metrics.Label{{Name: "stage", Value: st.Stage}}, float64(st.Errors))
	}
	e.Family("xsdf_stage_items_total", "Items processed by each pipeline stage.", "counter")
	for _, st := range stageStats {
		e.Sample("", []metrics.Label{{Name: "stage", Value: st.Stage}}, float64(st.Items))
	}

	// Lexicon hot-swap subsystem. The epoch gauge carries the version and
	// checksum as labels so a dashboard shows identity alongside the
	// number; counters track the swap/rollback/canary history and the
	// drain gauge exposes retired snapshots still pinned by in-flight runs.
	ls := s.fw.LexiconStats()
	e.Family("xsdf_lexicon_epoch",
		"Serving lexicon snapshot epoch (labels carry version and checksum).", "gauge")
	e.Sample("", []metrics.Label{
		{Name: "version", Value: ls.Info.Version},
		{Name: "checksum", Value: ls.Info.Checksum},
	}, float64(ls.Info.Epoch))
	e.Family("xsdf_lexicon_concepts", "Concept count of the serving lexicon.", "gauge")
	e.Sample("", nil, float64(ls.Info.Concepts))
	e.Family("xsdf_lexicon_swaps_total", "Successful lexicon hot-swaps.", "counter")
	e.Sample("", nil, float64(ls.Swaps))
	e.Family("xsdf_lexicon_rollbacks_total",
		"Failed reloads rolled back to the serving lexicon.", "counter")
	e.Sample("", nil, float64(ls.Rollbacks))
	e.Family("xsdf_lexicon_canary_failures_total",
		"Reload candidates rejected by the canary stage.", "counter")
	e.Sample("", nil, float64(ls.CanaryFailures))
	e.Family("xsdf_lexicon_retired_awaiting_drain",
		"Retired lexicon snapshots still pinned by in-flight runs.", "gauge")
	e.Sample("", nil, float64(ls.RetiredAwaitingDrain))
	e.Family("xsdf_lexicon_reload_duration_seconds",
		"Staged reload pipeline latency, success or rollback.", "histogram")
	e.Histogram(nil, ls.ReloadLatency)

	// Disambiguation caches.
	cs := s.fw.CacheStats()
	e.Family("xsdf_cache_hits_total", "Disambiguation cache hits.", "counter")
	e.Sample("", []metrics.Label{{Name: "cache", Value: "similarity"}}, float64(cs.SimHits))
	e.Sample("", []metrics.Label{{Name: "cache", Value: "vector"}}, float64(cs.VectorHits))
	e.Family("xsdf_cache_misses_total", "Disambiguation cache misses.", "counter")
	e.Sample("", []metrics.Label{{Name: "cache", Value: "similarity"}}, float64(cs.SimMisses))
	e.Sample("", []metrics.Label{{Name: "cache", Value: "vector"}}, float64(cs.VectorMisses))

	// Admission gate (absent when admission is disabled).
	if gs, ok := s.fw.GateStats(); ok {
		e.Family("xsdf_gate_in_flight", "Admission gate occupancy by resource.", "gauge")
		e.Sample("", []metrics.Label{{Name: "resource", Value: "docs"}}, float64(gs.Docs))
		e.Sample("", []metrics.Label{{Name: "resource", Value: "nodes"}}, float64(gs.Nodes))
		e.Family("xsdf_gate_admitted_total", "Documents admitted by the gate.", "counter")
		e.Sample("", nil, float64(gs.Admitted))
		e.Family("xsdf_gate_rejected_total", "Documents shed by the gate as overload.", "counter")
		e.Sample("", nil, float64(gs.Rejected))
		e.Family("xsdf_gate_waited_total", "Admitted documents that had to wait for capacity.", "counter")
		e.Sample("", nil, float64(gs.Waited))
	}
	if hist, ok := s.fw.GateWaitLatencies(); ok {
		e.Family("xsdf_gate_wait_seconds",
			"Time documents spent blocked on the admission gate (admitted or shed).", "histogram")
		e.Histogram(nil, hist)
	}

	// Circuit breakers: numeric state plus the rolling window — gauges,
	// not counters, because the window decays.
	routes := make([]string, 0, len(s.breakers))
	for route := range s.breakers {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	reports := make(map[string]BreakerReport, len(routes))
	for _, route := range routes {
		reports[route] = s.breakers[route].report()
	}
	e.Family("xsdf_breaker_state",
		"Circuit breaker state: closed=0, half-open=1, open=2, disabled=-1.", "gauge")
	for _, route := range routes {
		e.Sample("", []metrics.Label{{Name: "route", Value: route}},
			breakerStateValue(reports[route].State))
	}
	e.Family("xsdf_breaker_window_ok", "Successes in the breaker's rolling window.", "gauge")
	for _, route := range routes {
		e.Sample("", []metrics.Label{{Name: "route", Value: route}}, float64(reports[route].OK))
	}
	e.Family("xsdf_breaker_window_failures", "Failures in the breaker's rolling window.", "gauge")
	for _, route := range routes {
		e.Sample("", []metrics.Label{{Name: "route", Value: route}}, float64(reports[route].Failures))
	}

	// Stream lifecycle.
	e.Family("xsdf_stream_documents_delivered_total", "NDJSON result lines delivered.", "counter")
	e.Sample("", nil, float64(s.streamDelivered.Load()))
	e.Family("xsdf_stream_sheds_total", "Streams shed on a write timeout.", "counter")
	e.Sample("", nil, float64(s.streamShed.Load()))
	e.Family("xsdf_stream_resumes_total", "Streams that resumed a prior cursor sequence.", "counter")
	e.Sample("", nil, float64(s.streamResumes.Load()))
	e.Family("xsdf_stream_window_limit", "Configured per-stream in-flight window.", "gauge")
	e.Sample("", nil, float64(s.cfg.StreamWindow))

	// Subtree mode (incremental parsing over /v1/stream).
	e.Family("xsdf_stream_subtrees_emitted_total",
		"Subtree result lines delivered by subtree-mode streams.", "counter")
	e.Sample("", nil, float64(s.subtreeEmitted.Load()))
	e.Family("xsdf_stream_subtrees_failed_total",
		"Subtree lines delivered with a typed error.", "counter")
	e.Sample("", nil, float64(s.subtreeFailed.Load()))
	e.Family("xsdf_stream_subtrees_guard_tripped_total",
		"Failed subtree lines whose error was a resource-guard limit.", "counter")
	e.Sample("", nil, float64(s.subtreeGuardTripped.Load()))
	e.Family("xsdf_stream_subtree_bytes",
		"Encoded input size of subtrees scanned in subtree mode.", "histogram")
	e.Histogram(nil, s.subtreeBytes.Snapshot())

	if err := e.Err(); err != nil {
		s.logger.Warn("writing metrics failed", "error", err)
	}
}

// boolValue renders a bool as the conventional 0/1 gauge value.
func boolValue(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
