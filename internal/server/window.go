package server

import "time"

// ringWindow is the rolling-window machinery shared by the circuit
// breaker and the Retry-After hint: a fixed ring of time-sliced buckets
// advanced by an injected clock, so "what happened recently" questions
// are answered from the last Window of wall time instead of from
// lifetime averages that go stale. B is the per-slice accumulator; a
// slice that falls out of the window is zeroed.
//
// The ring is not self-synchronizing — each owner guards it with its own
// mutex, exactly as the breaker always has.
type ringWindow[B any] struct {
	span     time.Duration // one bucket's time slice
	buckets  []B
	cur      int       // index of the current bucket
	curStart time.Time // start of the current bucket's slice
}

// newRingWindow builds a ring covering window across n buckets, anchored
// at now.
func newRingWindow[B any](window time.Duration, n int, now time.Time) *ringWindow[B] {
	return &ringWindow[B]{
		span:     window / time.Duration(n),
		buckets:  make([]B, n),
		curStart: now,
	}
}

// advance rotates the ring forward to now, zeroing buckets that fell out
// of the window.
func (r *ringWindow[B]) advance(now time.Time) {
	var zero B
	steps := 0
	for now.Sub(r.curStart) >= r.span && steps < len(r.buckets) {
		r.cur = (r.cur + 1) % len(r.buckets)
		r.buckets[r.cur] = zero
		r.curStart = r.curStart.Add(r.span)
		steps++
	}
	if steps == len(r.buckets) {
		// The whole window elapsed; re-anchor instead of looping further.
		r.curStart = now
	}
}

// current returns the bucket accumulating now's slice.
func (r *ringWindow[B]) current() *B { return &r.buckets[r.cur] }

// fold visits every bucket in the window.
func (r *ringWindow[B]) fold(f func(*B)) {
	for i := range r.buckets {
		f(&r.buckets[i])
	}
}

// reset zeroes the whole window and re-anchors it at now.
func (r *ringWindow[B]) reset(now time.Time) {
	var zero B
	for i := range r.buckets {
		r.buckets[i] = zero
	}
	r.cur = 0
	r.curStart = now
}
