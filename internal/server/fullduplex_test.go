package server_test

// Regression test for the full-duplex streaming fix: a request body
// larger than the reader's buffer, streamed while the server is already
// emitting response lines. Without ResponseController.EnableFullDuplex,
// net/http reacts to the first response write by discarding and closing
// the unconsumed request body (the Issue 15527 deadlock guard), which
// races with the stream's reader goroutine: body lines tear mid-JSON
// and the stream ends in a spurious malformed-input line plus a body
// read error. The whole 60-document corpus (~190 KiB, several times the
// 64 KiB scanner buffer) must therefore flow through one attempt with
// every line a 200 — in both document and subtree mode.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/server/client"
)

func TestStreamLargeBodyFullDuplex(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Framework: fw, Logger: server.NopLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gen := corpus.Generate(42)
	var docs []string
	total := 0
	// Three passes over the corpus: enough body volume that the reader
	// cannot have buffered it all by the time the first line flushes.
	for pass := 0; pass < 3; pass++ {
		for _, d := range gen {
			var buf bytes.Buffer
			if err := d.Tree.WriteXML(&buf, false); err != nil {
				t.Fatal(err)
			}
			docs = append(docs, buf.String())
			total += buf.Len()
		}
	}
	if total < 128<<10 {
		t.Fatalf("workload is %d bytes; the regression needs a body well past the 64 KiB scanner buffer", total)
	}

	// MaxRetries 0: the point is that the stream completes in ONE attempt.
	// Before the fix this workload deterministically tore a body line and
	// forced a resume.
	c, err := client.New(client.Options{BaseURL: ts.URL, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]client.StreamOptions{
		"document": {},
		"subtree":  {Subtree: true},
	} {
		t.Run(name, func(t *testing.T) {
			stats, err := c.Stream(t.Context(), docs, opts, func(line server.StreamLine) error {
				if line.Status != http.StatusOK {
					t.Errorf("cursor %d: status %d kind %s error %q, want 200", line.Cursor, line.Status, line.Kind, line.Error)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("stream failed: %v (stats %+v)", err, stats)
			}
			if stats.Resumes != 0 || stats.Attempts != 1 {
				t.Errorf("stats %+v, want a single uninterrupted attempt", stats)
			}
			if stats.Delivered < int64(len(docs)) {
				t.Errorf("delivered %d lines, want at least one per document (%d)", stats.Delivered, len(docs))
			}
		})
	}
}
