package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// cutStreamHandler scripts a resumable stream server: the first attempt
// delivers lines up to cutAfter and then severs the connection without a
// done-line; later attempts honor resume_from and finish cleanly.
type cutStreamHandler struct {
	mu       sync.Mutex
	total    int64
	cutAfter int64 // first attempt is cut after this cursor (0 = never)
	headers  []server.StreamHeader
}

func (h *cutStreamHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var hdr server.StreamHeader
	sc := bufio.NewScanner(r.Body)
	if !sc.Scan() {
		http.Error(w, "no header", http.StatusBadRequest)
		return
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	attempt := len(h.headers)
	h.headers = append(h.headers, hdr)
	h.mu.Unlock()

	w.Header().Set("Content-Type", server.NDJSONContentType)
	enc := json.NewEncoder(w)
	fl := w.(http.Flusher)
	var delivered int64
	for cursor := hdr.ResumeFrom + 1; cursor <= h.total; cursor++ {
		enc.Encode(server.StreamLine{
			Cursor: cursor, Status: http.StatusOK,
			Result: &server.Result{Targets: 1, Assigned: 1, Quality: "full"},
		})
		fl.Flush()
		delivered++
		if attempt == 0 && h.cutAfter > 0 && cursor == h.cutAfter {
			// Sever without a done-line: the wire-cut the client must survive.
			panic(http.ErrAbortHandler)
		}
	}
	enc.Encode(server.StreamLine{Done: true, Delivered: delivered})
	fl.Flush()
}

func newStreamClient(t *testing.T, h http.Handler) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(Options{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStreamResumesAfterCut: a stream cut mid-flight resumes from the
// last delivered cursor — the second attempt advertises resume_from, and
// the callback sees every cursor exactly once, in order.
func TestStreamResumesAfterCut(t *testing.T) {
	h := &cutStreamHandler{total: 5, cutAfter: 2}
	c := newStreamClient(t, h)

	var got []int64
	stats, err := c.Stream(context.Background(), []string{"a", "b", "c", "d", "e"},
		StreamOptions{}, func(line server.StreamLine) error {
			got = append(got, line.Cursor)
			return nil
		})
	if err != nil {
		t.Fatalf("Stream = %v", err)
	}
	want := []int64{1, 2, 3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cursors seen %v, want %v exactly once each", got, want)
	}
	if stats.Delivered != 5 || stats.Resumes != 1 || stats.Attempts != 2 {
		t.Errorf("stats = %+v, want 5 delivered over 2 attempts with 1 resume", stats)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.headers) != 2 || h.headers[0].ResumeFrom != 0 || h.headers[1].ResumeFrom != 2 {
		t.Errorf("headers %+v, want resume_from 0 then 2", h.headers)
	}
}

// TestStreamCleanFirstAttempt: no cut, one attempt, no resumes.
func TestStreamCleanFirstAttempt(t *testing.T) {
	h := &cutStreamHandler{total: 3}
	c := newStreamClient(t, h)
	var n int
	stats, err := c.Stream(context.Background(), []string{"a", "b", "c"},
		StreamOptions{}, func(server.StreamLine) error { n++; return nil })
	if err != nil || n != 3 {
		t.Fatalf("err=%v callbacks=%d, want clean 3-line stream", err, n)
	}
	if stats.Attempts != 1 || stats.Resumes != 0 {
		t.Errorf("stats = %+v, want a single attempt", stats)
	}
}

// TestStreamNonRetryableIsFinal: a 400 answer ends the stream immediately
// instead of hammering the server with resumes.
func TestStreamNonRetryableIsFinal(t *testing.T) {
	var attempts atomic.Int64
	c := newStreamClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "bad header", Kind: "malformed-input"})
	}))
	_, err := c.Stream(context.Background(), []string{"a"}, StreamOptions{},
		func(server.StreamLine) error { return nil })
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want the 400 APIError", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("%d attempts, want 1 (client errors are final)", n)
	}
}

// TestStreamCallbackAbort: fn returning an error abandons the stream
// without resuming.
func TestStreamCallbackAbort(t *testing.T) {
	h := &cutStreamHandler{total: 5}
	c := newStreamClient(t, h)
	sentinel := errors.New("stop here")
	var seen int
	_, err := c.Stream(context.Background(), []string{"a", "b", "c", "d", "e"},
		StreamOptions{}, func(server.StreamLine) error {
			seen++
			if seen == 2 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, ErrStreamAborted) || !strings.Contains(err.Error(), "stop here") {
		t.Fatalf("err = %v, want ErrStreamAborted carrying the callback error", err)
	}
	if seen != 2 {
		t.Errorf("callback ran %d times, want 2 (no resume after abort)", seen)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.headers) != 1 {
		t.Errorf("%d attempts, want 1 (aborted streams are not resumed)", len(h.headers))
	}
}

// TestStreamStallsOutWithoutProgress: a server that always cuts before
// the first line exhausts the no-progress allowance instead of looping
// forever.
func TestStreamStallsOutWithoutProgress(t *testing.T) {
	var attempts atomic.Int64
	c := newStreamClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		panic(http.ErrAbortHandler)
	}))
	_, err := c.Stream(context.Background(), []string{"a"}, StreamOptions{},
		func(server.StreamLine) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want a stall error", err)
	}
	if n := attempts.Load(); n < 2 {
		t.Errorf("%d attempts, want retries before stalling out", n)
	}
}

// TestStreamDrainingResumes: a "draining" terminal line is retryable —
// the client backs off and resumes, and the resumed attempt completes.
func TestStreamDrainingResumes(t *testing.T) {
	var mu sync.Mutex
	attempt := 0
	c := newStreamClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempt++
		first := attempt == 1
		mu.Unlock()
		var hdr server.StreamHeader
		sc := bufio.NewScanner(r.Body)
		sc.Scan()
		json.Unmarshal(sc.Bytes(), &hdr)
		w.Header().Set("Content-Type", server.NDJSONContentType)
		enc := json.NewEncoder(w)
		if first {
			enc.Encode(server.StreamLine{Cursor: 1, Status: http.StatusOK,
				Result: &server.Result{Targets: 1, Assigned: 1, Quality: "full"}})
			enc.Encode(server.StreamLine{Kind: "draining", Error: "server draining", Delivered: 1})
			return
		}
		for cursor := hdr.ResumeFrom + 1; cursor <= 2; cursor++ {
			enc.Encode(server.StreamLine{Cursor: cursor, Status: http.StatusOK,
				Result: &server.Result{Targets: 1, Assigned: 1, Quality: "full"}})
		}
		enc.Encode(server.StreamLine{Done: true, Delivered: 2 - hdr.ResumeFrom})
	}))

	var got []int64
	stats, err := c.Stream(context.Background(), []string{"a", "b"}, StreamOptions{},
		func(line server.StreamLine) error { got = append(got, line.Cursor); return nil })
	if err != nil {
		t.Fatalf("Stream = %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int64{1, 2}) || stats.Resumes != 1 {
		t.Errorf("cursors %v stats %+v, want 1,2 with one resume off the draining line", got, stats)
	}
}
