// Streaming consumer of POST /v1/stream: documents go up as NDJSON, one
// result line per document comes back as each completes, and the client
// survives the wire — a stream cut mid-flight (transport error, or an EOF
// without the server's done-line) is resumed automatically by
// reconnecting with resume_from set to the last cursor received, so the
// server skips delivered documents and the caller's callback sees every
// document exactly once. Reconnects ride the same capped seeded-jitter
// backoff and Retry-After handling as the unary retry policy.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
	"repro/xsdferrors"
)

// StreamOptions tunes one Stream call.
type StreamOptions struct {
	// Budget is the per-document budget forwarded as the stream header's
	// budget_ms (zero keeps the server default).
	Budget time.Duration
	// Window asks the server for a smaller in-flight window (zero keeps
	// the server default).
	Window int
	// MaxLineBytes bounds one response line (default 4 MiB).
	MaxLineBytes int
	// Subtree switches the stream to incremental subtree mode: the
	// callback receives one line per completed subtree instead of one per
	// document, each carrying its Doc/Subtree/SubtreePath locator. Resume
	// semantics are unchanged — cursors stay global over emitted lines.
	Subtree bool
	// SubtreeDepth, MaxSubtreeBytes, and MaxSubtrees forward the
	// subtree-mode knobs of the stream header (zero keeps server
	// defaults; negatives are rejected by the server).
	SubtreeDepth    int
	MaxSubtreeBytes int64
	MaxSubtrees     int
}

// StreamStats reports how a Stream call went on the wire.
type StreamStats struct {
	// Delivered is the number of per-document lines the callback received
	// (exactly one per document on a clean finish).
	Delivered int64
	// Resumes is how many times the stream was re-established after a cut.
	Resumes int
	// Attempts is the total number of HTTP requests made.
	Attempts int
}

// ErrStreamAborted wraps a callback error: the callback asked the client
// to stop, so the stream was abandoned, not resumed.
var ErrStreamAborted = fmt.Errorf("client: stream aborted by callback")

// Stream sends documents through POST /v1/stream and invokes fn once per
// per-document line, in document order. Lines carry the same typed
// taxonomy as the unary endpoints — a degraded document arrives as a
// status-200 line with its quality report, a failed one as a typed error
// line; neither ends the stream. fn returning an error aborts the stream
// without resuming. Disconnects are resumed transparently: fn never sees
// a document twice, because the client reconnects with resume_from set to
// the last cursor it handed fn. Consecutive reconnect attempts that make
// no progress are bounded by MaxRetries; any delivered line resets the
// allowance.
func (c *Client) Stream(ctx context.Context, documents []string, opts StreamOptions, fn func(server.StreamLine) error) (StreamStats, error) {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = 4 << 20
	}
	var stats StreamStats
	resumeFrom := int64(0)
	idle := 0 // consecutive attempts with no delivered line
	for {
		if err := ctx.Err(); err != nil {
			return stats, xsdferrors.Canceled(err)
		}
		stats.Attempts++
		progressed, done, retryAfter, err := c.streamOnce(ctx, documents, &resumeFrom, &stats.Delivered, opts, fn)
		if done {
			return stats, nil
		}
		if err != nil && isFinalStreamError(err) {
			return stats, err
		}
		if progressed {
			idle = 0
		} else {
			idle++
		}
		if idle > c.opts.MaxRetries {
			return stats, fmt.Errorf("client: stream stalled after %d attempts without progress: %w", idle, err)
		}
		stats.Resumes++
		select {
		case <-time.After(c.backoff(idle, retryAfter)):
		case <-ctx.Done():
			return stats, fmt.Errorf("client: %w (resuming stream: %v)", xsdferrors.Canceled(ctx.Err()), err)
		}
	}
}

// isFinalStreamError reports whether err ends the stream instead of
// triggering a resume: callback aborts and non-retryable API answers
// (client errors, final statuses) are final; transport cuts and retryable
// statuses are not.
func isFinalStreamError(err error) bool {
	if errors.Is(err, ErrStreamAborted) {
		return true
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return !apiErr.Retryable()
	}
	return false
}

// streamOnce performs one stream attempt. It advances resumeFrom and
// delivered as lines arrive, so a cut mid-attempt keeps its progress.
func (c *Client) streamOnce(ctx context.Context, documents []string, resumeFrom, delivered *int64, opts StreamOptions, fn func(server.StreamLine) error) (progressed, done bool, retryAfter time.Duration, err error) {
	body, err := encodeStreamRequest(documents, *resumeFrom, opts)
	if err != nil {
		return false, false, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		return false, false, 0, err
	}
	req.Header.Set("Content-Type", server.NDJSONContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb server.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			eb = server.ErrorBody{Error: resp.Status, Kind: "internal"}
		}
		return false, false, parseRetryAfter(resp.Header.Get("Retry-After")),
			&APIError{Status: resp.StatusCode, Kind: eb.Kind, Msg: eb.Error}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), opts.MaxLineBytes)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line server.StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			// A torn line: the stream was cut mid-write. Resume from the
			// last complete cursor.
			return progressed, false, 0, fmt.Errorf("client: torn stream line: %w", err)
		}
		if line.Cursor == 0 {
			// Terminal line.
			if line.Done {
				return progressed, true, 0, nil
			}
			// Draining server or a typed body-read failure: resume.
			return progressed, false, 0, &APIError{
				Status: http.StatusServiceUnavailable, Kind: line.Kind, Msg: line.Error,
			}
		}
		if line.Cursor <= *resumeFrom {
			continue // duplicate delivery guard: never hand fn an old cursor
		}
		if line.Cursor != *resumeFrom+1 {
			return progressed, false, 0, fmt.Errorf(
				"client: stream cursor jumped %d -> %d (lost line)", *resumeFrom, line.Cursor)
		}
		*resumeFrom = line.Cursor
		*delivered++
		progressed = true
		if err := fn(line); err != nil {
			return progressed, false, 0, fmt.Errorf("%w: %v", ErrStreamAborted, err)
		}
	}
	// EOF (or a read error) without a done-line: the stream was cut.
	err = sc.Err()
	if err == nil {
		err = fmt.Errorf("client: stream ended without a done line (cursor %d)", *resumeFrom)
	}
	return progressed, false, 0, err
}

// encodeStreamRequest renders the NDJSON request body: header line, then
// one line per document. The full sequence is re-sent on resume — the
// server skips delivered documents by cursor, which keeps cursor numbering
// identical across reconnects.
func encodeStreamRequest(documents []string, resumeFrom int64, opts StreamOptions) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := server.StreamHeader{
		BudgetMS:        opts.Budget.Milliseconds(),
		ResumeFrom:      resumeFrom,
		Window:          opts.Window,
		Subtree:         opts.Subtree,
		SubtreeDepth:    opts.SubtreeDepth,
		MaxSubtreeBytes: opts.MaxSubtreeBytes,
		MaxSubtrees:     opts.MaxSubtrees,
	}
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	for _, doc := range documents {
		if err := enc.Encode(server.StreamDoc{Document: doc}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
