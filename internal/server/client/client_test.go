package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/xsdferrors"
)

// scriptedHandler answers each request from a fixed status script and
// counts attempts; after the script runs out it serves the final entry.
type scriptedHandler struct {
	attempts   atomic.Int64
	script     []int
	retryAfter string
	result     server.Result
}

func (h *scriptedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(h.attempts.Add(1)) - 1
	status := h.script[len(h.script)-1]
	if n < len(h.script) {
		status = h.script[n]
	}
	if status == http.StatusOK {
		w.Header().Set(server.QualityHeader, h.result.Quality)
		json.NewEncoder(w).Encode(h.result)
		return
	}
	if h.retryAfter != "" {
		w.Header().Set("Retry-After", h.retryAfter)
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(server.ErrorBody{Error: "scripted", Kind: kindFor(status)})
}

func kindFor(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusGatewayTimeout:
		return "canceled"
	case http.StatusBadRequest:
		return "malformed-input"
	case http.StatusRequestEntityTooLarge:
		return "limit"
	}
	return "internal"
}

func newScripted(t *testing.T, script ...int) (*scriptedHandler, *Client) {
	t.Helper()
	h := &scriptedHandler{
		script: script,
		result: server.Result{Targets: 2, Assigned: 2, Quality: "full"},
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(Options{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, c
}

func TestRetrySucceedsAfterShedding(t *testing.T) {
	h, c := newScripted(t, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusOK)
	res, err := c.Disambiguate(context.Background(), "<a>x</a>", 0)
	if err != nil {
		t.Fatalf("Disambiguate: %v", err)
	}
	if res.Quality != "full" || res.Assigned != 2 {
		t.Fatalf("result = %+v", res)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two retryable failures + success)", got)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	h, c := newScripted(t, http.StatusTooManyRequests, http.StatusOK)
	h.retryAfter = "1" // 1s, well above the millisecond backoff schedule
	c.opts.MaxBackoff = 10 * time.Second

	start := time.Now()
	if _, err := c.Disambiguate(context.Background(), "<a>x</a>", 0); err != nil {
		t.Fatalf("Disambiguate: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, Retry-After asked for >= 1s", elapsed)
	}
}

func TestRetryExhaustion(t *testing.T) {
	h, c := newScripted(t, http.StatusServiceUnavailable)
	c.opts.MaxRetries = 2

	_, err := c.Disambiguate(context.Background(), "<a>x</a>", 0)
	if err == nil {
		t.Fatal("want error after exhaustion")
	}
	if got := h.attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + MaxRetries)", got)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 APIError", err)
	}
}

func TestNoRetryOnFinalStatuses(t *testing.T) {
	for _, tc := range []struct {
		status   int
		sentinel error
	}{
		{http.StatusBadRequest, xsdferrors.ErrMalformedInput},
		{http.StatusGatewayTimeout, xsdferrors.ErrCanceled},
		{http.StatusRequestEntityTooLarge, xsdferrors.ErrLimitExceeded},
		{http.StatusInternalServerError, nil},
	} {
		h, c := newScripted(t, tc.status, http.StatusOK)
		_, err := c.Disambiguate(context.Background(), "<a>x</a>", 0)
		if err == nil {
			t.Fatalf("status %d: want error, got success via retry", tc.status)
		}
		if got := h.attempts.Load(); got != 1 {
			t.Fatalf("status %d: attempts = %d, want 1 (final, no retry)", tc.status, got)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != tc.status {
			t.Fatalf("status %d: err = %v", tc.status, err)
		}
		if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
			t.Fatalf("status %d: errors.Is(%v) = false", tc.status, tc.sentinel)
		}
	}
}

func TestDegraded200IsFinal(t *testing.T) {
	h, c := newScripted(t, http.StatusOK)
	h.result = server.Result{
		Targets:  3,
		Assigned: 3,
		Quality:  "first-sense",
		Degradation: &server.DegradationReport{
			Level:        "first-sense",
			NodesAtLevel: map[string]int{"first-sense": 3},
		},
	}
	res, err := c.Disambiguate(context.Background(), "<a>x</a>", 0)
	if err != nil {
		t.Fatalf("Disambiguate: %v", err)
	}
	if res.Quality != "first-sense" || res.Degradation == nil {
		t.Fatalf("result = %+v, want degraded payload surfaced", res)
	}
	if got := h.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1 — degraded 200s are never retried", got)
	}
}

func TestRetryTransportFailure(t *testing.T) {
	// A server that dies after the handshake: first attempt hits a closed
	// listener (transport error), so the client must re-send.
	h := &scriptedHandler{script: []int{http.StatusOK}, result: server.Result{Targets: 1, Assigned: 1, Quality: "full"}}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // guaranteed connection-refused URL

	c, err := New(Options{BaseURL: dead.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Disambiguate(context.Background(), "<a>x</a>", 0); err == nil {
		t.Fatal("want transport error from dead server")
	}

	// Against the live server the same client options succeed first try.
	c2, err := New(Options{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Disambiguate(context.Background(), "<a>x</a>", 0); err != nil {
		t.Fatalf("live server: %v", err)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	h, c := newScripted(t, http.StatusServiceUnavailable)
	h.retryAfter = "5" // force a long wait so cancellation wins the select
	c.opts.MaxBackoff = 10 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Disambiguate(ctx, "<a>x</a>", 0)
	if !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := h.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled during backoff)", got)
	}
}

func TestBatchEnvelope(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.BatchResponse{Results: []server.BatchItem{
			{Status: 200, Result: &server.Result{Targets: 1, Assigned: 1, Quality: "full"}},
			{Status: 400, Error: "bad xml", Kind: "malformed-input"},
		}})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	c, err := New(Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Batch(context.Background(), []string{"<a>x</a>", "<a>"}, 0)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Status != 200 || resp.Results[1].Kind != "malformed-input" {
		t.Fatalf("envelope = %+v", resp)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	a, err := New(Options{BaseURL: "http://x", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{BaseURL: "http://x", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 12; attempt++ {
		da, db := a.backoff(attempt, 0), b.backoff(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds MaxBackoff", attempt, da)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, da)
		}
	}
	// Retry-After floors the schedule but still respects the cap.
	if got := a.backoff(0, 60*time.Millisecond); got < 60*time.Millisecond || got > 80*time.Millisecond {
		t.Fatalf("Retry-After floor: %v", got)
	}
	if got := a.backoff(0, time.Minute); got != 80*time.Millisecond {
		t.Fatalf("Retry-After above cap: %v, want MaxBackoff", got)
	}
}

// Regression: parseRetryAfter must accept both RFC 9110 Retry-After
// forms. It originally parsed only delta-seconds, so an HTTP-date from a
// proxy in front of xsdfd silently became "no hint" and the client
// hammered straight through the ask on its own backoff schedule.
func TestParseRetryAfterForms(t *testing.T) {
	if got := parseRetryAfter("7"); got != 7*time.Second {
		t.Fatalf("delta-seconds: got %v, want 7s", got)
	}
	for _, v := range []string{"", "-3", "soon", "7.5"} {
		if got := parseRetryAfter(v); got != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", v, got)
		}
	}

	// HTTP-date ~2s in the future: the result is time.Until, so accept
	// anything in (1s, 2s] to absorb clock reads between format and parse.
	future := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= time.Second || got > 2*time.Second {
		t.Fatalf("future HTTP-date: got %v, want ~2s", got)
	}

	// A date in the past asks for no wait at all — zero, not negative.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Fatalf("past HTTP-date: got %v, want 0", got)
	}
}
