// Package client is the companion retry client of the xsdfd serving
// layer: capped exponential backoff with seeded jitter, Retry-After
// honoring, and a retry policy derived from the server's status mapping —
// it retries only outcomes that are safe and useful to retry (shed load,
// open circuits, transport failures) and never re-runs work the server
// already answered, including degraded 200s: a degraded result is a
// deliberate quality trade the server made to stay up, not a transient
// fault, and retrying it would double the load precisely when the server
// is protecting itself.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/server"
	"repro/xsdferrors"
)

// Options configures a Client. BaseURL is required; zero values select
// the documented defaults.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds the re-attempts after the first try (default 3).
	MaxRetries int
	// BaseBackoff seeds the exponential schedule (default 50ms); delay n
	// is BaseBackoff·2ⁿ jittered in [½, 1]·full, capped at MaxBackoff
	// (default 2s). A server Retry-After overrides the schedule when it
	// asks for longer, and is itself capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed makes the jitter sequence reproducible; 0 selects 1.
	JitterSeed int64
}

// Client calls the xsdfd API with retries.
type Client struct {
	opts Options
	hc   *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("client: empty BaseURL")
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	} else if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.JitterSeed == 0 {
		opts.JitterSeed = 1
	}
	return &Client{
		opts: opts,
		hc:   opts.HTTPClient,
		rng:  rand.New(rand.NewSource(opts.JitterSeed)),
	}, nil
}

// APIError is a non-2xx server answer. It carries the wire kind and maps
// back onto the xsdferrors taxonomy under errors.Is, so callers dispatch
// on the same sentinels locally and over the network.
type APIError struct {
	Status int
	Kind   string
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("xsdfd: %d (%s): %s", e.Status, e.Kind, e.Msg)
}

// Is maps the wire kind back to the taxonomy sentinel.
func (e *APIError) Is(target error) bool {
	switch target {
	case xsdferrors.ErrOverloaded:
		return e.Kind == "overloaded"
	case xsdferrors.ErrCanceled:
		return e.Kind == "canceled"
	case xsdferrors.ErrLimitExceeded:
		return e.Kind == "limit"
	case xsdferrors.ErrMalformedInput:
		return e.Kind == "malformed-input"
	case xsdferrors.ErrUnknownOption:
		return e.Kind == "unknown-option"
	}
	return false
}

// Retryable reports whether the client's policy may re-attempt after this
// answer: shed load (429), an open circuit or unready server (503), and
// bad gateways (502) are transient by design; everything else — client
// errors, budget expiry (the budget is spent), and isolated pipeline
// faults (500, possibly non-idempotent work) — is final.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
		return true
	}
	return false
}

// Disambiguate runs one document through the server, retrying per the
// policy. A 200 answer — including a degraded one — is returned as-is:
// degraded results are never retried.
func (c *Client) Disambiguate(ctx context.Context, document string, budget time.Duration) (*server.Result, error) {
	req := server.DisambiguateRequest{Document: document, BudgetMS: budget.Milliseconds()}
	var out server.Result
	if err := c.do(ctx, "/v1/disambiguate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch runs a document batch through the server with the same retry
// policy applied to the envelope (per-document outcomes inside a 200
// envelope are final — the server already isolated the failures).
func (c *Client) Batch(ctx context.Context, documents []string, budget time.Duration) (*server.BatchResponse, error) {
	req := server.BatchRequest{Documents: documents, BudgetMS: budget.Milliseconds()}
	var out server.BatchResponse
	if err := c.do(ctx, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes /readyz once (no retries — readiness polling is the
// caller's loop).
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Kind: "not-ready", Msg: "server not ready"}
	}
	return nil
}

// do POSTs body to path with the retry loop.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		apiErr, err := c.once(ctx, path, payload, out)
		if err == nil && apiErr == nil {
			return nil
		}
		var delay time.Duration
		switch {
		case apiErr != nil && !apiErr.Retryable():
			return &apiErr.APIError
		case apiErr != nil:
			lastErr = &apiErr.APIError
			delay = c.backoff(attempt, apiErr.retryAfter)
		default:
			// Transport failure: the request may not have reached the
			// server; disambiguation is read-only server-side, so a
			// re-send is safe.
			lastErr = err
			delay = c.backoff(attempt, 0)
		}
		if attempt >= c.opts.MaxRetries {
			return fmt.Errorf("client: %d attempts exhausted: %w", attempt+1, lastErr)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("client: %w (last attempt: %v)", xsdferrors.Canceled(ctx.Err()), lastErr)
		}
	}
}

// once performs a single attempt. A non-2xx answer comes back as a
// *apiAttemptError (nil error); transport failures as err.
func (c *Client) once(ctx context.Context, path string, payload []byte, out any) (*apiAttemptError, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil, json.NewDecoder(resp.Body).Decode(out)
	}
	var eb server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		eb = server.ErrorBody{Error: resp.Status, Kind: "internal"}
	}
	return &apiAttemptError{
		APIError:   APIError{Status: resp.StatusCode, Kind: eb.Kind, Msg: eb.Error},
		retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}, nil
}

// apiAttemptError pairs the public APIError with the attempt's
// Retry-After hint.
type apiAttemptError struct {
	APIError
	retryAfter time.Duration
}

// backoff computes the delay before re-attempt attempt+1: the jittered
// exponential schedule, floored by the server's Retry-After ask, capped
// at MaxBackoff.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	full := c.opts.BaseBackoff << uint(attempt)
	if full > c.opts.MaxBackoff || full <= 0 {
		full = c.opts.MaxBackoff
	}
	c.mu.Lock()
	jittered := full/2 + time.Duration(c.rng.Int63n(int64(full/2)+1))
	c.mu.Unlock()
	if retryAfter > jittered {
		jittered = retryAfter
	}
	if jittered > c.opts.MaxBackoff {
		jittered = c.opts.MaxBackoff
	}
	return jittered
}

// parseRetryAfter reads both Retry-After forms RFC 9110 §10.2.3 allows:
// delta-seconds (what xsdfd emits) and an HTTP-date (what proxies and
// other origins in front of the daemon emit — the client is not only
// ever pointed at xsdfd). An unparseable value or a date already in the
// past yields zero: fall back to the backoff schedule rather than guess.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
