package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	xsdf "repro"
	"repro/internal/faultinject"
)

// fakeClock is a hand-cranked time source: every state transition in the
// breaker tests is driven by explicit Advance calls, never wall time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2015, 3, 23, 9, 0, 0, 0, time.UTC)} // EDBT'15 week
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var breakerTestOpts = BreakerOptions{
	Window:         10 * time.Second,
	Buckets:        10,
	MinSamples:     4,
	FailureRatio:   0.5,
	Cooldown:       5 * time.Second,
	HalfOpenProbes: 1,
}

// TestBreakerStateMachine drives the full closed → open → half-open →
// closed cycle deterministically on a fake clock, including the re-open
// on a failed probe.
func TestBreakerStateMachine(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(breakerTestOpts, clock.Now)

	record := func(failure bool) {
		t.Helper()
		done, _, admitted := b.allow()
		if !admitted {
			t.Fatal("closed breaker rejected a request")
		}
		done(failure)
	}

	// Below MinSamples the circuit holds even at 100% failures.
	record(true)
	record(true)
	record(true)
	if b.report().State != "closed" {
		t.Fatal("tripped below MinSamples")
	}
	// The fourth sample reaches MinSamples with ratio 1.0 → open.
	record(true)
	if got := b.report().State; got != "open" {
		t.Fatalf("state = %s, want open after ratio trip", got)
	}

	// Open rejects with the remaining cooldown.
	if _, retryAfter, admitted := b.allow(); admitted || retryAfter <= 0 || retryAfter > breakerTestOpts.Cooldown {
		t.Fatalf("open breaker: admitted=%v retryAfter=%v", admitted, retryAfter)
	}

	// Cooldown elapses → exactly one half-open probe is admitted.
	clock.Advance(breakerTestOpts.Cooldown)
	done, _, admitted := b.allow()
	if !admitted {
		t.Fatal("no probe after cooldown")
	}
	if _, _, second := b.allow(); second {
		t.Fatal("second concurrent probe admitted, HalfOpenProbes is 1")
	}
	// Probe fails → re-open for another full cooldown.
	done(true)
	if got := b.report().State; got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if _, _, admitted := b.allow(); admitted {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}

	// Second cooldown → probe succeeds → closed with a clean window.
	clock.Advance(breakerTestOpts.Cooldown)
	done, _, admitted = b.allow()
	if !admitted {
		t.Fatal("no probe after second cooldown")
	}
	done(false)
	rep := b.report()
	if rep.State != "closed" || rep.Failures != 0 {
		t.Fatalf("after successful probe: %+v, want closed with reset window", rep)
	}

	// And the closed circuit serves again.
	record(false)
	if b.report().State != "closed" {
		t.Fatal("closed breaker flapped")
	}
}

// TestBreakerWindowExpiry: failures age out of the rolling window, so a
// burst followed by quiet does not trip the circuit later.
func TestBreakerWindowExpiry(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(breakerTestOpts, clock.Now)

	for i := 0; i < 3; i++ { // one below the trip point
		done, _, _ := b.allow()
		done(true)
	}
	clock.Advance(breakerTestOpts.Window + time.Second) // the burst ages out
	done, _, _ := b.allow()
	done(true) // would trip if the old failures still counted
	if got := b.report(); got.State != "open" && got.Failures != 1 {
		// Exactly one failure remains in the fresh window and the
		// circuit stays closed.
		if got.State != "closed" || got.Failures != 1 {
			t.Fatalf("after window expiry: %+v, want closed with 1 failure", got)
		}
	}
}

// TestBreakerOverHTTP is the end-to-end determinism test: a seeded
// faultinject schedule (ServerErrRate 1) fails every request with a 500
// until the breaker opens and the route starts failing fast with
// 503/circuit-open — no pipeline work done. Clearing the fault and
// advancing the seeded clock half-opens the circuit; the probe succeeds
// and the route closes again.
func TestBreakerOverHTTP(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, xsdf.Options{}, Config{
		Breaker: breakerTestOpts,
		Clock:   clock.Now,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faultinject.Install(faultinject.New(faultinject.Config{Seed: 17, ServerErrRate: 1}))

	post := func() *http.Response {
		t.Helper()
		resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
		resp.Body.Close()
		return resp
	}

	// MinSamples injected 500s trip the route.
	for i := 0; i < breakerTestOpts.MinSamples; i++ {
		if resp := post(); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want injected 500", i, resp.StatusCode)
		}
	}
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after trip: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("circuit-open 503 without Retry-After")
	}

	// Clear the fault; before the cooldown the route still fails fast.
	restore()
	if resp := post(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during cooldown: status %d, want 503", resp.StatusCode)
	}

	// Cooldown elapses on the injected clock → the probe runs the real
	// pipeline, succeeds, and closes the circuit for everyone.
	clock.Advance(breakerTestOpts.Cooldown)
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe: status %d, want 200", resp.StatusCode)
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("after close: status %d, want 200", resp.StatusCode)
	}
	if got := s.breakers["disambiguate"].report().State; got != "closed" {
		t.Fatalf("breaker state = %s, want closed", got)
	}

	// The batch route kept its own independent breaker the whole time.
	if got := s.breakers["batch"].report().State; got != "closed" {
		t.Fatalf("batch breaker state = %s, want closed (per-route isolation)", got)
	}
}
