package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	xsdf "repro"
	"repro/internal/metrics"
)

// scrapeMetrics fetches /metricsz and parses it with the strict
// exposition parser (which itself validates histogram invariants:
// ascending le bounds, monotone cumulative counts, +Inf == _count).
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]*metrics.Family {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricsz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metricsContentType)
	}
	fams, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return fams
}

// counterValue returns the single sample of an unlabeled counter/gauge.
func counterValue(t *testing.T, fams map[string]*metrics.Family, name string) float64 {
	t.Helper()
	fam, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing", name)
	}
	if len(fam.Samples) != 1 {
		t.Fatalf("family %s has %d samples, want 1", name, len(fam.Samples))
	}
	return fam.Samples[0].Value
}

// TestMetricszGolden drives real traffic through every endpoint — unary,
// batch, a resumed stream — then asserts the exposition is parseable,
// histogram-valid, and reflects the traffic in the counters.
func TestMetricszGolden(t *testing.T) {
	s := newTestServer(t, xsdf.Options{
		Admission: xsdf.AdmissionOptions{MaxDocs: 4, MaxWait: 50 * time.Millisecond},
	}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unary + malformed (a 400 for the status-code family) + batch.
	postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc}).Body.Close()
	postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: "<unclosed"}).Body.Close()
	postJSON(t, ts, "/v1/batch", BatchRequest{Documents: []string{testDoc, testDoc}}).Body.Close()

	// A stream that resumes from cursor 1: two documents sent, one line
	// delivered, resume counter incremented.
	stream := `{"resume_from":1}` + "\n" +
		fmt.Sprintf(`{"document":%q}`, testDoc) + "\n" +
		fmt.Sprintf(`{"document":%q}`, testDoc) + "\n"
	resp, err := http.Post(ts.URL+"/v1/stream", NDJSONContentType, strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A subtree-mode stream: three subtrees, the middle one guard-tripped
	// by a tight per-subtree byte budget (emitted=2, failed=1, tripped=1).
	subtreeDoc := `<r><a>kelly</a><b>` + strings.Repeat("x", 120) + `</b><c>network</c></r>`
	subtreeStream := `{"subtree":true,"max_subtree_bytes":40}` + "\n" +
		fmt.Sprintf(`{"document":%q}`, subtreeDoc) + "\n"
	resp, err = http.Post(ts.URL+"/v1/stream", NDJSONContentType, strings.NewReader(subtreeStream))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fams := scrapeMetrics(t, ts)

	// Stage latency histograms carry the traffic: the guard stage ran for
	// every successfully parsed document.
	sl, ok := fams["xsdf_stage_duration_seconds"]
	if !ok {
		t.Fatal("xsdf_stage_duration_seconds missing")
	}
	var guardCount float64
	for _, smp := range sl.Samples {
		if strings.HasSuffix(smp.Name, "_count") && smp.Labels["stage"] == xsdf.StageGuard {
			guardCount = smp.Value
		}
	}
	if guardCount == 0 {
		t.Error("guard stage histogram count is zero after traffic")
	}

	if got := counterValue(t, fams, "xsdf_http_requests_total"); got < 4 {
		t.Errorf("xsdf_http_requests_total = %v, want >= 4", got)
	}
	codes := map[string]bool{}
	for _, smp := range fams["xsdf_http_responses_total"].Samples {
		codes[smp.Labels["code"]] = true
	}
	if !codes["200"] || !codes["400"] {
		t.Errorf("response codes seen = %v, want 200 and 400", codes)
	}

	// Quality: every OK document above counted a ladder rung.
	var quality float64
	for _, smp := range fams["xsdf_response_quality_total"].Samples {
		quality += smp.Value
	}
	if quality < 4 { // 1 unary + 2 batch + 1 stream line
		t.Errorf("summed xsdf_response_quality_total = %v, want >= 4", quality)
	}

	// Gate (admission enabled above) and breaker families exist.
	if got := counterValue(t, fams, "xsdf_gate_admitted_total"); got == 0 {
		t.Error("xsdf_gate_admitted_total is zero after traffic")
	}
	states := map[string]bool{}
	for _, smp := range fams["xsdf_breaker_state"].Samples {
		states[smp.Labels["route"]] = true
	}
	for _, route := range []string{"disambiguate", "batch", "stream"} {
		if !states[route] {
			t.Errorf("xsdf_breaker_state missing route %q", route)
		}
	}

	// Stream lifecycle: one delivered document line (the resumed stream's
	// second doc) plus three subtree lines, and one resume.
	if got := counterValue(t, fams, "xsdf_stream_documents_delivered_total"); got != 4 {
		t.Errorf("xsdf_stream_documents_delivered_total = %v, want 4", got)
	}
	if got := counterValue(t, fams, "xsdf_stream_resumes_total"); got != 1 {
		t.Errorf("xsdf_stream_resumes_total = %v, want 1", got)
	}

	// Subtree mode: two subtrees delivered results, one tripped the
	// per-subtree byte budget, and only scanned (emitted) subtrees feed
	// the size histogram.
	if got := counterValue(t, fams, "xsdf_stream_subtrees_emitted_total"); got != 2 {
		t.Errorf("xsdf_stream_subtrees_emitted_total = %v, want 2", got)
	}
	if got := counterValue(t, fams, "xsdf_stream_subtrees_failed_total"); got != 1 {
		t.Errorf("xsdf_stream_subtrees_failed_total = %v, want 1", got)
	}
	if got := counterValue(t, fams, "xsdf_stream_subtrees_guard_tripped_total"); got != 1 {
		t.Errorf("xsdf_stream_subtrees_guard_tripped_total = %v, want 1", got)
	}
	sb, ok := fams["xsdf_stream_subtree_bytes"]
	if !ok {
		t.Fatal("xsdf_stream_subtree_bytes missing")
	}
	for _, smp := range sb.Samples {
		if strings.HasSuffix(smp.Name, "_count") && smp.Value != 2 {
			t.Errorf("xsdf_stream_subtree_bytes count = %v, want 2", smp.Value)
		}
	}
}

// TestMetricszConcurrentScrapes hammers /metricsz and /statusz while
// traffic is in flight — the data-race check for every counter the
// exposition reads (run under -race in CI).
func TestMetricszConcurrentScrapes(t *testing.T) {
	s := newTestServer(t, xsdf.Options{
		Admission: xsdf.AdmissionOptions{MaxDocs: 2, MaxWait: 10 * time.Millisecond},
	}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc}).Body.Close()
			}
		}()
	}
	for _, path := range []string{"/metricsz", "/statusz", "/metricsz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(path)
	}
	wg.Wait()

	// After the dust settles the exposition must still be valid.
	scrapeMetrics(t, ts)
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// (the server logs from handler goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestTracing: a client-supplied X-Request-Id is echoed on the
// response and stamped on the completion log line together with the
// pipeline's per-stage timings; a request without one gets a generated
// ID.
func TestRequestTracing(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := newTestServer(t, xsdf.Options{}, Config{Logger: logger})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/disambiguate",
		strings.NewReader(fmt.Sprintf(`{"document":%q}`, testDoc)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-abc-123" {
		t.Fatalf("%s echo = %q, want trace-abc-123", RequestIDHeader, got)
	}

	out := logs.String()
	if !strings.Contains(out, "request_id=trace-abc-123") {
		t.Errorf("completion log line missing request_id: %s", out)
	}
	if !strings.Contains(out, "stages=") || !strings.Contains(out, xsdf.StageGuard+"=") {
		t.Errorf("completion log line missing stage timings: %s", out)
	}
	if !strings.Contains(out, "quality=full") {
		t.Errorf("completion log line missing quality: %s", out)
	}

	// No client ID: the server generates a 16-hex one.
	resp2 := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	resp2.Body.Close()
	gen := resp2.Header.Get(RequestIDHeader)
	if len(gen) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", gen)
	}

	// An unusable ID (oversized here; control bytes never survive
	// net/http) is replaced with a generated one, not echoed.
	req3, _ := http.NewRequest("POST", ts.URL+"/v1/disambiguate",
		strings.NewReader(fmt.Sprintf(`{"document":%q}`, testDoc)))
	req3.Header.Set("Content-Type", "application/json")
	req3.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(RequestIDHeader); strings.Contains(got, "xxx") {
		t.Fatalf("oversized request id echoed back: %q", got)
	}
	if got := sanitizeRequestID("evil\x01id"); got != "" {
		t.Fatalf("sanitizeRequestID kept a control byte: %q", got)
	}
}
