package server

import (
	"sync"
	"time"

	"repro/internal/core"
)

// waitBucket is one time slice of recent admission-gate waits: how many
// admitted documents finished a wait in the slice and how much wait they
// accumulated.
type waitBucket struct {
	waited uint64
	total  time.Duration
}

// gateWaitWindow turns the admission gate's cumulative wait counters into
// a recent-window view, on the same ringWindow machinery as the circuit
// breaker. The gate itself only exposes lifetime totals; the window
// differences successive GateStats snapshots into per-slice deltas, so
// the Retry-After hint for shed load reflects how long documents are
// waiting NOW — after hours of light traffic, a lifetime average is
// dominated by history and sizes the hint near zero exactly when a
// sudden overload needs it large (and vice versa after an overload
// passes).
type gateWaitWindow struct {
	clock func() time.Time

	mu         sync.Mutex
	win        *ringWindow[waitBucket]
	lastWaited uint64
	lastTotal  time.Duration
}

// gateWaitWindowSpan is the observation window of the Retry-After hint:
// long enough to smooth scheduler noise, short enough that a traffic
// shift re-sizes hints within seconds.
const (
	gateWaitWindowSpan    = 10 * time.Second
	gateWaitWindowBuckets = 10
)

func newGateWaitWindow(clock func() time.Time) *gateWaitWindow {
	return &gateWaitWindow{
		clock: clock,
		win:   newRingWindow[waitBucket](gateWaitWindowSpan, gateWaitWindowBuckets, clock()),
	}
}

// observe folds the delta between gs and the previous snapshot into the
// current bucket. Call it with fresh GateStats whenever a request
// finishes; the gate's counters are monotone, so deltas are exact no
// matter how many requests ran between two observations.
func (g *gateWaitWindow) observe(gs core.GateStats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.win.advance(g.clock())
	if gs.Waited > g.lastWaited {
		cur := g.win.current()
		cur.waited += gs.Waited - g.lastWaited
		cur.total += gs.TotalWait - g.lastTotal
	}
	g.lastWaited = gs.Waited
	g.lastTotal = gs.TotalWait
}

// recentAvg reports the mean admission wait over the window. ok is false
// when no document waited recently — the caller falls back to its
// default hint instead of resurrecting stale history.
func (g *gateWaitWindow) recentAvg() (avg time.Duration, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.win.advance(g.clock())
	var sum waitBucket
	g.win.fold(func(b *waitBucket) {
		sum.waited += b.waited
		sum.total += b.total
	})
	if sum.waited == 0 {
		return 0, false
	}
	return sum.total / time.Duration(sum.waited), true
}
