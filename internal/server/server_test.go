package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	xsdf "repro"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/xmltree"
)

const testDoc = `<movie genre="drama"><title>rear window</title><director>hitchcock</director><star>kelly</star></movie>`

func newTestServer(t *testing.T, opts xsdf.Options, cfg Config) *Server {
	t.Helper()
	fw, err := xsdf.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Framework = fw
	if cfg.Logger == nil {
		cfg.Logger = NopLogger() // keep test output readable; TestRequestTracing wires a real one
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBodyInto[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestDisambiguateHappyPath: a well-formed document answers 200 with
// non-empty assignments and the full-quality header.
func TestDisambiguateHappyPath(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if q := resp.Header.Get(QualityHeader); q != "full" {
		t.Errorf("%s = %q, want full", QualityHeader, q)
	}
	res := decodeBodyInto[Result](t, resp)
	if res.Assigned == 0 || len(res.Assignments) == 0 {
		t.Fatalf("no assignments: %+v", res)
	}
	for _, a := range res.Assignments {
		if a.Sense == "" {
			t.Errorf("assignment %q has empty sense", a.Label)
		}
	}
	if res.Degradation != nil {
		t.Errorf("unexpected degradation report: %+v", res.Degradation)
	}
	if len(res.Stages) == 0 {
		t.Fatal("response carries no per-stage instrumentation")
	}
	var disambigMicros int64 = -1
	for _, st := range res.Stages {
		if st.Failed {
			t.Errorf("stage %s marked failed on a 200 response", st.Stage)
		}
		if st.Stage == "disambiguate" {
			disambigMicros = st.Micros
		}
	}
	if disambigMicros <= 0 {
		t.Errorf("disambiguate stage duration = %dus, want > 0", disambigMicros)
	}
}

// TestDisambiguateClientErrors: malformed JSON, empty documents, and
// non-well-formed XML all answer 400 with the matching kind.
func TestDisambiguateClientErrors(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		kind string
	}{
		{"bad-json", `{"document": `, "malformed-input"},
		{"empty-document", `{"document": ""}`, "malformed-input"},
		{"malformed-xml", `{"document": "<a><b></a>"}`, "malformed-input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/disambiguate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			eb := decodeBodyInto[ErrorBody](t, resp)
			if eb.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", eb.Kind, tc.kind)
			}
		})
	}
}

// TestBodySizeLimit: a body beyond MaxBodyBytes answers 413 with the
// limit kind — the HTTP face of the resource guards.
func TestBodySizeLimit(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{MaxBodyBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := DisambiguateRequest{Document: "<a>" + strings.Repeat("x ", 4096) + "</a>"}
	resp := postJSON(t, ts, "/v1/disambiguate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	eb := decodeBodyInto[ErrorBody](t, resp)
	if eb.Kind != "limit" {
		t.Errorf("kind = %q, want limit", eb.Kind)
	}
}

// TestDeadlinePropagation: with the ladder off, a budget too small for
// the document answers 504; the budget reaches the pipeline as a real
// context deadline (the slow-node hook would otherwise run for seconds).
func TestDeadlinePropagation(t *testing.T) {
	restore := faultinject.SetHooks(faultinject.Hooks{BeforeNode: func(*xmltree.Node) {
		time.Sleep(5 * time.Millisecond)
	}})
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc, BudgetMS: 15})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	eb := decodeBodyInto[ErrorBody](t, resp)
	if eb.Kind != "canceled" {
		t.Errorf("kind = %q, want canceled", eb.Kind)
	}
}

// TestDegradedAnswers200WithQualityHeader: with the ladder on, a document
// past the first-sense watermark still answers 200 — the quality header
// and the degradation report carry the trade.
func TestDegradedAnswers200WithQualityHeader(t *testing.T) {
	s := newTestServer(t, xsdf.Options{
		Degrade: xsdf.DegradeOptions{Enabled: true, FirstSenseAfter: 1},
	}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if q := resp.Header.Get(QualityHeader); q != "first-sense" {
		t.Errorf("%s = %q, want first-sense", QualityHeader, q)
	}
	res := decodeBodyInto[Result](t, resp)
	if res.Degradation == nil || res.Degradation.Level != "first-sense" {
		t.Fatalf("missing or wrong degradation report: %+v", res.Degradation)
	}
	if n := res.Degradation.NodesAtLevel["first-sense"]; n != res.Targets {
		t.Errorf("%d of %d targets at first-sense", n, res.Targets)
	}
}

// TestBatchIsolation: one malformed document in a batch gets its own 400
// item while its neighbors still answer 200 results.
func TestBatchIsolation(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/batch", BatchRequest{Documents: []string{
		testDoc, "<a><b></a>", testDoc,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 envelope", resp.StatusCode)
	}
	br := decodeBodyInto[BatchResponse](t, resp)
	if len(br.Results) != 3 {
		t.Fatalf("%d items, want 3", len(br.Results))
	}
	for _, i := range []int{0, 2} {
		item := br.Results[i]
		if item.Status != http.StatusOK || item.Result == nil || item.Result.Assigned == 0 {
			t.Errorf("item %d: %+v, want a 200 result", i, item)
		}
	}
	if bad := br.Results[1]; bad.Status != http.StatusBadRequest || bad.Kind != "malformed-input" {
		t.Errorf("malformed item: %+v, want 400/malformed-input", bad)
	}
}

// TestServerFaultInjection: the seeded server fault point turns requests
// into 500s with the injected kind — and those 500s are what the breaker
// feeds on.
func TestServerFaultInjection(t *testing.T) {
	restore := faultinject.Install(faultinject.New(faultinject.Config{Seed: 5, ServerErrRate: 1}))
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	eb := decodeBodyInto[ErrorBody](t, resp)
	if eb.Kind != "injected" {
		t.Errorf("kind = %q, want injected", eb.Kind)
	}
}

// TestPanicRecoveryMiddleware: a panic above the pipeline's own recovery
// answers 500 with the panic kind and leaves the server serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	wrapped := s.withAccounting(s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})))
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	eb := decodeBodyInto[ErrorBody](t, resp)
	if eb.Kind != "panic" || !strings.Contains(eb.Error, "handler bug") {
		t.Errorf("body = %+v, want panic kind carrying the value", eb)
	}
}

// TestPipelinePanicIsolated: a poisoned document (injected tree panic)
// answers 500 without killing the server; the next request succeeds.
func TestPipelinePanicIsolated(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faultinject.SetHooks(faultinject.Hooks{BeforeTree: func(*xmltree.Tree) {
		panic("poisoned document")
	}})
	resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	restore()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if eb := decodeBodyInto[ErrorBody](t, resp); eb.Kind != "panic" {
		t.Errorf("kind = %q, want panic", eb.Kind)
	}

	resp = postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHealthAndStatus: the three observability endpoints.
func TestHealthAndStatus(t *testing.T) {
	s := newTestServer(t, xsdf.Options{Admission: xsdf.AdmissionOptions{MaxDocs: 4}}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	// One real request so statusz has something to report.
	postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc}).Body.Close()

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz = %d", resp.StatusCode)
	}
	rep := decodeBodyInto[StatusReport](t, resp)
	if rep.Served == 0 || rep.StatusCounts["200"] == 0 {
		t.Errorf("statusz shows no traffic: %+v", rep)
	}
	if rep.Gate == nil || rep.Gate.Admitted == 0 {
		t.Errorf("statusz gate report missing or empty: %+v", rep.Gate)
	}
	if rep.Breakers["disambiguate"].State != "closed" {
		t.Errorf("breaker state = %+v, want closed", rep.Breakers["disambiguate"])
	}
	if rep.Concurrency <= 0 {
		t.Errorf("concurrency = %d, want derived from EffectiveWorkers", rep.Concurrency)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("statusz carries no per-stage pipeline counters")
	}
	for _, st := range rep.Stages {
		if st.Calls == 0 || st.TotalUS <= 0 {
			t.Errorf("stage %s stats empty after a served request: %+v", st.Stage, st)
		}
	}
}

// TestAdmissionFairnessUnderServer is the gate-fairness satellite: with
// MaxDocs=1, every one of N concurrent requests must either complete (200)
// or be shed with a typed 429 carrying Retry-After — no request lost or
// hung. Run under -race.
func TestAdmissionFairnessUnderServer(t *testing.T) {
	const n = 12
	s := newTestServer(t, xsdf.Options{
		Admission: xsdf.AdmissionOptions{MaxDocs: 1, MaxWait: 30 * time.Millisecond},
	}, Config{Concurrency: n}) // the gate, not the handler pool, is the bottleneck under test
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses []int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				eb := decodeBodyInto[ErrorBody](t, resp)
				if eb.Kind != "overloaded" {
					t.Errorf("429 kind = %q, want overloaded", eb.Kind)
				}
			}
			mu.Lock()
			statuses = append(statuses, resp.StatusCode)
			mu.Unlock()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("requests hung: admission fairness violated")
	}

	ok, shed := 0, 0
	for _, code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok+shed != n {
		t.Fatalf("%d responses accounted, want %d", ok+shed, n)
	}
	if ok == 0 {
		t.Error("no request ever completed")
	}
	t.Logf("fairness: %d completed, %d shed", ok, shed)
}

// TestGracefulShutdown is the acceptance drain test: with a request in
// flight, Shutdown flips readiness, refuses new connections, lets the
// in-flight request finish with its full response, and returns nil within
// the drain deadline.
func TestGracefulShutdown(t *testing.T) {
	nodeStarted := make(chan struct{}, 1)
	restore := faultinject.SetHooks(faultinject.Hooks{BeforeNode: func(*xmltree.Node) {
		select {
		case nodeStarted <- struct{}{}:
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}})
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// Fire the slow in-flight request.
	type reply struct {
		status  int
		result  Result
		realErr error
	}
	inflight := make(chan reply, 1)
	go func() {
		payload, _ := json.Marshal(DisambiguateRequest{Document: testDoc})
		resp, err := http.Post(base+"/v1/disambiguate", "application/json", bytes.NewReader(payload))
		if err != nil {
			inflight <- reply{realErr: err}
			return
		}
		defer resp.Body.Close()
		var res Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		inflight <- reply{status: resp.StatusCode, result: res, realErr: err}
	}()
	select {
	case <-nodeStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never reached the pipeline")
	}

	// Drain: readiness must flip while the connection is still served.
	s.Drain()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	// Shutdown with a generous deadline; it must return nil (clean drain).
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New connections must be refused once the listener closes.
	refused := false
	for i := 0; i < 100; i++ {
		conn, err := net.DialTimeout("tcp", l.Addr().String(), 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections were still accepted during shutdown")
	}

	// The in-flight request receives its complete, successful response.
	select {
	case r := <-inflight:
		if r.realErr != nil {
			t.Fatalf("in-flight request broken by shutdown: %v", r.realErr)
		}
		if r.status != http.StatusOK || r.result.Assigned == 0 {
			t.Fatalf("in-flight response: status %d, %+v", r.status, r.result)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil (clean drain)", err)
	}
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
}

// TestConcurrencyDefaultFromEffectiveWorkers: the satellite wiring — a
// zero Concurrency derives the handler pool from the same normalization
// rule as every other pool.
func TestConcurrencyDefaultFromEffectiveWorkers(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	if got, want := cap(s.sem), core.EffectiveWorkers(0); got != want {
		t.Errorf("default concurrency = %d, want EffectiveWorkers(0) = %d", got, want)
	}
	s = newTestServer(t, xsdf.Options{}, Config{Concurrency: 3})
	if got := cap(s.sem); got != 3 {
		t.Errorf("explicit concurrency = %d, want 3", got)
	}
}
