package server

import (
	"sync"
	"time"
)

// BreakerOptions configures the per-route circuit breaker: a rolling
// failure-ratio window with half-open probing. Zero fields select the
// documented defaults; Disabled turns the breaker off entirely.
//
// The breaker protects callers from a route whose handler keeps failing
// hard (5xx outcomes — pipeline panics, expired budgets, internal faults):
// once the rolling failure ratio crosses FailureRatio, the route fails
// fast with 503 for Cooldown, then lets HalfOpenProbes trial requests
// through; one probe success closes the circuit, one probe failure re-opens
// it. Client errors (4xx) and shed load (429) never count against the
// route — they are the caller's fault or the gate working as designed.
type BreakerOptions struct {
	// Disabled turns the breaker off (every request is allowed).
	Disabled bool
	// Window is the rolling observation window (default 10s), quantized
	// into Buckets buckets (default 10).
	Window  time.Duration
	Buckets int
	// MinSamples is the minimum number of outcomes in the window before
	// the ratio is meaningful (default 20).
	MinSamples int
	// FailureRatio opens the circuit when failures/total reaches it
	// (default 0.5).
	FailureRatio float64
	// Cooldown is how long an open circuit rejects before probing
	// (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent trial requests the half-open
	// state admits (default 1).
	HalfOpenProbes int
}

// withDefaults fills zero fields.
func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.Buckets <= 0 {
		o.Buckets = 10
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 20
	}
	if o.FailureRatio <= 0 {
		o.FailureRatio = 0.5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	return o
}

// breakerState is the classic three-state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// bucket holds one window slice's outcome counts.
type bucket struct{ ok, fail uint64 }

// breaker is one route's circuit breaker, built on the shared ringWindow
// rolling-window machinery. All time flows through the injected clock, so
// tests (and the faultinject clock-skew schedule) can advance it
// deterministically without sleeping.
type breaker struct {
	opts  BreakerOptions
	clock func() time.Time

	mu       sync.Mutex
	state    breakerState
	openedAt time.Time
	probes   int // in-flight half-open probes
	win      *ringWindow[bucket]
}

func newBreaker(opts BreakerOptions, clock func() time.Time) *breaker {
	opts = opts.withDefaults()
	return &breaker{opts: opts, clock: clock,
		win: newRingWindow[bucket](opts.Window, opts.Buckets, clock())}
}

// totals sums the window. Caller holds mu.
func (b *breaker) totals() (ok, fail uint64) {
	b.win.fold(func(bk *bucket) {
		ok += bk.ok
		fail += bk.fail
	})
	return ok, fail
}

// allow asks the breaker whether a request may proceed. When admitted it
// returns done, which the caller must invoke with the request's outcome
// (failure = a 5xx-class result). When rejected it returns retryAfter, the
// time until the circuit will next admit a probe.
func (b *breaker) allow() (done func(failure bool), retryAfter time.Duration, admitted bool) {
	if b.opts.Disabled {
		return func(bool) {}, 0, true
	}
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.win.advance(now)

	switch b.state {
	case breakerOpen:
		if since := now.Sub(b.openedAt); since < b.opts.Cooldown {
			return nil, b.opts.Cooldown - since, false
		}
		b.state = breakerHalfOpen
		b.probes = 0
		fallthrough
	case breakerHalfOpen:
		if b.probes >= b.opts.HalfOpenProbes {
			return nil, b.opts.Cooldown, false
		}
		b.probes++
		return b.probeDone, 0, true
	default: // closed
		return b.closedDone, 0, true
	}
}

// closedDone records a closed-state outcome and trips the circuit when the
// window's failure ratio crosses the threshold.
func (b *breaker) closedDone(failure bool) {
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.win.advance(now)
	if b.state != breakerClosed {
		return // a concurrent outcome already tripped the circuit
	}
	if failure {
		b.win.current().fail++
	} else {
		b.win.current().ok++
	}
	ok, fail := b.totals()
	total := ok + fail
	if total >= uint64(b.opts.MinSamples) &&
		float64(fail)/float64(total) >= b.opts.FailureRatio {
		b.trip(now)
	}
}

// probeDone settles a half-open probe: success closes the circuit,
// failure re-opens it for another cooldown.
func (b *breaker) probeDone(failure bool) {
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerHalfOpen {
		return
	}
	if failure {
		b.trip(now)
		return
	}
	b.state = breakerClosed
	b.probes = 0
	b.win.reset(now)
}

// trip opens the circuit. Caller holds mu.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.probes = 0
}

// BreakerReport is one breaker's statusz snapshot.
type BreakerReport struct {
	State    string `json:"state"`
	OK       uint64 `json:"window_ok"`
	Failures uint64 `json:"window_failures"`
}

// report snapshots the breaker for statusz.
func (b *breaker) report() BreakerReport {
	if b.opts.Disabled {
		return BreakerReport{State: "disabled"}
	}
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.win.advance(now)
	ok, fail := b.totals()
	return BreakerReport{State: b.state.String(), OK: ok, Failures: fail}
}
