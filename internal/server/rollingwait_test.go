package server

import (
	"testing"
	"time"

	xsdf "repro"
	"repro/internal/core"
)

// gateSnap builds a GateStats snapshot carrying only the wait counters
// the window differences.
func gateSnap(waited uint64, total time.Duration) core.GateStats {
	return core.GateStats{Waited: waited, TotalWait: total}
}

// TestGateWaitWindowRecent: the window averages only recent waits, so a
// load shift re-sizes the answer within the window span instead of being
// diluted by lifetime history.
func TestGateWaitWindowRecent(t *testing.T) {
	clk := newFakeClock()
	g := newGateWaitWindow(clk.Now)

	// Ten early waits of 2ms each.
	g.observe(gateSnap(10, 20*time.Millisecond))
	if avg, ok := g.recentAvg(); !ok || avg != 2*time.Millisecond {
		t.Fatalf("early window: avg=%v ok=%v, want 2ms true", avg, ok)
	}

	// Load spikes: five more waits totaling 500ms land 3s later. Only the
	// window's contents count, and both generations are still inside it.
	clk.Advance(3 * time.Second)
	g.observe(gateSnap(15, 520*time.Millisecond))
	avg, ok := g.recentAvg()
	if !ok {
		t.Fatal("recentAvg not ok after observations")
	}
	want := 520 * time.Millisecond / 15
	if avg != want {
		t.Fatalf("mixed window: avg=%v, want %v", avg, want)
	}

	// 8s later (t=11s) the early waits' bucket (t=0) has rotated out of
	// the 10s window while the spike's bucket (t=3s) remains.
	clk.Advance(8 * time.Second)
	g.observe(gateSnap(15, 520*time.Millisecond)) // no new waits, just a fresh snapshot
	avg, ok = g.recentAvg()
	if !ok {
		t.Fatal("recentAvg not ok while spike still in window")
	}
	if want := 100 * time.Millisecond; avg != want {
		t.Fatalf("post-rotation: avg=%v, want %v (spike only)", avg, want)
	}

	// Past the whole window, history is gone: ok=false, so the hint falls
	// back to its default instead of resurrecting a stale average — the
	// original bug in the other direction.
	clk.Advance(gateWaitWindowSpan + time.Second)
	if avg, ok := g.recentAvg(); ok {
		t.Fatalf("expired window: avg=%v ok=true, want ok=false", avg)
	}
}

// TestRetryAfterHintUsesRecentWindow: the server's Retry-After hint is
// sized from the recent-window average (2x, capped), and falls back to
// one second when nothing waited recently — not to the lifetime average,
// which after hours of light traffic would size a sudden overload's hint
// near zero.
func TestRetryAfterHintUsesRecentWindow(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(t, xsdf.Options{
		Admission: xsdf.AdmissionOptions{MaxDocs: 4, MaxWait: 50 * time.Millisecond},
	}, Config{Clock: clk.Now})

	// Seed the window directly with known waits: 4 documents, 100ms each.
	s.gateWaits.observe(gateSnap(4, 400*time.Millisecond))
	if got, want := s.retryAfterHint(), 200*time.Millisecond; got != want {
		t.Fatalf("hint = %v, want %v (2x recent avg)", got, want)
	}

	// Once the window rotates past those waits, the hint must not keep
	// echoing them: default one second.
	clk.Advance(gateWaitWindowSpan + time.Second)
	if got := s.retryAfterHint(); got != time.Second {
		t.Fatalf("hint after window expiry = %v, want 1s fallback", got)
	}
}
