package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	xsdf "repro"
)

// packLexicon writes the embedded lexicon to a checksummed codec file.
func packLexicon(t *testing.T, version string) (string, xsdf.NetworkFileInfo) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lexicon.semnet")
	info, err := xsdf.WriteNetworkFile(path, xsdf.DefaultNetwork(), version)
	if err != nil {
		t.Fatal(err)
	}
	return path, info
}

func TestAdminReloadSuccess(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path, finfo := packLexicon(t, "release-2")
	resp := postJSON(t, ts, "/adminz/reload", ReloadRequest{Path: path, ExpectedChecksum: finfo.Checksum})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	rr := decodeBodyInto[ReloadResponse](t, resp)
	if rr.Lexicon.Epoch != 2 || rr.Lexicon.Version != "release-2" || rr.Lexicon.Checksum != finfo.Checksum {
		t.Errorf("reload response %+v", rr.Lexicon)
	}

	// Traffic after the swap is stamped with the new snapshot identity.
	resp = postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disambiguate status %d", resp.StatusCode)
	}
	res := decodeBodyInto[Result](t, resp)
	if res.LexiconEpoch != 2 || res.LexiconVersion != "release-2" {
		t.Errorf("result stamped %d/%q", res.LexiconEpoch, res.LexiconVersion)
	}

	// /statusz carries the lexicon section.
	st := getStatusz(t, ts)
	if st.Lexicon.Epoch != 2 || st.Lexicon.Swaps != 1 || st.Lexicon.Rollbacks != 0 {
		t.Errorf("statusz lexicon %+v", st.Lexicon)
	}
}

func TestAdminReloadRollback(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Corrupt candidate: truncate a valid file mid-body.
	path, _ := packLexicon(t, "broken")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts, "/adminz/reload", ReloadRequest{Path: path})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload status %d, want 422", resp.StatusCode)
	}
	eb := decodeBodyInto[ErrorBody](t, resp)
	if eb.Kind != "reload-failed" {
		t.Errorf("error kind %q", eb.Kind)
	}
	if !strings.Contains(eb.Error, "still serving") {
		t.Errorf("error body %q does not reassure the operator", eb.Error)
	}

	// The old lexicon keeps serving and the rollback is counted.
	resp = postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rollback disambiguate status %d", resp.StatusCode)
	}
	res := decodeBodyInto[Result](t, resp)
	if res.LexiconEpoch != 1 {
		t.Errorf("post-rollback result stamped epoch %d, want 1", res.LexiconEpoch)
	}
	st := getStatusz(t, ts)
	if st.Lexicon.Rollbacks != 1 || st.Lexicon.Swaps != 0 {
		t.Errorf("statusz lexicon %+v", st.Lexicon)
	}
}

func TestAdminReloadBadRequest(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/adminz/reload", ReloadRequest{Path: "   "})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty path status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMetricszLexiconFamilies(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path, _ := packLexicon(t, "m1")
	resp := postJSON(t, ts, "/adminz/reload", ReloadRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// One failed reload so the rollback counter is non-zero too.
	resp = postJSON(t, ts, "/adminz/reload", ReloadRequest{Path: path, ExpectedChecksum: strings.Repeat("00", 32)})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatch reload status %d", resp.StatusCode)
	}
	resp.Body.Close()

	body := getMetricsz(t, ts)
	for _, want := range []string{
		`xsdf_lexicon_epoch{version="m1"`,
		"xsdf_lexicon_swaps_total 1",
		"xsdf_lexicon_rollbacks_total 1",
		"xsdf_lexicon_canary_failures_total 0",
		"xsdf_lexicon_retired_awaiting_drain 0",
		"xsdf_lexicon_reload_duration_seconds_count 2",
		fmt.Sprintf("xsdf_lexicon_concepts %d", xsdf.DefaultNetwork().Len()),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}

func getStatusz(t *testing.T, ts *httptest.Server) StatusReport {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	return decodeBodyInto[StatusReport](t, resp)
}

func getMetricsz(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
