// Request tracing: every request gets a trace ID (the client's
// X-Request-Id when it sends one, a generated one otherwise) that is
// echoed on the response, threaded through the request context into the
// pipeline and the batch/stream workers, and stamped on every slog line
// the request produces — so one grep over the logs reconstructs a single
// document's path through the system, stage timings included.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	xsdf "repro"
)

// RequestIDHeader is the trace-ID header: accepted from the client on
// requests (so a caller's correlation ID survives end to end) and always
// present on responses.
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestInfoKey ctxKey = iota

// requestInfo is the per-request trace state the middleware threads
// through the context: the trace ID, plus the fields the handler fills
// in as the pipeline answers (stage timings, quality) so the completion
// log line can report them. Mutex-guarded: stream handlers write from
// worker goroutines.
type requestInfo struct {
	id string

	mu      sync.Mutex
	stages  []xsdf.StageTiming
	quality string
}

// withRequestInfo installs info into ctx.
func withRequestInfo(ctx context.Context, info *requestInfo) context.Context {
	return context.WithValue(ctx, requestInfoKey, info)
}

// infoFromContext returns the request's trace state, or nil outside a
// traced request (direct Handler() tests, package-internal calls).
func infoFromContext(ctx context.Context) *requestInfo {
	info, _ := ctx.Value(requestInfoKey).(*requestInfo)
	return info
}

// RequestIDFromContext returns the trace ID threaded through a request's
// context, or "" outside a traced request. Pipeline-side observers (the
// Runner's OnStage hook receives the request context) can use it to
// attach measurements to a trace.
func RequestIDFromContext(ctx context.Context) string {
	if info := infoFromContext(ctx); info != nil {
		return info.id
	}
	return ""
}

// noteResult records a pipeline answer's stage timings and quality rung
// on the request's trace, for the completion log line.
func noteResult(ctx context.Context, stages []xsdf.StageTiming, quality string) {
	info := infoFromContext(ctx)
	if info == nil {
		return
	}
	info.mu.Lock()
	info.stages = stages
	info.quality = quality
	info.mu.Unlock()
}

// stageLine renders per-stage timings as one compact log field:
// "guard=0.012ms select=0.154ms disambiguate=3.201ms ...". Milliseconds
// with three decimals keep sub-microsecond guards visible next to
// near-budget disambiguation runs.
func stageLine(stages []xsdf.StageTiming) string {
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i, st := range stages {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", st.Stage, float64(st.Duration.Microseconds())/1e3)
		if st.Failed {
			b.WriteString("(failed)")
		}
	}
	return b.String()
}

// newRequestID generates a 16-hex-char trace ID. Falls back to a
// constant-prefixed zero ID if the system randomness source fails, which
// keeps requests serving (a duplicate trace ID is an inconvenience, a
// 500 on /healthz is an outage).
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID bounds a client-supplied trace ID: printable, no
// newlines (log-injection guard), at most 128 bytes. An unusable ID is
// replaced rather than rejected.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] == 0x7f {
			return ""
		}
	}
	return id
}
