package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	xsdf "repro"
	"repro/internal/faultinject"
	"repro/internal/xmltree"
)

// streamBody renders a /v1/stream request body: header + documents.
func streamBody(t *testing.T, hdr StreamHeader, docs ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := enc.Encode(StreamDoc{Document: d}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// postStream posts a stream request and decodes every response line.
func postStream(t *testing.T, ts *httptest.Server, body []byte) (lines []StreamLine, status int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/stream", NDJSONContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("undecodable stream line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return lines, resp.StatusCode
}

// TestStreamHappyPath: N documents in, N cursor-ordered result lines out,
// then a done-line accounting for every delivery.
func TestStreamHappyPath(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 5
	docs := make([]string, n)
	for i := range docs {
		docs[i] = testDoc
	}
	lines, status := postStream(t, ts, streamBody(t, StreamHeader{}, docs...))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(lines) != n+1 {
		t.Fatalf("%d lines, want %d results + done", len(lines), n)
	}
	for i, line := range lines[:n] {
		if line.Cursor != int64(i+1) {
			t.Errorf("line %d: cursor %d, want %d (monotonic order)", i, line.Cursor, i+1)
		}
		if line.Status != http.StatusOK || line.Result == nil || line.Result.Assigned == 0 {
			t.Errorf("line %d: %+v, want a 200 result", i, line)
		}
		if line.Result != nil && line.Result.Quality != "full" {
			t.Errorf("line %d: quality %q, want full", i, line.Result.Quality)
		}
	}
	final := lines[n]
	if !final.Done || final.Cursor != 0 || final.Delivered != n {
		t.Errorf("terminal line %+v, want done with %d delivered", final, n)
	}
}

// TestStreamResumeSkipsDelivered: reconnecting with resume_from=k replays
// the identical sequence but receives only cursors k+1.. — skipped
// documents are not reprocessed, and cursor numbering is stable.
func TestStreamResumeSkipsDelivered(t *testing.T) {
	var processed int64
	var mu sync.Mutex
	restore := faultinject.SetHooks(faultinject.Hooks{BeforeTree: func(*xmltree.Tree) {
		mu.Lock()
		processed++
		mu.Unlock()
	}})
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	docs := []string{testDoc, testDoc, testDoc, testDoc, testDoc, testDoc}
	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{ResumeFrom: 4}, docs...))
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 results + done", len(lines))
	}
	if lines[0].Cursor != 5 || lines[1].Cursor != 6 {
		t.Errorf("cursors %d,%d, want 5,6", lines[0].Cursor, lines[1].Cursor)
	}
	if !lines[2].Done || lines[2].Delivered != 2 {
		t.Errorf("terminal %+v, want done with 2 delivered", lines[2])
	}
	mu.Lock()
	defer mu.Unlock()
	if processed != 2 {
		t.Errorf("%d documents processed, want 2 (resume must skip, not reprocess)", processed)
	}
}

// TestStreamPerDocErrorsTyped: a malformed document mid-stream becomes a
// typed error line; its neighbors still deliver results and the stream
// runs to completion.
func TestStreamPerDocErrorsTyped(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{},
		testDoc, "<a><b></a>", testDoc, ""))
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 4 results + done", len(lines))
	}
	if lines[0].Status != http.StatusOK || lines[2].Status != http.StatusOK {
		t.Errorf("healthy neighbors: %+v / %+v, want 200", lines[0], lines[2])
	}
	for _, i := range []int{1, 3} {
		if lines[i].Status != http.StatusBadRequest || lines[i].Kind != "malformed-input" {
			t.Errorf("line %d: %+v, want 400/malformed-input", i, lines[i])
		}
	}
	if !lines[4].Done || lines[4].Delivered != 4 {
		t.Errorf("terminal %+v, want done with 4 delivered (typed errors count)", lines[4])
	}
}

// TestStreamDegradedInline: degraded documents flow as 200 lines carrying
// the quality report — the inline counterpart of the unary degraded
// response.
func TestStreamDegradedInline(t *testing.T) {
	s := newTestServer(t, xsdf.Options{
		Degrade: xsdf.DegradeOptions{Enabled: true, FirstSenseAfter: 1},
	}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{}, testDoc))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want result + done", len(lines))
	}
	res := lines[0].Result
	if lines[0].Status != http.StatusOK || res == nil {
		t.Fatalf("degraded line = %+v, want 200 with result", lines[0])
	}
	if res.Quality != "first-sense" || res.Degradation == nil || res.Degradation.Level != "first-sense" {
		t.Errorf("quality report missing: quality %q degradation %+v", res.Quality, res.Degradation)
	}
}

// TestStreamHeaderErrors: a missing or malformed header line is rejected
// as a unary typed error before any line flows.
func TestStreamHeaderErrors(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty":       "",
		"not-json":    "hello\n",
		"neg-resume":  `{"resume_from":-2}` + "\n",
		"neg-subtree": `{"subtree":true,"max_subtrees":-1}` + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/stream", NDJSONContentType, strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			eb := decodeBodyInto[ErrorBody](t, resp)
			if eb.Kind != "malformed-input" {
				t.Errorf("kind = %q, want malformed-input", eb.Kind)
			}
		})
	}
}

// TestStreamSubtreeMode: subtree mode unrolls each document into one
// cursor-stamped line per depth-1 subtree, each carrying its
// Doc/Subtree/SubtreePath locator, with cursors global across documents.
func TestStreamSubtreeMode(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lines, status := postStream(t, ts, streamBody(t, StreamHeader{Subtree: true}, testDoc, testDoc))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(lines) != 7 {
		t.Fatalf("%d lines, want 6 subtree results + done", len(lines))
	}
	for i, line := range lines[:6] {
		if line.Cursor != int64(i+1) {
			t.Errorf("line %d: cursor %d, want %d", i, line.Cursor, i+1)
		}
		if line.Status != http.StatusOK || line.Result == nil {
			t.Errorf("line %d: %+v, want a 200 result", i, line)
		}
		wantDoc, wantSub := int64(i/3+1), i%3+1
		if line.Doc != wantDoc || line.Subtree != wantSub || line.SubtreePath != "movie" {
			t.Errorf("line %d locator: doc %d subtree %d path %q, want %d/%d/movie",
				i, line.Doc, line.Subtree, line.SubtreePath, wantDoc, wantSub)
		}
	}
	if !lines[6].Done || lines[6].Delivered != 6 {
		t.Errorf("terminal %+v, want done with 6 delivered", lines[6])
	}
}

// TestStreamSubtreeResume: resuming mid-document re-scans the skipped
// subtrees but never re-disambiguates them, and cursor numbering stays
// identical across reconnects.
func TestStreamSubtreeResume(t *testing.T) {
	var processed int64
	var mu sync.Mutex
	restore := faultinject.SetHooks(faultinject.Hooks{BeforeTree: func(*xmltree.Tree) {
		mu.Lock()
		processed++
		mu.Unlock()
	}})
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{Subtree: true, ResumeFrom: 4}, testDoc, testDoc))
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 subtree results + done", len(lines))
	}
	if lines[0].Cursor != 5 || lines[1].Cursor != 6 {
		t.Errorf("cursors %d,%d, want 5,6", lines[0].Cursor, lines[1].Cursor)
	}
	if lines[0].Doc != 2 || lines[0].Subtree != 2 || lines[1].Subtree != 3 {
		t.Errorf("locators %+v / %+v, want doc 2 subtrees 2,3", lines[0], lines[1])
	}
	mu.Lock()
	defer mu.Unlock()
	if processed != 2 {
		t.Errorf("%d subtrees processed, want 2 (resume must re-scan, not re-disambiguate)", processed)
	}
}

// TestStreamSubtreeGuardTripScoped: a subtree that blows the per-subtree
// byte budget becomes one typed 413 line; its siblings before and after
// still deliver results and the document completes.
func TestStreamSubtreeGuardTripScoped(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := `<r><a>kelly</a><b>` + strings.Repeat("x", 200) + `</b><c>network</c></r>`
	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{Subtree: true, MaxSubtreeBytes: 40}, doc))
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 3 subtree lines + done", len(lines))
	}
	if lines[0].Status != http.StatusOK || lines[2].Status != http.StatusOK {
		t.Errorf("healthy siblings: %+v / %+v, want 200", lines[0], lines[2])
	}
	if lines[1].Status != http.StatusRequestEntityTooLarge || lines[1].Kind != "limit" {
		t.Errorf("tripped subtree line %+v, want 413/limit", lines[1])
	}
	if lines[1].Doc != 1 || lines[1].Subtree != 2 {
		t.Errorf("tripped locator doc %d subtree %d, want 1/2", lines[1].Doc, lines[1].Subtree)
	}
	if !lines[3].Done || lines[3].Delivered != 3 {
		t.Errorf("terminal %+v, want done with 3 delivered", lines[3])
	}
}

// TestStreamSubtreeMalformedDocScoped: a document that turns malformed
// mid-scan keeps its already-completed subtrees, ends with one typed 400
// line, and never takes its neighbor documents down with it.
func TestStreamSubtreeMalformedDocScoped(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lines, _ := postStream(t, ts, streamBody(t, StreamHeader{Subtree: true},
		`<r><s>kelly</s><broken`, testDoc))
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 5 lines + done", len(lines))
	}
	if lines[0].Status != http.StatusOK || lines[0].Doc != 1 || lines[0].Subtree != 1 {
		t.Errorf("partial subtree before the fault: %+v, want a 200 doc-1 line", lines[0])
	}
	if lines[1].Status != http.StatusBadRequest || lines[1].Kind != "malformed-input" || lines[1].Doc != 1 {
		t.Errorf("fatal line %+v, want 400/malformed-input on doc 1", lines[1])
	}
	for i := 2; i < 5; i++ {
		if lines[i].Status != http.StatusOK || lines[i].Doc != 2 {
			t.Errorf("neighbor line %d: %+v, want a 200 doc-2 line", i, lines[i])
		}
	}
	if !lines[5].Done || lines[5].Delivered != 5 {
		t.Errorf("terminal %+v, want done with 5 delivered", lines[5])
	}
}

// pipeListener hands the HTTP server one pre-made in-memory connection.
// net.Pipe is fully synchronous — a write blocks until the peer reads —
// so it models a client whose receive window is exactly zero, the
// worst-case slow consumer.
type pipeListener struct {
	conn net.Conn
	once sync.Once
	done chan struct{}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	var c net.Conn
	l.once.Do(func() { c = l.conn })
	if c != nil {
		return c, nil
	}
	<-l.done
	return nil, net.ErrClosed
}
func (l *pipeListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}
func (l *pipeListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// TestStreamSlowClientShed is the slow-client backpressure satellite: a
// reader that stops consuming mid-stream must trip the per-line write
// deadline, shed the stream, and free the handler slot and every worker
// goroutine — no semaphore or goroutine leak under -race.
func TestStreamSlowClientShed(t *testing.T) {
	s := newTestServer(t, xsdf.Options{}, Config{
		Concurrency:        2,
		StreamWindow:       2,
		StreamWriteTimeout: 150 * time.Millisecond,
	})

	before := runtime.NumGoroutine()

	serverSide, clientSide := net.Pipe()
	l := &pipeListener{conn: serverSide, done: make(chan struct{})}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	defer func() {
		l.Close()
		s.httpSrv.Close()
		<-serveDone
	}()

	// Many documents: the emitter has lines to write long after the client
	// stops reading.
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = testDoc
	}
	body := streamBody(t, StreamHeader{}, docs...)
	req := fmt.Sprintf("POST /v1/stream HTTP/1.1\r\nHost: t\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		NDJSONContentType, len(body))

	writeDone := make(chan error, 1)
	go func() {
		if _, err := io.WriteString(clientSide, req); err != nil {
			writeDone <- err
			return
		}
		_, err := clientSide.Write(body)
		writeDone <- err
	}()

	// Consume the response headers and the first result line, then stop
	// reading entirely — the zero-window client.
	br := bufio.NewReader(clientSide)
	sawLine := false
	for !sawLine {
		lineBytes, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading early response: %v", err)
		}
		if bytes.Contains(lineBytes, []byte(`"cursor":1`)) {
			sawLine = true
		}
	}

	// The server must shed the stream on its own: in-flight drops to zero
	// and the handler slot frees without the client ever reading again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.InFlight() == 0 && len(s.sem) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream not shed: inflight=%d slots=%d", s.InFlight(), len(s.sem))
		}
		time.Sleep(10 * time.Millisecond)
	}
	clientSide.Close()
	<-writeDone

	// Goroutines must drain back to the baseline (plus the serve loop).
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamDrainFinishesWindow is the graceful-drain satellite: a drain
// beginning mid-stream lets the in-flight window finish emitting complete
// lines, ends the stream with a "draining" terminal line instead of
// cutting it mid-line, and Shutdown returns nil within the deadline.
func TestStreamDrainFinishesWindow(t *testing.T) {
	firstNode := make(chan struct{}, 1)
	hold := make(chan struct{})
	restore := faultinject.SetHooks(faultinject.Hooks{BeforeTree: func(*xmltree.Tree) {
		select {
		case firstNode <- struct{}{}:
			<-hold // hold only the first document mid-pipeline
		default:
		}
	}})
	defer restore()

	s := newTestServer(t, xsdf.Options{}, Config{StreamWindow: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	docs := make([]string, 6)
	for i := range docs {
		docs[i] = testDoc
	}
	type streamReply struct {
		lines []StreamLine
		err   error
	}
	got := make(chan streamReply, 1)
	go func() {
		resp, err := http.Post("http://"+l.Addr().String()+"/v1/stream",
			NDJSONContentType, bytes.NewReader(streamBody(t, StreamHeader{}, docs...)))
		if err != nil {
			got <- streamReply{err: err}
			return
		}
		defer resp.Body.Close()
		var lines []StreamLine
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 8<<20)
		for sc.Scan() {
			var line StreamLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				got <- streamReply{err: fmt.Errorf("torn line %q: %v", sc.Bytes(), err)}
				return
			}
			lines = append(lines, line)
		}
		got <- streamReply{lines: lines, err: sc.Err()}
	}()

	// Wait until document 1 is mid-pipeline, then drain while it is held.
	select {
	case <-firstNode:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never reached the pipeline")
	}
	s.Drain()
	close(hold)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	r := <-got
	if r.err != nil {
		t.Fatalf("stream cut mid-line by drain: %v", r.err)
	}
	if len(r.lines) == 0 {
		t.Fatal("no lines received")
	}
	final := r.lines[len(r.lines)-1]
	if final.Kind != "draining" || final.Done {
		t.Fatalf("terminal line %+v, want kind=draining (resume elsewhere)", final)
	}
	results := r.lines[:len(r.lines)-1]
	if len(results) == 0 || len(results) >= len(docs) {
		t.Errorf("%d result lines, want the in-flight window only (0 < n < %d)", len(results), len(docs))
	}
	for i, line := range results {
		if line.Cursor != int64(i+1) || line.Status != http.StatusOK || line.Result == nil {
			t.Errorf("line %d: %+v, want complete 200 result with cursor %d", i, line, i+1)
		}
	}
	if final.Delivered != int64(len(results)) {
		t.Errorf("terminal Delivered = %d, want %d", final.Delivered, len(results))
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil (clean drain)", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
}

// TestStreamBreakerIsolation is the breaker/stream interaction satellite:
// a seeded ServerErrRate schedule opens the stream route's breaker
// without poisoning /v1/disambiguate, and a half-open probe after the
// cooldown recovers the stream route.
func TestStreamBreakerIsolation(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	restore := faultinject.Install(faultinject.New(faultinject.Config{Seed: 7, ServerErrRate: 1}))
	s := newTestServer(t, xsdf.Options{}, Config{
		Clock: clock,
		Breaker: BreakerOptions{
			Window: time.Second, Buckets: 2, MinSamples: 4,
			FailureRatio: 0.5, Cooldown: time.Second,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Feed the stream breaker its failures: every request 500s at the
	// injected server fault before any line flows.
	streamReq := streamBody(t, StreamHeader{}, testDoc)
	for i := 0; i < 4; i++ {
		_, status := func() ([]StreamLine, int) {
			resp, err := http.Post(ts.URL+"/v1/stream", NDJSONContentType, bytes.NewReader(streamReq))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			return nil, resp.StatusCode
		}()
		if status != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 injected", i, status)
		}
	}

	// The stream circuit is open: fail fast with 503 + Retry-After.
	resp, err := http.Post(ts.URL+"/v1/stream", NDJSONContentType, bytes.NewReader(streamReq))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-circuit answer without Retry-After")
	}
	if eb := decodeBodyInto[ErrorBody](t, resp); eb.Kind != "circuit-open" {
		t.Errorf("kind = %q, want circuit-open", eb.Kind)
	}

	// /v1/disambiguate is NOT poisoned: its breaker is still closed, so the
	// request is attempted (and fails on the injected fault as a 500, not a
	// fail-fast 503).
	resp = postJSON(t, ts, "/v1/disambiguate", DisambiguateRequest{Document: testDoc})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("disambiguate status = %d, want 500 (attempted, breaker closed)", resp.StatusCode)
	}
	if eb := decodeBodyInto[ErrorBody](t, resp); eb.Kind != "injected" {
		t.Errorf("disambiguate kind = %q, want injected", eb.Kind)
	}
	if st := s.breakers["disambiguate"].report().State; st != "closed" {
		t.Errorf("disambiguate breaker %q, want closed", st)
	}
	if st := s.breakers["stream"].report().State; st != "open" {
		t.Errorf("stream breaker %q, want open", st)
	}

	// Heal the fault, age past the cooldown: the half-open probe succeeds
	// and closes the stream circuit again.
	restore()
	advance(2 * time.Second)
	lines, status := postStream(t, ts, streamReq)
	if status != http.StatusOK || len(lines) != 2 || !lines[1].Done {
		t.Fatalf("probe after cooldown: status %d lines %+v, want a clean stream", status, lines)
	}
	if st := s.breakers["stream"].report().State; st != "closed" {
		t.Errorf("stream breaker after probe %q, want closed", st)
	}
}
