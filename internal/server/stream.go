// POST /v1/stream: the sustained-load streaming batch endpoint. The
// request body is NDJSON — one StreamHeader line, then one StreamDoc line
// per document — and the response is NDJSON too: one StreamLine per
// document, emitted in request order as each document completes, so a
// corpus far larger than memory flows through a bounded window instead of
// being buffered whole (the batch endpoint's shape inverted for scale).
//
// The design center is backpressure in both directions:
//
//   - Upstream: documents are pulled from the request body incrementally
//     and at most StreamWindow are in flight at once; when the window is
//     full the reader stops consuming the body, so TCP flow control
//     propagates the server's pace back to the producer.
//   - Downstream: every response line is written under StreamWriteTimeout.
//     A client that stops consuming blocks the emitter until the deadline
//     fires, and the stream is then shed — the handler slot, the window,
//     and every worker goroutine are released — rather than letting a slow
//     reader pin pipeline capacity.
//
// Each document inherits its own budget from the header's budget_ms (the
// per-line budget), runs through the full guarded pipeline (admission
// gate, degradation ladder, resource guards), and maps onto its line
// through the same xsdferrors.HTTPStatus taxonomy as /v1/disambiguate —
// degraded results flow inline as status-200 lines carrying the quality
// report.
//
// Streams are resumable: line N carries cursor N (its 1-based position in
// the request sequence), and a client reconnecting with resume_from=N
// re-sends the identical sequence and receives lines N+1.. — delivered
// documents are skipped, not reprocessed. A clean stream ends with a
// done-line; a missing done-line tells the client the stream was cut.
// During graceful drain the in-flight window finishes emitting, a
// "draining" terminal line is sent instead of done, and the client resumes
// against another replica.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	xsdf "repro"
	"repro/internal/faultinject"
	"repro/xsdferrors"
)

// NDJSONContentType is the media type of /v1/stream requests and
// responses.
const NDJSONContentType = "application/x-ndjson"

// streamJob is one document moving through the stream window: the reader
// creates it in cursor order, a worker fills line and closes done, and the
// emitter writes lines in the same cursor order it received the jobs.
type streamJob struct {
	cursor int64
	line   StreamLine
	done   chan struct{}
}

// serveStream: POST /v1/stream.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	body := bufio.NewScanner(r.Body)
	body.Buffer(make([]byte, 64<<10), s.streamLineLimit())

	hdr, err := readStreamHeader(body, s.streamLineLimit())
	if err != nil {
		s.writeError(w, err)
		return
	}
	budget := s.cfg.DefaultTimeout
	if hdr.BudgetMS > 0 {
		budget = time.Duration(hdr.BudgetMS) * time.Millisecond
		if budget > s.cfg.MaxTimeout {
			budget = s.cfg.MaxTimeout
		}
	}
	window := s.cfg.StreamWindow
	if hdr.Window > 0 && hdr.Window < window {
		window = hdr.Window
	}
	if hdr.ResumeFrom > 0 {
		s.streamResumes.Add(1)
	}

	// The stream occupies one handler slot for its whole life; saturation
	// past the per-line budget is shed as overload before any line flows.
	slotCtx, slotCancel := context.WithTimeout(ctx, budget)
	release, err := s.acquireSlot(slotCtx)
	slotCancel()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	if err := faultinject.ServerFault(); err != nil {
		s.writeErrorBody(w, http.StatusInternalServerError, err.Error(), "injected")
		return
	}

	// From here the response is committed: a 200 NDJSON stream whose
	// failures are typed lines, not status codes. Full-duplex mode is
	// required, not a nicety: without it, net/http reacts to the first
	// response write by discarding and closing the still-unconsumed
	// request body (the Issue 15527 deadlock guard), which races with the
	// reader goroutine and tears body lines once the request outgrows the
	// scanner's buffer.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		s.writeError(w, fmt.Errorf("server: enabling full-duplex streaming: %w", err))
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)

	// Reader: pull documents from the body incrementally, skip the lines a
	// resuming client already holds, and dispatch the rest into the
	// bounded window. jobs' capacity plus the one job the emitter holds is
	// the in-flight window; a full channel stops the reader — and through
	// it, the request body — until the emitter delivers a line. In subtree
	// mode each document is additionally unrolled into one job per
	// completed subtree, through the same window.
	rd := &streamReader{
		s:      s,
		ctx:    ctx,
		body:   body,
		hdr:    hdr,
		budget: budget,
		jobs:   make(chan *streamJob, window-1),
	}
	jobs := rd.jobs
	go func() {
		defer close(jobs)
		if hdr.Subtree {
			rd.runSubtrees()
		} else {
			rd.runDocs()
		}
	}()

	// Emitter: deliver lines in cursor order, each under its own write
	// deadline. A failed write sheds the stream — processing is canceled
	// and the remaining jobs are drained without writing, so every worker
	// goroutine ends before the handler returns.
	var delivered int64
	shed := false
	for job := range jobs {
		<-job.done
		if shed {
			continue
		}
		if faultinject.StreamEmit() {
			// Injected mid-stream disconnect: sever the connection instead
			// of delivering the line. Cancel first so the reader and
			// workers unwind; ErrAbortHandler passes through the recovery
			// middleware and makes net/http drop the connection.
			cancel()
			for j := range jobs {
				<-j.done
			}
			panic(http.ErrAbortHandler)
		}
		if err := s.writeStreamLine(rc, w, job.line); err != nil {
			s.logger.Warn("stream shed",
				slog.String("request_id", RequestIDFromContext(ctx)),
				slog.Int64("cursor", job.cursor),
				slog.Any("error", err))
			s.streamShed.Add(1)
			shed = true
			cancel()
			continue
		}
		delivered++
		s.streamDelivered.Add(1)
		if job.line.Subtree > 0 {
			if job.line.Status == http.StatusOK {
				s.subtreeEmitted.Add(1)
			} else {
				s.subtreeFailed.Add(1)
				if job.line.Kind == "limit" {
					s.subtreeGuardTripped.Add(1)
				}
			}
		}
		if job.line.Status == http.StatusOK && job.line.Result != nil {
			s.countQuality(job.line.Result.Quality)
		}
	}
	if shed {
		return
	}
	if rd.aborted {
		// Injected mid-document disconnect (PointSubtree): every pushed
		// job has been delivered, now sever the connection without a
		// terminal line so the client resumes from its last cursor.
		cancel()
		panic(http.ErrAbortHandler)
	}

	final := StreamLine{Delivered: delivered}
	switch {
	case rd.drained:
		final.Kind = "draining"
		final.Error = "server draining; resume from the last cursor against another replica"
	case rd.readErr != nil:
		err := rd.readErr
		if errors.Is(err, bufio.ErrTooLong) {
			err = &xsdferrors.LimitError{Limit: "stream-line-bytes", Max: s.streamLineLimit(), Actual: s.streamLineLimit() + 1}
		}
		final.Status = xsdferrors.HTTPStatus(err)
		final.Error = fmt.Sprintf("server: reading stream body: %v", err)
		final.Kind = xsdferrors.Kind(err)
	default:
		final.Done = true
	}
	if err := s.writeStreamLine(rc, w, final); err != nil {
		s.logger.Warn("stream terminal line failed",
			slog.String("request_id", RequestIDFromContext(ctx)),
			slog.Any("error", err))
	}
	s.logger.Debug("stream complete",
		slog.String("request_id", RequestIDFromContext(ctx)),
		slog.Int64("delivered", delivered),
		slog.Bool("drained", rd.drained),
		slog.Bool("subtree", hdr.Subtree),
		slog.Int64("resume_from", hdr.ResumeFrom))
}

// streamReader pulls the request body's document lines and turns them
// into streamJobs on the bounded window. The outcome flags are written
// by the reader goroutine and read by the emitter only after the jobs
// channel closes, which orders the accesses.
type streamReader struct {
	s      *Server
	ctx    context.Context
	body   *bufio.Scanner
	hdr    StreamHeader
	budget time.Duration
	jobs   chan *streamJob

	cursor int64
	// readErr is the body-read failure that ended the stream, drained
	// marks a graceful-drain stop, aborted an injected mid-document cut
	// (subtree mode) the emitter must turn into a connection abort.
	readErr error
	drained bool
	aborted bool
}

// interrupted polls the drain and cancellation signals between lines.
func (rd *streamReader) interrupted() bool {
	select {
	case <-rd.s.drainCh:
		rd.drained = true
		return true
	case <-rd.ctx.Done():
		return true
	default:
		return false
	}
}

// push enqueues one job, blocking while the window is full — the
// backpressure that stops body consumption. It reports false when the
// stream died while waiting.
func (rd *streamReader) push(job *streamJob) bool {
	select {
	case rd.jobs <- job:
		return true
	case <-rd.ctx.Done():
		return false
	}
}

// pushError enqueues a pre-completed typed error line at the current
// cursor, unless a resuming client already holds it.
func (rd *streamReader) pushError(err error, locate func(*StreamLine)) bool {
	if rd.cursor <= rd.hdr.ResumeFrom {
		return true
	}
	job := &streamJob{cursor: rd.cursor, done: make(chan struct{})}
	job.line = streamErrorLine(rd.cursor, err)
	if locate != nil {
		locate(&job.line)
	}
	close(job.done)
	return rd.push(job)
}

// runDocs is whole-document mode: one job per body line.
func (rd *streamReader) runDocs() {
	for {
		if rd.interrupted() {
			return
		}
		if !rd.body.Scan() {
			rd.readErr = rd.body.Err()
			return
		}
		raw := bytes.TrimSpace(rd.body.Bytes())
		if len(raw) == 0 {
			continue // tolerate blank separator lines (cursor unchanged)
		}
		rd.cursor++
		if rd.cursor <= rd.hdr.ResumeFrom {
			continue // already delivered before the reconnect
		}
		var doc StreamDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			if !rd.pushError(fmt.Errorf(
				"%w: stream line %d: %v", xsdferrors.ErrMalformedInput, rd.cursor, err), nil) {
				return
			}
			continue
		}
		job := &streamJob{cursor: rd.cursor, done: make(chan struct{})}
		// Push before spawning: a full channel is the backpressure that
		// stops body consumption while the window is busy.
		if !rd.push(job) {
			return
		}
		go rd.s.processStreamDoc(rd.ctx, job, doc.Document, rd.budget)
	}
}

// runSubtrees is incremental mode: each document line is parsed subtree
// by subtree and every completed subtree becomes its own job, so one
// document larger than memory flows through the same bounded window.
// Cursors stay global across documents; a resuming client's skipped
// subtrees are re-scanned (cheap) but never re-disambiguated.
func (rd *streamReader) runSubtrees() {
	docNo := int64(0)
	for {
		if rd.interrupted() {
			return
		}
		if !rd.body.Scan() {
			rd.readErr = rd.body.Err()
			return
		}
		raw := bytes.TrimSpace(rd.body.Bytes())
		if len(raw) == 0 {
			continue
		}
		docNo++
		var doc StreamDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			rd.cursor++
			if !rd.pushError(fmt.Errorf(
				"%w: stream line %d: %v", xsdferrors.ErrMalformedInput, docNo, err),
				func(line *StreamLine) { line.Doc = docNo }) {
				return
			}
			continue
		}
		if !rd.scanSubtrees(docNo, doc.Document) {
			return
		}
	}
}

// scanSubtrees unrolls one document into per-subtree jobs. A recoverable
// guard trip becomes a typed error line and the scan continues behind
// it; a fatal scan error (malformed input, a document budget) ends this
// document with an error line and moves on to the next — one broken
// document never takes down the stream. It reports false when the
// stream itself died.
func (rd *streamReader) scanSubtrees(docNo int64, document string) bool {
	sc := rd.s.fw.SubtreeScanner(strings.NewReader(document), xsdf.SubtreeOptions{
		SplitDepth:      rd.hdr.SubtreeDepth,
		MaxSubtreeBytes: rd.hdr.MaxSubtreeBytes,
		MaxSubtrees:     rd.hdr.MaxSubtrees,
	})
	for {
		if rd.interrupted() {
			return false
		}
		st, err := sc.Next()
		if err == io.EOF {
			return true
		}
		if err != nil {
			var se *xsdf.SubtreeError
			recoverable := errors.As(err, &se) && !se.Fatal
			rd.cursor++
			locate := func(line *StreamLine) {
				line.Doc = docNo
				if se != nil {
					line.Subtree = se.Subtree + 1
				}
			}
			if !rd.pushError(err, locate) {
				return false
			}
			if !recoverable {
				return true // next document
			}
			continue
		}
		rd.cursor++
		if rd.cursor <= rd.hdr.ResumeFrom {
			continue // already delivered; re-scanned, not re-processed
		}
		if faultinject.SubtreeNext() {
			// Injected mid-document cut: stop reading; the emitter
			// delivers what was already pushed, then severs the
			// connection. Fired only for fresh subtrees, so a resuming
			// stream is not re-exposed for work it already delivered.
			rd.aborted = true
			return false
		}
		rd.s.subtreeBytes.Observe(float64(st.Bytes()))
		job := &streamJob{cursor: rd.cursor, done: make(chan struct{})}
		if !rd.push(job) {
			return false
		}
		go rd.s.processStreamSubtree(rd.ctx, job, st, docNo, rd.budget)
	}
}

// processStreamDoc runs one document through the pipeline under its
// per-line budget and fills the job's line.
func (s *Server) processStreamDoc(ctx context.Context, job *streamJob, document string, budget time.Duration) {
	defer close(job.done)
	defer func() {
		if v := recover(); v != nil {
			pe := &xsdferrors.PanicError{Doc: int(job.cursor), Value: v}
			job.line = streamErrorLine(job.cursor, pe)
		}
	}()
	if strings.TrimSpace(document) == "" {
		job.line = streamErrorLine(job.cursor, fmt.Errorf("%w: empty document", xsdferrors.ErrMalformedInput))
		return
	}
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	res, runErr := s.fw.DisambiguateContext(dctx, strings.NewReader(document))
	if res == nil {
		job.line = streamErrorLine(job.cursor, runErr)
		return
	}
	// Success — possibly degraded: the line is the inline counterpart of
	// the unary 200 + quality header + degradation report.
	job.line = StreamLine{Cursor: job.cursor, Status: http.StatusOK, Result: resultFromRun(res, runErr)}
}

// processStreamSubtree runs one completed subtree through the pipeline
// under the per-line budget and fills the job's line with the subtree's
// locator (document ordinal, 1-based subtree ordinal, envelope path).
func (s *Server) processStreamSubtree(ctx context.Context, job *streamJob, st *xsdf.Subtree, docNo int64, budget time.Duration) {
	defer close(job.done)
	locate := func(line *StreamLine) {
		line.Doc = docNo
		line.Subtree = st.Index + 1
		line.SubtreePath = strings.Join(st.Path, "/")
	}
	defer func() {
		if v := recover(); v != nil {
			pe := &xsdferrors.PanicError{Doc: int(job.cursor), Value: v}
			job.line = streamErrorLine(job.cursor, pe)
			locate(&job.line)
		}
	}()
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	res, runErr := s.fw.DisambiguateTreeContext(dctx, st.Tree)
	if res == nil {
		job.line = streamErrorLine(job.cursor, runErr)
		locate(&job.line)
		return
	}
	job.line = StreamLine{Cursor: job.cursor, Status: http.StatusOK, Result: resultFromRun(res, runErr)}
	locate(&job.line)
}

// streamErrorLine maps one document's pipeline error onto its typed line.
func streamErrorLine(cursor int64, err error) StreamLine {
	if err == nil {
		err = fmt.Errorf("server: document produced no result and no error")
	}
	return StreamLine{
		Cursor: cursor,
		Status: xsdferrors.HTTPStatus(err),
		Error:  err.Error(),
		Kind:   xsdferrors.Kind(err),
	}
}

// writeStreamLine writes one NDJSON line and flushes it under the
// configured write deadline, so a stalled client surfaces as a write
// error instead of a blocked worker.
func (s *Server) writeStreamLine(rc *http.ResponseController, w http.ResponseWriter, line StreamLine) error {
	buf, err := json.Marshal(line)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if s.cfg.StreamWriteTimeout > 0 {
		if err := rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return err
		}
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return rc.Flush()
}

// readStreamHeader decodes the mandatory first line of a stream request.
func readStreamHeader(body *bufio.Scanner, limit int) (StreamHeader, error) {
	var hdr StreamHeader
	if !body.Scan() {
		err := body.Err()
		if errors.Is(err, bufio.ErrTooLong) {
			return hdr, &xsdferrors.LimitError{Limit: "stream-line-bytes", Max: limit, Actual: limit + 1}
		}
		return hdr, fmt.Errorf("%w: empty stream body (want a header line)", xsdferrors.ErrMalformedInput)
	}
	if err := json.Unmarshal(bytes.TrimSpace(body.Bytes()), &hdr); err != nil {
		return hdr, fmt.Errorf("%w: stream header: %v", xsdferrors.ErrMalformedInput, err)
	}
	if hdr.ResumeFrom < 0 {
		return hdr, fmt.Errorf("%w: negative resume_from %d", xsdferrors.ErrMalformedInput, hdr.ResumeFrom)
	}
	// Subtree-mode budgets stay server-governed: clients may tighten them,
	// never disable them, so negatives are rejected rather than passed
	// through to the scanner's "disabled" convention.
	if hdr.SubtreeDepth < 0 || hdr.MaxSubtreeBytes < 0 || hdr.MaxSubtrees < 0 {
		return hdr, fmt.Errorf("%w: negative subtree option", xsdferrors.ErrMalformedInput)
	}
	return hdr, nil
}

// streamLineLimit is the per-line byte cap of a stream request: the
// streaming reinterpretation of MaxBodyBytes — the body as a whole is
// unbounded (that is the point), each line is not.
func (s *Server) streamLineLimit() int {
	return int(s.cfg.MaxBodyBytes)
}
