// POST /v1/stream: the sustained-load streaming batch endpoint. The
// request body is NDJSON — one StreamHeader line, then one StreamDoc line
// per document — and the response is NDJSON too: one StreamLine per
// document, emitted in request order as each document completes, so a
// corpus far larger than memory flows through a bounded window instead of
// being buffered whole (the batch endpoint's shape inverted for scale).
//
// The design center is backpressure in both directions:
//
//   - Upstream: documents are pulled from the request body incrementally
//     and at most StreamWindow are in flight at once; when the window is
//     full the reader stops consuming the body, so TCP flow control
//     propagates the server's pace back to the producer.
//   - Downstream: every response line is written under StreamWriteTimeout.
//     A client that stops consuming blocks the emitter until the deadline
//     fires, and the stream is then shed — the handler slot, the window,
//     and every worker goroutine are released — rather than letting a slow
//     reader pin pipeline capacity.
//
// Each document inherits its own budget from the header's budget_ms (the
// per-line budget), runs through the full guarded pipeline (admission
// gate, degradation ladder, resource guards), and maps onto its line
// through the same xsdferrors.HTTPStatus taxonomy as /v1/disambiguate —
// degraded results flow inline as status-200 lines carrying the quality
// report.
//
// Streams are resumable: line N carries cursor N (its 1-based position in
// the request sequence), and a client reconnecting with resume_from=N
// re-sends the identical sequence and receives lines N+1.. — delivered
// documents are skipped, not reprocessed. A clean stream ends with a
// done-line; a missing done-line tells the client the stream was cut.
// During graceful drain the in-flight window finishes emitting, a
// "draining" terminal line is sent instead of done, and the client resumes
// against another replica.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/xsdferrors"
)

// NDJSONContentType is the media type of /v1/stream requests and
// responses.
const NDJSONContentType = "application/x-ndjson"

// streamJob is one document moving through the stream window: the reader
// creates it in cursor order, a worker fills line and closes done, and the
// emitter writes lines in the same cursor order it received the jobs.
type streamJob struct {
	cursor int64
	line   StreamLine
	done   chan struct{}
}

// serveStream: POST /v1/stream.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	body := bufio.NewScanner(r.Body)
	body.Buffer(make([]byte, 64<<10), s.streamLineLimit())

	hdr, err := readStreamHeader(body, s.streamLineLimit())
	if err != nil {
		s.writeError(w, err)
		return
	}
	budget := s.cfg.DefaultTimeout
	if hdr.BudgetMS > 0 {
		budget = time.Duration(hdr.BudgetMS) * time.Millisecond
		if budget > s.cfg.MaxTimeout {
			budget = s.cfg.MaxTimeout
		}
	}
	window := s.cfg.StreamWindow
	if hdr.Window > 0 && hdr.Window < window {
		window = hdr.Window
	}
	if hdr.ResumeFrom > 0 {
		s.streamResumes.Add(1)
	}

	// The stream occupies one handler slot for its whole life; saturation
	// past the per-line budget is shed as overload before any line flows.
	slotCtx, slotCancel := context.WithTimeout(ctx, budget)
	release, err := s.acquireSlot(slotCtx)
	slotCancel()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	if err := faultinject.ServerFault(); err != nil {
		s.writeErrorBody(w, http.StatusInternalServerError, err.Error(), "injected")
		return
	}

	// From here the response is committed: a 200 NDJSON stream whose
	// failures are typed lines, not status codes.
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	// Reader: pull documents from the body incrementally, skip the ones a
	// resuming client already holds, and dispatch the rest into the
	// bounded window. jobs' capacity plus the one job the emitter holds is
	// the in-flight window; a full channel stops the reader — and through
	// it, the request body — until the emitter delivers a line.
	jobs := make(chan *streamJob, window-1)
	var readErr error
	var drained bool
	go func() {
		defer close(jobs)
		cursor := int64(0)
		for {
			select {
			case <-s.drainCh:
				drained = true
				return
			case <-ctx.Done():
				return
			default:
			}
			if !body.Scan() {
				readErr = body.Err()
				return
			}
			raw := bytes.TrimSpace(body.Bytes())
			if len(raw) == 0 {
				continue // tolerate blank separator lines (cursor unchanged)
			}
			cursor++
			if cursor <= hdr.ResumeFrom {
				continue // already delivered before the reconnect
			}
			job := &streamJob{cursor: cursor, done: make(chan struct{})}
			var doc StreamDoc
			decodeErr := json.Unmarshal(raw, &doc)
			if decodeErr != nil {
				job.line = streamErrorLine(job.cursor, fmt.Errorf(
					"%w: stream line %d: %v", xsdferrors.ErrMalformedInput, cursor, decodeErr))
				close(job.done)
			}
			// Push before spawning: a full channel is the backpressure that
			// stops body consumption while the window is busy.
			select {
			case jobs <- job:
			case <-ctx.Done():
				return
			}
			if decodeErr == nil {
				go s.processStreamDoc(ctx, job, doc.Document, budget)
			}
		}
	}()

	// Emitter: deliver lines in cursor order, each under its own write
	// deadline. A failed write sheds the stream — processing is canceled
	// and the remaining jobs are drained without writing, so every worker
	// goroutine ends before the handler returns.
	var delivered int64
	shed := false
	for job := range jobs {
		<-job.done
		if shed {
			continue
		}
		if faultinject.StreamEmit() {
			// Injected mid-stream disconnect: sever the connection instead
			// of delivering the line. Cancel first so the reader and
			// workers unwind; ErrAbortHandler passes through the recovery
			// middleware and makes net/http drop the connection.
			cancel()
			for j := range jobs {
				<-j.done
			}
			panic(http.ErrAbortHandler)
		}
		if err := s.writeStreamLine(rc, w, job.line); err != nil {
			s.logger.Warn("stream shed",
				slog.String("request_id", RequestIDFromContext(ctx)),
				slog.Int64("cursor", job.cursor),
				slog.Any("error", err))
			s.streamShed.Add(1)
			shed = true
			cancel()
			continue
		}
		delivered++
		s.streamDelivered.Add(1)
		if job.line.Status == http.StatusOK && job.line.Result != nil {
			s.countQuality(job.line.Result.Quality)
		}
	}
	if shed {
		return
	}

	final := StreamLine{Delivered: delivered}
	switch {
	case drained:
		final.Kind = "draining"
		final.Error = "server draining; resume from the last cursor against another replica"
	case readErr != nil:
		err := readErr
		if errors.Is(err, bufio.ErrTooLong) {
			err = &xsdferrors.LimitError{Limit: "stream-line-bytes", Max: s.streamLineLimit(), Actual: s.streamLineLimit() + 1}
		}
		final.Status = xsdferrors.HTTPStatus(err)
		final.Error = fmt.Sprintf("server: reading stream body: %v", err)
		final.Kind = xsdferrors.Kind(err)
	default:
		final.Done = true
	}
	if err := s.writeStreamLine(rc, w, final); err != nil {
		s.logger.Warn("stream terminal line failed",
			slog.String("request_id", RequestIDFromContext(ctx)),
			slog.Any("error", err))
	}
	s.logger.Debug("stream complete",
		slog.String("request_id", RequestIDFromContext(ctx)),
		slog.Int64("delivered", delivered),
		slog.Bool("drained", drained),
		slog.Int64("resume_from", hdr.ResumeFrom))
}

// processStreamDoc runs one document through the pipeline under its
// per-line budget and fills the job's line.
func (s *Server) processStreamDoc(ctx context.Context, job *streamJob, document string, budget time.Duration) {
	defer close(job.done)
	defer func() {
		if v := recover(); v != nil {
			pe := &xsdferrors.PanicError{Doc: int(job.cursor), Value: v}
			job.line = streamErrorLine(job.cursor, pe)
		}
	}()
	if strings.TrimSpace(document) == "" {
		job.line = streamErrorLine(job.cursor, fmt.Errorf("%w: empty document", xsdferrors.ErrMalformedInput))
		return
	}
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	res, runErr := s.fw.DisambiguateContext(dctx, strings.NewReader(document))
	if res == nil {
		job.line = streamErrorLine(job.cursor, runErr)
		return
	}
	// Success — possibly degraded: the line is the inline counterpart of
	// the unary 200 + quality header + degradation report.
	job.line = StreamLine{Cursor: job.cursor, Status: http.StatusOK, Result: resultFromRun(res, runErr)}
}

// streamErrorLine maps one document's pipeline error onto its typed line.
func streamErrorLine(cursor int64, err error) StreamLine {
	if err == nil {
		err = fmt.Errorf("server: document produced no result and no error")
	}
	return StreamLine{
		Cursor: cursor,
		Status: xsdferrors.HTTPStatus(err),
		Error:  err.Error(),
		Kind:   xsdferrors.Kind(err),
	}
}

// writeStreamLine writes one NDJSON line and flushes it under the
// configured write deadline, so a stalled client surfaces as a write
// error instead of a blocked worker.
func (s *Server) writeStreamLine(rc *http.ResponseController, w http.ResponseWriter, line StreamLine) error {
	buf, err := json.Marshal(line)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if s.cfg.StreamWriteTimeout > 0 {
		if err := rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return err
		}
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return rc.Flush()
}

// readStreamHeader decodes the mandatory first line of a stream request.
func readStreamHeader(body *bufio.Scanner, limit int) (StreamHeader, error) {
	var hdr StreamHeader
	if !body.Scan() {
		err := body.Err()
		if errors.Is(err, bufio.ErrTooLong) {
			return hdr, &xsdferrors.LimitError{Limit: "stream-line-bytes", Max: limit, Actual: limit + 1}
		}
		return hdr, fmt.Errorf("%w: empty stream body (want a header line)", xsdferrors.ErrMalformedInput)
	}
	if err := json.Unmarshal(bytes.TrimSpace(body.Bytes()), &hdr); err != nil {
		return hdr, fmt.Errorf("%w: stream header: %v", xsdferrors.ErrMalformedInput, err)
	}
	if hdr.ResumeFrom < 0 {
		return hdr, fmt.Errorf("%w: negative resume_from %d", xsdferrors.ErrMalformedInput, hdr.ResumeFrom)
	}
	return hdr, nil
}

// streamLineLimit is the per-line byte cap of a stream request: the
// streaming reinterpretation of MaxBodyBytes — the body as a whole is
// unbounded (that is the point), each line is not.
func (s *Server) streamLineLimit() int {
	return int(s.cfg.MaxBodyBytes)
}
