// Wire types of the xsdfd HTTP JSON API, shared by the handlers and the
// retry client so the two cannot drift apart.
package server

import (
	xsdf "repro"
	"repro/xsdferrors"
)

// QualityHeader is the response header carrying the degradation-ladder
// rung of a successful disambiguation ("full", "concept-only",
// "first-sense"). Degraded runs still answer 200: the caller holds a
// usable result, and the header plus the degradation report say how much
// quality was traded for staying up.
const QualityHeader = "X-Xsdf-Quality"

// DisambiguateRequest is the body of POST /v1/disambiguate.
type DisambiguateRequest struct {
	// Document is the XML document to disambiguate.
	Document string `json:"document"`
	// BudgetMS is the client's processing budget in milliseconds. It is
	// clamped by the server's MaxTimeout cap; zero selects the server's
	// default budget.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Documents []string `json:"documents"`
	// BudgetMS bounds the whole batch, with the same clamping as the
	// single-document budget.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// Assignment is one disambiguated node of the response.
type Assignment struct {
	// Label is the pre-processed node label, Sense the assigned concept
	// identifier, and Score the winning sense's score in [0, 1].
	Label string  `json:"label"`
	Sense string  `json:"sense"`
	Score float64 `json:"score"`
	// Quality marks the ladder rung the node was scored at; omitted for
	// full-quality nodes.
	Quality string `json:"quality,omitempty"`
}

// DegradationReport accompanies any result produced below full quality.
type DegradationReport struct {
	// Level is the worst rung any target was scored at.
	Level string `json:"level"`
	// NodesAtLevel counts targets per rung, keyed by rung name; Unscored
	// counts targets never attempted (cancellation mid-ladder).
	NodesAtLevel map[string]int `json:"nodes_at_level"`
	Unscored     int            `json:"unscored"`
	// Cause is why processing stopped early, when it did.
	Cause string `json:"cause,omitempty"`
}

// StageTiming is one pipeline stage's record within a run: name, item
// count, and duration in microseconds.
type StageTiming struct {
	Stage  string `json:"stage"`
	Items  int    `json:"items"`
	Micros int64  `json:"micros"`
	Failed bool   `json:"failed,omitempty"`
}

// Result is the JSON body of a successful disambiguation.
type Result struct {
	Targets   int     `json:"targets"`
	Assigned  int     `json:"assigned"`
	Threshold float64 `json:"threshold"`
	// Quality mirrors the QualityHeader value.
	Quality       string             `json:"quality"`
	LinksResolved int                `json:"links_resolved,omitempty"`
	LinksDangling int                `json:"links_dangling,omitempty"`
	Assignments   []Assignment       `json:"assignments"`
	Degradation   *DegradationReport `json:"degradation,omitempty"`
	// Stages is the per-stage instrumentation of this run, in execution
	// order.
	Stages []StageTiming `json:"stages,omitempty"`
	// LexiconEpoch and LexiconVersion identify the lexicon snapshot this
	// document was scored against — under hot-swaps, equal epochs mean
	// comparable senses.
	LexiconEpoch   uint64 `json:"lexicon_epoch,omitempty"`
	LexiconVersion string `json:"lexicon_version,omitempty"`
}

// BatchItem is one document's outcome inside a BatchResponse: an HTTP
// status code with either a result or a typed error, mirroring what the
// document would have received from /v1/disambiguate.
type BatchItem struct {
	Status int     `json:"status"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	Kind   string  `json:"kind,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch answer, indexed like the
// request's Documents.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// StreamHeader is the first NDJSON line of a POST /v1/stream request
// body. Every following line is one StreamDoc.
type StreamHeader struct {
	// BudgetMS is the per-document budget: each document's pipeline run
	// gets its own deadline of BudgetMS milliseconds (clamped by the
	// server's MaxTimeout, defaulted like the unary endpoints). The stream
	// as a whole has no deadline — it is bounded per line, not in total.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// ResumeFrom resumes an interrupted stream: documents with cursor <=
	// ResumeFrom were already delivered to this client and are skipped
	// without reprocessing. The client re-sends the identical document
	// sequence; cursors are 1-based positions in that sequence, so the
	// cursor of line N is stable across reconnects.
	ResumeFrom int64 `json:"resume_from,omitempty"`
	// Window asks for a smaller in-flight document window than the
	// server's configured maximum (0 keeps the server default).
	Window int `json:"window,omitempty"`
	// Subtree switches the stream to incremental subtree mode: each
	// document is parsed subtree by subtree and one StreamLine is emitted
	// per completed subtree instead of per document, so a single document
	// larger than memory streams through the same bounded window. Cursors
	// remain global 1-based positions in the emitted-line sequence, so
	// resume_from works unchanged (a resuming client may land mid-document;
	// skipped subtrees are re-scanned but not re-disambiguated).
	Subtree bool `json:"subtree,omitempty"`
	// SubtreeDepth is the split depth of subtree mode (0 selects the
	// default: the children of each document root).
	SubtreeDepth int `json:"subtree_depth,omitempty"`
	// MaxSubtreeBytes and MaxSubtrees are the subtree-mode document
	// budgets; 0 selects the server-side defaults.
	MaxSubtreeBytes int64 `json:"max_subtree_bytes,omitempty"`
	MaxSubtrees     int   `json:"max_subtrees,omitempty"`
}

// StreamDoc is one document line of a POST /v1/stream request body.
type StreamDoc struct {
	Document string `json:"document"`
}

// StreamLine is one NDJSON response line of POST /v1/stream. Exactly one
// of three shapes: a per-document result (Cursor > 0, Status 200, Result
// set), a per-document typed error (Cursor > 0, Status != 200, Error/Kind
// set), or a terminal line (Cursor 0): Done=true after the final document
// — its absence tells a client the stream was cut and must be resumed —
// or Kind="draining" when the server is shutting down and the client
// should resume against another replica.
type StreamLine struct {
	// Cursor is the document's 1-based position in the request sequence;
	// it is strictly monotonic within a response, so the highest cursor
	// received is the resume point. 0 marks a terminal line.
	Cursor int64 `json:"cursor,omitempty"`
	// Status is the HTTP status this document would have received from
	// /v1/disambiguate — the xsdferrors.HTTPStatus taxonomy per line.
	Status int     `json:"status,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	// Done marks the clean end of the stream; Delivered counts the result
	// lines this response emitted (resumed streams count only their own).
	Done      bool  `json:"done,omitempty"`
	Delivered int64 `json:"delivered,omitempty"`
	// Subtree-mode locators: Doc is the 1-based ordinal of the document
	// this line belongs to, Subtree the 1-based ordinal of the subtree
	// within that document, and SubtreePath the slash-joined envelope tag
	// names above the subtree root. All omitted in whole-document mode.
	Doc         int64  `json:"doc,omitempty"`
	Subtree     int    `json:"subtree,omitempty"`
	SubtreePath string `json:"subtree_path,omitempty"`
}

// ErrorBody is the JSON body of every error response.
type ErrorBody struct {
	Error string `json:"error"`
	// Kind is the stable taxonomy token (xsdferrors.Kind), plus the
	// server-layer kinds "circuit-open" and "injected".
	Kind string `json:"kind"`
}

// resultFromRun converts a pipeline result (and its optional degraded
// error) into the wire form.
func resultFromRun(res *xsdf.Result, runErr error) *Result {
	out := &Result{
		Targets:        res.Targets,
		Assigned:       res.Assigned,
		Threshold:      res.Threshold,
		Quality:        res.Degraded.String(),
		LinksResolved:  res.LinksResolved,
		LinksDangling:  res.LinksDangling,
		LexiconEpoch:   res.LexiconEpoch,
		LexiconVersion: res.LexiconVersion,
	}
	for _, st := range res.Stages {
		out.Stages = append(out.Stages, StageTiming{
			Stage:  st.Stage,
			Items:  st.Items,
			Micros: st.Duration.Microseconds(),
			Failed: st.Failed,
		})
	}
	for _, n := range res.Tree.Nodes() {
		if n.Sense == "" {
			continue
		}
		a := Assignment{Label: n.Label, Sense: n.Sense, Score: n.SenseScore}
		if n.Degraded != xsdf.DegradeNone {
			a.Quality = n.Degraded.String()
		}
		out.Assignments = append(out.Assignments, a)
	}
	if res.Degraded != xsdf.DegradeNone || res.Unscored > 0 {
		rep := &DegradationReport{
			Level:        res.Degraded.String(),
			NodesAtLevel: map[string]int{},
			Unscored:     res.Unscored,
		}
		for lvl, n := range res.NodesAtLevel {
			if n > 0 {
				rep.NodesAtLevel[xsdferrors.DegradationLevel(lvl).String()] = n
			}
		}
		if runErr != nil {
			rep.Cause = runErr.Error()
		}
		out.Degradation = rep
	}
	return out
}
