package core

import (
	"context"
	"testing"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

// taggedClone rebuilds net with every ConceptID suffixed by tag: the same
// structure (lemmas, glosses, frequencies, edges, hence depths and ICs)
// under a disjoint id universe, so any dense id crossing between the two
// epochs is detectable as a failed or mis-resolved lookup.
func taggedClone(t *testing.T, net *semnet.Network, tag string) *semnet.Network {
	t.Helper()
	b := semnet.NewBuilder()
	for _, id := range net.Concepts() {
		c := net.Concept(id)
		b.AddConcept(id+semnet.ConceptID(tag), c.Gloss, c.Freq, c.Lemmas...)
	}
	for _, id := range net.Concepts() {
		for _, e := range net.Edges(id) {
			// Edges() lists both directions; AddEdge installs the
			// inverse itself, so emit each pair once (canonical order).
			if string(id) < string(e.To) {
				b.AddEdge(id+semnet.ConceptID(tag), e.Rel, e.To+semnet.ConceptID(tag))
			}
		}
	}
	clone, err := b.Build()
	if err != nil {
		t.Fatalf("taggedClone: %v", err)
	}
	return clone
}

// TestReloadFreshConceptIndexPerEpoch pins the epoch-isolation contract of
// the dense concept index: a hot swap publishes a network whose index
// resolves only its own ids. Old-epoch ConceptIDs must miss in the new
// index, new ids must miss in the old, and the retired network's index
// stays intact for runs still pinned to it.
func TestReloadFreshConceptIndexPerEpoch(t *testing.T) {
	old := wordnet.Default()
	fw := newTestFramework(t)

	oldDense := make(map[semnet.ConceptID]semnet.DenseID, old.Len())
	for _, id := range old.Concepts() {
		d, ok := old.Dense(id)
		if !ok {
			t.Fatalf("construction epoch: Dense(%q) missing", id)
		}
		oldDense[id] = d
	}

	clone := taggedClone(t, old, "#v2")
	info, err := fw.ReloadNetwork(context.Background(), clone, "v2-tagged", "taggedClone", ReloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 {
		t.Fatalf("swap epoch = %d, want 2", info.Epoch)
	}

	cur := fw.Network()
	if cur != clone {
		t.Fatal("Network() does not read through the swapped snapshot")
	}
	if cur.Len() != old.Len() {
		t.Fatalf("clone has %d concepts, original %d", cur.Len(), old.Len())
	}
	for _, id := range old.Concepts() {
		if d, ok := cur.Dense(id); ok {
			t.Fatalf("old-epoch id %q resolved to dense %d in the new epoch's index", id, d)
		}
		tagged := id + "#v2"
		d, ok := cur.Dense(tagged)
		if !ok {
			t.Fatalf("new-epoch id %q missing from its own index", tagged)
		}
		if back, ok := cur.ConceptAt(d); !ok || back != tagged {
			t.Fatalf("new epoch round-trip: ConceptAt(%d) = %q, %v, want %q", d, back, ok, tagged)
		}
		if _, ok := old.Dense(tagged); ok {
			t.Fatalf("new-epoch id %q resolved in the retired epoch's index", tagged)
		}
		// The retired index is immutable: a run pinned to the old
		// snapshot keeps resolving exactly what it resolved before.
		if d, ok := old.Dense(id); !ok || d != oldDense[id] {
			t.Fatalf("retired index moved: Dense(%q) = %d, %v, want %d", id, d, ok, oldDense[id])
		}
	}
}
