package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

func corpusTrees(t testing.TB, n int) []*xmltree.Tree {
	t.Helper()
	var trees []*xmltree.Tree
	for _, d := range corpus.Generate(7) {
		trees = append(trees, d.Tree)
		if len(trees) == n {
			break
		}
	}
	return trees
}

func TestProcessTreesMatchesSequential(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq := corpusTrees(t, 12)
	par := corpusTrees(t, 12)

	var seqAssigned []int
	for _, tr := range seq {
		res, err := fw.ProcessTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		seqAssigned = append(seqAssigned, res.Assigned)
	}
	results, err := fw.ProcessTrees(par, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("missing result %d", i)
		}
		if res.Assigned != seqAssigned[i] {
			t.Errorf("doc %d: parallel assigned %d, sequential %d", i, res.Assigned, seqAssigned[i])
		}
		// Sense assignments must be identical node-for-node.
		for j := 0; j < seq[i].Len(); j++ {
			if seq[i].Node(j).Sense != par[i].Node(j).Sense {
				t.Fatalf("doc %d node %d: %q vs %q", i, j,
					seq[i].Node(j).Sense, par[i].Node(j).Sense)
			}
		}
	}
}

// TestEffectiveWorkersNormalization pins the one worker-count rule every
// pool entry point shares (batch workers, intra-document node workers, and
// the server's default handler concurrency): non-positive values select
// GOMAXPROCS, and positive values — including 1 and values beyond the
// machine's core count — pass through untouched.
func TestEffectiveWorkersNormalization(t *testing.T) {
	ncpu := runtime.GOMAXPROCS(0)
	cases := []struct {
		name string
		in   int
		want int
	}{
		{"negative", -1, ncpu},
		{"very-negative", -1 << 20, ncpu},
		{"zero", 0, ncpu},
		{"one", 1, 1},
		{"exactly-numcpu", ncpu, ncpu},
		{"beyond-numcpu", ncpu + 7, ncpu + 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := EffectiveWorkers(tc.in); got != tc.want {
				t.Errorf("EffectiveWorkers(%d) = %d, want %d", tc.in, got, tc.want)
			}
		})
	}
}

func TestProcessTreesEmptyAndDefaults(t *testing.T) {
	fw, _ := New(wordnet.Default(), DefaultOptions())
	res, err := fw.ProcessTrees(nil, 0)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	// workers <= 0 and workers > len are both legal.
	res, err = fw.ProcessTrees(corpusTrees(t, 2), 99)
	if err != nil || len(res) != 2 || res[0] == nil {
		t.Fatalf("tiny batch: %v %v", res, err)
	}
}

func BenchmarkProcessTreesWorkers(b *testing.B) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				trees := corpusTrees(b, 20)
				b.StartTimer()
				if _, err := fw.ProcessTrees(trees, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// poisonHook returns hooks that panic when processing any tree in bad.
func poisonHook(bad map[*xmltree.Tree]bool) TestHooks {
	return TestHooks{BeforeTree: func(t *xmltree.Tree) {
		if bad[t] {
			panic("injected fault")
		}
	}}
}

func TestBatchPanicIsolation(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trees := corpusTrees(t, 6)
	poisoned := trees[2]
	restore := SetTestHooks(poisonHook(map[*xmltree.Tree]bool{poisoned: true}))
	defer restore()

	results, err := fw.ProcessTrees(trees, 3)
	if err == nil {
		t.Fatal("a poisoned document must surface an error")
	}
	var be *xsdferrors.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %T: %v", err, err)
	}
	if got := be.Failed(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Failed() = %v, want [2]", got)
	}
	var pe *xsdferrors.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError in the chain: %v", err)
	}
	if pe.Doc != 2 || pe.Value != "injected fault" || len(pe.Stack) == 0 {
		t.Errorf("panic detail: doc=%d value=%v stack=%dB", pe.Doc, pe.Value, len(pe.Stack))
	}
	for i, r := range results {
		if i == 2 {
			if r != nil {
				t.Error("poisoned slot must be nil")
			}
			continue
		}
		if r == nil {
			t.Errorf("document %d lost to a neighbor's panic", i)
		}
	}
}

func TestBatchLimitIsolation(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxDepth = 8
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	trees := corpusTrees(t, 3)
	// Graft a chain deeper than the guard onto a fresh tree.
	deepRoot := &xmltree.Node{Raw: "a", Label: "a", Kind: xmltree.Element}
	cur := deepRoot
	for i := 0; i < 20; i++ {
		child := &xmltree.Node{Raw: "a", Label: "a", Kind: xmltree.Element}
		cur.AddChild(child)
		cur = child
	}
	trees = append(trees, xmltree.New(deepRoot))

	results, err := fw.ProcessTrees(trees, 2)
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Limit != "depth" {
		t.Errorf("tripped %q, want depth", le.Limit)
	}
	if results[3] != nil {
		t.Error("over-limit slot must be nil")
	}
	for i := 0; i < 3; i++ {
		if results[i] == nil {
			t.Errorf("document %d lost to a neighbor's limit violation", i)
		}
	}
}

func TestBatchCancellationPrompt(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trees := corpusTrees(t, 8)
	started := make(chan struct{}, len(trees)*64)
	restore := SetTestHooks(TestHooks{BeforeNode: func(*xmltree.Node) {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}})
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started // cancel once the first node is being processed
		cancel()
	}()
	begin := time.Now()
	results, err := fw.ProcessTreesContext(ctx, trees, 2, 0)
	elapsed := time.Since(begin)

	if !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("the context cause must stay matchable")
	}
	// Cooperative checks run per node; the abort must land well within one
	// document's total processing time (hundreds of 2ms-sleep nodes).
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if len(results) != len(trees) {
		t.Fatalf("results length %d", len(results))
	}
}

func TestBatchPerDocumentTimeout(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trees := corpusTrees(t, 3)
	slow := trees[1]
	// A hook-held barrier instead of wall-clock sleeps: the slow
	// document's first node parks until its per-document deadline has
	// provably expired, so the timeout trips deterministically no matter
	// how loaded the machine is, while the generous budget keeps the fast
	// neighbors far from their own deadlines.
	const docTimeout = 300 * time.Millisecond
	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := SetTestHooks(TestHooks{BeforeNode: func(n *xmltree.Node) {
		if root(n) == slow.Root {
			once.Do(func() { close(held) })
			<-release
		}
	}})
	defer restore()
	go func() {
		<-held
		// The slow document's deadline started at most docTimeout before
		// the hold; by now + docTimeout + margin it has certainly passed.
		time.Sleep(docTimeout + 100*time.Millisecond)
		close(release)
	}()

	results, err := fw.ProcessTreesContext(context.Background(), trees, 2, docTimeout)
	if !errors.Is(err, xsdferrors.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline-flavored ErrCanceled, got %v", err)
	}
	var be *xsdferrors.BatchError
	if !errors.As(err, &be) {
		t.Fatal("want *BatchError")
	}
	if got := be.Failed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Failed() = %v, want [1]", got)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("fast documents must survive a slow neighbor's timeout")
	}
}

func root(n *xmltree.Node) *xmltree.Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}
