package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func corpusTrees(t testing.TB, n int) []*xmltree.Tree {
	t.Helper()
	var trees []*xmltree.Tree
	for _, d := range corpus.Generate(7) {
		trees = append(trees, d.Tree)
		if len(trees) == n {
			break
		}
	}
	return trees
}

func TestProcessTreesMatchesSequential(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq := corpusTrees(t, 12)
	par := corpusTrees(t, 12)

	var seqAssigned []int
	for _, tr := range seq {
		res, err := fw.ProcessTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		seqAssigned = append(seqAssigned, res.Assigned)
	}
	results, err := fw.ProcessTrees(par, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("missing result %d", i)
		}
		if res.Assigned != seqAssigned[i] {
			t.Errorf("doc %d: parallel assigned %d, sequential %d", i, res.Assigned, seqAssigned[i])
		}
		// Sense assignments must be identical node-for-node.
		for j := 0; j < seq[i].Len(); j++ {
			if seq[i].Node(j).Sense != par[i].Node(j).Sense {
				t.Fatalf("doc %d node %d: %q vs %q", i, j,
					seq[i].Node(j).Sense, par[i].Node(j).Sense)
			}
		}
	}
}

func TestProcessTreesEmptyAndDefaults(t *testing.T) {
	fw, _ := New(wordnet.Default(), DefaultOptions())
	res, err := fw.ProcessTrees(nil, 0)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	// workers <= 0 and workers > len are both legal.
	res, err = fw.ProcessTrees(corpusTrees(t, 2), 99)
	if err != nil || len(res) != 2 || res[0] == nil {
		t.Fatalf("tiny batch: %v %v", res, err)
	}
}

func BenchmarkProcessTreesWorkers(b *testing.B) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				trees := corpusTrees(b, 20)
				b.StartTimer()
				if _, err := fw.ProcessTrees(trees, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
