package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/xsdferrors"
)

// AdmissionOptions configures the framework's admission gate: a weighted
// semaphore that bounds how much work is in flight before documents start
// being turned away with a typed *xsdferrors.OverloadError, instead of
// letting an overloaded process slow every caller down. The zero value
// disables the gate.
type AdmissionOptions struct {
	// MaxDocs bounds the number of documents in flight. 0 disables the
	// bound.
	MaxDocs int
	// MaxNodes bounds the summed node count of in-flight documents — the
	// gate's weight dimension, so one huge document consumes the capacity
	// of many small ones. A document larger than MaxNodes is weighted at
	// MaxNodes: it can still run, but only alone. 0 disables the bound.
	MaxNodes int
	// MaxWait bounds how long an arriving document waits for capacity
	// before overload is reported. 0 rejects immediately when the gate is
	// full (classic load shedding).
	MaxWait time.Duration
}

// enabled reports whether any bound is configured.
func (o AdmissionOptions) enabled() bool { return o.MaxDocs > 0 || o.MaxNodes > 0 }

// gate is the weighted semaphore behind AdmissionOptions. Waiters block on
// a broadcast channel that every release closes and replaces, then retry;
// admission order under contention is therefore scheduler-determined, not
// FIFO, which is fine for a load shedder.
type gate struct {
	maxDocs  int
	maxNodes int

	mu    sync.Mutex
	turn  chan struct{} // closed and replaced on every release
	docs  int
	nodes int

	// Cumulative admission accounting (guarded by mu), exported through
	// GateStats so a serving layer can size Retry-After hints from how
	// long admitted documents actually waited.
	admitted  uint64
	rejected  uint64
	waited    uint64 // admissions that did not get in on the first try
	totalWait time.Duration

	// waitHist is the distribution of those waits (in seconds), covering
	// both eventual admissions and rejections — every document that
	// blocked on the gate at all contributes its wait. Atomic internally;
	// recorded outside mu.
	waitHist *metrics.Histogram
}

// GateStats is a snapshot of the admission gate: current occupancy plus
// cumulative admission/rejection counters. AvgWait is the mean admission
// wait over the admissions that had to wait at all — the natural base for
// a serving layer's Retry-After hint (it estimates how long capacity takes
// to free under the current load).
type GateStats struct {
	// Docs and Nodes are the in-flight document count and summed node
	// weight at snapshot time.
	Docs  int
	Nodes int
	// Admitted and Rejected count documents let through and turned away
	// since construction; Waited counts the admitted documents that had
	// to wait for capacity.
	Admitted uint64
	Rejected uint64
	Waited   uint64
	// AvgWait is the mean wait over the Waited admissions (zero when none
	// has waited yet); TotalWait is the sum those waits accumulated, so a
	// serving layer can difference snapshots into a recent-window average
	// without the precision loss of multiplying the mean back out.
	AvgWait   time.Duration
	TotalWait time.Duration
}

// stats snapshots the gate.
func (g *gate) stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := GateStats{
		Docs: g.docs, Nodes: g.nodes,
		Admitted: g.admitted, Rejected: g.rejected, Waited: g.waited,
		TotalWait: g.totalWait,
	}
	if g.waited > 0 {
		s.AvgWait = g.totalWait / time.Duration(g.waited)
	}
	return s
}

// GateStats reports the admission gate's occupancy and wait statistics.
// The second return is false when Options.Admission is disabled (there is
// no gate to report on).
func (f *Framework) GateStats() (GateStats, bool) {
	if f.gate == nil {
		return GateStats{}, false
	}
	return f.gate.stats(), true
}

// GateWaitLatencies snapshots the admission-wait histogram (seconds):
// every wait a document spent blocked on the gate, whether it was
// eventually admitted or shed. ok is false when admission is disabled.
func (f *Framework) GateWaitLatencies() (metrics.HistogramSnapshot, bool) {
	if f.gate == nil {
		return metrics.HistogramSnapshot{}, false
	}
	return f.gate.waitHist.Snapshot(), true
}

// newGate returns the gate for o, or nil when o disables admission.
func newGate(o AdmissionOptions) *gate {
	if !o.enabled() {
		return nil
	}
	return &gate{
		maxDocs: o.MaxDocs, maxNodes: o.MaxNodes,
		turn:     make(chan struct{}),
		waitHist: metrics.NewHistogram(nil),
	}
}

// weight is the admission weight of a document of n nodes, capped at
// MaxNodes so oversized documents remain admissible (alone).
func (g *gate) weight(n int) int {
	if g.maxNodes > 0 && n > g.maxNodes {
		return g.maxNodes
	}
	if n < 1 {
		return 1
	}
	return n
}

// tryAcquire admits weight w if capacity allows; otherwise it returns the
// current turn channel to wait on.
func (g *gate) tryAcquire(w int) (ok bool, wait <-chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if (g.maxDocs <= 0 || g.docs < g.maxDocs) && (g.maxNodes <= 0 || g.nodes+w <= g.maxNodes) {
		g.docs++
		g.nodes += w
		return true, nil
	}
	return false, g.turn
}

// release returns weight w to the gate and wakes every waiter.
func (g *gate) release(w int) {
	g.mu.Lock()
	g.docs--
	g.nodes -= w
	close(g.turn)
	g.turn = make(chan struct{})
	g.mu.Unlock()
}

// acquire admits a document of n nodes, waiting up to maxWait for
// capacity. It returns the release function on admission, a
// *xsdferrors.OverloadError when capacity never frees in time, or the
// canceled context's error.
func (g *gate) acquire(ctx context.Context, n int, maxWait time.Duration) (release func(), err error) {
	w := g.weight(n)
	start := time.Now()
	var timeout <-chan time.Time
	if maxWait > 0 {
		tm := time.NewTimer(maxWait)
		defer tm.Stop()
		timeout = tm.C
	}
	firstTry := true
	for {
		ok, wait := g.tryAcquire(w)
		if ok {
			g.recordAdmit(firstTry, time.Since(start))
			return func() { g.release(w) }, nil
		}
		firstTry = false
		if maxWait <= 0 {
			return nil, g.overloadErr(start)
		}
		select {
		case <-wait:
		case <-timeout:
			return nil, g.overloadErr(start)
		case <-ctx.Done():
			return nil, xsdferrors.Canceled(ctx.Err())
		}
	}
}

// recordAdmit accounts a successful admission; elapsed only accrues into
// the wait statistics (counters and histogram) when the document did not
// get in on the first try.
func (g *gate) recordAdmit(firstTry bool, elapsed time.Duration) {
	g.mu.Lock()
	g.admitted++
	if !firstTry {
		g.waited++
		g.totalWait += elapsed
	}
	g.mu.Unlock()
	if !firstTry {
		g.waitHist.Observe(elapsed.Seconds())
	}
}

// overloadErr snapshots the gate state into the typed overload error. The
// rejected document's full (futile) wait still enters the histogram: the
// shed tail is exactly what an operator sizing MaxWait needs to see.
func (g *gate) overloadErr(start time.Time) *xsdferrors.OverloadError {
	waited := time.Since(start)
	g.waitHist.Observe(waited.Seconds())
	g.mu.Lock()
	g.rejected++
	docs, nodes := g.docs, g.nodes
	g.mu.Unlock()
	return &xsdferrors.OverloadError{Docs: docs, Nodes: nodes, Waited: waited}
}
