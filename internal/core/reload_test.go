package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/semnet"
	"repro/internal/wordnet"
	"repro/xsdferrors"
)

// packDefault writes the embedded lexicon to a checksummed codec file.
func packDefault(t *testing.T, version string) (string, semnet.FileInfo) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lexicon.semnet")
	info, err := semnet.WriteFile(path, wordnet.Default(), version)
	if err != nil {
		t.Fatal(err)
	}
	return path, info
}

func newTestFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestConstructionLexiconInfo(t *testing.T) {
	fw := newTestFramework(t)
	info := fw.LexiconInfo()
	if info.Epoch != 1 {
		t.Errorf("construction epoch = %d, want 1", info.Epoch)
	}
	if info.Source != "construction" {
		t.Errorf("source = %q", info.Source)
	}
	if info.Checksum != wordnet.Default().Checksum() {
		t.Errorf("checksum %q does not identify the embedded lexicon", info.Checksum)
	}
	if info.Concepts != wordnet.Default().Len() {
		t.Errorf("concepts = %d", info.Concepts)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.LexiconEpoch != 1 || res.LexiconVersion != info.Version {
		t.Errorf("result stamped %d/%q, want 1/%q", res.LexiconEpoch, res.LexiconVersion, info.Version)
	}
}

func TestReloadSuccess(t *testing.T) {
	fw := newTestFramework(t)
	path, finfo := packDefault(t, "v2-test")
	info, err := fw.Reload(context.Background(), path, ReloadOptions{ExpectedChecksum: finfo.Checksum})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || info.Version != "v2-test" || info.Source != path {
		t.Errorf("reloaded info %+v", info)
	}
	if info.Checksum != finfo.Checksum {
		t.Errorf("checksum %q, file %q", info.Checksum, finfo.Checksum)
	}
	if got := fw.LexiconInfo(); got != info {
		t.Errorf("LexiconInfo %+v != reload result %+v", got, info)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.LexiconEpoch != 2 || res.LexiconVersion != "v2-test" {
		t.Errorf("post-swap result stamped %d/%q", res.LexiconEpoch, res.LexiconVersion)
	}
	if res.Assigned == 0 {
		t.Error("post-swap pipeline assigned nothing")
	}
	st := fw.LexiconStats()
	if st.Swaps != 1 || st.Rollbacks != 0 || st.CanaryFailures != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.RetiredAwaitingDrain != 0 {
		t.Errorf("%d retired snapshots awaiting drain with no traffic in flight", st.RetiredAwaitingDrain)
	}
	if st.ReloadLatency.Count != 1 {
		t.Errorf("reload histogram count = %d", st.ReloadLatency.Count)
	}
}

// reloadFailure asserts the rollback contract: typed error, serving
// snapshot untouched, rollback counter advanced.
func reloadFailure(t *testing.T, fw *Framework, wantStage string, reload func() error) {
	t.Helper()
	before := fw.LexiconInfo()
	rollbacksBefore := fw.LexiconStats().Rollbacks
	err := reload()
	if err == nil {
		t.Fatal("reload succeeded, want failure")
	}
	if !errors.Is(err, xsdferrors.ErrReloadFailed) {
		t.Errorf("error %v does not match ErrReloadFailed", err)
	}
	var re *xsdferrors.ReloadError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *ReloadError", err)
	}
	if re.Stage != wantStage {
		t.Errorf("failed at stage %q, want %q", re.Stage, wantStage)
	}
	if after := fw.LexiconInfo(); after != before {
		t.Errorf("failed reload changed the serving snapshot: %+v -> %+v", before, after)
	}
	if got := fw.LexiconStats().Rollbacks; got != rollbacksBefore+1 {
		t.Errorf("rollbacks = %d, want %d", got, rollbacksBefore+1)
	}
	// The old snapshot must still serve correctly.
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.LexiconEpoch != before.Epoch {
		t.Errorf("post-rollback run stamped epoch %d, want %d", res.LexiconEpoch, before.Epoch)
	}
}

func TestReloadMissingFile(t *testing.T) {
	fw := newTestFramework(t)
	reloadFailure(t, fw, "load", func() error {
		_, err := fw.Reload(context.Background(), filepath.Join(t.TempDir(), "nope.semnet"), ReloadOptions{})
		return err
	})
}

func TestReloadCorruptFile(t *testing.T) {
	fw := newTestFramework(t)
	path, _ := packDefault(t, "v2")
	truncateFile(t, path)
	reloadFailure(t, fw, "load", func() error {
		_, err := fw.Reload(context.Background(), path, ReloadOptions{})
		if err != nil && !errors.Is(err, xsdferrors.ErrMalformedInput) {
			t.Errorf("corrupt-codec failure %v should also match ErrMalformedInput", err)
		}
		return err
	})
}

func TestReloadChecksumMismatch(t *testing.T) {
	fw := newTestFramework(t)
	path, _ := packDefault(t, "v2")
	reloadFailure(t, fw, "load", func() error {
		_, err := fw.Reload(context.Background(), path, ReloadOptions{ExpectedChecksum: strings.Repeat("ab", 32)})
		return err
	})
}

func TestReloadValidateFailure(t *testing.T) {
	// A file that parses but violates the structural invariants:
	// non-positive concept frequency.
	b := semnet.NewBuilder()
	b.AddConcept("bad.n.01", "a broken concept", 0, "bad")
	net, err := b.Build()
	if err != nil {
		t.Skipf("builder rejected the fixture: %v", err)
	}
	path := filepath.Join(t.TempDir(), "bad.semnet")
	if _, err := semnet.WriteFile(path, net, "bad"); err != nil {
		t.Fatal(err)
	}
	fw := newTestFramework(t)
	reloadFailure(t, fw, "validate", func() error {
		_, err := fw.Reload(context.Background(), path, ReloadOptions{})
		return err
	})
}

func TestReloadInjectedFaults(t *testing.T) {
	cases := []struct {
		stage string
		cfg   faultinject.Config
	}{
		{"load", faultinject.Config{Seed: 1, ReloadLoadErrRate: 1}},
		{"validate", faultinject.Config{Seed: 1, ReloadValidateErrRate: 1}},
		{"canary", faultinject.Config{Seed: 1, ReloadCanaryErrRate: 1}},
	}
	for _, c := range cases {
		t.Run(c.stage, func(t *testing.T) {
			fw := newTestFramework(t)
			path, _ := packDefault(t, "v2")
			restore := faultinject.Install(faultinject.New(c.cfg))
			defer restore()
			canaryBefore := fw.LexiconStats().CanaryFailures
			reloadFailure(t, fw, c.stage, func() error {
				_, err := fw.Reload(context.Background(), path, ReloadOptions{})
				if err != nil && !errors.Is(err, faultinject.ErrInjectedReloadFault) {
					t.Errorf("error %v does not match ErrInjectedReloadFault", err)
				}
				return err
			})
			wantCanary := canaryBefore
			if c.stage == "canary" {
				wantCanary++
			}
			if got := fw.LexiconStats().CanaryFailures; got != wantCanary {
				t.Errorf("canary failures = %d, want %d", got, wantCanary)
			}
		})
	}
}

func TestReloadNetworkInMemory(t *testing.T) {
	fw := newTestFramework(t)
	net, err := wordnet.Generate(wordnet.DefaultGenerateConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	info, err := fw.ReloadNetwork(context.Background(), net, "synthetic-7", "generate(7)", ReloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || info.Version != "synthetic-7" || info.Source != "generate(7)" {
		t.Errorf("info %+v", info)
	}
	if fw.Network() != net {
		t.Error("Network() does not read through the swapped snapshot")
	}
	if _, err := fw.ReloadNetwork(context.Background(), nil, "", "", ReloadOptions{}); !errors.Is(err, xsdferrors.ErrReloadFailed) {
		t.Errorf("nil candidate: %v", err)
	}
}

// TestGoldenReuseAcrossIdenticalSwap is the byte-identical-swap clause:
// swapping to a lexicon with identical bytes must leave the gold-corpus
// output bit-identical, warm caches or cold.
func TestGoldenReuseAcrossIdenticalSwap(t *testing.T) {
	fw := newTestFramework(t)
	before := corpus.Generate(1)
	for _, d := range before {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
	path, finfo := packDefault(t, "")
	info, err := fw.Reload(context.Background(), path, ReloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Checksum != finfo.Checksum || info.Checksum != fw.LexiconInfo().Checksum {
		t.Errorf("identical-bytes swap changed the checksum: %+v", info)
	}
	after := corpus.Generate(1)
	for _, d := range after {
		res, err := fw.ProcessTree(d.Tree)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if res.LexiconEpoch != 2 {
			t.Errorf("%s: epoch %d, want 2", d.Name, res.LexiconEpoch)
		}
	}
	for i := range before {
		if got, want := senseFingerprint(after[i].Tree), senseFingerprint(before[i].Tree); got != want {
			t.Errorf("%s: output diverged across a byte-identical lexicon swap", before[i].Name)
		}
	}
}

func TestCanaryDocsGeneration(t *testing.T) {
	docs := canaryDocs(wordnet.Default())
	if len(docs) == 0 {
		t.Fatal("no probe docs for the embedded lexicon")
	}
	for _, d := range docs {
		if !strings.HasPrefix(d, "<probe>") || !strings.HasSuffix(d, "</probe>") {
			t.Errorf("malformed probe %q", d)
		}
	}
	// Synthetic vocabularies (w000-style lemmas) must still probe.
	net, err := wordnet.Generate(wordnet.DefaultGenerateConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(canaryDocs(net)) == 0 {
		t.Error("no probe docs for a synthetic lexicon")
	}
}

func truncateFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReloadEpochMonotone(t *testing.T) {
	fw := newTestFramework(t)
	for i := 0; i < 3; i++ {
		path, _ := packDefault(t, fmt.Sprintf("v%d", i+2))
		info, err := fw.Reload(context.Background(), path, ReloadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if info.Epoch != uint64(i+2) {
			t.Errorf("swap %d: epoch %d", i, info.Epoch)
		}
	}
	if st := fw.LexiconStats(); st.Swaps != 3 {
		t.Errorf("swaps = %d", st.Swaps)
	}
}
