// Allocation counts are not meaningful under the race detector: the
// instrumentation itself allocates (and changes sync.Pool behavior), so
// this gate runs only in normal test builds.
//go:build !race

package core

import (
	"strings"
	"testing"
)

// maxWarmAllocsPerNode is the steady-state allocation budget for
// reprocessing a document against warm framework caches. The integer-ID
// scoring core runs the warm path allocation-free (pooled context
// scratch, int-keyed cache hits, memoized preprocessing); what remains
// is per-run bookkeeping — the run value, Result, stage timings, the
// disambiguator — amortized over the document's nodes. Measured ~2.6
// allocs/node; the budget leaves headroom for runtime jitter while still
// catching any per-node allocation creeping back into the hot path
// (the string-keyed core sat in the hundreds per node).
const maxWarmAllocsPerNode = 6.0

// TestWarmSteadyStateAllocsPerNode is the allocation-regression gate for
// the scoring hot path: with caches warm, reprocessing the same document
// must stay within the per-node allocation budget.
func TestWarmSteadyStateAllocsPerNode(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree

	// Warm every cache layer the steady state reads through: similarity
	// memos, concept/pair vectors, LCS, and the preprocessing memos.
	for i := 0; i < 3; i++ {
		if _, err := fw.ProcessTree(tr); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(20, func() {
		if _, err := fw.ProcessTree(tr); err != nil {
			t.Fatal(err)
		}
	})
	perNode := allocs / float64(tr.Len())
	t.Logf("warm steady state: %.1f allocs/run over %d nodes = %.2f allocs/node",
		allocs, tr.Len(), perNode)
	if perNode > maxWarmAllocsPerNode {
		t.Errorf("warm reprocess allocates %.2f allocs/node, budget %.1f — "+
			"an allocation crept back into the per-node scoring path",
			perNode, maxWarmAllocsPerNode)
	}
}
