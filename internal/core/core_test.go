package core

import (
	"strings"
	"testing"

	"repro/internal/ambiguity"
	"repro/internal/disambig"
	"repro/internal/simmeasure"
	"repro/internal/wordnet"
)

const doc = `<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <genre>mystery</genre>
    <cast><star>Stewart</star><star>Kelly</star></cast>
  </picture>
</films>`

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultOptions()); err == nil {
		t.Error("nil network must be rejected")
	}
	bad := DefaultOptions()
	bad.Disambiguation.SimWeights = simmeasure.Weights{Edge: -1}
	if _, err := New(wordnet.Default(), bad); err == nil {
		t.Error("invalid similarity weights must be rejected")
	}
}

func TestFullPipeline(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != res.Tree.Len() {
		t.Errorf("threshold 0 must select all %d nodes, got %d", res.Tree.Len(), res.Targets)
	}
	if res.Assigned == 0 || res.Assigned > res.Targets {
		t.Errorf("assigned = %d of %d", res.Assigned, res.Targets)
	}
	// The semantic tree contains resolved concepts for the key labels.
	senses := map[string]string{}
	for _, n := range res.Tree.Nodes() {
		if n.Sense != "" {
			senses[n.Label] = n.Sense
		}
	}
	if senses["cast"] != "cast.n.01" {
		t.Errorf("cast -> %s", senses["cast"])
	}
	if !strings.HasPrefix(senses["hitchcock"], "hitchcock.") {
		t.Errorf("hitchcock -> %s", senses["hitchcock"])
	}
}

func TestThresholdReducesTargets(t *testing.T) {
	opts := DefaultOptions()
	opts.Threshold = 0.15
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets >= res.Tree.Len() {
		t.Errorf("threshold 0.15 selected everything (%d nodes)", res.Targets)
	}
	// Non-targets stay untouched (§3.1): count of sensed nodes <= targets.
	sensed := 0
	for _, n := range res.Tree.Nodes() {
		if n.Sense != "" {
			sensed++
		}
	}
	if sensed > res.Targets {
		t.Errorf("%d sensed > %d targets", sensed, res.Targets)
	}
}

func TestAutoThreshold(t *testing.T) {
	opts := DefaultOptions()
	opts.AutoThreshold = true
	opts.AutoThresholdK = 0.5
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold <= 0 {
		t.Errorf("auto threshold = %f, want > 0", res.Threshold)
	}
	if res.Targets == 0 {
		t.Error("auto threshold selected nothing")
	}
}

func TestStructureOnlyMode(t *testing.T) {
	opts := DefaultOptions()
	opts.IncludeContent = false
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Tree.Nodes() {
		if n.Raw == "Kelly" || n.Raw == "Stewart" {
			t.Error("structure-only mode kept content tokens")
		}
	}
}

func TestPipelineWithAllMethods(t *testing.T) {
	for _, m := range []disambig.Method{disambig.ConceptBased, disambig.ContextBased, disambig.Combined} {
		opts := DefaultOptions()
		opts.Disambiguation.Method = m
		fw, err := New(wordnet.Default(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fw.ProcessReader(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Assigned == 0 {
			t.Errorf("%v assigned nothing", m)
		}
	}
}

func TestWPolysemyZeroSelectsAll(t *testing.T) {
	// §3.3: w_Polysemy = 0 makes all degrees 0; with threshold 0 every node
	// is still selected.
	opts := DefaultOptions()
	opts.Ambiguity = ambiguity.Weights{Polysemy: 0, Depth: 1, Density: 1}
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != res.Tree.Len() {
		t.Errorf("selected %d of %d", res.Targets, res.Tree.Len())
	}
}

func TestParseErrorPropagates(t *testing.T) {
	fw, _ := New(wordnet.Default(), DefaultOptions())
	if _, err := fw.ProcessReader(strings.NewReader("<oops")); err == nil {
		t.Error("expected parse error")
	}
}

func TestOneSensePerDiscourse(t *testing.T) {
	opts := DefaultOptions()
	opts.OneSensePerDiscourse = true
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(
		`<PLAY><ACT><SCENE><SPEECH><SPEAKER>x</SPEAKER><LINE>star light</LINE>
		 <LINE>sun rose</LINE></SPEECH></SCENE></ACT></PLAY>`))
	if err != nil {
		t.Fatal(err)
	}
	senses := map[string]string{}
	for _, n := range res.Tree.Nodes() {
		if n.Sense == "" || len(n.Tokens) > 1 {
			continue
		}
		if prev, ok := senses[n.Label]; ok && prev != n.Sense {
			t.Fatalf("label %q kept two senses with harmonization on", n.Label)
		}
		senses[n.Label] = n.Sense
	}
}
