package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/wordnet"
	"repro/xsdferrors"
)

// TestGateDisabledByZeroOptions: the zero AdmissionOptions builds no gate.
func TestGateDisabledByZeroOptions(t *testing.T) {
	if g := newGate(AdmissionOptions{}); g != nil {
		t.Fatal("zero options must disable the gate")
	}
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fw.gate != nil {
		t.Fatal("framework must not gate by default")
	}
}

// TestGateWeightCap: a document larger than MaxNodes is weighted at
// MaxNodes, so it can still be admitted — alone.
func TestGateWeightCap(t *testing.T) {
	g := newGate(AdmissionOptions{MaxNodes: 100})
	release, err := g.acquire(context.Background(), 5000, 0)
	if err != nil {
		t.Fatalf("oversized document must be admissible alone: %v", err)
	}
	// While it holds the full capacity, even a tiny document is rejected.
	if _, err := g.acquire(context.Background(), 1, 0); !errors.Is(err, xsdferrors.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded while capacity is held, got %v", err)
	}
	release()
	release2, err := g.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatalf("released capacity must readmit: %v", err)
	}
	release2()
}

// TestGateMaxDocs: the document-count bound rejects the N+1th arrival and
// reports the gate state in the typed error.
func TestGateMaxDocs(t *testing.T) {
	g := newGate(AdmissionOptions{MaxDocs: 2})
	r1, err1 := g.acquire(context.Background(), 10, 0)
	r2, err2 := g.acquire(context.Background(), 10, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	_, err := g.acquire(context.Background(), 10, 0)
	var oe *xsdferrors.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if oe.Docs != 2 || oe.Nodes != 20 {
		t.Errorf("overload snapshot = %d docs / %d nodes, want 2/20", oe.Docs, oe.Nodes)
	}
	r1()
	r2()
}

// TestGateBoundedWaitAdmits: a waiter inside MaxWait is admitted once
// capacity frees.
func TestGateBoundedWaitAdmits(t *testing.T) {
	g := newGate(AdmissionOptions{MaxDocs: 1})
	release, err := g.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r, err := g.acquire(context.Background(), 1, 5*time.Second)
		if r != nil {
			defer r()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter must be admitted after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted")
	}
}

// TestGateWaitExpiryAndCancel: the bounded wait reports Waited > 0 on
// expiry, and a canceled context aborts the wait with ErrCanceled.
func TestGateWaitExpiryAndCancel(t *testing.T) {
	g := newGate(AdmissionOptions{MaxDocs: 1})
	release, err := g.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = g.acquire(context.Background(), 1, 20*time.Millisecond)
	var oe *xsdferrors.OverloadError
	if !errors.As(err, &oe) || oe.Waited < 20*time.Millisecond {
		t.Fatalf("want *OverloadError with Waited >= 20ms, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.acquire(ctx, 1, time.Minute); !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("canceled wait: want ErrCanceled, got %v", err)
	}
}

// TestGateConcurrencyInvariant hammers the gate from many goroutines and
// asserts the bounds were never exceeded (run with -race).
func TestGateConcurrencyInvariant(t *testing.T) {
	const (
		maxDocs = 3
		loops   = 200
	)
	g := newGate(AdmissionOptions{MaxDocs: maxDocs, MaxNodes: 50})
	var (
		mu      sync.Mutex
		inUse   int
		maxSeen int
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				release, err := g.acquire(context.Background(), 5+(seed+i)%20, time.Second)
				if err != nil {
					continue
				}
				mu.Lock()
				inUse++
				if inUse > maxSeen {
					maxSeen = inUse
				}
				mu.Unlock()
				mu.Lock()
				inUse--
				mu.Unlock()
				release()
			}
		}(w)
	}
	wg.Wait()
	if maxSeen > maxDocs {
		t.Fatalf("observed %d concurrent holders, bound is %d", maxSeen, maxDocs)
	}
}

// TestFrameworkAdmissionOverload: a framework whose gate is held rejects a
// document with *OverloadError through the public pipeline entry point.
func TestFrameworkAdmissionOverload(t *testing.T) {
	opts := DefaultOptions()
	opts.Admission = AdmissionOptions{MaxDocs: 1}
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	release, err := fw.gate.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	trees := corpusTrees(t, 1)
	if _, err := fw.ProcessTree(trees[0]); !errors.Is(err, xsdferrors.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	release()
	if _, err := fw.ProcessTree(trees[0]); err != nil {
		t.Fatalf("after release the document must process: %v", err)
	}
}

// TestGateStats: the wait-statistics export a serving layer sizes
// Retry-After from. First-try admissions must not count as waits; bounded
// waits that succeed must; rejections must be counted.
func TestGateStats(t *testing.T) {
	g := newGate(AdmissionOptions{MaxDocs: 1})

	// First-try admission: admitted grows, waited does not.
	release, err := g.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := g.stats(); s.Admitted != 1 || s.Waited != 0 || s.Docs != 1 {
		t.Fatalf("after first admit: %+v", s)
	}

	// A waiter admitted after a release: waited and AvgWait grow.
	done := make(chan error, 1)
	go func() {
		r, err := g.acquire(context.Background(), 1, 5*time.Second)
		if r != nil {
			r()
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	release()
	if err := <-done; err != nil {
		t.Fatalf("waiter must be admitted: %v", err)
	}
	s := g.stats()
	if s.Admitted != 2 || s.Waited != 1 || s.AvgWait <= 0 {
		t.Fatalf("after waited admit: %+v", s)
	}

	// A rejection: rejected grows, admitted does not.
	release2, err := g.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.acquire(context.Background(), 1, 0); !errors.Is(err, xsdferrors.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	release2()
	s = g.stats()
	if s.Rejected != 1 || s.Admitted != 3 || s.Docs != 0 {
		t.Fatalf("after rejection: %+v", s)
	}
}

// TestFrameworkGateStats: the framework-level export reports ok=false
// without a gate and live numbers with one.
func TestFrameworkGateStats(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fw.GateStats(); ok {
		t.Fatal("ungated framework must report ok=false")
	}
	opts := DefaultOptions()
	opts.Admission = AdmissionOptions{MaxDocs: 2}
	fw, err = New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.ProcessTree(corpusTrees(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	s, ok := fw.GateStats()
	if !ok || s.Admitted != 1 || s.Docs != 0 {
		t.Fatalf("GateStats = %+v ok=%v, want 1 admitted, 0 in flight", s, ok)
	}
}

// TestEffectiveWorkers: the one normalization rule every worker pool uses.
func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("EffectiveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := EffectiveWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("EffectiveWorkers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := EffectiveWorkers(5); got != 5 {
		t.Errorf("EffectiveWorkers(5) = %d", got)
	}
}
