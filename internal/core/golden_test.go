package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ambiguity"
	"repro/internal/corpus"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// inlineComposition reproduces the seed's pre-pipeline ProcessTree body —
// the four module calls composed by hand, with no stage middleware — and
// annotates t in place.
func inlineComposition(opts Options, t *xmltree.Tree) error {
	net := wordnet.Default()
	lingproc.ProcessTree(t, net)
	threshold := opts.Threshold
	if opts.AutoThreshold {
		threshold = ambiguity.AutoThreshold(t, net, opts.Ambiguity, opts.AutoThresholdK)
	}
	targets := ambiguity.Select(t, net, opts.Ambiguity, threshold)
	cache := disambig.NewCache(net, opts.Disambiguation.SimWeights)
	dis := disambig.NewShared(cache, opts.Disambiguation)
	if _, err := dis.ApplyReport(context.Background(), targets); err != nil {
		return err
	}
	if opts.OneSensePerDiscourse {
		disambig.Harmonize(targets)
	}
	return nil
}

// senseFingerprint serializes every node's assignment bit-exactly: label,
// sense, and the full float64 score (%.17g round-trips any float64).
func senseFingerprint(t *xmltree.Tree) string {
	var b strings.Builder
	for _, n := range t.Nodes() {
		fmt.Fprintf(&b, "%s\x00%s\x00%.17g\n", n.Label, n.Sense, n.SenseScore)
	}
	return b.String()
}

// TestStagedPipelineMatchesInlineComposition: the staged pipeline must be
// a pure refactor — bit-identical sense assignments and scores against the
// hand-inlined module composition, across all 10 embedded datasets, the
// three disambiguation methods, and hyperlink traversal on/off.
func TestStagedPipelineMatchesInlineComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence sweep")
	}
	for _, method := range []disambig.Method{
		disambig.ConceptBased, disambig.ContextBased, disambig.Combined,
	} {
		for _, links := range []bool{false, true} {
			name := fmt.Sprintf("method=%v/links=%v", method, links)
			t.Run(name, func(t *testing.T) {
				opts := DefaultOptions()
				opts.Disambiguation.Method = method
				opts.Disambiguation.FollowLinks = links
				fw, err := New(wordnet.Default(), opts)
				if err != nil {
					t.Fatal(err)
				}
				// Annotation is in place, so each side gets its own fresh
				// generation of the (deterministic) corpus.
				staged := corpus.Generate(1)
				inline := corpus.Generate(1)
				for i := range staged {
					st, in := staged[i].Tree, inline[i].Tree
					if links {
						st.ResolveLinks()
						in.ResolveLinks()
					}
					if _, err := fw.ProcessTree(st); err != nil {
						t.Fatalf("%s: staged: %v", staged[i].Name, err)
					}
					if err := inlineComposition(opts, in); err != nil {
						t.Fatalf("%s: inline: %v", inline[i].Name, err)
					}
					if got, want := senseFingerprint(st), senseFingerprint(in); got != want {
						t.Errorf("%s: staged pipeline diverged from the inline composition", staged[i].Name)
					}
				}
			})
		}
	}
}
