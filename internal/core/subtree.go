// Incremental subtree processing: the core-side driver of the
// SAX-style mode. Each completed subtree from an xmltree.SubtreeScanner
// runs through the framework's one shared staged pipeline (guard →
// admission → preprocess → select → disambiguate → harmonize) as its own
// run value, so per-subtree scratch stays per-run while the shared
// similarity/vector caches, the admission gate, and the per-stage
// instrumentation compose exactly as they do for whole documents. Live
// memory is one subtree plus the shared caches — never the document.
package core

import (
	"context"
	"errors"
	"io"

	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// SubtreeResult is one subtree's outcome within an incremental run.
type SubtreeResult struct {
	// Index is the subtree's 0-based ordinal within the document
	// (stable across guard-tripped neighbors).
	Index int
	// Path holds the envelope tag names above the subtree root,
	// document root first. Empty when the subtree never materialized.
	Path []string
	// Bytes is the subtree's encoded input size (0 on a guard trip).
	Bytes int64
	// Result is the pipeline outcome; nil when the subtree tripped a
	// scanner guard or the pipeline failed it. A degraded subtree keeps
	// its partial Result alongside an ErrDegraded-matching Err.
	Result *Result
	// Err is the subtree's typed error (scanner guard trip or pipeline
	// failure), nil on full success.
	Err error
}

// SubtreeSummary aggregates an incremental run.
type SubtreeSummary struct {
	// Subtrees counts the subtrees handed to the pipeline; Failed the
	// subtrees that produced no Result (scanner guard trips plus
	// pipeline failures).
	Subtrees int
	Failed   int
	// Targets and Assigned accumulate the per-subtree pipeline counts.
	Targets  int
	Assigned int
	// Degraded is the worst degradation level any subtree was scored at.
	Degraded xsdferrors.DegradationLevel
}

// ProcessSubtrees drives sc to completion, running the full staged
// pipeline on each completed subtree and invoking fn (when non-nil) once
// per attempted subtree, in document order. Per-subtree failures — a
// recoverable scanner guard trip, or a pipeline error on one subtree —
// are reported through fn and do not stop the scan; a fatal scanner
// error (malformed input, a document-level budget) stops it and is
// returned after the already-emitted subtrees were handed out, partial
// results intact. fn returning an error stops the run with that error.
//
// Cancellation follows ProcessTreeContext's contract per subtree; the
// scan loop itself stops between subtrees when ctx dies (an expired
// deadline is ridden out when the degradation ladder is on, matching the
// whole-document entry points).
func (f *Framework) ProcessSubtrees(ctx context.Context, sc *xmltree.SubtreeScanner, fn func(SubtreeResult) error) (SubtreeSummary, error) {
	degrade := f.opts.Disambiguation.Degrade.Enabled
	var sum SubtreeSummary
	for {
		if cerr := ctx.Err(); cerr != nil && !(degrade && errors.Is(cerr, context.DeadlineExceeded)) {
			return sum, xsdferrors.Canceled(cerr)
		}
		st, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				return sum, nil
			}
			var se *xmltree.SubtreeError
			if errors.As(err, &se) && !se.Fatal {
				sum.Failed++
				if fn != nil {
					if cberr := fn(SubtreeResult{Index: se.Subtree, Err: err}); cberr != nil {
						return sum, cberr
					}
				}
				continue
			}
			return sum, err
		}
		res, perr := f.ProcessTreeContext(ctx, st.Tree)
		sum.Subtrees++
		if res != nil {
			sum.Targets += res.Targets
			sum.Assigned += res.Assigned
			if res.Degraded > sum.Degraded {
				sum.Degraded = res.Degraded
			}
		} else {
			sum.Failed++
		}
		if fn != nil {
			out := SubtreeResult{Index: st.Index, Path: st.Path, Bytes: st.Bytes(), Result: res, Err: perr}
			if cberr := fn(out); cberr != nil {
				return sum, cberr
			}
		}
	}
}
