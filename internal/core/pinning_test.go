package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// versionedNet builds a small lexicon whose concept IDs all carry tag as
// a suffix while the lemma vocabulary is identical across tags: two
// builds with different tags are interchangeable as networks but every
// assigned sense betrays which build scored it. That makes epoch mixing
// observable end to end — if any node of a run were scored against the
// other snapshot, its sense suffix would not match the run's stamp.
func versionedNet(t testing.TB, tag string) *semnet.Network {
	t.Helper()
	b := semnet.NewBuilder()
	root := semnet.ConceptID("entity." + tag)
	b.AddConcept(root, "the shared root concept of every word here", 1000, "entity")
	for i := 0; i < 16; i++ {
		lemma := fmt.Sprintf("word%c", rune('a'+i))
		one := semnet.ConceptID(fmt.Sprintf("%s.one.%s", lemma, tag))
		two := semnet.ConceptID(fmt.Sprintf("%s.two.%s", lemma, tag))
		b.AddConcept(one, fmt.Sprintf("the dominant sense of %s in running text", lemma), float64(60+i), lemma)
		b.AddConcept(two, fmt.Sprintf("a rare alternative reading of %s", lemma), float64(5+i), lemma)
		b.AddEdge(one, semnet.Hypernym, root)
		b.AddEdge(two, semnet.Hypernym, root)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// versionedDoc is a probe document over the shared vocabulary.
func versionedDoc(seed int) string {
	var b strings.Builder
	b.WriteString("<doc>")
	for i := 0; i < 6; i++ {
		lemma := fmt.Sprintf("word%c", rune('a'+(seed+i*3)%16))
		fmt.Fprintf(&b, "<%s>%s</%s>", lemma, lemma, lemma)
	}
	b.WriteString("</doc>")
	return b.String()
}

// epochIdentity is what the swap schedule recorded for one epoch: the
// concept-ID tag of the network serving it and the version label the
// swap reported.
type epochIdentity struct{ tag, version string }

// checkRunConsistency asserts the no-mixed-versions invariant on one
// finished run: every assigned sense carries exactly the tag of the
// epoch the result is stamped with.
func checkRunConsistency(t *testing.T, res *Result, epochTag *sync.Map) {
	t.Helper()
	if res == nil {
		return
	}
	v, ok := epochTag.Load(res.LexiconEpoch)
	if !ok {
		t.Errorf("result stamped with unknown epoch %d", res.LexiconEpoch)
		return
	}
	id := v.(epochIdentity)
	if res.LexiconVersion != id.version {
		t.Errorf("epoch %d stamped version %q, swap recorded %q", res.LexiconEpoch, res.LexiconVersion, id.version)
	}
	for _, n := range res.Tree.Nodes() {
		if n.Sense == "" {
			continue
		}
		// Compound senses ("a+b") still end in the network tag.
		if !strings.HasSuffix(n.Sense, "."+id.tag) {
			t.Errorf("epoch %d (%s) run assigned sense %q from another snapshot", res.LexiconEpoch, id.tag, n.Sense)
		}
	}
}

// TestSnapshotPinningUnderConcurrentSwaps hammers concurrent lexicon
// swaps against in-flight unary, batch, and subtree traffic (run under
// -race in CI). Every run must complete on exactly one lexicon version:
// all senses of one result carry one version tag, and that tag is the
// one the swap sequence recorded for the result's stamped epoch. Zero
// request failures are tolerated — a swap must never break traffic.
func TestSnapshotPinningUnderConcurrentSwaps(t *testing.T) {
	netA, netB := versionedNet(t, "v1"), versionedNet(t, "v2")
	fw, err := New(netA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var epochTag sync.Map
	epochTag.Store(uint64(1), epochIdentity{tag: "v1", version: fw.LexiconInfo().Version})

	swaps := 30
	if testing.Short() {
		swaps = 8
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < swaps; i++ {
			net, tag := netB, "v2"
			if i%2 == 1 {
				net, tag = netA, "v1"
			}
			info, err := fw.ReloadNetwork(context.Background(), net, tag, "pinning-test", ReloadOptions{})
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			epochTag.Store(info.Epoch, epochIdentity{tag: tag, version: info.Version})
		}
	}()

	parse := func(doc string) *xmltree.Tree {
		tr, err := xmltree.Parse(strings.NewReader(doc), xmltree.ParseOptions{
			IncludeContent: true, Tokenize: lingproc.Tokenize,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 3 {
				case 0: // unary
					res, err := fw.ProcessTreeContext(context.Background(), parse(versionedDoc(w+i)))
					if err != nil {
						t.Errorf("worker %d unary: %v", w, err)
						return
					}
					checkRunConsistency(t, res, &epochTag)
				case 1: // batch
					trees := []*xmltree.Tree{parse(versionedDoc(i)), parse(versionedDoc(i + 1)), parse(versionedDoc(i + 2))}
					results, err := fw.ProcessTreesContext(context.Background(), trees, 3, 0)
					if err != nil {
						t.Errorf("worker %d batch: %v", w, err)
						return
					}
					for _, res := range results {
						checkRunConsistency(t, res, &epochTag)
					}
				case 2: // subtree scan: each subtree is its own pinned run
					sc := xmltree.NewSubtreeScanner(strings.NewReader(versionedDoc(w*7+i)), xmltree.SubtreeOptions{
						ParseOptions: xmltree.ParseOptions{IncludeContent: true, Tokenize: lingproc.Tokenize},
					})
					_, err := fw.ProcessSubtrees(context.Background(), sc, func(sr SubtreeResult) error {
						if sr.Err != nil {
							return sr.Err
						}
						checkRunConsistency(t, sr.Result, &epochTag)
						return nil
					})
					if err != nil {
						t.Errorf("worker %d subtree: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// All traffic drained: the retirement backlog must be empty — every
	// retired snapshot's last pin was released — and the swap counter
	// must match the schedule.
	st := fw.LexiconStats()
	if st.RetiredAwaitingDrain != 0 {
		t.Errorf("%d retired snapshots still awaiting drain after all runs finished", st.RetiredAwaitingDrain)
	}
	if st.Swaps != uint64(swaps) || st.Rollbacks != 0 {
		t.Errorf("swaps=%d rollbacks=%d, want %d/0", st.Swaps, st.Rollbacks, swaps)
	}
	if got := fw.LexiconInfo().Epoch; got != uint64(swaps)+1 {
		t.Errorf("final epoch %d, want %d", got, swaps+1)
	}
}
