// The staged pipeline: ProcessTreeContext's module bodies, declared as
// named pipeline.Stage values and executed by one shared
// pipeline.Runner. The stage list is the paper's module diagram (§3,
// Figure 3) plus the robustness stages that grew around it:
//
//	guard → admission → preprocess → select → disambiguate → harmonize
//
// All per-document mutable state lives in the run value threaded through
// the stages; the middleware (cancellation, panic boxing, fault
// injection, timing) is applied once, by the runner, never inline.
package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/ambiguity"
	"repro/internal/disambig"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/xmltree"
)

// The stage names, in execution order. They key Result.Stages,
// Framework.StageStats, and the serving layer's /statusz report.
const (
	StageGuard        = "guard"
	StageAdmission    = "admission"
	StagePreprocess   = "preprocess"
	StageSelect       = "select"
	StageDisambiguate = "disambiguate"
	StageHarmonize    = "harmonize"
)

// stageNames is the declared order; numStages sizes the per-stage
// counter arrays.
var stageNames = [...]string{
	StageGuard, StageAdmission, StagePreprocess,
	StageSelect, StageDisambiguate, StageHarmonize,
}

const numStages = len(stageNames)

// StageTiming is one stage's per-run record: name, the number of items
// it worked over, its duration, and whether the run stopped at it.
type StageTiming = pipeline.Timing

// run is the per-document state threaded through the pipeline stages.
// Stages communicate exclusively through it: no stage holds document
// state of its own, so one Runner serves every document of a framework.
type run struct {
	fw   *Framework
	tree *xmltree.Tree

	// snap is the lexicon snapshot this run pinned at admission. Stages
	// read the network and caches exclusively through it, never through
	// the framework's current pointer: a hot-swap mid-run must not mix
	// two lexicon versions inside one document.
	snap *snapshot

	// canary marks a reload-canary probe run: it scores against a
	// candidate snapshot that is not serving yet, and skips the
	// admission gate so a reload can never shed or starve real traffic.
	canary bool

	// hooks is the fault-injection callback seam, snapshotted once at
	// run start so a concurrent SetTestHooks cannot tear a run.
	hooks faultinject.Hooks

	// release returns the admission gate's capacity; nil until the
	// admission stage acquires (or when the gate is disabled). The
	// pipeline caller releases it after the run, success or not.
	release func()

	// threshold and targets are the node-selection module's outputs.
	threshold float64
	targets   []*xmltree.Node

	// res is the document result, built by the disambiguation stage. It
	// stays non-nil on a degraded abort (partial result + ErrDegraded).
	res *Result
}

// stageIndex maps a stage name back to its position in the declared
// order, for the histogram hook.
var stageIndex = func() map[string]int {
	m := make(map[string]int, numStages)
	for i, name := range stageNames {
		m[name] = i
	}
	return m
}()

// newPipeline declares the framework's stage list. Built once in New and
// shared by every document the framework processes; a second instance
// without the stats hook serves reload canaries (instrument=false), so
// probe runs never leak into serving-latency histograms.
func (f *Framework) newPipeline(instrument bool) *pipeline.Runner[*run] {
	degrade := f.opts.Disambiguation.Degrade.Enabled
	cfg := pipeline.Config{
		// With the ladder on, an expired deadline is not a reason to
		// abort between stages: disambiguation rides it out at the last
		// rung. Explicit cancellation still aborts.
		TolerateCtxErr: func(err error) bool {
			return degrade && errors.Is(err, context.DeadlineExceeded)
		},
	}
	if instrument {
		// Every executed stage feeds its per-stage latency histogram —
		// the distribution behind the cumulative totals of StageStats,
		// exported by the serving layer as xsdf_stage_duration_seconds.
		cfg.OnStage = func(_ context.Context, stage string, _ int, d time.Duration, _ bool) {
			if i, ok := stageIndex[stage]; ok {
				f.stageHists[i].Observe(d.Seconds())
			}
		}
	}
	return pipeline.New(cfg,
		pipeline.Stage[*run]{Name: StageGuard, Run: stageGuard},
		pipeline.Stage[*run]{Name: StageAdmission, Run: stageAdmission},
		pipeline.Stage[*run]{Name: StagePreprocess, Run: stagePreprocess},
		pipeline.Stage[*run]{Name: StageSelect, Run: stageSelect},
		pipeline.Stage[*run]{Name: StageDisambiguate, Run: stageDisambiguate},
		pipeline.Stage[*run]{Name: StageHarmonize, Run: stageHarmonize},
	)
}

// stageGuard enforces the whole-tree resource limits on pre-parsed input
// before any work is admitted or performed.
func stageGuard(_ context.Context, r *run) (int, error) {
	return r.tree.Len(), r.fw.guardTree(r.tree)
}

// stageAdmission takes the admission gate's capacity for this document
// (weighted by node count), parking the release function in the run
// state. A no-op when admission control is disabled, and for reload
// canaries: probe runs must neither consume capacity real traffic is
// waiting on nor be shed by it.
func stageAdmission(ctx context.Context, r *run) (int, error) {
	g := r.fw.gate
	if g == nil || r.canary {
		return 0, nil
	}
	release, err := g.acquire(ctx, r.tree.Len(), r.fw.opts.Admission.MaxWait)
	if err != nil {
		return r.tree.Len(), err
	}
	r.release = release
	return r.tree.Len(), nil
}

// stagePreprocess is module 1: linguistic pre-processing. The BeforeTree
// hook and the tree-level fault point fire here — after admission,
// exactly where the inline pipeline fired them.
func stagePreprocess(_ context.Context, r *run) (int, error) {
	if r.hooks.BeforeTree != nil {
		r.hooks.BeforeTree(r.tree)
	}
	faultinject.TreeStart()
	r.snap.proc.ProcessTree(r.tree)
	return r.tree.Len(), nil
}

// stageSelect is module 2: ambiguity-based node selection.
func stageSelect(_ context.Context, r *run) (int, error) {
	f := r.fw
	r.threshold = f.opts.Threshold
	if f.opts.AutoThreshold {
		r.threshold = ambiguity.AutoThreshold(r.tree, r.snap.net, f.opts.Ambiguity, f.opts.AutoThresholdK)
	}
	r.targets = ambiguity.Select(r.tree, r.snap.net, f.opts.Ambiguity, r.threshold)
	return len(r.targets), nil
}

// stageDisambiguate is modules 3 + 4: sphere context construction and
// semantic disambiguation. The disambiguator is per-document (it memoizes
// per-node contexts keyed by node pointer) but draws on the
// framework-shared similarity and vector caches. The Result is built here
// even when ApplyReport fails, so a degraded abort hands back the partial
// accounting.
func stageDisambiguate(ctx context.Context, r *run) (int, error) {
	f := r.fw
	disOpts := f.opts.Disambiguation
	if r.hooks.BeforeNode != nil {
		disOpts.NodeHook = r.hooks.BeforeNode
	}
	dis := disambig.NewShared(r.snap.cache, disOpts)
	rep, err := dis.ApplyReport(ctx, r.targets)
	r.res = &Result{
		Tree:           r.tree,
		Targets:        len(r.targets),
		Assigned:       rep.Assigned,
		Threshold:      r.threshold,
		Degraded:       rep.Level,
		NodesAtLevel:   rep.NodesAtLevel,
		Unscored:       rep.Unscored,
		LexiconEpoch:   r.snap.info.Epoch,
		LexiconVersion: r.snap.info.Version,
	}
	return len(r.targets), err
}

// stageHarmonize is the Gale-Church-Yarowsky one-sense-per-discourse pass
// (opt-in). A degraded abort never reaches it: the runner stops at the
// disambiguation stage's error, so harmonization cannot act on an
// inconsistent prefix.
func stageHarmonize(_ context.Context, r *run) (int, error) {
	if !r.fw.opts.OneSensePerDiscourse {
		return 0, nil
	}
	return disambig.Harmonize(r.targets), nil
}

// stageCounters is one stage's cumulative accounting, maintained with
// atomics so batch workers record concurrently without a lock.
type stageCounters struct {
	calls atomic.Uint64
	errs  atomic.Uint64
	items atomic.Uint64
	nanos atomic.Int64
}

// StageStats is the cumulative per-stage accounting of a Framework:
// how many runs attempted the stage, how many stopped at it, how many
// items it worked over, and its total duration — the "where does the
// time go" answer for operators and the serving layer's /statusz.
type StageStats struct {
	Stage  string
	Calls  uint64
	Errors uint64
	Items  uint64
	Total  time.Duration
}

// StageLatency pairs a stage name with its latency distribution since
// framework construction: the histogram counterpart of StageStats'
// cumulative totals, in seconds, for Prometheus-style exposition.
type StageLatency struct {
	Stage   string
	Latency metrics.HistogramSnapshot
}

// StageLatencies snapshots the per-stage latency histograms, one entry
// per declared stage in execution order. Only stages that actually ran
// are counted (stages refused by the cancellation check carry no
// duration), so a stage's histogram count can trail its StageStats.Calls.
func (f *Framework) StageLatencies() []StageLatency {
	out := make([]StageLatency, numStages)
	for i, name := range stageNames {
		out[i] = StageLatency{Stage: name, Latency: f.stageHists[i].Snapshot()}
	}
	return out
}

// StageStats snapshots the cumulative per-stage counters, one entry per
// declared stage in execution order.
func (f *Framework) StageStats() []StageStats {
	out := make([]StageStats, numStages)
	for i, name := range stageNames {
		c := &f.stageStats[i]
		out[i] = StageStats{
			Stage:  name,
			Calls:  c.calls.Load(),
			Errors: c.errs.Load(),
			Items:  c.items.Load(),
			Total:  time.Duration(c.nanos.Load()),
		}
	}
	return out
}

// recordStages folds one run's timings into the cumulative counters. The
// runner returns timings as a prefix of the declared stage list, so
// position identifies the stage.
func (f *Framework) recordStages(timings []pipeline.Timing) {
	for i, tm := range timings {
		if i >= numStages {
			break
		}
		c := &f.stageStats[i]
		c.calls.Add(1)
		if tm.Failed {
			c.errs.Add(1)
		}
		c.items.Add(uint64(tm.Items))
		c.nanos.Add(int64(tm.Duration))
	}
}
