// Lexicon lifecycle: the semantic network, its derived precomputations,
// and every similarity/vector cache keyed by its concept IDs live
// together in one immutable snapshot behind an atomic pointer. Runs pin
// the snapshot once at admission and score against it exclusively, so a
// hot-swap can never mix two lexicon versions inside one document; a
// retired snapshot frees only after its last pinned run drains.
//
// Reloads are staged — load → validate → canary → swap — and rollback is
// the default: any stage failure returns a typed *xsdferrors.ReloadError
// and leaves the serving snapshot untouched. Only a candidate that
// parsed, checksummed, validated, and disambiguated a probe corpus gets
// the pointer.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disambig"
	"repro/internal/faultinject"
	"repro/internal/lingproc"
	"repro/internal/metrics"
	"repro/internal/semnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// LexiconInfo identifies the lexicon snapshot a framework is serving (or
// a result was scored against): the /statusz identity block.
type LexiconInfo struct {
	// Epoch is the framework-local swap generation: 1 for the snapshot
	// the framework was constructed with, +1 per successful swap. Two
	// results with equal epochs were scored against the same snapshot.
	Epoch uint64
	// Version is the operator-facing label (the codec footer's version
	// field, or "sha-<prefix>" when none was recorded).
	Version string
	// Checksum is the hex SHA-256 identity of the lexicon bytes.
	Checksum string
	// Source is where the snapshot came from: "construction" or the
	// codec file path it was reloaded from.
	Source string
	// Concepts is the network size.
	Concepts int
	// LoadedAt and LoadTime record when the snapshot went live and how
	// long its staged load pipeline took.
	LoadedAt time.Time
	LoadTime time.Duration
}

// snapshot owns one lexicon version end to end: the immutable network
// (with its build-time ConceptIndex, ancestor lists, gloss tokens, and
// LCS memo) plus the sharded similarity/vector caches and the memoizing
// linguistic pre-processor keyed by its vocabulary. Caches live here —
// never on the Framework — so a swapped-in network can never be scored
// against memos of its predecessor.
//
// The dense concept index travels inside the network: semnet.Build
// assigns every concept a stable int32 at build time, and all integer
// keys in the caches below (similarity pairs, vector keys) are dense ids
// of exactly this network. Pinning the snapshot therefore pins the index
// and the epoch together — a run can never look up epoch-N dense ids in
// epoch-M memos.
type snapshot struct {
	net   *semnet.Network
	cache *disambig.Cache
	proc  *lingproc.Processor
	info  LexiconInfo
	fw    *Framework

	// refs counts the pointer's own reference (1, dropped at retirement)
	// plus one per pinned run. retired flips when a newer snapshot takes
	// the pointer; the last unpin of a retired snapshot drains it.
	refs      atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
}

// newSnapshot builds the snapshot for net with fresh caches. The caller
// assigns the epoch at swap time.
func (f *Framework) newSnapshot(net *semnet.Network, info LexiconInfo) *snapshot {
	s := &snapshot{
		net:   net,
		cache: disambig.NewCache(net, f.opts.Disambiguation.SimWeights),
		proc:  lingproc.NewProcessor(net),
		info:  info,
		fw:    f,
	}
	s.refs.Store(1) // the current-pointer reference
	return s
}

// pin takes a reference on the current snapshot for one run. The
// increment-then-recheck loop closes the swap race: if the pointer moved
// between the load and the increment, the reference may have landed on a
// snapshot whose drain already ran, so it is released and the pin
// retries on the new current snapshot.
func (f *Framework) pin() *snapshot {
	for {
		s := f.snap.Load()
		s.refs.Add(1)
		if f.snap.Load() == s {
			return s
		}
		s.unpin()
	}
}

// unpin releases one reference; the last release of a retired snapshot
// drains it.
func (s *snapshot) unpin() {
	if s.refs.Add(-1) == 0 && s.retired.Load() {
		s.drain()
	}
}

// retire marks the snapshot superseded and drops the pointer's own
// reference. In-flight pinned runs keep scoring against it; the gauge
// decrement happens when the last of them unpins.
func (s *snapshot) retire() {
	s.fw.retiredAwaiting.Add(1)
	s.retired.Store(true)
	s.unpin()
}

// drain is the end of the snapshot's life: all pins released after
// retirement. drainOnce guards the gauge against the pin-retry path
// resurrecting and re-dropping a dead snapshot.
func (s *snapshot) drain() {
	s.drainOnce.Do(func() {
		s.fw.retiredAwaiting.Add(-1)
	})
}

// ReloadOptions tunes one staged lexicon reload.
type ReloadOptions struct {
	// ExpectedChecksum, when non-empty, must equal the candidate file's
	// footer checksum or the load stage fails — the operator's guard
	// against swapping in a file that changed between upload and reload.
	ExpectedChecksum string
	// MinCanaryAssign is the minimum fraction of selected canary probe
	// targets that must receive a sense (0 selects the 0.5 default).
	// Probes are generated from the candidate's own lemmas, so a healthy
	// lexicon scores well above any sane threshold.
	MinCanaryAssign float64
}

// Reload runs the staged swap pipeline over a checksummed codec file:
//
//	load (ReadFile + checksum) → validate → canary → atomic swap
//
// On success the new snapshot is serving when Reload returns and the
// previous one retires (freeing once its last pinned run drains). On any
// stage failure the previous snapshot keeps serving untouched and the
// error is a *xsdferrors.ReloadError naming the stage — rollback is the
// default, swap is the exception. Reloads serialize; the data path never
// blocks on one.
func (f *Framework) Reload(ctx context.Context, path string, opts ReloadOptions) (LexiconInfo, error) {
	f.reloadMu.Lock()
	defer f.reloadMu.Unlock()
	start := time.Now()
	info, err := f.reloadLocked(ctx, path, opts, start)
	f.reloadHist.Observe(time.Since(start).Seconds())
	if err != nil {
		f.rollbacks.Add(1)
		return f.LexiconInfo(), err
	}
	f.swaps.Add(1)
	return info, nil
}

func (f *Framework) reloadLocked(ctx context.Context, path string, opts ReloadOptions, start time.Time) (LexiconInfo, error) {
	fail := func(stage string, cause error) (LexiconInfo, error) {
		return LexiconInfo{}, &xsdferrors.ReloadError{Stage: stage, Source: path, Cause: cause}
	}
	// Stage: load. Codec integrity is part of the read (checksum footer);
	// an operator-pinned checksum is compared on top.
	if err := faultinject.ReloadStage("load"); err != nil {
		return fail("load", err)
	}
	net, finfo, err := semnet.ReadFile(path)
	if err != nil {
		return fail("load", err)
	}
	if opts.ExpectedChecksum != "" && !strings.EqualFold(opts.ExpectedChecksum, finfo.Checksum) {
		return fail("load", fmt.Errorf("checksum mismatch: file is %s, caller expected %s", finfo.Checksum, opts.ExpectedChecksum))
	}
	info := LexiconInfo{
		Version:  finfo.Version,
		Checksum: finfo.Checksum,
		Source:   path,
		Concepts: net.Len(),
	}
	return f.admitCandidate(ctx, net, info, opts, start)
}

// ReloadNetwork is the in-memory variant of Reload for candidates that
// did not come from a codec file (tests, embedded upgrades): the same
// validate → canary → swap pipeline, same rollback semantics, same
// counters. source labels the candidate in errors and LexiconInfo.
func (f *Framework) ReloadNetwork(ctx context.Context, net *semnet.Network, version, source string, opts ReloadOptions) (LexiconInfo, error) {
	f.reloadMu.Lock()
	defer f.reloadMu.Unlock()
	start := time.Now()
	if source == "" {
		source = "inline"
	}
	if net == nil {
		f.reloadHist.Observe(time.Since(start).Seconds())
		f.rollbacks.Add(1)
		return f.LexiconInfo(), &xsdferrors.ReloadError{Stage: "load", Source: source, Cause: fmt.Errorf("nil candidate network")}
	}
	checksum := net.Checksum()
	if version == "" {
		version = semnet.VersionLabel(checksum)
	}
	info := LexiconInfo{Version: version, Checksum: checksum, Source: source, Concepts: net.Len()}
	li, err := f.admitCandidate(ctx, net, info, opts, start)
	f.reloadHist.Observe(time.Since(start).Seconds())
	if err != nil {
		f.rollbacks.Add(1)
		return f.LexiconInfo(), err
	}
	f.swaps.Add(1)
	return li, nil
}

// admitCandidate runs the post-load stages — structural validation,
// canary disambiguation, atomic swap — under the reload lock.
func (f *Framework) admitCandidate(ctx context.Context, net *semnet.Network, info LexiconInfo, opts ReloadOptions, start time.Time) (LexiconInfo, error) {
	fail := func(stage string, cause error) (LexiconInfo, error) {
		return LexiconInfo{}, &xsdferrors.ReloadError{Stage: stage, Source: info.Source, Cause: cause}
	}
	// Stage: validate. The same structural invariants Build guarantees,
	// re-checked because this network came from outside.
	if err := faultinject.ReloadStage("validate"); err != nil {
		return fail("validate", err)
	}
	if net.Len() == 0 {
		return fail("validate", fmt.Errorf("candidate network is empty"))
	}
	if err := net.Validate(); err != nil {
		return fail("validate", err)
	}
	// Stage: canary. The candidate snapshot — its own caches included —
	// disambiguates a probe corpus generated from its own lemmas through
	// the real pipeline before it is allowed to serve anyone.
	cand := f.newSnapshot(net, info)
	if err := faultinject.ReloadStage("canary"); err != nil {
		f.canaryFails.Add(1)
		return fail("canary", err)
	}
	if err := f.runCanary(ctx, cand, opts.MinCanaryAssign); err != nil {
		f.canaryFails.Add(1)
		return fail("canary", err)
	}
	// Stage: swap. Assign the epoch before publication so pinned readers
	// never see a zero epoch, then retire the predecessor.
	cand.info.LoadedAt = time.Now()
	cand.info.LoadTime = time.Since(start)
	cand.info.Epoch = f.epoch.Add(1)
	old := f.snap.Swap(cand)
	old.retire()
	return cand.info, nil
}

// defaultMinCanaryAssign is the assignment-rate floor of the canary
// stage: probes are the candidate's own vocabulary, so well under half
// of them resolving means the lexicon's sense lists or relations are
// broken even though the structure validated.
const defaultMinCanaryAssign = 0.5

// runCanary disambiguates the probe corpus against the candidate
// snapshot through the canary pipeline (identical stages, no admission,
// no stats accounting). Any hard error fails the canary; so does an
// assignment rate under min.
func (f *Framework) runCanary(ctx context.Context, cand *snapshot, min float64) error {
	if min <= 0 {
		min = defaultMinCanaryAssign
	}
	targets, assigned := 0, 0
	for i, doc := range canaryDocs(cand.net) {
		t, err := xmltree.Parse(strings.NewReader(doc), xmltree.ParseOptions{
			IncludeContent: f.opts.IncludeContent,
			Tokenize:       lingproc.Tokenize,
		})
		if err != nil {
			return fmt.Errorf("probe %d failed to parse: %w", i, err)
		}
		r := &run{fw: f, tree: t, snap: cand, canary: true, hooks: currentHooks()}
		_, err = f.canaryPipe.Run(ctx, r)
		if r.release != nil {
			r.release()
		}
		if err != nil {
			return fmt.Errorf("probe %d: %w", i, err)
		}
		targets += r.res.Targets
		assigned += r.res.Assigned
	}
	if targets > 0 && float64(assigned) < min*float64(targets) {
		return fmt.Errorf("canary divergence: %d of %d probe targets assigned, need %.0f%%", assigned, targets, min*100)
	}
	return nil
}

// canaryDocs generates the built-in probe corpus from the candidate's
// own vocabulary: small documents whose element labels and content are
// single-word lemmas of the network, polysemous ones first (they
// exercise actual scoring, not just lookup). Content-independent of any
// particular lexicon, so swapping to a disjoint vocabulary still
// canaries meaningfully.
func canaryDocs(net *semnet.Network) []string {
	const maxLemmas, perDoc = 24, 4
	var poly, mono []string
	for _, l := range net.Lemmas() {
		if !xmlNameSafe(l) {
			continue
		}
		if net.PolysemyOf(l) > 1 {
			poly = append(poly, l)
		} else {
			mono = append(mono, l)
		}
		if len(poly) >= maxLemmas {
			break
		}
	}
	picks := poly
	if len(picks) < maxLemmas {
		picks = append(picks, mono[:minInt(len(mono), maxLemmas-len(picks))]...)
	}
	var docs []string
	for len(picks) > 0 {
		n := minInt(perDoc, len(picks))
		var b strings.Builder
		b.WriteString("<probe>")
		for _, l := range picks[:n] {
			fmt.Fprintf(&b, "<%s>%s</%s>", l, l, l)
		}
		b.WriteString("</probe>")
		docs = append(docs, b.String())
		picks = picks[n:]
	}
	return docs
}

// xmlNameSafe reports whether the lemma can serve directly as an XML
// element name: a single lowercase ASCII word, digits allowed past the
// first character.
func xmlNameSafe(l string) bool {
	if l == "" || l[0] < 'a' || l[0] > 'z' {
		return false
	}
	for i := 1; i < len(l); i++ {
		c := l[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LexiconInfo reports the identity of the snapshot currently serving.
func (f *Framework) LexiconInfo() LexiconInfo { return f.snap.Load().info }

// LexiconStats is the hot-swap subsystem's observability snapshot: the
// serving identity plus the lifetime swap/rollback/canary counters, the
// retirement backlog, and the reload-duration distribution.
type LexiconStats struct {
	Info                 LexiconInfo
	Swaps                uint64
	Rollbacks            uint64
	CanaryFailures       uint64
	RetiredAwaitingDrain int64
	ReloadLatency        metrics.HistogramSnapshot
}

// LexiconStats snapshots the hot-swap counters.
func (f *Framework) LexiconStats() LexiconStats {
	return LexiconStats{
		Info:                 f.LexiconInfo(),
		Swaps:                f.swaps.Load(),
		Rollbacks:            f.rollbacks.Load(),
		CanaryFailures:       f.canaryFails.Load(),
		RetiredAwaitingDrain: f.retiredAwaiting.Load(),
		ReloadLatency:        f.reloadHist.Snapshot(),
	}
}
