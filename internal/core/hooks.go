package core

import "repro/internal/faultinject"

// TestHooks is the fault-injection seam of the pipeline, now owned by
// internal/faultinject (the alias keeps the historical name working).
// Tests install hooks to deterministically simulate failure modes — a
// hook that panics models a poisoned document, a hook that sleeps models
// a slow node, a hook that inspects the tree can assert ordering.
// Production code never sets hooks; all call sites tolerate the nil zero
// value.
type TestHooks = faultinject.Hooks

// SetTestHooks installs h and returns a function restoring the previous
// hooks; tests should defer it. Safe for concurrent use with running
// pipelines (workers snapshot the hooks at tree start).
func SetTestHooks(h TestHooks) (restore func()) {
	return faultinject.SetHooks(h)
}

func currentHooks() TestHooks {
	return faultinject.CurrentHooks()
}
