package core

import (
	"sync"

	"repro/internal/xmltree"
)

// TestHooks is the fault-injection seam of the pipeline. Tests install
// hooks to deterministically simulate failure modes — a hook that panics
// models a poisoned document, a hook that sleeps models a slow node, a
// hook that inspects the tree can assert ordering. Production code never
// sets hooks; all call sites tolerate the nil zero value.
type TestHooks struct {
	// BeforeTree runs at the start of ProcessTreeContext, after the
	// resource guards, with the tree about to be processed.
	BeforeTree func(*xmltree.Tree)
	// BeforeNode runs before each target node is disambiguated (it is
	// threaded into disambig.Options.NodeHook).
	BeforeNode func(*xmltree.Node)
}

var (
	hooksMu   sync.Mutex
	testHooks TestHooks
)

// SetTestHooks installs h and returns a function restoring the previous
// hooks; tests should defer it. Safe for concurrent use with running
// pipelines (workers snapshot the hooks at tree start).
func SetTestHooks(h TestHooks) (restore func()) {
	hooksMu.Lock()
	prev := testHooks
	testHooks = h
	hooksMu.Unlock()
	return func() {
		hooksMu.Lock()
		testHooks = prev
		hooksMu.Unlock()
	}
}

func currentHooks() TestHooks {
	hooksMu.Lock()
	defer hooksMu.Unlock()
	return testHooks
}
