package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// TestResultStagesInstrumentation: a real document reports every declared
// stage, in order, with non-zero durations and the right item counts.
func TestResultStagesInstrumentation(t *testing.T) {
	opts := DefaultOptions()
	opts.OneSensePerDiscourse = true
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != numStages {
		t.Fatalf("Stages has %d entries, want %d: %+v", len(res.Stages), numStages, res.Stages)
	}
	for i, st := range res.Stages {
		if st.Stage != stageNames[i] {
			t.Errorf("Stages[%d] = %q, want %q", i, st.Stage, stageNames[i])
		}
		if st.Failed {
			t.Errorf("stage %s marked failed on a clean run", st.Stage)
		}
		if st.Duration <= 0 {
			t.Errorf("stage %s duration = %v, want > 0", st.Stage, st.Duration)
		}
	}
	n := res.Tree.Len()
	for _, want := range []struct {
		stage string
		items int
	}{
		{StageGuard, n},
		{StageAdmission, 0}, // gate disabled
		{StagePreprocess, n},
		{StageSelect, res.Targets},
		{StageDisambiguate, res.Targets},
	} {
		got := -1
		for _, st := range res.Stages {
			if st.Stage == want.stage {
				got = st.Items
			}
		}
		if got != want.items {
			t.Errorf("stage %s items = %d, want %d", want.stage, got, want.items)
		}
	}
}

// TestStageStatsAccumulate: cumulative counters sum across runs, in
// declared order.
func TestStageStatsAccumulate(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var nodes int
	for i := 0; i < 2; i++ {
		res, err := fw.ProcessReader(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		nodes = res.Tree.Len()
	}
	stats := fw.StageStats()
	if len(stats) != numStages {
		t.Fatalf("StageStats has %d entries, want %d", len(stats), numStages)
	}
	for i, st := range stats {
		if st.Stage != stageNames[i] {
			t.Errorf("StageStats[%d] = %q, want %q", i, st.Stage, stageNames[i])
		}
		if st.Calls != 2 {
			t.Errorf("stage %s calls = %d, want 2", st.Stage, st.Calls)
		}
		if st.Errors != 0 {
			t.Errorf("stage %s errors = %d, want 0", st.Stage, st.Errors)
		}
		if st.Total <= 0 {
			t.Errorf("stage %s total = %v, want > 0", st.Stage, st.Total)
		}
	}
	if got, want := stats[0].Items, uint64(2*nodes); got != want {
		t.Errorf("guard items = %d, want %d", got, want)
	}
}

// TestStageStatsCountErrors: a run stopped by the guard counts one call
// and one error against the guard stage and nothing downstream.
func TestStageStatsCountErrors(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxNodes = 1
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProcessTree(parseDoc(t, doc))
	if res != nil || !errors.Is(err, xsdferrors.ErrLimitExceeded) {
		t.Fatalf("res = %v, err = %v, want nil + limit error", res, err)
	}
	stats := fw.StageStats()
	if g := stats[0]; g.Stage != StageGuard || g.Calls != 1 || g.Errors != 1 {
		t.Errorf("guard stats = %+v, want 1 call, 1 error", g)
	}
	for _, st := range stats[1:] {
		if st.Calls != 0 {
			t.Errorf("stage %s ran (%d calls) after a guard failure", st.Stage, st.Calls)
		}
	}
}

// parseDoc parses a document with no limits, for guard tests over
// pre-parsed trees.
func parseDoc(t *testing.T, src string) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(src), xmltree.ParseOptions{
		IncludeContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestProcessReaderMaxTokenBytes: the parse-time token-size guard is
// honored by ProcessReader (regression: it used to be silently dropped
// when building ParseOptions).
func TestProcessReaderMaxTokenBytes(t *testing.T) {
	oversized := "<a>" + strings.Repeat("x", 33) + "</a>"

	opts := DefaultOptions()
	opts.MaxTokenBytes = 32
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.ProcessReader(strings.NewReader(oversized))
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("oversized token returned %v, want *LimitError", err)
	}
	if le.Limit != "token-bytes" || le.Max != 32 {
		t.Errorf("limit = %q max %d, want token-bytes max 32", le.Limit, le.Max)
	}

	// The same document passes with the guard at its default.
	fw, err = New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.ProcessReader(strings.NewReader(oversized)); err != nil {
		t.Errorf("default guard rejected a 33-byte token: %v", err)
	}
}

// deepChain builds a pre-parsed element chain whose MaxDepth() is exactly n.
func deepChain(n int) *xmltree.Tree {
	root := &xmltree.Node{Raw: "e", Label: "e", Kind: xmltree.Element}
	cur := root
	for i := 0; i < n; i++ {
		c := &xmltree.Node{Raw: "e", Label: "e", Kind: xmltree.Element}
		cur.AddChild(c)
		cur = c
	}
	return xmltree.New(root)
}

// TestGuardTreeDepthSlackBoundary: the pre-parsed depth guard allows
// exactly MaxDepth+2 (the attribute and token levels a parse-time-accepted
// document can legitimately reach) and trips one level deeper.
func TestGuardTreeDepthSlackBoundary(t *testing.T) {
	const maxDepth = 3
	opts := DefaultOptions()
	opts.MaxDepth = maxDepth
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}

	atSlack := deepChain(maxDepth + 2)
	if err := fw.guardTree(atSlack); err != nil {
		t.Errorf("depth %d (exactly MaxDepth+2) rejected: %v", atSlack.MaxDepth(), err)
	}

	beyond := deepChain(maxDepth + 3)
	err = fw.guardTree(beyond)
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("depth %d returned %v, want *LimitError", beyond.MaxDepth(), err)
	}
	if le.Limit != "depth" || le.Max != maxDepth || le.Actual != maxDepth+3 {
		t.Errorf("limit = %+v, want depth max %d actual %d", le, maxDepth, maxDepth+3)
	}
}

// nestedDoc builds a document of the given element-nesting depth whose
// deepest element carries an attribute and a text token — the worst case
// the guardTree slack exists for.
func nestedDoc(depth int) string {
	var b strings.Builder
	for i := 0; i < depth-1; i++ {
		fmt.Fprintf(&b, "<e%d>", i)
	}
	b.WriteString(`<deep t="x">word</deep>`)
	for i := depth - 2; i >= 0; i-- {
		fmt.Fprintf(&b, "</e%d>", i)
	}
	return b.String()
}

// TestGuardAgreementParseVsPreParsed: the same documents get the same
// verdict from the parse-time depth guard and from guardTree on the
// pre-parsed tree, on both sides of the limit.
func TestGuardAgreementParseVsPreParsed(t *testing.T) {
	const maxDepth = 3
	opts := DefaultOptions()
	opts.MaxDepth = maxDepth
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	parseGuard := func(src string) error {
		_, err := xmltree.Parse(strings.NewReader(src), xmltree.ParseOptions{
			IncludeContent: true,
			MaxDepth:       maxDepth,
		})
		return err
	}

	// Nesting at the limit, with the attribute + token levels on top:
	// accepted by both guards.
	ok := nestedDoc(maxDepth)
	if err := parseGuard(ok); err != nil {
		t.Errorf("parse guard rejected nesting %d: %v", maxDepth, err)
	}
	if err := fw.guardTree(parseDoc(t, ok)); err != nil {
		t.Errorf("pre-parsed guard rejected nesting %d: %v", maxDepth, err)
	}

	// Nesting past the slack window: rejected by both guards with the
	// same limit name.
	bad := nestedDoc(maxDepth + 2)
	for name, err := range map[string]error{
		"parse":      parseGuard(bad),
		"pre-parsed": fw.guardTree(parseDoc(t, bad)),
	} {
		var le *xsdferrors.LimitError
		if !errors.As(err, &le) || le.Limit != "depth" {
			t.Errorf("%s guard on nesting %d: %v, want depth *LimitError", name, maxDepth+2, err)
		}
	}
}
