package core

import (
	"sync"
	"testing"

	"repro/internal/wordnet"
)

// TestFrameworkSharedAcrossGoroutines drives one Framework from many
// goroutines processing distinct documents concurrently — the batch-server
// usage pattern — and checks results match a sequential run on the same
// corpus. Under -race this pins down the concurrency safety of the shared
// similarity/vector cache the workers all memoize into.
func TestFrameworkSharedAcrossGoroutines(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq := corpusTrees(t, 10)
	conc := corpusTrees(t, 10)

	ref, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range seq {
		if _, err := ref.ProcessTree(tr); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(conc))
	for i := range conc {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = fw.ProcessTree(conc[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}
	for i := range seq {
		for j := 0; j < seq[i].Len(); j++ {
			if seq[i].Node(j).Sense != conc[i].Node(j).Sense {
				t.Fatalf("doc %d node %d: sequential %q, concurrent %q",
					i, j, seq[i].Node(j).Sense, conc[i].Node(j).Sense)
			}
		}
	}
}

// TestCacheStatsWarmReprocessing checks the framework-level observability
// hook: reprocessing documents with repeated vocabulary must hit the
// shared cache, and the hit counters must say so.
func TestCacheStatsWarmReprocessing(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.ProcessTrees(corpusTrees(t, 6), 3); err != nil {
		t.Fatal(err)
	}
	cold := fw.CacheStats()
	if cold.SimMisses == 0 {
		t.Fatal("first pass should miss the sim cache")
	}
	if _, err := fw.ProcessTrees(corpusTrees(t, 6), 3); err != nil {
		t.Fatal(err)
	}
	warm := fw.CacheStats()
	if warm.SimHits <= cold.SimHits {
		t.Error("reprocessing identical vocabulary should add sim-cache hits")
	}
	if warm.SimMisses != cold.SimMisses {
		t.Errorf("reprocessing identical documents should add no sim misses: %d -> %d",
			cold.SimMisses, warm.SimMisses)
	}
	t.Logf("cold %+v warm %+v", cold, warm)
}
