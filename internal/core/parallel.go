package core

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// ProcessTrees runs the pipeline over a batch of documents concurrently
// with the given number of workers (<= 0 selects GOMAXPROCS). It is
// ProcessTreesContext with a background context and no per-document
// deadline.
func (f *Framework) ProcessTrees(trees []*xmltree.Tree, workers int) ([]*Result, error) {
	return f.ProcessTreesContext(context.Background(), trees, workers, 0)
}

// ProcessTreesContext runs the pipeline over a batch of documents
// concurrently, fault-isolated per document. The semantic network is
// immutable and shared, and all workers memoize into the framework's
// shared similarity/vector cache (sharded locks), so repeated vocabulary
// across documents is scored once for the whole batch. Per-document state
// is limited to the disambiguator's node-context memo.
//
// Failure semantics: each document succeeds or fails independently.
// Results are in input order; a slot is nil exactly when that document
// failed. When any document fails, the returned error is an
// *xsdferrors.BatchError whose Errs slice is indexed by document, so
// callers see every failure (not just the first) and can match typed
// causes with errors.Is/As:
//
//   - a worker panic is recovered and boxed as an *xsdferrors.PanicError
//     carrying the document index and stack — one poisoned document never
//     takes down the batch;
//   - a tree violating the resource guards fails with an
//     *xsdferrors.LimitError;
//   - docTimeout > 0 bounds each document's processing time; expiry fails
//     that document with xsdferrors.ErrCanceled (wrapping
//     context.DeadlineExceeded) — unless the degradation ladder is on, in
//     which case the document finishes at a cheaper rung and succeeds with
//     the achieved level in Result.Degraded;
//   - a document turned away by the admission gate fails with an
//     *xsdferrors.OverloadError;
//   - a document canceled mid-ladder keeps its partial Result in results
//     and fails with a *xsdferrors.DegradedError (the one error kind whose
//     result slot is non-nil — BatchError.Failed excludes it,
//     BatchError.Degraded lists it);
//   - cancelling ctx aborts the whole batch promptly: in-flight documents
//     stop at their next per-node check and undispatched documents fail
//     with xsdferrors.ErrCanceled.
func (f *Framework) ProcessTreesContext(ctx context.Context, trees []*xmltree.Tree, workers int, docTimeout time.Duration) ([]*Result, error) {
	workers = EffectiveWorkers(workers)
	if workers > len(trees) {
		workers = len(trees)
	}
	results := make([]*Result, len(trees))
	if len(trees) == 0 {
		return results, nil
	}

	errs := make([]error, len(trees)) // slot i written only by the worker that took job i
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = f.processOne(ctx, trees[i], i, docTimeout)
			}
		}()
	}
	next := 0
dispatch:
	for ; next < len(trees); next++ {
		select {
		case jobs <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	// Documents never dispatched fail with the cancellation cause.
	for ; next < len(trees); next++ {
		errs[next] = xsdferrors.Canceled(ctx.Err())
	}
	if err := xsdferrors.NewBatchError(errs); err != nil {
		return results, err
	}
	return results, nil
}

// EffectiveWorkers normalizes a worker-count option: values <= 0 select
// GOMAXPROCS. Every worker-pool entry point — the core batch path here,
// the intra-document node pool (disambig.NewShared), and the public batch
// API — routes through this one rule, so the layers cannot drift apart in
// how they read "use all cores".
func EffectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// processOne runs one document with panic isolation and an optional
// per-document deadline.
func (f *Framework) processOne(ctx context.Context, t *xmltree.Tree, doc int, timeout time.Duration) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &xsdferrors.PanicError{Doc: doc, Value: v, Stack: debug.Stack()}
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err = f.ProcessTreeContext(ctx, t)
	// Stage panics arrive boxed by the pipeline middleware with no document
	// index (the pipeline is batch-agnostic); stamp this slot's index on.
	var pe *xsdferrors.PanicError
	if errors.As(err, &pe) && pe.Doc < 0 {
		pe.Doc = doc
	}
	return res, err
}
