package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/xmltree"
)

// ProcessTrees runs the pipeline over a batch of documents concurrently
// with the given number of workers (<= 0 selects GOMAXPROCS). The semantic
// network is immutable and shared; every worker builds its own
// disambiguator state, so no locking is needed on the hot path. Results
// are returned in input order; the first error (if any) is reported after
// all workers drain, and the corresponding result slots are nil.
func (f *Framework) ProcessTrees(trees []*xmltree.Tree, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trees) {
		workers = len(trees)
	}
	results := make([]*Result, len(trees))
	if len(trees) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range jobs {
				res, err := f.ProcessTree(trees[i])
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("document %d: %w", i, err)
					}
					continue
				}
				results[i] = res
			}
			if firstErr != nil {
				errs <- firstErr
			}
		}()
	}
	for i := range trees {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return results, err
	}
	return results, nil
}
