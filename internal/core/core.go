// Package core implements the XSDF framework itself (§3, Figure 3): the
// four-module pipeline that turns a syntactic XML tree into a semantic XML
// tree given a reference semantic network and user parameters.
//
//	input XML tree ──► linguistic pre-processing ──► node selection
//	      ──► sphere context definition ──► semantic disambiguation
//	      ──► semantic XML tree (concept-annotated nodes)
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ambiguity"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/semnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Options aggregates every user parameter of the framework. Zero values are
// replaced by the defaults documented on each field.
type Options struct {
	// IncludeContent selects structure-and-content (true, default via
	// DefaultOptions) or structure-only processing (§3.1).
	IncludeContent bool
	// Ambiguity holds the w_Polysemy/w_Depth/w_Density weights of the
	// ambiguity degree measure (Definition 3).
	Ambiguity ambiguity.Weights
	// Threshold is Thresh_Amb: nodes with Amb_Deg >= Threshold are selected
	// for disambiguation. 0 selects all nodes.
	Threshold float64
	// AutoThreshold, when true, estimates Threshold from the document's
	// degree distribution (mean + AutoThresholdK·stddev) and overrides
	// Threshold.
	AutoThreshold  bool
	AutoThresholdK float64
	// Disambiguation holds the context radius, process choice, and
	// similarity weights (§3.5).
	Disambiguation disambig.Options
	// OneSensePerDiscourse runs the Gale-Church-Yarowsky harmonization pass
	// after disambiguation: repeated labels in one document converge on
	// their highest-scoring sense (extension beyond the paper, opt-in).
	OneSensePerDiscourse bool

	// MaxDepth and MaxNodes are resource guards for already-parsed trees
	// (trees arriving through ProcessTree/ProcessTrees bypass the parse
	// guards of xmltree.ParseOptions). MaxDepth bounds element nesting, so
	// node depths may legitimately exceed it by the attribute and token
	// levels (two extra edges); MaxNodes bounds the total node count. Zero
	// or negative disables a guard. Violations return an
	// *xsdferrors.LimitError before any processing starts.
	MaxDepth int
	MaxNodes int
	// MaxTokenBytes bounds the byte size of a single text value at parse
	// time (ProcessReader only: pre-parsed trees already hold their
	// tokens). Zero selects the xmltree default; negative disables the
	// guard.
	MaxTokenBytes int

	// Admission bounds how much work the framework accepts concurrently;
	// documents arriving beyond the bounds wait up to Admission.MaxWait and
	// are then rejected with a *xsdferrors.OverloadError. The zero value
	// admits everything. The degradation ladder is configured separately,
	// on Disambiguation.Degrade.
	Admission AdmissionOptions
}

// DefaultOptions mirrors §3.3's sensible starting configuration: equal
// ambiguity weights, Thresh_Amb = 0 (all nodes considered), radius 1,
// concept-based process with equal similarity weights.
func DefaultOptions() Options {
	return Options{
		IncludeContent: true,
		Ambiguity:      ambiguity.EqualWeights(),
		Threshold:      0,
		Disambiguation: disambig.DefaultOptions(),
	}
}

// Result reports what the pipeline did to one document.
type Result struct {
	// Tree is the semantically augmented document tree (same object as the
	// input tree: annotation happens in place).
	Tree *xmltree.Tree
	// Targets is the number of nodes selected for disambiguation.
	Targets int
	// Assigned is the number of targets that received a sense.
	Assigned int
	// Threshold is the effective Thresh_Amb used (relevant with
	// AutoThreshold).
	Threshold float64
	// Degraded is the worst degradation-ladder level any target was scored
	// at: DegradeNone when the ladder is off or the document ran at full
	// quality throughout.
	Degraded xsdferrors.DegradationLevel
	// NodesAtLevel counts the targets attempted at each ladder level;
	// NodesAtLevel sum + Unscored == Targets on every return, including
	// degraded ones.
	NodesAtLevel [xsdferrors.NumDegradationLevels]int
	// Unscored is the number of targets never attempted (the run was
	// canceled mid-ladder). Non-zero only alongside an ErrDegraded error.
	Unscored int
	// Stages is the per-stage instrumentation of this run: one entry per
	// attempted pipeline stage, in execution order, with the item count
	// and monotonic duration of each. On a degraded abort it covers the
	// stages that ran (harmonization is skipped); nil only when the run
	// failed before the disambiguation stage could build a Result.
	Stages []StageTiming
	// LexiconEpoch and LexiconVersion identify the lexicon snapshot every
	// sense in this result was scored against — one snapshot per run,
	// pinned at admission, so the pair is internally consistent even when
	// a hot-swap landed mid-run.
	LexiconEpoch   uint64
	LexiconVersion string
}

// Framework is a reusable XSDF instance serving one semantic network at
// a time. The network and every cache keyed by its concept IDs live in a
// versioned snapshot behind an atomic pointer (snapshot.go): every
// document pins the snapshot it starts with and scores exclusively
// against it, so corpora with repeated vocabulary share warm memos, and
// a lexicon hot-swap (Reload) can never mix two versions inside a run.
type Framework struct {
	snap atomic.Pointer[snapshot]
	opts Options
	gate *gate // nil when Options.Admission is the zero value

	// Hot-swap state: reloads serialize on reloadMu (the data path never
	// touches it); epoch numbers the swap generations; the counters,
	// gauge, and histogram feed /statusz and /metricsz.
	reloadMu        sync.Mutex
	epoch           atomic.Uint64
	swaps           atomic.Uint64
	rollbacks       atomic.Uint64
	canaryFails     atomic.Uint64
	retiredAwaiting atomic.Int64
	reloadHist      *metrics.Histogram

	// pipe is the staged pipeline every document runs through; built once
	// in New and shared (stages keep all per-document state in a run
	// value). canaryPipe is the same stage list without the stats hook,
	// so reload canaries don't pollute serving-latency histograms.
	// stageStats accumulates per-stage calls/errors/items/time across the
	// framework's lifetime; stageHists holds the matching latency
	// distributions, fed by the runner's OnStage hook.
	pipe       *pipeline.Runner[*run]
	canaryPipe *pipeline.Runner[*run]
	stageStats [numStages]stageCounters
	stageHists [numStages]*metrics.Histogram
}

// New returns a Framework over the given semantic network. net must be
// non-nil.
func New(net *semnet.Network, opts Options) (*Framework, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil semantic network")
	}
	if sw := opts.Disambiguation.SimWeights; sw.Edge < 0 || sw.Node < 0 || sw.Gloss < 0 {
		return nil, fmt.Errorf("core: negative similarity weight %+v", sw)
	}
	if err := opts.Disambiguation.SimWeights.Normalize().Validate(); err != nil {
		return nil, err
	}
	f := &Framework{
		opts:       opts,
		gate:       newGate(opts.Admission),
		reloadHist: metrics.NewHistogram(nil),
	}
	for i := range f.stageHists {
		f.stageHists[i] = metrics.NewHistogram(nil)
	}
	f.pipe = f.newPipeline(true)
	f.canaryPipe = f.newPipeline(false)
	checksum := net.Checksum()
	f.snap.Store(f.newSnapshot(net, LexiconInfo{
		Epoch:    f.epoch.Add(1),
		Version:  semnet.VersionLabel(checksum),
		Checksum: checksum,
		Source:   "construction",
		Concepts: net.Len(),
		LoadedAt: time.Now(),
	}))
	return f, nil
}

// Network returns the semantic network of the currently serving
// snapshot. Callers that correlate several reads (a concept lookup after
// a sense listing, say) should re-read per use, not cache the pointer
// across requests: a Reload may retire it at any time.
func (f *Framework) Network() *semnet.Network { return f.snap.Load().net }

// Options returns the active configuration.
func (f *Framework) Options() Options { return f.opts }

// NewDisambiguator returns a disambiguator configured like the pipeline's
// and backed by the current snapshot's shared cache — the entry point for
// callers (xsdf.Candidates, diagnostics) that score nodes outside a full
// pipeline run but should still reuse the warm memos.
func (f *Framework) NewDisambiguator() *disambig.Disambiguator {
	return disambig.NewShared(f.snap.Load().cache, f.opts.Disambiguation)
}

// CacheStats reports the current snapshot's cache hit/miss counters, for
// observability and effectiveness tests. Counters restart from zero when
// a reload swaps the snapshot (caches are snapshot-resident by design).
func (f *Framework) CacheStats() disambig.CacheStats { return f.snap.Load().cache.Stats() }

// ProcessReader parses an XML document from r and runs the full pipeline.
func (f *Framework) ProcessReader(r io.Reader) (*Result, error) {
	t, err := xmltree.Parse(r, xmltree.ParseOptions{
		IncludeContent: f.opts.IncludeContent,
		Tokenize:       lingproc.Tokenize,
		MaxDepth:       f.opts.MaxDepth,
		MaxNodes:       f.opts.MaxNodes,
		MaxTokenBytes:  f.opts.MaxTokenBytes,
	})
	if err != nil {
		return nil, err
	}
	return f.ProcessTree(t)
}

// ProcessTree runs modules 1–4 on an already-parsed tree, annotating it in
// place. The tree may or may not have been linguistically pre-processed;
// pre-processing is idempotent, so it always runs here.
func (f *Framework) ProcessTree(t *xmltree.Tree) (*Result, error) {
	return f.ProcessTreeContext(context.Background(), t)
}

// ProcessTreeContext is ProcessTree with cooperative cancellation,
// resource guards, admission control, and graceful degradation. The
// context is checked between pipeline modules and before every
// disambiguated node, so cancellation returns within one node's processing
// time with an error matching xsdferrors.ErrCanceled; trees violating
// Options.MaxDepth/MaxNodes are rejected up front with an
// *xsdferrors.LimitError, and trees arriving while the admission gate is
// full are rejected with a *xsdferrors.OverloadError.
//
// With Disambiguation.Degrade enabled, a deadline that expires mid-run no
// longer aborts: scoring steps down the ladder and the call returns a
// complete Result with the achieved level in Result.Degraded. Only an
// explicit cancellation still cuts the run short, returning the partial
// Result alongside a *xsdferrors.DegradedError. With the ladder off (the
// default), errors leave the result nil and the tree possibly partially
// annotated, exactly as before.
func (f *Framework) ProcessTreeContext(ctx context.Context, t *xmltree.Tree) (*Result, error) {
	// Every module body lives in a named pipeline.Stage (stages.go); this
	// function only dispatches the run, threads the timings, and maps the
	// stop condition onto the historical result/error contract.
	//
	// The run pins the current lexicon snapshot here — before any stage —
	// and every stage reads the network and caches through the pin, so
	// the whole run (batch worker, stream line, and subtree runs all
	// funnel through this function) scores against exactly one lexicon
	// version even when a Reload swaps mid-flight. The deferred unpin is
	// what lets a retired snapshot finally drain.
	r := &run{fw: f, tree: t, snap: f.pin(), hooks: currentHooks()}
	defer func() {
		if r.release != nil {
			r.release()
		}
		r.snap.unpin()
	}()
	timings, err := f.pipe.Run(ctx, r)
	f.recordStages(timings)
	if r.res != nil {
		r.res.Stages = timings
	}
	if err != nil {
		if errors.Is(err, xsdferrors.ErrDegraded) {
			// Canceled mid-ladder: hand back what was scored. The runner
			// stopped at the disambiguation stage, so the harmonization
			// pass never acts on an inconsistent prefix.
			return r.res, err
		}
		return nil, err
	}
	return r.res, nil
}

// guardTree enforces the whole-tree resource limits on pre-parsed input.
func (f *Framework) guardTree(t *xmltree.Tree) error {
	// Element nesting of depth d yields node depths up to d+2 (attribute
	// and token levels), so the depth guard allows that slack: a document
	// accepted by the equivalent parse-time guard passes here too.
	if f.opts.MaxDepth > 0 && t.MaxDepth() > f.opts.MaxDepth+2 {
		return &xsdferrors.LimitError{Limit: "depth", Max: f.opts.MaxDepth, Actual: t.MaxDepth()}
	}
	if f.opts.MaxNodes > 0 && t.Len() > f.opts.MaxNodes {
		return &xsdferrors.LimitError{Limit: "nodes", Max: f.opts.MaxNodes, Actual: t.Len()}
	}
	return nil
}
