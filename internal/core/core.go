// Package core implements the XSDF framework itself (§3, Figure 3): the
// four-module pipeline that turns a syntactic XML tree into a semantic XML
// tree given a reference semantic network and user parameters.
//
//	input XML tree ──► linguistic pre-processing ──► node selection
//	      ──► sphere context definition ──► semantic disambiguation
//	      ──► semantic XML tree (concept-annotated nodes)
package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/ambiguity"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/semnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Options aggregates every user parameter of the framework. Zero values are
// replaced by the defaults documented on each field.
type Options struct {
	// IncludeContent selects structure-and-content (true, default via
	// DefaultOptions) or structure-only processing (§3.1).
	IncludeContent bool
	// Ambiguity holds the w_Polysemy/w_Depth/w_Density weights of the
	// ambiguity degree measure (Definition 3).
	Ambiguity ambiguity.Weights
	// Threshold is Thresh_Amb: nodes with Amb_Deg >= Threshold are selected
	// for disambiguation. 0 selects all nodes.
	Threshold float64
	// AutoThreshold, when true, estimates Threshold from the document's
	// degree distribution (mean + AutoThresholdK·stddev) and overrides
	// Threshold.
	AutoThreshold  bool
	AutoThresholdK float64
	// Disambiguation holds the context radius, process choice, and
	// similarity weights (§3.5).
	Disambiguation disambig.Options
	// OneSensePerDiscourse runs the Gale-Church-Yarowsky harmonization pass
	// after disambiguation: repeated labels in one document converge on
	// their highest-scoring sense (extension beyond the paper, opt-in).
	OneSensePerDiscourse bool

	// MaxDepth and MaxNodes are resource guards for already-parsed trees
	// (trees arriving through ProcessTree/ProcessTrees bypass the parse
	// guards of xmltree.ParseOptions). MaxDepth bounds element nesting, so
	// node depths may legitimately exceed it by the attribute and token
	// levels (two extra edges); MaxNodes bounds the total node count. Zero
	// or negative disables a guard. Violations return an
	// *xsdferrors.LimitError before any processing starts.
	MaxDepth int
	MaxNodes int
	// MaxTokenBytes bounds the byte size of a single text value at parse
	// time (ProcessReader only: pre-parsed trees already hold their
	// tokens). Zero selects the xmltree default; negative disables the
	// guard.
	MaxTokenBytes int

	// Admission bounds how much work the framework accepts concurrently;
	// documents arriving beyond the bounds wait up to Admission.MaxWait and
	// are then rejected with a *xsdferrors.OverloadError. The zero value
	// admits everything. The degradation ladder is configured separately,
	// on Disambiguation.Degrade.
	Admission AdmissionOptions
}

// DefaultOptions mirrors §3.3's sensible starting configuration: equal
// ambiguity weights, Thresh_Amb = 0 (all nodes considered), radius 1,
// concept-based process with equal similarity weights.
func DefaultOptions() Options {
	return Options{
		IncludeContent: true,
		Ambiguity:      ambiguity.EqualWeights(),
		Threshold:      0,
		Disambiguation: disambig.DefaultOptions(),
	}
}

// Result reports what the pipeline did to one document.
type Result struct {
	// Tree is the semantically augmented document tree (same object as the
	// input tree: annotation happens in place).
	Tree *xmltree.Tree
	// Targets is the number of nodes selected for disambiguation.
	Targets int
	// Assigned is the number of targets that received a sense.
	Assigned int
	// Threshold is the effective Thresh_Amb used (relevant with
	// AutoThreshold).
	Threshold float64
	// Degraded is the worst degradation-ladder level any target was scored
	// at: DegradeNone when the ladder is off or the document ran at full
	// quality throughout.
	Degraded xsdferrors.DegradationLevel
	// NodesAtLevel counts the targets attempted at each ladder level;
	// NodesAtLevel sum + Unscored == Targets on every return, including
	// degraded ones.
	NodesAtLevel [xsdferrors.NumDegradationLevels]int
	// Unscored is the number of targets never attempted (the run was
	// canceled mid-ladder). Non-zero only alongside an ErrDegraded error.
	Unscored int
	// Stages is the per-stage instrumentation of this run: one entry per
	// attempted pipeline stage, in execution order, with the item count
	// and monotonic duration of each. On a degraded abort it covers the
	// stages that ran (harmonization is skipped); nil only when the run
	// failed before the disambiguation stage could build a Result.
	Stages []StageTiming
}

// Framework is a reusable XSDF instance bound to one semantic network. It
// owns the shared similarity/vector cache (disambig.Cache): every
// document processed through the framework — sequentially, across batch
// workers, or across intra-document node workers — memoizes into the same
// concurrency-safe store, so corpora with repeated vocabulary pay for
// each pairwise similarity and each semantic-network sphere walk once per
// framework, not once per document.
type Framework struct {
	net   *semnet.Network
	opts  Options
	cache *disambig.Cache
	gate  *gate // nil when Options.Admission is the zero value

	// pipe is the staged pipeline every document runs through; built once
	// in New and shared (stages keep all per-document state in a run
	// value). stageStats accumulates per-stage calls/errors/items/time
	// across the framework's lifetime; stageHists holds the matching
	// latency distributions, fed by the runner's OnStage hook.
	pipe       *pipeline.Runner[*run]
	stageStats [numStages]stageCounters
	stageHists [numStages]*metrics.Histogram
}

// New returns a Framework over the given semantic network. net must be
// non-nil.
func New(net *semnet.Network, opts Options) (*Framework, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil semantic network")
	}
	if sw := opts.Disambiguation.SimWeights; sw.Edge < 0 || sw.Node < 0 || sw.Gloss < 0 {
		return nil, fmt.Errorf("core: negative similarity weight %+v", sw)
	}
	if err := opts.Disambiguation.SimWeights.Normalize().Validate(); err != nil {
		return nil, err
	}
	f := &Framework{
		net:   net,
		opts:  opts,
		cache: disambig.NewCache(net, opts.Disambiguation.SimWeights),
		gate:  newGate(opts.Admission),
	}
	for i := range f.stageHists {
		f.stageHists[i] = metrics.NewHistogram(nil)
	}
	f.pipe = f.newPipeline()
	return f, nil
}

// Network returns the reference semantic network.
func (f *Framework) Network() *semnet.Network { return f.net }

// Options returns the active configuration.
func (f *Framework) Options() Options { return f.opts }

// NewDisambiguator returns a disambiguator configured like the pipeline's
// and backed by the framework's shared cache — the entry point for
// callers (xsdf.Candidates, diagnostics) that score nodes outside a full
// pipeline run but should still reuse the warm memos.
func (f *Framework) NewDisambiguator() *disambig.Disambiguator {
	return disambig.NewShared(f.cache, f.opts.Disambiguation)
}

// CacheStats reports the shared cache's hit/miss counters, for
// observability and effectiveness tests.
func (f *Framework) CacheStats() disambig.CacheStats { return f.cache.Stats() }

// ProcessReader parses an XML document from r and runs the full pipeline.
func (f *Framework) ProcessReader(r io.Reader) (*Result, error) {
	t, err := xmltree.Parse(r, xmltree.ParseOptions{
		IncludeContent: f.opts.IncludeContent,
		Tokenize:       lingproc.Tokenize,
		MaxDepth:       f.opts.MaxDepth,
		MaxNodes:       f.opts.MaxNodes,
		MaxTokenBytes:  f.opts.MaxTokenBytes,
	})
	if err != nil {
		return nil, err
	}
	return f.ProcessTree(t)
}

// ProcessTree runs modules 1–4 on an already-parsed tree, annotating it in
// place. The tree may or may not have been linguistically pre-processed;
// pre-processing is idempotent, so it always runs here.
func (f *Framework) ProcessTree(t *xmltree.Tree) (*Result, error) {
	return f.ProcessTreeContext(context.Background(), t)
}

// ProcessTreeContext is ProcessTree with cooperative cancellation,
// resource guards, admission control, and graceful degradation. The
// context is checked between pipeline modules and before every
// disambiguated node, so cancellation returns within one node's processing
// time with an error matching xsdferrors.ErrCanceled; trees violating
// Options.MaxDepth/MaxNodes are rejected up front with an
// *xsdferrors.LimitError, and trees arriving while the admission gate is
// full are rejected with a *xsdferrors.OverloadError.
//
// With Disambiguation.Degrade enabled, a deadline that expires mid-run no
// longer aborts: scoring steps down the ladder and the call returns a
// complete Result with the achieved level in Result.Degraded. Only an
// explicit cancellation still cuts the run short, returning the partial
// Result alongside a *xsdferrors.DegradedError. With the ladder off (the
// default), errors leave the result nil and the tree possibly partially
// annotated, exactly as before.
func (f *Framework) ProcessTreeContext(ctx context.Context, t *xmltree.Tree) (*Result, error) {
	// Every module body lives in a named pipeline.Stage (stages.go); this
	// function only dispatches the run, threads the timings, and maps the
	// stop condition onto the historical result/error contract.
	r := &run{fw: f, tree: t, hooks: currentHooks()}
	defer func() {
		if r.release != nil {
			r.release()
		}
	}()
	timings, err := f.pipe.Run(ctx, r)
	f.recordStages(timings)
	if r.res != nil {
		r.res.Stages = timings
	}
	if err != nil {
		if errors.Is(err, xsdferrors.ErrDegraded) {
			// Canceled mid-ladder: hand back what was scored. The runner
			// stopped at the disambiguation stage, so the harmonization
			// pass never acts on an inconsistent prefix.
			return r.res, err
		}
		return nil, err
	}
	return r.res, nil
}

// guardTree enforces the whole-tree resource limits on pre-parsed input.
func (f *Framework) guardTree(t *xmltree.Tree) error {
	// Element nesting of depth d yields node depths up to d+2 (attribute
	// and token levels), so the depth guard allows that slack: a document
	// accepted by the equivalent parse-time guard passes here too.
	if f.opts.MaxDepth > 0 && t.MaxDepth() > f.opts.MaxDepth+2 {
		return &xsdferrors.LimitError{Limit: "depth", Max: f.opts.MaxDepth, Actual: t.MaxDepth()}
	}
	if f.opts.MaxNodes > 0 && t.Len() > f.opts.MaxNodes {
		return &xsdferrors.LimitError{Limit: "nodes", Max: f.opts.MaxNodes, Actual: t.Len()}
	}
	return nil
}
