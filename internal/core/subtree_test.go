package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/lingproc"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// scanner builds a framework-flavored SubtreeScanner for core tests.
func subtreeScanner(doc string, po xmltree.ParseOptions, so xmltree.SubtreeOptions) *xmltree.SubtreeScanner {
	so.ParseOptions = po
	if so.Tokenize == nil {
		so.Tokenize = lingproc.Tokenize
	}
	return xmltree.NewSubtreeScanner(strings.NewReader(doc), so)
}

func TestProcessSubtreesRunsPipelinePerSubtree(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	doc := `<films><picture title="Rear Window"><star>Kelly</star></picture><picture>network</picture></films>`
	sc := subtreeScanner(doc, xmltree.ParseOptions{IncludeContent: true}, xmltree.SubtreeOptions{})
	var results []SubtreeResult
	sum, err := fw.ProcessSubtrees(context.Background(), sc, func(r SubtreeResult) error {
		results = append(results, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ProcessSubtrees: %v", err)
	}
	if sum.Subtrees != 2 || sum.Failed != 0 {
		t.Fatalf("summary = %+v, want 2 subtrees, 0 failed", sum)
	}
	if sum.Assigned == 0 || sum.Targets < sum.Assigned {
		t.Fatalf("summary accounting off: %+v", sum)
	}
	if len(results) != 2 {
		t.Fatalf("callback saw %d subtrees, want 2", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil || r.Result == nil {
			t.Errorf("result %d = %+v, want clean result with Index %d", i, r, i)
		}
		if len(r.Path) != 1 || r.Path[0] != "films" {
			t.Errorf("result %d Path = %v, want [films]", i, r.Path)
		}
		if r.Bytes <= 0 {
			t.Errorf("result %d has no byte accounting", i)
		}
	}
	// The per-stage instrumentation saw one run per subtree.
	for _, st := range fw.StageStats() {
		if st.Calls != 2 {
			t.Errorf("stage %s recorded %d calls, want 2", st.Stage, st.Calls)
		}
	}
}

func TestProcessSubtreesGuardTripIsScoped(t *testing.T) {
	opts := DefaultOptions()
	fw, err := New(wordnet.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	doc := `<r><s>star</s><s>a b c d e f g h</s><s>movie</s></r>`
	sc := subtreeScanner(doc, xmltree.ParseOptions{IncludeContent: true, MaxNodes: 6}, xmltree.SubtreeOptions{})
	var tripped, ok int
	sum, err := fw.ProcessSubtrees(context.Background(), sc, func(r SubtreeResult) error {
		if r.Err != nil {
			if !errors.Is(r.Err, xsdferrors.ErrLimitExceeded) {
				t.Errorf("trip error = %v, want ErrLimitExceeded", r.Err)
			}
			if r.Result != nil {
				t.Errorf("tripped subtree carries a result")
			}
			tripped++
			return nil
		}
		ok++
		return nil
	})
	if err != nil {
		t.Fatalf("ProcessSubtrees: %v", err)
	}
	if ok != 2 || tripped != 1 {
		t.Fatalf("ok=%d tripped=%d, want 2 and 1", ok, tripped)
	}
	if sum.Subtrees != 2 || sum.Failed != 1 {
		t.Fatalf("summary = %+v, want Subtrees 2, Failed 1", sum)
	}
}

func TestProcessSubtreesMalformedKeepsPartials(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	doc := `<r><s>one</s><s>two</s><s><broken></r>`
	sc := subtreeScanner(doc, xmltree.ParseOptions{IncludeContent: true}, xmltree.SubtreeOptions{})
	var delivered int
	sum, err := fw.ProcessSubtrees(context.Background(), sc, func(r SubtreeResult) error {
		delivered++
		return nil
	})
	if !errors.Is(err, xsdferrors.ErrMalformedInput) {
		t.Fatalf("error = %v, want ErrMalformedInput", err)
	}
	var se *xmltree.SubtreeError
	if !errors.As(err, &se) || !se.Fatal {
		t.Fatalf("error = %v, want fatal SubtreeError", err)
	}
	if delivered != 2 || sum.Subtrees != 2 {
		t.Fatalf("delivered=%d summary=%+v, want the 2 earlier subtrees intact", delivered, sum)
	}
}

func TestProcessSubtreesCallbackStops(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stop := errors.New("enough")
	doc := `<r><s>one</s><s>two</s><s>three</s></r>`
	sc := subtreeScanner(doc, xmltree.ParseOptions{IncludeContent: true}, xmltree.SubtreeOptions{})
	n := 0
	_, err = fw.ProcessSubtrees(context.Background(), sc, func(r SubtreeResult) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("error = %v, want the callback's error", err)
	}
	if n != 2 {
		t.Fatalf("callback ran %d times, want 2", n)
	}
}

func TestProcessSubtreesCancellation(t *testing.T) {
	fw, err := New(wordnet.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	doc := `<r><s>one</s><s>two</s><s>three</s></r>`
	sc := subtreeScanner(doc, xmltree.ParseOptions{IncludeContent: true}, xmltree.SubtreeOptions{})
	_, err = fw.ProcessSubtrees(ctx, sc, func(r SubtreeResult) error {
		cancel()
		return nil
	})
	if !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
}
