// Package ambiguity implements the node-selection module of XSDF (§3.3):
// the polysemy, depth, and density ambiguity factors (Propositions 1–3),
// the XML node ambiguity degree Amb_Deg (Definition 3), the structural
// richness degree Struct_Deg used to characterize test data (Eq. 14, §4.1),
// and the target-node selection policy.
package ambiguity

import (
	"math"
	"sort"

	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// Weights are the independent user parameters w_Polysemy, w_Depth, and
// w_Density of Definition 3, each in [0, 1].
type Weights struct {
	Polysemy float64
	Depth    float64
	Density  float64
}

// EqualWeights is the sensible default of §3.3 (all factors considered
// equally: w_Polysemy = w_Depth = w_Density = 1).
func EqualWeights() Weights { return Weights{Polysemy: 1, Depth: 1, Density: 1} }

// Clamp forces every weight into [0, 1].
func (w Weights) Clamp() Weights {
	c := func(v float64) float64 { return math.Min(1, math.Max(0, v)) }
	return Weights{Polysemy: c(w.Polysemy), Depth: c(w.Depth), Density: c(w.Density)}
}

// Polysemy returns Amb_Polysemy(x.ℓ, SN) (Proposition 1, Eq. 1):
//
//	(senses(ℓ) - 1) / (Max(senses(SN)) - 1)  ∈ [0, 1]
//
// A label with a single sense (or none) scores 0, the most polysemous word
// of the network scores 1.
func Polysemy(label string, net *semnet.Network) float64 {
	maxP := net.MaxPolysemy()
	if maxP <= 1 {
		return 0
	}
	s := net.PolysemyOf(label)
	if s <= 1 {
		return 0
	}
	return float64(s-1) / float64(maxP-1)
}

// Depth returns Amb_Depth(x, T) (Proposition 2, Eq. 2):
//
//	1 - x.d / Max(depth(T))  ∈ [0, 1]
//
// Nodes near the root are more ambiguous (broader meaning).
func Depth(x *xmltree.Node, t *xmltree.Tree) float64 {
	md := t.MaxDepth()
	if md == 0 {
		return 1
	}
	return 1 - float64(x.Depth)/float64(md)
}

// Density returns Amb_Density(x, T) (Proposition 3, Eq. 3):
//
//	1 - x.f̄ / Max(f̄an-out(T))  ∈ [0, 1]
//
// where x.f̄ counts children with distinct labels. Fewer distinct child
// labels give the node fewer disambiguation hints, so it is more ambiguous.
func Density(x *xmltree.Node, t *xmltree.Tree) float64 {
	md := t.MaxDensity()
	if md == 0 {
		return 1
	}
	return 1 - float64(x.Density())/float64(md)
}

// Degree returns Amb_Deg(x, T, SN) (Definition 3, Eq. 4):
//
//	          w_Pol · Amb_Polysemy
//	─────────────────────────────────────────────────────  ∈ [0, 1]
//	w_Dep·(1-Amb_Depth) + w_Den·(1-Amb_Density) + 1
//
// For a compound label ("directed by") the degree is the average of the
// degrees of the constituent tokens (§3.3 special case). Assumption 4 holds
// by construction: a monosemous label has Amb_Polysemy = 0, hence degree 0.
func Degree(x *xmltree.Node, t *xmltree.Tree, net *semnet.Network, w Weights) float64 {
	w = w.Clamp()
	if len(x.Tokens) > 1 {
		var sum float64
		for _, tok := range x.Tokens {
			sum += degreeOfLabel(tok, x, t, net, w)
		}
		return sum / float64(len(x.Tokens))
	}
	return degreeOfLabel(x.Label, x, t, net, w)
}

func degreeOfLabel(label string, x *xmltree.Node, t *xmltree.Tree, net *semnet.Network, w Weights) float64 {
	num := w.Polysemy * Polysemy(label, net)
	den := w.Depth*(1-Depth(x, t)) + w.Density*(1-Density(x, t)) + 1
	return num / den
}

// StructWeights are the weights of the structural richness degree (Eq. 14).
type StructWeights struct {
	Depth   float64
	FanOut  float64
	Density float64
}

// EqualStructWeights is the experimental setting of §4.1
// (w_Depth = w_FanOut = w_Density = 1/3).
func EqualStructWeights() StructWeights {
	return StructWeights{Depth: 1.0 / 3, FanOut: 1.0 / 3, Density: 1.0 / 3}
}

// StructDegree returns Struct_Deg(x, T) (Eq. 14): the sum of normalized
// node depth, fan-out, and density, each scaled by its weight. High values
// indicate a highly structured tree, low values a relatively flat one.
func StructDegree(x *xmltree.Node, t *xmltree.Tree, w StructWeights) float64 {
	var v float64
	if md := t.MaxDepth(); md > 0 {
		v += w.Depth * float64(x.Depth) / float64(md)
	}
	if mf := t.MaxFanOut(); mf > 0 {
		v += w.FanOut * float64(x.FanOut()) / float64(mf)
	}
	if md := t.MaxDensity(); md > 0 {
		v += w.Density * float64(x.Density()) / float64(md)
	}
	return v
}

// TreeAmbiguity returns Amb_Deg averaged over all nodes of the tree — the
// "node ambiguity" feature used to group test documents (§4.1, Table 1).
func TreeAmbiguity(t *xmltree.Tree, net *semnet.Network, w Weights) float64 {
	if t.Len() == 0 {
		return 0
	}
	var sum float64
	for _, x := range t.Nodes() {
		sum += Degree(x, t, net, w)
	}
	return sum / float64(t.Len())
}

// TreeStructure returns Struct_Deg averaged over all nodes of the tree —
// the "node structure" feature of §4.1.
func TreeStructure(t *xmltree.Tree, w StructWeights) float64 {
	if t.Len() == 0 {
		return 0
	}
	var sum float64
	for _, x := range t.Nodes() {
		sum += StructDegree(x, t, w)
	}
	return sum / float64(t.Len())
}

// Select returns the target nodes for disambiguation: nodes with
// Amb_Deg(x) >= threshold, in preorder. Setting threshold = 0 selects every
// node (the "disambiguate all" mode existing approaches use); setting
// w.Polysemy = 0 makes every degree 0, disabling selection-by-ambiguity.
func Select(t *xmltree.Tree, net *semnet.Network, w Weights, threshold float64) []*xmltree.Node {
	var out []*xmltree.Node
	for _, x := range t.Nodes() {
		if Degree(x, t, net, w) >= threshold {
			out = append(out, x)
		}
	}
	return out
}

// AutoThreshold estimates Thresh_Amb from the degree distribution of the
// tree as mean + k·stddev, an implementation of the paper's "automatically
// estimated" threshold option. k = 0 selects roughly the upper half;
// negative k widens selection. Degenerate distributions yield 0 (select
// everything).
func AutoThreshold(t *xmltree.Tree, net *semnet.Network, w Weights, k float64) float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	degs := make([]float64, 0, n)
	var sum float64
	for _, x := range t.Nodes() {
		d := Degree(x, t, net, w)
		degs = append(degs, d)
		sum += d
	}
	mean := sum / float64(n)
	var varsum float64
	for _, d := range degs {
		varsum += (d - mean) * (d - mean)
	}
	std := math.Sqrt(varsum / float64(n))
	th := mean + k*std
	if th < 0 {
		return 0
	}
	sort.Float64s(degs)
	if th > degs[n-1] {
		// Never select nothing: cap at the maximum observed degree.
		th = degs[n-1]
	}
	return th
}
