package ambiguity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// testNet has "head" with 4 senses (the maximum), "star" with 2, and
// monosemous "plot".
func testNet(t *testing.T) *semnet.Network {
	t.Helper()
	b := semnet.NewBuilder()
	b.AddConcept("entity.n.01", "exists", 100, "entity")
	b.AddConcept("head.n.01", "body part", 40, "head")
	b.AddConcept("head.n.02", "leader", 30, "head")
	b.AddConcept("head.n.03", "mind", 20, "head")
	b.AddConcept("head.n.04", "top part", 10, "head")
	b.AddConcept("star.n.01", "celestial body", 20, "star")
	b.AddConcept("star.n.02", "performer", 10, "star")
	b.AddConcept("plot.n.01", "story line", 10, "plot")
	for _, id := range []semnet.ConceptID{"head.n.01", "head.n.02", "head.n.03", "head.n.04", "star.n.01", "star.n.02", "plot.n.01"} {
		b.IsA(id, "entity.n.01")
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// testTree: root "head" with children star, star, plot; star has a child.
func testTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	root := &xmltree.Node{Label: "head", Kind: xmltree.Element}
	s1 := &xmltree.Node{Label: "star", Kind: xmltree.Element}
	s2 := &xmltree.Node{Label: "star", Kind: xmltree.Element}
	p := &xmltree.Node{Label: "plot", Kind: xmltree.Element}
	leaf := &xmltree.Node{Label: "plot", Kind: xmltree.Token}
	s1.AddChild(leaf)
	root.AddChild(s1)
	root.AddChild(s2)
	root.AddChild(p)
	return xmltree.New(root)
}

func TestPolysemyFactor(t *testing.T) {
	net := testNet(t)
	// Proposition 1: (senses-1)/(max-1); max = 4 for "head".
	if got := Polysemy("head", net); got != 1 {
		t.Errorf("Amb_Polysemy(head) = %f, want 1", got)
	}
	if got := Polysemy("star", net); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("Amb_Polysemy(star) = %f, want 1/3", got)
	}
	// Assumption 4: monosemous and unknown labels score 0.
	if Polysemy("plot", net) != 0 || Polysemy("nonesuch", net) != 0 {
		t.Error("monosemous/unknown labels must score 0")
	}
}

func TestDepthFactor(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	_ = net
	root := tr.Node(0)
	if got := Depth(root, tr); got != 1 {
		t.Errorf("Amb_Depth(root) = %f, want 1 (most ambiguous)", got)
	}
	leaf := tr.Node(2) // token under star
	if leaf.Kind != xmltree.Token {
		t.Fatalf("T[2] = %v", leaf)
	}
	if got := Depth(leaf, tr); got != 0 {
		t.Errorf("Amb_Depth(deepest) = %f, want 0", got)
	}
}

func TestDensityFactor(t *testing.T) {
	tr := testTree(t)
	root := tr.Node(0) // 3 children, 2 distinct labels; max density = 2
	if got := Density(root, tr); got != 0 {
		t.Errorf("Amb_Density(root) = %f, want 0 (max distinct children)", got)
	}
	s2 := tr.Node(3) // star with no children
	if s2.Label != "star" || s2.FanOut() != 0 {
		t.Fatalf("unexpected node %v", s2)
	}
	if got := Density(s2, tr); got != 1 {
		t.Errorf("Amb_Density(leaf) = %f, want 1", got)
	}
}

func TestDegreeDefinition3(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	w := EqualWeights()
	root := tr.Node(0)
	// Root "head": polysemy 1, depth factor 1, density factor 0.
	// Amb_Deg = 1·1 / (1·(1-1) + 1·(1-0) + 1) = 1/2.
	if got := Degree(root, tr, net, w); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Amb_Deg(root) = %f, want 0.5", got)
	}
	// All degrees must stay in [0, 1].
	for _, n := range tr.Nodes() {
		d := Degree(n, tr, net, w)
		if d < 0 || d > 1 {
			t.Errorf("Amb_Deg(%s) = %f out of range", n.Label, d)
		}
	}
}

func TestDegreeAssumption4(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	p := tr.Node(4)
	if p.Label != "plot" {
		t.Fatalf("T[4] = %v", p)
	}
	if got := Degree(p, tr, net, EqualWeights()); got != 0 {
		t.Errorf("monosemous node degree = %f, want 0 (Assumption 4)", got)
	}
}

func TestDegreeCompoundAverage(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	root := tr.Node(0)
	root.Tokens = []string{"head", "plot"} // compound: average of degrees
	single := degreeOfLabel("head", root, tr, net, EqualWeights())
	got := Degree(root, tr, net, EqualWeights())
	if math.Abs(got-single/2) > 1e-9 {
		t.Errorf("compound degree = %f, want %f", got, single/2)
	}
	root.Tokens = nil
}

func TestDegreePolysemyZeroDisables(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	w := Weights{Polysemy: 0, Depth: 1, Density: 1}
	for _, n := range tr.Nodes() {
		if Degree(n, tr, net, w) != 0 {
			t.Fatalf("w_Polysemy = 0 must zero all degrees (§3.3)")
		}
	}
}

func TestWeightsClamp(t *testing.T) {
	w := Weights{Polysemy: 2, Depth: -1, Density: 0.5}.Clamp()
	if w.Polysemy != 1 || w.Depth != 0 || w.Density != 0.5 {
		t.Errorf("Clamp = %+v", w)
	}
}

func TestStructDegree(t *testing.T) {
	tr := testTree(t)
	sw := EqualStructWeights()
	root := tr.Node(0)
	// Root: depth 0, fan-out 3 (max), density 2 (max): 0 + 1/3 + 1/3.
	if got := StructDegree(root, tr, sw); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Struct_Deg(root) = %f, want 2/3", got)
	}
	for _, n := range tr.Nodes() {
		if s := StructDegree(n, tr, sw); s < 0 || s > 1 {
			t.Errorf("Struct_Deg(%s) = %f out of range", n.Label, s)
		}
	}
}

func TestTreeAverages(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	avg := TreeAmbiguity(tr, net, EqualWeights())
	if avg <= 0 || avg >= 1 {
		t.Errorf("TreeAmbiguity = %f", avg)
	}
	savg := TreeStructure(tr, EqualStructWeights())
	if savg <= 0 || savg >= 1 {
		t.Errorf("TreeStructure = %f", savg)
	}
	var empty xmltree.Tree
	if TreeAmbiguity(&empty, net, EqualWeights()) != 0 || TreeStructure(&empty, EqualStructWeights()) != 0 {
		t.Error("empty tree averages should be 0")
	}
}

func TestSelect(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	all := Select(tr, net, EqualWeights(), 0)
	if len(all) != tr.Len() {
		t.Errorf("threshold 0 selected %d of %d", len(all), tr.Len())
	}
	some := Select(tr, net, EqualWeights(), 0.4)
	if len(some) == 0 || len(some) >= len(all) {
		t.Errorf("threshold 0.4 selected %d", len(some))
	}
	for _, n := range some {
		if Degree(n, tr, net, EqualWeights()) < 0.4 {
			t.Errorf("selected node below threshold: %s", n.Label)
		}
	}
}

func TestAutoThreshold(t *testing.T) {
	tr := testTree(t)
	net := testNet(t)
	th := AutoThreshold(tr, net, EqualWeights(), 0)
	if th < 0 {
		t.Errorf("AutoThreshold = %f", th)
	}
	// The threshold never exceeds the maximum degree, so selection is
	// never empty.
	if sel := Select(tr, net, EqualWeights(), th); len(sel) == 0 {
		t.Error("auto threshold selected nothing")
	}
	// Huge k is capped at the max degree.
	thBig := AutoThreshold(tr, net, EqualWeights(), 100)
	if sel := Select(tr, net, EqualWeights(), thBig); len(sel) == 0 {
		t.Error("capped auto threshold selected nothing")
	}
}

// TestDegreeMonotoneInPolysemy (Proposition 1): adding senses to a label
// never lowers a node's ambiguity degree, all else equal.
func TestDegreeMonotoneInPolysemy(t *testing.T) {
	mkNet := func(senses int) *semnet.Network {
		b := semnet.NewBuilder()
		b.AddConcept("root.n.01", "g", 1, "rootword")
		// An anchor word keeps Max(senses(SN)) constant at 8.
		for i := 0; i < 8; i++ {
			id := semnet.ConceptID(rune('a'+i)) + ".n.anchor"
			b.AddConcept(id, "g", 1, "anchor")
			b.IsA(id, "root.n.01")
		}
		for i := 0; i < senses; i++ {
			id := semnet.ConceptID(rune('a'+i)) + ".n.word"
			b.AddConcept(id, "g", 1, "word")
			b.IsA(id, "root.n.01")
		}
		n, err := b.Build()
		if err != nil {
			panic(err)
		}
		return n
	}
	tr := xmltree.New(&xmltree.Node{Label: "word", Kind: xmltree.Element})
	f := func(s1, s2 uint8) bool {
		a := 1 + int(s1)%8
		b := 1 + int(s2)%8
		if a > b {
			a, b = b, a
		}
		da := Degree(tr.Node(0), tr, mkNet(a), EqualWeights())
		db := Degree(tr.Node(0), tr, mkNet(b), EqualWeights())
		return da <= db+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
