package tuning

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// syntheticObjective has a unique known optimum inside DefaultSpace.
func syntheticObjective(opts disambig.Options) float64 {
	score := 0.0
	if opts.Method == disambig.ContextBased {
		score += 1
	}
	if opts.Radius == 2 {
		score += 1
	}
	if opts.SimWeights == simmeasure.GlossOnly() {
		score += 1
	}
	return score
}

func TestGridSearchFindsKnownOptimum(t *testing.T) {
	res := GridSearch(disambig.DefaultOptions(), DefaultSpace(), syntheticObjective)
	if res.Score != 3 {
		t.Fatalf("score = %f, want 3", res.Score)
	}
	if res.Options.Method != disambig.ContextBased || res.Options.Radius != 2 ||
		res.Options.SimWeights != simmeasure.GlossOnly() {
		t.Errorf("wrong optimum: %s", Describe(res.Options))
	}
	// Grid size: methods x radii x sims, with the mix axis collapsed for
	// non-combined methods: 2*3*6*1 + 1*3*6*3 = 36 + 54 = 90.
	if res.Evaluated != 90 {
		t.Errorf("evaluated %d configurations, want 90", res.Evaluated)
	}
}

func TestGridSearchEmptyAxesKeepSeed(t *testing.T) {
	seed := disambig.DefaultOptions()
	seed.Radius = 7
	res := GridSearch(seed, Space{Methods: []disambig.Method{disambig.ConceptBased}},
		func(o disambig.Options) float64 { return 1 })
	if res.Options.Radius != 7 {
		t.Errorf("empty radius axis should keep seed, got %d", res.Options.Radius)
	}
	if res.Evaluated != 1 {
		t.Errorf("evaluated %d", res.Evaluated)
	}
}

func TestCoordinateDescentReachesOptimum(t *testing.T) {
	seed := disambig.DefaultOptions() // concept-based, d=1, equal weights
	res := CoordinateDescent(seed, DefaultSpace(), syntheticObjective, 5)
	if res.Score != 3 {
		t.Fatalf("score = %f (%s), want 3", res.Score, Describe(res.Options))
	}
	full := GridSearch(seed, DefaultSpace(), syntheticObjective)
	if res.Evaluated >= full.Evaluated {
		t.Errorf("coordinate descent evaluated %d >= grid's %d", res.Evaluated, full.Evaluated)
	}
}

func TestCoordinateDescentStopsWhenNoImprovement(t *testing.T) {
	constObj := func(disambig.Options) float64 { return 1 }
	res := CoordinateDescent(disambig.DefaultOptions(), DefaultSpace(), constObj, 10)
	// One pass over all axes plus the seed evaluation, then stop.
	if res.Evaluated > 20 {
		t.Errorf("flat objective should stop after one pass, evaluated %d", res.Evaluated)
	}
}

func TestEvaluatorOnCorpus(t *testing.T) {
	net := wordnet.Default()
	var trees []*xmltree.Tree
	for _, d := range corpus.GenerateDataset(42, 4) { // small IMDB docs
		lingproc.ProcessTree(d.Tree, net)
		trees = append(trees, d.Tree)
	}
	ev := NewEvaluator(net, trees)
	if ev.Len() == 0 {
		t.Fatal("empty validation set")
	}
	prf := ev.Score(disambig.Options{Radius: 2, Method: disambig.ConceptBased,
		SimWeights: simmeasure.EqualWeights()})
	if prf.F <= 0 || prf.F > 1 {
		t.Fatalf("F = %f", prf.F)
	}
	// The tuner must never return something worse than the seed it saw.
	seed := disambig.DefaultOptions()
	res := CoordinateDescent(seed, Space{Radii: []int{1, 2, 3}}, ev.FMeasure, 2)
	if res.Score < ev.FMeasure(seed) {
		t.Errorf("tuned %f worse than seed %f", res.Score, ev.FMeasure(seed))
	}
}

func TestDescribe(t *testing.T) {
	o := disambig.DefaultOptions()
	if s := Describe(o); !strings.Contains(s, "concept-based") || !strings.Contains(s, "d=1") {
		t.Errorf("Describe = %q", s)
	}
	o.Method = disambig.Combined
	if s := Describe(o); !strings.Contains(s, "mix=") {
		t.Errorf("Describe combined = %q", s)
	}
}
