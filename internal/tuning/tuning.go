// Package tuning implements the parameter-optimization capability the
// paper defers to future work (§3.3: "the fine-tuning of parameters is an
// optimization problem such that parameters should be chosen to maximize
// disambiguation quality (through some cost function such as f-measure)";
// §5 lists it among the works in progress).
//
// Two optimizers are provided over the disambiguation parameter space
// (sphere radius, process, similarity-measure weights, process-mix
// weights): exhaustive grid search, and greedy coordinate descent for
// larger spaces. Both treat the objective as a black box — typically
// f-value on a held-out annotated validation set, which Evaluator builds
// from corpus documents.
package tuning

import (
	"fmt"
	"math"

	"repro/internal/disambig"
	"repro/internal/eval"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/xmltree"
)

// Objective scores one configuration; higher is better.
type Objective func(opts disambig.Options) float64

// Space enumerates the candidate values per axis of the search grid.
// Empty axes keep the corresponding field of the seed configuration.
type Space struct {
	Radii      []int
	Methods    []disambig.Method
	SimWeights []simmeasure.Weights
	// ConceptWeights are w_Concept values for the Combined process
	// (w_Context = 1 - w_Concept).
	ConceptWeights []float64
}

// DefaultSpace covers the grid of the paper's §4.3.1 sweep plus weight
// variations.
func DefaultSpace() Space {
	return Space{
		Radii:   []int{1, 2, 3},
		Methods: []disambig.Method{disambig.ConceptBased, disambig.ContextBased, disambig.Combined},
		SimWeights: []simmeasure.Weights{
			simmeasure.EqualWeights(),
			simmeasure.EdgeOnly(),
			simmeasure.NodeOnly(),
			simmeasure.GlossOnly(),
			{Edge: 0.5, Node: 0.25, Gloss: 0.25},
			{Edge: 0.25, Node: 0.25, Gloss: 0.5},
		},
		ConceptWeights: []float64{0.25, 0.5, 0.75},
	}
}

// Result reports the best configuration an optimizer found.
type Result struct {
	Options   disambig.Options
	Score     float64
	Evaluated int
}

// GridSearch exhaustively evaluates the space around the seed
// configuration and returns the best result. Deterministic: ties keep the
// first-found configuration in grid order.
func GridSearch(seed disambig.Options, space Space, objective Objective) Result {
	radii := space.Radii
	if len(radii) == 0 {
		radii = []int{seed.Radius}
	}
	methods := space.Methods
	if len(methods) == 0 {
		methods = []disambig.Method{seed.Method}
	}
	sims := space.SimWeights
	if len(sims) == 0 {
		sims = []simmeasure.Weights{seed.SimWeights}
	}
	mixes := space.ConceptWeights
	if len(mixes) == 0 {
		mixes = []float64{seed.ConceptWeight}
	}

	best := Result{Score: math.Inf(-1)}
	for _, m := range methods {
		for _, r := range radii {
			for _, sw := range sims {
				// The mix axis only matters for the Combined process;
				// evaluate it once otherwise.
				effMixes := mixes
				if m != disambig.Combined {
					effMixes = mixes[:1]
				}
				for _, cw := range effMixes {
					opts := seed
					opts.Radius = r
					opts.Method = m
					opts.SimWeights = sw
					opts.ConceptWeight = cw
					opts.ContextWeight = 1 - cw
					score := objective(opts)
					best.Evaluated++
					if score > best.Score {
						best.Score = score
						best.Options = opts
					}
				}
			}
		}
	}
	return best
}

// CoordinateDescent starts from seed and greedily improves one axis at a
// time until a full pass yields no improvement or maxPasses is reached.
// For spaces where the full grid is too expensive, it evaluates
// O(passes · Σ axis sizes) configurations instead of the product.
func CoordinateDescent(seed disambig.Options, space Space, objective Objective, maxPasses int) Result {
	if maxPasses <= 0 {
		maxPasses = 4
	}
	cur := seed
	curScore := objective(cur)
	evaluated := 1
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		tryCandidate := func(opts disambig.Options) {
			score := objective(opts)
			evaluated++
			if score > curScore {
				curScore = score
				cur = opts
				improved = true
			}
		}
		for _, m := range space.Methods {
			if m == cur.Method {
				continue
			}
			o := cur
			o.Method = m
			tryCandidate(o)
		}
		for _, r := range space.Radii {
			if r == cur.Radius {
				continue
			}
			o := cur
			o.Radius = r
			tryCandidate(o)
		}
		for _, sw := range space.SimWeights {
			if sw == cur.SimWeights {
				continue
			}
			o := cur
			o.SimWeights = sw
			tryCandidate(o)
		}
		if cur.Method == disambig.Combined {
			for _, cw := range space.ConceptWeights {
				if cw == cur.ConceptWeight {
					continue
				}
				o := cur
				o.ConceptWeight = cw
				o.ContextWeight = 1 - cw
				tryCandidate(o)
			}
		}
		if !improved {
			break
		}
	}
	return Result{Options: cur, Score: curScore, Evaluated: evaluated}
}

// Evaluator builds f-measure objectives from annotated target nodes (nodes
// whose expected sense is known — corpus gold or human annotations).
type Evaluator struct {
	net *semnet.Network
	// samples are (node, expected sense id) pairs.
	nodes    []*xmltree.Node
	expected []string
}

// NewEvaluator collects the gold-bearing nodes of the given pre-processed
// trees as the validation set.
func NewEvaluator(net *semnet.Network, trees []*xmltree.Tree) *Evaluator {
	e := &Evaluator{net: net}
	for _, t := range trees {
		for _, n := range t.Nodes() {
			if n.Gold != "" {
				e.nodes = append(e.nodes, n)
				e.expected = append(e.expected, n.Gold)
			}
		}
	}
	return e
}

// Len returns the validation-set size.
func (e *Evaluator) Len() int { return len(e.nodes) }

// Score evaluates one configuration against the validation set.
func (e *Evaluator) Score(opts disambig.Options) eval.PRF {
	dis := disambig.New(e.net, opts)
	var correct, assigned int
	for i, n := range e.nodes {
		s, ok := dis.Node(n)
		if !ok {
			continue
		}
		assigned++
		if s.ID() == e.expected[i] {
			correct++
		}
	}
	return eval.Score(correct, assigned, len(e.nodes))
}

// FMeasure is the Objective form of Score.
func (e *Evaluator) FMeasure(opts disambig.Options) float64 {
	return e.Score(opts).F
}

// Describe renders a configuration compactly for reports.
func Describe(o disambig.Options) string {
	s := fmt.Sprintf("method=%s d=%d sim=(%.2f,%.2f,%.2f)",
		o.Method, o.Radius, o.SimWeights.Edge, o.SimWeights.Node, o.SimWeights.Gloss)
	if o.Method == disambig.Combined {
		s += fmt.Sprintf(" mix=(%.2f,%.2f)", o.ConceptWeight, o.ContextWeight)
	}
	return s
}
