package experiments

import "testing"

// TestFigure9StableAcrossSeeds guards the headline comparative claims
// against seed luck: on fresh corpora and annotator panels, XSDF must stay
// ahead of both baselines on the high-ambiguity groups. (Group 3/4 margins
// are small by design — the paper's own Figure 9 shows them near parity —
// so only the robust claims are asserted per seed.)
func TestFigure9StableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability is slow")
	}
	for _, seed := range []int64{7, 1234} {
		r := NewRunner(Config{Seed: seed, NodesPerDoc: 13})
		rows := r.Figure9()
		f := map[string]float64{}
		for _, row := range rows {
			f[row.Approach+string(rune('0'+row.Group))] = row.PRF.F
		}
		if !(f["XSDF1"] > f["RPD1"] && f["XSDF1"] > f["VSD1"]) {
			t.Errorf("seed %d: Group 1 ordering broke: XSDF %.3f RPD %.3f VSD %.3f",
				seed, f["XSDF1"], f["RPD1"], f["VSD1"])
		}
		if !(f["XSDF2"] > f["VSD2"]) {
			t.Errorf("seed %d: Group 2 XSDF %.3f !> VSD %.3f", seed, f["XSDF2"], f["VSD2"])
		}
		if !(f["XSDF3"] > f["VSD3"]) {
			t.Errorf("seed %d: Group 3 XSDF %.3f !> VSD %.3f", seed, f["XSDF3"], f["VSD3"])
		}
		// Absolute quality stays in a plausible band everywhere.
		for g := 1; g <= 4; g++ {
			v := f["XSDF"+string(rune('0'+g))]
			if v < 0.35 || v > 0.95 {
				t.Errorf("seed %d: Group %d F = %.3f outside sanity band", seed, g, v)
			}
		}
	}
}

// TestTable2Group1LeadsAcrossSeeds: the Table 2 headline (strong positive
// correlation only for the high-ambiguity high-structure group) must not
// depend on the default seed.
func TestTable2Group1LeadsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability is slow")
	}
	for _, seed := range []int64{7, 1234} {
		r := NewRunner(Config{Seed: seed, NodesPerDoc: 13})
		rows := r.Table2()
		var g1, maxOther float64
		for _, row := range rows {
			if row.Group == 1 {
				g1 = row.PCC[0]
			} else if row.PCC[0] > maxOther {
				maxOther = row.PCC[0]
			}
		}
		if g1 < 0.25 {
			t.Errorf("seed %d: Group 1 pcc = %.3f, want strongly positive", seed, g1)
		}
		if g1 < maxOther-0.15 {
			t.Errorf("seed %d: Group 1 pcc %.3f far below another group's %.3f", seed, g1, maxOther)
		}
	}
}
