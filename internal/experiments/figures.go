package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/disambig"
	"repro/internal/eval"
	"repro/internal/simmeasure"
	"repro/internal/xmltree"
)

// Figure8Cell is one bar of Figure 8: the f-value of one disambiguation
// process at one sphere radius on one test group.
type Figure8Cell struct {
	Group  int
	Method disambig.Method
	Radius int
	PRF    eval.PRF
}

// Figure8Radii are the context sizes swept in §4.3.1.
var Figure8Radii = []int{1, 2, 3}

// Figure8Methods are the disambiguation processes compared in §4.3.1.
var Figure8Methods = []disambig.Method{
	disambig.ConceptBased, disambig.ContextBased, disambig.Combined,
}

// Figure8 sweeps group × radius × process with the paper's equal similarity
// weights (footnote 12) and reports micro-averaged P/R/F against the
// simulated annotations.
func (r *Runner) Figure8() []Figure8Cell {
	var out []Figure8Cell
	for _, method := range Figure8Methods {
		for _, d := range Figure8Radii {
			opts := disambig.Options{
				Radius:        d,
				Method:        method,
				SimWeights:    simmeasure.EqualWeights(),
				ConceptWeight: 0.5,
				ContextWeight: 0.5,
			}
			byGroup := r.evaluateXSDF(opts, nil)
			for g := 1; g <= 4; g++ {
				out = append(out, Figure8Cell{Group: g, Method: method, Radius: d, PRF: byGroup[g]})
			}
		}
	}
	return out
}

// evaluateXSDF scores the configured disambiguator against the panel
// annotations, micro-averaged per group. When groupRadius is non-nil it
// overrides opts.Radius per group (used by the Figure 9 optimal
// configuration).
func (r *Runner) evaluateXSDF(opts disambig.Options, groupRadius map[int]int) map[int]eval.PRF {
	counts := map[int]*[3]int{} // group -> correct, assigned, total
	diss := map[int]*disambig.Disambiguator{}
	getDis := func(radius int) *disambig.Disambiguator {
		if d, ok := diss[radius]; ok {
			return d
		}
		o := opts
		o.Radius = radius
		d := disambig.New(r.net, o)
		diss[radius] = d
		return d
	}
	for i, doc := range r.docs {
		radius := opts.Radius
		if groupRadius != nil {
			if gr, ok := groupRadius[doc.Group]; ok {
				radius = gr
			}
		}
		dis := getDis(radius)
		c := counts[doc.Group]
		if c == nil {
			c = &[3]int{}
			counts[doc.Group] = c
		}
		for _, n := range r.selected[i] {
			c[2]++
			s, ok := dis.Node(n)
			if !ok {
				continue
			}
			c[1]++
			if s.ID() == r.humanSense[n] {
				c[0]++
			}
		}
	}
	out := map[int]eval.PRF{}
	for g, c := range counts {
		out[g] = eval.Score(c[0], c[1], c[2])
	}
	return out
}

// RenderFigure8 formats the Figure 8 sweep as a table of f-values.
func RenderFigure8(cells []Figure8Cell) string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Average f-value by group, process, and context size d\n")
	sb.WriteString(fmt.Sprintf("%-15s %-3s %8s %8s %8s %8s\n",
		"process", "d", "Group 1", "Group 2", "Group 3", "Group 4"))
	type key struct {
		m disambig.Method
		d int
	}
	rows := map[key][4]float64{}
	for _, c := range cells {
		k := key{c.Method, c.Radius}
		v := rows[k]
		v[c.Group-1] = c.PRF.F
		rows[k] = v
	}
	for _, m := range Figure8Methods {
		for _, d := range Figure8Radii {
			v := rows[key{m, d}]
			sb.WriteString(fmt.Sprintf("%-15s d=%-2d %8.3f %8.3f %8.3f %8.3f\n",
				m, d, v[0], v[1], v[2], v[3]))
		}
	}
	return sb.String()
}

// Figure9Row is the P/R/F of one approach on one group (Figure 9).
type Figure9Row struct {
	Group    int
	Approach string
	PRF      eval.PRF
}

// Figure9Approaches lists the systems compared.
var Figure9Approaches = []string{"XSDF", "RPD", "VSD"}

// Figure9OptimalRadii is the per-group optimal context size identified from
// repeated Figure 8 sweeps, following the paper's procedure of manually
// selecting optimal input parameters (§4.3.2, footnote 19). The paper
// reported d=1 for Group 1 and d=3 for Groups 2-4 on its corpus; on the
// synthetic corpus Groups 2 and 4 also peak at d=3 while Group 3 peaks at
// d=1 (see EXPERIMENTS.md).
var Figure9OptimalRadii = map[int]int{1: 1, 2: 3, 3: 1, 4: 3}

// Figure9 compares XSDF under its optimal configuration (per-group radius,
// concept-based process; §4.3.2) with the RPD and VSD baselines.
func (r *Runner) Figure9() []Figure9Row {
	var out []Figure9Row

	opts := disambig.Options{
		Radius:     1,
		Method:     disambig.ConceptBased,
		SimWeights: simmeasure.EqualWeights(),
	}
	xsdf := r.evaluateXSDF(opts, Figure9OptimalRadii)
	for g := 1; g <= 4; g++ {
		out = append(out, Figure9Row{Group: g, Approach: "XSDF", PRF: xsdf[g]})
	}

	rpdSys := baseline.NewRPD(r.net)
	rpd := r.evaluateBaseline(func(n *xmltree.Node) (string, bool) {
		s, ok := rpdSys.Node(n)
		return string(s), ok
	})
	for g := 1; g <= 4; g++ {
		out = append(out, Figure9Row{Group: g, Approach: "RPD", PRF: rpd[g]})
	}

	vsdSys := baseline.NewVSD(r.net)
	vsd := r.evaluateBaseline(func(n *xmltree.Node) (string, bool) {
		s, ok := vsdSys.Node(n)
		return string(s), ok
	})
	for g := 1; g <= 4; g++ {
		out = append(out, Figure9Row{Group: g, Approach: "VSD", PRF: vsd[g]})
	}
	return out
}

// evaluateBaseline scores a per-node disambiguation function against the
// panel annotations, micro-averaged per group.
func (r *Runner) evaluateBaseline(node func(*xmltree.Node) (string, bool)) map[int]eval.PRF {
	counts := map[int]*[3]int{}
	for i, doc := range r.docs {
		c := counts[doc.Group]
		if c == nil {
			c = &[3]int{}
			counts[doc.Group] = c
		}
		for _, n := range r.selected[i] {
			c[2]++
			s, ok := node(n)
			if !ok {
				continue
			}
			c[1]++
			if s == r.humanSense[n] {
				c[0]++
			}
		}
	}
	out := map[int]eval.PRF{}
	for g, c := range counts {
		out[g] = eval.Score(c[0], c[1], c[2])
	}
	return out
}

// RenderFigure9 formats the comparative study.
func RenderFigure9(rows []Figure9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9. Average PR, R and F-value: XSDF vs RPD vs VSD\n")
	sb.WriteString(fmt.Sprintf("%-8s %-10s %10s %8s %8s\n", "Group", "Approach", "Precision", "Recall", "F-value"))
	for g := 1; g <= 4; g++ {
		for _, row := range rows {
			if row.Group != g {
				continue
			}
			sb.WriteString(fmt.Sprintf("Group %-2d %-10s %10.3f %8.3f %8.3f\n",
				g, row.Approach, row.PRF.Precision, row.PRF.Recall, row.PRF.F))
		}
	}
	return sb.String()
}
