package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, runner(t).Table1()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 5 { // header + 4 groups
		t.Fatalf("%d rows", len(rows))
	}
	if strings.Join(rows[0], ",") != "group,amb_deg,struct_deg" {
		t.Errorf("header = %v", rows[0])
	}
	for _, r := range rows[1:] {
		if _, err := strconv.ParseFloat(r[1], 64); err != nil {
			t.Errorf("bad amb_deg %q", r[1])
		}
	}
}

func TestWriteTable2CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, runner(t).Table2()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 11 {
		t.Fatalf("%d rows", len(rows))
	}
	if len(rows[0]) != 7 {
		t.Errorf("header cols = %d", len(rows[0]))
	}
}

func TestWriteTable3CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, runner(t).Table3()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 11 || len(rows[0]) != 14 {
		t.Fatalf("shape %dx%d", len(rows), len(rows[0]))
	}
}

func TestWriteFigureCSVs(t *testing.T) {
	r := runner(t)
	var buf bytes.Buffer
	if err := WriteFigure8CSV(&buf, r.Figure8()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+len(Figure8Methods)*len(Figure8Radii)*4 {
		t.Fatalf("figure 8: %d rows", len(rows))
	}
	buf.Reset()
	if err := WriteFigure9CSV(&buf, r.Figure9()); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != 13 {
		t.Fatalf("figure 9: %d rows", len(rows))
	}
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil || v < 0 || v > 1 {
			t.Errorf("bad f %q", row[4])
		}
	}
}
