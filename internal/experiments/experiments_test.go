package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/disambig"
)

// sharedRunner builds the (expensive) experimental state once per test
// binary.
var (
	runnerOnce sync.Once
	sharedR    *Runner
)

func runner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		sharedR = NewRunner(DefaultConfig())
	})
	return sharedR
}

func TestRunnerSetup(t *testing.T) {
	r := runner(t)
	if len(r.Docs()) != 60 {
		t.Fatalf("corpus size %d", len(r.Docs()))
	}
	if got := r.TotalAnnotated(); got < 600 || got > 780 {
		t.Errorf("annotated nodes = %d, want 12-13 per doc over 60 docs", got)
	}
	// Every annotated node has a human sense.
	for i := range r.Docs() {
		for _, n := range r.Selected(i) {
			if r.HumanSense(n) == "" {
				t.Fatalf("missing human sense for %s", n.Label)
			}
		}
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows := runner(t).Table1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byGroup := map[int]Table1Row{}
	for _, row := range rows {
		byGroup[row.Group] = row
		if row.AmbDeg < 0 || row.AmbDeg > 1 || row.StructDeg < 0 || row.StructDeg > 1 {
			t.Errorf("group %d out of range: %+v", row.Group, row)
		}
	}
	// Ambiguity ordering: high-ambiguity groups (1, 2) above low (3, 4),
	// with Group 1 maximal.
	if !(byGroup[1].AmbDeg > byGroup[3].AmbDeg && byGroup[1].AmbDeg > byGroup[4].AmbDeg) {
		t.Errorf("Group 1 should be most ambiguous: %+v", rows)
	}
	if !(byGroup[2].AmbDeg > byGroup[4].AmbDeg) {
		t.Errorf("Group 2 should be more ambiguous than Group 4: %+v", rows)
	}
	// Structure: Group 1 richer than Group 2 (same ambiguity band).
	if !(byGroup[1].StructDeg > byGroup[2].StructDeg) {
		t.Errorf("Group 1 should be more structured than Group 2: %+v", rows)
	}
	if out := RenderTable1(rows); !strings.Contains(out, "Group 1") {
		t.Error("render missing rows")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows := runner(t).Table2()
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	var g1 float64
	var lowCount int
	for _, row := range rows {
		for ti, pcc := range row.PCC {
			if pcc < -1 || pcc > 1 {
				t.Errorf("dataset %d test %d pcc = %f", row.Dataset, ti, pcc)
			}
		}
		if row.Group == 1 {
			g1 = row.PCC[0]
		}
		if row.Group >= 3 && row.PCC[0] < 0.3 {
			lowCount++
		}
	}
	// §4.2: maximum positive correlation for the highly ambiguous, highly
	// structured group; weak or negative correlation dominates the low
	// ambiguity / poorly structured groups.
	if g1 < 0.3 {
		t.Errorf("Group 1 correlation = %f, want strongly positive", g1)
	}
	for _, row := range rows {
		if row.Group != 1 && row.PCC[0] > g1+0.05 {
			t.Errorf("dataset %d (group %d) pcc %f exceeds Group 1's %f",
				row.Dataset, row.Group, row.PCC[0], g1)
		}
	}
	if lowCount < 5 {
		t.Errorf("only %d of 8 low-ambiguity datasets have weak correlation", lowCount)
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Test#1") {
		t.Error("render broken")
	}
}

func TestTable3MatchesDesign(t *testing.T) {
	rows := runner(t).Table3()
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if row.AvgNodes <= 0 || row.PolysemyAvg <= 0 || row.DepthMax <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
	}
	// Shakespeare documents are the largest and among the most polysemous.
	if rows[0].Dataset != 1 || rows[0].AvgNodes < rows[5].AvgNodes {
		t.Errorf("dataset 1 should have the largest documents: %+v vs %+v", rows[0], rows[5])
	}
	// The food menu (dataset 7) has the lowest tag polysemy band, as in the
	// paper's Table 3 (2.375).
	var food, shakespeare float64
	for _, row := range rows {
		switch row.Dataset {
		case 1:
			shakespeare = row.PolysemyAvg
		case 7:
			food = row.PolysemyAvg
		}
	}
	if !(food < shakespeare) {
		t.Errorf("polysemy: food %f !< shakespeare %f", food, shakespeare)
	}
	if out := RenderTable3(rows); !strings.Contains(out, "shakespeare.dtd") {
		t.Error("render broken")
	}
}

// TestTable4AssertedAgainstImplementations cross-checks the qualitative
// matrix against behavior verified by the baseline package tests: RPD has
// no compound tokenization, VSD and XSDF do; only XSDF addresses node
// ambiguity and content disambiguation.
func TestTable4AssertedAgainstImplementations(t *testing.T) {
	rows := Table4()
	byFeature := map[string]Table4Row{}
	for _, r := range rows {
		byFeature[r.Feature] = r
		if !r.XSDF {
			t.Errorf("XSDF must support %q", r.Feature)
		}
	}
	tok := byFeature["Considers tag tokenization (compound terms)"]
	if tok.RPD || !tok.VSD {
		t.Errorf("tokenization row wrong: %+v", tok)
	}
	amb := byFeature["Addresses XML node ambiguity"]
	if amb.RPD || amb.VSD {
		t.Errorf("ambiguity row wrong: %+v", amb)
	}
	if out := RenderTable4(rows); !strings.Contains(out, "XSDF") {
		t.Error("render broken")
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	cells := runner(t).Figure8()
	if len(cells) != len(Figure8Methods)*len(Figure8Radii)*4 {
		t.Fatalf("%d cells", len(cells))
	}
	f := map[string]float64{}
	for _, c := range cells {
		if c.PRF.F < 0 || c.PRF.F > 1 {
			t.Errorf("f out of range: %+v", c)
		}
		f[key(c.Group, c.Method, c.Radius)] = c.PRF.F
	}
	// §4.3.1 observation 2: optimal context is smallest (d=1) for Group 1;
	// larger contexts win for the poorly structured groups 2 and 4.
	if !(f[key(1, disambig.ConceptBased, 1)] >= f[key(1, disambig.ConceptBased, 2)] &&
		f[key(1, disambig.ConceptBased, 1)] >= f[key(1, disambig.ConceptBased, 3)]) {
		t.Error("Group 1 concept-based should peak at d=1")
	}
	if !(f[key(2, disambig.ConceptBased, 3)] > f[key(2, disambig.ConceptBased, 1)]) {
		t.Error("Group 2 concept-based should improve with d=3")
	}
	if !(f[key(4, disambig.ConceptBased, 2)] > f[key(4, disambig.ConceptBased, 1)] ||
		f[key(4, disambig.ConceptBased, 3)] > f[key(4, disambig.ConceptBased, 1)]) {
		t.Error("Group 4 concept-based should improve with larger context")
	}
	// §4.3.1 observation 3: context-based is more sensitive to context
	// size — its d=1 to d=2 drop exceeds concept-based's on Group 1.
	dropContext := f[key(1, disambig.ContextBased, 1)] - f[key(1, disambig.ContextBased, 2)]
	dropConcept := f[key(1, disambig.ConceptBased, 1)] - f[key(1, disambig.ConceptBased, 2)]
	if !(dropContext > dropConcept) {
		t.Errorf("context-based should be more radius-sensitive: drops %.3f vs %.3f",
			dropContext, dropConcept)
	}
	if out := RenderFigure8(cells); !strings.Contains(out, "concept-based") {
		t.Error("render broken")
	}
}

func key(g int, m disambig.Method, d int) string {
	return strings.Join([]string{string(rune('0' + g)), m.String(), string(rune('0' + d))}, "|")
}

func TestFigure9ShapeMatchesPaper(t *testing.T) {
	rows := runner(t).Figure9()
	f := map[string]float64{}
	for _, r := range rows {
		if r.PRF.Precision < r.PRF.F-1e-9 && r.PRF.Recall < r.PRF.F-1e-9 {
			t.Errorf("F outside [min(P,R), max(P,R)]: %+v", r)
		}
		f[r.Approach+string(rune('0'+r.Group))] = r.PRF.F
	}
	// §4.3.2: XSDF outperforms RPD and VSD on Groups 1-3; Group 1 shows the
	// largest margin over both baselines; RPD edges XSDF on Group 4.
	for g := 1; g <= 3; g++ {
		gs := string(rune('0' + g))
		if !(f["XSDF"+gs] > f["RPD"+gs]) {
			t.Errorf("Group %d: XSDF %.3f !> RPD %.3f", g, f["XSDF"+gs], f["RPD"+gs])
		}
		if !(f["XSDF"+gs] > f["VSD"+gs]) {
			t.Errorf("Group %d: XSDF %.3f !> VSD %.3f", g, f["XSDF"+gs], f["VSD"+gs])
		}
	}
	if !(f["RPD4"] >= f["XSDF4"]-0.02) {
		t.Errorf("Group 4: RPD %.3f should match or beat XSDF %.3f", f["RPD4"], f["XSDF4"])
	}
	// Margin over RPD is largest on Group 1 among groups 1 and 3...
	m1 := f["XSDF1"] - f["VSD1"]
	m4 := f["XSDF4"] - f["VSD4"]
	if !(m1 > m4) {
		t.Errorf("Group 1 margin over VSD (%.3f) should exceed Group 4's (%.3f)", m1, m4)
	}
	// F-values land in a plausible band around the paper's [0.55, 0.69].
	for g := 1; g <= 4; g++ {
		v := f["XSDF"+string(rune('0'+g))]
		if v < 0.45 || v > 0.92 {
			t.Errorf("XSDF Group %d F = %.3f outside plausible band", g, v)
		}
	}
	if out := RenderFigure9(rows); !strings.Contains(out, "XSDF") {
		t.Error("render broken")
	}
}

func TestRunnerDeterministicAcrossInstances(t *testing.T) {
	a := NewRunner(Config{Seed: 99, NodesPerDoc: 5})
	b := NewRunner(Config{Seed: 99, NodesPerDoc: 5})
	ra := a.Figure9()
	rb := b.Figure9()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}
