// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4): Table 1 (group characteristics), Table 2
// (ambiguity-degree correlation), Table 3 (dataset characteristics),
// Table 4 (qualitative comparison), Figure 8 (f-value across
// configurations), and Figure 9 (comparison with the RPD and VSD
// baselines). See EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"repro/internal/corpus"
	"repro/internal/gold"
	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// Config parameterizes a full experimental run.
type Config struct {
	// Seed drives corpus generation and the simulated annotator panel.
	Seed int64
	// Net is the reference semantic network (defaults to the embedded
	// mini-WordNet).
	Net *semnet.Network
	// NodesPerDoc is the number of nodes pre-selected per document for
	// manual annotation (the paper used 12-13).
	NodesPerDoc int
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{Seed: 42, NodesPerDoc: 13}
}

// Runner holds the prepared corpus, annotations, and ratings shared by all
// experiments of one run.
type Runner struct {
	cfg   Config
	net   *semnet.Network
	docs  []corpus.Doc
	panel gold.Panel

	// selected maps each document index to its annotated target nodes.
	selected [][]*xmltree.Node
	// humanSense maps nodes to the panel's majority sense.
	humanSense map[*xmltree.Node]string
}

// NewRunner generates the corpus, applies linguistic pre-processing, and
// runs the simulated annotation campaign.
func NewRunner(cfg Config) *Runner {
	if cfg.Net == nil {
		cfg.Net = wordnet.Default()
	}
	if cfg.NodesPerDoc <= 0 {
		cfg.NodesPerDoc = 13
	}
	r := &Runner{
		cfg:        cfg,
		net:        cfg.Net,
		docs:       corpus.Generate(cfg.Seed),
		panel:      gold.DefaultPanel(cfg.Seed),
		humanSense: make(map[*xmltree.Node]string),
	}
	for i := range r.docs {
		lingproc.ProcessTree(r.docs[i].Tree, r.net)
		sel := r.panel.SelectNodes(r.docs[i], cfg.NodesPerDoc)
		r.selected = append(r.selected, sel)
		for n, s := range r.panel.AnnotateSenses(r.net, sel) {
			r.humanSense[n] = s
		}
	}
	return r
}

// Docs returns the generated, pre-processed corpus.
func (r *Runner) Docs() []corpus.Doc { return r.docs }

// Network returns the semantic network in use.
func (r *Runner) Network() *semnet.Network { return r.net }

// Selected returns the annotated nodes of document i.
func (r *Runner) Selected(i int) []*xmltree.Node { return r.selected[i] }

// HumanSense returns the panel's sense for a node ("" if not annotated).
func (r *Runner) HumanSense(n *xmltree.Node) string { return r.humanSense[n] }

// TotalAnnotated returns the number of annotated target nodes across the
// corpus.
func (r *Runner) TotalAnnotated() int {
	total := 0
	for _, sel := range r.selected {
		total += len(sel)
	}
	return total
}
