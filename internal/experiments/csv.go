package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// This file renders every table and figure as CSV for downstream plotting
// (cmd/xsdf-experiments -csv).

// WriteTable1CSV writes group,amb_deg,struct_deg rows.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "amb_deg", "struct_deg"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmt.Sprint(r.Group), f(r.AmbDeg), f(r.StructDeg),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes group,dataset,nodes,test1..test4 rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "dataset", "nodes", "test1_all", "test2_polysemy", "test3_depth", "test4_density"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmt.Sprint(r.Group), fmt.Sprint(r.Dataset), fmt.Sprint(r.Nodes),
			f(r.PCC[0]), f(r.PCC[1]), f(r.PCC[2]), f(r.PCC[3]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV writes the dataset characteristics.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset", "group", "source", "grammar", "docs", "avg_nodes",
		"polysemy_avg", "polysemy_max", "depth_avg", "depth_max",
		"fanout_avg", "fanout_max", "density_avg", "density_max"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmt.Sprint(r.Dataset), fmt.Sprint(r.Group), r.Source, r.Grammar,
			fmt.Sprint(r.NumDocs), f(r.AvgNodes),
			f(r.PolysemyAvg), fmt.Sprint(r.PolysemyMax),
			f(r.DepthAvg), fmt.Sprint(r.DepthMax),
			f(r.FanOutAvg), fmt.Sprint(r.FanOutMax),
			f(r.DensityAvg), fmt.Sprint(r.DensityMax),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure8CSV writes process,radius,group,precision,recall,f rows.
func WriteFigure8CSV(w io.Writer, cells []Figure8Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"process", "radius", "group", "precision", "recall", "f"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Method.String(), fmt.Sprint(c.Radius), fmt.Sprint(c.Group),
			f(c.PRF.Precision), f(c.PRF.Recall), f(c.PRF.F),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure9CSV writes approach,group,precision,recall,f rows.
func WriteFigure9CSV(w io.Writer, rows []Figure9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"approach", "group", "precision", "recall", "f"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Approach, fmt.Sprint(r.Group),
			f(r.PRF.Precision), f(r.PRF.Recall), f(r.PRF.F),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
