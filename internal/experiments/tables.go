package experiments

import (
	"fmt"
	"strings"

	"repro/internal/ambiguity"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/gold"
	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// Table1Row is one group row of Table 1: the average ambiguity and
// structure degrees over all documents of the group.
type Table1Row struct {
	Group     int
	AmbDeg    float64
	StructDeg float64
}

// Table1 computes the group-level Amb_Deg / Struct_Deg averages of Table 1
// with the paper's weights (equal ambiguity weights; 1/3 structure
// weights).
func (r *Runner) Table1() []Table1Row {
	aw := ambiguity.EqualWeights()
	sw := ambiguity.EqualStructWeights()
	sums := map[int]*Table1Row{}
	counts := map[int]int{}
	for _, d := range r.docs {
		row := sums[d.Group]
		if row == nil {
			row = &Table1Row{Group: d.Group}
			sums[d.Group] = row
		}
		row.AmbDeg += ambiguity.TreeAmbiguity(d.Tree, r.net, aw)
		row.StructDeg += ambiguity.TreeStructure(d.Tree, sw)
		counts[d.Group]++
	}
	var out []Table1Row
	for g := 1; g <= 4; g++ {
		row := sums[g]
		if row == nil {
			continue
		}
		row.AmbDeg /= float64(counts[g])
		row.StructDeg /= float64(counts[g])
		out = append(out, *row)
	}
	return out
}

// RenderTable1 formats Table 1 in the paper's quadrant layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Test documents by average node ambiguity and structure\n")
	sb.WriteString(fmt.Sprintf("%-8s %10s %12s\n", "Group", "Amb_Deg", "Struct_Deg"))
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("Group %-2d %10.4f %12.4f\n", row.Group, row.AmbDeg, row.StructDeg))
	}
	return sb.String()
}

// Table2Test is one weight configuration of the Table 2 experiment.
type Table2Test struct {
	Name    string
	Weights ambiguity.Weights
}

// Table2Tests returns the four weight variations of §4.2.
func Table2Tests() []Table2Test {
	return []Table2Test{
		{"Test #1 All factors", ambiguity.Weights{Polysemy: 1, Depth: 1, Density: 1}},
		{"Test #2 Polysemy", ambiguity.Weights{Polysemy: 1, Depth: 0, Density: 0}},
		{"Test #3 Depth", ambiguity.Weights{Polysemy: 0.2, Depth: 1, Density: 0}},
		{"Test #4 Density", ambiguity.Weights{Polysemy: 0.2, Depth: 0, Density: 1}},
	}
}

// Table2Row holds the human-system Pearson correlations of one dataset
// ("Doc N" in the paper) for each of the four tests.
type Table2Row struct {
	Dataset int
	Group   int
	PCC     [4]float64
	Nodes   int
}

// Table2 runs the ambiguity-degree correlation experiment of §4.2: the
// simulated annotator panel rates the pre-selected nodes, the system rates
// the same nodes under four Amb_Deg weight variations, and per-dataset
// Pearson correlations are reported.
func (r *Runner) Table2() []Table2Row {
	tests := Table2Tests()
	model := gold.DefaultRatingModel()
	byDataset := map[int]*Table2Row{}
	// Collect per-dataset rating vectors.
	human := map[int][]float64{}
	system := map[int][][]float64{} // dataset -> test -> ratings
	for i, d := range r.docs {
		sel := r.selected[i]
		hr := r.panel.RateAmbiguity(r.net, d, sel, model)
		row := byDataset[d.Dataset]
		if row == nil {
			row = &Table2Row{Dataset: d.Dataset, Group: d.Group}
			byDataset[d.Dataset] = row
			system[d.Dataset] = make([][]float64, len(tests))
		}
		for _, n := range sel {
			human[d.Dataset] = append(human[d.Dataset], hr[n])
			row.Nodes++
		}
		for ti, t := range tests {
			sr := gold.SystemRatings(r.net, d.Tree, sel, t.Weights)
			for _, n := range sel {
				system[d.Dataset][ti] = append(system[d.Dataset][ti], sr[n])
			}
		}
	}
	var out []Table2Row
	for ds := 1; ds <= 10; ds++ {
		row := byDataset[ds]
		if row == nil {
			continue
		}
		for ti := range tests {
			row.PCC[ti] = eval.Pearson(system[ds][ti], human[ds])
		}
		out = append(out, *row)
	}
	return out
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Correlation between human ratings and system ambiguity degrees\n")
	sb.WriteString(fmt.Sprintf("%-7s %-6s %8s %9s %8s %8s %8s\n",
		"Group", "Doc", "nodes", "Test#1", "Test#2", "Test#3", "Test#4"))
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("Group %d Doc %-2d %6d %9.3f %8.3f %8.3f %8.3f\n",
			row.Group, row.Dataset, row.Nodes, row.PCC[0], row.PCC[1], row.PCC[2], row.PCC[3]))
	}
	return sb.String()
}

// Table3Row reproduces one dataset row of Table 3.
type Table3Row struct {
	Dataset      int
	Group        int
	Source       string
	Grammar      string
	NumDocs      int
	AvgNodes     float64
	PolysemyAvg  float64
	PolysemyMax  int
	DepthAvg     float64
	DepthMax     int
	FanOutAvg    float64
	FanOutMax    int
	DensityAvg   float64
	DensityMax   int
	annNodeCount int
}

// Table3 measures the characteristics of the generated corpus in the same
// terms as the paper's Table 3.
func (r *Runner) Table3() []Table3Row {
	info := map[int]corpus.DatasetInfo{}
	for _, di := range corpus.Datasets() {
		info[di.Dataset] = di
	}
	rows := map[int]*Table3Row{}
	for _, d := range r.docs {
		row := rows[d.Dataset]
		if row == nil {
			di := info[d.Dataset]
			row = &Table3Row{Dataset: d.Dataset, Group: d.Group, Source: di.Source,
				Grammar: di.Grammar, NumDocs: di.NumDocs}
			rows[d.Dataset] = row
		}
		row.AvgNodes += float64(d.Tree.Len())
		for _, n := range d.Tree.Nodes() {
			row.annNodeCount++
			p := nodePolysemy(r.net, n)
			row.PolysemyAvg += float64(p)
			if p > row.PolysemyMax {
				row.PolysemyMax = p
			}
			row.DepthAvg += float64(n.Depth)
			if n.Depth > row.DepthMax {
				row.DepthMax = n.Depth
			}
			f := n.FanOut()
			row.FanOutAvg += float64(f)
			if f > row.FanOutMax {
				row.FanOutMax = f
			}
			dn := n.Density()
			row.DensityAvg += float64(dn)
			if dn > row.DensityMax {
				row.DensityMax = dn
			}
		}
	}
	var out []Table3Row
	for ds := 1; ds <= 10; ds++ {
		row := rows[ds]
		if row == nil {
			continue
		}
		row.AvgNodes /= float64(row.NumDocs)
		n := float64(row.annNodeCount)
		row.PolysemyAvg /= n
		row.DepthAvg /= n
		row.FanOutAvg /= n
		row.DensityAvg /= n
		out = append(out, *row)
	}
	return out
}

// nodePolysemy returns the sense count of a node's label (averaging the
// token polysemies of a compound label, matching the Amb_Deg special case).
func nodePolysemy(net *semnet.Network, n *xmltree.Node) int {
	tokens := n.Tokens
	if len(tokens) == 0 {
		tokens = []string{n.Label}
	}
	sum := 0
	for _, t := range tokens {
		sum += net.PolysemyOf(t)
	}
	return sum / len(tokens)
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3. Characteristics of test documents\n")
	sb.WriteString(fmt.Sprintf("%-3s %-3s %-22s %-20s %5s %9s %11s %11s %11s %11s\n",
		"DS", "Grp", "Source", "Grammar", "docs", "nodes/doc",
		"polysemy", "depth", "fan-out", "density"))
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("%-3d %-3d %-22s %-20s %5d %9.1f %6.2f/%-4d %6.2f/%-4d %6.2f/%-4d %6.2f/%-4d\n",
			row.Dataset, row.Group, row.Source, row.Grammar, row.NumDocs, row.AvgNodes,
			row.PolysemyAvg, row.PolysemyMax, row.DepthAvg, row.DepthMax,
			row.FanOutAvg, row.FanOutMax, row.DensityAvg, row.DensityMax))
	}
	return sb.String()
}

// Table4Row is one feature row of the qualitative comparison (Table 4).
type Table4Row struct {
	Feature string
	RPD     bool
	VSD     bool
	XSDF    bool
}

// Table4 returns the paper's qualitative feature matrix. The entries are
// asserted against the actual implementations by the package tests.
func Table4() []Table4Row {
	return []Table4Row{
		{"Considers linguistic pre-processing", true, true, true},
		{"Considers tag tokenization (compound terms)", false, true, true},
		{"Addresses XML node ambiguity", false, false, true},
		{"Integrates an inclusive XML structure context", false, true, true},
		{"Flexible w.r.t. context size", false, true, true},
		{"Adopts relational information approach", false, true, true},
		{"Combines the results of various semantic similarity measures", false, false, true},
		{"Straightforward mathematical functions", false, false, true},
		{"Disambiguates XML structure and content", false, false, true},
	}
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4. Comparing our method with existing approaches\n")
	sb.WriteString(fmt.Sprintf("%-62s %-5s %-5s %-5s\n", "Feature", "RPD", "VSD", "XSDF"))
	mark := func(b bool) string {
		if b {
			return "v"
		}
		return "x"
	}
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("%-62s %-5s %-5s %-5s\n",
			row.Feature, mark(row.RPD), mark(row.VSD), mark(row.XSDF)))
	}
	return sb.String()
}
