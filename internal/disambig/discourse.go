package disambig

import (
	"sort"

	"repro/internal/xmltree"
)

// Harmonize applies the one-sense-per-discourse heuristic (Gale, Church &
// Yarowsky 1992) as a post-processing pass over disambiguated nodes: a word
// strongly tends to keep one meaning within a single discourse, so when the
// same label received different senses at different positions of one
// document, every occurrence is reassigned to the sense with the highest
// total score mass. Labels with a single occurrence, a single assigned
// sense, or compound token pairs are left untouched.
//
// The heuristic is an extension beyond the paper (its §2.1 cites the
// surrounding WSD literature); it is exposed as an explicit opt-in pass
// (core.Options.OneSensePerDiscourse) and benchmarked as an ablation.
// Returns the number of nodes whose sense changed.
func Harmonize(targets []*xmltree.Node) int {
	type senseMass struct {
		total float64
		count int
	}
	byLabel := map[string]map[string]*senseMass{}
	for _, n := range targets {
		if n.Sense == "" || len(n.Tokens) > 1 {
			continue
		}
		m := byLabel[n.Label]
		if m == nil {
			m = map[string]*senseMass{}
			byLabel[n.Label] = m
		}
		sm := m[n.Sense]
		if sm == nil {
			sm = &senseMass{}
			m[n.Sense] = sm
		}
		sm.total += n.SenseScore
		sm.count++
	}

	winners := map[string]string{}
	for label, senses := range byLabel {
		if len(senses) < 2 {
			continue
		}
		// Deterministic argmax: highest total score, ties by count then id.
		ids := make([]string, 0, len(senses))
		for id := range senses {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		best := ids[0]
		for _, id := range ids[1:] {
			a, b := senses[id], senses[best]
			if a.total > b.total || (a.total == b.total && a.count > b.count) {
				best = id
			}
		}
		winners[label] = best
	}

	changed := 0
	for _, n := range targets {
		if n.Sense == "" || len(n.Tokens) > 1 {
			continue
		}
		if w, ok := winners[n.Label]; ok && n.Sense != w {
			n.Sense = w
			changed++
		}
	}
	return changed
}
