package disambig

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lingproc"
	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func benchDoc(b *testing.B) *xmltree.Tree {
	b.Helper()
	docs := corpus.GenerateDataset(1, 1) // one Shakespeare play (~200 nodes)
	tr := docs[0].Tree
	lingproc.ProcessTree(tr, wordnet.Default())
	return tr
}

func BenchmarkNodeByMethod(b *testing.B) {
	tr := benchDoc(b)
	net := wordnet.Default()
	// A reliably polysemous target.
	var target *xmltree.Node
	for _, n := range tr.Nodes() {
		if n.Label == "line" {
			target = n
			break
		}
	}
	if target == nil {
		b.Fatal("no LINE node")
	}
	for _, m := range []Method{ConceptBased, ContextBased, Combined} {
		b.Run(m.String(), func(b *testing.B) {
			d := New(net, Options{Radius: 2, Method: m, SimWeights: simmeasure.EqualWeights(),
				ConceptWeight: 0.5, ContextWeight: 0.5})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := d.Node(target); !ok {
					b.Fatal("not disambiguated")
				}
			}
		})
	}
}

func BenchmarkApplyDocumentByRadius(b *testing.B) {
	net := wordnet.Default()
	for _, radius := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d", radius), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := benchDoc(b)
				d := New(net, Options{Radius: radius, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
				b.StartTimer()
				if n := d.Apply(tr.Nodes()); n == 0 {
					b.Fatal("nothing assigned")
				}
			}
		})
	}
}
