package disambig

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/semnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Degradation configures the graceful-degradation ladder of ApplyReport:
// instead of failing when a document blows its deadline or is too large,
// scoring steps down the rungs
//
//	configured method → concept-only (Definition 8) → first-sense
//
// and the achieved level is recorded per node (xmltree.Node.Degraded) and
// per document (Report). The zero value disables the ladder, keeping the
// historical fail-on-deadline semantics bit for bit.
type Degradation struct {
	// Enabled turns the ladder on.
	Enabled bool

	// ConceptOnlyAfter and FirstSenseAfter are node-count watermarks: a
	// document with more targets than a watermark starts at that rung
	// instead of discovering mid-run that it cannot afford full scoring.
	// 0 disables a watermark.
	ConceptOnlyAfter int
	FirstSenseAfter  int

	// Slack is the tolerated schedule deficit before stepping down, as a
	// fraction of the deadline budget: with budget B, n targets, and k
	// done after elapsed e, the run is on pace when e/B <= k/n + Slack.
	// 0 selects DefaultSlack.
	Slack float64

	// LastRungAt is the consumed-budget fraction at which the ladder
	// drops straight to first-sense regardless of pace, reserving the
	// tail of the budget for finishing cheaply. 0 selects
	// DefaultLastRungAt.
	LastRungAt float64
}

// Defaults of the budget pacing parameters.
const (
	DefaultSlack      = 0.10
	DefaultLastRungAt = 0.85

	// rampFraction suppresses pace checks in the first sliver of the
	// budget, where e/B is dominated by fixed startup cost and a single
	// slow node would trigger a spurious downgrade.
	rampFraction = 0.02
)

// Report is the accounting of one ApplyReport run. The invariant
// NodesAtLevel[0]+NodesAtLevel[1]+NodesAtLevel[2]+Unscored == len(targets)
// holds on every return, including degraded and canceled ones.
type Report struct {
	// Assigned is the number of targets that received a sense.
	Assigned int
	// Level is the worst (highest) ladder level any target was scored
	// at; DegradeNone when the ladder is off or never stepped down.
	Level xsdferrors.DegradationLevel
	// NodesAtLevel counts the targets attempted at each ladder level.
	NodesAtLevel [xsdferrors.NumDegradationLevels]int
	// Unscored is the number of targets never attempted (the run was
	// canceled before reaching them). Non-zero only on degraded returns.
	Unscored int
}

// budget tracks one document's degradation state: the deadline share
// consumed versus targets completed, and the current (monotone
// non-decreasing) ladder level. It is safe for concurrent use by node
// workers. The clock routes through faultinject.Now, the seam for
// clock-skew injection.
type budget struct {
	start    time.Time
	dur      time.Duration // 0 = no deadline: watermarks only
	total    int
	slack    float64
	lastRung float64

	processed atomic.Int64
	level     atomic.Uint32
	counts    [xsdferrors.NumDegradationLevels]atomic.Int64
}

// newBudget derives a tracker from the context deadline, the target
// count, and the ladder configuration. Returns nil when the ladder is
// disabled.
func newBudget(ctx context.Context, total int, cfg Degradation) *budget {
	if !cfg.Enabled {
		return nil
	}
	b := &budget{total: total, slack: cfg.Slack, lastRung: cfg.LastRungAt}
	if b.slack <= 0 {
		b.slack = DefaultSlack
	}
	if b.lastRung <= 0 {
		b.lastRung = DefaultLastRungAt
	}
	if dl, ok := ctx.Deadline(); ok {
		b.start = faultinject.Now()
		if d := dl.Sub(b.start); d > 0 {
			b.dur = d
		} else {
			// Deadline already expired: every pace check reads as fully
			// consumed, pinning the run to the last rung immediately.
			b.dur = 1
		}
	}
	lvl := xsdferrors.DegradeNone
	if cfg.ConceptOnlyAfter > 0 && total > cfg.ConceptOnlyAfter {
		lvl = xsdferrors.DegradeConceptOnly
	}
	if cfg.FirstSenseAfter > 0 && total > cfg.FirstSenseAfter {
		lvl = xsdferrors.DegradeFirstSense
	}
	b.level.Store(uint32(lvl))
	return b
}

// levelNow reads the current ladder level.
func (b *budget) levelNow() xsdferrors.DegradationLevel {
	return xsdferrors.DegradationLevel(b.level.Load())
}

// raise steps the level up to at least "to" (levels never decrease). A
// request past the last rung — a run still behind pace at first-sense —
// clamps there: the ladder has nowhere further to step.
func (b *budget) raise(to xsdferrors.DegradationLevel) {
	if to > xsdferrors.DegradeFirstSense {
		to = xsdferrors.DegradeFirstSense
	}
	for {
		cur := b.level.Load()
		if uint32(to) <= cur || b.level.CompareAndSwap(cur, uint32(to)) {
			return
		}
	}
}

// next accounts one more target and returns the level to score it at,
// stepping the ladder down when the run is behind its deadline share.
func (b *budget) next() xsdferrors.DegradationLevel {
	done := b.processed.Add(1) - 1
	if b.dur > 0 {
		elapsed := faultinject.Now().Sub(b.start)
		p := float64(elapsed) / float64(b.dur)
		q := float64(done) / float64(b.total)
		switch {
		case p >= b.lastRung:
			b.raise(xsdferrors.DegradeFirstSense)
		case p > rampFraction && p > q+b.slack:
			b.raise(b.levelNow() + 1)
		}
	}
	lvl := b.levelNow()
	b.counts[lvl].Add(1)
	return lvl
}

// report folds the counters into a Report. Unscored is derived from the
// attempt counters, so the accounting is exact even when parallel workers
// abort mid-dispatch.
func (b *budget) report(assigned, total int) Report {
	rep := Report{Assigned: assigned}
	attempted := 0
	for l := range rep.NodesAtLevel {
		n := int(b.counts[l].Load())
		rep.NodesAtLevel[l] = n
		attempted += n
		if n > 0 {
			rep.Level = xsdferrors.DegradationLevel(l)
		}
	}
	rep.Unscored = total - attempted
	return rep
}

// degradeThrough reports whether a Done context should be ridden out at
// the last rung (deadline expiry with the ladder on) rather than aborted
// (explicit cancellation, or ladder off).
func degradeThrough(b *budget, ctx context.Context) bool {
	return b != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)
}

// nodeAt scores one target at the given ladder level.
func (d *Disambiguator) nodeAt(x *xmltree.Node, lvl xsdferrors.DegradationLevel) (Sense, bool) {
	switch lvl {
	case xsdferrors.DegradeFirstSense:
		return d.firstSense(x)
	case xsdferrors.DegradeConceptOnly:
		return d.nodeWith(x, ConceptBased)
	default:
		return d.nodeWith(x, d.opts.Method)
	}
}

// firstSense is the ladder's last rung: each token of the label gets its
// most frequent sense (semnet.Senses is frequency-ordered, so index 0 is
// the MFS baseline) with no context scoring at all. The score is 1 when
// every token is monosemous — the same certainty full scoring reports —
// and 0 otherwise, marking an evidence-free pick.
func (d *Disambiguator) firstSense(x *xmltree.Node) (Sense, bool) {
	tokens := x.Tokens
	if len(tokens) == 0 {
		tokens = []string{x.Label}
	}
	var cs []semnet.ConceptID
	allMono := true
	for _, t := range tokens {
		s := d.senses(t)
		if len(s) == 0 {
			continue
		}
		cs = append(cs, s[0])
		if len(s) > 1 {
			allMono = false
		}
	}
	if len(cs) == 0 {
		return Sense{}, false
	}
	var score float64
	if allMono {
		score = 1
	}
	return Sense{Concepts: cs, Score: score}, true
}
