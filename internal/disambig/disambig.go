// Package disambig implements XSDF's semantic disambiguation module (§3.5):
// concept-based scoring (Definition 8 and its compound-label variant,
// Eq. 10), context-based scoring (Definition 10 and Eq. 12), and the
// user-weighted combination of both (Eq. 13).
package disambig

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Method selects the disambiguation process.
type Method uint8

const (
	// ConceptBased compares target-node senses with context-node senses via
	// semantic similarity measures (Definition 8).
	ConceptBased Method = iota
	// ContextBased compares the target's XML sphere context vector with the
	// semantic-network sphere context vector of each candidate sense
	// (Definition 10).
	ContextBased
	// Combined mixes both scores with user weights (Eq. 13).
	Combined
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ConceptBased:
		return "concept-based"
	case ContextBased:
		return "context-based"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options collects the user-tunable parameters of the disambiguation module
// (answering Motivation 4: nothing is hard-wired).
type Options struct {
	// Radius is the sphere neighborhood radius d (context size).
	Radius int
	// Method selects concept-based, context-based, or combined scoring.
	Method Method
	// SimWeights combines the edge/node/gloss similarity measures
	// (Definition 9). Used by concept-based and combined scoring.
	SimWeights simmeasure.Weights
	// ConceptWeight and ContextWeight are w_Concept and w_Context of
	// Eq. 13 (combined method only); they are normalized to sum to 1.
	ConceptWeight float64
	ContextWeight float64
	// VectorSim compares context vectors (context-based scoring). Nil means
	// cosine, the paper's default.
	VectorSim sphere.VectorSim
	// FollowLinks makes sphere construction traverse ID/IDREF hyperlink
	// edges (xmltree.ResolveLinks), treating the document as a graph (§1).
	FollowLinks bool
	// NodeHook, when non-nil, is invoked before each target node is
	// disambiguated in ApplyContext. It exists as a fault-injection seam
	// for tests (simulating slow or panicking nodes); production callers
	// leave it nil. With Workers > 1 the hook is called concurrently from
	// the node workers and must be safe for concurrent use.
	NodeHook func(*xmltree.Node)
	// Workers is the intra-document parallelism of ApplyContext: the
	// number of goroutines target nodes are fanned across. 0 and 1 keep
	// the historical serial loop; negative selects GOMAXPROCS (normalized
	// once, in NewShared, so every layer sees the same convention).
	// Parallel workers share the disambiguator's caches
	// (concurrency-safe) and write only to their own target nodes, so
	// sense assignments are identical to a serial run.
	Workers int

	// Degrade configures the graceful-degradation ladder: under deadline
	// pressure or past the node-count watermarks, scoring steps down
	// configured method → concept-only → first-sense instead of failing.
	// The zero value keeps the historical all-or-nothing semantics.
	Degrade Degradation
}

// DefaultOptions mirrors the paper's common configuration: radius 1,
// concept-based process, equal similarity-measure weights.
func DefaultOptions() Options {
	return Options{
		Radius:        1,
		Method:        ConceptBased,
		SimWeights:    simmeasure.EqualWeights(),
		ConceptWeight: 0.5,
		ContextWeight: 0.5,
	}
}

func (o Options) vectorSim() sphere.VectorSim {
	if o.VectorSim == nil {
		return sphere.Cosine
	}
	return o.VectorSim
}

// Sense is a disambiguation outcome for one node: one concept for simple
// labels, two for compound labels whose tokens were sensed separately.
type Sense struct {
	Concepts []semnet.ConceptID
	Score    float64
}

// ID renders the sense as a stable identifier string ("movie.n.01" or
// "first.n.01+name.n.01" for compounds).
func (s Sense) ID() string {
	parts := make([]string, len(s.Concepts))
	for i, c := range s.Concepts {
		parts[i] = string(c)
	}
	return strings.Join(parts, "+")
}

// Disambiguator runs sense disambiguation for nodes of one document tree
// against one semantic network. It memoizes similarity scores, semantic-
// network sphere vectors (through a Cache, which may be shared across
// documents), and per-node prepared contexts, so reusing one Disambiguator
// across the nodes of a document — or calling the per-candidate scoring
// APIs repeatedly for one node — costs each underlying computation once.
//
// A Disambiguator is safe for concurrent use: all memos are concurrency-
// safe and the semantic network is immutable. The only mutation it
// performs is writing Sense/SenseScore into the target nodes handed to
// Apply/ApplyContext; callers must not hand the same node to two
// concurrent Apply calls.
type Disambiguator struct {
	net   *semnet.Network
	opts  Options
	cache *Cache

	// ctxMemo memoizes prepareContext per target node (keyed by node
	// pointer), making the public per-candidate APIs (ConceptScore,
	// ContextScore, ...) linear instead of accidentally quadratic. It
	// assumes the tree's structure, labels, and tokens stay fixed while
	// the Disambiguator is in use — true for the pipeline, which finishes
	// linguistic pre-processing before disambiguation starts.
	ctxMemo sync.Map // *xmltree.Node -> *preparedContext

	// bypassCache, set only by differential tests, recomputes every
	// similarity, vector, and context from scratch on each call; golden
	// tests assert the cached and bypass paths agree bit for bit.
	bypassCache bool
}

// New returns a Disambiguator over net with the given options, backed by a
// private cache.
func New(net *semnet.Network, opts Options) *Disambiguator {
	return NewShared(NewCache(net, opts.SimWeights), opts)
}

// NewShared returns a Disambiguator backed by an existing (possibly
// shared) cache. The cache's similarity weights take effect; callers are
// expected to construct the cache from the same weights as opts.SimWeights
// (core.Framework does).
func NewShared(cache *Cache, opts Options) *Disambiguator {
	if opts.Radius < 1 {
		opts.Radius = 1
	}
	if opts.Workers < 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Disambiguator{
		net:   cache.Network(),
		opts:  opts,
		cache: cache,
	}
}

// Options returns the active configuration.
func (d *Disambiguator) Options() Options { return d.opts }

// Cache returns the (possibly shared) memoization layer backing this
// disambiguator.
func (d *Disambiguator) Cache() *Cache { return d.cache }

// contextNode is one pre-resolved member of the target's sphere context.
type contextNode struct {
	node   *xmltree.Node
	weight float64 // w_{V_d(x)}(x_i.ℓ)
	tokens []string
	senses [][]semnet.ConceptID // senses per token
}

// preparedContext is the fully-resolved sphere context of one target node:
// the Definition 6–7 context vector, the per-member sense lists, and the
// sphere size. It is computed once per node and memoized (ctxMemo).
type preparedContext struct {
	vec  sphere.Vector
	ctx  []contextNode
	size int
}

// prepareContext returns the memoized sphere context of a target node,
// building it on first use. The center node is excluded from the scoring
// context (its self-similarity is a constant offset for every candidate,
// cf. Definition 8) but participates in the vector per the Figure 7
// convention.
func (d *Disambiguator) prepareContext(x *xmltree.Node) *preparedContext {
	if d.bypassCache {
		return d.buildContext(x)
	}
	if v, ok := d.ctxMemo.Load(x); ok {
		return v.(*preparedContext)
	}
	pc := d.buildContext(x)
	if v, loaded := d.ctxMemo.LoadOrStore(x, pc); loaded {
		return v.(*preparedContext) // a concurrent builder won; both are identical
	}
	return pc
}

// buildContext runs the sphere BFS once and derives both the membership
// and the context vector from that single walk (the vector previously
// re-ran the BFS).
func (d *Disambiguator) buildContext(x *xmltree.Node) *preparedContext {
	var members []sphere.Member
	if d.opts.FollowLinks {
		members = sphere.GraphSphere(x, d.opts.Radius)
	} else {
		members = sphere.Sphere(x, d.opts.Radius)
	}
	pc := &preparedContext{
		vec:  sphere.VectorFromMembers(members, d.opts.Radius),
		size: len(members),
	}
	for _, m := range members {
		if m.Node == x {
			continue
		}
		cn := contextNode{node: m.Node, weight: pc.vec[m.Node.Label]}
		toks := m.Node.Tokens
		if len(toks) == 0 {
			toks = []string{m.Node.Label}
		}
		cn.tokens = toks
		for _, t := range toks {
			cn.senses = append(cn.senses, d.senses(t))
		}
		pc.ctx = append(pc.ctx, cn)
	}
	return pc
}

// senses looks a token up in the semantic network, through the
// fault-injection seam: an injected lookup fault behaves like a failed
// semantic-network backend (no senses) without touching the network.
func (d *Disambiguator) senses(tok string) []semnet.ConceptID {
	if faultinject.DropLookup() {
		return nil
	}
	return d.net.Senses(tok)
}

// pairSim routes concept-pair similarity through the shared cache, or
// straight to the uncached computation in bypass mode. Cached reads pass
// the cache-poison fault point, which chaos tests use to prove that a
// corrupted score degrades answer quality, never answer shape.
func (d *Disambiguator) pairSim(a, b semnet.ConceptID) float64 {
	if d.bypassCache {
		return d.cache.Measure().SimDirect(a, b)
	}
	if v, ok := faultinject.PoisonSim(); ok {
		return v
	}
	return d.cache.Sim(a, b)
}

// simToContextNode returns max_j Sim(s, s_j^i) over the senses of context
// node cn. A compound context label is processed like a compound target
// (§3.5.1 note): the max over token-sense pairs of the average similarity,
// which factorizes into the average of per-token maxima.
func (d *Disambiguator) simToContextNode(s semnet.ConceptID, cn contextNode) float64 {
	var sum float64
	var counted int
	for _, senses := range cn.senses {
		if len(senses) == 0 {
			continue
		}
		best := 0.0
		for _, sj := range senses {
			if v := d.pairSim(s, sj); v > best {
				best = v
			}
		}
		sum += best
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// ConceptScore computes Concept_Score(s_p, S_d(x), S̄N) (Definition 8): the
// average over context nodes of the weighted maximum similarity between the
// candidate sense and the context node's senses. The node's context is
// memoized, so per-candidate calls cost one pass over the context, not one
// sphere construction each.
func (d *Disambiguator) ConceptScore(sp semnet.ConceptID, x *xmltree.Node) float64 {
	return d.conceptScoreCtx([]semnet.ConceptID{sp}, d.prepareContext(x))
}

// ConceptScoreCompound computes Eq. 10 for a compound target label: the
// candidate is a pair of senses (s_p for token 1, s_q for token 2) and the
// per-context-node similarity is the average of the individual
// similarities.
func (d *Disambiguator) ConceptScoreCompound(sp, sq semnet.ConceptID, x *xmltree.Node) float64 {
	return d.conceptScoreCtx([]semnet.ConceptID{sp, sq}, d.prepareContext(x))
}

func (d *Disambiguator) conceptScoreCtx(candidate []semnet.ConceptID, pc *preparedContext) float64 {
	if pc.size == 0 {
		return 0
	}
	var total float64
	for _, cn := range pc.ctx {
		var s float64
		for _, c := range candidate {
			s += d.simToContextNode(c, cn)
		}
		s /= float64(len(candidate))
		total += s * cn.weight
	}
	return total / float64(pc.size)
}

// conceptVector returns the cached semantic-network context vector of a
// sense.
func (d *Disambiguator) conceptVector(c semnet.ConceptID) sphere.Vector {
	if d.bypassCache {
		return sphere.ConceptVector(d.net, c, d.opts.Radius)
	}
	return d.cache.ConceptVector(c, d.opts.Radius)
}

// pairVector returns the cached combined concept vector of a compound
// candidate pair.
func (d *Disambiguator) pairVector(p, q semnet.ConceptID) sphere.Vector {
	if d.bypassCache {
		return sphere.CombinedConceptVector(d.net, p, q, d.opts.Radius)
	}
	return d.cache.PairVector(p, q, d.opts.Radius)
}

// ContextScore computes Context_Score(s_p, S_d(x), SN) (Definition 10): the
// vector similarity between the target's XML context vector and the
// candidate sense's semantic-network context vector.
func (d *Disambiguator) ContextScore(sp semnet.ConceptID, x *xmltree.Node) float64 {
	return d.opts.vectorSim()(d.prepareContext(x).vec, d.conceptVector(sp))
}

// ContextScoreCompound computes Eq. 12: the candidate pair's combined
// semantic-network sphere (union of the two sense spheres) against the
// target's XML context vector.
func (d *Disambiguator) ContextScoreCompound(sp, sq semnet.ConceptID, x *xmltree.Node) float64 {
	return d.opts.vectorSim()(d.prepareContext(x).vec, d.pairVector(sp, sq))
}

// score evaluates one candidate (1- or 2-sense) for target x under the
// configured method, given the precomputed context.
func (d *Disambiguator) score(candidate []semnet.ConceptID, x *xmltree.Node, pc *preparedContext) float64 {
	return d.scoreAs(d.opts.Method, candidate, pc)
}

// scoreAs is score under an explicit method — the seam the degradation
// ladder uses to force concept-only scoring (Definition 8) without
// touching the configured options.
func (d *Disambiguator) scoreAs(method Method, candidate []semnet.ConceptID, pc *preparedContext) float64 {
	concept := func() float64 { return d.conceptScoreCtx(candidate, pc) }
	context := func() float64 {
		var cv sphere.Vector
		if len(candidate) == 2 {
			cv = d.pairVector(candidate[0], candidate[1])
		} else {
			cv = d.conceptVector(candidate[0])
		}
		return d.opts.vectorSim()(pc.vec, cv)
	}
	switch method {
	case ConceptBased:
		return concept()
	case ContextBased:
		return context()
	default:
		wc, wx := d.opts.ConceptWeight, d.opts.ContextWeight
		if s := wc + wx; s > 0 {
			wc, wx = wc/s, wx/s
		} else {
			wc, wx = 0.5, 0.5
		}
		return wc*concept() + wx*context()
	}
}

// Node disambiguates a single target node: it enumerates candidate senses
// (or sense pairs for compound labels), scores each, and returns the best.
// ok is false when no token of the label is known to the network — the node
// is left untouched, which the evaluation counts against recall.
func (d *Disambiguator) Node(x *xmltree.Node) (Sense, bool) {
	return d.nodeWith(x, d.opts.Method)
}

// nodeWith is Node under an explicit method, the per-node entry point of
// the degradation ladder's upper rungs.
func (d *Disambiguator) nodeWith(x *xmltree.Node, method Method) (Sense, bool) {
	tokens := x.Tokens
	if len(tokens) == 0 {
		tokens = []string{x.Label}
	}
	switch len(tokens) {
	case 1:
		senses := d.senses(tokens[0])
		if len(senses) == 0 {
			return Sense{}, false
		}
		if len(senses) == 1 {
			// Assumption 4: monosemous labels are unambiguous.
			return Sense{Concepts: []semnet.ConceptID{senses[0]}, Score: 1}, true
		}
		pc := d.prepareContext(x)
		best := Sense{Score: -1}
		for _, sp := range senses {
			sc := d.scoreAs(method, []semnet.ConceptID{sp}, pc)
			if sc > best.Score {
				best = Sense{Concepts: []semnet.ConceptID{sp}, Score: sc}
			}
		}
		return best, true
	default:
		sensesP := d.senses(tokens[0])
		sensesQ := d.senses(tokens[1])
		if len(sensesP) == 0 && len(sensesQ) == 0 {
			return Sense{}, false
		}
		// If only one token is known, fall back to single-token candidates.
		if len(sensesP) == 0 {
			return d.singleTokenFallback(sensesQ, x, method)
		}
		if len(sensesQ) == 0 {
			return d.singleTokenFallback(sensesP, x, method)
		}
		pc := d.prepareContext(x)
		best := Sense{Score: -1}
		for _, sp := range sensesP {
			for _, sq := range sensesQ {
				sc := d.scoreAs(method, []semnet.ConceptID{sp, sq}, pc)
				if sc > best.Score {
					best = Sense{Concepts: []semnet.ConceptID{sp, sq}, Score: sc}
				}
			}
		}
		return best, true
	}
}

func (d *Disambiguator) singleTokenFallback(senses []semnet.ConceptID, x *xmltree.Node, method Method) (Sense, bool) {
	if len(senses) == 1 {
		return Sense{Concepts: []semnet.ConceptID{senses[0]}, Score: 1}, true
	}
	pc := d.prepareContext(x)
	best := Sense{Score: -1}
	for _, sp := range senses {
		sc := d.scoreAs(method, []semnet.ConceptID{sp}, pc)
		if sc > best.Score {
			best = Sense{Concepts: []semnet.ConceptID{sp}, Score: sc}
		}
	}
	return best, true
}

// Candidates scores every candidate sense (or sense pair) of a target node
// and returns them ordered best-first — the full ranking behind Node's
// winner, for explanation UIs and confidence estimation. Nil when no token
// of the label is known to the network.
func (d *Disambiguator) Candidates(x *xmltree.Node) []Sense {
	tokens := x.Tokens
	if len(tokens) == 0 {
		tokens = []string{x.Label}
	}
	var out []Sense
	switch len(tokens) {
	case 1:
		senses := d.senses(tokens[0])
		if len(senses) == 0 {
			return nil
		}
		if len(senses) == 1 {
			return []Sense{{Concepts: []semnet.ConceptID{senses[0]}, Score: 1}}
		}
		pc := d.prepareContext(x)
		for _, sp := range senses {
			out = append(out, Sense{
				Concepts: []semnet.ConceptID{sp},
				Score:    d.score([]semnet.ConceptID{sp}, x, pc),
			})
		}
	default:
		sensesP := d.senses(tokens[0])
		sensesQ := d.senses(tokens[1])
		if len(sensesP) == 0 && len(sensesQ) == 0 {
			return nil
		}
		if len(sensesP) == 0 || len(sensesQ) == 0 {
			single := sensesP
			if len(single) == 0 {
				single = sensesQ
			}
			pc := d.prepareContext(x)
			for _, sp := range single {
				out = append(out, Sense{
					Concepts: []semnet.ConceptID{sp},
					Score:    d.score([]semnet.ConceptID{sp}, x, pc),
				})
			}
			break
		}
		pc := d.prepareContext(x)
		for _, sp := range sensesP {
			for _, sq := range sensesQ {
				out = append(out, Sense{
					Concepts: []semnet.ConceptID{sp, sq},
					Score:    d.score([]semnet.ConceptID{sp, sq}, x, pc),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Apply disambiguates every target node and writes the winning sense into
// Node.Sense/Node.SenseScore, returning the number of nodes that received a
// sense. Non-target nodes remain untouched (§3.1).
func (d *Disambiguator) Apply(targets []*xmltree.Node) int {
	assigned, _ := d.ApplyContext(context.Background(), targets)
	return assigned
}

// ApplyContext is ApplyReport reduced to the assigned count, the
// historical signature.
func (d *Disambiguator) ApplyContext(ctx context.Context, targets []*xmltree.Node) (int, error) {
	rep, err := d.ApplyReport(ctx, targets)
	return rep.Assigned, err
}

// ApplyReport is Apply with cooperative cancellation and graceful
// degradation. The context is checked before every target node (the unit
// of work of the per-node hot loop), so an abort returns within one node's
// disambiguation time. Nodes disambiguated before the abort keep their
// senses; the Report counts them.
//
// With Options.Degrade disabled (the default), a Done context aborts the
// run with an error matching xsdferrors.ErrCanceled, exactly as before the
// ladder existed. With the ladder enabled, a run that falls behind its
// deadline share steps down through cheaper scoring rungs (see
// Degradation) instead of failing: deadline expiry mid-run finishes the
// remaining targets at first-sense and returns a nil error with the
// achieved level in the Report, while an explicit cancellation returns the
// partial Report alongside a *xsdferrors.DegradedError (matching both
// ErrDegraded and ErrCanceled).
//
// With Options.Workers > 1, target nodes are fanned across a worker pool.
// Per-node semantics are preserved: the cancellation check, ladder-level
// draw, and NodeHook run before each node in its worker, every node writes
// only its own Sense/SenseScore/Degraded, and the shared caches make the
// assignments identical to a serial run. A panic on any worker is
// re-raised on the calling goroutine with its original value, so the
// pipeline's panic isolation (core.processOne, xsdf's recover seam) boxes
// it exactly as in serial mode.
func (d *Disambiguator) ApplyReport(ctx context.Context, targets []*xmltree.Node) (Report, error) {
	b := newBudget(ctx, len(targets), d.opts.Degrade)
	if w := d.workerCount(len(targets)); w > 1 {
		return d.applyParallel(ctx, targets, w, b)
	}
	assigned, attempted := 0, 0
	done := ctx.Done()
	for _, x := range targets {
		if done != nil {
			select {
			case <-done:
				if degradeThrough(b, ctx) {
					// Deadline expired with the ladder on: ride out the
					// rest at the last rung. ctx.Err() has latched, so
					// stop polling it.
					b.raise(xsdferrors.DegradeFirstSense)
					done = nil
				} else {
					rep := finishReport(b, assigned, attempted, len(targets))
					return rep, abortErr(b, rep, ctx)
				}
			default:
			}
		}
		lvl := xsdferrors.DegradeNone
		if b != nil {
			lvl = b.next()
		}
		attempted++
		if d.opts.NodeHook != nil {
			d.opts.NodeHook(x)
		}
		faultinject.NodeStart()
		if lvl > xsdferrors.DegradeNone {
			x.Degraded = lvl
		}
		if s, ok := d.nodeAt(x, lvl); ok {
			x.Sense = s.ID()
			x.SenseScore = s.Score
			assigned++
		}
	}
	return finishReport(b, assigned, attempted, len(targets)), nil
}

// finishReport folds either the budget counters (ladder on) or the plain
// attempt count (ladder off) into a Report upholding the accounting
// invariant NodesAtLevel sum + Unscored == total.
func finishReport(b *budget, assigned, attempted, total int) Report {
	if b != nil {
		return b.report(assigned, total)
	}
	rep := Report{Assigned: assigned}
	rep.NodesAtLevel[xsdferrors.DegradeNone] = attempted
	rep.Unscored = total - attempted
	return rep
}

// abortErr is the error for a run cut short by its context: a
// *xsdferrors.DegradedError carrying the achieved level when the ladder
// was on, the plain canceled error otherwise.
func abortErr(b *budget, rep Report, ctx context.Context) error {
	if b == nil {
		return xsdferrors.Canceled(ctx.Err())
	}
	return &xsdferrors.DegradedError{
		Level:    rep.Level,
		Unscored: rep.Unscored,
		Cause:    xsdferrors.Canceled(ctx.Err()),
	}
}

func (d *Disambiguator) workerCount(targets int) int {
	w := d.opts.Workers
	if w > targets {
		w = targets
	}
	return w
}

// applyParallel is the Workers > 1 fan-out of ApplyReport.
func (d *Disambiguator) applyParallel(ctx context.Context, targets []*xmltree.Node, workers int, b *budget) (Report, error) {
	var assigned, attempted atomic.Int64
	var (
		panicOnce sync.Once
		panicVal  any
		quit      = make(chan struct{}) // closed on first worker panic
	)
	jobs := make(chan *xmltree.Node)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() {
						panicVal = v
						close(quit)
					})
				}
			}()
			done := ctx.Done()
			for x := range jobs {
				if done != nil {
					select {
					case <-done:
						if !degradeThrough(b, ctx) {
							return
						}
						b.raise(xsdferrors.DegradeFirstSense)
						done = nil
					default:
					}
				}
				lvl := xsdferrors.DegradeNone
				if b != nil {
					lvl = b.next()
				}
				attempted.Add(1)
				if d.opts.NodeHook != nil {
					d.opts.NodeHook(x)
				}
				faultinject.NodeStart()
				if lvl > xsdferrors.DegradeNone {
					x.Degraded = lvl
				}
				if s, ok := d.nodeAt(x, lvl); ok {
					x.Sense = s.ID()
					x.SenseScore = s.Score
					assigned.Add(1)
				}
			}
		}()
	}
	aborted := false
	done := ctx.Done()
dispatch:
	for _, x := range targets {
	send:
		for {
			select {
			case jobs <- x:
				break send
			case <-done:
				if degradeThrough(b, ctx) {
					// Keep dispatching: workers finish the tail at the
					// last rung.
					done = nil
					continue send
				}
				aborted = true
				break dispatch
			case <-quit:
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	if panicVal != nil {
		// Re-raise with the original value so recover seams upstream see
		// the same panic a serial run would produce.
		panic(panicVal)
	}
	rep := finishReport(b, int(assigned.Load()), int(attempted.Load()), len(targets))
	if aborted || (ctx.Err() != nil && !degradeThrough(b, ctx)) {
		return rep, abortErr(b, rep, ctx)
	}
	return rep, nil
}
