// Package disambig implements XSDF's semantic disambiguation module (§3.5):
// concept-based scoring (Definition 8 and its compound-label variant,
// Eq. 10), context-based scoring (Definition 10 and Eq. 12), and the
// user-weighted combination of both (Eq. 13).
package disambig

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// Method selects the disambiguation process.
type Method uint8

const (
	// ConceptBased compares target-node senses with context-node senses via
	// semantic similarity measures (Definition 8).
	ConceptBased Method = iota
	// ContextBased compares the target's XML sphere context vector with the
	// semantic-network sphere context vector of each candidate sense
	// (Definition 10).
	ContextBased
	// Combined mixes both scores with user weights (Eq. 13).
	Combined
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ConceptBased:
		return "concept-based"
	case ContextBased:
		return "context-based"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options collects the user-tunable parameters of the disambiguation module
// (answering Motivation 4: nothing is hard-wired).
type Options struct {
	// Radius is the sphere neighborhood radius d (context size).
	Radius int
	// Method selects concept-based, context-based, or combined scoring.
	Method Method
	// SimWeights combines the edge/node/gloss similarity measures
	// (Definition 9). Used by concept-based and combined scoring.
	SimWeights simmeasure.Weights
	// ConceptWeight and ContextWeight are w_Concept and w_Context of
	// Eq. 13 (combined method only); they are normalized to sum to 1.
	ConceptWeight float64
	ContextWeight float64
	// VectorSim compares context vectors (context-based scoring). Nil means
	// cosine, the paper's default.
	VectorSim sphere.VectorSim
	// FollowLinks makes sphere construction traverse ID/IDREF hyperlink
	// edges (xmltree.ResolveLinks), treating the document as a graph (§1).
	FollowLinks bool
	// NodeHook, when non-nil, is invoked before each target node is
	// disambiguated in ApplyContext. It exists as a fault-injection seam
	// for tests (simulating slow or panicking nodes); production callers
	// leave it nil. With Workers > 1 the hook is called concurrently from
	// the node workers and must be safe for concurrent use.
	NodeHook func(*xmltree.Node)
	// Workers is the intra-document parallelism of ApplyContext: the
	// number of goroutines target nodes are fanned across. 0 and 1 keep
	// the historical serial loop; negative selects GOMAXPROCS (normalized
	// once, in NewShared, so every layer sees the same convention).
	// Parallel workers share the disambiguator's caches
	// (concurrency-safe) and write only to their own target nodes, so
	// sense assignments are identical to a serial run.
	Workers int

	// Degrade configures the graceful-degradation ladder: under deadline
	// pressure or past the node-count watermarks, scoring steps down
	// configured method → concept-only → first-sense instead of failing.
	// The zero value keeps the historical all-or-nothing semantics.
	Degrade Degradation
}

// DefaultOptions mirrors the paper's common configuration: radius 1,
// concept-based process, equal similarity-measure weights.
func DefaultOptions() Options {
	return Options{
		Radius:        1,
		Method:        ConceptBased,
		SimWeights:    simmeasure.EqualWeights(),
		ConceptWeight: 0.5,
		ContextWeight: 0.5,
	}
}

func (o Options) vectorSim() sphere.VectorSim {
	if o.VectorSim == nil {
		return sphere.Cosine
	}
	return o.VectorSim
}

// Sense is a disambiguation outcome for one node: one concept for simple
// labels, two for compound labels whose tokens were sensed separately.
type Sense struct {
	Concepts []semnet.ConceptID
	Score    float64
}

// ID renders the sense as a stable identifier string ("movie.n.01" or
// "first.n.01+name.n.01" for compounds).
func (s Sense) ID() string {
	parts := make([]string, len(s.Concepts))
	for i, c := range s.Concepts {
		parts[i] = string(c)
	}
	return strings.Join(parts, "+")
}

// Disambiguator runs sense disambiguation for nodes of one document tree
// against one semantic network. It memoizes similarity scores, semantic-
// network sphere vectors (through a Cache, which may be shared across
// documents), and per-node prepared contexts, so reusing one Disambiguator
// across the nodes of a document — or calling the per-candidate scoring
// APIs repeatedly for one node — costs each underlying computation once.
//
// A Disambiguator is safe for concurrent use: all memos are concurrency-
// safe and the semantic network is immutable. The only mutation it
// performs is writing Sense/SenseScore into the target nodes handed to
// Apply/ApplyContext; callers must not hand the same node to two
// concurrent Apply calls.
type Disambiguator struct {
	net   *semnet.Network
	opts  Options
	cache *Cache

	// ctxMemo memoizes prepareContext per target node (keyed by node
	// pointer), making the public per-candidate APIs (ConceptScore,
	// ContextScore, ...) linear instead of accidentally quadratic. It
	// assumes the tree's structure, labels, and tokens stay fixed while
	// the Disambiguator is in use — true for the pipeline, which finishes
	// linguistic pre-processing before disambiguation starts.
	ctxMemo sync.Map // *xmltree.Node -> *preparedContext

	// bypassCache, set only by differential tests, recomputes every
	// similarity, vector, and context from scratch on each call; golden
	// tests assert the cached and bypass paths agree bit for bit.
	bypassCache bool
}

// New returns a Disambiguator over net with the given options, backed by a
// private cache.
func New(net *semnet.Network, opts Options) *Disambiguator {
	return NewShared(NewCache(net, opts.SimWeights), opts)
}

// NewShared returns a Disambiguator backed by an existing (possibly
// shared) cache. The cache's similarity weights take effect; callers are
// expected to construct the cache from the same weights as opts.SimWeights
// (core.Framework does).
func NewShared(cache *Cache, opts Options) *Disambiguator {
	if opts.Radius < 1 {
		opts.Radius = 1
	}
	if opts.Workers < 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Disambiguator{
		net:   cache.Network(),
		opts:  opts,
		cache: cache,
	}
}

// Options returns the active configuration.
func (d *Disambiguator) Options() Options { return d.opts }

// Cache returns the (possibly shared) memoization layer backing this
// disambiguator.
func (d *Disambiguator) Cache() *Cache { return d.cache }

// contextNode is one pre-resolved member of the target's sphere context:
// its vector weight and the [senseStart, senseEnd) range of its per-token
// sense lists within preparedContext.senseLists.
type contextNode struct {
	weight     float64 // w_{V_d(x)}(x_i.ℓ)
	senseStart int32
	senseEnd   int32
}

// preparedContext is the fully-resolved sphere context of one target node:
// the Definition 6–7 context vector, the per-member sense lists (dense
// ids, referencing the network's frozen per-lemma slices), and the sphere
// size.
type preparedContext struct {
	vec        sphere.Vector
	ctx        []contextNode
	senseLists [][]semnet.DenseID
	size       int
}

// ctxScratch bundles the reusable buffers of one context build: the sphere
// BFS scratch, the vector fold scratch, the per-member dimension slice,
// and the preparedContext whose slices are reused across nodes. nodeWith
// draws one from ctxScratchPool per node, so the per-node steady state of
// Apply allocates nothing for context construction.
type ctxScratch struct {
	sph        sphere.Scratch
	vec        sphere.VecScratch
	memberDims []int32
	pc         preparedContext
}

var ctxScratchPool = sync.Pool{New: func() any { return new(ctxScratch) }}

// prepareContext returns the memoized sphere context of a target node,
// building it on first use — the path of the public per-candidate APIs
// (ConceptScore, ContextScore, Candidates), which may revisit one node
// many times. The center node is excluded from the scoring context (its
// self-similarity is a constant offset for every candidate, cf.
// Definition 8) but participates in the vector per the Figure 7
// convention.
func (d *Disambiguator) prepareContext(x *xmltree.Node) *preparedContext {
	if d.bypassCache {
		return d.buildContext(x)
	}
	if v, ok := d.ctxMemo.Load(x); ok {
		return v.(*preparedContext)
	}
	pc := d.buildContext(x)
	if v, loaded := d.ctxMemo.LoadOrStore(x, pc); loaded {
		return v.(*preparedContext) // a concurrent builder won; both are identical
	}
	return pc
}

// buildContext builds an owned preparedContext (for memoization or cache
// bypass): the build runs through a private scratch that is deliberately
// not pooled, so the returned context's slices alias nothing reused.
func (d *Disambiguator) buildContext(x *xmltree.Node) *preparedContext {
	s := new(ctxScratch)
	pc := *d.buildContextInto(x, s)
	return &pc
}

// contextFor resolves the context for one nodeWith call: through the
// reusable scratch on the hot path, through the memo for public API calls
// (s == nil).
func (d *Disambiguator) contextFor(x *xmltree.Node, s *ctxScratch) *preparedContext {
	if s != nil {
		return d.buildContextInto(x, s)
	}
	return d.prepareContext(x)
}

// buildContextInto runs the sphere BFS once and derives the membership,
// the context vector, and the per-member dense sense lists from that
// single walk, reusing every buffer in s. The result aliases s.
func (d *Disambiguator) buildContextInto(x *xmltree.Node, s *ctxScratch) *preparedContext {
	members := sphere.SphereInto(x, d.opts.Radius, d.opts.FollowLinks, &s.sph)
	if cap(s.memberDims) < len(members) {
		s.memberDims = make([]int32, len(members))
	}
	md := s.memberDims[:len(members)]
	pc := &s.pc
	pc.vec = sphere.VectorFromMembersInto(members, d.opts.Radius, d.net, &s.vec, md)
	pc.size = len(members)
	pc.ctx = pc.ctx[:0]
	pc.senseLists = pc.senseLists[:0]
	for i, m := range members {
		if m.Node == x {
			continue
		}
		var w float64
		if md[i] >= 0 {
			w = pc.vec.WeightOf(md[i])
		}
		start := int32(len(pc.senseLists))
		if toks := m.Node.Tokens; len(toks) > 0 {
			for _, t := range toks {
				pc.senseLists = append(pc.senseLists, d.sensesDense(t))
			}
		} else {
			pc.senseLists = append(pc.senseLists, d.sensesDense(m.Node.Label))
		}
		pc.ctx = append(pc.ctx, contextNode{weight: w, senseStart: start, senseEnd: int32(len(pc.senseLists))})
	}
	return pc
}

// senses looks a token up in the semantic network, through the
// fault-injection seam: an injected lookup fault behaves like a failed
// semantic-network backend (no senses) without touching the network.
func (d *Disambiguator) senses(tok string) []semnet.ConceptID {
	if faultinject.DropLookup() {
		return nil
	}
	return d.net.Senses(tok)
}

// sensesDense is senses in dense ids; the returned slice is the network's
// frozen frequency-ordered sense list (read-only).
func (d *Disambiguator) sensesDense(tok string) []semnet.DenseID {
	if faultinject.DropLookup() {
		return nil
	}
	return d.net.SensesDense(tok)
}

// conceptID converts a dense id back to its ConceptID for result Senses.
func (d *Disambiguator) conceptID(dc semnet.DenseID) semnet.ConceptID {
	id, _ := d.net.ConceptAt(dc)
	return id
}

// denseCandidate resolves public-API ConceptIDs into the dense candidate
// buffer; ids outside the network become the -1 sentinel (they score 0
// against every known concept, exactly as the string-keyed measures did).
func (d *Disambiguator) denseCandidate(buf []semnet.DenseID, ids ...semnet.ConceptID) []semnet.DenseID {
	buf = buf[:0]
	for _, c := range ids {
		dc, ok := d.net.Dense(c)
		if !ok {
			dc = -1
		}
		buf = append(buf, dc)
	}
	return buf
}

// pairSimDense routes concept-pair similarity through the shared cache, or
// straight to the uncached computation in bypass mode. Cached reads pass
// the cache-poison fault point, which chaos tests use to prove that a
// corrupted score degrades answer quality, never answer shape. The -1
// sentinel (a public-API candidate outside the network) scores 0, the
// exact value the component measures produce for unknown concepts.
func (d *Disambiguator) pairSimDense(a, b semnet.DenseID) float64 {
	if d.bypassCache {
		if a < 0 || b < 0 {
			return 0
		}
		return d.cache.Measure().SimDirectDense(a, b)
	}
	if v, ok := faultinject.PoisonSim(); ok {
		return v
	}
	if a < 0 || b < 0 {
		return 0
	}
	return d.cache.SimDense(a, b)
}

// simToContextNode returns max_j Sim(s, s_j^i) over the senses of context
// node cn. A compound context label is processed like a compound target
// (§3.5.1 note): the max over token-sense pairs of the average similarity,
// which factorizes into the average of per-token maxima.
func (d *Disambiguator) simToContextNode(s semnet.DenseID, pc *preparedContext, cn contextNode) float64 {
	var sum float64
	var counted int
	for _, senses := range pc.senseLists[cn.senseStart:cn.senseEnd] {
		if len(senses) == 0 {
			continue
		}
		best := 0.0
		for _, sj := range senses {
			if v := d.pairSimDense(s, sj); v > best {
				best = v
			}
		}
		sum += best
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// ConceptScore computes Concept_Score(s_p, S_d(x), S̄N) (Definition 8): the
// average over context nodes of the weighted maximum similarity between the
// candidate sense and the context node's senses. The node's context is
// memoized, so per-candidate calls cost one pass over the context, not one
// sphere construction each.
func (d *Disambiguator) ConceptScore(sp semnet.ConceptID, x *xmltree.Node) float64 {
	var buf [2]semnet.DenseID
	return d.conceptScoreCtx(d.denseCandidate(buf[:0], sp), d.prepareContext(x))
}

// ConceptScoreCompound computes Eq. 10 for a compound target label: the
// candidate is a pair of senses (s_p for token 1, s_q for token 2) and the
// per-context-node similarity is the average of the individual
// similarities.
func (d *Disambiguator) ConceptScoreCompound(sp, sq semnet.ConceptID, x *xmltree.Node) float64 {
	var buf [2]semnet.DenseID
	return d.conceptScoreCtx(d.denseCandidate(buf[:0], sp, sq), d.prepareContext(x))
}

func (d *Disambiguator) conceptScoreCtx(candidate []semnet.DenseID, pc *preparedContext) float64 {
	if pc.size == 0 {
		return 0
	}
	var total float64
	for _, cn := range pc.ctx {
		var s float64
		for _, c := range candidate {
			s += d.simToContextNode(c, pc, cn)
		}
		s /= float64(len(candidate))
		total += s * cn.weight
	}
	return total / float64(pc.size)
}

// conceptVectorD returns the cached semantic-network context vector of a
// sense (empty for the -1 sentinel).
func (d *Disambiguator) conceptVectorD(c semnet.DenseID) sphere.Vector {
	if c < 0 {
		return sphere.Vector{}
	}
	if d.bypassCache {
		var s sphere.ConceptScratch
		return sphere.ConceptVectorInto(d.net, c, d.opts.Radius, &s)
	}
	return d.cache.ConceptVectorDense(c, d.opts.Radius)
}

// pairVectorD returns the cached combined concept vector of a compound
// candidate pair (empty when either id is the -1 sentinel). The pair is
// canonicalized to dense-ascending order so bypass and cached builds fold
// weights identically.
func (d *Disambiguator) pairVectorD(p, q semnet.DenseID) sphere.Vector {
	if p < 0 || q < 0 {
		return sphere.Vector{}
	}
	if d.bypassCache {
		if q < p {
			p, q = q, p
		}
		var s sphere.ConceptScratch
		return sphere.CombinedConceptVectorInto(d.net, p, q, d.opts.Radius, &s)
	}
	return d.cache.PairVectorDense(p, q, d.opts.Radius)
}

// ContextScore computes Context_Score(s_p, S_d(x), SN) (Definition 10): the
// vector similarity between the target's XML context vector and the
// candidate sense's semantic-network context vector.
func (d *Disambiguator) ContextScore(sp semnet.ConceptID, x *xmltree.Node) float64 {
	var buf [2]semnet.DenseID
	cand := d.denseCandidate(buf[:0], sp)
	return d.opts.vectorSim()(d.prepareContext(x).vec, d.conceptVectorD(cand[0]))
}

// ContextScoreCompound computes Eq. 12: the candidate pair's combined
// semantic-network sphere (union of the two sense spheres) against the
// target's XML context vector.
func (d *Disambiguator) ContextScoreCompound(sp, sq semnet.ConceptID, x *xmltree.Node) float64 {
	var buf [2]semnet.DenseID
	cand := d.denseCandidate(buf[:0], sp, sq)
	return d.opts.vectorSim()(d.prepareContext(x).vec, d.pairVectorD(cand[0], cand[1]))
}

// scoreAs evaluates one candidate (1- or 2-sense, dense) under an explicit
// method — the seam the degradation ladder uses to force concept-only
// scoring (Definition 8) without touching the configured options.
func (d *Disambiguator) scoreAs(method Method, candidate []semnet.DenseID, pc *preparedContext) float64 {
	switch method {
	case ConceptBased:
		return d.conceptScoreCtx(candidate, pc)
	case ContextBased:
		return d.contextScoreCtx(candidate, pc)
	default:
		wc, wx := d.opts.ConceptWeight, d.opts.ContextWeight
		if s := wc + wx; s > 0 {
			wc, wx = wc/s, wx/s
		} else {
			wc, wx = 0.5, 0.5
		}
		return wc*d.conceptScoreCtx(candidate, pc) + wx*d.contextScoreCtx(candidate, pc)
	}
}

// contextScoreCtx is the context-based leg of scoreAs.
func (d *Disambiguator) contextScoreCtx(candidate []semnet.DenseID, pc *preparedContext) float64 {
	var cv sphere.Vector
	if len(candidate) == 2 {
		cv = d.pairVectorD(candidate[0], candidate[1])
	} else {
		cv = d.conceptVectorD(candidate[0])
	}
	return d.opts.vectorSim()(pc.vec, cv)
}

// Node disambiguates a single target node: it enumerates candidate senses
// (or sense pairs for compound labels), scores each, and returns the best.
// ok is false when no token of the label is known to the network — the node
// is left untouched, which the evaluation counts against recall.
func (d *Disambiguator) Node(x *xmltree.Node) (Sense, bool) {
	return d.nodeWith(x, d.opts.Method)
}

// nodeWith is Node under an explicit method, the per-node entry point of
// the degradation ladder's upper rungs. It scores through pooled scratch:
// context construction and candidate scoring allocate nothing in the warm
// steady state beyond the returned Sense.
func (d *Disambiguator) nodeWith(x *xmltree.Node, method Method) (Sense, bool) {
	tok0 := x.Label
	tok1 := ""
	compound := false
	switch len(x.Tokens) {
	case 0:
	case 1:
		tok0 = x.Tokens[0]
	default:
		tok0, tok1 = x.Tokens[0], x.Tokens[1]
		compound = true
	}
	if !compound {
		senses := d.sensesDense(tok0)
		if len(senses) == 0 {
			return Sense{}, false
		}
		if len(senses) == 1 {
			// Assumption 4: monosemous labels are unambiguous.
			return Sense{Concepts: []semnet.ConceptID{d.conceptID(senses[0])}, Score: 1}, true
		}
		s := ctxScratchPool.Get().(*ctxScratch)
		defer ctxScratchPool.Put(s)
		pc := d.contextFor(x, s)
		bestC, bestScore := d.bestSingle(senses, method, pc)
		return Sense{Concepts: []semnet.ConceptID{d.conceptID(bestC)}, Score: bestScore}, true
	}
	sensesP := d.sensesDense(tok0)
	sensesQ := d.sensesDense(tok1)
	if len(sensesP) == 0 && len(sensesQ) == 0 {
		return Sense{}, false
	}
	// If only one token is known, fall back to single-token candidates.
	if len(sensesP) == 0 {
		return d.singleTokenFallback(sensesQ, x, method)
	}
	if len(sensesQ) == 0 {
		return d.singleTokenFallback(sensesP, x, method)
	}
	s := ctxScratchPool.Get().(*ctxScratch)
	defer ctxScratchPool.Put(s)
	pc := d.contextFor(x, s)
	var cand [2]semnet.DenseID
	bestScore := -1.0
	var bestP, bestQ semnet.DenseID
	for _, sp := range sensesP {
		for _, sq := range sensesQ {
			cand[0], cand[1] = sp, sq
			if sc := d.scoreAs(method, cand[:2], pc); sc > bestScore {
				bestScore, bestP, bestQ = sc, sp, sq
			}
		}
	}
	return Sense{Concepts: []semnet.ConceptID{d.conceptID(bestP), d.conceptID(bestQ)}, Score: bestScore}, true
}

// bestSingle scores every single-sense candidate and returns the winner.
func (d *Disambiguator) bestSingle(senses []semnet.DenseID, method Method, pc *preparedContext) (semnet.DenseID, float64) {
	var cand [2]semnet.DenseID
	bestScore := -1.0
	best := senses[0]
	for _, sp := range senses {
		cand[0] = sp
		if sc := d.scoreAs(method, cand[:1], pc); sc > bestScore {
			bestScore, best = sc, sp
		}
	}
	return best, bestScore
}

func (d *Disambiguator) singleTokenFallback(senses []semnet.DenseID, x *xmltree.Node, method Method) (Sense, bool) {
	if len(senses) == 1 {
		return Sense{Concepts: []semnet.ConceptID{d.conceptID(senses[0])}, Score: 1}, true
	}
	s := ctxScratchPool.Get().(*ctxScratch)
	defer ctxScratchPool.Put(s)
	pc := d.contextFor(x, s)
	bestC, bestScore := d.bestSingle(senses, method, pc)
	return Sense{Concepts: []semnet.ConceptID{d.conceptID(bestC)}, Score: bestScore}, true
}

// Candidates scores every candidate sense (or sense pair) of a target node
// and returns them ordered best-first — the full ranking behind Node's
// winner, for explanation UIs and confidence estimation. Nil when no token
// of the label is known to the network. As a public per-candidate API it
// goes through the memoized context.
func (d *Disambiguator) Candidates(x *xmltree.Node) []Sense {
	tok0 := x.Label
	tok1 := ""
	compound := false
	switch len(x.Tokens) {
	case 0:
	case 1:
		tok0 = x.Tokens[0]
	default:
		tok0, tok1 = x.Tokens[0], x.Tokens[1]
		compound = true
	}
	var out []Sense
	var cand [2]semnet.DenseID
	if !compound {
		senses := d.sensesDense(tok0)
		if len(senses) == 0 {
			return nil
		}
		if len(senses) == 1 {
			return []Sense{{Concepts: []semnet.ConceptID{d.conceptID(senses[0])}, Score: 1}}
		}
		pc := d.prepareContext(x)
		for _, sp := range senses {
			cand[0] = sp
			out = append(out, Sense{
				Concepts: []semnet.ConceptID{d.conceptID(sp)},
				Score:    d.scoreAs(d.opts.Method, cand[:1], pc),
			})
		}
	} else {
		sensesP := d.sensesDense(tok0)
		sensesQ := d.sensesDense(tok1)
		if len(sensesP) == 0 && len(sensesQ) == 0 {
			return nil
		}
		switch {
		case len(sensesP) == 0 || len(sensesQ) == 0:
			single := sensesP
			if len(single) == 0 {
				single = sensesQ
			}
			pc := d.prepareContext(x)
			for _, sp := range single {
				cand[0] = sp
				out = append(out, Sense{
					Concepts: []semnet.ConceptID{d.conceptID(sp)},
					Score:    d.scoreAs(d.opts.Method, cand[:1], pc),
				})
			}
		default:
			pc := d.prepareContext(x)
			for _, sp := range sensesP {
				for _, sq := range sensesQ {
					cand[0], cand[1] = sp, sq
					out = append(out, Sense{
						Concepts: []semnet.ConceptID{d.conceptID(sp), d.conceptID(sq)},
						Score:    d.scoreAs(d.opts.Method, cand[:2], pc),
					})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Apply disambiguates every target node and writes the winning sense into
// Node.Sense/Node.SenseScore, returning the number of nodes that received a
// sense. Non-target nodes remain untouched (§3.1).
func (d *Disambiguator) Apply(targets []*xmltree.Node) int {
	assigned, _ := d.ApplyContext(context.Background(), targets)
	return assigned
}

// ApplyContext is ApplyReport reduced to the assigned count, the
// historical signature.
func (d *Disambiguator) ApplyContext(ctx context.Context, targets []*xmltree.Node) (int, error) {
	rep, err := d.ApplyReport(ctx, targets)
	return rep.Assigned, err
}

// ApplyReport is Apply with cooperative cancellation and graceful
// degradation. The context is checked before every target node (the unit
// of work of the per-node hot loop), so an abort returns within one node's
// disambiguation time. Nodes disambiguated before the abort keep their
// senses; the Report counts them.
//
// With Options.Degrade disabled (the default), a Done context aborts the
// run with an error matching xsdferrors.ErrCanceled, exactly as before the
// ladder existed. With the ladder enabled, a run that falls behind its
// deadline share steps down through cheaper scoring rungs (see
// Degradation) instead of failing: deadline expiry mid-run finishes the
// remaining targets at first-sense and returns a nil error with the
// achieved level in the Report, while an explicit cancellation returns the
// partial Report alongside a *xsdferrors.DegradedError (matching both
// ErrDegraded and ErrCanceled).
//
// With Options.Workers > 1, target nodes are fanned across a worker pool.
// Per-node semantics are preserved: the cancellation check, ladder-level
// draw, and NodeHook run before each node in its worker, every node writes
// only its own Sense/SenseScore/Degraded, and the shared caches make the
// assignments identical to a serial run. A panic on any worker is
// re-raised on the calling goroutine with its original value, so the
// pipeline's panic isolation (core.processOne, xsdf's recover seam) boxes
// it exactly as in serial mode.
func (d *Disambiguator) ApplyReport(ctx context.Context, targets []*xmltree.Node) (Report, error) {
	b := newBudget(ctx, len(targets), d.opts.Degrade)
	if w := d.workerCount(len(targets)); w > 1 {
		return d.applyParallel(ctx, targets, w, b)
	}
	assigned, attempted := 0, 0
	done := ctx.Done()
	for _, x := range targets {
		if done != nil {
			select {
			case <-done:
				if degradeThrough(b, ctx) {
					// Deadline expired with the ladder on: ride out the
					// rest at the last rung. ctx.Err() has latched, so
					// stop polling it.
					b.raise(xsdferrors.DegradeFirstSense)
					done = nil
				} else {
					rep := finishReport(b, assigned, attempted, len(targets))
					return rep, abortErr(b, rep, ctx)
				}
			default:
			}
		}
		lvl := xsdferrors.DegradeNone
		if b != nil {
			lvl = b.next()
		}
		attempted++
		if d.opts.NodeHook != nil {
			d.opts.NodeHook(x)
		}
		faultinject.NodeStart()
		if lvl > xsdferrors.DegradeNone {
			x.Degraded = lvl
		}
		if s, ok := d.nodeAt(x, lvl); ok {
			x.Sense = s.ID()
			x.SenseScore = s.Score
			assigned++
		}
	}
	return finishReport(b, assigned, attempted, len(targets)), nil
}

// finishReport folds either the budget counters (ladder on) or the plain
// attempt count (ladder off) into a Report upholding the accounting
// invariant NodesAtLevel sum + Unscored == total.
func finishReport(b *budget, assigned, attempted, total int) Report {
	if b != nil {
		return b.report(assigned, total)
	}
	rep := Report{Assigned: assigned}
	rep.NodesAtLevel[xsdferrors.DegradeNone] = attempted
	rep.Unscored = total - attempted
	return rep
}

// abortErr is the error for a run cut short by its context: a
// *xsdferrors.DegradedError carrying the achieved level when the ladder
// was on, the plain canceled error otherwise.
func abortErr(b *budget, rep Report, ctx context.Context) error {
	if b == nil {
		return xsdferrors.Canceled(ctx.Err())
	}
	return &xsdferrors.DegradedError{
		Level:    rep.Level,
		Unscored: rep.Unscored,
		Cause:    xsdferrors.Canceled(ctx.Err()),
	}
}

func (d *Disambiguator) workerCount(targets int) int {
	w := d.opts.Workers
	if w > targets {
		w = targets
	}
	return w
}

// applyParallel is the Workers > 1 fan-out of ApplyReport.
func (d *Disambiguator) applyParallel(ctx context.Context, targets []*xmltree.Node, workers int, b *budget) (Report, error) {
	var assigned, attempted atomic.Int64
	var (
		panicOnce sync.Once
		panicVal  any
		quit      = make(chan struct{}) // closed on first worker panic
	)
	jobs := make(chan *xmltree.Node)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() {
						panicVal = v
						close(quit)
					})
				}
			}()
			done := ctx.Done()
			for x := range jobs {
				if done != nil {
					select {
					case <-done:
						if !degradeThrough(b, ctx) {
							return
						}
						b.raise(xsdferrors.DegradeFirstSense)
						done = nil
					default:
					}
				}
				lvl := xsdferrors.DegradeNone
				if b != nil {
					lvl = b.next()
				}
				attempted.Add(1)
				if d.opts.NodeHook != nil {
					d.opts.NodeHook(x)
				}
				faultinject.NodeStart()
				if lvl > xsdferrors.DegradeNone {
					x.Degraded = lvl
				}
				if s, ok := d.nodeAt(x, lvl); ok {
					x.Sense = s.ID()
					x.SenseScore = s.Score
					assigned.Add(1)
				}
			}
		}()
	}
	aborted := false
	done := ctx.Done()
dispatch:
	for _, x := range targets {
	send:
		for {
			select {
			case jobs <- x:
				break send
			case <-done:
				if degradeThrough(b, ctx) {
					// Keep dispatching: workers finish the tail at the
					// last rung.
					done = nil
					continue send
				}
				aborted = true
				break dispatch
			case <-quit:
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	if panicVal != nil {
		// Re-raise with the original value so recover seams upstream see
		// the same panic a serial run would produce.
		panic(panicVal)
	}
	rep := finishReport(b, int(assigned.Load()), int(attempted.Load()), len(targets))
	if aborted || (ctx.Err() != nil && !degradeThrough(b, ctx)) {
		return rep, abortErr(b, rep, ctx)
	}
	return rep, nil
}
