package disambig

import (
	"testing"

	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func node(label, sense string, score float64) *xmltree.Node {
	return &xmltree.Node{Label: label, Tokens: []string{label},
		Sense: sense, SenseScore: score, Kind: xmltree.Element}
}

func TestHarmonizeMajorityWins(t *testing.T) {
	nodes := []*xmltree.Node{
		node("star", "star.n.02", 0.6),
		node("star", "star.n.02", 0.5),
		node("star", "star.n.05", 0.2), // the outlier
		node("cast", "cast.n.01", 0.4),
	}
	changed := Harmonize(nodes)
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	for _, n := range nodes[:3] {
		if n.Sense != "star.n.02" {
			t.Errorf("star harmonized to %s", n.Sense)
		}
	}
	if nodes[3].Sense != "cast.n.01" {
		t.Error("unrelated label touched")
	}
}

func TestHarmonizeScoreMassNotCount(t *testing.T) {
	// Two weak votes vs one very confident vote: the confident sense wins.
	nodes := []*xmltree.Node{
		node("line", "line.n.01", 0.1),
		node("line", "line.n.01", 0.1),
		node("line", "line.n.08", 0.9),
	}
	Harmonize(nodes)
	for _, n := range nodes {
		if n.Sense != "line.n.08" {
			t.Fatalf("line harmonized to %s, want the high-mass sense", n.Sense)
		}
	}
}

func TestHarmonizeLeavesSingletonsAndCompounds(t *testing.T) {
	compound := &xmltree.Node{Label: "list price", Tokens: []string{"list", "price"},
		Sense: "list.n.01+price.n.01", SenseScore: 0.5}
	nodes := []*xmltree.Node{
		node("plot", "plot.n.03", 0.3),
		compound,
		{Label: "zzqx"}, // unassigned
	}
	if changed := Harmonize(nodes); changed != 0 {
		t.Fatalf("changed = %d, want 0", changed)
	}
	if compound.Sense != "list.n.01+price.n.01" {
		t.Error("compound pair touched")
	}
}

func TestHarmonizeDeterministicTieBreak(t *testing.T) {
	mk := func() []*xmltree.Node {
		return []*xmltree.Node{
			node("play", "play.n.01", 0.5),
			node("play", "play.n.03", 0.5),
		}
	}
	a, b := mk(), mk()
	Harmonize(a)
	Harmonize(b)
	if a[0].Sense != b[0].Sense || a[1].Sense != b[1].Sense {
		t.Fatal("tie break not deterministic")
	}
	if a[0].Sense != a[1].Sense {
		t.Fatal("tie not harmonized to one sense")
	}
}

// TestHarmonizeOnRealDocument runs the full pipeline on a Shakespeare-like
// document where the same label appears in many contexts, then checks
// harmonization leaves every repeated label with exactly one sense.
func TestHarmonizeOnRealDocument(t *testing.T) {
	tr := parse(t, `<PLAY><ACT><SCENE><SPEECH><SPEAKER>x</SPEAKER>
	  <LINE>star light</LINE><LINE>sun rose</LINE></SPEECH>
	  <SPEECH><SPEAKER>y</SPEAKER><LINE>head time</LINE></SPEECH></SCENE></ACT></PLAY>`)
	d := New(wordnet.Default(), DefaultOptions())
	d.Apply(tr.Nodes())
	Harmonize(tr.Nodes())
	senseOf := map[string]string{}
	for _, n := range tr.Nodes() {
		if n.Sense == "" || len(n.Tokens) > 1 {
			continue
		}
		if prev, ok := senseOf[n.Label]; ok && prev != n.Sense {
			t.Fatalf("label %q has senses %s and %s after harmonization", n.Label, prev, n.Sense)
		}
		senseOf[n.Label] = n.Sense
	}
}
