package disambig

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/xsdferrors"
)

func degradeOpts(d Degradation) Options {
	o := DefaultOptions()
	o.SimWeights = simmeasure.EqualWeights()
	o.Degrade = d
	return o
}

// TestBudgetDisabled: the zero Degradation yields no budget, keeping the
// historical code path.
func TestBudgetDisabled(t *testing.T) {
	if b := newBudget(context.Background(), 10, Degradation{}); b != nil {
		t.Fatal("disabled ladder must not build a budget")
	}
}

// TestBudgetWatermarks: node-count watermarks start a document at a lower
// rung before any pacing happens.
func TestBudgetWatermarks(t *testing.T) {
	cfg := Degradation{Enabled: true, ConceptOnlyAfter: 10, FirstSenseAfter: 100}
	for _, tc := range []struct {
		total int
		want  xsdferrors.DegradationLevel
	}{
		{5, xsdferrors.DegradeNone},
		{11, xsdferrors.DegradeConceptOnly},
		{101, xsdferrors.DegradeFirstSense},
	} {
		b := newBudget(context.Background(), tc.total, cfg)
		if got := b.levelNow(); got != tc.want {
			t.Errorf("total %d: start level %v, want %v", tc.total, got, tc.want)
		}
	}
}

// TestBudgetPaceStepDown: a run behind its deadline share steps down one
// rung; consuming the LastRungAt fraction drops straight to first-sense.
func TestBudgetPaceStepDown(t *testing.T) {
	mk := func(elapsedFrac float64) *budget {
		dur := time.Minute
		b := &budget{
			start:    time.Now().Add(-time.Duration(elapsedFrac * float64(dur))),
			dur:      dur,
			total:    100,
			slack:    DefaultSlack,
			lastRung: DefaultLastRungAt,
		}
		return b
	}
	// 30% of budget gone, 0/100 done: 0.30 > 0 + 0.10, one rung down.
	b := mk(0.30)
	if lvl := b.next(); lvl != xsdferrors.DegradeConceptOnly {
		t.Errorf("behind schedule: level %v, want concept-only", lvl)
	}
	// 90% of budget gone: past LastRungAt, straight to first-sense.
	b = mk(0.90)
	if lvl := b.next(); lvl != xsdferrors.DegradeFirstSense {
		t.Errorf("budget nearly spent: level %v, want first-sense", lvl)
	}
	// On pace: 5% gone with 0/100 done is inside the ramp, stays full.
	b = mk(0.05)
	if lvl := b.next(); lvl != xsdferrors.DegradeNone {
		t.Errorf("on pace: level %v, want full", lvl)
	}
}

// TestBudgetLevelMonotone: raise never lowers the level.
func TestBudgetLevelMonotone(t *testing.T) {
	b := &budget{total: 1, slack: DefaultSlack, lastRung: DefaultLastRungAt}
	b.raise(xsdferrors.DegradeFirstSense)
	b.raise(xsdferrors.DegradeConceptOnly)
	if got := b.levelNow(); got != xsdferrors.DegradeFirstSense {
		t.Errorf("level %v after lower raise, want first-sense", got)
	}
}

// TestBudgetRaiseClampsAtLastRung: stepping down while already at
// first-sense stays at first-sense — the regression the chaos suite first
// caught as an out-of-range counter index.
func TestBudgetRaiseClampsAtLastRung(t *testing.T) {
	b := &budget{
		start:    time.Now().Add(-time.Hour),
		dur:      time.Minute,
		total:    100,
		slack:    DefaultSlack,
		lastRung: DefaultLastRungAt,
	}
	b.raise(xsdferrors.DegradeFirstSense)
	if lvl := b.next(); lvl != xsdferrors.DegradeFirstSense {
		t.Fatalf("behind pace at the last rung: level %v, want first-sense", lvl)
	}
	b.raise(xsdferrors.DegradeFirstSense + 1)
	if got := b.levelNow(); got != xsdferrors.DegradeFirstSense {
		t.Fatalf("explicit over-raise: level %v, want clamp at first-sense", got)
	}
}

// TestApplyReportAccounting: NodesAtLevel sum + Unscored always equals the
// target count, and per-node Degraded marks agree with the counters.
func TestApplyReportAccounting(t *testing.T) {
	tr := parse(t, figure1Doc)
	targets := tr.Nodes()
	d := New(wordnet.Default(), degradeOpts(Degradation{Enabled: true, ConceptOnlyAfter: 1}))
	rep, err := d.ApplyReport(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range rep.NodesAtLevel {
		sum += n
	}
	if sum+rep.Unscored != len(targets) {
		t.Fatalf("accounting: sum %d + unscored %d != targets %d", sum, rep.Unscored, len(targets))
	}
	if rep.NodesAtLevel[xsdferrors.DegradeNone] != 0 {
		t.Errorf("watermark start: %d nodes ran at full quality", rep.NodesAtLevel[xsdferrors.DegradeNone])
	}
	if rep.Level != xsdferrors.DegradeConceptOnly {
		t.Errorf("Level = %v, want concept-only", rep.Level)
	}
	marked := 0
	for _, x := range targets {
		if x.Degraded == xsdferrors.DegradeConceptOnly {
			marked++
		}
	}
	if marked != rep.NodesAtLevel[xsdferrors.DegradeConceptOnly] {
		t.Errorf("per-node marks %d != counter %d", marked, rep.NodesAtLevel[xsdferrors.DegradeConceptOnly])
	}
}

// TestDeadlineRiddenOutAtFirstSense: with the ladder on, an expired
// deadline does not abort — every remaining target is scored at the last
// rung and the call succeeds.
func TestDeadlineRiddenOutAtFirstSense(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tr := parse(t, figure1Doc)
		targets := tr.Nodes()
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		opts := degradeOpts(Degradation{Enabled: true})
		opts.Workers = workers
		rep, err := New(wordnet.Default(), opts).ApplyReport(ctx, targets)
		if err != nil {
			t.Fatalf("workers=%d: expired deadline must degrade, not fail: %v", workers, err)
		}
		if rep.Unscored != 0 {
			t.Errorf("workers=%d: %d targets left unscored", workers, rep.Unscored)
		}
		if rep.Level != xsdferrors.DegradeFirstSense {
			t.Errorf("workers=%d: Level = %v, want first-sense", workers, rep.Level)
		}
	}
}

// TestCancelMidLadderReturnsDegradedError: explicit cancellation with the
// ladder on aborts with a *DegradedError carrying exact accounting.
func TestCancelMidLadderReturnsDegradedError(t *testing.T) {
	tr := parse(t, figure1Doc)
	targets := tr.Nodes()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := New(wordnet.Default(), degradeOpts(Degradation{Enabled: true})).ApplyReport(ctx, targets)
	if !errors.Is(err, xsdferrors.ErrDegraded) || !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("want ErrDegraded+ErrCanceled, got %v", err)
	}
	var de *xsdferrors.DegradedError
	if !errors.As(err, &de) {
		t.Fatal("errors.As must find *DegradedError")
	}
	if de.Unscored != rep.Unscored || rep.Unscored != len(targets) {
		t.Errorf("pre-canceled run: Unscored = %d/%d, want all %d",
			de.Unscored, rep.Unscored, len(targets))
	}
}

// TestLadderOffKeepsCancelSemantics: without the ladder, cancellation
// fails exactly as before — plain ErrCanceled, no ErrDegraded.
func TestLadderOffKeepsCancelSemantics(t *testing.T) {
	tr := parse(t, figure1Doc)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := New(wordnet.Default(), degradeOpts(Degradation{})).ApplyReport(ctx, tr.Nodes())
	if !errors.Is(err, xsdferrors.ErrCanceled) || errors.Is(err, xsdferrors.ErrDegraded) {
		t.Fatalf("ladder off: want plain ErrCanceled, got %v", err)
	}
}

// TestFirstSenseRungScoresMonosemous: the last rung assigns the dominant
// sense with score 1 only for fully monosemous labels.
func TestFirstSenseRungScoresMonosemous(t *testing.T) {
	tr := parse(t, figure1Doc)
	d := New(wordnet.Default(), degradeOpts(Degradation{Enabled: true}))
	// "kelly" is polysemous: first-sense must pick index 0 with score 0.
	kelly := find(t, tr, "kelly")
	s, ok := d.firstSense(kelly)
	if !ok {
		t.Fatal("first-sense failed on known label")
	}
	if want := d.senses("kelly")[0]; s.Concepts[0] != want || s.Score != 0 {
		t.Errorf("polysemous first-sense = %v score %v, want %v score 0", s.Concepts, s.Score, want)
	}
}
