package disambig

import (
	"testing"

	"repro/internal/simmeasure"
	"repro/internal/wordnet"
)

func TestCandidatesRankedAndConsistentWithNode(t *testing.T) {
	tr := parse(t, figure1Doc)
	cast := find(t, tr, "cast")
	d := New(wordnet.Default(), Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	cands := d.Candidates(cast)
	if len(cands) != len(wordnet.Default().Senses("cast")) {
		t.Fatalf("%d candidates, want one per sense", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted best-first")
		}
	}
	best, ok := d.Node(cast)
	if !ok || cands[0].ID() != best.ID() {
		t.Errorf("Candidates[0] = %s, Node = %s", cands[0].ID(), best.ID())
	}
}

func TestCandidatesMonosemous(t *testing.T) {
	tr := parse(t, `<cast><prologue>x</prologue></cast>`)
	d := New(wordnet.Default(), DefaultOptions())
	cands := d.Candidates(find(t, tr, "prologue"))
	if len(cands) != 1 || cands[0].Score != 1 {
		t.Fatalf("monosemous candidates = %v", cands)
	}
}

func TestCandidatesUnknown(t *testing.T) {
	tr := parse(t, `<cast><zzqx>x</zzqx></cast>`)
	d := New(wordnet.Default(), DefaultOptions())
	if cands := d.Candidates(find(t, tr, "zzqx")); cands != nil {
		t.Fatalf("unknown label candidates = %v", cands)
	}
}

func TestCandidatesCompoundPairs(t *testing.T) {
	tr := parse(t, `<product><ListPrice>42</ListPrice></product>`)
	d := New(wordnet.Default(), DefaultOptions())
	lp := find(t, tr, "list price")
	cands := d.Candidates(lp)
	net := wordnet.Default()
	want := len(net.Senses("list")) * len(net.Senses("price"))
	if len(cands) != want {
		t.Fatalf("%d pair candidates, want %d", len(cands), want)
	}
	for _, c := range cands {
		if len(c.Concepts) != 2 {
			t.Fatalf("pair candidate has %d concepts", len(c.Concepts))
		}
	}
}
