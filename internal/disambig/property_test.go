package disambig

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// synthTree builds a random tree whose labels are drawn from a synthetic
// network's vocabulary, so every node has senses.
func synthTree(shape []uint8, vocabSize int) *xmltree.Tree {
	root := &xmltree.Node{Label: "w000", Tokens: []string{"w000"}, Kind: xmltree.Element}
	nodes := []*xmltree.Node{root}
	for i, b := range shape {
		if len(nodes) >= 40 {
			break
		}
		parent := nodes[int(b)%len(nodes)]
		w := fmt.Sprintf("w%03d", (i*7+int(b))%vocabSize)
		n := &xmltree.Node{Label: w, Tokens: []string{w}, Kind: xmltree.Element}
		parent.AddChild(n)
		nodes = append(nodes, n)
	}
	return xmltree.New(root)
}

// TestPropertyScoresInRangeOnSyntheticNetworks sweeps random trees over a
// generated network with every method: winning scores must stay in [0, 1]
// and Candidates[0] must agree with Node.
func TestPropertyScoresInRangeOnSyntheticNetworks(t *testing.T) {
	net, err := wordnet.Generate(wordnet.GenerateConfig{
		Seed: 5, Concepts: 200, Lemmas: 60, MaxBranch: 5, PartEvery: 9})
	if err != nil {
		t.Fatal(err)
	}
	diss := []*Disambiguator{
		New(net, Options{Radius: 1, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()}),
		New(net, Options{Radius: 2, Method: ContextBased, SimWeights: simmeasure.EqualWeights()}),
		New(net, Options{Radius: 2, Method: Combined, SimWeights: simmeasure.EqualWeights(),
			ConceptWeight: 0.5, ContextWeight: 0.5}),
	}
	f := func(shape []uint8, pick uint8) bool {
		tr := synthTree(shape, 60)
		x := tr.Node(int(pick) % tr.Len())
		for _, d := range diss {
			cands := d.Candidates(x)
			s, ok := d.Node(x)
			if len(cands) == 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || cands[0].ID() != s.ID() {
				return false
			}
			for _, c := range cands {
				if c.Score < 0 || c.Score > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicAcrossInstances: two independently constructed
// disambiguators agree on every node of a random tree.
func TestPropertyDeterministicAcrossInstances(t *testing.T) {
	net, err := wordnet.Generate(wordnet.GenerateConfig{
		Seed: 9, Concepts: 150, Lemmas: 50, MaxBranch: 4, PartEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()}
	f := func(shape []uint8) bool {
		tr := synthTree(shape, 50)
		a, b := New(net, opts), New(net, opts)
		for _, n := range tr.Nodes() {
			sa, oka := a.Node(n)
			sb, okb := b.Node(n)
			if oka != okb {
				return false
			}
			if oka && (sa.ID() != sb.ID() || sa.Score != sb.Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMonosemousAlwaysAssigned: any node whose label has exactly
// one sense is assigned it with score 1, on arbitrary trees (Assumption 4).
func TestPropertyMonosemousAlwaysAssigned(t *testing.T) {
	net := wordnet.Default()
	d := New(net, DefaultOptions())
	monosemous := ""
	for _, l := range net.Lemmas() {
		if net.PolysemyOf(l) == 1 && l == "prologue" {
			monosemous = l
			break
		}
	}
	if monosemous == "" {
		monosemous = "prologue"
	}
	f := func(shape []uint8) bool {
		tr := synthTree(shape, 60)
		n := &xmltree.Node{Label: monosemous, Tokens: []string{monosemous}, Kind: xmltree.Element}
		tr.Root.AddChild(n)
		tr.Reindex()
		s, ok := d.Node(n)
		return ok && s.Score == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
