package disambig

import (
	"testing"

	"repro/internal/lingproc"
	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// TestFollowLinksEnrichesContext: an ID/IDREF hyperlink pulls a distant
// cast/star context next to an otherwise isolated "kelly" mention, giving
// the disambiguator evidence the tree alone does not provide at the same
// radius.
func TestFollowLinksEnrichesContext(t *testing.T) {
	doc := `<root>
	  <credits><cast id="c1"><star>stewart</star></cast></credits>
	  <notes><entry idref="c1"><subject>kelly</subject></entry></notes>
	</root>`
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: true, Tokenize: lingproc.Tokenize})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tr.ResolveLinks(); err != nil || n != 1 {
		t.Fatalf("links: %d %v", n, err)
	}
	lingproc.ProcessTree(tr, wordnet.Default())

	var kelly *xmltree.Node
	for _, n := range tr.Nodes() {
		if n.Kind == xmltree.Token && n.Label == "kelly" {
			kelly = n
		}
	}
	if kelly == nil {
		t.Fatal("no kelly token")
	}

	base := Options{Radius: 3, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()}
	treeOnly := New(wordnet.Default(), base)
	withLinks := New(wordnet.Default(), Options{Radius: 3, Method: ConceptBased,
		SimWeights: simmeasure.EqualWeights(), FollowLinks: true})

	sTree, okTree := treeOnly.Node(kelly)
	sGraph, okGraph := withLinks.Node(kelly)
	if !okTree || !okGraph {
		t.Fatal("kelly not disambiguated")
	}
	// The hyperlinked cast/star context must raise the winning score: the
	// tree context at radius 2 contains no sensed labels at all.
	if !(sGraph.Score > sTree.Score) {
		t.Errorf("link-aware score %.4f should exceed tree-only %.4f", sGraph.Score, sTree.Score)
	}
	if sGraph.ID() != "kelly.n.01" {
		t.Errorf("with cast context, kelly = %s, want kelly.n.01", sGraph.ID())
	}
}
