package disambig

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
)

// Cache is the shared, concurrency-safe memoization layer of the semantic
// hot path. One Cache is owned by a core.Framework and shared by every
// disambiguator the framework creates — all batch workers and all
// intra-document node workers hit the same pairwise-similarity and
// concept-sphere-vector memos, so a corpus with repeated vocabulary pays
// for each Sim(c1, c2) evaluation and each semantic-network sphere walk
// once, not once per document.
//
// Invariants: the semantic network is immutable after Build, so every
// cached value is a pure function of its key and never invalidates.
// Cached sphere.Vector values are handed out shared — callers must treat
// them as read-only (all in-tree consumers only read them). Sharded
// read-write locks keep workers from serializing on a single mutex;
// duplicated computation when two workers miss the same key concurrently
// is harmless because both compute the identical value.
type Cache struct {
	net  *semnet.Network
	sim  *simmeasure.Measure
	seed maphash.Seed

	vecs  [vecShardCount]vecShard  // single-sense semantic-network vectors
	pairs [vecShardCount]pairShard // compound-label combined vectors (Eq. 12)

	vecHits, vecMisses atomic.Uint64
}

const vecShardCount = 32

type vecKey struct {
	c semnet.ConceptID
	d int
}

type pairKey struct {
	p, q semnet.ConceptID
	d    int
}

type vecShard struct {
	mu sync.RWMutex
	m  map[vecKey]sphere.Vector
}

type pairShard struct {
	mu sync.RWMutex
	m  map[pairKey]sphere.Vector
}

// NewCache returns an empty cache over net with the given similarity
// weights (normalized as by simmeasure.New).
func NewCache(net *semnet.Network, w simmeasure.Weights) *Cache {
	c := &Cache{
		net:  net,
		sim:  simmeasure.New(net, w),
		seed: maphash.MakeSeed(),
	}
	for i := range c.vecs {
		c.vecs[i].m = make(map[vecKey]sphere.Vector)
	}
	for i := range c.pairs {
		c.pairs[i].m = make(map[pairKey]sphere.Vector)
	}
	return c
}

// Network returns the semantic network the cache memoizes over.
func (c *Cache) Network() *semnet.Network { return c.net }

// Measure returns the shared pairwise-similarity measure.
func (c *Cache) Measure() *simmeasure.Measure { return c.sim }

// Sim returns the memoized combined similarity of the pair.
func (c *Cache) Sim(a, b semnet.ConceptID) float64 { return c.sim.Sim(a, b) }

func (c *Cache) hash(parts ...string) uint64 {
	var h maphash.Hash
	h.SetSeed(c.seed)
	for _, p := range parts {
		h.WriteString(p)
		h.WriteByte(0)
	}
	return h.Sum64()
}

// ConceptVector returns the memoized semantic-network context vector
// V_d(s) of a sense (Definition 10). The returned vector is shared:
// read-only.
func (c *Cache) ConceptVector(id semnet.ConceptID, d int) sphere.Vector {
	key := vecKey{c: id, d: d}
	sh := &c.vecs[c.hash(string(id))%vecShardCount]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.vecHits.Add(1)
		return v
	}
	c.vecMisses.Add(1)
	v = sphere.ConceptVector(c.net, id, d)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// PairVector returns the memoized combined concept vector V_d(s_p, s_q) of
// a compound-label candidate pair (Eq. 12). The union underlying the
// vector is symmetric in p and q, so the key is canonicalized to sorted
// order. The returned vector is shared: read-only.
func (c *Cache) PairVector(p, q semnet.ConceptID, d int) sphere.Vector {
	if q < p {
		p, q = q, p
	}
	key := pairKey{p: p, q: q, d: d}
	sh := &c.pairs[c.hash(string(p), string(q))%vecShardCount]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.vecHits.Add(1)
		return v
	}
	c.vecMisses.Add(1)
	v = sphere.CombinedConceptVector(c.net, p, q, d)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// CacheStats is a point-in-time snapshot of the shared cache counters, for
// observability and effectiveness tests. Counters are atomics: exact in
// serial runs, approximate snapshots under concurrency.
type CacheStats struct {
	SimHits, SimMisses       uint64
	VectorHits, VectorMisses uint64
}

// Stats reports hit/miss counts since construction.
func (c *Cache) Stats() CacheStats {
	h, m := c.sim.Stats()
	return CacheStats{
		SimHits:      h,
		SimMisses:    m,
		VectorHits:   c.vecHits.Load(),
		VectorMisses: c.vecMisses.Load(),
	}
}
