package disambig

import (
	"sync"
	"sync/atomic"

	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
)

// Cache is the shared, concurrency-safe memoization layer of the semantic
// hot path. One Cache is owned by a core.Framework and shared by every
// disambiguator the framework creates — all batch workers and all
// intra-document node workers hit the same pairwise-similarity and
// concept-sphere-vector memos, so a corpus with repeated vocabulary pays
// for each Sim(c1, c2) evaluation and each semantic-network sphere walk
// once, not once per document.
//
// Keys are dense int32 concept ids (the network's ConceptIndex) packed
// into integers, and shard selection is a two-multiply mix — a warm lookup
// hashes no strings and allocates nothing.
//
// Invariants: the semantic network is immutable after Build, so every
// cached value is a pure function of its key and never invalidates.
// Cached sphere.Vector values are handed out shared — callers must treat
// them as read-only (all in-tree consumers only read them). Sharded
// read-write locks keep workers from serializing on a single mutex;
// duplicated computation when two workers miss the same key concurrently
// is harmless because both compute the identical value.
type Cache struct {
	net *semnet.Network
	sim *simmeasure.Measure

	vecs  [vecShardCount]vecShard  // single-sense semantic-network vectors
	pairs [vecShardCount]pairShard // compound-label combined vectors (Eq. 12)

	// scratch pools the dense BFS/vector buffers used to fill vector-cache
	// misses, so a miss costs one sphere walk plus one Clone, not a fresh
	// set of network-sized arrays.
	scratch sync.Pool // *sphere.ConceptScratch

	vecHits, vecMisses atomic.Uint64
}

const vecShardCount = 32

// vecKey identifies a single-sense vector: dense concept id + radius.
type vecKey struct {
	c semnet.DenseID
	d int32
}

// pairKey identifies a combined vector: packed canonical dense pair + radius.
type pairKey struct {
	pq uint64
	d  int32
}

type vecShard struct {
	mu sync.RWMutex
	m  map[vecKey]sphere.Vector
}

type pairShard struct {
	mu sync.RWMutex
	m  map[pairKey]sphere.Vector
}

// NewCache returns an empty cache over net with the given similarity
// weights (normalized as by simmeasure.New).
func NewCache(net *semnet.Network, w simmeasure.Weights) *Cache {
	c := &Cache{
		net: net,
		sim: simmeasure.New(net, w),
	}
	c.scratch.New = func() any { return new(sphere.ConceptScratch) }
	for i := range c.vecs {
		c.vecs[i].m = make(map[vecKey]sphere.Vector)
	}
	for i := range c.pairs {
		c.pairs[i].m = make(map[pairKey]sphere.Vector)
	}
	return c
}

// Network returns the semantic network the cache memoizes over.
func (c *Cache) Network() *semnet.Network { return c.net }

// Measure returns the shared pairwise-similarity measure.
func (c *Cache) Measure() *simmeasure.Measure { return c.sim }

// Sim returns the memoized combined similarity of the pair.
func (c *Cache) Sim(a, b semnet.ConceptID) float64 { return c.sim.Sim(a, b) }

// SimDense is Sim over dense ids — the disambiguation inner loop's path.
func (c *Cache) SimDense(a, b semnet.DenseID) float64 { return c.sim.SimDense(a, b) }

// ConceptVector returns the memoized semantic-network context vector
// V_d(s) of a sense (Definition 10); unknown ids yield the empty vector.
// The returned vector is shared: read-only.
func (c *Cache) ConceptVector(id semnet.ConceptID, d int) sphere.Vector {
	dc, ok := c.net.Dense(id)
	if !ok {
		return sphere.Vector{}
	}
	return c.ConceptVectorDense(dc, d)
}

// ConceptVectorDense is ConceptVector keyed by dense id.
func (c *Cache) ConceptVectorDense(id semnet.DenseID, d int) sphere.Vector {
	key := vecKey{c: id, d: int32(d)}
	sh := &c.vecs[semnet.MixPair(id, semnet.DenseID(d))%vecShardCount]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.vecHits.Add(1)
		return v
	}
	c.vecMisses.Add(1)
	s := c.scratch.Get().(*sphere.ConceptScratch)
	v = sphere.ConceptVectorInto(c.net, id, d, s).Clone()
	c.scratch.Put(s)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// PairVector returns the memoized combined concept vector V_d(s_p, s_q) of
// a compound-label candidate pair (Eq. 12); unknown ids yield the empty
// vector. The returned vector is shared: read-only.
func (c *Cache) PairVector(p, q semnet.ConceptID, d int) sphere.Vector {
	dp, okp := c.net.Dense(p)
	dq, okq := c.net.Dense(q)
	if !okp || !okq {
		return sphere.Vector{}
	}
	return c.PairVectorDense(dp, dq, d)
}

// PairVectorDense is PairVector keyed by the canonical dense pair. The
// union underlying the vector is symmetric in p and q, so the pair is
// canonicalized to dense-ascending order for both the key and the
// computation — cached and bypass paths fold weights in one order.
func (c *Cache) PairVectorDense(p, q semnet.DenseID, d int) sphere.Vector {
	if q < p {
		p, q = q, p
	}
	key := pairKey{pq: semnet.PairKey(p, q), d: int32(d)}
	sh := &c.pairs[semnet.MixPair(p, q)%vecShardCount]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.vecHits.Add(1)
		return v
	}
	c.vecMisses.Add(1)
	s := c.scratch.Get().(*sphere.ConceptScratch)
	v = sphere.CombinedConceptVectorInto(c.net, p, q, d, s).Clone()
	c.scratch.Put(s)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// CacheStats is a point-in-time snapshot of the shared cache counters, for
// observability and effectiveness tests. Counters are atomics: exact in
// serial runs, approximate snapshots under concurrency.
type CacheStats struct {
	SimHits, SimMisses       uint64
	VectorHits, VectorMisses uint64
}

// Stats reports hit/miss counts since construction.
func (c *Cache) Stats() CacheStats {
	h, m := c.sim.Stats()
	return CacheStats{
		SimHits:      h,
		SimMisses:    m,
		VectorHits:   c.vecHits.Load(),
		VectorMisses: c.vecMisses.Load(),
	}
}
