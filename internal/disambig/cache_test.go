package disambig

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/lingproc"
	"repro/internal/simmeasure"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// linkedDoc carries an ID/IDREF hyperlink so FollowLinks configurations
// exercise the graph sphere.
const linkedDoc = `<root>
  <credits><cast id="c1"><star>stewart</star><star>kelly</star></cast></credits>
  <films>
    <picture title="Rear Window">
      <director>Hitchcock</director>
      <genre>mystery</genre>
      <plot>A wheelchair bound photographer spies on his neighbors</plot>
    </picture>
  </films>
  <notes><entry idref="c1"><subject>kelly</subject><topic>play</topic></entry></notes>
</root>`

// goldenTargets returns a processed tree plus every node a pipeline run
// would consider (elements, attributes, tokens all included).
func goldenTargets(t *testing.T, followLinks bool) []*xmltree.Node {
	t.Helper()
	tr := parse(t, linkedDoc)
	if followLinks {
		if n, err := tr.ResolveLinks(); err != nil || n != 1 {
			t.Fatalf("links: %d %v", n, err)
		}
	}
	return tr.Nodes()
}

// TestGoldenCachedVsBypass asserts that the fully-cached scoring path and
// a cache-bypass path (every similarity, vector, and context recomputed
// from scratch on each call) produce identical senses and bit-identical
// scores, across all three methods and both sphere models. This is the
// correctness contract of the shared caching layer: memoization must be
// invisible in the output.
func TestGoldenCachedVsBypass(t *testing.T) {
	net := wordnet.Default()
	for _, method := range []Method{ConceptBased, ContextBased, Combined} {
		for _, followLinks := range []bool{false, true} {
			name := method.String()
			if followLinks {
				name += "-links"
			}
			t.Run(name, func(t *testing.T) {
				opts := Options{
					Radius:        2,
					Method:        method,
					SimWeights:    simmeasure.EqualWeights(),
					ConceptWeight: 0.5,
					ContextWeight: 0.5,
					FollowLinks:   followLinks,
				}
				cached := New(net, opts)
				bypass := New(net, opts)
				bypass.bypassCache = true

				targets := goldenTargets(t, followLinks)
				compared := 0
				for _, n := range targets {
					sc, okC := cached.Node(n)
					sb, okB := bypass.Node(n)
					if okC != okB {
						t.Fatalf("node %q: cached ok=%v bypass ok=%v", n.Label, okC, okB)
					}
					if !okC {
						continue
					}
					compared++
					if sc.ID() != sb.ID() {
						t.Errorf("node %q: cached sense %s, bypass %s", n.Label, sc.ID(), sb.ID())
					}
					if sc.Score != sb.Score {
						t.Errorf("node %q: cached score %.17g, bypass %.17g", n.Label, sc.Score, sb.Score)
					}
					// Re-score the winner through the public per-candidate
					// APIs: the memoized context must return the same
					// numbers as the first call.
					if len(sc.Concepts) == 1 {
						if a, b := cached.ConceptScore(sc.Concepts[0], n), cached.ConceptScore(sc.Concepts[0], n); a != b {
							t.Errorf("node %q: ConceptScore unstable across calls: %g vs %g", n.Label, a, b)
						}
						if a, b := cached.ContextScore(sc.Concepts[0], n), bypass.ContextScore(sc.Concepts[0], n); a != b {
							t.Errorf("node %q: ContextScore cached %g bypass %g", n.Label, a, b)
						}
					} else {
						if a, b := cached.ConceptScoreCompound(sc.Concepts[0], sc.Concepts[1], n),
							bypass.ConceptScoreCompound(sc.Concepts[0], sc.Concepts[1], n); a != b {
							t.Errorf("node %q: compound concept score cached %g bypass %g", n.Label, a, b)
						}
						if a, b := cached.ContextScoreCompound(sc.Concepts[0], sc.Concepts[1], n),
							bypass.ContextScoreCompound(sc.Concepts[0], sc.Concepts[1], n); a != b {
							t.Errorf("node %q: compound context score cached %g bypass %g", n.Label, a, b)
						}
					}
				}
				if compared == 0 {
					t.Fatal("golden doc produced no disambiguated nodes")
				}
			})
		}
	}
}

// TestSharedCacheAcrossDocuments proves the point of the shared layer:
// a second document with the same vocabulary hits the warm memos, and its
// results are identical to those from a cold cache.
func TestSharedCacheAcrossDocuments(t *testing.T) {
	net := wordnet.Default()
	opts := Options{Radius: 2, Method: Combined, SimWeights: simmeasure.EqualWeights(),
		ConceptWeight: 0.5, ContextWeight: 0.5}
	shared := NewCache(net, opts.SimWeights)

	docs := corpus.GenerateDataset(11, 2)
	for i := range docs {
		lingproc.ProcessTree(docs[i].Tree, net)
	}
	// Cold reference: each document gets its own cache.
	var coldSenses [][]string
	for _, d := range docs {
		clone := d.Tree.Clone()
		New(net, opts).Apply(clone.Nodes())
		var senses []string
		for _, n := range clone.Nodes() {
			senses = append(senses, n.Sense)
		}
		coldSenses = append(coldSenses, senses)
	}
	// Shared: both documents flow through one cache.
	for i, d := range docs {
		dis := NewShared(shared, opts)
		if n := dis.Apply(d.Tree.Nodes()); n == 0 {
			t.Fatal("nothing assigned")
		}
		for j, n := range d.Tree.Nodes() {
			if n.Sense != coldSenses[i][j] {
				t.Fatalf("doc %d node %d: shared-cache sense %q, cold %q", i, j, n.Sense, coldSenses[i][j])
			}
		}
	}
	st := shared.Stats()
	if st.SimHits == 0 {
		t.Error("second document should hit the shared Sim cache")
	}
	if st.SimMisses == 0 {
		t.Error("stats should record the cold misses too")
	}
	if opts.Method != ConceptBased && st.VectorMisses == 0 {
		t.Error("context-based scoring should populate the vector cache")
	}
	t.Logf("shared cache stats: %+v", st)
}

// TestSharedDisambiguatorConcurrent shares ONE Disambiguator (and so one
// cache and one node-context memo) across goroutines disambiguating the
// same targets, and checks every goroutine sees the serial answers. Run
// under -race this is the regression test for the latent data race the
// per-document unsynchronized maps used to carry.
func TestSharedDisambiguatorConcurrent(t *testing.T) {
	net := wordnet.Default()
	opts := Options{Radius: 2, Method: Combined, SimWeights: simmeasure.EqualWeights(),
		ConceptWeight: 0.5, ContextWeight: 0.5}

	tr := parse(t, figure1Doc)
	targets := tr.Nodes()

	// Serial golden answers from a private disambiguator.
	golden := make(map[*xmltree.Node]string)
	ref := New(net, opts)
	for _, n := range targets {
		if s, ok := ref.Node(n); ok {
			golden[n] = s.ID()
		}
	}

	shared := New(net, opts)
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range targets {
				s, ok := shared.Node(n)
				if want, wantOK := golden[n]; ok != wantOK || (ok && s.ID() != want) {
					errc <- errors.New("concurrent result diverged from serial: " + n.Label)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestApplyParallelMatchesSerial runs ApplyContext with a worker pool and
// checks node-for-node sense equality with the serial loop.
func TestApplyParallelMatchesSerial(t *testing.T) {
	net := wordnet.Default()
	docs := corpus.GenerateDataset(1, 1)
	serialTree := docs[0].Tree
	lingproc.ProcessTree(serialTree, net)
	parallelTree := serialTree.Clone()

	serialOpts := Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()}
	parallelOpts := serialOpts
	parallelOpts.Workers = 4

	nSerial := New(net, serialOpts).Apply(serialTree.Nodes())
	nParallel := New(net, parallelOpts).Apply(parallelTree.Nodes())
	if nSerial == 0 || nSerial != nParallel {
		t.Fatalf("assigned: serial %d, parallel %d", nSerial, nParallel)
	}
	for i := 0; i < serialTree.Len(); i++ {
		s, p := serialTree.Node(i), parallelTree.Node(i)
		if s.Sense != p.Sense || s.SenseScore != p.SenseScore {
			t.Fatalf("node %d (%s): serial %q/%.17g, parallel %q/%.17g",
				i, s.Label, s.Sense, s.SenseScore, p.Sense, p.SenseScore)
		}
	}
}

// TestApplyParallelPanicPropagates: a NodeHook panic on a worker must
// surface as a panic on the calling goroutine with the original value, so
// the pipeline's recover seams box it exactly like a serial panic.
func TestApplyParallelPanicPropagates(t *testing.T) {
	net := wordnet.Default()
	tr := parse(t, figure1Doc)
	var once sync.Once
	d := New(net, Options{
		Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights(),
		Workers: 3,
		NodeHook: func(n *xmltree.Node) {
			once.Do(func() { panic("injected node fault") })
		},
	})
	defer func() {
		v := recover()
		if v != "injected node fault" {
			t.Fatalf("recovered %v, want the injected fault value", v)
		}
	}()
	d.Apply(tr.Nodes())
	t.Fatal("Apply must panic")
}

// TestApplyParallelCancellation: cancelling mid-run aborts promptly with
// ErrCanceled, and already-processed nodes keep their senses.
func TestApplyParallelCancellation(t *testing.T) {
	net := wordnet.Default()
	docs := corpus.GenerateDataset(1, 1)
	tr := docs[0].Tree
	lingproc.ProcessTree(tr, net)

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	d := New(net, Options{
		Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights(),
		Workers: 3,
		NodeHook: func(n *xmltree.Node) {
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(time.Millisecond)
		},
	})
	go func() {
		<-started
		cancel()
	}()
	begin := time.Now()
	_, err := d.ApplyContext(ctx, tr.Nodes())
	if !errors.Is(err, xsdferrors.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
